package sched_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/sched"
)

// ExampleLSRC schedules two jobs around an advance reservation: the wide
// job cannot overlap the reservation window, the thin one backfills.
func ExampleLSRC() {
	inst := &core.Instance{
		M: 4,
		Jobs: []core.Job{
			{ID: 0, Procs: 3, Len: 10},
			{ID: 1, Procs: 1, Len: 3},
		},
		Res: []core.Reservation{{ID: 0, Procs: 2, Start: 5, Len: 5}},
	}
	s, err := sched.NewLSRC(sched.FIFO).Schedule(inst)
	if err != nil {
		panic(err)
	}
	fmt.Println("wide job starts:", s.StartOf(0))
	fmt.Println("thin job starts:", s.StartOf(1))
	fmt.Println("makespan:", s.Makespan())
	// Output:
	// wide job starts: 10
	// thin job starts: 0
	// makespan: 20
}

// ExampleOrder shows priority rules changing the schedule: LPT repairs the
// FIFO worst case of Proposition 2 (k=3 member).
func ExampleOrder() {
	inst := &core.Instance{
		M: 18,
		Jobs: []core.Job{
			{ID: 0, Procs: 4, Len: 1}, {ID: 1, Procs: 4, Len: 1}, {ID: 2, Procs: 4, Len: 1},
			{ID: 3, Procs: 7, Len: 3}, {ID: 4, Procs: 7, Len: 3},
		},
		Res: []core.Reservation{{ID: 0, Procs: 6, Start: 3, Len: 18}},
	}
	fifo, _ := sched.NewLSRC(sched.FIFO).Schedule(inst)
	lpt, _ := sched.NewLSRC(sched.LPT).Schedule(inst)
	fmt.Println("FIFO:", fifo.Makespan(), "LPT:", lpt.Makespan())
	// Output:
	// FIFO: 7 LPT: 3
}

// ExampleByName resolves algorithms the way the CLIs do.
func ExampleByName() {
	sc, err := sched.ByName("easy-bf")
	if err != nil {
		panic(err)
	}
	fmt.Println(sc.Name())
	// Output:
	// easy-bf
}
