package sched

import (
	"sort"

	"repro/internal/core"
	"repro/internal/rng"
)

// Order produces the priority list used by a list scheduler: a permutation
// of job indices, highest priority first. Orders must be deterministic
// functions of the instance (RandomOrder carries its own seeded generator
// state in the closure, reseeded per call for reproducibility).
type Order struct {
	// Name identifies the rule in experiment tables (e.g. "fifo", "lpt").
	Name string
	// Indices returns the job indices in priority order.
	Indices func(inst *core.Instance) []int
}

// identity returns 0..n-1.
func identity(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// sortBy returns indices sorted by the given less function, with ties broken
// by instance position so orders are total and deterministic.
func sortBy(inst *core.Instance, less func(a, b core.Job) bool) []int {
	idx := identity(len(inst.Jobs))
	sort.SliceStable(idx, func(x, y int) bool {
		return less(inst.Jobs[idx[x]], inst.Jobs[idx[y]])
	})
	return idx
}

// FIFO preserves instance (submission) order. This is the order used by the
// paper's constructions: "the list ordered by increasing i".
var FIFO = Order{Name: "fifo", Indices: func(inst *core.Instance) []int {
	return identity(len(inst.Jobs))
}}

// LPT orders by decreasing processing time (the conclusion's suggested
// priority: "sorting the jobs by decreasing durations").
var LPT = Order{Name: "lpt", Indices: func(inst *core.Instance) []int {
	return sortBy(inst, func(a, b core.Job) bool { return a.Len > b.Len })
}}

// SPT orders by increasing processing time.
var SPT = Order{Name: "spt", Indices: func(inst *core.Instance) []int {
	return sortBy(inst, func(a, b core.Job) bool { return a.Len < b.Len })
}}

// WidestFirst orders by decreasing processor requirement.
var WidestFirst = Order{Name: "widest", Indices: func(inst *core.Instance) []int {
	return sortBy(inst, func(a, b core.Job) bool { return a.Procs > b.Procs })
}}

// NarrowestFirst orders by increasing processor requirement.
var NarrowestFirst = Order{Name: "narrowest", Indices: func(inst *core.Instance) []int {
	return sortBy(inst, func(a, b core.Job) bool { return a.Procs < b.Procs })
}}

// MaxWorkFirst orders by decreasing area p*q.
var MaxWorkFirst = Order{Name: "maxwork", Indices: func(inst *core.Instance) []int {
	return sortBy(inst, func(a, b core.Job) bool { return a.Work() > b.Work() })
}}

// RandomOrder returns a rule that shuffles the list with the given seed.
// Each call to Indices reseeds, so the same Order value always produces the
// same permutation for the same instance size.
func RandomOrder(seed uint64) Order {
	return Order{
		Name: "random",
		Indices: func(inst *core.Instance) []int {
			r := rng.New(seed)
			return r.Perm(len(inst.Jobs))
		},
	}
}

// Orders lists the deterministic rules, used by ablation experiments.
func Orders() []Order {
	return []Order{FIFO, LPT, SPT, WidestFirst, NarrowestFirst, MaxWorkFirst}
}
