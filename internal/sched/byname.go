package sched

import (
	"fmt"
	"sort"
)

// constructors maps CLI algorithm names to scheduler factories. Each call
// returns a fresh value so callers can't share mutable state.
var constructors = map[string]func() Scheduler{
	"lsrc":           func() Scheduler { return NewLSRC(FIFO) },
	"lsrc-fifo":      func() Scheduler { return NewLSRC(FIFO) },
	"lsrc-lpt":       func() Scheduler { return NewLSRC(LPT) },
	"lsrc-spt":       func() Scheduler { return NewLSRC(SPT) },
	"lsrc-widest":    func() Scheduler { return NewLSRC(WidestFirst) },
	"lsrc-narrowest": func() Scheduler { return NewLSRC(NarrowestFirst) },
	"lsrc-maxwork":   func() Scheduler { return NewLSRC(MaxWorkFirst) },
	"fcfs":           func() Scheduler { return FCFS{} },
	"cons-bf":        func() Scheduler { return Conservative{} },
	"easy-bf":        func() Scheduler { return EASY{} },
	"shelf-nfdh":     func() Scheduler { return &Shelf{Fit: NextFit} },
	"shelf-ffdh":     func() Scheduler { return &Shelf{Fit: FirstFit} },
}

// ByName returns the scheduler registered under the given CLI name.
func ByName(name string) (Scheduler, error) {
	mk, ok := constructors[name]
	if !ok {
		return nil, fmt.Errorf("sched: unknown algorithm %q (available: %v)", name, Names())
	}
	return mk(), nil
}

// Names lists the registered algorithm names, sorted.
func Names() []string {
	out := make([]string, 0, len(constructors))
	for n := range constructors {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
