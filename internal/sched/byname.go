package sched

import (
	"fmt"
	"sort"

	"repro/internal/profile"
)

// constructors maps CLI algorithm names to backend-parameterised scheduler
// factories. Each call returns a fresh value so callers can't share
// mutable state; the backend string selects the capacity index ("" =
// array, "tree" = restree) every placement query runs on.
var constructors = map[string]func(backend string) Scheduler{
	"lsrc":           func(b string) Scheduler { return &LSRC{Order: FIFO, Backend: b} },
	"lsrc-fifo":      func(b string) Scheduler { return &LSRC{Order: FIFO, Backend: b} },
	"lsrc-lpt":       func(b string) Scheduler { return &LSRC{Order: LPT, Backend: b} },
	"lsrc-spt":       func(b string) Scheduler { return &LSRC{Order: SPT, Backend: b} },
	"lsrc-widest":    func(b string) Scheduler { return &LSRC{Order: WidestFirst, Backend: b} },
	"lsrc-narrowest": func(b string) Scheduler { return &LSRC{Order: NarrowestFirst, Backend: b} },
	"lsrc-maxwork":   func(b string) Scheduler { return &LSRC{Order: MaxWorkFirst, Backend: b} },
	"fcfs":           func(b string) Scheduler { return FCFS{Backend: b} },
	"cons-bf":        func(b string) Scheduler { return Conservative{Backend: b} },
	"easy-bf":        func(b string) Scheduler { return EASY{Backend: b} },
	"shelf-nfdh":     func(b string) Scheduler { return &Shelf{Fit: NextFit, Backend: b} },
	"shelf-ffdh":     func(b string) Scheduler { return &Shelf{Fit: FirstFit, Backend: b} },
}

// ByName returns the scheduler registered under the given CLI name, on the
// default (array) capacity backend.
func ByName(name string) (Scheduler, error) {
	return ByNameOn(name, "")
}

// ByNameOn returns the named scheduler running on the named capacity
// backend ("" selects profile.DefaultBackend). The backend name is
// validated eagerly so CLIs fail fast on typos rather than at Schedule
// time.
func ByNameOn(name, backend string) (Scheduler, error) {
	mk, ok := constructors[name]
	if !ok {
		return nil, fmt.Errorf("sched: unknown algorithm %q (available: %v)", name, Names())
	}
	if backend != "" {
		if _, err := profile.NewIndex(backend, 0); err != nil {
			return nil, fmt.Errorf("sched: %w", err)
		}
	}
	return mk(backend), nil
}

// Names lists the registered algorithm names, sorted.
func Names() []string {
	out := make([]string, 0, len(constructors))
	for n := range constructors {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
