package sched

import (
	"fmt"

	"repro/internal/core"
)

// LSRC is the list scheduling algorithm with resource constraints analysed
// throughout the paper (Garey & Graham's algorithm, equal to the most
// aggressive back-filling variant). It is event-driven: at every instant
// where availability changes it scans the priority list once and starts
// every job whose entire execution window fits in the remaining
// availability.
//
// Guarantees reproduced by the experiments:
//   - without reservations: Cmax <= (2 - 1/m)·C*max (Theorem 2);
//   - with non-increasing reservations: Cmax <= (2 - 1/m(C*max))·C*max
//     (Proposition 1);
//   - with α-restricted reservations: Cmax <= (2/α)·C*max (Proposition 3),
//     with worst cases at least 2/α - 1 + α/2 (Proposition 2).
type LSRC struct {
	// Order is the priority rule; FIFO when zero.
	Order Order
	// Backend selects the capacity-index implementation ("" = array).
	Backend string
}

// NewLSRC returns an LSRC scheduler with the given priority order.
func NewLSRC(order Order) *LSRC { return &LSRC{Order: order} }

// Name implements Scheduler.
func (l *LSRC) Name() string {
	o := l.order()
	return "lsrc-" + o.Name
}

func (l *LSRC) order() Order {
	if l.Order.Indices == nil {
		return FIFO
	}
	return l.Order
}

// Schedule implements Scheduler.
//
// Correctness of event advancement: for a fixed committed timeline, the
// earliest feasible start of any job only changes at timeline breakpoints
// (a window [t, t+p) becomes feasible exactly when t passes the end of the
// last under-capacity segment blocking it). Scanning the list at every
// breakpoint therefore reproduces the continuous-time list scheduler.
func (l *LSRC) Schedule(inst *core.Instance) (*core.Schedule, error) {
	tl, err := prep(inst, l.Backend)
	if err != nil {
		return nil, err
	}
	s := core.NewSchedule(inst)
	s.Algorithm = l.Name()
	pending := l.order().Indices(inst)
	if len(pending) != len(inst.Jobs) {
		return nil, fmt.Errorf("%w: order returned %d indices for %d jobs",
			ErrInvalid, len(pending), len(inst.Jobs))
	}

	t := core.Time(0)
	for len(pending) > 0 {
		// One pass over the list in priority order: capacity only shrinks
		// during the pass, so no second pass can start additional jobs.
		kept := pending[:0]
		for _, idx := range pending {
			j := inst.Jobs[idx]
			if tl.CanPlace(t, j.Len, j.Procs) {
				if err := tl.Commit(t, j.Len, j.Procs); err != nil {
					return nil, fmt.Errorf("sched: internal: %v", err)
				}
				s.SetStart(idx, t)
			} else {
				kept = append(kept, idx)
			}
		}
		pending = kept
		if len(pending) == 0 {
			break
		}
		next, ok := tl.NextBreakpoint(t)
		if !ok {
			// Availability is constant on [t, inf) and the remaining jobs
			// do not fit: they never will.
			return nil, stuckErr(inst.Jobs[pending[0]])
		}
		t = next
	}
	return s, nil
}
