package sched

import "testing"

func TestByNameResolvesAll(t *testing.T) {
	for _, name := range Names() {
		sc, err := ByName(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if sc == nil {
			t.Fatalf("%s: nil scheduler", name)
		}
		// The canonical name of the scheduler should be resolvable too
		// (the "lsrc" alias resolves to "lsrc-fifo").
		if _, err := ByName(sc.Name()); err != nil {
			t.Fatalf("canonical name %q not registered: %v", sc.Name(), err)
		}
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("quantum-annealer"); err == nil {
		t.Fatal("unknown name accepted")
	}
}

func TestByNameReturnsFreshValues(t *testing.T) {
	a, _ := ByName("lsrc-lpt")
	b, _ := ByName("lsrc-lpt")
	la, lb := a.(*LSRC), b.(*LSRC)
	if la == lb {
		t.Fatal("ByName returned a shared pointer")
	}
}

func TestNamesSortedAndComplete(t *testing.T) {
	names := Names()
	if len(names) != 12 {
		t.Fatalf("expected 12 names, got %d: %v", len(names), names)
	}
	for i := 1; i < len(names); i++ {
		if names[i] <= names[i-1] {
			t.Fatal("names not sorted")
		}
	}
}
