package sched

import (
	"testing"

	"repro/internal/core"
	"repro/internal/instances"
	"repro/internal/rng"
	"repro/internal/workload"
)

// TestBackendsProduceIdenticalSchedules runs every registered algorithm on
// random reservation-laden instances under both capacity backends and
// requires start-for-start identical schedules: the CapacityIndex seam
// must be behaviour-preserving, not just makespan-preserving.
func TestBackendsProduceIdenticalSchedules(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		r := rng.New(seed)
		inst, err := workload.SyntheticInstance(r.Split(), workload.SynthConfig{
			M: 32, N: 60, MinRun: 1, MaxRun: 200, MaxWidthFrac: 0.5,
		})
		if err != nil {
			t.Fatal(err)
		}
		inst.Res = workload.ReservationStream(r.Split(), 32, 0.5, 8, 2000)
		for _, name := range Names() {
			array, err := ByNameOn(name, "array")
			if err != nil {
				t.Fatal(err)
			}
			tree, err := ByNameOn(name, "tree")
			if err != nil {
				t.Fatal(err)
			}
			sa, errA := array.Schedule(inst)
			st, errT := tree.Schedule(inst)
			if (errA == nil) != (errT == nil) {
				t.Fatalf("seed %d %s: array err %v, tree err %v", seed, name, errA, errT)
			}
			if errA != nil {
				continue
			}
			if sa.Makespan() != st.Makespan() {
				t.Fatalf("seed %d %s: makespan %v (array) vs %v (tree)",
					seed, name, sa.Makespan(), st.Makespan())
			}
			for i := range sa.Start {
				if sa.Start[i] != st.Start[i] {
					t.Fatalf("seed %d %s: job %d starts at %v (array) vs %v (tree)",
						seed, name, i, sa.Start[i], st.Start[i])
				}
			}
		}
	}
}

// TestBackendOnAdversarialInstances covers the paper's hand-built worst
// cases, whose reservation structure (staircases, infinite tails) stresses
// segment handling more than random draws.
func TestBackendOnAdversarialInstances(t *testing.T) {
	inst, err := instances.Prop2Instance(6)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"lsrc-fifo", "easy-bf", "cons-bf"} {
		array, _ := ByNameOn(name, "array")
		tree, _ := ByNameOn(name, "tree")
		sa, errA := array.Schedule(inst)
		st, errT := tree.Schedule(inst)
		if errA != nil || errT != nil {
			t.Fatalf("%s: array err %v, tree err %v", name, errA, errT)
		}
		if sa.Makespan() != st.Makespan() {
			t.Fatalf("%s: makespan diverges %v vs %v", name, sa.Makespan(), st.Makespan())
		}
	}
}

func TestByNameOnValidatesBackend(t *testing.T) {
	if _, err := ByNameOn("lsrc", "btree-of-wishes"); err == nil {
		t.Fatal("want error for unknown backend")
	}
	if _, err := ByNameOn("no-such-alg", "tree"); err == nil {
		t.Fatal("want error for unknown algorithm")
	}
	sc, err := ByNameOn("lsrc-lpt", "tree")
	if err != nil {
		t.Fatal(err)
	}
	if sc.Name() != "lsrc-lpt" {
		t.Fatalf("backend choice must not change the algorithm name, got %q", sc.Name())
	}
	l, ok := sc.(*LSRC)
	if !ok || l.Backend != "tree" {
		t.Fatalf("ByNameOn did not thread the backend: %#v", sc)
	}
}

// TestByNameDefaultsToArray pins the compatibility contract: plain ByName
// behaves exactly as before the seam existed.
func TestByNameDefaultsToArray(t *testing.T) {
	sc, err := ByName("fcfs")
	if err != nil {
		t.Fatal(err)
	}
	f, ok := sc.(FCFS)
	if !ok || f.Backend != "" {
		t.Fatalf("ByName must build the default backend, got %#v", sc)
	}
	inst := &core.Instance{
		M:    4,
		Jobs: []core.Job{{ID: 0, Procs: 2, Len: 3}},
		Res:  []core.Reservation{{ID: 0, Procs: 4, Start: 0, Len: 3}},
	}
	s, err := sc.Schedule(inst)
	if err != nil {
		t.Fatal(err)
	}
	if s.StartOf(0) != 3 {
		t.Fatalf("job should start when the reservation ends, got %v", s.StartOf(0))
	}
}
