package sched

import (
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/verify"
)

// prop2K3 is the Proposition 2 adversarial instance for k=3 (α=2/3),
// scaled by k so all times are integral:
//
//	m = k²(k-1) = 18
//	k=3 small tasks: q=(k-1)²=4, p=1 (unscaled 1/k)
//	k-1=2 big tasks:  q=k(k-1)+1=7, p=3 (unscaled 1)
//	one reservation: q=k(k-1)(k-2)=6, start=3, len=18 (unscaled 2k)
//
// Optimal (scaled) makespan is 3; LSRC with the FIFO list achieves 7.
func prop2K3() *core.Instance {
	return &core.Instance{
		Name: "prop2-k3",
		M:    18,
		Jobs: []core.Job{
			{ID: 0, Procs: 4, Len: 1},
			{ID: 1, Procs: 4, Len: 1},
			{ID: 2, Procs: 4, Len: 1},
			{ID: 3, Procs: 7, Len: 3},
			{ID: 4, Procs: 7, Len: 3},
		},
		Res: []core.Reservation{{ID: 0, Procs: 6, Start: 3, Len: 18}},
	}
}

func TestLSRCEmptyInstance(t *testing.T) {
	inst := &core.Instance{M: 4}
	s, err := NewLSRC(FIFO).Schedule(inst)
	if err != nil {
		t.Fatal(err)
	}
	if s.Makespan() != 0 {
		t.Fatalf("empty makespan = %v", s.Makespan())
	}
}

func TestLSRCSimplePacking(t *testing.T) {
	inst := &core.Instance{M: 4, Jobs: []core.Job{
		{ID: 0, Procs: 2, Len: 10},
		{ID: 1, Procs: 2, Len: 10},
		{ID: 2, Procs: 4, Len: 5},
	}}
	s, err := NewLSRC(FIFO).Schedule(inst)
	if err != nil {
		t.Fatal(err)
	}
	if err := verify.Verify(s); err != nil {
		t.Fatal(err)
	}
	// Jobs 0,1 at 0; job 2 after them.
	if s.StartOf(0) != 0 || s.StartOf(1) != 0 || s.StartOf(2) != 10 {
		t.Fatalf("starts = %v", s.Start)
	}
	if s.Makespan() != 15 {
		t.Fatalf("makespan = %v, want 15", s.Makespan())
	}
}

func TestLSRCAvoidsFutureReservation(t *testing.T) {
	// One job that would collide with a reservation if started eagerly.
	inst := &core.Instance{
		M:    4,
		Jobs: []core.Job{{ID: 0, Procs: 3, Len: 10}},
		Res:  []core.Reservation{{ID: 0, Procs: 2, Start: 5, Len: 5}},
	}
	s, err := NewLSRC(FIFO).Schedule(inst)
	if err != nil {
		t.Fatal(err)
	}
	if err := verify.Verify(s); err != nil {
		t.Fatal(err)
	}
	// Cannot start in [0,5) (would overlap the reservation window with only
	// 2 procs free); earliest start is 10.
	if s.StartOf(0) != 10 {
		t.Fatalf("start = %v, want 10", s.StartOf(0))
	}
}

func TestLSRCBackfillsThinJobThroughReservation(t *testing.T) {
	inst := &core.Instance{
		M: 4,
		Jobs: []core.Job{
			{ID: 0, Procs: 3, Len: 10}, // must wait for the reservation
			{ID: 1, Procs: 1, Len: 3},  // fits alongside everything now
		},
		Res: []core.Reservation{{ID: 0, Procs: 2, Start: 5, Len: 5}},
	}
	s, err := NewLSRC(FIFO).Schedule(inst)
	if err != nil {
		t.Fatal(err)
	}
	if s.StartOf(1) != 0 {
		t.Fatalf("thin job should start immediately, got %v", s.StartOf(1))
	}
	if s.StartOf(0) != 10 {
		t.Fatalf("wide job start = %v, want 10", s.StartOf(0))
	}
}

func TestLSRCProposition2Trace(t *testing.T) {
	// The FIFO list must reproduce the paper's worst case exactly:
	// smalls at 0, then the two big tasks serialised through the
	// reservation window, makespan 1 + (k-1)*k = 7 (scaled).
	inst := prop2K3()
	s, err := NewLSRC(FIFO).Schedule(inst)
	if err != nil {
		t.Fatal(err)
	}
	if err := verify.Verify(s); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if s.StartOf(i) != 0 {
			t.Fatalf("small task %d start = %v, want 0", i, s.StartOf(i))
		}
	}
	if s.StartOf(3) != 1 || s.StartOf(4) != 4 {
		t.Fatalf("big task starts = %v, %v; want 1, 4", s.StartOf(3), s.StartOf(4))
	}
	if s.Makespan() != 7 {
		t.Fatalf("LSRC makespan = %v, want 7 (= (2/α - 1 + α/2)·C*)", s.Makespan())
	}
}

func TestLSRCLPTFixesProposition2(t *testing.T) {
	// With LPT priority the big tasks go first and the instance schedules
	// optimally (makespan 3): the conclusion's suggested improvement.
	inst := prop2K3()
	s, err := NewLSRC(LPT).Schedule(inst)
	if err != nil {
		t.Fatal(err)
	}
	if err := verify.Verify(s); err != nil {
		t.Fatal(err)
	}
	if s.Makespan() != 3 {
		t.Fatalf("LSRC-LPT makespan = %v, want optimal 3", s.Makespan())
	}
}

func TestLSRCStuckOnInfiniteReservation(t *testing.T) {
	inst := &core.Instance{
		M:    4,
		Jobs: []core.Job{{ID: 0, Procs: 3, Len: 5}},
		Res:  []core.Reservation{{ID: 0, Procs: 2, Start: 2, Len: core.Infinity}},
	}
	// Job is 3-wide and needs 5 ticks; only [0,2) has 4 procs, after that
	// 2 forever: unschedulable.
	_, err := NewLSRC(FIFO).Schedule(inst)
	if !errors.Is(err, ErrStuck) {
		t.Fatalf("got %v, want ErrStuck", err)
	}
}

func TestLSRCFitsBeforeInfiniteReservation(t *testing.T) {
	inst := &core.Instance{
		M:    4,
		Jobs: []core.Job{{ID: 0, Procs: 3, Len: 2}},
		Res:  []core.Reservation{{ID: 0, Procs: 2, Start: 2, Len: core.Infinity}},
	}
	s, err := NewLSRC(FIFO).Schedule(inst)
	if err != nil {
		t.Fatal(err)
	}
	if s.StartOf(0) != 0 {
		t.Fatalf("start = %v", s.StartOf(0))
	}
}

func TestLSRCRejectsInvalidInstance(t *testing.T) {
	inst := &core.Instance{M: 0}
	if _, err := NewLSRC(FIFO).Schedule(inst); !errors.Is(err, ErrInvalid) {
		t.Fatalf("got %v, want ErrInvalid", err)
	}
}

func TestLSRCDeterministic(t *testing.T) {
	inst := prop2K3()
	a, err := NewLSRC(FIFO).Schedule(inst)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewLSRC(FIFO).Schedule(inst)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Start {
		if a.Start[i] != b.Start[i] {
			t.Fatalf("nondeterministic schedule at job %d", i)
		}
	}
}

func TestLSRCName(t *testing.T) {
	if got := NewLSRC(FIFO).Name(); got != "lsrc-fifo" {
		t.Errorf("Name = %q", got)
	}
	if got := (&LSRC{}).Name(); got != "lsrc-fifo" {
		t.Errorf("zero-order Name = %q", got)
	}
	if got := NewLSRC(LPT).Name(); got != "lsrc-lpt" {
		t.Errorf("Name = %q", got)
	}
}

func TestLSRCGrahamTwoMinusOneOverM(t *testing.T) {
	// Classic Graham anomaly family (no reservations): m-1 unit jobs plus
	// one long job; FIFO list runs the long job last. C* = p, LSRC = 1+p
	// with p = m-1... here widths are 1 so this is the sequential case:
	// m(m-1) unit jobs then one job of length m. C* = m (perfect packing),
	// LSRC-FIFO = 2m - 1, ratio exactly 2 - 1/m.
	m := 4
	inst := &core.Instance{M: m}
	id := 0
	for i := 0; i < m*(m-1); i++ {
		inst.Jobs = append(inst.Jobs, core.Job{ID: id, Procs: 1, Len: 1})
		id++
	}
	inst.Jobs = append(inst.Jobs, core.Job{ID: id, Procs: 1, Len: core.Time(m)})
	s, err := NewLSRC(FIFO).Schedule(inst)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := s.Makespan(), core.Time(2*m-1); got != want {
		t.Fatalf("makespan = %v, want %v (ratio 2-1/m)", got, want)
	}
}
