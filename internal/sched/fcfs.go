package sched

import "repro/internal/core"

// FCFS is first-come-first-served with head-of-line blocking (§2.2 of the
// paper): jobs are considered strictly in submission order, each started at
// the earliest instant that fits its whole window, and **no job may start
// before the job ahead of it has started**. The paper notes this policy has
// no constant performance guarantee — a wide job at the head of the queue
// idles almost the whole machine (reproduced by the EXP-FC experiment).
type FCFS struct {
	// Backend selects the capacity-index implementation ("" = array).
	Backend string
}

// Name implements Scheduler.
func (FCFS) Name() string { return "fcfs" }

// Schedule implements Scheduler. Since job i+1 may start no earlier than
// job i, the greedy earliest placement is simply a FindSlot chain where the
// ready time is the previous job's start.
func (f FCFS) Schedule(inst *core.Instance) (*core.Schedule, error) {
	tl, err := prep(inst, f.Backend)
	if err != nil {
		return nil, err
	}
	s := core.NewSchedule(inst)
	s.Algorithm = "fcfs"
	ready := core.Time(0)
	for idx, j := range inst.Jobs {
		start, ok := tl.FindSlot(ready, j.Procs, j.Len)
		if !ok {
			return nil, stuckErr(j)
		}
		if err := tl.Commit(start, j.Len, j.Procs); err != nil {
			return nil, err
		}
		s.SetStart(idx, start)
		ready = start
	}
	return s, nil
}

// Conservative is conservative back-filling (§2.2): jobs are placed in
// submission order, each at the earliest instant that fits, **without
// moving any previously placed job** (earlier-submitted jobs keep their
// placements; later jobs may still slot into gaps before them, which is
// exactly what distinguishes it from FCFS).
type Conservative struct {
	// Backend selects the capacity-index implementation ("" = array).
	Backend string
}

// Name implements Scheduler.
func (Conservative) Name() string { return "cons-bf" }

// Schedule implements Scheduler.
func (c Conservative) Schedule(inst *core.Instance) (*core.Schedule, error) {
	tl, err := prep(inst, c.Backend)
	if err != nil {
		return nil, err
	}
	s := core.NewSchedule(inst)
	s.Algorithm = "cons-bf"
	for idx, j := range inst.Jobs {
		start, ok := tl.FindSlot(0, j.Procs, j.Len)
		if !ok {
			return nil, stuckErr(j)
		}
		if err := tl.Commit(start, j.Len, j.Procs); err != nil {
			return nil, err
		}
		s.SetStart(idx, start)
	}
	return s, nil
}
