package sched

import (
	"testing"

	"repro/internal/core"
	"repro/internal/verify"
)

func TestShelfNFDHSimple(t *testing.T) {
	inst := &core.Instance{M: 4, Jobs: []core.Job{
		{ID: 0, Procs: 2, Len: 10},
		{ID: 1, Procs: 2, Len: 8},
		{ID: 2, Procs: 2, Len: 6},
		{ID: 3, Procs: 2, Len: 4},
	}}
	s, err := (&Shelf{}).Schedule(inst)
	if err != nil {
		t.Fatal(err)
	}
	if err := verify.Verify(s); err != nil {
		t.Fatal(err)
	}
	// Sorted by decreasing length: shelf 1 = {0,1} height 10, shelf 2 =
	// {2,3} height 6 -> makespan 16.
	if s.StartOf(0) != 0 || s.StartOf(1) != 0 {
		t.Fatalf("first shelf starts = %v %v", s.StartOf(0), s.StartOf(1))
	}
	if s.StartOf(2) != 10 || s.StartOf(3) != 10 {
		t.Fatalf("second shelf starts = %v %v", s.StartOf(2), s.StartOf(3))
	}
	if s.Makespan() != 16 {
		t.Fatalf("makespan = %v, want 16", s.Makespan())
	}
}

func TestShelfFFDHBeatsNFDHWhenGapRemains(t *testing.T) {
	// NFDH closes a shelf as soon as one job fails to fit; FFDH can stack
	// the narrow job back onto the first shelf.
	inst := &core.Instance{M: 4, Jobs: []core.Job{
		{ID: 0, Procs: 2, Len: 10},
		{ID: 1, Procs: 3, Len: 8}, // does not fit beside 0: opens shelf 2
		{ID: 2, Procs: 2, Len: 6}, // FFDH: back onto shelf 1; NFDH: shelf 3
	}}
	nfdh, err := (&Shelf{Fit: NextFit}).Schedule(inst)
	if err != nil {
		t.Fatal(err)
	}
	ffdh, err := (&Shelf{Fit: FirstFit}).Schedule(inst)
	if err != nil {
		t.Fatal(err)
	}
	if err := verify.Verify(nfdh); err != nil {
		t.Fatal(err)
	}
	if err := verify.Verify(ffdh); err != nil {
		t.Fatal(err)
	}
	if nfdh.Makespan() != 24 { // 10 + 8 + 6
		t.Fatalf("NFDH makespan = %v, want 24", nfdh.Makespan())
	}
	if ffdh.Makespan() != 18 { // shelf1 {0,2} h10, shelf2 {1} h8
		t.Fatalf("FFDH makespan = %v, want 18", ffdh.Makespan())
	}
}

func TestShelfAroundReservation(t *testing.T) {
	inst := &core.Instance{
		M: 4,
		Jobs: []core.Job{
			{ID: 0, Procs: 4, Len: 5},
			{ID: 1, Procs: 4, Len: 3},
		},
		Res: []core.Reservation{{ID: 0, Procs: 4, Start: 5, Len: 5}},
	}
	s, err := (&Shelf{}).Schedule(inst)
	if err != nil {
		t.Fatal(err)
	}
	if err := verify.Verify(s); err != nil {
		t.Fatal(err)
	}
	// Shelf 1 (job 0) fits exactly in [0,5); shelf 2 must wait out the
	// reservation.
	if s.StartOf(0) != 0 || s.StartOf(1) != 10 {
		t.Fatalf("starts = %v", s.Start)
	}
}

func TestShelfMaxWidthCap(t *testing.T) {
	inst := &core.Instance{M: 8, Jobs: []core.Job{
		{ID: 0, Procs: 3, Len: 5},
		{ID: 1, Procs: 3, Len: 5},
		{ID: 2, Procs: 3, Len: 5},
	}}
	s, err := (&Shelf{MaxWidth: 6}).Schedule(inst)
	if err != nil {
		t.Fatal(err)
	}
	// Cap 6: two jobs per shelf -> two shelves.
	if s.Makespan() != 10 {
		t.Fatalf("makespan = %v, want 10", s.Makespan())
	}
	wide, err := (&Shelf{MaxWidth: 9}).Schedule(inst) // clamped to m=8
	if err != nil {
		t.Fatal(err)
	}
	if wide.Makespan() != 10 {
		t.Fatalf("clamped makespan = %v, want 10", wide.Makespan())
	}
}

func TestShelfSingletonWiderThanCap(t *testing.T) {
	// A job wider than MaxWidth still gets scheduled on its own shelf.
	inst := &core.Instance{M: 8, Jobs: []core.Job{{ID: 0, Procs: 7, Len: 2}}}
	s, err := (&Shelf{MaxWidth: 4}).Schedule(inst)
	if err != nil {
		t.Fatal(err)
	}
	if s.StartOf(0) != 0 {
		t.Fatalf("start = %v", s.StartOf(0))
	}
}

func TestShelfEmpty(t *testing.T) {
	s, err := (&Shelf{}).Schedule(&core.Instance{M: 3})
	if err != nil || s.Makespan() != 0 {
		t.Fatalf("empty shelf schedule: %v %v", s, err)
	}
}
