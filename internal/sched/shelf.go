package sched

import (
	"sort"

	"repro/internal/core"
)

// ShelfFit selects how jobs are packed onto shelves.
type ShelfFit int

const (
	// NextFit packs each job onto the newest shelf, opening a new shelf
	// when it does not fit (NFDH).
	NextFit ShelfFit = iota
	// FirstFit packs each job onto the first shelf with enough remaining
	// width, opening a new shelf only when none fits (FFDH).
	FirstFit
)

// Shelf is the conclusion's "partition on shelves" heuristic adapted to
// reservations. Jobs are sorted by decreasing duration and packed onto
// shelves (groups of jobs that run concurrently; a shelf's height is the
// duration of its first, longest job and its width the total processor
// requirement). Shelves are then placed in order, each at the earliest
// instant after the previous shelf's start at which the whole shelf fits
// around the reservations.
type Shelf struct {
	// Fit selects NFDH (NextFit) or FFDH (FirstFit) packing.
	Fit ShelfFit
	// MaxWidth optionally caps a shelf's total width; 0 means m.
	MaxWidth int
	// Backend selects the capacity-index implementation ("" = array).
	Backend string
}

// Name implements Scheduler.
func (sh *Shelf) Name() string {
	if sh.Fit == FirstFit {
		return "shelf-ffdh"
	}
	return "shelf-nfdh"
}

type shelf struct {
	height core.Time
	width  int
	jobs   []int
}

// Schedule implements Scheduler.
func (sh *Shelf) Schedule(inst *core.Instance) (*core.Schedule, error) {
	tl, err := prep(inst, sh.Backend)
	if err != nil {
		return nil, err
	}
	maxW := sh.MaxWidth
	if maxW <= 0 || maxW > inst.M {
		maxW = inst.M
	}

	// Sort by decreasing duration (ties by index for determinism).
	idx := make([]int, len(inst.Jobs))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		return inst.Jobs[idx[a]].Len > inst.Jobs[idx[b]].Len
	})

	var shelves []shelf
	for _, i := range idx {
		j := inst.Jobs[i]
		w := j.Procs
		placed := false
		switch sh.Fit {
		case FirstFit:
			for k := range shelves {
				if shelves[k].width+w <= maxW {
					shelves[k].width += w
					shelves[k].jobs = append(shelves[k].jobs, i)
					placed = true
					break
				}
			}
		default: // NextFit
			if n := len(shelves); n > 0 && shelves[n-1].width+w <= maxW {
				shelves[n-1].width += w
				shelves[n-1].jobs = append(shelves[n-1].jobs, i)
				placed = true
			}
		}
		if !placed {
			// Jobs wider than maxW (possible when MaxWidth < q_max) still
			// get their own shelf; shelf width is then j.Procs <= m.
			shelves = append(shelves, shelf{height: j.Len, width: w, jobs: []int{i}})
		}
	}

	s := core.NewSchedule(inst)
	s.Algorithm = sh.Name()
	ready := core.Time(0)
	for _, shf := range shelves {
		start, ok := tl.FindSlot(ready, shf.width, shf.height)
		if !ok {
			return nil, stuckErr(inst.Jobs[shf.jobs[0]])
		}
		// Commit jobs individually (their total equals the shelf width, and
		// each is no longer than the shelf height, so all fit at start).
		for _, i := range shf.jobs {
			j := inst.Jobs[i]
			if err := tl.Commit(start, j.Len, j.Procs); err != nil {
				return nil, err
			}
			s.SetStart(i, start)
		}
		// The next shelf goes strictly above this one.
		ready = start + shf.height
	}
	return s, nil
}
