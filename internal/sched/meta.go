package sched

import (
	"fmt"

	"repro/internal/core"
)

// OrderedConservative is conservative back-filling driven by a priority
// rule instead of submission order: jobs are placed at their earliest
// non-disturbing slot in priority order. With FIFO it equals Conservative.
type OrderedConservative struct {
	// Order is the placement priority; FIFO when zero.
	Order Order
	// Backend selects the capacity-index implementation ("" = array).
	Backend string
}

// Name implements Scheduler.
func (c *OrderedConservative) Name() string {
	o := c.Order
	if o.Indices == nil {
		o = FIFO
	}
	return "cons-bf-" + o.Name
}

// Schedule implements Scheduler.
func (c *OrderedConservative) Schedule(inst *core.Instance) (*core.Schedule, error) {
	tl, err := prep(inst, c.Backend)
	if err != nil {
		return nil, err
	}
	o := c.Order
	if o.Indices == nil {
		o = FIFO
	}
	s := core.NewSchedule(inst)
	s.Algorithm = c.Name()
	for _, idx := range o.Indices(inst) {
		j := inst.Jobs[idx]
		start, ok := tl.FindSlot(0, j.Procs, j.Len)
		if !ok {
			return nil, stuckErr(j)
		}
		if err := tl.Commit(start, j.Len, j.Procs); err != nil {
			return nil, err
		}
		s.SetStart(idx, start)
	}
	return s, nil
}

// BestOf runs several schedulers and keeps the schedule with the smallest
// makespan — the cheap portfolio heuristic practitioners actually deploy
// (the guarantees of §4 hold for it a fortiori, since LSRC variants are
// among the candidates).
type BestOf struct {
	// Candidates are the schedulers to race; must be non-empty.
	Candidates []Scheduler
}

// DefaultPortfolio returns a BestOf over every LSRC priority rule plus
// ordered conservative back-filling with LPT.
func DefaultPortfolio() *BestOf {
	b := &BestOf{}
	for _, o := range Orders() {
		b.Candidates = append(b.Candidates, NewLSRC(o))
	}
	b.Candidates = append(b.Candidates, &OrderedConservative{Order: LPT})
	return b
}

// Name implements Scheduler.
func (b *BestOf) Name() string { return fmt.Sprintf("best-of-%d", len(b.Candidates)) }

// Schedule implements Scheduler. Candidate errors are tolerated as long as
// at least one candidate succeeds (e.g. shelves may report ErrStuck on
// instances with infinite reservations that list variants handle).
func (b *BestOf) Schedule(inst *core.Instance) (*core.Schedule, error) {
	if len(b.Candidates) == 0 {
		return nil, fmt.Errorf("%w: BestOf with no candidates", ErrInvalid)
	}
	var best *core.Schedule
	var firstErr error
	for _, c := range b.Candidates {
		s, err := c.Schedule(inst)
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("%s: %w", c.Name(), err)
			}
			continue
		}
		if best == nil || s.Makespan() < best.Makespan() {
			best = s
		}
	}
	if best == nil {
		return nil, firstErr
	}
	best.Algorithm = b.Name() + "/" + best.Algorithm
	return best, nil
}
