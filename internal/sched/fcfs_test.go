package sched

import (
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/verify"
)

// fcfsBlockFixture: a wide job at the head of the queue blocks a thin one
// under FCFS; LSRC and the back-filling variants let the thin one through.
func fcfsBlockFixture() *core.Instance {
	return &core.Instance{
		M: 4,
		Jobs: []core.Job{
			{ID: 0, Procs: 2, Len: 10}, // running first
			{ID: 1, Procs: 4, Len: 5},  // head blocker: must wait for 0
			{ID: 2, Procs: 2, Len: 5},  // could run beside 0 right now
		},
	}
}

func TestFCFSHeadOfLineBlocking(t *testing.T) {
	s, err := FCFS{}.Schedule(fcfsBlockFixture())
	if err != nil {
		t.Fatal(err)
	}
	if err := verify.Verify(s); err != nil {
		t.Fatal(err)
	}
	if s.StartOf(0) != 0 {
		t.Fatalf("job 0 start = %v", s.StartOf(0))
	}
	// Job 1 needs the whole machine: waits until 10.
	if s.StartOf(1) != 10 {
		t.Fatalf("job 1 start = %v, want 10", s.StartOf(1))
	}
	// Job 2 must NOT start before job 1 (head-of-line): earliest is 10,
	// but job 1 occupies everything until 15.
	if s.StartOf(2) != 15 {
		t.Fatalf("job 2 start = %v, want 15 (blocked behind the wide job)", s.StartOf(2))
	}
	if s.Makespan() != 20 {
		t.Fatalf("makespan = %v, want 20", s.Makespan())
	}
}

func TestLSRCBeatsFCFSOnBlockFixture(t *testing.T) {
	inst := fcfsBlockFixture()
	lsrc, err := NewLSRC(FIFO).Schedule(inst)
	if err != nil {
		t.Fatal(err)
	}
	// LSRC starts job 2 at 0 beside job 0; job 1 still waits until 10.
	if lsrc.StartOf(2) != 0 {
		t.Fatalf("LSRC job 2 start = %v, want 0", lsrc.StartOf(2))
	}
	if lsrc.Makespan() != 15 {
		t.Fatalf("LSRC makespan = %v, want 15", lsrc.Makespan())
	}
}

func TestFCFSRespectsReservations(t *testing.T) {
	inst := &core.Instance{
		M:    4,
		Jobs: []core.Job{{ID: 0, Procs: 4, Len: 6}},
		Res:  []core.Reservation{{ID: 0, Procs: 1, Start: 3, Len: 4}},
	}
	s, err := FCFS{}.Schedule(inst)
	if err != nil {
		t.Fatal(err)
	}
	if s.StartOf(0) != 7 {
		t.Fatalf("start = %v, want 7 (after the reservation)", s.StartOf(0))
	}
}

func TestFCFSStuck(t *testing.T) {
	inst := &core.Instance{
		M:    4,
		Jobs: []core.Job{{ID: 0, Procs: 4, Len: 1}},
		Res:  []core.Reservation{{ID: 0, Procs: 1, Start: 0, Len: core.Infinity}},
	}
	if _, err := (FCFS{}).Schedule(inst); !errors.Is(err, ErrStuck) {
		t.Fatalf("got %v, want ErrStuck", err)
	}
}

func TestFCFSPathologicalRatioM(t *testing.T) {
	// §2.2: an instance with optimal makespan ~1 whose FCFS schedule has
	// makespan ~m. Alternate m unit-width jobs of length 1 with full-width
	// tiny jobs: FCFS serialises everything.
	m := 6
	inst := &core.Instance{M: m}
	id := 0
	for i := 0; i < m; i++ {
		inst.Jobs = append(inst.Jobs, core.Job{ID: id, Procs: 1, Len: core.Time(m)})
		id++
		inst.Jobs = append(inst.Jobs, core.Job{ID: id, Procs: m, Len: 1})
		id++
	}
	fcfs, err := FCFS{}.Schedule(inst)
	if err != nil {
		t.Fatal(err)
	}
	lsrc, err := NewLSRC(FIFO).Schedule(inst)
	if err != nil {
		t.Fatal(err)
	}
	// FCFS: each (thin, wide) pair costs m+1 -> m(m+1). LSRC packs all
	// thin jobs together.
	if fcfs.Makespan() != core.Time(m*(m+1)) {
		t.Fatalf("FCFS makespan = %v, want %v", fcfs.Makespan(), m*(m+1))
	}
	if lsrc.Makespan() >= fcfs.Makespan() {
		t.Fatalf("LSRC (%v) should beat FCFS (%v)", lsrc.Makespan(), fcfs.Makespan())
	}
}

func TestConservativePlacesIntoGaps(t *testing.T) {
	inst := fcfsBlockFixture()
	s, err := Conservative{}.Schedule(inst)
	if err != nil {
		t.Fatal(err)
	}
	if err := verify.Verify(s); err != nil {
		t.Fatal(err)
	}
	// Conservative lets job 2 fill the hole beside job 0 because it does
	// not delay job 1 (which needs the full machine anyway).
	if s.StartOf(2) != 0 {
		t.Fatalf("job 2 start = %v, want 0", s.StartOf(2))
	}
	if s.Makespan() != 15 {
		t.Fatalf("makespan = %v, want 15", s.Makespan())
	}
}

func TestConservativePrefixStability(t *testing.T) {
	// Defining property: adding later jobs never changes earlier jobs'
	// start times.
	inst := prop2K3()
	full, err := Conservative{}.Schedule(inst)
	if err != nil {
		t.Fatal(err)
	}
	for k := 1; k < len(inst.Jobs); k++ {
		prefix := &core.Instance{M: inst.M, Jobs: inst.Jobs[:k], Res: inst.Res}
		ps, err := Conservative{}.Schedule(prefix)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < k; i++ {
			if ps.StartOf(i) != full.StartOf(i) {
				t.Fatalf("prefix %d: job %d moved from %v to %v",
					k, i, full.StartOf(i), ps.StartOf(i))
			}
		}
	}
}

func TestSchedulerNames(t *testing.T) {
	cases := []struct {
		s    Scheduler
		want string
	}{
		{FCFS{}, "fcfs"},
		{Conservative{}, "cons-bf"},
		{EASY{}, "easy-bf"},
		{&Shelf{}, "shelf-nfdh"},
		{&Shelf{Fit: FirstFit}, "shelf-ffdh"},
	}
	for _, c := range cases {
		if got := c.s.Name(); got != c.want {
			t.Errorf("Name = %q, want %q", got, c.want)
		}
	}
}
