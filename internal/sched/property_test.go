package sched

import (
	"testing"

	"repro/internal/core"
	"repro/internal/rng"
	"repro/internal/verify"
)

// randInstance builds a random feasible instance whose reservations never
// blockade the machine forever.
func randInstance(r *rng.PCG, maxM, maxJobs int) *core.Instance {
	m := r.IntRange(1, maxM)
	inst := &core.Instance{M: m}
	n := r.IntRange(0, maxJobs)
	for i := 0; i < n; i++ {
		inst.Jobs = append(inst.Jobs, core.Job{
			ID:    i,
			Procs: r.IntRange(1, m),
			Len:   core.Time(r.IntRange(1, 20)),
		})
	}
	// Reservations: random, rejected if they oversubscribe.
	nr := r.IntRange(0, 4)
	u := make([]int, 200)
	for i := 0; i < nr; i++ {
		q := r.IntRange(1, m)
		start := core.Time(r.Intn(60))
		l := core.Time(r.IntRange(1, 30))
		ok := true
		for tm := start; tm < start+l && int(tm) < len(u); tm++ {
			if u[tm]+q > m {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		for tm := start; tm < start+l && int(tm) < len(u); tm++ {
			u[tm] += q
		}
		inst.Res = append(inst.Res, core.Reservation{ID: len(inst.Res), Procs: q, Start: start, Len: l})
	}
	return inst
}

func allSchedulers() []Scheduler {
	return []Scheduler{
		NewLSRC(FIFO), NewLSRC(LPT), NewLSRC(SPT),
		NewLSRC(WidestFirst), NewLSRC(NarrowestFirst), NewLSRC(MaxWorkFirst),
		NewLSRC(RandomOrder(7)),
		FCFS{}, Conservative{}, EASY{},
		&Shelf{Fit: NextFit}, &Shelf{Fit: FirstFit},
	}
}

// TestAllSchedulersProduceFeasibleSchedules is the central safety property:
// every policy, on every random instance, yields a complete schedule that
// passes full verification (capacity + concrete processor assignment).
func TestAllSchedulersProduceFeasibleSchedules(t *testing.T) {
	r := rng.New(42421)
	for trial := 0; trial < 150; trial++ {
		inst := randInstance(r, 10, 12)
		for _, sc := range allSchedulers() {
			s, err := sc.Schedule(inst)
			if err != nil {
				t.Fatalf("trial %d: %s failed: %v\ninstance: %+v", trial, sc.Name(), err, inst)
			}
			if !s.Complete() {
				t.Fatalf("trial %d: %s left jobs unscheduled", trial, sc.Name())
			}
			if err := verify.Verify(s); err != nil {
				t.Fatalf("trial %d: %s infeasible: %v\ninstance: %+v\nstarts: %v",
					trial, sc.Name(), err, inst, s.Start)
			}
		}
	}
}

// TestSchedulersDeterministic re-runs every policy and demands identical
// schedules.
func TestSchedulersDeterministic(t *testing.T) {
	r := rng.New(999)
	for trial := 0; trial < 25; trial++ {
		inst := randInstance(r, 8, 10)
		for _, sc := range allSchedulers() {
			a, err := sc.Schedule(inst)
			if err != nil {
				t.Fatal(err)
			}
			b, err := sc.Schedule(inst)
			if err != nil {
				t.Fatal(err)
			}
			for i := range a.Start {
				if a.Start[i] != b.Start[i] {
					t.Fatalf("%s nondeterministic on trial %d job %d", sc.Name(), trial, i)
				}
			}
		}
	}
}

// TestSchedulersDoNotMutateInstance guards against aliasing bugs.
func TestSchedulersDoNotMutateInstance(t *testing.T) {
	r := rng.New(31337)
	inst := randInstance(r, 8, 10)
	snapshot := inst.Clone()
	for _, sc := range allSchedulers() {
		if _, err := sc.Schedule(inst); err != nil {
			t.Fatal(err)
		}
	}
	if inst.M != snapshot.M || len(inst.Jobs) != len(snapshot.Jobs) {
		t.Fatal("instance shape mutated")
	}
	for i := range inst.Jobs {
		if inst.Jobs[i] != snapshot.Jobs[i] {
			t.Fatalf("job %d mutated", i)
		}
	}
	for i := range inst.Res {
		if inst.Res[i] != snapshot.Res[i] {
			t.Fatalf("reservation %d mutated", i)
		}
	}
}

// TestLSRCNoUnforcedIdleness: the defining property of list scheduling —
// whenever a job is waiting, it must be because it genuinely did not fit at
// every earlier instant (checked against the final committed timeline minus
// the job itself). We verify a weaker but exact consequence: at any time
// strictly before a job's start, starting it there (with everything else
// fixed) would violate capacity at some point of its window.
func TestLSRCNoUnforcedIdleness(t *testing.T) {
	r := rng.New(77777)
	for trial := 0; trial < 60; trial++ {
		inst := randInstance(r, 8, 8)
		s, err := NewLSRC(FIFO).Schedule(inst)
		if err != nil {
			t.Fatal(err)
		}
		total := s.TotalUsage()
		for i, j := range inst.Jobs {
			start := s.StartOf(i)
			// Try every earlier integral instant (random instances are
			// small, so this brute force is cheap).
			for cand := core.Time(0); cand < start; cand++ {
				// Would the job fit at cand given all other placements?
				fits := true
				for tm := cand; tm < cand+j.Len; tm++ {
					use := total.At(tm)
					if tm >= start && tm < start+j.Len {
						use -= j.Procs // remove the job's own usage
					}
					if use+j.Procs > inst.M {
						fits = false
						break
					}
				}
				if fits {
					t.Fatalf("trial %d: job %d idled: starts at %v but fits at %v\ninstance: %+v\nstarts: %v",
						trial, j.ID, start, cand, inst, s.Start)
				}
			}
		}
	}
}

// TestOrdersArePermutations checks every priority rule emits a permutation.
func TestOrdersArePermutations(t *testing.T) {
	r := rng.New(5)
	inst := randInstance(r, 8, 15)
	rules := append(Orders(), RandomOrder(3))
	for _, o := range rules {
		idx := o.Indices(inst)
		if len(idx) != len(inst.Jobs) {
			t.Fatalf("%s: wrong length", o.Name)
		}
		seen := make([]bool, len(idx))
		for _, v := range idx {
			if v < 0 || v >= len(idx) || seen[v] {
				t.Fatalf("%s: not a permutation: %v", o.Name, idx)
			}
			seen[v] = true
		}
	}
}

func TestOrderSemantics(t *testing.T) {
	inst := &core.Instance{M: 10, Jobs: []core.Job{
		{ID: 0, Procs: 2, Len: 5},
		{ID: 1, Procs: 8, Len: 9},
		{ID: 2, Procs: 5, Len: 1},
	}}
	check := func(name string, got, want []int) {
		t.Helper()
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s order = %v, want %v", name, got, want)
			}
		}
	}
	check("fifo", FIFO.Indices(inst), []int{0, 1, 2})
	check("lpt", LPT.Indices(inst), []int{1, 0, 2})
	check("spt", SPT.Indices(inst), []int{2, 0, 1})
	check("widest", WidestFirst.Indices(inst), []int{1, 2, 0})
	check("narrowest", NarrowestFirst.Indices(inst), []int{0, 2, 1})
	check("maxwork", MaxWorkFirst.Indices(inst), []int{1, 0, 2}) // 72, 10, 5
}

func TestRandomOrderStableForSeed(t *testing.T) {
	inst := &core.Instance{M: 4}
	for i := 0; i < 20; i++ {
		inst.Jobs = append(inst.Jobs, core.Job{ID: i, Procs: 1, Len: 1})
	}
	o := RandomOrder(11)
	a := o.Indices(inst)
	b := o.Indices(inst)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("RandomOrder not stable across calls")
		}
	}
}

// TestEASYNeverWorseThanFCFS: with exact runtimes, every EASY start time is
// no later than the FCFS start of the same job... this is NOT true in
// general (backfilled jobs can change the resource landscape), but the
// makespan comparison on random instances is a useful smoke check for the
// typical case; we assert only feasibility plus the documented head
// guarantee: the first job starts identically.
func TestEASYFirstJobGuarantee(t *testing.T) {
	r := rng.New(2718)
	for trial := 0; trial < 80; trial++ {
		inst := randInstance(r, 8, 10)
		if len(inst.Jobs) == 0 {
			continue
		}
		easy, err := EASY{}.Schedule(inst)
		if err != nil {
			t.Fatal(err)
		}
		fcfs, err := FCFS{}.Schedule(inst)
		if err != nil {
			t.Fatal(err)
		}
		if easy.StartOf(0) != fcfs.StartOf(0) {
			t.Fatalf("trial %d: first-job guarantee broken: EASY %v vs FCFS %v",
				trial, easy.StartOf(0), fcfs.StartOf(0))
		}
	}
}

// TestLSRCNeverWorseThanFCFSOnMakespanForFIFO is false in general (list
// scheduling anomalies), so instead we check a sound dominance: the
// conservative backfilling makespan never exceeds the FCFS makespan, since
// conservative placement is FindSlot from 0 instead of from the previous
// start (every job's slot search range is a superset).
func TestConservativeNeverWorseThanFCFS(t *testing.T) {
	r := rng.New(1414)
	for trial := 0; trial < 100; trial++ {
		inst := randInstance(r, 8, 10)
		cons, err := Conservative{}.Schedule(inst)
		if err != nil {
			t.Fatal(err)
		}
		fcfs, err := FCFS{}.Schedule(inst)
		if err != nil {
			t.Fatal(err)
		}
		// Per-job dominance: conservative starts each job no later than
		// FCFS does (inductively: its timeline is always a superset of free
		// capacity... which holds because each conservative start <= the
		// FCFS start pointwise).
		for i := range inst.Jobs {
			if cons.StartOf(i) > fcfs.StartOf(i) {
				t.Fatalf("trial %d: conservative start %v > FCFS start %v for job %d",
					trial, cons.StartOf(i), fcfs.StartOf(i), i)
			}
		}
	}
}
