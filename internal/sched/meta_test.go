package sched

import (
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/rng"
	"repro/internal/verify"
)

func TestOrderedConservativeMatchesConservativeOnFIFO(t *testing.T) {
	r := rng.New(808080)
	for trial := 0; trial < 50; trial++ {
		inst := randInstance(r, 8, 10)
		a, err := (&OrderedConservative{}).Schedule(inst)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Conservative{}.Schedule(inst)
		if err != nil {
			t.Fatal(err)
		}
		for i := range a.Start {
			if a.Start[i] != b.Start[i] {
				t.Fatalf("trial %d job %d: %v vs %v", trial, i, a.Start[i], b.Start[i])
			}
		}
	}
}

func TestOrderedConservativeLPTOnProp2(t *testing.T) {
	// LPT placement order also solves the Prop-2 fixture optimally.
	s, err := (&OrderedConservative{Order: LPT}).Schedule(prop2K3())
	if err != nil {
		t.Fatal(err)
	}
	if err := verify.Verify(s); err != nil {
		t.Fatal(err)
	}
	if s.Makespan() != 3 {
		t.Fatalf("makespan = %v, want 3", s.Makespan())
	}
}

func TestOrderedConservativeName(t *testing.T) {
	if got := (&OrderedConservative{}).Name(); got != "cons-bf-fifo" {
		t.Errorf("Name = %q", got)
	}
	if got := (&OrderedConservative{Order: LPT}).Name(); got != "cons-bf-lpt" {
		t.Errorf("Name = %q", got)
	}
}

func TestBestOfPicksMinimum(t *testing.T) {
	inst := prop2K3() // FIFO gives 7, LPT gives 3
	b := &BestOf{Candidates: []Scheduler{NewLSRC(FIFO), NewLSRC(LPT)}}
	s, err := b.Schedule(inst)
	if err != nil {
		t.Fatal(err)
	}
	if s.Makespan() != 3 {
		t.Fatalf("best-of makespan = %v, want 3", s.Makespan())
	}
	if s.Algorithm != "best-of-2/lsrc-lpt" {
		t.Fatalf("algorithm tag = %q", s.Algorithm)
	}
}

func TestBestOfNeverWorseThanAnyCandidate(t *testing.T) {
	r := rng.New(909090)
	for trial := 0; trial < 40; trial++ {
		inst := randInstance(r, 8, 10)
		p := DefaultPortfolio()
		best, err := p.Schedule(inst)
		if err != nil {
			t.Fatal(err)
		}
		if err := verify.Verify(best); err != nil {
			t.Fatal(err)
		}
		for _, c := range p.Candidates {
			s, err := c.Schedule(inst)
			if err != nil {
				continue
			}
			if best.Makespan() > s.Makespan() {
				t.Fatalf("trial %d: best-of %v worse than %s %v",
					trial, best.Makespan(), c.Name(), s.Makespan())
			}
		}
	}
}

func TestBestOfToleratesCandidateFailure(t *testing.T) {
	// An instance with an infinite reservation: the shelf gives up, LSRC
	// succeeds; BestOf must still return the LSRC schedule.
	inst := &core.Instance{
		M: 4,
		Jobs: []core.Job{
			{ID: 0, Procs: 2, Len: 5},
			{ID: 1, Procs: 2, Len: 3},
		},
		Res: []core.Reservation{{ID: 0, Procs: 2, Start: 20, Len: core.Infinity}},
	}
	b := &BestOf{Candidates: []Scheduler{&Shelf{}, NewLSRC(FIFO)}}
	s, err := b.Schedule(inst)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Complete() {
		t.Fatal("incomplete schedule")
	}
}

func TestBestOfAllFail(t *testing.T) {
	inst := &core.Instance{
		M:    4,
		Jobs: []core.Job{{ID: 0, Procs: 4, Len: 5}},
		Res:  []core.Reservation{{ID: 0, Procs: 1, Start: 0, Len: core.Infinity}},
	}
	b := &BestOf{Candidates: []Scheduler{NewLSRC(FIFO), FCFS{}}}
	if _, err := b.Schedule(inst); !errors.Is(err, ErrStuck) {
		t.Fatalf("got %v, want wrapped ErrStuck", err)
	}
}

func TestBestOfEmpty(t *testing.T) {
	if _, err := (&BestOf{}).Schedule(&core.Instance{M: 1}); !errors.Is(err, ErrInvalid) {
		t.Fatalf("got %v", err)
	}
}

// TestLemma1GrahamArgument checks the paper's Lemma 1 (appendix) on real
// LSRC schedules without reservations: for any two instants t, t' in
// [0, Cmax) with t' >= t + pmax, the processor usage satisfies
// r(t) + r(t') >= m + 1. (The lemma drives the continuous proof of
// Theorem 2.) Checking at usage breakpoints suffices: r is piecewise
// constant, and we evaluate every segment-pair spanning >= pmax.
func TestLemma1GrahamArgument(t *testing.T) {
	r := rng.New(515151)
	for trial := 0; trial < 120; trial++ {
		m := r.IntRange(2, 8)
		inst := &core.Instance{M: m}
		n := r.IntRange(2, 12)
		var pmax core.Time
		for i := 0; i < n; i++ {
			j := core.Job{ID: i, Procs: r.IntRange(1, m), Len: core.Time(r.IntRange(1, 9))}
			if j.Len > pmax {
				pmax = j.Len
			}
			inst.Jobs = append(inst.Jobs, j)
		}
		s, err := NewLSRC(RandomOrder(uint64(trial))).Schedule(inst)
		if err != nil {
			t.Fatal(err)
		}
		usage := s.Usage()
		cmax := s.Makespan()
		// Sample each segment at its start plus, defensively, one interior
		// point; segments are constant so starts suffice.
		var samples []core.Time
		for i := 0; i < usage.Len(); i++ {
			st, _, _ := usage.Segment(i)
			if st < cmax {
				samples = append(samples, st)
			}
		}
		for _, t0 := range samples {
			for _, t1 := range samples {
				if t1 < t0+pmax {
					continue
				}
				if got := usage.At(t0) + usage.At(t1); got < m+1 {
					t.Fatalf("trial %d: Lemma 1 violated: r(%v)+r(%v) = %d < m+1 = %d\nstarts: %v",
						trial, t0, t1, got, m+1, s.Start)
				}
			}
		}
	}
}
