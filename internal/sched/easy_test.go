package sched

import (
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/verify"
)

func TestEASYBackfillsAroundHead(t *testing.T) {
	// Job 1 (head after job 0 starts) needs the whole machine at t=10.
	// Job 2 fits entirely before that shadow: EASY starts it immediately.
	inst := &core.Instance{
		M: 4,
		Jobs: []core.Job{
			{ID: 0, Procs: 2, Len: 10},
			{ID: 1, Procs: 4, Len: 5},
			{ID: 2, Procs: 2, Len: 5}, // ends at 5 < 10: no delay to head
		},
	}
	s, err := EASY{}.Schedule(inst)
	if err != nil {
		t.Fatal(err)
	}
	if err := verify.Verify(s); err != nil {
		t.Fatal(err)
	}
	if s.StartOf(2) != 0 {
		t.Fatalf("backfill candidate start = %v, want 0", s.StartOf(2))
	}
	if s.StartOf(1) != 10 {
		t.Fatalf("head start = %v, want 10", s.StartOf(1))
	}
}

func TestEASYRefusesDelayingBackfill(t *testing.T) {
	// Job 2 would fit beside job 0 now, but it runs 20 ticks, crossing the
	// head's shadow start at t=10 and using procs the head needs: EASY must
	// hold it back. (LSRC would greedily start it — that is the whole
	// difference between the two policies.)
	inst := &core.Instance{
		M: 4,
		Jobs: []core.Job{
			{ID: 0, Procs: 2, Len: 10},
			{ID: 1, Procs: 4, Len: 5},
			{ID: 2, Procs: 2, Len: 20},
		},
	}
	s, err := EASY{}.Schedule(inst)
	if err != nil {
		t.Fatal(err)
	}
	if err := verify.Verify(s); err != nil {
		t.Fatal(err)
	}
	if s.StartOf(1) != 10 {
		t.Fatalf("head start = %v, want 10 (must not be delayed)", s.StartOf(1))
	}
	if s.StartOf(2) != 15 {
		t.Fatalf("long job start = %v, want 15 (after the head)", s.StartOf(2))
	}
	// Contrast: LSRC starts the long job at 0 and pushes the wide head to
	// 20 — the aggressive behaviour the paper analyses.
	lsrc, err := NewLSRC(FIFO).Schedule(inst)
	if err != nil {
		t.Fatal(err)
	}
	if lsrc.StartOf(2) != 0 || lsrc.StartOf(1) != 20 {
		t.Fatalf("LSRC contrast wrong: job2=%v job1=%v", lsrc.StartOf(2), lsrc.StartOf(1))
	}
}

func TestEASYHeadMatchesFCFSFirstJob(t *testing.T) {
	// The first queued job can never be delayed by anything: its start
	// equals the FCFS placement.
	inst := prop2K3()
	easy, err := EASY{}.Schedule(inst)
	if err != nil {
		t.Fatal(err)
	}
	fcfs, err := FCFS{}.Schedule(inst)
	if err != nil {
		t.Fatal(err)
	}
	if easy.StartOf(0) != fcfs.StartOf(0) {
		t.Fatalf("first job: EASY %v vs FCFS %v", easy.StartOf(0), fcfs.StartOf(0))
	}
}

func TestEASYRespectsReservations(t *testing.T) {
	inst := &core.Instance{
		M: 4,
		Jobs: []core.Job{
			{ID: 0, Procs: 3, Len: 10},
			{ID: 1, Procs: 1, Len: 2},
		},
		Res: []core.Reservation{{ID: 0, Procs: 2, Start: 5, Len: 5}},
	}
	s, err := EASY{}.Schedule(inst)
	if err != nil {
		t.Fatal(err)
	}
	if err := verify.Verify(s); err != nil {
		t.Fatal(err)
	}
	// Head cannot run before t=10; the thin job backfills at 0 (it ends at
	// 2, well before the shadow at 10).
	if s.StartOf(0) != 10 || s.StartOf(1) != 0 {
		t.Fatalf("starts = %v", s.Start)
	}
}

func TestEASYStuck(t *testing.T) {
	inst := &core.Instance{
		M:    4,
		Jobs: []core.Job{{ID: 0, Procs: 4, Len: 2}},
		Res:  []core.Reservation{{ID: 0, Procs: 1, Start: 0, Len: core.Infinity}},
	}
	if _, err := (EASY{}).Schedule(inst); !errors.Is(err, ErrStuck) {
		t.Fatalf("got %v, want ErrStuck", err)
	}
}

func TestEASYEmptyAndInvalid(t *testing.T) {
	s, err := EASY{}.Schedule(&core.Instance{M: 2})
	if err != nil || s.Makespan() != 0 {
		t.Fatalf("empty: %v %v", s, err)
	}
	if _, err := (EASY{}).Schedule(&core.Instance{M: -1}); !errors.Is(err, ErrInvalid) {
		t.Fatalf("invalid accepted: %v", err)
	}
}
