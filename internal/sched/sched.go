// Package sched implements the family of scheduling algorithms analysed by
// the paper, all reservation-aware:
//
//   - LSRC — list scheduling with resource constraints (Garey & Graham),
//     the algorithm whose guarantees the paper proves. Identical to the most
//     aggressive back-filling variant (§2.2): at every decision instant any
//     queued job that fits is started, regardless of queue position.
//   - FCFS — first-come-first-served with head-of-line blocking: a job never
//     starts before the job submitted ahead of it has started (§2.2).
//   - Conservative back-filling — every job is placed, in submission order,
//     at the earliest instant that does not delay any previously placed job.
//   - EASY back-filling — FCFS plus a single shadow reservation for the head
//     job; later jobs may jump the queue only if they do not delay the head.
//   - Shelf packing — the conclusion's "partition on shelves" direction:
//     NFDH/FFDH-style shelves placed around the reservations.
//
// Placement semantics are shared by every policy: a job may start at t only
// if its full window [t, t+p) has q processors free, accounting for all
// advance reservations — schedulers know reservations in advance and must
// never collide with one.
package sched

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/profile"

	// Ensure the "tree" capacity backend is registered so every scheduler
	// (and ByNameOn) can be parameterised with Backend: "tree".
	_ "repro/internal/restree"
)

// Scheduler is a policy that turns an instance into a complete schedule.
type Scheduler interface {
	// Name identifies the policy (used in experiment tables).
	Name() string
	// Schedule computes a feasible schedule for the instance. The instance
	// is not modified. Implementations return ErrStuck if some job can
	// never be placed (possible only with infinite reservations).
	Schedule(inst *core.Instance) (*core.Schedule, error)
}

// Errors returned by schedulers.
var (
	// ErrStuck reports that a job can never be started (the availability
	// left by reservations never reaches the job's width for its duration).
	ErrStuck = errors.New("sched: job can never be scheduled")
	// ErrInvalid reports an invalid instance.
	ErrInvalid = errors.New("sched: invalid instance")
)

// prep validates the instance and builds the initial availability index
// (m minus reservations) on the named capacity backend ("" selects the
// default array Timeline; "tree" selects the restree balanced index —
// identical results, different asymptotics).
func prep(inst *core.Instance, backend string) (profile.CapacityIndex, error) {
	if err := inst.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInvalid, err)
	}
	// A bad backend name is a configuration error, not an instance error:
	// surface it as-is rather than wrapped in ErrInvalid.
	if _, err := profile.NewIndex(backend, 0); err != nil {
		return nil, fmt.Errorf("sched: %w", err)
	}
	tl, err := profile.IndexFromReservations(backend, inst.M, inst.Res)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInvalid, err)
	}
	return tl, nil
}

// stuckErr formats an ErrStuck for the given job.
func stuckErr(j core.Job) error {
	return fmt.Errorf("%w: job %d (q=%d, p=%v)", ErrStuck, j.ID, j.Procs, j.Len)
}
