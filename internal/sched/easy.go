package sched

import (
	"fmt"

	"repro/internal/core"
)

// EASY is EASY (aggressive) back-filling: jobs are kept in submission
// order; at every decision instant the head of the queue is started if it
// fits, otherwise the head receives a *shadow reservation* at its earliest
// feasible time and any later job may be back-filled now provided it does
// not delay that shadow. Only the head job's start is protected, so EASY
// sits between FCFS (everything protected) and LSRC (nothing protected).
type EASY struct {
	// Backend selects the capacity-index implementation ("" = array).
	Backend string
}

// Name implements Scheduler.
func (EASY) Name() string { return "easy-bf" }

// Schedule implements Scheduler.
func (e EASY) Schedule(inst *core.Instance) (*core.Schedule, error) {
	tl, err := prep(inst, e.Backend)
	if err != nil {
		return nil, err
	}
	s := core.NewSchedule(inst)
	s.Algorithm = "easy-bf"
	queue := make([]int, len(inst.Jobs))
	for i := range queue {
		queue[i] = i
	}

	t := core.Time(0)
	for len(queue) > 0 {
		// Start head jobs while they fit right now.
		for len(queue) > 0 {
			j := inst.Jobs[queue[0]]
			if !tl.CanPlace(t, j.Len, j.Procs) {
				break
			}
			if err := tl.Commit(t, j.Len, j.Procs); err != nil {
				return nil, fmt.Errorf("sched: internal: %v", err)
			}
			s.SetStart(queue[0], t)
			queue = queue[1:]
		}
		if len(queue) == 0 {
			break
		}

		// Head does not fit now: compute its shadow slot and hold it.
		head := inst.Jobs[queue[0]]
		shadow, ok := tl.FindSlot(t, head.Procs, head.Len)
		if !ok {
			return nil, stuckErr(head)
		}
		if err := tl.Commit(shadow, head.Len, head.Procs); err != nil {
			return nil, fmt.Errorf("sched: internal shadow: %v", err)
		}

		// Back-fill: any later job that fits now without touching the
		// shadow hold may start. Single pass: capacity only shrinks.
		kept := queue[:1]
		for _, idx := range queue[1:] {
			j := inst.Jobs[idx]
			if tl.CanPlace(t, j.Len, j.Procs) {
				if err := tl.Commit(t, j.Len, j.Procs); err != nil {
					return nil, fmt.Errorf("sched: internal: %v", err)
				}
				s.SetStart(idx, t)
			} else {
				kept = append(kept, idx)
			}
		}
		queue = kept

		// Drop the shadow hold; the head will be re-examined at the next
		// event (it may start earlier than the shadow if back-filled jobs
		// finish sooner than expected — with exact durations they do not,
		// but releasing keeps the timeline exactly the committed state).
		if err := tl.Release(shadow, head.Len, head.Procs); err != nil {
			return nil, fmt.Errorf("sched: internal release: %v", err)
		}

		next, ok := tl.NextBreakpoint(t)
		if !ok {
			// Constant availability forever and the head does not fit.
			return nil, stuckErr(head)
		}
		t = next
	}
	return s, nil
}
