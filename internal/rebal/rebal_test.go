package rebal

import (
	"testing"

	"repro/internal/core"
)

func TestImbalance(t *testing.T) {
	cases := []struct {
		areas []int64
		want  float64
	}{
		{nil, 0},
		{[]int64{0, 0, 0}, 0},
		{[]int64{5}, 0},
		{[]int64{10, 10, 10}, 0},
		{[]int64{10, 0}, 1},
		{[]int64{8, 4}, 0.5},
		{[]int64{4, 8, 6}, 0.5},
	}
	for _, c := range cases {
		if got := Imbalance(c.areas); got != c.want {
			t.Errorf("Imbalance(%v) = %v, want %v", c.areas, got, c.want)
		}
	}
}

// mkLoads builds loads where shard i holds the given reservations (area
// derived from them).
func mkLoads(resvs ...[]Resv) []ShardLoad {
	out := make([]ShardLoad, len(resvs))
	for i, rs := range resvs {
		var area int64
		for _, r := range rs {
			area += r.Area()
		}
		out[i] = ShardLoad{Shard: i, CommittedArea: area, Resvs: rs}
	}
	return out
}

func TestMakePlanMovesTowardBalance(t *testing.T) {
	// Shard 0 holds four equal reservations, shard 1 none: the plan must
	// move enough to halve the spread repeatedly without overshooting.
	rs := []Resv{
		{ID: 1, Start: 100, Dur: 10, Procs: 2},
		{ID: 2, Start: 200, Dur: 10, Procs: 2},
		{ID: 3, Start: 300, Dur: 10, Procs: 2},
		{ID: 4, Start: 400, Dur: 10, Procs: 2},
	}
	plan := MakePlan(0, mkLoads(rs, nil), Config{Threshold: 0})
	if plan.Before != 1 {
		t.Fatalf("Before = %v, want 1", plan.Before)
	}
	if len(plan.Moves) != 2 {
		t.Fatalf("moved %d reservations, want 2 (half the donor's area): %+v", len(plan.Moves), plan.Moves)
	}
	for _, mv := range plan.Moves {
		if mv.From != 0 || mv.To != 1 {
			t.Fatalf("move %+v, want 0→1", mv)
		}
	}
	if plan.After != 0 {
		t.Fatalf("After = %v, want 0 (perfect split possible)", plan.After)
	}
}

func TestMakePlanRespectsFrozenWindow(t *testing.T) {
	rs := []Resv{
		{ID: 1, Start: 5, Dur: 100, Procs: 4},   // inside the frozen window
		{ID: 2, Start: 500, Dur: 100, Procs: 4}, // movable
	}
	plan := MakePlan(0, mkLoads(rs, nil), Config{Freeze: 50})
	if len(plan.Moves) != 1 || plan.Moves[0].Resv.ID != 2 {
		t.Fatalf("moves = %+v, want exactly the movable reservation 2", plan.Moves)
	}
	// With everything frozen, the plan is empty however lopsided the load.
	plan = MakePlan(400, mkLoads(rs, nil), Config{Freeze: 200})
	if len(plan.Moves) != 0 {
		t.Fatalf("frozen plan moved %+v", plan.Moves)
	}
	if plan.After != plan.Before {
		t.Fatalf("empty plan changed the score: %v → %v", plan.Before, plan.After)
	}
}

func TestMakePlanSaturatingCutoff(t *testing.T) {
	rs := []Resv{{ID: 1, Start: core.Infinity - 1, Dur: 1, Procs: 1}}
	// now+Freeze would overflow; the cutoff saturates to Infinity and the
	// reservation is frozen, not wrapped around into movability.
	plan := MakePlan(core.Infinity-10, mkLoads(rs, nil), Config{Freeze: core.Infinity})
	if len(plan.Moves) != 0 {
		t.Fatalf("overflowed cutoff moved %+v", plan.Moves)
	}
}

func TestMakePlanHonoursThresholdAndMaxMoves(t *testing.T) {
	rs := []Resv{
		{ID: 1, Start: 100, Dur: 10, Procs: 1},
		{ID: 2, Start: 200, Dur: 10, Procs: 1},
		{ID: 3, Start: 300, Dur: 10, Procs: 1},
		{ID: 4, Start: 400, Dur: 10, Procs: 1},
	}
	if plan := MakePlan(0, mkLoads(rs, nil), Config{Threshold: 1}); len(plan.Moves) != 0 {
		t.Fatalf("score 1 <= threshold 1 still planned %+v", plan.Moves)
	}
	plan := MakePlan(0, mkLoads(rs, nil), Config{MaxMoves: 1})
	if len(plan.Moves) != 1 {
		t.Fatalf("MaxMoves=1 planned %d moves", len(plan.Moves))
	}
	if plan.After >= plan.Before {
		t.Fatalf("capped plan did not improve: %v → %v", plan.Before, plan.After)
	}
}

func TestMakePlanPrefersPressuredTenants(t *testing.T) {
	rs := []Resv{
		{ID: 1, Start: 100, Dur: 10, Procs: 2, Tenant: "cold"},
		{ID: 2, Start: 200, Dur: 10, Procs: 2, Tenant: "hot"},
		{ID: 3, Start: 300, Dur: 10, Procs: 2, Tenant: "cold"},
		{ID: 4, Start: 400, Dur: 10, Procs: 2, Tenant: "hot"},
	}
	plan := MakePlan(0, mkLoads(rs, nil), Config{
		Pressure: map[string]float64{"hot": 0.9, "cold": 0.1},
	})
	if len(plan.Moves) != 2 {
		t.Fatalf("moved %d, want 2", len(plan.Moves))
	}
	for _, mv := range plan.Moves {
		if mv.Resv.Tenant != "hot" {
			t.Fatalf("moved %q before the pressured tenant drained: %+v", mv.Resv.Tenant, plan.Moves)
		}
	}
}

func TestMakePlanSingleShardIsNoop(t *testing.T) {
	rs := []Resv{{ID: 1, Start: 100, Dur: 10, Procs: 2}}
	if plan := MakePlan(0, mkLoads(rs), Config{}); len(plan.Moves) != 0 {
		t.Fatalf("single-shard plan moved %+v", plan.Moves)
	}
}

func TestMakePlanDeterministic(t *testing.T) {
	rs0 := []Resv{
		{ID: 7, Start: 100, Dur: 10, Procs: 3, Tenant: "a"},
		{ID: 3, Start: 100, Dur: 10, Procs: 3, Tenant: "b"},
		{ID: 5, Start: 100, Dur: 30, Procs: 1, Tenant: "a"},
	}
	rs1 := []Resv{{ID: 9, Start: 100, Dur: 5, Procs: 1, Tenant: "b"}}
	a := MakePlan(0, mkLoads(rs0, rs1, nil), Config{})
	b := MakePlan(0, mkLoads(rs0, rs1, nil), Config{})
	if len(a.Moves) != len(b.Moves) {
		t.Fatalf("non-deterministic plan lengths: %d vs %d", len(a.Moves), len(b.Moves))
	}
	for i := range a.Moves {
		if a.Moves[i] != b.Moves[i] {
			t.Fatalf("move %d differs: %+v vs %+v", i, a.Moves[i], b.Moves[i])
		}
	}
}
