// Package rebal plans live shard rebalancing for the resd
// reservation-admission service: given per-shard load summaries, it
// decides which admitted future reservations should move to which shard
// so the reservable α-prefix area the paper's admission rule leaves open
// is actually spendable everywhere, not stranded on idle shards while a
// skewed arrival stream saturates one partition.
//
// The package is deliberately pure: it imports only internal/core, holds
// no locks, talks to no shards, and MakePlan is a deterministic function
// of (now, loads, config). All the concurrent machinery — snapshotting
// the shard loops, two-phase commit of each move, rollback on conflict
// with a racing Cancel — lives in internal/resd, which consumes the plan.
// The split is what makes the planner checkable: FuzzRebalancePlan
// replays arbitrary load summaries against a sequential oracle and
// asserts the two planner invariants directly,
//
//   - no plan ever moves a reservation inside the frozen window
//     [0, now+Freeze): a reservation about to start is pinned, and
//   - the imbalance score (1 − min/max of committed area, i.e. the
//     free-prefix-area spread) never increases, not just end to end but
//     after every individual move, because each move takes at most half
//     the donor-receiver gap from a donor to the then-emptiest shard.
//
// Candidate selection is pressure-aware when the caller provides
// per-tenant pressure ratios (usage-to-budget, from internal/tenant):
// among the reservations small enough to move, the hottest tenant's are
// moved first, so quota-squeezed tenants stop contending for the same
// saturated shard soonest. See internal/resd's Rebalance for the
// execution half and the "pressure" placement policy for the
// admission-time counterpart.
package rebal
