package rebal

import (
	"testing"

	"repro/internal/core"
)

// FuzzRebalancePlan decodes arbitrary bytes into per-shard load summaries
// and checks every plan against a sequential oracle: the moves are
// replayed one by one over a copy of the areas, and after each step the
// oracle recomputes the imbalance score from scratch. The invariants —
// the planner's whole contract —
//
//   - no move touches a reservation inside the frozen window,
//   - no reservation is moved twice, every move names distinct valid
//     shards, and MaxMoves is honoured,
//   - the replayed score never increases at any step, and the plan's
//     Before/After match the oracle's end-to-end scores exactly,
//
// must hold for every input, however adversarial the load shape.
func FuzzRebalancePlan(f *testing.F) {
	f.Add([]byte{0, 10, 5, 2, 0, 20, 5, 2, 0, 30, 5, 2, 0, 40, 5, 2}, uint8(2), uint16(0), uint16(0), uint8(0), uint8(0))
	f.Add([]byte{0, 5, 100, 4, 0, 200, 100, 4}, uint8(2), uint16(0), uint16(50), uint8(0), uint8(8))
	f.Add([]byte{0, 100, 10, 3, 1, 100, 10, 1, 2, 100, 30, 1}, uint8(4), uint16(90), uint16(20), uint8(25), uint8(2))
	f.Fuzz(func(t *testing.T, data []byte, shards uint8, now, freeze uint16, threshPct, maxMoves uint8) {
		nShards := int(shards%8) + 2 // 2..9 shards: planning needs a pair
		cfg := Config{
			Threshold: float64(threshPct%101) / 100,
			Freeze:    core.Time(freeze),
			MaxMoves:  int(maxMoves),
			Pressure:  map[string]float64{"a": 0.75, "b": 0.25},
		}
		// Each 4-byte record is one reservation: shard, start, dur, procs.
		// IDs are record indexes, so they are unique by construction (the
		// service guarantees the same).
		loads := make([]ShardLoad, nShards)
		for i := range loads {
			loads[i].Shard = i
		}
		tenants := [3]string{"a", "b", ""}
		for i := 0; i+4 <= len(data) && i < 4*512; i += 4 {
			si := int(data[i]) % nShards
			rv := Resv{
				ID:     uint64(i / 4),
				Start:  core.Time(data[i+1]) * 4,
				Dur:    core.Time(data[i+2]%64) + 1,
				Procs:  int(data[i+3]%16) + 1,
				Tenant: tenants[int(data[i+3]>>4)%len(tenants)],
			}
			loads[si].Resvs = append(loads[si].Resvs, rv)
			loads[si].CommittedArea += rv.Area()
		}

		plan := MakePlan(core.Time(now), loads, cfg)

		areas := make([]int64, nShards)
		byShard := make(map[uint64]int)
		resvs := make(map[uint64]Resv)
		for i, ld := range loads {
			areas[i] = ld.CommittedArea
			for _, rv := range ld.Resvs {
				byShard[rv.ID] = i
				resvs[rv.ID] = rv
			}
		}
		if got := Imbalance(areas); plan.Before != got {
			t.Fatalf("plan.Before = %v, oracle %v", plan.Before, got)
		}
		if cfg.MaxMoves > 0 && len(plan.Moves) > cfg.MaxMoves {
			t.Fatalf("%d moves exceed MaxMoves %d", len(plan.Moves), cfg.MaxMoves)
		}
		lim := cutoff(core.Time(now), cfg.Freeze)
		moved := map[uint64]bool{}
		score := plan.Before
		for i, mv := range plan.Moves {
			if mv.From == mv.To || mv.From < 0 || mv.From >= nShards || mv.To < 0 || mv.To >= nShards {
				t.Fatalf("move %d names bad shards: %+v", i, mv)
			}
			if mv.Resv.Start < lim {
				t.Fatalf("move %d relocates a frozen reservation (start %v < cutoff %v): %+v",
					i, mv.Resv.Start, lim, mv)
			}
			if moved[mv.Resv.ID] {
				t.Fatalf("move %d relocates reservation %d twice", i, mv.Resv.ID)
			}
			moved[mv.Resv.ID] = true
			home, ok := byShard[mv.Resv.ID]
			if !ok || home != mv.From || resvs[mv.Resv.ID] != mv.Resv {
				t.Fatalf("move %d does not match any reservation on its donor: %+v", i, mv)
			}
			areas[mv.From] -= mv.Resv.Area()
			areas[mv.To] += mv.Resv.Area()
			next := Imbalance(areas)
			if next > score {
				t.Fatalf("move %d raised the imbalance %v → %v: %+v", i, score, next, mv)
			}
			score = next
		}
		if got := Imbalance(areas); plan.After != got {
			t.Fatalf("plan.After = %v, oracle replay %v", plan.After, got)
		}
		if plan.After > plan.Before {
			t.Fatalf("plan made things worse: %v → %v", plan.Before, plan.After)
		}
	})
}
