package rebal

import (
	"sort"

	"repro/internal/core"
)

// Resv is one admitted reservation as the planner sees it: enough to
// re-commit it on another shard at the same start time. ID is the
// service-wide identity (opaque to the planner, unique across shards).
type Resv struct {
	ID     uint64
	Start  core.Time
	Dur    core.Time
	Procs  int
	Tenant string
}

// Area returns the processor·tick footprint the reservation holds.
func (r Resv) Area() int64 { return int64(r.Dur) * int64(r.Procs) }

// ShardLoad is one shard's load summary: its total committed area (the
// quantity the imbalance score spreads) and the reservations the shard is
// willing to give up. Resvs may be a subset of what CommittedArea counts —
// frozen or already-started reservations contribute area but are not
// offered as candidates.
type ShardLoad struct {
	Shard         int
	CommittedArea int64
	Resvs         []Resv
}

// Config parameterises MakePlan.
type Config struct {
	// Threshold is the imbalance score below which the planner leaves the
	// shards alone. 0 means any imbalance is worth acting on.
	Threshold float64
	// Freeze is the migratable-window policy Δ: a reservation starting
	// before now+Freeze is pinned to its shard, however lopsided the load.
	// Moving a reservation about to start would race its own execution;
	// the window makes "about to start" an explicit, configurable notion.
	Freeze core.Time
	// MaxMoves caps the number of moves per plan (<= 0 means unbounded).
	MaxMoves int
	// Pressure optionally weights candidate selection by per-tenant
	// pressure (usage-to-budget ratio): among the reservations whose area
	// fits the current gap, the planner prefers moving the most pressured
	// tenant's reservations first, which drains hot tenants off hot shards
	// soonest. Missing tenants weigh 0.
	Pressure map[string]float64
}

// Move relocates one reservation between shards, preserving its start
// time, duration and width — only the hosting partition changes.
type Move struct {
	Resv     Resv
	From, To int
}

// Plan is MakePlan's result: the move list plus the imbalance score
// before planning and the score the loads would reach if every move
// lands. After <= Before always holds (see MakePlan).
type Plan struct {
	Moves         []Move
	Before, After float64
}

// Imbalance scores how unevenly committed area spreads across shards:
// 1 − min/max, i.e. 0 when perfectly even (or empty) and approaching 1
// when some shard holds everything while another idles. The score is the
// free-α-prefix-area spread seen from the committed side: shards share a
// capacity and horizon, so the emptiest shard is exactly the one with the
// most reservable prefix left.
func Imbalance(areas []int64) float64 {
	if len(areas) == 0 {
		return 0
	}
	lo, hi := areas[0], areas[0]
	for _, a := range areas[1:] {
		if a < lo {
			lo = a
		}
		if a > hi {
			hi = a
		}
	}
	if hi <= 0 {
		return 0
	}
	return float64(hi-lo) / float64(hi)
}

// cutoff returns now+freeze, saturating instead of overflowing.
func cutoff(now, freeze core.Time) core.Time {
	if freeze > core.Infinity-now {
		return core.Infinity
	}
	return now + freeze
}

// MakePlan computes a migration plan over the given load summaries: a
// sequence of moves that, applied in order, never increases the imbalance
// score and stops once the score reaches cfg.Threshold, the candidates
// run dry, or cfg.MaxMoves is hit.
//
// Every move keeps the invariant pair the fuzz oracle checks:
//
//   - the moved reservation starts at or after now+cfg.Freeze (the frozen
//     window is never touched), and
//   - the move's area is at most half the gap between its donor and the
//     currently emptiest shard, so the donor stays above the receiver and
//     the global max never rises nor the global min falls — which is what
//     makes the score monotonically non-increasing, move by move, not
//     just end to end.
//
// Candidate choice within a donor is deterministic: highest tenant
// pressure first (when cfg.Pressure is set), then largest area, then
// smallest ID. The plan itself is therefore a pure function of its
// inputs, which is what makes it fuzzable against a sequential oracle.
func MakePlan(now core.Time, loads []ShardLoad, cfg Config) Plan {
	areas := make([]int64, len(loads))
	for i, ld := range loads {
		areas[i] = ld.CommittedArea
	}
	plan := Plan{Before: Imbalance(areas)}
	plan.After = plan.Before
	if len(loads) < 2 || plan.Before <= cfg.Threshold {
		return plan
	}

	// Per-shard candidate lists, filtered to the movable window and sorted
	// by selection preference. Entries are consumed front to back as they
	// are moved; an entry too big for the current gap is skipped but stays
	// available for later, larger gaps... which cannot happen (gaps only
	// shrink), so skipped-once means skipped-forever and a cursor per list
	// would be wrong only in the other direction. Scanning from the front
	// keeps it simple and obviously correct.
	lim := cutoff(now, cfg.Freeze)
	cands := make([][]Resv, len(loads))
	for i, ld := range loads {
		for _, rv := range ld.Resvs {
			if rv.Start >= lim && rv.Area() > 0 {
				cands[i] = append(cands[i], rv)
			}
		}
		ci := cands[i]
		sort.Slice(ci, func(a, b int) bool {
			pa, pb := cfg.Pressure[ci[a].Tenant], cfg.Pressure[ci[b].Tenant]
			if pa != pb {
				return pa > pb
			}
			if aa, ab := ci[a].Area(), ci[b].Area(); aa != ab {
				return aa > ab
			}
			return ci[a].ID < ci[b].ID
		})
	}

	for cfg.MaxMoves <= 0 || len(plan.Moves) < cfg.MaxMoves {
		if Imbalance(areas) <= cfg.Threshold {
			break
		}
		// Receiver: the emptiest shard (lowest index on ties). Donors are
		// tried heaviest first; any donor works for monotonicity as long
		// as the moved area is at most half its gap to the receiver.
		recv := 0
		for i := range areas {
			if areas[i] < areas[recv] {
				recv = i
			}
		}
		donors := make([]int, 0, len(areas))
		for i := range areas {
			if i != recv && areas[i] > areas[recv] {
				donors = append(donors, i)
			}
		}
		sort.Slice(donors, func(a, b int) bool {
			if areas[donors[a]] != areas[donors[b]] {
				return areas[donors[a]] > areas[donors[b]]
			}
			return donors[a] < donors[b]
		})
		var mv *Move
		for _, d := range donors {
			budget := (areas[d] - areas[recv]) / 2
			for k, rv := range cands[d] {
				if rv.Area() <= budget {
					mv = &Move{Resv: rv, From: loads[d].Shard, To: loads[recv].Shard}
					areas[d] -= rv.Area()
					areas[recv] += rv.Area()
					cands[d] = append(cands[d][:k], cands[d][k+1:]...)
					break
				}
			}
			if mv != nil {
				break
			}
		}
		if mv == nil {
			break // nothing movable fits any gap: the plan is as good as it gets
		}
		plan.Moves = append(plan.Moves, *mv)
	}
	plan.After = Imbalance(areas)
	return plan
}
