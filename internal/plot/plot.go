// Package plot renders simple line charts as ASCII (for terminal output)
// and SVG (for files), using only the standard library. It regenerates the
// paper's Figure 4 — bound curves as a function of α — and any other
// experiment series.
package plot

import (
	"fmt"
	"math"
	"strings"
)

// Series is one named curve.
type Series struct {
	// Name labels the curve in the legend.
	Name string
	// X and Y are the sample coordinates (equal length).
	X, Y []float64
}

// Chart is a collection of curves with axis labels.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	Series []Series
	// YMax optionally clips the y-axis (0 = auto). The paper's Figure 4
	// clips at 10.
	YMax float64
}

// bounds computes the data range across all series.
func (c *Chart) bounds() (x0, x1, y0, y1 float64) {
	x0, y0 = math.Inf(1), math.Inf(1)
	x1, y1 = math.Inf(-1), math.Inf(-1)
	for _, s := range c.Series {
		for i := range s.X {
			x, y := s.X[i], s.Y[i]
			if c.YMax > 0 && y > c.YMax {
				y = c.YMax
			}
			x0, x1 = math.Min(x0, x), math.Max(x1, x)
			y0, y1 = math.Min(y0, y), math.Max(y1, y)
		}
	}
	if math.IsInf(x0, 1) { // no data
		x0, x1, y0, y1 = 0, 1, 0, 1
	}
	if x0 == x1 {
		x1 = x0 + 1
	}
	if y0 == y1 {
		y1 = y0 + 1
	}
	return
}

// markers are assigned to series in order.
var markers = []byte{'*', '+', 'o', 'x', '#', '@'}

// ASCII renders the chart on a character grid of the given size (plot area
// excluding the axes). Series are overlaid with per-series markers.
func (c *Chart) ASCII(width, height int) string {
	if width < 8 {
		width = 60
	}
	if height < 4 {
		height = 20
	}
	x0, x1, y0, y1 := c.bounds()
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range c.Series {
		mk := markers[si%len(markers)]
		for i := range s.X {
			y := s.Y[i]
			if c.YMax > 0 && y > c.YMax {
				y = c.YMax
			}
			cx := int((s.X[i] - x0) / (x1 - x0) * float64(width-1))
			cy := int((y - y0) / (y1 - y0) * float64(height-1))
			row := height - 1 - cy
			if row >= 0 && row < height && cx >= 0 && cx < width {
				grid[row][cx] = mk
			}
		}
	}
	var b strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&b, "%s\n", c.Title)
	}
	for i, row := range grid {
		yv := y1 - (y1-y0)*float64(i)/float64(height-1)
		fmt.Fprintf(&b, "%8.2f |%s\n", yv, string(row))
	}
	fmt.Fprintf(&b, "%8s +%s\n", "", strings.Repeat("-", width))
	fmt.Fprintf(&b, "%8s  %-*.2f%*.2f\n", "", width/2, x0, width-width/2, x1)
	if c.XLabel != "" {
		fmt.Fprintf(&b, "%8s  %s\n", "", c.XLabel)
	}
	for si, s := range c.Series {
		fmt.Fprintf(&b, "  %c %s\n", markers[si%len(markers)], s.Name)
	}
	return b.String()
}

// svgColors are assigned to series in order.
var svgColors = []string{"#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e", "#8c564b"}

// SVG renders the chart as a standalone SVG document.
func (c *Chart) SVG(width, height int) string {
	if width < 100 {
		width = 640
	}
	if height < 80 {
		height = 420
	}
	const margin = 50
	pw, ph := float64(width-2*margin), float64(height-2*margin)
	x0, x1, y0, y1 := c.bounds()
	tx := func(x float64) float64 { return float64(margin) + (x-x0)/(x1-x0)*pw }
	ty := func(y float64) float64 {
		if c.YMax > 0 && y > c.YMax {
			y = c.YMax
		}
		return float64(height-margin) - (y-y0)/(y1-y0)*ph
	}

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d">`+"\n", width, height)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="white"/>`+"\n", width, height)
	// Axes.
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n",
		margin, height-margin, width-margin, height-margin)
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n",
		margin, margin, margin, height-margin)
	// Ticks: 5 per axis.
	for i := 0; i <= 5; i++ {
		fx := x0 + (x1-x0)*float64(i)/5
		fy := y0 + (y1-y0)*float64(i)/5
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" font-size="11" text-anchor="middle">%.2g</text>`+"\n",
			tx(fx), height-margin+16, fx)
		fmt.Fprintf(&b, `<text x="%d" y="%.1f" font-size="11" text-anchor="end">%.2g</text>`+"\n",
			margin-6, ty(fy)+4, fy)
	}
	if c.Title != "" {
		fmt.Fprintf(&b, `<text x="%d" y="20" font-size="14" text-anchor="middle">%s</text>`+"\n",
			width/2, escape(c.Title))
	}
	if c.XLabel != "" {
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="12" text-anchor="middle">%s</text>`+"\n",
			width/2, height-8, escape(c.XLabel))
	}
	if c.YLabel != "" {
		fmt.Fprintf(&b, `<text x="14" y="%d" font-size="12" text-anchor="middle" transform="rotate(-90 14 %d)">%s</text>`+"\n",
			height/2, height/2, escape(c.YLabel))
	}
	for si, s := range c.Series {
		color := svgColors[si%len(svgColors)]
		var pts []string
		for i := range s.X {
			pts = append(pts, fmt.Sprintf("%.1f,%.1f", tx(s.X[i]), ty(s.Y[i])))
		}
		fmt.Fprintf(&b, `<polyline fill="none" stroke="%s" stroke-width="1.5" points="%s"/>`+"\n",
			color, strings.Join(pts, " "))
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="12" fill="%s">%s</text>`+"\n",
			width-margin-150, margin+16*si, color, escape(s.Name))
	}
	b.WriteString("</svg>\n")
	return b.String()
}

// escape sanitises text for SVG embedding.
func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
