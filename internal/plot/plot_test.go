package plot

import (
	"strings"
	"testing"
)

func twoSeriesChart() *Chart {
	return &Chart{
		Title:  "bounds",
		XLabel: "alpha",
		YLabel: "ratio",
		Series: []Series{
			{Name: "upper", X: []float64{0.2, 0.5, 1}, Y: []float64{10, 4, 2}},
			{Name: "B2", X: []float64{0.2, 0.5, 1}, Y: []float64{9.1, 3.5, 1.5}},
		},
	}
}

func TestASCIIContainsMarkersAndLegend(t *testing.T) {
	out := twoSeriesChart().ASCII(60, 20)
	if !strings.Contains(out, "bounds") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "+") {
		t.Error("missing series markers")
	}
	if !strings.Contains(out, "upper") || !strings.Contains(out, "B2") {
		t.Error("missing legend")
	}
	if !strings.Contains(out, "alpha") {
		t.Error("missing x label")
	}
}

func TestASCIIYMaxClips(t *testing.T) {
	c := &Chart{
		YMax:   10,
		Series: []Series{{Name: "s", X: []float64{0, 1}, Y: []float64{5, 1e9}}},
	}
	out := c.ASCII(40, 10)
	// The axis should top out at 10, not 1e9.
	if !strings.Contains(out, "10.00") {
		t.Fatalf("clip failed:\n%s", out)
	}
}

func TestASCIIEmptyChart(t *testing.T) {
	c := &Chart{Title: "empty"}
	out := c.ASCII(40, 10)
	if !strings.Contains(out, "empty") {
		t.Fatal("empty chart should still render axes")
	}
}

func TestASCIIDefaultsOnTinySize(t *testing.T) {
	out := twoSeriesChart().ASCII(1, 1)
	if len(out) == 0 {
		t.Fatal("no output")
	}
}

func TestSVGWellFormed(t *testing.T) {
	out := twoSeriesChart().SVG(640, 420)
	for _, want := range []string{"<svg", "</svg>", "polyline", "upper", "B2", "bounds"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in SVG:\n%s", want, out[:200])
		}
	}
	if strings.Count(out, "<polyline") != 2 {
		t.Fatal("expected two polylines")
	}
}

func TestSVGEscapesText(t *testing.T) {
	c := &Chart{
		Title:  `a<b & "c"`,
		Series: []Series{{Name: "x>y", X: []float64{0, 1}, Y: []float64{0, 1}}},
	}
	out := c.SVG(200, 120)
	if strings.Contains(out, "a<b &") {
		t.Fatal("title not escaped")
	}
	if !strings.Contains(out, "a&lt;b &amp; &quot;c&quot;") {
		t.Fatalf("escape wrong:\n%s", out)
	}
	if !strings.Contains(out, "x&gt;y") {
		t.Fatal("series name not escaped")
	}
}

func TestSVGDefaultSize(t *testing.T) {
	out := twoSeriesChart().SVG(0, 0)
	if !strings.Contains(out, `width="640"`) || !strings.Contains(out, `height="420"`) {
		t.Fatal("default size not applied")
	}
}
