// Package sim is a discrete-event cluster simulator: jobs arrive over time
// and an online policy decides, at every event (arrival, job completion,
// reservation boundary), which queued jobs to start. It turns the
// repository's offline algorithms into the operational setting the paper's
// introduction describes — a batch scheduler in front of a cluster with
// advance reservations — and collects the metrics operators care about
// (utilisation, waiting times, bounded slowdown) alongside the makespan the
// paper analyses.
//
// Policies are non-clairvoyant about arrivals (they see only queued jobs)
// but fully aware of reservations, matching production batch systems.
package sim

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/profile"
	"repro/internal/workload"

	// Ensure the "tree" capacity backend is registered for RunOn.
	_ "repro/internal/restree"
)

// Queued is a job visible to the policy: its arrival-index identity, the
// job itself, and its arrival time.
type Queued struct {
	// Idx is the arrival index (stable identity across events).
	Idx int
	// Job is the rigid job.
	Job core.Job
	// At is its arrival time.
	At core.Time
}

// Policy selects, at the current instant, which queued jobs start now.
// Dispatch must return indices into the queue slice (not arrival indices)
// of jobs that fit at now on tl; the engine validates and commits them.
// The capacity index must be returned in the state it was handed over;
// policies needing scratch state either clone it (CloneIndex) or overlay
// trial commitments and roll them back (see scratch in policies.go).
// Policies see only the CapacityIndex seam, so the engine can run them on
// either the array or the tree backend unchanged.
type Policy interface {
	// Name identifies the policy in metrics tables.
	Name() string
	// Dispatch picks queue positions to start at now.
	Dispatch(now core.Time, queue []Queued, tl profile.CapacityIndex) []int
}

// Metrics summarises a simulation run.
type Metrics struct {
	// Policy is the policy's name.
	Policy string
	// Jobs is the number of jobs completed.
	Jobs int
	// Makespan is the last completion time.
	Makespan core.Time
	// TotalWork is the processor-tick volume of the jobs.
	TotalWork int64
	// Utilization is TotalWork / (m · Makespan): raw machine usage.
	Utilization float64
	// EffectiveUtilization divides by the area actually available to jobs
	// (m·Makespan minus reserved area before Makespan).
	EffectiveUtilization float64
	// AvgWait and MaxWait summarise start - arrival.
	AvgWait float64
	MaxWait core.Time
	// AvgBoundedSlowdown is the mean of (wait+run)/max(run, tau) with
	// tau = 10, the standard BSLD metric.
	AvgBoundedSlowdown float64
}

// Result is the outcome of a run: per-arrival start times plus metrics.
type Result struct {
	// Starts[i] is the start time of arrivals[i].
	Starts []core.Time
	// Metrics are the aggregate statistics.
	Metrics Metrics
	// m and inputs retained for AsSchedule.
	m        int
	res      []core.Reservation
	arrivals []workload.Arrival
}

// AsSchedule materialises the simulation outcome as a core.Schedule over an
// instance built from the arrival stream (job IDs are arrival indices), so
// it can be verified, rendered as a Gantt chart, or compared with offline
// schedules.
func (r *Result) AsSchedule() *core.Schedule {
	inst := &core.Instance{Name: "sim", M: r.m, Res: append([]core.Reservation(nil), r.res...)}
	for i, a := range r.arrivals {
		j := a.Job
		j.ID = i
		inst.Jobs = append(inst.Jobs, j)
	}
	s := core.NewSchedule(inst)
	copy(s.Start, r.Starts)
	s.Algorithm = r.Metrics.Policy
	return s
}

// Waits returns the per-job waiting times (start minus arrival) in arrival
// order, for distribution analysis.
func (r *Result) Waits() []float64 {
	out := make([]float64, len(r.arrivals))
	for i := range r.arrivals {
		out[i] = float64(r.Starts[i] - r.arrivals[i].At)
	}
	return out
}

// Errors returned by Run.
var (
	ErrPolicy = errors.New("sim: policy returned an infeasible or duplicate start")
	ErrStuck  = errors.New("sim: queued jobs can never start")
)

// bsldTau is the bounded-slowdown runtime floor.
const bsldTau = 10.0

// Run simulates the policy on the arrival stream over an m-processor
// machine with the given reservations, on the default (array) capacity
// backend.
func Run(m int, res []core.Reservation, arrivals []workload.Arrival, policy Policy) (*Result, error) {
	return RunOn("", m, res, arrivals, policy)
}

// RunOn is Run on the named capacity backend ("" = array, "tree" = the
// restree balanced index). Results are identical across backends; only the
// asymptotics of the event loop's placement queries change.
func RunOn(backend string, m int, res []core.Reservation, arrivals []workload.Arrival, policy Policy) (*Result, error) {
	tl, err := profile.IndexFromReservations(backend, m, res)
	if err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	order := make([]int, len(arrivals))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return arrivals[order[a]].At < arrivals[order[b]].At
	})

	starts := make([]core.Time, len(arrivals))
	for i := range starts {
		starts[i] = core.Unscheduled
	}
	var queue []Queued
	next := 0 // next arrival (position in order)
	now := core.Time(0)
	done := 0

	for done < len(arrivals) {
		// Admit arrivals up to now.
		for next < len(order) && arrivals[order[next]].At <= now {
			i := order[next]
			a := arrivals[i]
			j := a.Job
			if j.Procs > m {
				return nil, fmt.Errorf("sim: job %d wider than machine", j.ID)
			}
			queue = append(queue, Queued{Idx: i, Job: j, At: a.At})
			next++
		}

		if len(queue) > 0 {
			picks := policy.Dispatch(now, queue, tl)
			seen := make(map[int]bool, len(picks))
			// Validate and commit.
			for _, p := range picks {
				if p < 0 || p >= len(queue) || seen[p] {
					return nil, fmt.Errorf("%w: pick %d", ErrPolicy, p)
				}
				seen[p] = true
				j := queue[p].Job
				if err := tl.Commit(now, j.Len, j.Procs); err != nil {
					return nil, fmt.Errorf("%w: job %d at %v: %v", ErrPolicy, j.ID, now, err)
				}
				starts[queue[p].Idx] = now
				done++
			}
			if len(picks) > 0 {
				kept := queue[:0]
				for p, q := range queue {
					if !seen[p] {
						kept = append(kept, q)
					}
				}
				queue = kept
			}
		}

		// Advance to the next event: arrival or availability change.
		var candidates []core.Time
		if next < len(order) {
			candidates = append(candidates, arrivals[order[next]].At)
		}
		if bp, ok := tl.NextBreakpoint(now); ok {
			candidates = append(candidates, bp)
		}
		if len(candidates) == 0 {
			if len(queue) > 0 {
				return nil, fmt.Errorf("%w: %d jobs at t=%v", ErrStuck, len(queue), now)
			}
			break
		}
		nt := candidates[0]
		for _, c := range candidates[1:] {
			if c < nt {
				nt = c
			}
		}
		if nt <= now {
			// An arrival exactly at now was already admitted; force
			// progress to avoid spinning.
			nt = now + 1
		}
		now = nt
	}

	return buildResult(m, res, arrivals, starts, policy.Name()), nil
}

// buildResult computes metrics from the start vector.
func buildResult(m int, res []core.Reservation, arrivals []workload.Arrival, starts []core.Time, name string) *Result {
	met := Metrics{Policy: name, Jobs: len(arrivals)}
	out := &Result{Starts: starts, m: m, res: res, arrivals: arrivals}
	var waitSum, bsldSum float64
	for i, a := range arrivals {
		j := a.Job
		met.TotalWork += j.Work()
		end := starts[i] + j.Len
		if end > met.Makespan {
			met.Makespan = end
		}
		wait := starts[i] - a.At
		waitSum += float64(wait)
		if wait > met.MaxWait {
			met.MaxWait = wait
		}
		den := float64(j.Len)
		if den < bsldTau {
			den = bsldTau
		}
		bsldSum += (float64(wait) + float64(j.Len)) / den
	}
	if n := len(arrivals); n > 0 {
		met.AvgWait = waitSum / float64(n)
		met.AvgBoundedSlowdown = bsldSum / float64(n)
	}
	if met.Makespan > 0 {
		total := int64(m) * int64(met.Makespan)
		met.Utilization = float64(met.TotalWork) / float64(total)
		reserved := core.UnavailabilityOf(res).IntegralTo(met.Makespan)
		if avail := total - reserved; avail > 0 {
			met.EffectiveUtilization = float64(met.TotalWork) / float64(avail)
		}
	}
	out.Metrics = met
	return out
}
