package sim

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/profile"
)

// scratch overlays trial commitments on the engine's live capacity index
// and rolls them back before Dispatch returns. Policies need scratch state
// so that each pick accounts for the picks before it; cloning the whole
// index per event is O(n) (and allocation-heavy on the tree backend),
// whereas commit+rollback costs only the picked windows. Rolling back an
// exact prior commit cannot fail — the differential fuzz harness pins that
// invariant for both backends — so a rollback error is a programming
// error, not a runtime condition.
type scratch struct {
	idx profile.CapacityIndex
	ops []struct {
		s, d core.Time
		q    int
	}
}

func (sc *scratch) canPlace(start, dur core.Time, q int) bool {
	return sc.idx.CanPlace(start, dur, q)
}

func (sc *scratch) commit(start, dur core.Time, q int) error {
	if err := sc.idx.Commit(start, dur, q); err != nil {
		return err
	}
	sc.ops = append(sc.ops, struct {
		s, d core.Time
		q    int
	}{start, dur, q})
	return nil
}

func (sc *scratch) findSlot(ready core.Time, q int, dur core.Time) (core.Time, bool) {
	return sc.idx.FindSlot(ready, q, dur)
}

// undo releases the trial commitments in reverse order, restoring the
// index to its pre-Dispatch state.
func (sc *scratch) undo() {
	for i := len(sc.ops) - 1; i >= 0; i-- {
		op := sc.ops[i]
		if err := sc.idx.Release(op.s, op.d, op.q); err != nil {
			panic(fmt.Sprintf("sim: scratch rollback failed: %v", err))
		}
	}
	sc.ops = sc.ops[:0]
}

// GreedyPolicy is online LSRC: every queued job that fits now is started,
// in queue (arrival) order — the most aggressive back-filling.
type GreedyPolicy struct{}

// Name implements Policy.
func (GreedyPolicy) Name() string { return "greedy-lsrc" }

// Dispatch implements Policy.
func (GreedyPolicy) Dispatch(now core.Time, queue []Queued, tl profile.CapacityIndex) []int {
	sc := &scratch{idx: tl}
	defer sc.undo()
	var picks []int
	for p, q := range queue {
		if sc.canPlace(now, q.Job.Len, q.Job.Procs) {
			if sc.commit(now, q.Job.Len, q.Job.Procs) != nil {
				continue
			}
			picks = append(picks, p)
		}
	}
	return picks
}

// FCFSPolicy starts only the head of the queue (and successors while each
// head fits): strict head-of-line order.
type FCFSPolicy struct{}

// Name implements Policy.
func (FCFSPolicy) Name() string { return "fcfs" }

// Dispatch implements Policy.
func (FCFSPolicy) Dispatch(now core.Time, queue []Queued, tl profile.CapacityIndex) []int {
	sc := &scratch{idx: tl}
	defer sc.undo()
	var picks []int
	for p := 0; p < len(queue); p++ {
		j := queue[p].Job
		if !sc.canPlace(now, j.Len, j.Procs) {
			break
		}
		if sc.commit(now, j.Len, j.Procs) != nil {
			break
		}
		picks = append(picks, p)
	}
	return picks
}

// EASYPolicy starts head jobs while they fit, then back-fills any later job
// that fits now without delaying the earliest possible start of the blocked
// head.
type EASYPolicy struct{}

// Name implements Policy.
func (EASYPolicy) Name() string { return "easy-bf" }

// Dispatch implements Policy.
func (EASYPolicy) Dispatch(now core.Time, queue []Queued, tl profile.CapacityIndex) []int {
	sc := &scratch{idx: tl}
	defer sc.undo()
	var picks []int
	p := 0
	for ; p < len(queue); p++ {
		j := queue[p].Job
		if !sc.canPlace(now, j.Len, j.Procs) {
			break
		}
		if sc.commit(now, j.Len, j.Procs) != nil {
			break
		}
		picks = append(picks, p)
	}
	if p >= len(queue) {
		return picks
	}
	// Shadow hold for the blocked head.
	head := queue[p].Job
	shadow, ok := sc.findSlot(now, head.Procs, head.Len)
	if !ok {
		return picks
	}
	if sc.commit(shadow, head.Len, head.Procs) != nil {
		return picks
	}
	for q := p + 1; q < len(queue); q++ {
		j := queue[q].Job
		if sc.canPlace(now, j.Len, j.Procs) {
			if sc.commit(now, j.Len, j.Procs) != nil {
				continue
			}
			picks = append(picks, q)
		}
	}
	return picks
}
