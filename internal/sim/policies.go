package sim

import (
	"repro/internal/core"
	"repro/internal/profile"
)

// GreedyPolicy is online LSRC: every queued job that fits now is started,
// in queue (arrival) order — the most aggressive back-filling.
type GreedyPolicy struct{}

// Name implements Policy.
func (GreedyPolicy) Name() string { return "greedy-lsrc" }

// Dispatch implements Policy.
func (GreedyPolicy) Dispatch(now core.Time, queue []Queued, tl *profile.Timeline) []int {
	scratch := tl.Clone()
	var picks []int
	for p, q := range queue {
		if scratch.CanPlace(now, q.Job.Len, q.Job.Procs) {
			if scratch.Commit(now, q.Job.Len, q.Job.Procs) != nil {
				continue
			}
			picks = append(picks, p)
		}
	}
	return picks
}

// FCFSPolicy starts only the head of the queue (and successors while each
// head fits): strict head-of-line order.
type FCFSPolicy struct{}

// Name implements Policy.
func (FCFSPolicy) Name() string { return "fcfs" }

// Dispatch implements Policy.
func (FCFSPolicy) Dispatch(now core.Time, queue []Queued, tl *profile.Timeline) []int {
	scratch := tl.Clone()
	var picks []int
	for p := 0; p < len(queue); p++ {
		j := queue[p].Job
		if !scratch.CanPlace(now, j.Len, j.Procs) {
			break
		}
		if scratch.Commit(now, j.Len, j.Procs) != nil {
			break
		}
		picks = append(picks, p)
	}
	return picks
}

// EASYPolicy starts head jobs while they fit, then back-fills any later job
// that fits now without delaying the earliest possible start of the blocked
// head.
type EASYPolicy struct{}

// Name implements Policy.
func (EASYPolicy) Name() string { return "easy-bf" }

// Dispatch implements Policy.
func (EASYPolicy) Dispatch(now core.Time, queue []Queued, tl *profile.Timeline) []int {
	scratch := tl.Clone()
	var picks []int
	p := 0
	for ; p < len(queue); p++ {
		j := queue[p].Job
		if !scratch.CanPlace(now, j.Len, j.Procs) {
			break
		}
		if scratch.Commit(now, j.Len, j.Procs) != nil {
			break
		}
		picks = append(picks, p)
	}
	if p >= len(queue) {
		return picks
	}
	// Shadow hold for the blocked head.
	head := queue[p].Job
	shadow, ok := scratch.FindSlot(now, head.Procs, head.Len)
	if !ok {
		return picks
	}
	if scratch.Commit(shadow, head.Len, head.Procs) != nil {
		return picks
	}
	for q := p + 1; q < len(queue); q++ {
		j := queue[q].Job
		if scratch.CanPlace(now, j.Len, j.Procs) {
			if scratch.Commit(now, j.Len, j.Procs) != nil {
				continue
			}
			picks = append(picks, q)
		}
	}
	return picks
}
