package sim

import (
	"errors"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/rng"
	"repro/internal/sched"
	"repro/internal/verify"
	"repro/internal/workload"
)

func arrivalsFixture() []workload.Arrival {
	return []workload.Arrival{
		{Job: core.Job{ID: 0, Procs: 2, Len: 10}, At: 0},
		{Job: core.Job{ID: 1, Procs: 4, Len: 5}, At: 0},
		{Job: core.Job{ID: 2, Procs: 2, Len: 5}, At: 0},
	}
}

func TestRunGreedy(t *testing.T) {
	res, err := Run(4, nil, arrivalsFixture(), GreedyPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	// Greedy = offline LSRC on simultaneous arrivals: jobs 0,2 at 0; job 1
	// at 10. Makespan 15.
	if res.Starts[0] != 0 || res.Starts[2] != 0 || res.Starts[1] != 10 {
		t.Fatalf("starts = %v", res.Starts)
	}
	if res.Metrics.Makespan != 15 {
		t.Fatalf("makespan = %v", res.Metrics.Makespan)
	}
}

func TestRunFCFS(t *testing.T) {
	res, err := Run(4, nil, arrivalsFixture(), FCFSPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	// Head-of-line: job 2 waits behind job 1.
	if res.Starts[1] != 10 || res.Starts[2] != 15 {
		t.Fatalf("starts = %v", res.Starts)
	}
	if res.Metrics.Makespan != 20 {
		t.Fatalf("makespan = %v", res.Metrics.Makespan)
	}
}

func TestRunEASY(t *testing.T) {
	// Job 2 (short) backfills; a long job would not (see offline tests).
	res, err := Run(4, nil, arrivalsFixture(), EASYPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Starts[2] != 0 || res.Starts[1] != 10 {
		t.Fatalf("starts = %v", res.Starts)
	}
}

func TestEASYDoesNotDelayHeadOnline(t *testing.T) {
	arr := []workload.Arrival{
		{Job: core.Job{ID: 0, Procs: 2, Len: 10}, At: 0},
		{Job: core.Job{ID: 1, Procs: 4, Len: 5}, At: 0},
		{Job: core.Job{ID: 2, Procs: 2, Len: 20}, At: 0}, // would delay head
	}
	res, err := Run(4, nil, arr, EASYPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Starts[1] != 10 {
		t.Fatalf("head delayed: starts = %v", res.Starts)
	}
	if res.Starts[2] != 15 {
		t.Fatalf("long job should wait: starts = %v", res.Starts)
	}
}

func TestArrivalsGateDispatch(t *testing.T) {
	// A later arrival cannot run before it arrives even if the machine is
	// idle.
	arr := []workload.Arrival{
		{Job: core.Job{ID: 0, Procs: 1, Len: 2}, At: 0},
		{Job: core.Job{ID: 1, Procs: 1, Len: 2}, At: 50},
	}
	res, err := Run(4, nil, arr, GreedyPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Starts[1] != 50 {
		t.Fatalf("job started before arrival: %v", res.Starts)
	}
}

func TestRunWithReservations(t *testing.T) {
	arr := []workload.Arrival{
		{Job: core.Job{ID: 0, Procs: 3, Len: 10}, At: 0},
	}
	rsv := []core.Reservation{{ID: 0, Procs: 2, Start: 5, Len: 5}}
	res, err := Run(4, rsv, arr, GreedyPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Starts[0] != 10 {
		t.Fatalf("start = %v, want 10", res.Starts[0])
	}
}

func TestRunStuck(t *testing.T) {
	arr := []workload.Arrival{{Job: core.Job{ID: 0, Procs: 4, Len: 2}, At: 0}}
	rsv := []core.Reservation{{ID: 0, Procs: 1, Start: 0, Len: core.Infinity}}
	if _, err := Run(4, rsv, arr, GreedyPolicy{}); !errors.Is(err, ErrStuck) {
		t.Fatalf("got %v", err)
	}
}

func TestMetrics(t *testing.T) {
	arr := []workload.Arrival{
		{Job: core.Job{ID: 0, Procs: 4, Len: 10}, At: 0},
		{Job: core.Job{ID: 1, Procs: 4, Len: 10}, At: 0},
	}
	res, err := Run(4, nil, arr, GreedyPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	m := res.Metrics
	if m.Makespan != 20 || m.Jobs != 2 {
		t.Fatalf("metrics = %+v", m)
	}
	if math.Abs(m.Utilization-1.0) > 1e-9 {
		t.Fatalf("utilization = %v, want 1", m.Utilization)
	}
	if m.AvgWait != 5 || m.MaxWait != 10 {
		t.Fatalf("wait stats = %v/%v", m.AvgWait, m.MaxWait)
	}
	// BSLD: job0 (wait 0, run 10): 1; job1 (wait 10, run 10): 2 -> 1.5.
	if math.Abs(m.AvgBoundedSlowdown-1.5) > 1e-9 {
		t.Fatalf("bsld = %v", m.AvgBoundedSlowdown)
	}
}

func TestEffectiveUtilizationExcludesReservedArea(t *testing.T) {
	arr := []workload.Arrival{{Job: core.Job{ID: 0, Procs: 2, Len: 10}, At: 0}}
	rsv := []core.Reservation{{ID: 0, Procs: 2, Start: 0, Len: 10}}
	res, err := Run(4, rsv, arr, GreedyPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	m := res.Metrics
	if math.Abs(m.Utilization-0.5) > 1e-9 {
		t.Fatalf("raw utilization = %v", m.Utilization)
	}
	if math.Abs(m.EffectiveUtilization-1.0) > 1e-9 {
		t.Fatalf("effective utilization = %v", m.EffectiveUtilization)
	}
}

// simulatedScheduleFeasible converts a sim result into a core schedule and
// verifies it.
func simulatedScheduleFeasible(t *testing.T, m int, rsv []core.Reservation, arr []workload.Arrival, res *Result) {
	t.Helper()
	inst := &core.Instance{M: m, Res: rsv}
	for i, a := range arr {
		j := a.Job
		j.ID = i
		inst.Jobs = append(inst.Jobs, j)
	}
	s := core.NewSchedule(inst)
	copy(s.Start, res.Starts)
	if err := verify.Verify(s); err != nil {
		t.Fatalf("simulated schedule infeasible: %v", err)
	}
	// No job before its arrival.
	for i := range arr {
		if res.Starts[i] < arr[i].At {
			t.Fatalf("job %d started %v before arrival %v", i, res.Starts[i], arr[i].At)
		}
	}
}

func TestAllPoliciesFeasibleOnRandomStreams(t *testing.T) {
	r := rng.New(13579)
	policies := []Policy{GreedyPolicy{}, FCFSPolicy{}, EASYPolicy{}}
	for trial := 0; trial < 40; trial++ {
		m := r.IntRange(2, 16)
		arr, err := workload.Synthetic(r.Split(), workload.SynthConfig{
			M: m, N: r.IntRange(1, 25), MinRun: 1, MaxRun: 50, MeanInterArrival: 10,
		})
		if err != nil {
			t.Fatal(err)
		}
		rsv := workload.ReservationStream(r.Split(), m, 0.5, r.IntRange(0, 3), 200)
		for _, p := range policies {
			res, err := Run(m, rsv, arr, p)
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, p.Name(), err)
			}
			simulatedScheduleFeasible(t, m, rsv, arr, res)
		}
	}
}

func TestGreedyMatchesOfflineLSRCWhenAllArriveAtZero(t *testing.T) {
	// With simultaneous arrivals the online greedy policy IS offline LSRC.
	r := rng.New(2468)
	for trial := 0; trial < 30; trial++ {
		m := r.IntRange(2, 8)
		var arr []workload.Arrival
		inst := &core.Instance{M: m}
		n := r.IntRange(1, 10)
		for i := 0; i < n; i++ {
			j := core.Job{ID: i, Procs: r.IntRange(1, m), Len: core.Time(r.IntRange(1, 12))}
			inst.Jobs = append(inst.Jobs, j)
			arr = append(arr, workload.Arrival{Job: j, At: 0})
		}
		res, err := Run(m, nil, arr, GreedyPolicy{})
		if err != nil {
			t.Fatal(err)
		}
		offline, err := sched.NewLSRC(sched.FIFO).Schedule(inst)
		if err != nil {
			t.Fatal(err)
		}
		for i := range inst.Jobs {
			if res.Starts[i] != offline.StartOf(i) {
				t.Fatalf("trial %d job %d: sim %v vs offline %v", trial, i, res.Starts[i], offline.StartOf(i))
			}
		}
	}
}

func TestAsScheduleVerifies(t *testing.T) {
	arr := arrivalsFixture()
	rsv := []core.Reservation{{ID: 0, Procs: 1, Start: 3, Len: 4}}
	res, err := Run(4, rsv, arr, EASYPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	s := res.AsSchedule()
	if err := verify.Verify(s); err != nil {
		t.Fatalf("AsSchedule infeasible: %v", err)
	}
	if s.Algorithm != "easy-bf" {
		t.Fatalf("algorithm = %q", s.Algorithm)
	}
	if s.Makespan() != res.Metrics.Makespan {
		t.Fatalf("makespan mismatch: %v vs %v", s.Makespan(), res.Metrics.Makespan)
	}
}

func TestWaits(t *testing.T) {
	arr := []workload.Arrival{
		{Job: core.Job{ID: 0, Procs: 4, Len: 10}, At: 0},
		{Job: core.Job{ID: 1, Procs: 4, Len: 5}, At: 2},
	}
	res, err := Run(4, nil, arr, GreedyPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	w := res.Waits()
	if len(w) != 2 || w[0] != 0 || w[1] != 8 { // job1 starts at 10, arrived 2
		t.Fatalf("waits = %v", w)
	}
}

func TestPolicyNames(t *testing.T) {
	if (GreedyPolicy{}).Name() != "greedy-lsrc" ||
		(FCFSPolicy{}).Name() != "fcfs" ||
		(EASYPolicy{}).Name() != "easy-bf" {
		t.Fatal("policy names wrong")
	}
}
