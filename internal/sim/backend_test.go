package sim

import (
	"testing"

	"repro/internal/rng"
	"repro/internal/workload"
)

// TestRunOnBackendEquivalence runs every policy on both capacity backends
// over the same arrival stream and requires identical start vectors: the
// discrete-event engine must be insensitive to the index implementation.
func TestRunOnBackendEquivalence(t *testing.T) {
	r := rng.New(5)
	arrivals, err := workload.Synthetic(r.Split(), workload.SynthConfig{M: 32, N: 80})
	if err != nil {
		t.Fatal(err)
	}
	res := workload.ReservationStream(r.Split(), 32, 0.5, 6, 5000)
	for _, p := range []Policy{FCFSPolicy{}, EASYPolicy{}, GreedyPolicy{}} {
		ra, err := RunOn("array", 32, res, arrivals, p)
		if err != nil {
			t.Fatalf("%s on array: %v", p.Name(), err)
		}
		rt, err := RunOn("tree", 32, res, arrivals, p)
		if err != nil {
			t.Fatalf("%s on tree: %v", p.Name(), err)
		}
		if ra.Metrics.Makespan != rt.Metrics.Makespan {
			t.Fatalf("%s: makespan %v (array) vs %v (tree)",
				p.Name(), ra.Metrics.Makespan, rt.Metrics.Makespan)
		}
		for i := range ra.Starts {
			if ra.Starts[i] != rt.Starts[i] {
				t.Fatalf("%s: arrival %d starts at %v (array) vs %v (tree)",
					p.Name(), i, ra.Starts[i], rt.Starts[i])
			}
		}
	}
}

func TestRunOnUnknownBackend(t *testing.T) {
	if _, err := RunOn("no-such-backend", 4, nil, nil, GreedyPolicy{}); err == nil {
		t.Fatal("want error for unknown backend")
	}
}
