package lower

import (
	"testing"

	"repro/internal/core"
	"repro/internal/rng"
	"repro/internal/sched"
)

func TestAreaBoundNoReservations(t *testing.T) {
	inst := &core.Instance{M: 4, Jobs: []core.Job{
		{ID: 0, Procs: 2, Len: 10},
		{ID: 1, Procs: 2, Len: 10},
	}}
	b := Compute(inst)
	// W = 40, m = 4 -> area bound 10.
	if b.Area != 10 {
		t.Errorf("Area = %v, want 10", b.Area)
	}
	if b.JobFit != 10 {
		t.Errorf("JobFit = %v, want 10", b.JobFit)
	}
	if b.Best != 10 {
		t.Errorf("Best = %v, want 10", b.Best)
	}
}

func TestAreaBoundWithReservation(t *testing.T) {
	// Machine fully reserved on [0,5): no work fits before 5.
	inst := &core.Instance{
		M:    4,
		Jobs: []core.Job{{ID: 0, Procs: 4, Len: 10}},
		Res:  []core.Reservation{{ID: 0, Procs: 4, Start: 0, Len: 5}},
	}
	b := Compute(inst)
	if b.Area != 15 {
		t.Errorf("Area = %v, want 15", b.Area)
	}
	if b.JobFit != 15 {
		t.Errorf("JobFit = %v, want 15", b.JobFit)
	}
}

func TestJobFitDominatesArea(t *testing.T) {
	// One long thin job on a big machine: the area bound is tiny but the
	// job itself needs its full length.
	inst := &core.Instance{M: 100, Jobs: []core.Job{{ID: 0, Procs: 1, Len: 50}}}
	b := Compute(inst)
	if b.Area != 1 {
		t.Errorf("Area = %v, want 1 (W=50 vs m=100 over 1 tick... ceil(50/100)=1)", b.Area)
	}
	if b.JobFit != 50 || b.Best != 50 {
		t.Errorf("JobFit/Best = %v/%v, want 50/50", b.JobFit, b.Best)
	}
}

func TestTallBound(t *testing.T) {
	// Two jobs of width 3 on m=4: pairwise exclusive, total length 20.
	inst := &core.Instance{M: 4, Jobs: []core.Job{
		{ID: 0, Procs: 3, Len: 10},
		{ID: 1, Procs: 3, Len: 10},
	}}
	b := Compute(inst)
	if b.Tall != 20 {
		t.Errorf("Tall = %v, want 20", b.Tall)
	}
	if b.Best != 20 {
		t.Errorf("Best = %v, want 20", b.Best)
	}
}

func TestTallBoundSkipsLowSegments(t *testing.T) {
	// Tall job of width 3 on m=4; reservation leaves only 2 procs on
	// [0,10): tall time cannot accumulate there.
	inst := &core.Instance{
		M:    4,
		Jobs: []core.Job{{ID: 0, Procs: 3, Len: 5}},
		Res:  []core.Reservation{{ID: 0, Procs: 2, Start: 0, Len: 10}},
	}
	b := Compute(inst)
	if b.Tall != 15 {
		t.Errorf("Tall = %v, want 15", b.Tall)
	}
}

func TestInfiniteBlockade(t *testing.T) {
	inst := &core.Instance{
		M:    4,
		Jobs: []core.Job{{ID: 0, Procs: 3, Len: 5}},
		Res:  []core.Reservation{{ID: 0, Procs: 2, Start: 0, Len: core.Infinity}},
	}
	b := Compute(inst)
	if b.JobFit != core.Infinity || b.Tall != core.Infinity {
		t.Errorf("blockaded bounds should be infinite: %+v", b)
	}
}

func TestEmptyInstance(t *testing.T) {
	b := Compute(&core.Instance{M: 4})
	if b.Best != 0 {
		t.Errorf("empty Best = %v", b.Best)
	}
}

func TestRatio(t *testing.T) {
	if Ratio(10, 5) != 2 {
		t.Error("Ratio(10,5) != 2")
	}
	if Ratio(0, 0) != 1 {
		t.Error("Ratio(0,0) != 1")
	}
	if Ratio(7, 0) != 7 {
		t.Error("Ratio(7,0) != 7")
	}
}

// TestBoundsNeverExceedAnySchedule is the soundness property: every lower
// bound must be <= the makespan of every feasible schedule produced by any
// scheduler.
func TestBoundsNeverExceedAnySchedule(t *testing.T) {
	r := rng.New(90210)
	schedulers := []sched.Scheduler{
		sched.NewLSRC(sched.FIFO), sched.NewLSRC(sched.LPT),
		sched.FCFS{}, sched.Conservative{}, sched.EASY{}, &sched.Shelf{},
	}
	for trial := 0; trial < 120; trial++ {
		m := r.IntRange(1, 8)
		inst := &core.Instance{M: m}
		for i := 0; i < r.IntRange(1, 10); i++ {
			inst.Jobs = append(inst.Jobs, core.Job{
				ID: i, Procs: r.IntRange(1, m), Len: core.Time(r.IntRange(1, 15)),
			})
		}
		if r.Bool(0.5) {
			q := r.IntRange(1, m)
			inst.Res = append(inst.Res, core.Reservation{
				ID: 0, Procs: q, Start: core.Time(r.Intn(20)), Len: core.Time(r.IntRange(1, 15)),
			})
		}
		b := Compute(inst)
		for _, sc := range schedulers {
			s, err := sc.Schedule(inst)
			if err != nil {
				t.Fatalf("trial %d: %s: %v", trial, sc.Name(), err)
			}
			if s.Makespan() < b.Best {
				t.Fatalf("trial %d: %s makespan %v below lower bound %v\ninstance: %+v",
					trial, sc.Name(), s.Makespan(), b.Best, inst)
			}
		}
	}
}
