// Package lower computes lower bounds on the optimal makespan C*max of a
// RESASCHEDULING instance. Experiments use these bounds as the reference
// denominator for performance ratios whenever the exact solver is too
// expensive. Since LB <= C*max, the measured ratio Cmax/LB over-estimates
// the true ratio Cmax/C*max, so observing "measured ratio <= guarantee"
// validates the theorem a fortiori; the harness reports which reference
// (exact or bound) produced each number.
//
// All bounds account for the reservations: they are computed on the
// availability timeline m - U(t), not on the raw machine.
package lower

import (
	"repro/internal/core"
	"repro/internal/profile"
)

// Bounds collects the individual lower bounds on C*max.
type Bounds struct {
	// Area is the earliest time by which the free area (integral of
	// m - U(t)) can cover the instance's total work W(I).
	Area core.Time
	// JobFit is the maximum over jobs of the earliest possible completion
	// time of that job alone on the reservation-only timeline.
	JobFit core.Time
	// Tall accounts for jobs wider than m/2: no two can ever overlap, so
	// their total duration must fit in instants with enough availability.
	Tall core.Time
	// Best is the maximum of the above.
	Best core.Time
}

// Compute returns all lower bounds for the instance. It panics if the
// instance is invalid (validate first).
func Compute(inst *core.Instance) Bounds {
	tl := profile.MustFromReservations(inst.M, inst.Res)
	b := Bounds{
		Area:   areaBound(inst, tl),
		JobFit: jobFitBound(inst, tl),
		Tall:   tallBound(inst, tl),
	}
	b.Best = core.MaxTime(b.Area, core.MaxTime(b.JobFit, b.Tall))
	return b
}

// Best is shorthand for Compute(inst).Best.
func Best(inst *core.Instance) core.Time {
	return Compute(inst).Best
}

// areaBound: any schedule finishing at T has used at most FreeArea(0,T)
// processor-ticks, which must cover W(I).
func areaBound(inst *core.Instance, tl *profile.Timeline) core.Time {
	w := inst.TotalWork()
	if w == 0 {
		return 0
	}
	t, ok := tl.FirstTimeWithFreeArea(w)
	if !ok {
		// Machine permanently dead under reservations; no finite bound.
		return core.Infinity
	}
	return t
}

// jobFitBound: each job individually cannot complete before its earliest
// feasible slot plus its length on the empty (reservation-only) machine.
func jobFitBound(inst *core.Instance, tl *profile.Timeline) core.Time {
	var best core.Time
	for _, j := range inst.Jobs {
		s, ok := tl.FindSlot(0, j.Procs, j.Len)
		if !ok {
			return core.Infinity
		}
		if end := s + j.Len; end > best {
			best = end
		}
	}
	return best
}

// tallBound: jobs with q > m/2 are pairwise non-overlapping in any feasible
// schedule. Let L be their total duration and qmin the smallest width among
// them; every instant during which a tall job runs must offer availability
// >= qmin, so C*max is at least the earliest time T such that the measure
// of {t < T : avail(t) >= qmin} reaches L.
func tallBound(inst *core.Instance, tl *profile.Timeline) core.Time {
	var total core.Time
	qmin := inst.M + 1
	for _, j := range inst.Jobs {
		if 2*j.Procs > inst.M {
			total += j.Len
			if j.Procs < qmin {
				qmin = j.Procs
			}
		}
	}
	if total == 0 {
		return 0
	}
	// Walk segments accumulating eligible time.
	var acc core.Time
	bps := tl.Breakpoints()
	for i, start := range bps {
		var end core.Time = core.Infinity
		if i+1 < len(bps) {
			end = bps[i+1]
		}
		if tl.AvailableAt(start) < qmin {
			continue
		}
		if end == core.Infinity {
			return start + (total - acc)
		}
		seg := end - start
		if acc+seg >= total {
			return start + (total - acc)
		}
		acc += seg
	}
	return core.Infinity
}

// Ratio returns the performance ratio of a schedule against the given
// reference optimum (or bound). It returns +Inf semantics via a large
// float; callers format it. Reference 0 (empty instance) returns 1.
func Ratio(cmax, reference core.Time) float64 {
	if reference == 0 {
		if cmax == 0 {
			return 1
		}
		return float64(cmax)
	}
	return float64(cmax) / float64(reference)
}
