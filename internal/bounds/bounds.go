// Package bounds provides the closed-form performance guarantees proved or
// cited by the paper, and generates the data behind its Figure 4.
//
// All functions return the guarantee as a float64 ratio (schedule makespan
// divided by optimal makespan).
package bounds

import (
	"fmt"
	"math"
)

// Graham returns the Garey–Graham guarantee for list scheduling with
// resource constraints and no reservations on m machines (Theorem 2 of the
// paper's appendix): 2 - 1/m.
func Graham(m int) float64 {
	if m < 1 {
		panic("bounds: Graham needs m >= 1")
	}
	return 2 - 1/float64(m)
}

// NonIncreasing returns Proposition 1's guarantee for instances with
// non-increasing reservations: 2 - 1/m(C*max), where mAtOpt is the number
// of machines available at the optimal makespan (m(C*max) in the paper).
func NonIncreasing(mAtOpt int) float64 {
	if mAtOpt < 1 {
		panic("bounds: NonIncreasing needs m(C*max) >= 1")
	}
	return 2 - 1/float64(mAtOpt)
}

// validAlpha panics unless α is in (0, 1].
func validAlpha(alpha float64) {
	if !(alpha > 0 && alpha <= 1) {
		panic(fmt.Sprintf("bounds: alpha %v outside (0,1]", alpha))
	}
}

// AlphaUpper returns Proposition 3's upper bound for LSRC on the
// α-RESASCHEDULING problem: 2/α. For α = 1/2 this is the bound of 4 quoted
// in §4.2.
func AlphaUpper(alpha float64) float64 {
	validAlpha(alpha)
	return 2 / alpha
}

// Prop2 returns Proposition 2's lower bound 2/α - 1 + α/2 on the LSRC
// guarantee, exact when 2/α is an integer.
func Prop2(alpha float64) float64 {
	validAlpha(alpha)
	return 2/alpha - 1 + alpha/2
}

// IsProp2Alpha reports whether 2/α is (numerically) an integer, i.e. the
// α values at which Proposition 2's construction is exact.
func IsProp2Alpha(alpha float64) bool {
	validAlpha(alpha)
	k := 2 / alpha
	return math.Abs(k-math.Round(k)) < 1e-9
}

// B1 returns the paper's sharper general-α lower bound
//
//	B1(α) = ⌈2/α⌉ - 1 + 1/(⌊(1-α/2) / (1-(α/2)(⌈2/α⌉-1))⌋ + 1).
//
// When 2/α is an integer, B1 reduces to Proposition 2's bound.
func B1(alpha float64) float64 {
	validAlpha(alpha)
	k := math.Ceil(2/alpha - 1e-12)
	den := 1 - (alpha/2)*(k-1)
	// den > 0 always: (α/2)(⌈2/α⌉-1) < (α/2)(2/α) = 1.
	inner := math.Floor((1 - alpha/2) / den * (1 + 1e-12))
	return k - 1 + 1/(inner+1)
}

// B2 returns the paper's simpler general-α lower bound
//
//	B2(α) = ⌈2/α⌉ - (⌈2/α⌉-1)/(2/α).
//
// B2 <= B1 everywhere (the paper: "a bit less precise than B1, but easier
// to express").
func B2(alpha float64) float64 {
	validAlpha(alpha)
	k := math.Ceil(2/alpha - 1e-12)
	return k - (k-1)*alpha/2
}

// Figure4Row is one point of the paper's Figure 4: the three curves at a
// given α.
type Figure4Row struct {
	Alpha float64
	Upper float64 // 2/α (Proposition 3)
	B1    float64
	B2    float64
}

// Figure4 samples the three curves of the paper's Figure 4 on a regular α
// grid of n points spanning (0, 1]: α_i = i/n for i = 1..n.
func Figure4(n int) []Figure4Row {
	if n < 1 {
		panic("bounds: Figure4 needs n >= 1")
	}
	rows := make([]Figure4Row, 0, n)
	for i := 1; i <= n; i++ {
		a := float64(i) / float64(n)
		rows = append(rows, Figure4Row{
			Alpha: a,
			Upper: AlphaUpper(a),
			B1:    B1(a),
			B2:    B2(a),
		})
	}
	return rows
}

// Gap returns the multiplicative gap between the upper bound and B1 at α:
// AlphaUpper/B1 >= 1. The paper's Figure 4 discussion notes the two "can be
// arbitrarily close to each other for some values of α" (namely α = 2/k).
func Gap(alpha float64) float64 {
	return AlphaUpper(alpha) / B1(alpha)
}
