package bounds_test

import (
	"fmt"

	"repro/internal/bounds"
)

// ExampleAlphaUpper reproduces the §4.2 remark: for α = 1/2 the LSRC
// guarantee is 4.
func ExampleAlphaUpper() {
	fmt.Printf("%.0f\n", bounds.AlphaUpper(0.5))
	// Output:
	// 4
}

// ExampleProp2 computes the Figure 3 ratio: at α = 1/3 the adversarial
// family reaches 2/α - 1 + α/2 = 31/6.
func ExampleProp2() {
	fmt.Printf("%.4f\n", bounds.Prop2(1.0/3))
	// Output:
	// 5.1667
}

// ExampleGraham is Theorem 2's guarantee for the paper's Figure 3 machine
// size.
func ExampleGraham() {
	fmt.Printf("%.4f\n", bounds.Graham(180))
	// Output:
	// 1.9944
}
