package bounds

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestGraham(t *testing.T) {
	cases := []struct {
		m    int
		want float64
	}{{1, 1}, {2, 1.5}, {4, 1.75}, {180, 2 - 1.0/180}}
	for _, c := range cases {
		if got := Graham(c.m); !almost(got, c.want) {
			t.Errorf("Graham(%d) = %v, want %v", c.m, got, c.want)
		}
	}
}

func TestGrahamPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Graham(0) did not panic")
		}
	}()
	Graham(0)
}

func TestNonIncreasing(t *testing.T) {
	if got := NonIncreasing(4); !almost(got, 1.75) {
		t.Errorf("NonIncreasing(4) = %v", got)
	}
}

func TestAlphaUpperKnownValues(t *testing.T) {
	// §4.2: "For α = 1/2, we obtain a bound of 4."
	if got := AlphaUpper(0.5); !almost(got, 4) {
		t.Errorf("AlphaUpper(1/2) = %v, want 4", got)
	}
	if got := AlphaUpper(1); !almost(got, 2) {
		t.Errorf("AlphaUpper(1) = %v, want 2", got)
	}
}

func TestProp2KnownValues(t *testing.T) {
	// α = 1/3 (k=6): 6 - 1 + 1/6 = 31/6 — the Figure 3 ratio 31/6.
	if got := Prop2(1.0 / 3); !almost(got, 31.0/6) {
		t.Errorf("Prop2(1/3) = %v, want 31/6", got)
	}
	// α = 2/3 (k=3): 3 - 1 + 1/3 = 7/3 — the k=3 fixture in sched tests.
	if got := Prop2(2.0 / 3); !almost(got, 7.0/3) {
		t.Errorf("Prop2(2/3) = %v, want 7/3", got)
	}
	// α = 1 (k=2): 2 - 1 + 1/2 = 3/2.
	if got := Prop2(1); !almost(got, 1.5) {
		t.Errorf("Prop2(1) = %v, want 3/2", got)
	}
}

func TestIsProp2Alpha(t *testing.T) {
	for _, a := range []float64{1, 2.0 / 3, 0.5, 2.0 / 5, 1.0 / 3, 0.25, 0.2} {
		if !IsProp2Alpha(a) {
			t.Errorf("IsProp2Alpha(%v) = false", a)
		}
	}
	for _, a := range []float64{0.9, 0.55, 0.3, 0.45} {
		if IsProp2Alpha(a) {
			t.Errorf("IsProp2Alpha(%v) = true", a)
		}
	}
}

func TestB1ReducesToProp2OnIntegerK(t *testing.T) {
	for k := 2; k <= 20; k++ {
		a := 2.0 / float64(k)
		if got, want := B1(a), Prop2(a); !almost(got, want) {
			t.Errorf("B1(2/%d) = %v, want Prop2 = %v", k, got, want)
		}
	}
}

func TestB2AtIntegerK(t *testing.T) {
	// B2(2/k) = k - (k-1)/k.
	for k := 2; k <= 20; k++ {
		a := 2.0 / float64(k)
		want := float64(k) - float64(k-1)/float64(k)
		if got := B2(a); !almost(got, want) {
			t.Errorf("B2(2/%d) = %v, want %v", k, got, want)
		}
	}
}

func TestB1AtLeastB2(t *testing.T) {
	f := func(raw uint16) bool {
		a := (float64(raw%10000) + 1) / 10001 // alpha in (0,1)
		return B1(a) >= B2(a)-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestUpperAboveLowerBounds(t *testing.T) {
	f := func(raw uint16) bool {
		a := (float64(raw%10000) + 1) / 10001
		u := AlphaUpper(a)
		return u >= B1(a)-1e-9 && u >= B2(a)-1e-9 && u >= Prop2(a)-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestBoundsMonotoneInAlpha(t *testing.T) {
	// The upper bound 2/α and B2 are non-increasing in α.
	prevU, prevB2 := math.Inf(1), math.Inf(1)
	for i := 1; i <= 1000; i++ {
		a := float64(i) / 1000
		u, b2 := AlphaUpper(a), B2(a)
		if u > prevU+1e-9 {
			t.Fatalf("AlphaUpper not non-increasing at α=%v", a)
		}
		if b2 > prevB2+1e-9 {
			t.Fatalf("B2 not non-increasing at α=%v", a)
		}
		prevU, prevB2 = u, b2
	}
}

func TestGapTightAtIntegerK(t *testing.T) {
	// At α = 2/k the gap 2/α ÷ B1 = k / (k-1+1/k) → 1 as k grows: the
	// paper's "arbitrarily close" remark.
	prev := Gap(2.0 / 2)
	for k := 3; k <= 64; k++ {
		g := Gap(2.0 / float64(k))
		if g >= prev {
			t.Fatalf("gap at 2/%d (%v) not smaller than at 2/%d (%v)", k, g, k-1, prev)
		}
		prev = g
	}
	if prev > 1.02 {
		t.Fatalf("gap at k=64 still %v; should approach 1", prev)
	}
}

func TestFigure4(t *testing.T) {
	rows := Figure4(50)
	if len(rows) != 50 {
		t.Fatalf("len = %d", len(rows))
	}
	if !almost(rows[len(rows)-1].Alpha, 1) {
		t.Fatalf("last alpha = %v", rows[len(rows)-1].Alpha)
	}
	for _, r := range rows {
		if r.Upper < r.B1-1e-9 || r.B1 < r.B2-1e-9 {
			t.Fatalf("ordering violated at α=%v: %+v", r.Alpha, r)
		}
	}
	// Paper's Figure 4 y-axis tops out at 10: the curves reach ~10 near
	// α=0.2 (upper bound 2/0.2 = 10).
	if !almost(rows[9].Upper, 10) { // α = 10/50 = 0.2
		t.Fatalf("Upper(0.2) = %v, want 10", rows[9].Upper)
	}
}

func TestValidAlphaPanics(t *testing.T) {
	for _, a := range []float64{0, -0.5, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("alpha %v did not panic", a)
				}
			}()
			AlphaUpper(a)
		}()
	}
}

func TestFigure4PanicsOnBadN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Figure4(0) did not panic")
		}
	}()
	Figure4(0)
}
