package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("generators with equal seeds diverged at step %d", i)
		}
	}
}

func TestSeedSensitivity(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint32() == b.Uint32() {
			same++
		}
	}
	if same > 4 {
		t.Fatalf("seeds 1 and 2 produced %d/64 identical outputs", same)
	}
}

func TestStreamsIndependent(t *testing.T) {
	a := NewStream(7, 1)
	b := NewStream(7, 2)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint32() == b.Uint32() {
			same++
		}
	}
	if same > 4 {
		t.Fatalf("streams 1 and 2 produced %d/64 identical outputs", same)
	}
}

func TestKnownSequenceStable(t *testing.T) {
	// Pin the first outputs for seed 12345 so accidental algorithm changes
	// (which would silently change every experiment) are caught.
	p := New(12345)
	got := []uint32{p.Uint32(), p.Uint32(), p.Uint32(), p.Uint32()}
	q := New(12345)
	want := []uint32{q.Uint32(), q.Uint32(), q.Uint32(), q.Uint32()}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("sequence not reproducible: %v vs %v", got, want)
		}
	}
}

func TestIntnRange(t *testing.T) {
	p := New(3)
	for i := 0; i < 10000; i++ {
		v := p.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d out of range", v)
		}
	}
}

func TestIntnCoversAllValues(t *testing.T) {
	p := New(4)
	seen := make(map[int]int)
	const n = 5
	for i := 0; i < 5000; i++ {
		seen[p.Intn(n)]++
	}
	for v := 0; v < n; v++ {
		if seen[v] == 0 {
			t.Fatalf("Intn(%d) never produced %d", n, v)
		}
		// Roughly uniform: each bucket should hold ~1000 of 5000 draws.
		if seen[v] < 700 || seen[v] > 1300 {
			t.Fatalf("Intn(%d) bucket %d has suspicious count %d", n, v, seen[v])
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestInt63nPowerOfTwo(t *testing.T) {
	p := New(9)
	for i := 0; i < 1000; i++ {
		v := p.Int63n(16)
		if v < 0 || v >= 16 {
			t.Fatalf("Int63n(16) = %d out of range", v)
		}
	}
}

func TestIntRange(t *testing.T) {
	p := New(5)
	for i := 0; i < 1000; i++ {
		v := p.IntRange(3, 5)
		if v < 3 || v > 5 {
			t.Fatalf("IntRange(3,5) = %d out of range", v)
		}
	}
	if got := p.IntRange(4, 4); got != 4 {
		t.Fatalf("IntRange(4,4) = %d, want 4", got)
	}
}

func TestFloat64InUnitInterval(t *testing.T) {
	p := New(6)
	for i := 0; i < 10000; i++ {
		f := p.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	p := New(8)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += p.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean %v too far from 0.5", mean)
	}
}

func TestExpoMean(t *testing.T) {
	p := New(10)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += p.Expo(3.0)
	}
	mean := sum / n
	if math.Abs(mean-3.0) > 0.1 {
		t.Fatalf("Expo(3) mean %v too far from 3", mean)
	}
}

func TestLogUniformBounds(t *testing.T) {
	p := New(11)
	for i := 0; i < 10000; i++ {
		v := p.LogUniform(2, 512)
		if v < 2 || v > 512 {
			t.Fatalf("LogUniform(2,512) = %v out of range", v)
		}
	}
	if got := p.LogUniform(5, 5); got != 5 {
		t.Fatalf("LogUniform(5,5) = %v, want 5", got)
	}
}

func TestPermIsPermutation(t *testing.T) {
	p := New(12)
	perm := p.Perm(50)
	seen := make([]bool, 50)
	for _, v := range perm {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("Perm(50) invalid: %v", perm)
		}
		seen[v] = true
	}
}

func TestPermProperty(t *testing.T) {
	p := New(13)
	f := func(nRaw uint8) bool {
		n := int(nRaw%64) + 1
		perm := p.Perm(n)
		if len(perm) != n {
			return false
		}
		sum := 0
		for _, v := range perm {
			sum += v
		}
		return sum == n*(n-1)/2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(99)
	child := parent.Split()
	same := 0
	for i := 0; i < 64; i++ {
		if parent.Uint32() == child.Uint32() {
			same++
		}
	}
	if same > 4 {
		t.Fatalf("parent and split child produced %d/64 identical outputs", same)
	}
}

func TestPickWeighted(t *testing.T) {
	p := New(21)
	counts := [3]int{}
	for i := 0; i < 30000; i++ {
		counts[p.Pick([]float64{1, 2, 1})]++
	}
	// Middle bucket should receive about half the draws.
	if counts[1] < 12000 || counts[1] > 18000 {
		t.Fatalf("weighted pick counts %v deviate from 1:2:1", counts)
	}
}

func TestPickPanicsOnZeroTotal(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Pick with zero weights did not panic")
		}
	}()
	New(1).Pick([]float64{0, 0})
}

func TestBoolProbability(t *testing.T) {
	p := New(22)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if p.Bool(0.25) {
			hits++
		}
	}
	frac := float64(hits) / n
	if math.Abs(frac-0.25) > 0.01 {
		t.Fatalf("Bool(0.25) hit fraction %v", frac)
	}
}

func BenchmarkUint64(b *testing.B) {
	p := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += p.Uint64()
	}
	_ = sink
}

func BenchmarkIntn(b *testing.B) {
	p := New(1)
	var sink int
	for i := 0; i < b.N; i++ {
		sink += p.Intn(1000)
	}
	_ = sink
}

func TestZipfSkewsTowardLowRanks(t *testing.T) {
	p := New(99)
	z := NewZipf(p, 8, 1.1)
	counts := make([]int, 8)
	const n = 100000
	for i := 0; i < n; i++ {
		r := z.Next()
		if r < 0 || r >= 8 {
			t.Fatalf("rank %d outside [0,8)", r)
		}
		counts[r]++
	}
	// Monotone-ish head and a genuinely heavy rank 0: with s=1.1 over 8
	// ranks, rank 0 carries ~36% of the mass.
	if counts[0] <= counts[1] || counts[1] <= counts[3] || counts[3] <= counts[7] {
		t.Fatalf("counts not decreasing in rank: %v", counts)
	}
	if frac := float64(counts[0]) / n; frac < 0.30 || frac > 0.42 {
		t.Fatalf("rank-0 fraction %v, want ~0.36", frac)
	}
	// s=0 degenerates to uniform.
	u := NewZipf(New(7), 4, 0)
	uc := make([]int, 4)
	for i := 0; i < n; i++ {
		uc[u.Next()]++
	}
	for r, c := range uc {
		if math.Abs(float64(c)/n-0.25) > 0.02 {
			t.Fatalf("s=0 rank %d fraction %v, want 0.25", r, float64(c)/n)
		}
	}
}

func TestZipfDeterministic(t *testing.T) {
	a := NewZipf(New(5), 16, 1.2)
	b := NewZipf(New(5), 16, 1.2)
	for i := 0; i < 1000; i++ {
		if x, y := a.Next(), b.Next(); x != y {
			t.Fatalf("draw %d diverged: %d vs %d", i, x, y)
		}
	}
}
