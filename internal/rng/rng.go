// Package rng provides small, fast, deterministic random number generators
// with explicit state, used by every stochastic component of the repository
// (instance generators, workload models, experiment sweeps).
//
// The repository deliberately does not use math/rand for experiment-facing
// randomness: the stream produced by a PCG generator here is fully
// determined by (seed, stream) and is stable across Go releases, so every
// experiment table in EXPERIMENTS.md can be regenerated bit-for-bit.
//
// The generator is PCG-XSH-RR 64/32 (O'Neill, 2014), a 64-bit LCG with a
// 32-bit output permutation. Two independent PCG32 halves are combined for
// 64-bit outputs.
package rng

import "math"

// mulConst is the multiplier of the underlying 64-bit LCG (from the PCG
// reference implementation).
const mulConst = 6364136223846793005

// defaultInc is the default odd increment used when a stream id is not
// supplied.
const defaultInc = 1442695040888963407

// PCG is a PCG-XSH-RR 64/32 generator. The zero value is not ready for use;
// construct with New or NewStream.
type PCG struct {
	state uint64
	inc   uint64 // always odd
}

// New returns a generator seeded with seed on the default stream.
func New(seed uint64) *PCG {
	return NewStream(seed, 0)
}

// NewStream returns a generator seeded with seed on the given stream.
// Distinct stream ids yield statistically independent sequences even for
// equal seeds, which lets parallel experiment workers share one logical seed.
func NewStream(seed, stream uint64) *PCG {
	p := &PCG{inc: (stream << 1) | 1}
	if stream == 0 {
		p.inc = defaultInc
	}
	// Advance as in pcg32_srandom_r: ensures good state mixing even for
	// small seeds.
	p.state = 0
	p.Uint32()
	p.state += seed
	p.Uint32()
	return p
}

// Split returns a new generator whose stream is derived from the next output
// of p. The child is independent of the parent's subsequent outputs, so a
// sweep can hand one child to each of its workers.
func (p *PCG) Split() *PCG {
	seed := p.Uint64()
	stream := p.Uint64() | 1
	return NewStream(seed, stream)
}

// Uint32 returns the next 32 uniformly distributed bits.
func (p *PCG) Uint32() uint32 {
	old := p.state
	p.state = old*mulConst + p.inc
	xorshifted := uint32(((old >> 18) ^ old) >> 27)
	rot := uint32(old >> 59)
	return (xorshifted >> rot) | (xorshifted << ((-rot) & 31))
}

// Uint64 returns the next 64 uniformly distributed bits.
func (p *PCG) Uint64() uint64 {
	hi := uint64(p.Uint32())
	lo := uint64(p.Uint32())
	return hi<<32 | lo
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (p *PCG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(p.Int63n(int64(n)))
}

// Int63n returns a uniform int64 in [0, n) using rejection sampling to avoid
// modulo bias. It panics if n <= 0.
func (p *PCG) Int63n(n int64) int64 {
	if n <= 0 {
		panic("rng: Int63n with non-positive n")
	}
	if n&(n-1) == 0 { // power of two
		return int64(p.Uint64() & uint64(n-1))
	}
	max := uint64((1 << 63) - 1 - (1<<63)%uint64(n))
	v := p.Uint64() >> 1
	for v > max {
		v = p.Uint64() >> 1
	}
	return int64(v % uint64(n))
}

// IntRange returns a uniform int in [lo, hi] inclusive. It panics if hi < lo.
func (p *PCG) IntRange(lo, hi int) int {
	if hi < lo {
		panic("rng: IntRange with hi < lo")
	}
	return lo + p.Intn(hi-lo+1)
}

// Int63Range returns a uniform int64 in [lo, hi] inclusive.
func (p *PCG) Int63Range(lo, hi int64) int64 {
	if hi < lo {
		panic("rng: Int63Range with hi < lo")
	}
	return lo + p.Int63n(hi-lo+1)
}

// Float64 returns a uniform float64 in [0, 1).
func (p *PCG) Float64() float64 {
	// 53 random bits scaled into [0,1).
	return float64(p.Uint64()>>11) / (1 << 53)
}

// Expo returns an exponentially distributed float64 with the given mean.
func (p *PCG) Expo(mean float64) float64 {
	u := p.Float64()
	for u == 0 {
		u = p.Float64()
	}
	return -mean * math.Log(u)
}

// LogUniform returns a float64 log-uniformly distributed in [lo, hi].
// It panics unless 0 < lo <= hi.
func (p *PCG) LogUniform(lo, hi float64) float64 {
	if lo <= 0 || hi < lo {
		panic("rng: LogUniform needs 0 < lo <= hi")
	}
	if lo == hi {
		return lo
	}
	return math.Exp(math.Log(lo) + p.Float64()*(math.Log(hi)-math.Log(lo)))
}

// Bool returns true with probability prob.
func (p *PCG) Bool(prob float64) bool {
	return p.Float64() < prob
}

// Perm returns a uniform random permutation of [0, n).
func (p *PCG) Perm(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	p.Shuffle(n, func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

// Shuffle performs a Fisher-Yates shuffle over n elements using swap.
func (p *PCG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := p.Intn(i + 1)
		swap(i, j)
	}
}

// Zipf samples ranks 0..n-1 with probability proportional to
// 1/(rank+1)^s — the classic heavy-tailed popularity law of multi-tenant
// workloads (a few tenants dominate, a long tail trickles). The
// cumulative weights are precomputed once so Next costs one uniform draw
// plus a binary search, and the sequence is fully determined by the
// generator's state, like every other draw in this package.
type Zipf struct {
	p   *PCG
	cdf []float64 // cumulative, normalised to end at 1
}

// NewZipf builds a sampler over [0, n) with exponent s. It panics unless
// n >= 1 and s >= 0 (s = 0 degenerates to uniform, large s concentrates
// mass on rank 0).
func NewZipf(p *PCG, n int, s float64) *Zipf {
	if n < 1 || s < 0 || math.IsNaN(s) {
		panic("rng: NewZipf needs n >= 1 and s >= 0")
	}
	cdf := make([]float64, n)
	total := 0.0
	for i := 0; i < n; i++ {
		total += math.Pow(float64(i+1), -s)
		cdf[i] = total
	}
	for i := range cdf {
		cdf[i] /= total
	}
	return &Zipf{p: p, cdf: cdf}
}

// Next draws the next rank.
func (z *Zipf) Next() int {
	u := z.p.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] <= u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Pick returns a uniformly chosen index weighted by the non-negative weights
// slice. It panics if the total weight is zero or any weight is negative.
func (p *PCG) Pick(weights []float64) int {
	total := 0.0
	for _, w := range weights {
		if w < 0 {
			panic("rng: negative weight")
		}
		total += w
	}
	if total <= 0 {
		panic("rng: zero total weight")
	}
	x := p.Float64() * total
	for i, w := range weights {
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}
