package gantt

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/sched"
)

func scheduledFixture(t *testing.T) *core.Schedule {
	t.Helper()
	inst := &core.Instance{
		M: 4,
		Jobs: []core.Job{
			{ID: 0, Name: "conv", Procs: 2, Len: 10},
			{ID: 1, Procs: 4, Len: 5},
		},
		Res: []core.Reservation{{ID: 0, Procs: 2, Start: 12, Len: 4}},
	}
	s, err := sched.NewLSRC(sched.FIFO).Schedule(inst)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestASCIIRendersRowsPerProcessor(t *testing.T) {
	s := scheduledFixture(t)
	out, err := ASCII(s, 60)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"P0", "P1", "P2", "P3", "Cmax", "A=conv", "B=J1", "reserved"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "A") || !strings.Contains(out, "B") {
		t.Fatalf("job glyphs missing:\n%s", out)
	}
	if !strings.Contains(out, string(reservationGlyph)) {
		t.Fatalf("reservation glyph missing:\n%s", out)
	}
}

func TestASCIIEmptySchedule(t *testing.T) {
	inst := &core.Instance{M: 2}
	s := core.NewSchedule(inst)
	out, err := ASCII(s, 40)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "empty") {
		t.Fatalf("got %q", out)
	}
}

func TestASCIIInfeasibleScheduleErrors(t *testing.T) {
	inst := &core.Instance{M: 1, Jobs: []core.Job{
		{ID: 0, Procs: 1, Len: 5},
		{ID: 1, Procs: 1, Len: 5},
	}}
	s := core.NewSchedule(inst)
	s.SetStart(0, 0)
	s.SetStart(1, 0) // overlap on a 1-proc machine
	if _, err := ASCII(s, 40); err == nil {
		t.Fatal("infeasible schedule rendered")
	}
}

func TestSVGContainsJobRects(t *testing.T) {
	s := scheduledFixture(t)
	out, err := SVG(s, 800, 14)
	if err != nil {
		t.Fatal(err)
	}
	// LSRC: job0 [0,10); job1 cannot overlap the reservation window, so it
	// runs [16,21) and the makespan is 21.
	for _, want := range []string{"<svg", "</svg>", "conv", "Cmax=21"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q", want)
		}
	}
	// 2 procs * job0 + 4 procs * job1 + 2 procs * reservation = 8 rects
	// plus the background rect.
	if got := strings.Count(out, "<rect"); got != 9 {
		t.Fatalf("rect count = %d, want 9", got)
	}
}

func TestSVGDefaults(t *testing.T) {
	s := scheduledFixture(t)
	out, err := SVG(s, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, `width="800"`) {
		t.Fatal("default width not applied")
	}
}

func TestChartHorizonIncludesReservationTail(t *testing.T) {
	s := scheduledFixture(t)
	// Makespan 21 dominates the reservation end 16.
	if h := chartHorizon(s); h != 21 {
		t.Fatalf("horizon = %v, want 21", h)
	}
	// A schedule ending before its reservations: horizon is the
	// reservation end.
	inst := &core.Instance{
		M:    2,
		Jobs: []core.Job{{ID: 0, Procs: 1, Len: 2}},
		Res:  []core.Reservation{{ID: 0, Procs: 1, Start: 30, Len: 10}},
	}
	s2 := core.NewSchedule(inst)
	s2.SetStart(0, 0)
	if h := chartHorizon(s2); h != 40 {
		t.Fatalf("horizon = %v, want 40", h)
	}
}
