// Package gantt renders schedules as Gantt charts — the visual language of
// the paper's Figures 1-3 — in ASCII (terminal) and SVG (files). Jobs and
// reservations are drawn over processor rows using the concrete processor
// assignment from the verify package, so overlaps in the picture are
// impossible for feasible schedules.
package gantt

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/verify"
)

// jobGlyphs label jobs in ASCII charts, cycling when exhausted.
const jobGlyphs = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789"

// reservationGlyph marks reserved cells in ASCII charts.
const reservationGlyph = '▒'

// ASCII renders the schedule with one row per processor and one column per
// time bucket; width controls the number of columns. Returns an error only
// when the schedule is infeasible (no processor assignment exists).
func ASCII(s *core.Schedule, width int) (string, error) {
	asg, err := verify.AssignProcessors(s)
	if err != nil {
		return "", err
	}
	if width < 10 {
		width = 80
	}
	horizon := chartHorizon(s)
	if horizon == 0 {
		return "(empty schedule)\n", nil
	}
	m := s.Inst.M
	col := func(t core.Time) int {
		c := int(int64(t) * int64(width) / int64(horizon))
		if c >= width {
			c = width - 1
		}
		return c
	}
	runes := make([][]rune, m)
	for p := range runes {
		runes[p] = []rune(strings.Repeat(".", width))
	}
	for i, r := range s.Inst.Res {
		end := r.End()
		if end == core.Infinity || end > horizon {
			end = horizon
		}
		if r.Start >= horizon {
			continue
		}
		c0, c1 := col(r.Start), col(end-1)
		for _, p := range asg.ResProcs[i] {
			for c := c0; c <= c1; c++ {
				runes[p][c] = reservationGlyph
			}
		}
	}
	for i := range s.Inst.Jobs {
		g := rune(jobGlyphs[i%len(jobGlyphs)])
		t0 := s.StartOf(i)
		t1 := s.EndOf(i)
		c0, c1 := col(t0), col(t1-1)
		for _, p := range asg.JobProcs[i] {
			for c := c0; c <= c1; c++ {
				runes[p][c] = g
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "m=%d  Cmax=%v  (one row per processor, %v ticks/col)\n",
		m, s.Makespan(), float64(horizon)/float64(width))
	for p := m - 1; p >= 0; p-- {
		fmt.Fprintf(&b, "P%-3d |%s|\n", p, string(runes[p]))
	}
	fmt.Fprintf(&b, "     0%s%v\n", strings.Repeat(" ", width-1-len(horizon.String())), horizon)
	// Legend.
	var legend []string
	for i, j := range s.Inst.Jobs {
		legend = append(legend, fmt.Sprintf("%c=%s", jobGlyphs[i%len(jobGlyphs)], j.Label()))
		if len(legend) >= 16 {
			legend = append(legend, "...")
			break
		}
	}
	if len(s.Inst.Res) > 0 {
		legend = append(legend, fmt.Sprintf("%c=reserved", reservationGlyph))
	}
	fmt.Fprintf(&b, "     %s\n", strings.Join(legend, " "))
	return b.String(), nil
}

// chartHorizon is the drawing horizon: max of makespan and last finite
// reservation end.
func chartHorizon(s *core.Schedule) core.Time {
	h := s.Makespan()
	for _, r := range s.Inst.Res {
		if e := r.End(); e != core.Infinity && e > h {
			h = e
		}
	}
	return h
}

// SVG renders the schedule as an SVG document with one lane per processor.
func SVG(s *core.Schedule, width, rowH int) (string, error) {
	asg, err := verify.AssignProcessors(s)
	if err != nil {
		return "", err
	}
	if width < 100 {
		width = 800
	}
	if rowH < 4 {
		rowH = 14
	}
	horizon := chartHorizon(s)
	if horizon == 0 {
		horizon = 1
	}
	m := s.Inst.M
	const marginL, marginT = 44, 28
	h := marginT + m*rowH + 30
	tx := func(t core.Time) float64 {
		return float64(marginL) + float64(t)/float64(horizon)*float64(width-marginL-10)
	}
	py := func(p int) int { return marginT + (m-1-p)*rowH }

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d">`+"\n", width, h)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="white"/>`+"\n", width, h)
	fmt.Fprintf(&b, `<text x="%d" y="16" font-size="13">m=%d, Cmax=%v</text>`+"\n", marginL, m, s.Makespan())
	// Reservations.
	for i, r := range s.Inst.Res {
		end := r.End()
		if end == core.Infinity || end > horizon {
			end = horizon
		}
		for _, p := range asg.ResProcs[i] {
			fmt.Fprintf(&b, `<rect x="%.1f" y="%d" width="%.1f" height="%d" fill="#bbb" stroke="#888" stroke-width="0.5"/>`+"\n",
				tx(r.Start), py(p), tx(end)-tx(r.Start), rowH-1)
		}
	}
	// Jobs.
	colors := []string{"#4e79a7", "#f28e2b", "#59a14f", "#e15759", "#76b7b2",
		"#edc948", "#b07aa1", "#ff9da7", "#9c755f", "#bab0ac"}
	for i, j := range s.Inst.Jobs {
		color := colors[i%len(colors)]
		t0, t1 := s.StartOf(i), s.EndOf(i)
		for _, p := range asg.JobProcs[i] {
			fmt.Fprintf(&b, `<rect x="%.1f" y="%d" width="%.1f" height="%d" fill="%s" stroke="#333" stroke-width="0.5"/>`+"\n",
				tx(t0), py(p), tx(t1)-tx(t0), rowH-1, color)
		}
		// Label at the vertical middle of the job's processor block.
		if len(asg.JobProcs[i]) > 0 {
			mid := asg.JobProcs[i][len(asg.JobProcs[i])/2]
			fmt.Fprintf(&b, `<text x="%.1f" y="%d" font-size="10" fill="white">%s</text>`+"\n",
				tx(t0)+3, py(mid)+rowH-4, j.Label())
		}
	}
	// Axis.
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n",
		marginL, marginT+m*rowH, width-10, marginT+m*rowH)
	for i := 0; i <= 5; i++ {
		t := core.Time(int64(horizon) * int64(i) / 5)
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" font-size="10" text-anchor="middle">%v</text>`+"\n",
			tx(t), marginT+m*rowH+14, t)
	}
	b.WriteString("</svg>\n")
	return b.String(), nil
}
