package stats

import "testing"

// push is a test shorthand: one-element vectors are all the semantics
// need; width > 1 is covered explicitly by TestSnapRingWidth.
func push(r *SnapRing, at int64, v uint64) { r.Push(at, []uint64{v}) }

func delta1(t *testing.T, r *SnapRing, window int64) (uint64, int64, bool) {
	t.Helper()
	dst := []uint64{0xdead}
	span, ok := r.Delta(window, dst)
	if !ok && dst[0] != 0xdead {
		t.Fatalf("Delta wrote dst despite ok=false")
	}
	return dst[0], span, ok
}

func TestSnapRingEmptyAndSingle(t *testing.T) {
	r := NewSnapRing(8, 1)
	if _, _, ok := delta1(t, r, 100); ok {
		t.Fatal("empty ring answered a window")
	}
	push(r, 10, 5)
	if _, _, ok := delta1(t, r, 100); ok {
		t.Fatal("single snapshot answered a window — a delta needs two")
	}
	push(r, 20, 9)
	d, span, ok := delta1(t, r, 100)
	if !ok || d != 4 || span != 10 {
		t.Fatalf("got d=%d span=%d ok=%v, want 4/10/true", d, span, ok)
	}
}

func TestSnapRingWindowSelection(t *testing.T) {
	r := NewSnapRing(16, 1)
	// Snapshots every 10 ticks, counter climbing 3 per period.
	for i := int64(0); i < 10; i++ {
		push(r, i*10, uint64(i*3))
	}
	// newest at=90 val=27; window 30 → anchor at ≤ 60 → exactly at=60 val=18.
	d, span, ok := delta1(t, r, 30)
	if !ok || d != 9 || span != 30 {
		t.Fatalf("window 30: d=%d span=%d ok=%v, want 9/30/true", d, span, ok)
	}
	// A window no snapshot is old enough for falls back to the oldest,
	// reporting the true span.
	d, span, ok = delta1(t, r, 1000)
	if !ok || d != 27 || span != 90 {
		t.Fatalf("window 1000: d=%d span=%d ok=%v, want 27/90/true", d, span, ok)
	}
	// A window shorter than the snapshot period still answers — from the
	// adjacent snapshot — with the span honest about the coverage.
	d, span, ok = delta1(t, r, 3)
	if !ok || d != 3 || span != 10 {
		t.Fatalf("window 3: d=%d span=%d ok=%v, want 3/10/true", d, span, ok)
	}
}

func TestSnapRingWraparound(t *testing.T) {
	r := NewSnapRing(4, 1)
	for i := int64(0); i < 100; i++ {
		push(r, i*10, uint64(i))
	}
	if r.Len() != 4 {
		t.Fatalf("Len=%d after overfilling a 4-slot ring", r.Len())
	}
	// Retained: at 960..990. The widest answerable window spans the ring.
	d, span, ok := delta1(t, r, 1<<40)
	if !ok || d != 3 || span != 30 {
		t.Fatalf("wrapped ring: d=%d span=%d ok=%v, want 3/30/true", d, span, ok)
	}
	d, span, ok = delta1(t, r, 10)
	if !ok || d != 1 || span != 10 {
		t.Fatalf("wrapped ring window 10: d=%d span=%d ok=%v, want 1/10/true", d, span, ok)
	}
}

func TestSnapRingClockRegression(t *testing.T) {
	r := NewSnapRing(8, 1)
	push(r, 100, 10)
	push(r, 200, 20)
	push(r, 300, 30)
	// Duplicate timestamp: overwrites the newest in place.
	push(r, 300, 35)
	if r.Len() != 3 {
		t.Fatalf("Len=%d after duplicate-timestamp push, want 3", r.Len())
	}
	d, span, ok := delta1(t, r, 100)
	if !ok || d != 15 || span != 100 {
		t.Fatalf("after duplicate: d=%d span=%d ok=%v, want 15/100/true", d, span, ok)
	}
	// Clock steps backwards past two retained snapshots: they are
	// dropped so timestamps stay strictly increasing.
	push(r, 150, 40)
	if r.Len() != 2 {
		t.Fatalf("Len=%d after regression to 150, want 2 (100 and 150)", r.Len())
	}
	d, span, ok = delta1(t, r, 50)
	if !ok || d != 30 || span != 50 {
		t.Fatalf("after regression: d=%d span=%d ok=%v, want 30/50/true", d, span, ok)
	}
	// The ring keeps working normally afterwards.
	push(r, 250, 45)
	d, span, ok = delta1(t, r, 100)
	if !ok || d != 5 || span != 100 {
		t.Fatalf("post-regression push: d=%d span=%d ok=%v, want 5/100/true", d, span, ok)
	}
}

func TestSnapRingCounterResetClamps(t *testing.T) {
	r := NewSnapRing(8, 1)
	push(r, 10, 100)
	push(r, 20, 3) // counter reset: cumulative value went backwards
	d, _, ok := delta1(t, r, 100)
	if !ok || d != 0 {
		t.Fatalf("reset delta: d=%d ok=%v, want 0/true (clamped)", d, ok)
	}
}

func TestSnapRingZeroTraffic(t *testing.T) {
	r := NewSnapRing(8, 2)
	for i := int64(0); i < 5; i++ {
		r.Push(i*10, []uint64{7, 7}) // counters frozen: no traffic at all
	}
	dst := make([]uint64, 2)
	span, ok := r.Delta(20, dst)
	if !ok || dst[0] != 0 || dst[1] != 0 || span != 20 {
		t.Fatalf("zero traffic: dst=%v span=%d ok=%v, want [0 0]/20/true", dst, span, ok)
	}
}

func TestSnapRingWidth(t *testing.T) {
	r := NewSnapRing(4, 3)
	if r.Width() != 3 {
		t.Fatalf("Width=%d, want 3", r.Width())
	}
	r.Push(1, []uint64{1, 2, 3})
	r.Push(2, []uint64{4, 6, 3})
	dst := make([]uint64, 3)
	span, ok := r.Delta(10, dst)
	if !ok || span != 1 || dst[0] != 3 || dst[1] != 4 || dst[2] != 0 {
		t.Fatalf("got dst=%v span=%d ok=%v", dst, span, ok)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("width-mismatched Push did not panic")
		}
	}()
	r.Push(3, []uint64{1})
}

func TestSnapRingMinCapacity(t *testing.T) {
	r := NewSnapRing(0, 1) // raised to 2: a delta needs two snapshots
	push(r, 1, 1)
	push(r, 2, 5)
	push(r, 3, 9)
	d, span, ok := delta1(t, r, 100)
	if !ok || d != 4 || span != 1 {
		t.Fatalf("capacity-2 ring: d=%d span=%d ok=%v, want 4/1/true", d, span, ok)
	}
}
