// Package stats provides the small statistical toolkit used by the
// experiment harness: summaries (mean, stddev, percentiles), histograms and
// fixed-width text tables.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Summary describes a sample of float64 observations.
type Summary struct {
	N             int
	Mean, Std     float64
	Min, Max      float64
	P25, P50, P75 float64
	P95           float64
}

// Summarize computes a Summary. An empty sample yields the zero Summary.
func Summarize(xs []float64) Summary {
	var s Summary
	s.N = len(xs)
	if s.N == 0 {
		return s
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.Min, s.Max = sorted[0], sorted[s.N-1]
	var sum float64
	for _, x := range sorted {
		sum += x
	}
	s.Mean = sum / float64(s.N)
	var ss float64
	for _, x := range sorted {
		d := x - s.Mean
		ss += d * d
	}
	if s.N > 1 {
		s.Std = math.Sqrt(ss / float64(s.N-1))
	}
	s.P25 = Percentile(sorted, 25)
	s.P50 = Percentile(sorted, 50)
	s.P75 = Percentile(sorted, 75)
	s.P95 = Percentile(sorted, 95)
	return s
}

// Percentile returns the p-th percentile (0..100) of an ascending-sorted
// sample using linear interpolation. It panics on an empty sample or an
// out-of-range p.
func Percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		panic("stats: percentile of empty sample")
	}
	if p < 0 || p > 100 {
		panic("stats: percentile out of range")
	}
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Mean returns the arithmetic mean (0 for an empty sample).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// MaxFloat returns the maximum (negative infinity for an empty sample).
func MaxFloat(xs []float64) float64 {
	max := math.Inf(-1)
	for _, x := range xs {
		if x > max {
			max = x
		}
	}
	return max
}

// Histogram bins the sample into nBins equal-width bins over [min, max].
type Histogram struct {
	Lo, Hi float64
	Counts []int
}

// NewHistogram builds a histogram. Values outside [lo, hi] clamp to the
// boundary bins.
func NewHistogram(xs []float64, lo, hi float64, nBins int) *Histogram {
	if nBins < 1 || hi <= lo {
		panic("stats: invalid histogram shape")
	}
	h := &Histogram{Lo: lo, Hi: hi, Counts: make([]int, nBins)}
	for _, x := range xs {
		b := int((x - lo) / (hi - lo) * float64(nBins))
		if b < 0 {
			b = 0
		}
		if b >= nBins {
			b = nBins - 1
		}
		h.Counts[b]++
	}
	return h
}

// Render draws the histogram with unicode block bars, one bin per line.
func (h *Histogram) Render(width int) string {
	if width < 1 {
		width = 40
	}
	max := 0
	for _, c := range h.Counts {
		if c > max {
			max = c
		}
	}
	var b strings.Builder
	binW := (h.Hi - h.Lo) / float64(len(h.Counts))
	for i, c := range h.Counts {
		bar := 0
		if max > 0 {
			bar = c * width / max
		}
		fmt.Fprintf(&b, "%10.3f..%-10.3f |%s %d\n",
			h.Lo+float64(i)*binW, h.Lo+float64(i+1)*binW,
			strings.Repeat("█", bar), c)
	}
	return b.String()
}

// Table formats rows as a fixed-width text table with a header.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends a row; values are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.rows = append(t.rows, row)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (no quoting; intended
// for numeric experiment output).
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.header, ","))
	b.WriteString("\n")
	for _, r := range t.rows {
		b.WriteString(strings.Join(r, ","))
		b.WriteString("\n")
	}
	return b.String()
}
