package stats

// SnapRing is a fixed-capacity ring of timestamped snapshots of a
// cumulative counter vector — the windowed-aggregation primitive under
// internal/slo. A producer (one goroutine; the ring is unsynchronized)
// pushes a snapshot of its counters every period; the difference between
// two snapshots is then the exact event counts for the span between
// them, with no cooperation from the counter writers. That is what
// makes windows scrape-safe here: the live counters stay lock-free
// atomics bumped by the shard loops, and "the last 5 minutes" is pure
// arithmetic over copies.
//
// The vector layout is the caller's business — slo packs objective
// counters and histogram buckets side by side — the ring only requires
// every Push to use the same width.
type SnapRing struct {
	slots []ringSnap
	width int
	n     int // valid entries
	head  int // index of the newest entry, meaningful when n > 0
}

type ringSnap struct {
	at  int64
	vec []uint64
}

// NewSnapRing builds a ring of the given capacity (snapshots retained)
// and vector width. Capacity below 2 is raised to 2 — a single retained
// snapshot can never answer a window.
func NewSnapRing(capacity, width int) *SnapRing {
	if capacity < 2 {
		capacity = 2
	}
	if width < 0 {
		width = 0
	}
	r := &SnapRing{slots: make([]ringSnap, capacity), width: width}
	for i := range r.slots {
		r.slots[i].vec = make([]uint64, width)
	}
	return r
}

// Width returns the vector width every Push must match.
func (r *SnapRing) Width() int { return r.width }

// Len returns the number of retained snapshots.
func (r *SnapRing) Len() int { return r.n }

// Push records a snapshot of the cumulative vector taken at time at
// (any monotone unit — the slo engine uses nanoseconds). The vector is
// copied; the caller may reuse it. A timestamp that does not advance
// past the newest retained snapshot — a duplicate tick or a clock that
// stepped backwards — overwrites the newest slot in place instead of
// appending, so the ring's timestamps stay strictly increasing and a
// misbehaving clock degrades window resolution rather than corrupting
// deltas. Push panics if len(vec) differs from the ring width.
func (r *SnapRing) Push(at int64, vec []uint64) {
	if len(vec) != r.width {
		panic("stats: SnapRing.Push vector width mismatch")
	}
	if r.n > 0 && at <= r.slots[r.head].at {
		copy(r.slots[r.head].vec, vec)
		if at < r.slots[r.head].at {
			r.slots[r.head].at = at
			r.trimAfterRegression(at)
		}
		return
	}
	r.head = (r.head + 1) % len(r.slots)
	r.slots[r.head].at = at
	copy(r.slots[r.head].vec, vec)
	if r.n < len(r.slots) {
		r.n++
	}
}

// trimAfterRegression drops retained snapshots whose timestamps are no
// longer older than the (rewritten) newest one, restoring the strictly
// increasing invariant after a backwards clock step.
func (r *SnapRing) trimAfterRegression(at int64) {
	for r.n > 1 {
		prev := (r.head - 1 + len(r.slots)) % len(r.slots)
		if r.slots[prev].at < at {
			return
		}
		// prev is no older than the rewritten newest: drop it by swapping
		// the newest into its slot (a swap, so every slot keeps owning a
		// distinct backing vector).
		r.slots[prev], r.slots[r.head] = r.slots[r.head], r.slots[prev]
		r.head = prev
		r.n--
	}
}

// Delta writes into dst the per-element counter increments over
// (approximately) the trailing window: newest snapshot minus the
// youngest retained snapshot at least window old relative to the newest.
// When no retained snapshot is that old — the process is young, or the
// window is shorter than the snapshot period — the oldest available
// snapshot anchors the delta instead, and the returned span (the actual
// timestamp distance covered, in Push's units) tells the caller how
// much history the numbers really cover; ratio-based consumers like
// burn rates stay meaningful over a partial window. Elements that went
// backwards between the two snapshots (a counter reset) clamp to 0.
//
// Delta reports ok=false — leaving dst untouched — while fewer than two
// snapshots are retained: an empty window is "no data", never zeros
// masquerading as a quiet period.
func (r *SnapRing) Delta(window int64, dst []uint64) (span int64, ok bool) {
	if len(dst) != r.width {
		panic("stats: SnapRing.Delta vector width mismatch")
	}
	if r.n < 2 {
		return 0, false
	}
	newest := &r.slots[r.head]
	cutoff := newest.at - window
	// Walk backwards from the second-newest: the first snapshot at or
	// past the cutoff wins; the oldest retained is the fallback.
	anchor := (r.head - 1 + len(r.slots)) % len(r.slots)
	for i := 1; i < r.n; i++ {
		idx := (r.head - i + len(r.slots)) % len(r.slots)
		anchor = idx
		if r.slots[idx].at <= cutoff {
			break
		}
	}
	old := &r.slots[anchor]
	for i := range dst {
		nv, ov := newest.vec[i], old.vec[i]
		if nv < ov {
			dst[i] = 0
			continue
		}
		dst[i] = nv - ov
	}
	return newest.at - old.at, true
}
