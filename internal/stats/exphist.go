package stats

import (
	"math"
	"math/bits"
)

// ExpBuckets is the number of buckets in an exponential histogram: one
// bucket per possible bit length of a non-negative int64 sample (0..64).
const ExpBuckets = 65

// ExpHist is a fixed-size exponential histogram over non-negative int64
// samples: bucket b collects values whose bit length is b, so bucket 0 is
// exactly the value 0 and bucket b covers [2^(b−1), 2^b). Updates and
// quantile reads are O(1) in the sample count (a quantile scans the 65
// buckets once), and the memory footprint is constant — the right shape
// for an instrument living inside a hot single-writer loop. A quantile
// answer is the upper bound of the bucket holding the ranked sample: at
// least the true quantile and less than twice it.
//
// The zero value is an empty histogram ready for use. ExpHist is not
// synchronized; obs.Histogram is the multi-writer atomic variant built on
// the same bucket geometry.
type ExpHist struct {
	total   uint64
	buckets [ExpBuckets]uint64
}

// Add records one sample. Negative samples clamp to zero — every caller
// in the tree records durations or slacks that are non-negative by
// construction, and clamping keeps a stray negative from landing in the
// overflow bucket via two's-complement bit length.
func (h *ExpHist) Add(v int64) {
	if v < 0 {
		v = 0
	}
	h.buckets[bits.Len64(uint64(v))]++
	h.total++
}

// N returns the number of recorded samples.
func (h *ExpHist) N() uint64 { return h.total }

// Quantile returns the upper bound of the bucket holding the q-quantile
// sample (0 < q ≤ 1), or 0 when the histogram is empty. The rank is
// ceil(q·N), so Quantile(1) is an upper bound on the maximum and
// successive quantiles are monotone: q ≤ q' implies Quantile(q) ≤
// Quantile(q').
func (h *ExpHist) Quantile(q float64) int64 {
	if h.total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(h.total)))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for b, n := range h.buckets {
		cum += n
		if cum >= rank {
			return ExpBucketUpper(b)
		}
	}
	return ExpBucketUpper(ExpBuckets - 1)
}

// Merge adds every bucket of o into h. Neither histogram is synchronized;
// the caller owns both.
func (h *ExpHist) Merge(o *ExpHist) {
	for b, n := range o.buckets {
		h.buckets[b] += n
	}
	h.total += o.total
}

// ExpBucketOf returns the bucket index a sample lands in (negative
// samples clamp to bucket 0).
func ExpBucketOf(v int64) int {
	if v < 0 {
		return 0
	}
	return bits.Len64(uint64(v))
}

// ExpBucketUpper is the largest value bucket b admits: 0 for bucket 0,
// 2^b − 1 in general, and MaxInt64 for the top buckets whose bound does
// not fit a signed 64-bit value.
func ExpBucketUpper(b int) int64 {
	switch {
	case b <= 0:
		return 0
	case b >= 63:
		return math.MaxInt64
	default:
		return int64(1)<<b - 1
	}
}

// ExpQuantileFromBuckets answers a quantile over a raw bucket snapshot
// (e.g. one copied out of atomic counters) without constructing an
// ExpHist. Semantics match ExpHist.Quantile.
func ExpQuantileFromBuckets(buckets *[ExpBuckets]uint64, total uint64, q float64) int64 {
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(total)))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for b, n := range buckets {
		cum += n
		if cum >= rank {
			return ExpBucketUpper(b)
		}
	}
	return ExpBucketUpper(ExpBuckets - 1)
}
