package stats

import (
	"math"
	"strings"
	"testing"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.P50 != 3 {
		t.Fatalf("summary = %+v", s)
	}
	if math.Abs(s.Std-math.Sqrt(2.5)) > 1e-9 {
		t.Fatalf("std = %v", s.Std)
	}
}

func TestSummarizeEmptyAndSingle(t *testing.T) {
	if s := Summarize(nil); s.N != 0 {
		t.Fatal("empty summary wrong")
	}
	s := Summarize([]float64{7})
	if s.N != 1 || s.Mean != 7 || s.Std != 0 || s.P95 != 7 {
		t.Fatalf("single summary = %+v", s)
	}
}

func TestSummarizeDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Summarize(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatal("Summarize sorted the caller's slice")
	}
}

func TestPercentile(t *testing.T) {
	sorted := []float64{10, 20, 30, 40}
	cases := []struct {
		p    float64
		want float64
	}{{0, 10}, {100, 40}, {50, 25}, {25, 17.5}}
	for _, c := range cases {
		if got := Percentile(sorted, c.p); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("P%v = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestPercentilePanics(t *testing.T) {
	for _, f := range []func(){
		func() { Percentile(nil, 50) },
		func() { Percentile([]float64{1}, -1) },
		func() { Percentile([]float64{1}, 101) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestMeanAndMax(t *testing.T) {
	if Mean([]float64{2, 4}) != 3 || Mean(nil) != 0 {
		t.Fatal("Mean wrong")
	}
	if MaxFloat([]float64{1, 9, 3}) != 9 {
		t.Fatal("MaxFloat wrong")
	}
	if !math.IsInf(MaxFloat(nil), -1) {
		t.Fatal("MaxFloat(nil) should be -inf")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram([]float64{0.1, 0.2, 0.9, 1.5, -3}, 0, 1, 2)
	// -3 clamps into bin 0; 1.5 into bin 1.
	if h.Counts[0] != 3 || h.Counts[1] != 2 {
		t.Fatalf("counts = %v", h.Counts)
	}
	out := h.Render(20)
	if !strings.Contains(out, "█") || !strings.Contains(out, "3") {
		t.Fatalf("render:\n%s", out)
	}
}

func TestHistogramPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewHistogram(nil, 1, 0, 3)
}

func TestTable(t *testing.T) {
	tb := NewTable("alg", "ratio")
	tb.AddRow("lsrc", 1.6667)
	tb.AddRow("fcfs", 3)
	out := tb.String()
	if !strings.Contains(out, "alg") || !strings.Contains(out, "1.667") {
		t.Fatalf("table:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 { // header, separator, two rows
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	csv := tb.CSV()
	if !strings.HasPrefix(csv, "alg,ratio\n") || !strings.Contains(csv, "fcfs,3") {
		t.Fatalf("csv:\n%s", csv)
	}
}
