package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// TestExpHistEmpty: every quantile of an empty histogram is 0, and N is 0.
func TestExpHistEmpty(t *testing.T) {
	var h ExpHist
	if h.N() != 0 {
		t.Fatalf("empty N = %d", h.N())
	}
	for _, q := range []float64{0, 0.5, 0.9, 0.99, 1} {
		if got := h.Quantile(q); got != 0 {
			t.Errorf("empty Quantile(%v) = %d, want 0", q, got)
		}
	}
}

// TestExpHistSingleSample: with one sample every quantile answers that
// sample's bucket upper bound.
func TestExpHistSingleSample(t *testing.T) {
	for _, v := range []int64{0, 1, 5, 1000, math.MaxInt64} {
		var h ExpHist
		h.Add(v)
		want := ExpBucketUpper(ExpBucketOf(v))
		for _, q := range []float64{0.01, 0.5, 0.99, 1} {
			got := h.Quantile(q)
			if got != want {
				t.Errorf("single sample %d: Quantile(%v) = %d, want %d", v, q, got, want)
			}
			if got < v && v != math.MaxInt64 {
				t.Errorf("single sample %d: Quantile(%v) = %d below the sample", v, q, got)
			}
		}
	}
}

// TestExpHistQuantileMonotone: under random fill, p50 ≤ p90 ≤ p99 ≤ p100,
// and each quantile is at least the true order statistic and less than
// twice it (the bucket-upper-bound guarantee).
func TestExpHistQuantileMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		var h ExpHist
		n := 1 + rng.Intn(5000)
		samples := make([]int64, n)
		for i := range samples {
			// Mix magnitudes so many buckets populate.
			v := int64(rng.Intn(1 << uint(1+rng.Intn(40))))
			samples[i] = v
			h.Add(v)
		}
		p50, p90, p99, p100 := h.Quantile(0.50), h.Quantile(0.90), h.Quantile(0.99), h.Quantile(1)
		if !(p50 <= p90 && p90 <= p99 && p99 <= p100) {
			t.Fatalf("trial %d: quantiles not monotone: p50=%d p90=%d p99=%d p100=%d", trial, p50, p90, p99, p100)
		}
		// Compare against exact order statistics at ceil-rank.
		sorted := append([]int64(nil), samples...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		for _, c := range []struct {
			q   float64
			got int64
		}{{0.50, p50}, {0.90, p90}, {0.99, p99}, {1, p100}} {
			rank := int(math.Ceil(c.q * float64(n)))
			if rank < 1 {
				rank = 1
			}
			exact := sorted[rank-1]
			if c.got < exact {
				t.Fatalf("trial %d: Quantile(%v) = %d below exact %d", trial, c.q, c.got, exact)
			}
			if exact > 0 && c.got >= 2*exact {
				t.Fatalf("trial %d: Quantile(%v) = %d not < 2×exact %d", trial, c.q, c.got, exact)
			}
			if exact == 0 && c.got != 0 {
				t.Fatalf("trial %d: Quantile(%v) = %d, want 0 for exact 0", trial, c.q, c.got)
			}
		}
	}
}

// TestExpHistBucketMath pins the bucket geometry the quantile guarantee
// rests on.
func TestExpHistBucketMath(t *testing.T) {
	cases := []struct {
		v      int64
		bucket int
		upper  int64
	}{
		{0, 0, 0},
		{1, 1, 1},
		{2, 2, 3},
		{3, 2, 3},
		{4, 3, 7},
		{1023, 10, 1023},
		{1024, 11, 2047},
		{-5, 0, 0},
		{math.MaxInt64, 63, math.MaxInt64},
	}
	for _, c := range cases {
		if got := ExpBucketOf(c.v); got != c.bucket {
			t.Errorf("ExpBucketOf(%d) = %d, want %d", c.v, got, c.bucket)
		}
		if got := ExpBucketUpper(c.bucket); got != c.upper {
			t.Errorf("ExpBucketUpper(%d) = %d, want %d", c.bucket, got, c.upper)
		}
	}
	if ExpBucketUpper(64) != math.MaxInt64 {
		t.Error("top bucket upper bound must saturate at MaxInt64")
	}
}

// TestExpHistMergeAndSnapshot: Merge sums bucket-wise, and the
// bucket-snapshot quantile path agrees with the owning histogram.
func TestExpHistMergeAndSnapshot(t *testing.T) {
	var a, b, m ExpHist
	for i := int64(0); i < 100; i++ {
		a.Add(i)
		m.Add(i)
	}
	for i := int64(1000); i < 1100; i++ {
		b.Add(i)
		m.Add(i)
	}
	a.Merge(&b)
	if a.N() != m.N() {
		t.Fatalf("merged N = %d, want %d", a.N(), m.N())
	}
	for _, q := range []float64{0.5, 0.9, 0.99} {
		if a.Quantile(q) != m.Quantile(q) {
			t.Errorf("merged Quantile(%v) = %d, combined = %d", q, a.Quantile(q), m.Quantile(q))
		}
		if got := ExpQuantileFromBuckets(&m.buckets, m.total, q); got != m.Quantile(q) {
			t.Errorf("snapshot Quantile(%v) = %d, direct = %d", q, got, m.Quantile(q))
		}
	}
}
