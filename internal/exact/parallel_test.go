package exact

import (
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/rng"
	"repro/internal/verify"
)

func TestParallelMatchesSequential(t *testing.T) {
	r := rng.New(181818)
	for trial := 0; trial < 60; trial++ {
		m := r.IntRange(2, 5)
		inst := &core.Instance{M: m}
		n := r.IntRange(2, 7)
		for i := 0; i < n; i++ {
			inst.Jobs = append(inst.Jobs, core.Job{
				ID: i, Procs: r.IntRange(1, m), Len: core.Time(r.IntRange(1, 7)),
			})
		}
		if r.Bool(0.5) {
			inst.Res = append(inst.Res, core.Reservation{
				ID: 0, Procs: r.IntRange(1, m), Start: core.Time(r.Intn(8)),
				Len: core.Time(r.IntRange(1, 6)),
			})
		}
		seq, err := Solve(inst)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		par, err := (&ParallelSolver{Workers: 4}).Solve(inst)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !par.Optimal || par.Cmax != seq.Cmax {
			t.Fatalf("trial %d: parallel %v (optimal=%v) vs sequential %v\ninstance: %+v",
				trial, par.Cmax, par.Optimal, seq.Cmax, inst)
		}
		if err := verify.Verify(par.Schedule); err != nil {
			t.Fatalf("trial %d: parallel schedule infeasible: %v", trial, err)
		}
	}
}

func TestParallelDeterministicOptimum(t *testing.T) {
	// The schedule found may differ between runs (race on equal optima)
	// but the optimal VALUE must be stable.
	r := rng.New(191919)
	inst := &core.Instance{M: 4}
	for i := 0; i < 9; i++ {
		inst.Jobs = append(inst.Jobs, core.Job{
			ID: i, Procs: r.IntRange(1, 4), Len: core.Time(r.IntRange(1, 8)),
		})
	}
	first, err := (&ParallelSolver{}).Solve(inst)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 5; k++ {
		again, err := (&ParallelSolver{Workers: 8}).Solve(inst)
		if err != nil {
			t.Fatal(err)
		}
		if again.Cmax != first.Cmax {
			t.Fatalf("run %d: optimum %v != %v", k, again.Cmax, first.Cmax)
		}
	}
}

func TestParallelTrivialCases(t *testing.T) {
	res, err := (&ParallelSolver{}).Solve(&core.Instance{M: 3})
	if err != nil || res.Cmax != 0 || !res.Optimal {
		t.Fatalf("empty: %+v %v", res, err)
	}
	if _, err := (&ParallelSolver{}).Solve(&core.Instance{M: 0}); err == nil {
		t.Fatal("invalid instance accepted")
	}
}

func TestParallelBudget(t *testing.T) {
	r := rng.New(202020)
	inst := &core.Instance{M: 5}
	for i := 0; i < 12; i++ {
		inst.Jobs = append(inst.Jobs, core.Job{
			ID: i, Procs: r.IntRange(1, 5), Len: core.Time(100 + r.Intn(900)),
		})
	}
	res, err := (&ParallelSolver{MaxNodes: 100, Workers: 4}).Solve(inst)
	if err != nil && !errors.Is(err, ErrBudget) {
		t.Fatalf("unexpected error: %v", err)
	}
	if res == nil || res.Schedule == nil {
		t.Fatal("no result under budget exhaustion")
	}
	if err := verify.Verify(res.Schedule); err != nil {
		t.Fatalf("budget result infeasible: %v", err)
	}
}

func BenchmarkExactParallelVsSequential(b *testing.B) {
	r := rng.New(3) // the hard seed from the ablation bench
	inst := &core.Instance{M: 4}
	for i := 0; i < 10; i++ {
		inst.Jobs = append(inst.Jobs, core.Job{
			ID: i, Procs: r.IntRange(1, 4), Len: core.Time(r.IntRange(1, 7)),
		})
	}
	inst.Res = []core.Reservation{{ID: 0, Procs: 2, Start: 4, Len: 6}}
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := Solve(inst); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := (&ParallelSolver{}).Solve(inst); err != nil {
				b.Fatal(err)
			}
		}
	})
}
