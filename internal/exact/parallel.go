package exact

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/lower"
	"repro/internal/profile"
	"repro/internal/sched"
)

// ParallelSolver runs the same branch-and-bound as Solver but fans the
// first branching level out across worker goroutines. Each first-level
// subtree (one per job class) is an independent search sharing only the
// incumbent, which workers read optimistically (atomic) and update under a
// mutex. The returned optimum is identical to the sequential solver's; node
// counts vary slightly with scheduling because a better incumbent found in
// one subtree prunes the others earlier.
type ParallelSolver struct {
	// MaxNodes caps the *total* node count across workers; 0 means
	// DefaultMaxNodes.
	MaxNodes int64
	// Workers bounds the goroutine count; 0 means GOMAXPROCS.
	Workers int
}

// sharedBest is the incumbent shared across workers.
type sharedBest struct {
	mu    sync.Mutex
	cmax  atomic.Int64
	start []core.Time
}

// offer installs a new incumbent if it improves on the current one.
func (sb *sharedBest) offer(cmax core.Time, starts []core.Time) {
	sb.mu.Lock()
	defer sb.mu.Unlock()
	if int64(cmax) < sb.cmax.Load() {
		sb.cmax.Store(int64(cmax))
		copy(sb.start, starts)
	}
}

// Solve finds the optimal makespan (subject to the shared node budget).
func (ps *ParallelSolver) Solve(inst *core.Instance) (*Result, error) {
	if err := inst.Validate(); err != nil {
		return nil, fmt.Errorf("exact: %w", err)
	}
	maxNodes := ps.MaxNodes
	if maxNodes <= 0 {
		maxNodes = DefaultMaxNodes
	}
	workers := ps.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	// Incumbent from heuristics (same portfolio as the sequential solver).
	var bestS *core.Schedule
	for _, s := range []sched.Scheduler{
		sched.NewLSRC(sched.FIFO), sched.NewLSRC(sched.LPT),
		sched.NewLSRC(sched.WidestFirst), sched.Conservative{},
	} {
		cand, err := s.Schedule(inst)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrUnschedulable, err)
		}
		if bestS == nil || cand.Makespan() < bestS.Makespan() {
			bestS = cand
		}
	}
	res := &Result{Schedule: bestS, Cmax: bestS.Makespan(), Optimal: true}
	if lower.Best(inst) >= res.Cmax || len(inst.Jobs) == 0 {
		return res, nil
	}

	shared := &sharedBest{start: append([]core.Time(nil), bestS.Start...)}
	shared.cmax.Store(int64(bestS.Makespan()))
	classes := classify(inst, false)
	var totalNodes atomic.Int64
	var exhausted atomic.Bool

	// One task per first-level class choice.
	type task struct{ classIdx int }
	tasks := make(chan task)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for tk := range tasks {
				st := &parState{
					bbState: bbState{
						inst:     inst,
						tl:       profile.MustFromReservations(inst.M, inst.Res),
						starts:   make([]core.Time, len(inst.Jobs)),
						remWork:  inst.TotalWork(),
						maxNodes: maxNodes,
					},
					shared:     shared,
					totalNodes: &totalNodes,
					exhausted:  &exhausted,
				}
				for i := range st.starts {
					st.starts[i] = core.Unscheduled
				}
				// Each worker owns a private copy of the class table.
				st.classes = make([]jobClass, len(classes))
				copy(st.classes, classes)
				for i := range st.classes {
					st.classes[i].idxs = classes[i].idxs // read-only
					st.classes[i].left = len(classes[i].idxs)
				}
				st.descendInto(tk.classIdx)
			}
		}()
	}
	for ci := range classes {
		tasks <- task{classIdx: ci}
	}
	close(tasks)
	wg.Wait()

	s := core.NewSchedule(inst)
	s.Algorithm = "exact-bb-par"
	copy(s.Start, shared.start)
	res.Schedule = s
	res.Cmax = core.Time(shared.cmax.Load())
	res.Nodes = totalNodes.Load()
	res.Optimal = !exhausted.Load()
	if !res.Optimal {
		return res, ErrBudget
	}
	return res, nil
}

// parState extends bbState with the shared incumbent plumbing.
type parState struct {
	bbState
	shared     *sharedBest
	totalNodes *atomic.Int64
	exhausted  *atomic.Bool
}

// descendInto commits the first-level choice ci and explores its subtree.
func (st *parState) descendInto(ci int) {
	c := &st.classes[ci]
	s, ok := st.tl.FindSlot(0, c.procs, c.len)
	if !ok {
		return
	}
	end := s + c.len
	if int64(end) >= st.shared.cmax.Load() {
		return
	}
	idx := c.idxs[len(c.idxs)-c.left]
	if err := st.tl.Commit(s, c.len, c.procs); err != nil {
		panic(fmt.Sprintf("exact: parallel commit: %v", err))
	}
	c.left--
	st.starts[idx] = s
	st.remWork -= int64(c.procs) * int64(c.len)
	st.partCmax = end
	st.pdfs()
}

// pdfs mirrors bbState.dfs with the shared incumbent.
func (st *parState) pdfs() {
	if st.exhausted.Load() {
		return
	}
	if st.totalNodes.Add(1) > st.maxNodes {
		st.exhausted.Store(true)
		return
	}
	best := core.Time(st.shared.cmax.Load())
	if st.remWork == 0 {
		if st.partCmax < best {
			st.shared.offer(st.partCmax, st.starts)
		}
		return
	}
	st.bestCmax = best // nodeLB compares against the snapshot
	if st.nodeLB() >= best {
		return
	}
	for ci := range st.classes {
		c := &st.classes[ci]
		if c.left == 0 {
			continue
		}
		s, ok := st.tl.FindSlot(0, c.procs, c.len)
		if !ok {
			continue
		}
		end := s + c.len
		if int64(end) >= st.shared.cmax.Load() {
			continue
		}
		idx := c.idxs[len(c.idxs)-c.left]
		if err := st.tl.Commit(s, c.len, c.procs); err != nil {
			panic(fmt.Sprintf("exact: parallel commit: %v", err))
		}
		c.left--
		st.starts[idx] = s
		st.remWork -= int64(c.procs) * int64(c.len)
		prevCmax := st.partCmax
		if end > st.partCmax {
			st.partCmax = end
		}

		st.pdfs()

		st.partCmax = prevCmax
		st.remWork += int64(c.procs) * int64(c.len)
		st.starts[idx] = core.Unscheduled
		c.left++
		if err := st.tl.Release(s, c.len, c.procs); err != nil {
			panic(fmt.Sprintf("exact: parallel release: %v", err))
		}
		if st.exhausted.Load() {
			return
		}
	}
}
