package exact

import (
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/rng"
	"repro/internal/verify"
)

// bruteForce enumerates all start-time combinations on the integer grid
// [0, horizon] and returns the optimal makespan. Exponential; only for
// cross-checking tiny instances.
func bruteForce(inst *core.Instance, horizon core.Time) core.Time {
	n := len(inst.Jobs)
	starts := make([]core.Time, n)
	best := core.Infinity
	u := inst.Unavailability()
	var rec func(i int)
	rec = func(i int) {
		if i == n {
			var cmax core.Time
			for k, s := range starts {
				if e := s + inst.Jobs[k].Len; e > cmax {
					cmax = e
				}
			}
			// Feasibility via per-tick usage.
			for t := core.Time(0); t < cmax; t++ {
				use := u.At(t)
				for k, s := range starts {
					if s <= t && t < s+inst.Jobs[k].Len {
						use += inst.Jobs[k].Procs
					}
				}
				if use > inst.M {
					return
				}
			}
			if cmax < best {
				best = cmax
			}
			return
		}
		for s := core.Time(0); s <= horizon; s++ {
			starts[i] = s
			rec(i + 1)
		}
	}
	rec(0)
	return best
}

func TestSolveTrivial(t *testing.T) {
	inst := &core.Instance{M: 2, Jobs: []core.Job{{ID: 0, Procs: 1, Len: 5}}}
	res, err := Solve(inst)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cmax != 5 || !res.Optimal {
		t.Fatalf("Cmax = %v optimal=%v", res.Cmax, res.Optimal)
	}
	if err := verify.Verify(res.Schedule); err != nil {
		t.Fatal(err)
	}
}

func TestSolveEmpty(t *testing.T) {
	res, err := Solve(&core.Instance{M: 3})
	if err != nil || res.Cmax != 0 || !res.Optimal {
		t.Fatalf("empty solve: %+v, %v", res, err)
	}
}

func TestSolveProp2K3Optimum(t *testing.T) {
	// The k=3 Proposition 2 instance (see sched tests): optimal makespan 3
	// (scaled): big tasks at 0 beside one small; smalls chain on the same
	// processors.
	inst := &core.Instance{
		M: 18,
		Jobs: []core.Job{
			{ID: 0, Procs: 4, Len: 1},
			{ID: 1, Procs: 4, Len: 1},
			{ID: 2, Procs: 4, Len: 1},
			{ID: 3, Procs: 7, Len: 3},
			{ID: 4, Procs: 7, Len: 3},
		},
		Res: []core.Reservation{{ID: 0, Procs: 6, Start: 3, Len: 18}},
	}
	res, err := Solve(inst)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Optimal || res.Cmax != 3 {
		t.Fatalf("Cmax = %v optimal=%v, want 3", res.Cmax, res.Optimal)
	}
	if err := verify.Verify(res.Schedule); err != nil {
		t.Fatal(err)
	}
}

func TestSolveMatchesBruteForce(t *testing.T) {
	r := rng.New(60601)
	for trial := 0; trial < 60; trial++ {
		m := r.IntRange(1, 4)
		inst := &core.Instance{M: m}
		n := r.IntRange(1, 4)
		for i := 0; i < n; i++ {
			inst.Jobs = append(inst.Jobs, core.Job{
				ID: i, Procs: r.IntRange(1, m), Len: core.Time(r.IntRange(1, 4)),
			})
		}
		if r.Bool(0.6) {
			inst.Res = append(inst.Res, core.Reservation{
				ID: 0, Procs: r.IntRange(1, m), Start: core.Time(r.Intn(5)),
				Len: core.Time(r.IntRange(1, 4)),
			})
		}
		res, err := Solve(inst)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		want := bruteForce(inst, 20)
		if res.Cmax != want {
			t.Fatalf("trial %d: Solve=%v bruteForce=%v\ninstance: %+v",
				trial, res.Cmax, want, inst)
		}
		if err := verify.Verify(res.Schedule); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestSolveBudgetExhaustion(t *testing.T) {
	// Many distinct jobs with a tiny budget: must return ErrBudget and an
	// upper bound at least as good as the heuristics.
	inst := &core.Instance{M: 5}
	r := rng.New(3)
	for i := 0; i < 12; i++ {
		inst.Jobs = append(inst.Jobs, core.Job{
			ID: i, Procs: r.IntRange(1, 5), Len: core.Time(100 + r.Intn(900)),
		})
	}
	res, err := (&Solver{MaxNodes: 50}).Solve(inst)
	if !errors.Is(err, ErrBudget) {
		// A budget of 50 nodes cannot close a 12-distinct-job search
		// unless bounds prove optimality immediately; accept both but
		// require a valid schedule.
		if err != nil {
			t.Fatalf("unexpected error: %v", err)
		}
	}
	if res.Schedule == nil || verify.Verify(res.Schedule) != nil {
		t.Fatal("budget-exhausted result must still be feasible")
	}
}

func TestSolveInvalidInstance(t *testing.T) {
	if _, err := Solve(&core.Instance{M: 0}); err == nil {
		t.Fatal("invalid instance accepted")
	}
}

func TestSolveM1Basic(t *testing.T) {
	// Jobs 3,2,2 around reservations cutting windows [0,3),[4,6),[7,+inf).
	inst := &core.Instance{
		M: 1,
		Jobs: []core.Job{
			{ID: 0, Procs: 1, Len: 3},
			{ID: 1, Procs: 1, Len: 2},
			{ID: 2, Procs: 1, Len: 2},
		},
		Res: []core.Reservation{
			{ID: 0, Procs: 1, Start: 3, Len: 1},
			{ID: 1, Procs: 1, Start: 6, Len: 1},
		},
	}
	res, err := SolveM1(inst)
	if err != nil {
		t.Fatal(err)
	}
	// 3 fills [0,3); one 2 fills [4,6); other 2 at [7,9).
	if res.Cmax != 9 {
		t.Fatalf("Cmax = %v, want 9", res.Cmax)
	}
	if err := verify.Verify(res.Schedule); err != nil {
		t.Fatal(err)
	}
}

func TestSolveM1OrderMatters(t *testing.T) {
	// Window [0,2) then blocked [2,3): the length-2 job must go first or
	// it cannot use the early window.
	inst := &core.Instance{
		M: 1,
		Jobs: []core.Job{
			{ID: 0, Procs: 1, Len: 1},
			{ID: 1, Procs: 1, Len: 2},
		},
		Res: []core.Reservation{{ID: 0, Procs: 1, Start: 2, Len: 1}},
	}
	res, err := SolveM1(inst)
	if err != nil {
		t.Fatal(err)
	}
	// Optimal: len-2 at [0,2), len-1 at [3,4) -> 4.
	if res.Cmax != 4 {
		t.Fatalf("Cmax = %v, want 4", res.Cmax)
	}
}

func TestSolveM1MatchesSolve(t *testing.T) {
	r := rng.New(808)
	for trial := 0; trial < 40; trial++ {
		inst := &core.Instance{M: 1}
		n := r.IntRange(1, 6)
		for i := 0; i < n; i++ {
			inst.Jobs = append(inst.Jobs, core.Job{ID: i, Procs: 1, Len: core.Time(r.IntRange(1, 5))})
		}
		for k := 0; k < r.IntRange(0, 2); k++ {
			inst.Res = append(inst.Res, core.Reservation{
				ID: k, Procs: 1, Start: core.Time(2 + r.Intn(10) + 12*k), Len: core.Time(r.IntRange(1, 3)),
			})
		}
		if inst.Validate() != nil {
			continue
		}
		dp, err := SolveM1(inst)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		bb, err := Solve(inst)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if dp.Cmax != bb.Cmax {
			t.Fatalf("trial %d: DP %v vs BB %v\ninstance: %+v", trial, dp.Cmax, bb.Cmax, inst)
		}
		if err := verify.Verify(dp.Schedule); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestSolveM1Limits(t *testing.T) {
	if _, err := SolveM1(&core.Instance{M: 2}); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("m=2 accepted: %v", err)
	}
	big := &core.Instance{M: 1}
	for i := 0; i < maxM1Jobs+1; i++ {
		big.Jobs = append(big.Jobs, core.Job{ID: i, Procs: 1, Len: 1})
	}
	if _, err := SolveM1(big); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversized accepted: %v", err)
	}
}

func TestSolveM1Unschedulable(t *testing.T) {
	inst := &core.Instance{
		M:    1,
		Jobs: []core.Job{{ID: 0, Procs: 1, Len: 5}},
		Res:  []core.Reservation{{ID: 0, Procs: 1, Start: 2, Len: core.Infinity}},
	}
	if _, err := SolveM1(inst); !errors.Is(err, ErrUnschedulable) {
		t.Fatalf("got %v", err)
	}
}

func TestSolveIdenticalJobsFast(t *testing.T) {
	// 16 identical jobs: the class collapse must make this instant
	// (a single chain, no branching).
	inst := &core.Instance{M: 4}
	for i := 0; i < 16; i++ {
		inst.Jobs = append(inst.Jobs, core.Job{ID: i, Procs: 2, Len: 3})
	}
	res, err := (&Solver{MaxNodes: 10_000}).Solve(inst)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Optimal || res.Cmax != 24 { // 2 per shelf, 8 shelves of 3
		t.Fatalf("Cmax = %v optimal=%v, want 24", res.Cmax, res.Optimal)
	}
}

func BenchmarkSolve8Jobs(b *testing.B) {
	r := rng.New(5150)
	inst := &core.Instance{M: 4}
	for i := 0; i < 8; i++ {
		inst.Jobs = append(inst.Jobs, core.Job{
			ID: i, Procs: r.IntRange(1, 4), Len: core.Time(r.IntRange(1, 9)),
		})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Solve(inst); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSolveM1_14Jobs(b *testing.B) {
	r := rng.New(6)
	inst := &core.Instance{M: 1}
	for i := 0; i < 14; i++ {
		inst.Jobs = append(inst.Jobs, core.Job{ID: i, Procs: 1, Len: core.Time(r.IntRange(1, 9))})
	}
	inst.Res = []core.Reservation{
		{ID: 0, Procs: 1, Start: 10, Len: 2},
		{ID: 1, Procs: 1, Start: 30, Len: 3},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SolveM1(inst); err != nil {
			b.Fatal(err)
		}
	}
}
