// Package exact computes optimal makespans for small RESASCHEDULING
// instances. It is the ground truth against which the experiments measure
// the performance ratios of the paper's algorithms.
//
// Two solvers are provided:
//
//   - Solve: a branch-and-bound over job permutations with
//     earliest-feasible placement (the "serial schedule generation scheme"
//     of the RCPSP literature). For any feasible schedule S, greedily
//     placing jobs in S's start-time order yields start times <= S's
//     (exchange argument: when job i is placed, every earlier job of the
//     order occupies, after time S.start(i), a subset of what it occupied
//     in S), so the scheme enumerated over all orders reaches an optimum.
//     Identical jobs are collapsed into classes and the search prunes with
//     availability-aware lower bounds.
//
//   - SolveM1: an exact O(2^n · n) dynamic program for single-machine
//     instances (the shape of the Theorem 1 reduction): the state is the
//     set of scheduled jobs, the value the earliest feasible completion
//     frontier, which is sufficient because later placements are monotone
//     in the frontier.
package exact

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/lower"
	"repro/internal/profile"
	"repro/internal/sched"
)

// Errors returned by the solvers.
var (
	// ErrBudget reports that the node budget was exhausted before the
	// search completed; the result is still a valid upper bound.
	ErrBudget = errors.New("exact: node budget exhausted")
	// ErrTooLarge reports an instance beyond hard solver limits.
	ErrTooLarge = errors.New("exact: instance too large for exact solver")
	// ErrUnschedulable reports that some job can never run.
	ErrUnschedulable = errors.New("exact: job can never be scheduled")
)

// Result is the outcome of an exact solve.
type Result struct {
	// Schedule is the best schedule found.
	Schedule *core.Schedule
	// Cmax is its makespan.
	Cmax core.Time
	// Optimal reports whether Cmax was proven optimal (search completed).
	Optimal bool
	// Nodes is the number of branch-and-bound nodes explored.
	Nodes int64
}

// Solver is a configurable branch-and-bound solver. The Disable* switches
// turn off individual pruning devices; they exist for the ablation
// benchmarks (BenchmarkExactAblation) that quantify what each device buys —
// results are identical with or without them, only node counts change.
type Solver struct {
	// MaxNodes caps the search; 0 means DefaultMaxNodes.
	MaxNodes int64
	// DisableClassCollapse branches on every job individually instead of
	// once per (procs, len) equivalence class.
	DisableClassCollapse bool
	// DisableAreaBound drops the remaining-work area bound from node
	// pruning (the per-class earliest-completion bound is kept).
	DisableAreaBound bool
	// DisableJobFitBound drops the per-class earliest-completion bound
	// from node pruning (the area bound is kept).
	DisableJobFitBound bool
}

// DefaultMaxNodes is the default node budget for Solve.
const DefaultMaxNodes = 2_000_000

// jobClass groups identical jobs: interchangeable jobs are branched once.
type jobClass struct {
	procs int
	len   core.Time
	idxs  []int // instance job indices in this class
	left  int   // not yet placed
}

// bbState carries the mutable search state.
type bbState struct {
	inst     *core.Instance
	tl       *profile.Timeline
	classes  []jobClass
	starts   []core.Time
	remWork  int64
	partCmax core.Time
	nodes    int64
	maxNodes int64
	bestCmax core.Time
	best     []core.Time
	budget   bool // budget exhausted
	noArea   bool
	noJobFit bool
}

// Solve finds the optimal makespan of the instance (subject to the node
// budget). Initial incumbents come from the sched package's heuristics, so
// even a budget-exhausted result is at least as good as every list policy.
func (sv *Solver) Solve(inst *core.Instance) (*Result, error) {
	if err := inst.Validate(); err != nil {
		return nil, fmt.Errorf("exact: %w", err)
	}
	maxNodes := sv.MaxNodes
	if maxNodes <= 0 {
		maxNodes = DefaultMaxNodes
	}

	// Incumbent from heuristics.
	var bestS *core.Schedule
	for _, s := range []sched.Scheduler{
		sched.NewLSRC(sched.FIFO), sched.NewLSRC(sched.LPT),
		sched.NewLSRC(sched.WidestFirst), sched.Conservative{},
	} {
		cand, err := s.Schedule(inst)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrUnschedulable, err)
		}
		if bestS == nil || cand.Makespan() < bestS.Makespan() {
			bestS = cand
		}
	}
	lb := lower.Best(inst)
	res := &Result{Schedule: bestS, Cmax: bestS.Makespan(), Optimal: true}
	if lb >= res.Cmax || len(inst.Jobs) == 0 {
		return res, nil
	}

	st := &bbState{
		inst:     inst,
		tl:       profile.MustFromReservations(inst.M, inst.Res),
		starts:   make([]core.Time, len(inst.Jobs)),
		remWork:  inst.TotalWork(),
		maxNodes: maxNodes,
		bestCmax: res.Cmax,
		best:     append([]core.Time(nil), bestS.Start...),
		noArea:   sv.DisableAreaBound,
		noJobFit: sv.DisableJobFitBound,
	}
	for i := range st.starts {
		st.starts[i] = core.Unscheduled
	}
	st.classes = classify(inst, sv.DisableClassCollapse)
	st.dfs()

	s := core.NewSchedule(inst)
	s.Algorithm = "exact-bb"
	copy(s.Start, st.best)
	res.Schedule = s
	res.Cmax = st.bestCmax
	res.Nodes = st.nodes
	res.Optimal = !st.budget
	if st.budget {
		return res, ErrBudget
	}
	return res, nil
}

// classify groups jobs by (procs, len), widest-longest first so strong
// incumbents appear early. With noCollapse every job forms its own class
// (exponentially more branching on duplicate-heavy instances; used only by
// the ablation).
func classify(inst *core.Instance, noCollapse bool) []jobClass {
	type key struct {
		q   int
		p   core.Time
		idx int // distinct per job when noCollapse
	}
	byKey := make(map[key]*jobClass)
	var order []key
	for i, j := range inst.Jobs {
		k := key{q: j.Procs, p: j.Len}
		if noCollapse {
			k.idx = i + 1
		}
		c, ok := byKey[k]
		if !ok {
			c = &jobClass{procs: j.Procs, len: j.Len}
			byKey[k] = c
			order = append(order, k)
		}
		c.idxs = append(c.idxs, i)
	}
	sort.Slice(order, func(a, b int) bool {
		ca, cb := byKey[order[a]], byKey[order[b]]
		if wa, wb := int64(ca.procs)*int64(ca.len), int64(cb.procs)*int64(cb.len); wa != wb {
			return wa > wb
		}
		if ca.len != cb.len {
			return ca.len > cb.len
		}
		return ca.procs > cb.procs
	})
	out := make([]jobClass, len(order))
	for i, k := range order {
		out[i] = *byKey[k]
		out[i].left = len(out[i].idxs)
	}
	return out
}

// nodeLB computes a lower bound for the current node: committed partial
// makespan, remaining-work area on the current timeline, and per-class
// earliest completion.
func (st *bbState) nodeLB() core.Time {
	lb := st.partCmax
	if st.remWork > 0 {
		if !st.noArea {
			if t, ok := st.tl.FirstTimeWithFreeArea(st.remWork); !ok {
				return core.Infinity
			} else if t > lb {
				lb = t
			}
		}
		if !st.noJobFit {
			for i := range st.classes {
				c := &st.classes[i]
				if c.left == 0 {
					continue
				}
				s, ok := st.tl.FindSlot(0, c.procs, c.len)
				if !ok {
					return core.Infinity
				}
				if end := s + c.len; end > lb {
					lb = end
				}
			}
		}
	}
	return lb
}

// dfs explores placements of one job per recursion level.
func (st *bbState) dfs() {
	if st.budget {
		return
	}
	st.nodes++
	if st.nodes > st.maxNodes {
		st.budget = true
		return
	}
	if st.remWork == 0 {
		if st.partCmax < st.bestCmax {
			st.bestCmax = st.partCmax
			copy(st.best, st.starts)
		}
		return
	}
	if st.nodeLB() >= st.bestCmax {
		return
	}
	for ci := range st.classes {
		c := &st.classes[ci]
		if c.left == 0 {
			continue
		}
		s, ok := st.tl.FindSlot(0, c.procs, c.len)
		if !ok {
			continue
		}
		end := s + c.len
		if end >= st.bestCmax {
			// Placing this class's next job already meets the incumbent:
			// the subtree cannot strictly improve via this branch IF the
			// class must be placed eventually anyway — but another class
			// might finish everything earlier; just skip this branch.
			continue
		}
		idx := c.idxs[len(c.idxs)-c.left]
		if err := st.tl.Commit(s, c.len, c.procs); err != nil {
			panic(fmt.Sprintf("exact: internal commit: %v", err))
		}
		c.left--
		st.starts[idx] = s
		st.remWork -= int64(c.procs) * int64(c.len)
		prevCmax := st.partCmax
		if end > st.partCmax {
			st.partCmax = end
		}

		st.dfs()

		st.partCmax = prevCmax
		st.remWork += int64(c.procs) * int64(c.len)
		st.starts[idx] = core.Unscheduled
		c.left++
		if err := st.tl.Release(s, c.len, c.procs); err != nil {
			panic(fmt.Sprintf("exact: internal release: %v", err))
		}
		if st.budget {
			return
		}
	}
}

// Solve with the default budget.
func Solve(inst *core.Instance) (*Result, error) {
	return (&Solver{}).Solve(inst)
}

// maxM1Jobs caps the DP's bitmask width.
const maxM1Jobs = 22

// SolveM1 solves single-machine instances exactly via subset DP. The state
// dp[mask] is the earliest completion frontier over all orders of the jobs
// in mask with greedy earliest placement; monotonicity of FindSlot in its
// ready argument makes the frontier a sufficient statistic.
func SolveM1(inst *core.Instance) (*Result, error) {
	if err := inst.Validate(); err != nil {
		return nil, fmt.Errorf("exact: %w", err)
	}
	if inst.M != 1 {
		return nil, fmt.Errorf("%w: SolveM1 needs m=1, got %d", ErrTooLarge, inst.M)
	}
	n := len(inst.Jobs)
	if n > maxM1Jobs {
		return nil, fmt.Errorf("%w: %d jobs > %d", ErrTooLarge, n, maxM1Jobs)
	}
	s := core.NewSchedule(inst)
	s.Algorithm = "exact-m1"
	if n == 0 {
		return &Result{Schedule: s, Cmax: 0, Optimal: true}, nil
	}
	tl := profile.MustFromReservations(1, inst.Res)

	size := 1 << n
	dp := make([]core.Time, size)
	choice := make([]int8, size) // job added last on the optimal path
	startAt := make([]core.Time, size)
	for i := range dp {
		dp[i] = core.Infinity
	}
	dp[0] = 0
	for mask := 0; mask < size; mask++ {
		if dp[mask] == core.Infinity {
			continue
		}
		for j := 0; j < n; j++ {
			if mask&(1<<j) != 0 {
				continue
			}
			p := inst.Jobs[j].Len
			st, ok := tl.FindSlot(dp[mask], 1, p)
			if !ok {
				continue
			}
			comp := st + p
			next := mask | 1<<j
			if comp < dp[next] {
				dp[next] = comp
				choice[next] = int8(j)
				startAt[next] = st
			}
		}
	}
	full := size - 1
	if dp[full] == core.Infinity {
		return nil, fmt.Errorf("%w: no completion for full set", ErrUnschedulable)
	}
	// Reconstruct: walk back the chosen jobs, recomputing their starts.
	for mask := full; mask != 0; {
		j := int(choice[mask])
		s.SetStart(j, startAt[mask])
		mask ^= 1 << j
	}
	return &Result{Schedule: s, Cmax: dp[full], Optimal: true, Nodes: int64(size)}, nil
}
