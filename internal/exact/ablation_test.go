package exact

import (
	"testing"

	"repro/internal/core"
	"repro/internal/instances"
	"repro/internal/rng"
)

// ablationVariants enumerates the pruning configurations.
func ablationVariants() map[string]*Solver {
	return map[string]*Solver{
		"full":        {},
		"no-collapse": {DisableClassCollapse: true},
		"no-area":     {DisableAreaBound: true},
		"no-jobfit":   {DisableJobFitBound: true},
		"no-bounds":   {DisableAreaBound: true, DisableJobFitBound: true},
		"bare":        {DisableClassCollapse: true, DisableAreaBound: true, DisableJobFitBound: true},
	}
}

// TestAblationVariantsAgreeOnOptimum: every pruning configuration must
// return the same optimal makespan — pruning affects node counts only.
func TestAblationVariantsAgreeOnOptimum(t *testing.T) {
	r := rng.New(424242)
	for trial := 0; trial < 40; trial++ {
		m := r.IntRange(2, 5)
		inst := &core.Instance{M: m}
		n := r.IntRange(2, 6)
		for i := 0; i < n; i++ {
			inst.Jobs = append(inst.Jobs, core.Job{
				ID: i, Procs: r.IntRange(1, m), Len: core.Time(r.IntRange(1, 6)),
			})
		}
		if r.Bool(0.5) {
			inst.Res = append(inst.Res, core.Reservation{
				ID: 0, Procs: r.IntRange(1, m), Start: core.Time(r.Intn(6)),
				Len: core.Time(r.IntRange(1, 5)),
			})
		}
		var want core.Time = -1
		for name, sv := range ablationVariants() {
			res, err := sv.Solve(inst)
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, name, err)
			}
			if !res.Optimal {
				t.Fatalf("trial %d %s: not optimal", trial, name)
			}
			if want == -1 {
				want = res.Cmax
			} else if res.Cmax != want {
				t.Fatalf("trial %d: %s found %v, others %v\ninstance: %+v",
					trial, name, res.Cmax, want, inst)
			}
		}
	}
}

// TestClassCollapseShrinksSearch: on a duplicate-heavy instance the class
// collapse must visit far fewer nodes.
func TestClassCollapseShrinksSearch(t *testing.T) {
	inst := &core.Instance{M: 3}
	for i := 0; i < 9; i++ {
		inst.Jobs = append(inst.Jobs, core.Job{ID: i, Procs: 2, Len: 4})
	}
	full, err := (&Solver{}).Solve(inst)
	if err != nil {
		t.Fatal(err)
	}
	bare, err := (&Solver{DisableClassCollapse: true, MaxNodes: 5_000_000}).Solve(inst)
	if err != nil {
		t.Fatal(err)
	}
	if full.Cmax != bare.Cmax {
		t.Fatalf("optima differ: %v vs %v", full.Cmax, bare.Cmax)
	}
	if full.Nodes*2 > bare.Nodes {
		t.Fatalf("collapse saved too little: %d vs %d nodes", full.Nodes, bare.Nodes)
	}
}

// TestBoundsPrune: dropping the bounds must not change the optimum but
// should not *reduce* the node count.
func TestBoundsPrune(t *testing.T) {
	r := rng.New(777)
	inst := instances.RandomRigid(r, instances.RigidConfig{M: 4, N: 8, MaxLen: 9})
	full, err := (&Solver{}).Solve(inst)
	if err != nil {
		t.Fatal(err)
	}
	loose, err := (&Solver{DisableAreaBound: true, DisableJobFitBound: true, MaxNodes: 20_000_000}).Solve(inst)
	if err != nil {
		t.Fatal(err)
	}
	if full.Cmax != loose.Cmax {
		t.Fatalf("optima differ: %v vs %v", full.Cmax, loose.Cmax)
	}
	if loose.Nodes < full.Nodes {
		t.Fatalf("pruned search visited MORE nodes (%d) than unpruned (%d)", full.Nodes, loose.Nodes)
	}
}

// BenchmarkExactAblation quantifies each pruning device on a shared
// instance — the ablation DESIGN.md calls for on the exact solver. Seed 3
// yields an instance the heuristics do not solve (full search: ~4.6k
// nodes; with everything disabled: ~2M nodes).
func BenchmarkExactAblation(b *testing.B) {
	r := rng.New(3)
	inst := &core.Instance{M: 4}
	for i := 0; i < 10; i++ {
		inst.Jobs = append(inst.Jobs, core.Job{
			ID: i, Procs: r.IntRange(1, 4), Len: core.Time(r.IntRange(1, 7)),
		})
	}
	inst.Res = []core.Reservation{{ID: 0, Procs: 2, Start: 4, Len: 6}}
	for _, name := range []string{"full", "no-collapse", "no-area", "no-jobfit", "no-bounds"} {
		sv := ablationVariants()[name]
		sv.MaxNodes = 50_000_000
		b.Run(name, func(b *testing.B) {
			var nodes int64
			for i := 0; i < b.N; i++ {
				res, err := sv.Solve(inst)
				if err != nil {
					b.Fatal(err)
				}
				nodes = res.Nodes
			}
			b.ReportMetric(float64(nodes), "nodes")
		})
	}
}
