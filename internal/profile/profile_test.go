package profile

import (
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/rng"
)

func TestNewTimeline(t *testing.T) {
	tl := New(16)
	if tl.AvailableAt(0) != 16 || tl.AvailableAt(1<<40) != 16 {
		t.Fatal("constant timeline wrong")
	}
	if tl.M() != 16 || tl.NumSegments() != 1 {
		t.Fatal("metadata wrong")
	}
}

func TestFromReservations(t *testing.T) {
	res := []core.Reservation{
		{ID: 0, Procs: 4, Start: 10, Len: 10},
		{ID: 1, Procs: 2, Start: 15, Len: 10},
	}
	tl, err := FromReservations(8, res)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		t    core.Time
		want int
	}{{0, 8}, {10, 4}, {14, 4}, {15, 2}, {19, 2}, {20, 6}, {25, 8}}
	for _, c := range cases {
		if got := tl.AvailableAt(c.t); got != c.want {
			t.Errorf("avail(%v) = %d, want %d", c.t, got, c.want)
		}
	}
}

func TestFromReservationsOversubscribed(t *testing.T) {
	res := []core.Reservation{
		{ID: 0, Procs: 5, Start: 0, Len: 10},
		{ID: 1, Procs: 4, Start: 5, Len: 10},
	}
	if _, err := FromReservations(8, res); !errors.Is(err, ErrInsufficient) {
		t.Fatalf("got %v, want ErrInsufficient", err)
	}
}

func TestCommitAndAvailability(t *testing.T) {
	tl := New(10)
	if err := tl.Commit(5, 10, 4); err != nil {
		t.Fatal(err)
	}
	if tl.AvailableAt(4) != 10 || tl.AvailableAt(5) != 6 || tl.AvailableAt(14) != 6 || tl.AvailableAt(15) != 10 {
		t.Fatalf("after commit: %v", tl)
	}
}

func TestCommitInsufficient(t *testing.T) {
	tl := New(4)
	if err := tl.Commit(0, 10, 3); err != nil {
		t.Fatal(err)
	}
	err := tl.Commit(5, 10, 2)
	if !errors.Is(err, ErrInsufficient) {
		t.Fatalf("got %v, want ErrInsufficient", err)
	}
	// Timeline unchanged by the failed commit.
	if tl.AvailableAt(5) != 1 || tl.AvailableAt(12) != 4 {
		t.Fatalf("failed commit mutated timeline: %v", tl)
	}
}

func TestCommitZeroIsNoop(t *testing.T) {
	tl := New(4)
	if err := tl.Commit(0, 5, 0); err != nil {
		t.Fatal(err)
	}
	if tl.NumSegments() != 1 {
		t.Fatalf("zero commit changed timeline: %v", tl)
	}
}

func TestReleaseUndoesCommit(t *testing.T) {
	tl := New(7)
	if err := tl.Commit(3, 4, 5); err != nil {
		t.Fatal(err)
	}
	if err := tl.Release(3, 4, 5); err != nil {
		t.Fatal(err)
	}
	if tl.NumSegments() != 1 || tl.AvailableAt(4) != 7 {
		t.Fatalf("release did not restore: %v", tl)
	}
}

func TestReleaseBeyondCapacity(t *testing.T) {
	tl := New(5)
	if err := tl.Release(0, 4, 1); !errors.Is(err, ErrOverRelease) {
		t.Fatalf("got %v, want ErrOverRelease", err)
	}
}

func TestMinAvailable(t *testing.T) {
	tl := New(10)
	_ = tl.Commit(5, 5, 4) // [5,10): 6
	_ = tl.Commit(8, 4, 3) // [8,12): -3 => [8,10):3, [10,12):7
	cases := []struct {
		t0, t1 core.Time
		want   int
	}{
		{0, 5, 10}, {0, 6, 6}, {5, 8, 6}, {8, 10, 3}, {0, core.Infinity, 3},
		{10, 12, 7}, {12, 20, 10}, {9, 11, 3},
	}
	for _, c := range cases {
		if got := tl.MinAvailable(c.t0, c.t1); got != c.want {
			t.Errorf("MinAvailable(%v,%v) = %d, want %d", c.t0, c.t1, got, c.want)
		}
	}
}

func TestCanPlace(t *testing.T) {
	tl := New(8)
	_ = tl.Commit(10, 10, 6) // [10,20): 2
	if !tl.CanPlace(0, 10, 8) {
		t.Error("window before commitment should fit")
	}
	if tl.CanPlace(0, 11, 3) {
		t.Error("window overlapping low segment must not fit")
	}
	if !tl.CanPlace(5, 5, 8) {
		t.Error("[5,10) should fit 8")
	}
	if !tl.CanPlace(10, 5, 2) {
		t.Error("[10,15) should fit 2")
	}
}

func TestFindSlotBasic(t *testing.T) {
	tl := New(8)
	_ = tl.Commit(10, 10, 6) // [10,20): 2 free
	cases := []struct {
		ready core.Time
		q     int
		dur   core.Time
		want  core.Time
	}{
		{0, 8, 10, 0},  // fits exactly before the block
		{0, 8, 11, 20}, // must wait for block to clear
		{0, 2, 100, 0}, // thin job fits through
		{5, 3, 5, 5},   // [5,10) has 8 free
		{5, 3, 6, 20},  // would overlap block
		{15, 2, 3, 15}, // inside block, thin enough
		{15, 3, 3, 20}, // inside block, too wide
		{25, 8, 1, 25}, // after everything
	}
	for _, c := range cases {
		got, ok := tl.FindSlot(c.ready, c.q, c.dur)
		if !ok || got != c.want {
			t.Errorf("FindSlot(%v,%d,%v) = %v,%v want %v", c.ready, c.q, c.dur, got, ok, c.want)
		}
	}
}

func TestFindSlotNever(t *testing.T) {
	tl := New(4)
	// Consume 2 procs forever.
	if err := tl.Commit(3, core.Infinity, 2); err != nil {
		t.Fatal(err)
	}
	if _, ok := tl.FindSlot(0, 3, 10); ok {
		t.Error("3 procs for 10 ticks should be impossible after t=3... unless it fits before")
	}
	// It does NOT fit before: [0,3) is only 3 ticks but dur=10.
	if got, ok := tl.FindSlot(0, 3, 3); !ok || got != 0 {
		t.Errorf("3 procs for 3 ticks fits at 0: got %v,%v", got, ok)
	}
	if _, ok := tl.FindSlot(1, 3, 3); ok {
		t.Error("after t=1 there is no 3-proc window of length 3 ever again")
	}
}

func TestFindSlotInfiniteDuration(t *testing.T) {
	tl := New(4)
	_ = tl.Commit(5, 10, 3) // [5,15): 1
	got, ok := tl.FindSlot(0, 2, core.Infinity)
	if !ok || got != 15 {
		t.Errorf("infinite-duration slot = %v,%v; want 15", got, ok)
	}
	got, ok = tl.FindSlot(0, 1, core.Infinity)
	if !ok || got != 0 {
		t.Errorf("width-1 infinite slot = %v,%v; want 0", got, ok)
	}
}

func TestFindSlotRespectsReady(t *testing.T) {
	tl := New(4)
	got, ok := tl.FindSlot(17, 4, 3)
	if !ok || got != 17 {
		t.Errorf("FindSlot from ready=17 on empty machine = %v,%v", got, ok)
	}
	got, ok = tl.FindSlot(-5, 1, 1)
	if !ok || got != 0 {
		t.Errorf("negative ready should clamp to 0, got %v", got)
	}
}

func TestNextBreakpoint(t *testing.T) {
	tl := New(8)
	_ = tl.Commit(10, 5, 2)
	bp, ok := tl.NextBreakpoint(0)
	if !ok || bp != 10 {
		t.Errorf("NextBreakpoint(0) = %v,%v", bp, ok)
	}
	bp, ok = tl.NextBreakpoint(10)
	if !ok || bp != 15 {
		t.Errorf("NextBreakpoint(10) = %v,%v", bp, ok)
	}
	if _, ok := tl.NextBreakpoint(15); ok {
		t.Error("no breakpoint after the last")
	}
}

func TestFreeArea(t *testing.T) {
	tl := New(10)
	_ = tl.Commit(5, 5, 4) // [5,10): 6
	if got := tl.FreeArea(0, 10); got != 5*10+5*6 {
		t.Errorf("FreeArea(0,10) = %d", got)
	}
	if got := tl.FreeArea(5, 5); got != 0 {
		t.Errorf("FreeArea empty window = %d", got)
	}
	if got := tl.FreeArea(7, 12); got != 3*6+2*10 {
		t.Errorf("FreeArea(7,12) = %d", got)
	}
}

func TestFirstTimeWithFreeArea(t *testing.T) {
	tl := New(4)
	_ = tl.Commit(0, 10, 4) // nothing free until 10
	got, ok := tl.FirstTimeWithFreeArea(8)
	if !ok || got != 12 {
		t.Errorf("FirstTimeWithFreeArea(8) = %v,%v; want 12", got, ok)
	}
	got, ok = tl.FirstTimeWithFreeArea(0)
	if !ok || got != 0 {
		t.Errorf("FirstTimeWithFreeArea(0) = %v,%v; want 0", got, ok)
	}
	// Partial segment arithmetic: capacity 4 from t=10, need 7 => ceil(7/4)=2 ticks.
	got, ok = tl.FirstTimeWithFreeArea(7)
	if !ok || got != 12 {
		t.Errorf("FirstTimeWithFreeArea(7) = %v,%v; want 12", got, ok)
	}
}

func TestFirstTimeWithFreeAreaNever(t *testing.T) {
	tl := New(3)
	_ = tl.Commit(0, core.Infinity, 3)
	if _, ok := tl.FirstTimeWithFreeArea(1); ok {
		t.Error("area should never accumulate on a dead machine")
	}
}

func TestCloneIndependence(t *testing.T) {
	tl := New(6)
	_ = tl.Commit(0, 5, 2)
	cp := tl.Clone()
	_ = cp.Commit(0, 5, 2)
	if tl.AvailableAt(0) != 4 || cp.AvailableAt(0) != 2 {
		t.Fatalf("clone not independent: %v vs %v", tl, cp)
	}
}

func TestCoalescing(t *testing.T) {
	tl := New(8)
	_ = tl.Commit(0, 10, 3)
	_ = tl.Commit(10, 10, 3)
	// Two adjacent commits of equal width: one merged segment plus tail.
	if tl.NumSegments() != 2 {
		t.Fatalf("expected coalesced 2 segments, got %d: %v", tl.NumSegments(), tl)
	}
	_ = tl.Release(0, 20, 3)
	if tl.NumSegments() != 1 {
		t.Fatalf("release should restore a single segment: %v", tl)
	}
}

func TestCommitInvalidWindows(t *testing.T) {
	tl := New(4)
	if err := tl.Commit(-1, 5, 1); !errors.Is(err, ErrBadWindow) {
		t.Errorf("negative start: %v", err)
	}
	if err := tl.Commit(0, 0, 1); !errors.Is(err, ErrBadWindow) {
		t.Errorf("zero duration: %v", err)
	}
	if err := tl.Commit(0, 5, -2); err == nil {
		t.Error("negative q accepted")
	}
}

// refTimeline is a brute-force array-backed reference implementation over a
// finite horizon, used to cross-check the segment algebra.
type refTimeline struct {
	cap []int
}

func newRef(m int, horizon int) *refTimeline {
	r := &refTimeline{cap: make([]int, horizon)}
	for i := range r.cap {
		r.cap[i] = m
	}
	return r
}

func (r *refTimeline) commit(start, dur core.Time, q int) bool {
	for t := start; t < start+dur; t++ {
		if r.cap[t] < q {
			return false
		}
	}
	for t := start; t < start+dur; t++ {
		r.cap[t] -= q
	}
	return true
}

func (r *refTimeline) findSlot(ready core.Time, q int, dur core.Time) (core.Time, bool) {
	for s := ready; s+dur <= core.Time(len(r.cap)); s++ {
		ok := true
		for t := s; t < s+dur; t++ {
			if r.cap[t] < q {
				ok = false
				break
			}
		}
		if ok {
			return s, true
		}
	}
	return 0, false
}

func TestAgainstBruteForce(t *testing.T) {
	const horizon = 64
	r := rng.New(1001)
	for trial := 0; trial < 300; trial++ {
		m := r.IntRange(1, 8)
		tl := New(m)
		ref := newRef(m, horizon)
		// Random committed intervals.
		for k := 0; k < r.IntRange(0, 12); k++ {
			start := core.Time(r.Intn(horizon - 1))
			dur := core.Time(r.IntRange(1, horizon/4))
			if start+dur > horizon {
				dur = horizon - start
			}
			q := r.IntRange(1, m)
			okRef := ref.commit(start, dur, q)
			err := tl.Commit(start, dur, q)
			if okRef != (err == nil) {
				t.Fatalf("trial %d: commit(%v,%v,%d) disagreement: ref=%v err=%v\n%v",
					trial, start, dur, q, okRef, err, tl)
			}
		}
		// Cross-check availability everywhere.
		for tm := 0; tm < horizon; tm++ {
			if got := tl.AvailableAt(core.Time(tm)); got != ref.cap[tm] {
				t.Fatalf("trial %d: avail(%d) = %d, ref %d", trial, tm, got, ref.cap[tm])
			}
		}
		// Cross-check FindSlot for random queries. The reference only sees
		// the horizon, so restrict queries that fit inside it; beyond the
		// horizon the timeline is all-free so any slot the reference fails
		// to find must start after the last commitment.
		for k := 0; k < 20; k++ {
			ready := core.Time(r.Intn(horizon / 2))
			q := r.IntRange(1, m)
			dur := core.Time(r.IntRange(1, horizon/4))
			gotT, gotOK := tl.FindSlot(ready, q, dur)
			refT, refOK := ref.findSlot(ready, q, dur)
			if !gotOK {
				t.Fatalf("trial %d: FindSlot says never on a finite-load machine", trial)
			}
			if refOK {
				if gotT != refT {
					t.Fatalf("trial %d: FindSlot(%v,%d,%v) = %v, ref %v\n%v",
						trial, ready, q, dur, gotT, refT, tl)
				}
			} else if gotT+dur <= horizon {
				t.Fatalf("trial %d: FindSlot found %v inside horizon but reference found none", trial, gotT)
			}
		}
	}
}

func TestCommitReleaseFuzz(t *testing.T) {
	// Property: any interleaving of commits followed by their releases
	// restores the pristine timeline exactly.
	r := rng.New(2002)
	for trial := 0; trial < 200; trial++ {
		m := r.IntRange(1, 10)
		tl := New(m)
		type iv struct {
			s, d core.Time
			q    int
		}
		var committed []iv
		for k := 0; k < r.IntRange(1, 15); k++ {
			c := iv{core.Time(r.Intn(50)), core.Time(r.IntRange(1, 20)), r.IntRange(1, m)}
			if tl.Commit(c.s, c.d, c.q) == nil {
				committed = append(committed, c)
			}
		}
		r.Shuffle(len(committed), func(i, j int) {
			committed[i], committed[j] = committed[j], committed[i]
		})
		for _, c := range committed {
			if err := tl.Release(c.s, c.d, c.q); err != nil {
				t.Fatalf("trial %d: release failed: %v", trial, err)
			}
		}
		if tl.NumSegments() != 1 || tl.AvailableAt(0) != m {
			t.Fatalf("trial %d: timeline not restored: %v", trial, tl)
		}
	}
}

func TestFindSlotIsEarliestAndFeasible(t *testing.T) {
	// Property: the returned slot is feasible, and one tick earlier is not
	// (unless it equals ready).
	r := rng.New(3003)
	for trial := 0; trial < 300; trial++ {
		m := r.IntRange(2, 8)
		tl := New(m)
		for k := 0; k < r.IntRange(0, 10); k++ {
			_ = tl.Commit(core.Time(r.Intn(40)), core.Time(r.IntRange(1, 15)), r.IntRange(1, m))
		}
		ready := core.Time(r.Intn(30))
		q := r.IntRange(1, m)
		dur := core.Time(r.IntRange(1, 10))
		s, ok := tl.FindSlot(ready, q, dur)
		if !ok {
			t.Fatalf("trial %d: no slot on finite-load machine", trial)
		}
		if s < ready {
			t.Fatalf("trial %d: slot %v before ready %v", trial, s, ready)
		}
		if !tl.CanPlace(s, dur, q) {
			t.Fatalf("trial %d: returned slot infeasible", trial)
		}
		if s > ready && tl.CanPlace(s-1, dur, q) {
			t.Fatalf("trial %d: slot %v not earliest (s-1 also fits)\n%v", trial, s, tl)
		}
	}
}

func BenchmarkCommit(b *testing.B) {
	r := rng.New(1)
	tl := New(64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := core.Time(r.Intn(10000))
		if tl.Commit(s, 10, 4) != nil {
			b.StopTimer()
			tl = New(64)
			b.StartTimer()
		}
	}
}

func BenchmarkFindSlot(b *testing.B) {
	r := rng.New(2)
	tl := New(64)
	for k := 0; k < 1000; k++ {
		_ = tl.Commit(core.Time(r.Intn(100000)), core.Time(r.IntRange(1, 50)), r.IntRange(1, 32))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tl.FindSlot(core.Time(r.Intn(50000)), 40, 100)
	}
}
