package profile

import (
	"sync"
	"testing"

	"repro/internal/core"
)

// TestSynchronizedDelegates spot-checks that every observation passes
// through to the wrapped index unchanged.
func TestSynchronizedDelegates(t *testing.T) {
	tl := New(10)
	if err := tl.Commit(5, 10, 4); err != nil {
		t.Fatal(err)
	}
	s := NewSynchronized(tl.Clone())
	if s.M() != 10 || s.AvailableAt(7) != 6 || s.MinAvailable(0, 20) != 6 {
		t.Fatalf("delegation broken: m=%d avail=%d min=%d", s.M(), s.AvailableAt(7), s.MinAvailable(0, 20))
	}
	if !s.CanPlace(0, 5, 10) || s.CanPlace(4, 5, 10) {
		t.Fatal("CanPlace delegation broken")
	}
	if got, ok := s.FindSlot(3, 10, 3); !ok || got != 15 {
		t.Fatalf("FindSlot = %v, %v; want 15", got, ok)
	}
	if s.NumSegments() != tl.NumSegments() || s.FreeArea(0, 20) != tl.FreeArea(0, 20) {
		t.Fatal("segment/area delegation broken")
	}
	if s.String() != tl.String() {
		t.Fatal("String delegation broken")
	}
	if bp := s.Breakpoints(); len(bp) != 3 || bp[1] != 5 {
		t.Fatalf("Breakpoints = %v", bp)
	}
	if nb, ok := s.NextBreakpoint(5); !ok || nb != 15 {
		t.Fatalf("NextBreakpoint(5) = %v, %v", nb, ok)
	}
	if ft, ok := s.FirstTimeWithFreeArea(1); !ok || ft != tlFirst(tl) {
		t.Fatalf("FirstTimeWithFreeArea = %v, %v", ft, ok)
	}
	clone := s.CloneIndex()
	if err := s.Commit(0, 1, 1); err != nil {
		t.Fatal(err)
	}
	if clone.AvailableAt(0) != 10 {
		t.Fatal("CloneIndex not independent")
	}
	if err := s.Release(0, 1, 1); err != nil {
		t.Fatal(err)
	}
}

func tlFirst(tl *Timeline) core.Time {
	t, _ := tl.FirstTimeWithFreeArea(1)
	return t
}

// TestSynchronizedConcurrentUse drives readers and writers through the
// wrapper at once; under -race this is the proof the lock discipline
// covers every method. Writers commit and release disjoint unit slots so
// the final state is exactly the initial one.
func TestSynchronizedConcurrentUse(t *testing.T) {
	const m = 16
	s := NewSynchronized(New(m))
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := core.Time(1000 * w)
			for i := 0; i < 200; i++ {
				at := base + core.Time(i%100)
				if err := s.Commit(at, 5, 2); err != nil {
					t.Errorf("commit: %v", err)
					return
				}
				if err := s.Release(at, 5, 2); err != nil {
					t.Errorf("release: %v", err)
					return
				}
			}
		}(w)
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 400; i++ {
				if a := s.AvailableAt(core.Time(i * 13 % 4000)); a < 0 || a > m {
					t.Errorf("avail out of range: %d", a)
					return
				}
				if s.FreeArea(0, 4000) > int64(m)*4000 {
					t.Error("free area above machine area")
					return
				}
			}
		}()
	}
	wg.Wait()
	if s.NumSegments() != 1 || s.AvailableAt(0) != m {
		t.Fatalf("not pristine after balanced traffic: %v", s)
	}
}
