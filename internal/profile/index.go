package profile

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/core"
)

// CapacityIndex is the seam between the scheduling layers and the data
// structure maintaining the available-capacity step function. Two backends
// implement it:
//
//   - "array" — the flat sorted-array Timeline in this package. Simple,
//     cache-friendly, O(n) per mutation; the right choice for the paper's
//     instance sizes (tens to thousands of reservations).
//   - "tree" — the balanced augmented interval tree in internal/restree.
//     O(log n) admission and aggregate-pruned earliest-fit queries; the
//     right choice from roughly 10^4 segments upward, where array shifts
//     and linear slot scans dominate scheduling time.
//
// Every scheduler in internal/sched, the simulator in internal/sim, and the
// batch-doubling wrapper in internal/online are written against this
// interface, so backends can be swapped per run (the CLIs expose
// -backend={array,tree}). Both implementations maintain the identical
// canonical form — strictly increasing breakpoints, no equal-valued
// neighbouring segments — so all observations, including NextBreakpoint and
// NumSegments, agree exactly; internal/restree's differential fuzz harness
// enforces this.
type CapacityIndex interface {
	// M returns the machine size the index was created with.
	M() int
	// AvailableAt returns the capacity available at time t.
	AvailableAt(t core.Time) int
	// MinAvailable returns the minimum capacity over [t0, t1).
	MinAvailable(t0, t1 core.Time) int
	// CanPlace reports whether q processors are free on all of
	// [start, start+dur).
	CanPlace(start, dur core.Time, q int) bool
	// FindSlot returns the earliest t >= ready with q processors free on
	// all of [t, t+dur), or false if no such t exists.
	FindSlot(ready core.Time, q int, dur core.Time) (core.Time, bool)
	// Commit consumes q processors over [start, start+dur).
	Commit(start, dur core.Time, q int) error
	// Release restores q processors over [start, start+dur).
	Release(start, dur core.Time, q int) error
	// NextBreakpoint returns the smallest breakpoint strictly greater
	// than t, or false if none exists.
	NextBreakpoint(t core.Time) (core.Time, bool)
	// Breakpoints returns a copy of all breakpoint times.
	Breakpoints() []core.Time
	// NumSegments returns the number of constant segments.
	NumSegments() int
	// FreeArea returns the integral of available capacity over [t0, t1).
	FreeArea(t0, t1 core.Time) int64
	// FirstTimeWithFreeArea returns the smallest t with FreeArea(0,t) >= w.
	FirstTimeWithFreeArea(w int64) (core.Time, bool)
	// CloneIndex returns an independent deep copy.
	CloneIndex() CapacityIndex
	// String renders the segments for debugging.
	String() string
}

// DefaultBackend is the backend used when callers pass an empty name.
const DefaultBackend = "array"

var (
	backendMu sync.RWMutex
	backends  = map[string]func(m int) CapacityIndex{
		"array": func(m int) CapacityIndex { return New(m) },
	}
)

// RegisterBackend makes a capacity-index constructor available under the
// given name (e.g. internal/restree registers "tree" from its init). It
// panics on duplicate registration, which always indicates a programming
// error.
func RegisterBackend(name string, mk func(m int) CapacityIndex) {
	backendMu.Lock()
	defer backendMu.Unlock()
	if _, dup := backends[name]; dup {
		panic(fmt.Sprintf("profile: backend %q registered twice", name))
	}
	backends[name] = mk
}

// Backends lists the registered backend names, sorted.
func Backends() []string {
	backendMu.RLock()
	defer backendMu.RUnlock()
	out := make([]string, 0, len(backends))
	for n := range backends {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// NewIndex returns a fresh capacity index with constant capacity m from the
// named backend ("" selects DefaultBackend).
func NewIndex(backend string, m int) (CapacityIndex, error) {
	if backend == "" {
		backend = DefaultBackend
	}
	backendMu.RLock()
	mk, ok := backends[backend]
	backendMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("profile: unknown backend %q (available: %v)", backend, Backends())
	}
	return mk(m), nil
}

// IndexFromReservations builds a capacity index on the named backend and
// commits the given reservations, i.e. the backend-generic equivalent of
// FromReservations. It returns ErrInsufficient (wrapped) if the
// reservations oversubscribe the machine at any time.
func IndexFromReservations(backend string, m int, res []core.Reservation) (CapacityIndex, error) {
	idx, err := NewIndex(backend, m)
	if err != nil {
		return nil, err
	}
	for _, r := range res {
		if err := idx.Commit(r.Start, r.Len, r.Procs); err != nil {
			return nil, fmt.Errorf("profile: reservation %d: %w", r.ID, err)
		}
	}
	return idx, nil
}

// CloneIndex implements CapacityIndex for Timeline.
func (tl *Timeline) CloneIndex() CapacityIndex { return tl.Clone() }

// Timeline is the canonical array backend.
var _ CapacityIndex = (*Timeline)(nil)
