package profile

import (
	"sync"

	"repro/internal/core"
)

// Synchronized wraps a CapacityIndex with a readers–writer lock so one
// index can be observed from many goroutines while another mutates it.
//
// The repository's schedulers never need this: they own their index
// outright, and internal/resd goes further by giving every shard a
// single-writer event loop so the hot path takes no locks at all. The
// wrapper exists for the boundary where an index crosses goroutines anyway
// — resd's Snapshot hands callers a Synchronized clone they may share
// freely, and load generators use it to watch capacity drain while clients
// keep reserving. Observations (AvailableAt, FindSlot, FreeArea, ...) take
// the read lock and may run concurrently; Commit and Release take the
// write lock.
//
// The zero Synchronized is not usable; construct with NewSynchronized.
type Synchronized struct {
	mu  sync.RWMutex
	idx CapacityIndex
}

// NewSynchronized wraps idx. The caller must not keep using idx directly
// afterwards, or the lock protects nothing.
func NewSynchronized(idx CapacityIndex) *Synchronized {
	if idx == nil {
		panic("profile: NewSynchronized(nil)")
	}
	return &Synchronized{idx: idx}
}

var _ CapacityIndex = (*Synchronized)(nil)

// M returns the machine size the wrapped index was created with.
func (s *Synchronized) M() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.idx.M()
}

// AvailableAt returns the capacity available at time t.
func (s *Synchronized) AvailableAt(t core.Time) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.idx.AvailableAt(t)
}

// MinAvailable returns the minimum capacity over [t0, t1).
func (s *Synchronized) MinAvailable(t0, t1 core.Time) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.idx.MinAvailable(t0, t1)
}

// CanPlace reports whether q processors are free on all of [start, start+dur).
func (s *Synchronized) CanPlace(start, dur core.Time, q int) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.idx.CanPlace(start, dur, q)
}

// FindSlot returns the earliest t >= ready with q processors free on all of
// [t, t+dur). Note that under concurrent writers the slot may be gone by the
// time the caller acts on it; re-validation belongs to whoever commits
// (which is exactly what resd's shard loops do).
func (s *Synchronized) FindSlot(ready core.Time, q int, dur core.Time) (core.Time, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.idx.FindSlot(ready, q, dur)
}

// Commit consumes q processors over [start, start+dur).
func (s *Synchronized) Commit(start, dur core.Time, q int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.idx.Commit(start, dur, q)
}

// Release restores q processors over [start, start+dur).
func (s *Synchronized) Release(start, dur core.Time, q int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.idx.Release(start, dur, q)
}

// NextBreakpoint returns the smallest breakpoint strictly greater than t.
func (s *Synchronized) NextBreakpoint(t core.Time) (core.Time, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.idx.NextBreakpoint(t)
}

// Breakpoints returns a copy of all breakpoint times.
func (s *Synchronized) Breakpoints() []core.Time {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.idx.Breakpoints()
}

// NumSegments returns the number of constant segments.
func (s *Synchronized) NumSegments() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.idx.NumSegments()
}

// FreeArea returns the integral of available capacity over [t0, t1).
func (s *Synchronized) FreeArea(t0, t1 core.Time) int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.idx.FreeArea(t0, t1)
}

// FirstTimeWithFreeArea returns the smallest t with FreeArea(0,t) >= w.
func (s *Synchronized) FirstTimeWithFreeArea(w int64) (core.Time, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.idx.FirstTimeWithFreeArea(w)
}

// CloneIndex returns an independent, unsynchronized deep copy of the
// wrapped index (a snapshot; wrap it again if it will be shared).
func (s *Synchronized) CloneIndex() CapacityIndex {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.idx.CloneIndex()
}

// String renders the wrapped index's segments for debugging.
func (s *Synchronized) String() string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.idx.String()
}
