package profile

import (
	"testing"

	"repro/internal/core"
)

// FuzzTimelineOps drives a Timeline through an op stream decoded from the
// fuzz input and cross-checks every observation against an array-backed
// reference over a finite horizon. This complements the seeded random
// tests with coverage-guided exploration of the segment algebra (splits,
// merges, boundary cases).
func FuzzTimelineOps(f *testing.F) {
	f.Add([]byte{1, 0, 5, 2, 0, 10, 3, 1})
	f.Add([]byte{2, 3, 3, 1, 1, 3, 3, 1, 0, 0, 1, 1})
	f.Fuzz(func(t *testing.T, ops []byte) {
		const horizon = 48
		const m = 5
		tl := New(m)
		ref := newRef(m, horizon)
		type iv struct {
			s, d core.Time
			q    int
		}
		var committed []iv
		for len(ops) >= 4 {
			op, a, b, c := ops[0]%3, ops[1], ops[2], ops[3]
			ops = ops[4:]
			start := core.Time(a % horizon)
			dur := core.Time(b%16 + 1)
			q := int(c%m + 1)
			if start+dur > horizon {
				dur = horizon - start
				if dur <= 0 {
					continue
				}
			}
			switch op {
			case 0: // commit
				refOK := ref.commit(start, dur, q)
				err := tl.Commit(start, dur, q)
				if refOK != (err == nil) {
					t.Fatalf("commit(%v,%v,%d): ref=%v err=%v\n%v", start, dur, q, refOK, err, tl)
				}
				if err == nil {
					committed = append(committed, iv{start, dur, q})
				}
			case 1: // release the oldest commitment
				if len(committed) == 0 {
					continue
				}
				cmt := committed[0]
				committed = committed[1:]
				if err := tl.Release(cmt.s, cmt.d, cmt.q); err != nil {
					t.Fatalf("release of prior commit failed: %v", err)
				}
				for tm := cmt.s; tm < cmt.s+cmt.d; tm++ {
					ref.cap[tm] += cmt.q
				}
			case 2: // probe
				if got, want := tl.AvailableAt(start), ref.cap[start]; got != want {
					t.Fatalf("avail(%v) = %d, ref %d", start, got, want)
				}
				gotT, gotOK := tl.FindSlot(start, q, dur)
				refT, refOK := ref.findSlot(start, q, dur)
				if refOK && (!gotOK || gotT != refT) {
					t.Fatalf("FindSlot(%v,%d,%v) = %v,%v; ref %v", start, q, dur, gotT, gotOK, refT)
				}
				if !refOK && gotOK && gotT+dur <= horizon {
					t.Fatalf("FindSlot found %v inside horizon; ref found none", gotT)
				}
			}
		}
		// Invariant: canonical segments (strictly increasing, no equal
		// neighbours) and capacity within [0, m].
		for i := 0; i < tl.NumSegments(); i++ {
			if tl.avail[i] < 0 || tl.avail[i] > m {
				t.Fatalf("segment %d capacity %d out of range", i, tl.avail[i])
			}
			if i > 0 {
				if tl.times[i] <= tl.times[i-1] {
					t.Fatalf("breakpoints not increasing: %v", tl.times)
				}
				if tl.avail[i] == tl.avail[i-1] {
					t.Fatalf("uncoalesced segments at %d: %v", i, tl)
				}
			}
		}
	})
}
