// Package profile implements the resource-availability timeline at the
// heart of every scheduler in this repository.
//
// A Timeline is a piecewise-constant function giving, for every instant in
// [0, +inf), the number of processors available to the scheduler. It is
// built from the machine size m minus the instance's advance reservations,
// and is then progressively consumed as jobs are committed. All scheduling
// policies (LSRC, FCFS, backfilling variants, shelves) and the exact solver
// are written against this one abstraction, so the semantics of "fits"
// — q processors available during the job's *entire* execution window,
// accounting for reservations that start in the future — are identical
// everywhere. This matters: Proposition 2's adversarial schedule only
// arises because the list scheduler refuses placements that would collide
// with a reservation later in the job's window.
//
// Those semantics are captured by the CapacityIndex interface (index.go),
// which Timeline implements as the "array" backend: a flat sorted array of
// segments, ideal for the paper's instance sizes but O(n) per mutation and
// slot scan. internal/restree implements the same interface as the "tree"
// backend — a balanced augmented interval tree with O(log n) admission and
// aggregate-pruned earliest-fit — registered here via RegisterBackend.
// Choose array below ~10^4 segments (lower constants, perfect locality),
// tree above it (asymptotics win; see BENCH_restree.json). Both maintain
// the identical canonical segment form, so schedules are bit-for-bit equal
// whichever backend runs them.
package profile

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/core"
)

// Timeline is the available-capacity step function. The capacity equals
// avail[i] on [times[i], times[i+1]) and avail[len-1] on the final unbounded
// segment. times[0] is always 0. Construct with New or FromReservations.
type Timeline struct {
	m     int // original machine size, upper bound for Release validation
	times []core.Time
	avail []int
}

// Errors reported by Timeline operations.
var (
	ErrInsufficient = errors.New("profile: committing more capacity than available")
	ErrOverRelease  = errors.New("profile: releasing beyond machine capacity")
	ErrBadWindow    = errors.New("profile: invalid time window")
)

// New returns a timeline with constant capacity m on [0, +inf).
func New(m int) *Timeline {
	if m < 0 {
		panic("profile: negative capacity")
	}
	return &Timeline{m: m, times: []core.Time{0}, avail: []int{m}}
}

// FromReservations returns the availability left by the given reservations
// on an m-processor machine: m - U(t). It returns ErrInsufficient if the
// reservations oversubscribe the machine at any time.
func FromReservations(m int, res []core.Reservation) (*Timeline, error) {
	tl := New(m)
	for _, r := range res {
		if err := tl.Commit(r.Start, r.Len, r.Procs); err != nil {
			return nil, fmt.Errorf("profile: reservation %d: %w", r.ID, err)
		}
	}
	return tl, nil
}

// MustFromReservations is FromReservations for reservation sets already
// validated by core.Instance.Validate; it panics on oversubscription.
func MustFromReservations(m int, res []core.Reservation) *Timeline {
	tl, err := FromReservations(m, res)
	if err != nil {
		panic(err)
	}
	return tl
}

// M returns the machine size the timeline was created with.
func (tl *Timeline) M() int { return tl.m }

// Clone returns an independent deep copy.
func (tl *Timeline) Clone() *Timeline {
	out := &Timeline{m: tl.m}
	out.times = append(make([]core.Time, 0, len(tl.times)), tl.times...)
	out.avail = append(make([]int, 0, len(tl.avail)), tl.avail...)
	return out
}

// segIndex returns the index of the segment containing time t (t >= 0).
func (tl *Timeline) segIndex(t core.Time) int {
	// First breakpoint strictly greater than t, minus one.
	i := sort.Search(len(tl.times), func(i int) bool { return tl.times[i] > t })
	if i == 0 {
		return 0
	}
	return i - 1
}

// AvailableAt returns the capacity available at time t.
func (tl *Timeline) AvailableAt(t core.Time) int {
	if t < 0 {
		t = 0
	}
	return tl.avail[tl.segIndex(t)]
}

// segEnd returns the exclusive end of segment i (Infinity for the last).
func (tl *Timeline) segEnd(i int) core.Time {
	if i+1 < len(tl.times) {
		return tl.times[i+1]
	}
	return core.Infinity
}

// windowEnd computes start+dur treating dur == Infinity as an unbounded
// window.
func windowEnd(start, dur core.Time) core.Time {
	if dur == core.Infinity {
		return core.Infinity
	}
	return start + dur
}

// MinAvailable returns the minimum capacity over [t0, t1). t1 may be
// core.Infinity. It panics if t0 >= t1 or t0 < 0.
func (tl *Timeline) MinAvailable(t0, t1 core.Time) int {
	if t0 < 0 || t0 >= t1 {
		panic(ErrBadWindow)
	}
	i := tl.segIndex(t0)
	min := tl.avail[i]
	for i++; i < len(tl.times) && tl.times[i] < t1; i++ {
		if tl.avail[i] < min {
			min = tl.avail[i]
		}
	}
	return min
}

// CanPlace reports whether q processors are available during the entire
// window [start, start+dur).
func (tl *Timeline) CanPlace(start, dur core.Time, q int) bool {
	if dur <= 0 {
		panic(ErrBadWindow)
	}
	return tl.MinAvailable(start, windowEnd(start, dur)) >= q
}

// FindSlot returns the earliest time t >= ready such that q processors are
// available during all of [t, t+dur). The boolean result is false only when
// no such t exists, i.e. the timeline's final (unbounded) capacity is below
// q and no finite window fits.
//
// The search walks segments once: a window is blocked by its earliest
// under-capacity segment, and the window can only become feasible once its
// start passes that segment's end, so the start jumps directly there.
func (tl *Timeline) FindSlot(ready core.Time, q int, dur core.Time) (core.Time, bool) {
	if dur <= 0 {
		panic(ErrBadWindow)
	}
	if ready < 0 {
		ready = 0
	}
	s := ready
	for {
		end := windowEnd(s, dur)
		// Find the first segment intersecting [s, end) with avail < q.
		i := tl.segIndex(s)
		blocked := -1
		for ; i < len(tl.times) && tl.times[i] < end; i++ {
			if tl.segEnd(i) <= s {
				continue
			}
			if tl.avail[i] < q {
				blocked = i
				break
			}
		}
		if blocked == -1 {
			return s, true
		}
		next := tl.segEnd(blocked)
		if next == core.Infinity {
			// Final capacity is below q: no slot will ever open.
			return 0, false
		}
		s = next
	}
}

// ensureBreak inserts a breakpoint at t (splitting its containing segment)
// and returns the index of the segment that now starts at t. No-op if a
// breakpoint already exists at t. t must be >= 0 and finite.
func (tl *Timeline) ensureBreak(t core.Time) int {
	i := sort.Search(len(tl.times), func(i int) bool { return tl.times[i] >= t })
	if i < len(tl.times) && tl.times[i] == t {
		return i
	}
	// Insert after segment i-1, copying its value.
	tl.times = append(tl.times, 0)
	copy(tl.times[i+1:], tl.times[i:])
	tl.times[i] = t
	tl.avail = append(tl.avail, 0)
	copy(tl.avail[i+1:], tl.avail[i:])
	tl.avail[i] = tl.avail[i-1]
	return i
}

// coalesce merges equal-valued adjacent segments in the index range
// [lo-1, hi+1] after a mutation touching segments [lo, hi].
func (tl *Timeline) coalesce(lo, hi int) {
	if lo < 1 {
		lo = 1
	}
	if hi > len(tl.times)-1 {
		hi = len(tl.times) - 1
	}
	// Rebuild in place over the affected span. A simple full sweep keeps
	// the code obviously correct; spans are small in practice.
	w := lo
	for r := lo; r < len(tl.times); r++ {
		if tl.avail[r] == tl.avail[w-1] {
			continue // merged into previous
		}
		tl.times[w] = tl.times[r]
		tl.avail[w] = tl.avail[r]
		w++
	}
	tl.times = tl.times[:w]
	tl.avail = tl.avail[:w]
}

// apply adds deltaQ to the capacity over [start, start+dur). Negative
// deltaQ consumes capacity (Commit); positive restores it (Release).
func (tl *Timeline) apply(start, dur core.Time, deltaQ int) error {
	if dur <= 0 || start < 0 {
		return ErrBadWindow
	}
	end := windowEnd(start, dur)
	if end != core.Infinity && end <= start {
		// start+dur overflowed past the Infinity sentinel; reject before
		// any mutation rather than operate on an inverted window.
		return ErrBadWindow
	}
	if deltaQ < 0 && tl.MinAvailable(start, end) < -deltaQ {
		return fmt.Errorf("%w: need %d on [%v,%v), min available %d",
			ErrInsufficient, -deltaQ, start, end, tl.MinAvailable(start, end))
	}
	if deltaQ > 0 {
		// Guard against releasing capacity that was never committed.
		max := tl.avail[tl.segIndex(start)]
		for i := tl.segIndex(start) + 1; i < len(tl.times) && tl.times[i] < end; i++ {
			if tl.avail[i] > max {
				max = tl.avail[i]
			}
		}
		if max+deltaQ > tl.m {
			return fmt.Errorf("%w: releasing %d would exceed m=%d", ErrOverRelease, deltaQ, tl.m)
		}
	}
	lo := tl.ensureBreak(start)
	hi := len(tl.times) // exclusive
	if end != core.Infinity {
		hi = tl.ensureBreak(end)
		// ensureBreak(end) may have shifted lo's index if end < start is
		// impossible; end > start so lo stays valid.
	}
	for i := lo; i < hi && i < len(tl.times); i++ {
		if end != core.Infinity && tl.times[i] >= end {
			break
		}
		tl.avail[i] += deltaQ
	}
	tl.coalesce(lo, hi)
	return nil
}

// Commit consumes q processors over [start, start+dur). It returns
// ErrInsufficient (leaving the timeline unchanged) if the window does not
// have q processors available throughout.
func (tl *Timeline) Commit(start, dur core.Time, q int) error {
	if q < 0 {
		return fmt.Errorf("profile: negative commit %d", q)
	}
	if q == 0 {
		return nil
	}
	return tl.apply(start, dur, -q)
}

// Release restores q processors over [start, start+dur), undoing a Commit.
// It returns ErrOverRelease if this would lift capacity above m anywhere in
// the window.
func (tl *Timeline) Release(start, dur core.Time, q int) error {
	if q < 0 {
		return fmt.Errorf("profile: negative release %d", q)
	}
	if q == 0 {
		return nil
	}
	return tl.apply(start, dur, q)
}

// NextBreakpoint returns the smallest breakpoint strictly greater than t,
// or (0, false) if none exists. Event-driven schedulers advance their clock
// with this: capacity (and hence any job's feasibility-at-now) only changes
// at breakpoints.
func (tl *Timeline) NextBreakpoint(t core.Time) (core.Time, bool) {
	i := sort.Search(len(tl.times), func(i int) bool { return tl.times[i] > t })
	if i == len(tl.times) {
		return 0, false
	}
	return tl.times[i], true
}

// Breakpoints returns a copy of all breakpoint times.
func (tl *Timeline) Breakpoints() []core.Time {
	return append([]core.Time(nil), tl.times...)
}

// NumSegments returns the number of constant segments.
func (tl *Timeline) NumSegments() int { return len(tl.times) }

// FreeArea returns the integral of available capacity over [t0, t1).
// t1 must be finite.
func (tl *Timeline) FreeArea(t0, t1 core.Time) int64 {
	if t0 < 0 || t1 == core.Infinity || t0 > t1 {
		panic(ErrBadWindow)
	}
	if t0 == t1 {
		return 0
	}
	var area int64
	i := tl.segIndex(t0)
	for ; i < len(tl.times); i++ {
		segStart := core.MaxTime(tl.times[i], t0)
		segEnd := core.MinTime(tl.segEnd(i), t1)
		if segStart >= t1 {
			break
		}
		if segEnd > segStart {
			area += int64(segEnd-segStart) * int64(tl.avail[i])
		}
	}
	return area
}

// FirstTimeWithFreeArea returns the smallest t such that FreeArea(0, t) >=
// w. The boolean is false if the total area never reaches w, which can only
// happen when the final capacity is 0.
func (tl *Timeline) FirstTimeWithFreeArea(w int64) (core.Time, bool) {
	if w <= 0 {
		return 0, true
	}
	var acc int64
	for i := range tl.times {
		end := tl.segEnd(i)
		a := tl.avail[i]
		if end == core.Infinity {
			if a == 0 {
				return 0, false
			}
			need := w - acc
			steps := (need + int64(a) - 1) / int64(a)
			return tl.times[i] + core.Time(steps), true
		}
		segArea := int64(end-tl.times[i]) * int64(a)
		if acc+segArea >= w {
			need := w - acc
			steps := (need + int64(a) - 1) / int64(a)
			return tl.times[i] + core.Time(steps), true
		}
		acc += segArea
	}
	return 0, false // unreachable: last segment always infinite
}

// String renders the timeline's segments for debugging.
func (tl *Timeline) String() string {
	s := ""
	for i := range tl.times {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("[%v,%v)=%d", tl.times[i], tl.segEnd(i), tl.avail[i])
	}
	return s
}
