package restree

import (
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/profile"
)

// checkInvariants verifies the structural invariants of the tree: AVL
// balance, correct aggregates, contiguous tiling of [0, +inf) by strictly
// increasing canonical (uncoalescable) segments, and capacities in [0, m].
func checkInvariants(t *testing.T, tr *Tree) {
	t.Helper()
	if tr.root == nil {
		t.Fatal("empty tree")
	}
	var segs []*node
	var verify func(n *node) (h, mn, mx int, lo, hi core.Time)
	verify = func(n *node) (int, int, int, core.Time, core.Time) {
		h, mn, mx, lo, hi := 1, n.avail, n.avail, n.start, n.end
		if n.left != nil {
			lh, lmn, lmx, llo, lhi := verify(n.left)
			if lhi != n.start {
				t.Fatalf("left subtree of [%v,%v) ends at %v, want %v", n.start, n.end, lhi, n.start)
			}
			h = max(h, lh+1)
			mn, mx, lo = min(mn, lmn), max(mx, lmx), llo
		}
		segs = append(segs, n)
		if n.right != nil {
			rh, rmn, rmx, rlo, rhi := verify(n.right)
			if rlo != n.end {
				t.Fatalf("right subtree of [%v,%v) starts at %v, want %v", n.start, n.end, rlo, n.end)
			}
			h = max(h, rh+1)
			mn, mx, hi = min(mn, rmn), max(mx, rmx), rhi
		}
		if bf := height(n.left) - height(n.right); bf < -1 || bf > 1 {
			t.Fatalf("unbalanced node [%v,%v): bf=%d", n.start, n.end, bf)
		}
		if n.height != h || n.mn != mn || n.mx != mx || n.spanLo != lo || n.spanHi != hi {
			t.Fatalf("stale aggregates at [%v,%v): h=%d/%d mn=%d/%d mx=%d/%d span=[%v,%v)/[%v,%v)",
				n.start, n.end, n.height, h, n.mn, mn, n.mx, mx, n.spanLo, n.spanHi, lo, hi)
		}
		return h, mn, mx, lo, hi
	}
	_, _, _, lo, hi := verify(tr.root)
	if lo != 0 || hi != core.Infinity {
		t.Fatalf("tree tiles [%v,%v), want [0,inf)", lo, hi)
	}
	if len(segs) != tr.size {
		t.Fatalf("size=%d but %d segments", tr.size, len(segs))
	}
	for i, n := range segs {
		if n.start >= n.end {
			t.Fatalf("degenerate segment [%v,%v)", n.start, n.end)
		}
		if n.avail < 0 || n.avail > tr.m {
			t.Fatalf("segment [%v,%v) capacity %d outside [0,%d]", n.start, n.end, n.avail, tr.m)
		}
		if i > 0 && segs[i-1].avail == n.avail {
			t.Fatalf("uncoalesced neighbours at %v: %v", n.start, tr)
		}
	}
}

func TestNewTree(t *testing.T) {
	tr := New(16)
	checkInvariants(t, tr)
	if tr.CapacityAt(0) != 16 || tr.CapacityAt(1<<40) != 16 {
		t.Fatal("constant tree wrong")
	}
	if tr.M() != 16 || tr.NumSegments() != 1 {
		t.Fatal("metadata wrong")
	}
	if _, ok := tr.NextBreakpoint(0); ok {
		t.Fatal("constant tree has no breakpoint after 0")
	}
}

func TestCommitReleaseRoundTrip(t *testing.T) {
	tr := New(10)
	if err := tr.Commit(5, 10, 4); err != nil {
		t.Fatal(err)
	}
	checkInvariants(t, tr)
	if tr.CapacityAt(4) != 10 || tr.CapacityAt(5) != 6 || tr.CapacityAt(14) != 6 || tr.CapacityAt(15) != 10 {
		t.Fatalf("after commit: %v", tr)
	}
	if tr.NumSegments() != 3 {
		t.Fatalf("want 3 segments, got %v", tr)
	}
	if err := tr.Release(5, 10, 4); err != nil {
		t.Fatal(err)
	}
	checkInvariants(t, tr)
	if tr.NumSegments() != 1 || tr.CapacityAt(7) != 10 {
		t.Fatalf("release did not restore: %v", tr)
	}
}

func TestCommitInsufficientLeavesTreeUnchanged(t *testing.T) {
	tr := New(4)
	if err := tr.Commit(0, 10, 3); err != nil {
		t.Fatal(err)
	}
	before := tr.String()
	if err := tr.Commit(5, 10, 2); !errors.Is(err, profile.ErrInsufficient) {
		t.Fatalf("got %v, want ErrInsufficient", err)
	}
	if tr.String() != before {
		t.Fatalf("failed commit mutated tree: %v", tr)
	}
	checkInvariants(t, tr)
}

func TestOverRelease(t *testing.T) {
	tr := New(4)
	if err := tr.Release(0, 10, 1); !errors.Is(err, profile.ErrOverRelease) {
		t.Fatalf("got %v, want ErrOverRelease", err)
	}
	checkInvariants(t, tr)
}

func TestInfiniteCommit(t *testing.T) {
	tr := New(8)
	if err := tr.Commit(100, core.Infinity, 3); err != nil {
		t.Fatal(err)
	}
	checkInvariants(t, tr)
	if tr.CapacityAt(99) != 8 || tr.CapacityAt(1<<50) != 5 {
		t.Fatalf("infinite commit wrong: %v", tr)
	}
	if got, ok := tr.EarliestFit(6, 10, 0); !ok || got != 0 {
		// [0,100) has 8 free, so a width-6 job fits immediately.
		t.Fatalf("EarliestFit(6,10,0) = %v,%v want 0,true", got, ok)
	}
	if _, ok := tr.EarliestFit(6, 10, 95); ok {
		// Past t=95 every window touches the infinite 5-capacity tail.
		t.Fatal("width 6 can never fit from t=95")
	}
}

func TestEarliestFitSkipsBlockedSegments(t *testing.T) {
	tr := New(8)
	// Reservations leaving capacity 2 on [10,20) and [40,50).
	for _, w := range []core.Time{10, 40} {
		if err := tr.Commit(w, 10, 6); err != nil {
			t.Fatal(err)
		}
	}
	cases := []struct {
		q         int
		dur, from core.Time
		want      core.Time
	}{
		{2, 5, 0, 0},    // fits immediately at low width
		{3, 12, 5, 20},  // straddles the first reservation → the [20,40) gap
		{8, 5, 6, 20},   // full machine: earliest window clear of reservation 1
		{8, 25, 0, 50},  // long full-machine job must clear both
		{3, 25, 0, 50},  // [20,40) gap too short for dur=25, must clear both
		{3, 10, 35, 50}, // notBefore too deep in the gap to finish by 40
		{6, 1, 0, 0},    // short job before the first reservation
	}
	for _, c := range cases {
		got, ok := tr.EarliestFit(c.q, c.dur, c.from)
		if !ok || got != c.want {
			t.Errorf("EarliestFit(q=%d,dur=%v,from=%v) = %v,%v want %v", c.q, c.dur, c.from, got, ok, c.want)
		}
	}
	if _, ok := tr.EarliestFit(9, 1, 0); ok {
		t.Error("width 9 cannot ever fit on m=8")
	}
}

// TestOverflowingWindowRejected pins the overflow guard: a finite window
// whose end wraps past the Infinity sentinel is refused with ErrBadWindow
// before any mutation, identically on both backends.
func TestOverflowingWindowRejected(t *testing.T) {
	tr := New(8)
	tl := profile.New(8)
	for _, op := range []struct {
		name string
		f    func() (error, error)
	}{
		{"commit", func() (error, error) {
			return tr.Commit(core.Infinity-2, 5, 1), tl.Commit(core.Infinity-2, 5, 1)
		}},
		{"release", func() (error, error) {
			return tr.Release(core.Infinity-2, 5, 1), tl.Release(core.Infinity-2, 5, 1)
		}},
	} {
		errT, errA := op.f()
		if !errors.Is(errT, profile.ErrBadWindow) || !errors.Is(errA, profile.ErrBadWindow) {
			t.Fatalf("%s near Infinity: tree %v, array %v; want ErrBadWindow from both", op.name, errT, errA)
		}
	}
	if tr.NumSegments() != 1 || tl.NumSegments() != 1 {
		t.Fatalf("rejected windows must not mutate: tree %v, array %v", tr, tl)
	}
	checkInvariants(t, tr)
}

func TestFromReservationsOversubscribed(t *testing.T) {
	res := []core.Reservation{
		{ID: 0, Procs: 5, Start: 0, Len: 10},
		{ID: 1, Procs: 4, Start: 5, Len: 10},
	}
	if _, err := FromReservations(8, res); !errors.Is(err, profile.ErrInsufficient) {
		t.Fatalf("got %v, want ErrInsufficient", err)
	}
}

func TestCloneIsIndependent(t *testing.T) {
	tr := New(6)
	if err := tr.Commit(3, 7, 2); err != nil {
		t.Fatal(err)
	}
	cp := tr.Clone()
	if err := cp.Commit(0, 100, 4); err != nil {
		t.Fatal(err)
	}
	if tr.CapacityAt(0) != 6 || tr.String() == cp.String() {
		t.Fatalf("clone shares state: %v vs %v", tr, cp)
	}
	checkInvariants(t, tr)
	checkInvariants(t, cp)
}

func TestBackendRegistered(t *testing.T) {
	idx, err := profile.NewIndex("tree", 12)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := idx.(*Tree); !ok {
		t.Fatalf("backend %q built %T, want *restree.Tree", "tree", idx)
	}
	if idx.M() != 12 {
		t.Fatal("wrong machine size")
	}
}

func TestFreeAreaAndFirstTime(t *testing.T) {
	tr := New(4)
	if err := tr.Commit(2, 3, 4); err != nil { // capacity 0 on [2,5)
		t.Fatal(err)
	}
	if got := tr.FreeArea(0, 10); got != 2*4+5*4 {
		t.Fatalf("FreeArea(0,10) = %d", got)
	}
	at, ok := tr.FirstTimeWithFreeArea(9)
	if !ok || at != 6 { // 8 by t=2, stalled to t=5, 9th unit during [5,6)
		t.Fatalf("FirstTimeWithFreeArea(9) = %v,%v", at, ok)
	}
	tr2 := New(3)
	if err := tr2.Commit(0, core.Infinity, 3); err != nil {
		t.Fatal(err)
	}
	if _, ok := tr2.FirstTimeWithFreeArea(1); ok {
		t.Fatal("zero-capacity tree cannot accumulate area")
	}
}
