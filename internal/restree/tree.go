// Package restree implements the "tree" capacity-index backend: a balanced
// (AVL) augmented interval tree over the segments of the available-capacity
// step function, after the enhanced-balanced-tree reservation data
// structures of de Assunção et al.
//
// Each node owns one maximal constant segment [start, end) of the step
// function, keyed by start, and carries subtree aggregates — minimum and
// maximum available capacity plus the contiguous time span the subtree
// covers. The aggregates buy the two operations that dominate scheduling
// with reservations:
//
//   - admission checks (MinAvailable over a window) descend past whole
//     subtrees that lie outside the window, O(log n);
//   - earliest-fit queries (FindSlot / EarliestFit) enumerate only the
//     *blocking* segments — subtrees whose min capacity is already >= q are
//     pruned wholesale — instead of scanning every segment like the array
//     Timeline.
//
// Mutations (Commit/Release) split at most two segments, update the covered
// range, and re-coalesce at the two window boundaries, so the tree
// maintains exactly the same canonical form as profile.Timeline: strictly
// increasing breakpoints and no equal-valued neighbours. Every observable
// — capacities, slots, breakpoints, segment counts, free areas and error
// conditions — therefore agrees bit-for-bit with the array backend, which
// the differential fuzz harness in this package enforces.
//
// The package registers itself with the profile backend registry under the
// name "tree"; select it with -backend=tree on the CLIs or via
// profile.NewIndex("tree", m).
package restree

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/core"
	"repro/internal/profile"
)

func init() {
	profile.RegisterBackend("tree", func(m int) profile.CapacityIndex { return New(m) })
}

// node is one segment [start, end) of the step function plus AVL and
// aggregate bookkeeping. In-order traversal yields the segments in time
// order, and they tile [0, +inf) without gaps.
type node struct {
	start, end core.Time // end == core.Infinity on the final segment
	avail      int       // capacity available on [start, end)

	left, right *node
	height      int

	// Subtree aggregates, maintained by update():
	mn, mx         int       // min/max avail over the subtree
	spanLo, spanHi core.Time // contiguous window the subtree tiles
}

func height(n *node) int {
	if n == nil {
		return 0
	}
	return n.height
}

// update recomputes n's height and aggregates from its children.
func (n *node) update() {
	n.height = 1 + max(height(n.left), height(n.right))
	n.mn, n.mx = n.avail, n.avail
	n.spanLo, n.spanHi = n.start, n.end
	if l := n.left; l != nil {
		n.mn = min(n.mn, l.mn)
		n.mx = max(n.mx, l.mx)
		n.spanLo = l.spanLo
	}
	if r := n.right; r != nil {
		n.mn = min(n.mn, r.mn)
		n.mx = max(n.mx, r.mx)
		n.spanHi = r.spanHi
	}
}

func rotateLeft(n *node) *node {
	r := n.right
	n.right = r.left
	r.left = n
	n.update()
	r.update()
	return r
}

func rotateRight(n *node) *node {
	l := n.left
	n.left = l.right
	l.right = n
	n.update()
	l.update()
	return l
}

// rebalance restores the AVL invariant at n after a child mutation.
func rebalance(n *node) *node {
	n.update()
	switch bf := height(n.left) - height(n.right); {
	case bf > 1:
		if height(n.left.left) < height(n.left.right) {
			n.left = rotateLeft(n.left)
		}
		return rotateRight(n)
	case bf < -1:
		if height(n.right.right) < height(n.right.left) {
			n.right = rotateRight(n.right)
		}
		return rotateLeft(n)
	}
	return n
}

func insert(n, nn *node) *node {
	if n == nil {
		nn.update()
		return nn
	}
	if nn.start < n.start {
		n.left = insert(n.left, nn)
	} else {
		n.right = insert(n.right, nn)
	}
	return rebalance(n)
}

// remove deletes the node keyed by start; the key must be present.
func remove(n *node, start core.Time) *node {
	if n == nil {
		panic("restree: removing missing segment")
	}
	switch {
	case start < n.start:
		n.left = remove(n.left, start)
	case start > n.start:
		n.right = remove(n.right, start)
	default:
		if n.left == nil {
			return n.right
		}
		if n.right == nil {
			return n.left
		}
		s := n.right
		for s.left != nil {
			s = s.left
		}
		n.start, n.end, n.avail = s.start, s.end, s.avail
		n.right = remove(n.right, s.start)
	}
	return rebalance(n)
}

// setEnd rewrites the end of the segment keyed by start and refreshes the
// span aggregates along the search path.
func setEnd(n *node, start, end core.Time) {
	if n == nil {
		panic("restree: setEnd on missing segment")
	}
	switch {
	case start < n.start:
		setEnd(n.left, start, end)
	case start > n.start:
		setEnd(n.right, start, end)
	default:
		n.end = end
	}
	n.update()
}

// Tree is the balanced capacity index. The zero value is not usable;
// construct with New or FromReservations.
type Tree struct {
	m    int
	root *node
	size int
}

// Tree implements the backend seam.
var _ profile.CapacityIndex = (*Tree)(nil)

// New returns a tree with constant capacity m on [0, +inf).
func New(m int) *Tree {
	if m < 0 {
		panic("restree: negative capacity")
	}
	t := &Tree{m: m, size: 1}
	t.root = insert(nil, &node{start: 0, end: core.Infinity, avail: m})
	return t
}

// FromReservations returns the availability left by the reservations on an
// m-processor machine, or a wrapped profile.ErrInsufficient if they
// oversubscribe it.
func FromReservations(m int, res []core.Reservation) (*Tree, error) {
	t := New(m)
	for _, r := range res {
		if err := t.Commit(r.Start, r.Len, r.Procs); err != nil {
			return nil, fmt.Errorf("restree: reservation %d: %w", r.ID, err)
		}
	}
	return t, nil
}

// M returns the machine size the tree was created with.
func (t *Tree) M() int { return t.m }

// NumSegments returns the number of constant segments.
func (t *Tree) NumSegments() int { return t.size }

func cloneNode(n *node) *node {
	if n == nil {
		return nil
	}
	c := *n
	c.left = cloneNode(n.left)
	c.right = cloneNode(n.right)
	return &c
}

// Clone returns an independent deep copy.
func (t *Tree) Clone() *Tree {
	return &Tree{m: t.m, root: cloneNode(t.root), size: t.size}
}

// CloneIndex implements profile.CapacityIndex.
func (t *Tree) CloneIndex() profile.CapacityIndex { return t.Clone() }

// seg returns the segment containing time t (t >= 0): the node with the
// greatest start <= t.
func (t *Tree) seg(at core.Time) *node {
	var best *node
	for n := t.root; n != nil; {
		if n.start <= at {
			best = n
			n = n.right
		} else {
			n = n.left
		}
	}
	return best
}

// CapacityAt returns the capacity available at time t (the paper-facing
// name for AvailableAt).
func (t *Tree) CapacityAt(at core.Time) int { return t.AvailableAt(at) }

// AvailableAt implements profile.CapacityIndex.
func (t *Tree) AvailableAt(at core.Time) int {
	if at < 0 {
		at = 0
	}
	return t.seg(at).avail
}

// windowEnd computes start+dur treating dur == Infinity as unbounded.
func windowEnd(start, dur core.Time) core.Time {
	if dur == core.Infinity {
		return core.Infinity
	}
	return start + dur
}

// minIn returns the minimum avail over segments intersecting [a, b),
// pruning subtrees wholly outside the window and reading the aggregate on
// subtrees wholly inside it.
func minIn(n *node, a, b core.Time) int {
	if n == nil || n.spanHi <= a || n.spanLo >= b {
		return math.MaxInt
	}
	if n.spanLo >= a && n.spanHi <= b {
		return n.mn
	}
	v := minIn(n.left, a, b)
	if n.end > a && n.start < b {
		v = min(v, n.avail)
	}
	return min(v, minIn(n.right, a, b))
}

// maxIn is minIn's dual, used to validate releases.
func maxIn(n *node, a, b core.Time) int {
	if n == nil || n.spanHi <= a || n.spanLo >= b {
		return math.MinInt
	}
	if n.spanLo >= a && n.spanHi <= b {
		return n.mx
	}
	v := maxIn(n.left, a, b)
	if n.end > a && n.start < b {
		v = max(v, n.avail)
	}
	return max(v, maxIn(n.right, a, b))
}

// MinIn returns the minimum capacity over [a, b) — the paper-facing name
// for MinAvailable.
func (t *Tree) MinIn(a, b core.Time) int { return t.MinAvailable(a, b) }

// MinAvailable implements profile.CapacityIndex. It panics if t0 >= t1 or
// t0 < 0, mirroring profile.Timeline.
func (t *Tree) MinAvailable(t0, t1 core.Time) int {
	if t0 < 0 || t0 >= t1 {
		panic(profile.ErrBadWindow)
	}
	return minIn(t.root, t0, t1)
}

// CanPlace reports whether q processors are available during the entire
// window [start, start+dur).
func (t *Tree) CanPlace(start, dur core.Time, q int) bool {
	if dur <= 0 {
		panic(profile.ErrBadWindow)
	}
	return t.MinAvailable(start, windowEnd(start, dur)) >= q
}

// firstBlocking returns the earliest segment with end > after and
// avail < q, or nil. Subtrees whose min capacity is >= q are skipped
// wholesale — this aggregate prune is what makes EarliestFit sub-linear.
func firstBlocking(n *node, after core.Time, q int) *node {
	if n == nil || n.mn >= q || n.spanHi <= after {
		return nil
	}
	if b := firstBlocking(n.left, after, q); b != nil {
		return b
	}
	if n.avail < q && n.end > after {
		return n
	}
	return firstBlocking(n.right, after, q)
}

// EarliestFit returns the earliest time s >= notBefore such that q
// processors are available during all of [s, s+dur): the de Assunção-style
// alternative-offer query. The boolean is false only when the final
// (unbounded) capacity is below q and no finite window fits.
//
// The search walks the *blocking* segments only: from a candidate start s,
// the first segment with capacity < q and end > s either starts at or past
// s+dur (so s fits) or forces s to jump to its end. Each probe is one
// aggregate-pruned descent, so a query over a profile with b blocking
// segments past s costs O((b+1)·log n) regardless of how many
// high-capacity segments lie between them.
func (t *Tree) EarliestFit(q int, dur, notBefore core.Time) (core.Time, bool) {
	if dur <= 0 {
		panic(profile.ErrBadWindow)
	}
	s := notBefore
	if s < 0 {
		s = 0
	}
	for {
		b := firstBlocking(t.root, s, q)
		if b == nil || b.start >= windowEnd(s, dur) {
			return s, true
		}
		if b.end == core.Infinity {
			return 0, false
		}
		s = b.end
	}
}

// FindSlot implements profile.CapacityIndex in terms of EarliestFit.
func (t *Tree) FindSlot(ready core.Time, q int, dur core.Time) (core.Time, bool) {
	return t.EarliestFit(q, dur, ready)
}

// ensureBreak splits the segment containing t so that a segment starts
// exactly at t. No-op if one already does. t must be finite and >= 0.
func (t *Tree) ensureBreak(at core.Time) {
	s := t.seg(at)
	if s.start == at {
		return
	}
	end, avail := s.end, s.avail
	setEnd(t.root, s.start, at)
	t.root = insert(t.root, &node{start: at, end: end, avail: avail})
	t.size++
}

// addRange adds delta to every segment contained in [lo, hi). Callers must
// have ensured breaks at lo and (when finite) hi, so containment and
// overlap coincide and span pruning is exact.
func addRange(n *node, lo, hi core.Time, delta int) {
	if n == nil || n.spanHi <= lo || n.spanLo >= hi {
		return
	}
	addRange(n.left, lo, hi, delta)
	addRange(n.right, lo, hi, delta)
	if n.start >= lo && n.start < hi {
		n.avail += delta
	}
	n.update()
}

// mergeAt re-coalesces the boundary at t: if the segment starting at t has
// the same capacity as its predecessor, the predecessor absorbs it. After
// a uniform delta over [lo, hi) only the two window boundaries can merge —
// interior neighbours differed before the delta and still do.
func (t *Tree) mergeAt(at core.Time) {
	if at <= 0 || at == core.Infinity {
		return
	}
	s := t.seg(at)
	if s == nil || s.start != at {
		return
	}
	p := t.seg(at - 1)
	if p == nil || p.avail != s.avail {
		return
	}
	pStart, sEnd := p.start, s.end
	t.root = remove(t.root, at)
	t.size--
	setEnd(t.root, pStart, sEnd)
}

// apply adds deltaQ to the capacity over [start, start+dur), validating
// against the same bounds (and with the same error identities) as the
// array Timeline.
func (t *Tree) apply(start, dur core.Time, deltaQ int) error {
	if dur <= 0 || start < 0 {
		return profile.ErrBadWindow
	}
	end := windowEnd(start, dur)
	if end != core.Infinity && end <= start {
		// start+dur overflowed past the Infinity sentinel; reject before
		// any mutation rather than split on an inverted window.
		return profile.ErrBadWindow
	}
	if deltaQ < 0 {
		if m := minIn(t.root, start, end); m < -deltaQ {
			return fmt.Errorf("%w: need %d on [%v,%v), min available %d",
				profile.ErrInsufficient, -deltaQ, start, end, m)
		}
	} else {
		if m := maxIn(t.root, start, end); m+deltaQ > t.m {
			return fmt.Errorf("%w: releasing %d would exceed m=%d",
				profile.ErrOverRelease, deltaQ, t.m)
		}
	}
	t.ensureBreak(start)
	if end != core.Infinity {
		t.ensureBreak(end)
	}
	addRange(t.root, start, end, deltaQ)
	t.mergeAt(start)
	if end != core.Infinity {
		t.mergeAt(end)
	}
	return nil
}

// Commit consumes q processors over [start, start+dur). It returns a
// wrapped profile.ErrInsufficient (leaving the tree unchanged) if the
// window does not have q processors available throughout.
func (t *Tree) Commit(start, dur core.Time, q int) error {
	if q < 0 {
		return fmt.Errorf("restree: negative commit %d", q)
	}
	if q == 0 {
		return nil
	}
	return t.apply(start, dur, -q)
}

// Release restores q processors over [start, start+dur), undoing a Commit.
// It returns a wrapped profile.ErrOverRelease if this would lift capacity
// above m anywhere in the window.
func (t *Tree) Release(start, dur core.Time, q int) error {
	if q < 0 {
		return fmt.Errorf("restree: negative release %d", q)
	}
	if q == 0 {
		return nil
	}
	return t.apply(start, dur, q)
}

// NextBreakpoint returns the smallest breakpoint strictly greater than at,
// or (0, false) if none exists.
func (t *Tree) NextBreakpoint(at core.Time) (core.Time, bool) {
	var best core.Time
	found := false
	for n := t.root; n != nil; {
		if n.start > at {
			best, found = n.start, true
			n = n.left
		} else {
			n = n.right
		}
	}
	return best, found
}

// walk visits the segments in time order until the callback returns false.
func walk(n *node, visit func(*node) bool) bool {
	if n == nil {
		return true
	}
	return walk(n.left, visit) && visit(n) && walk(n.right, visit)
}

// Breakpoints returns a copy of all breakpoint times.
func (t *Tree) Breakpoints() []core.Time {
	out := make([]core.Time, 0, t.size)
	walk(t.root, func(n *node) bool {
		out = append(out, n.start)
		return true
	})
	return out
}

// FreeArea returns the integral of available capacity over [t0, t1).
// t1 must be finite.
func (t *Tree) FreeArea(t0, t1 core.Time) int64 {
	if t0 < 0 || t1 == core.Infinity || t0 > t1 {
		panic(profile.ErrBadWindow)
	}
	return freeArea(t.root, t0, t1)
}

func freeArea(n *node, a, b core.Time) int64 {
	if n == nil || n.spanHi <= a || n.spanLo >= b {
		return 0
	}
	area := freeArea(n.left, a, b) + freeArea(n.right, a, b)
	lo, hi := core.MaxTime(n.start, a), core.MinTime(n.end, b)
	if hi > lo {
		area += int64(hi-lo) * int64(n.avail)
	}
	return area
}

// FirstTimeWithFreeArea returns the smallest t such that FreeArea(0, t) >=
// w. The boolean is false if the total area never reaches w, which can
// only happen when the final capacity is 0.
func (t *Tree) FirstTimeWithFreeArea(w int64) (core.Time, bool) {
	if w <= 0 {
		return 0, true
	}
	var acc int64
	var at core.Time
	found := false
	walk(t.root, func(n *node) bool {
		if n.end == core.Infinity {
			if n.avail == 0 {
				return false
			}
			steps := (w - acc + int64(n.avail) - 1) / int64(n.avail)
			at, found = n.start+core.Time(steps), true
			return false
		}
		segArea := int64(n.end-n.start) * int64(n.avail)
		if acc+segArea >= w {
			steps := (w - acc + int64(n.avail) - 1) / int64(n.avail)
			at, found = n.start+core.Time(steps), true
			return false
		}
		acc += segArea
		return true
	})
	return at, found
}

// String renders the tree's segments in the same format as
// profile.Timeline, for debugging and differential assertions.
func (t *Tree) String() string {
	var b strings.Builder
	first := true
	walk(t.root, func(n *node) bool {
		if !first {
			b.WriteByte(' ')
		}
		first = false
		fmt.Fprintf(&b, "[%v,%v)=%d", n.start, n.end, n.avail)
		return true
	})
	return b.String()
}
