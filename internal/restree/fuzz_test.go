package restree

import (
	"testing"

	"repro/internal/core"
	"repro/internal/profile"
)

// FuzzTreeMatchesTimeline is the differential twin of
// profile.FuzzTimelineOps: the same op-stream decoding drives the tree and
// the array timeline side by side, and every observation — commit/release
// outcomes, point capacities, earliest-fit slots, breakpoints and the full
// canonical segment rendering — must agree exactly. Coverage-guided
// exploration shakes out the segment-algebra corners (splits at existing
// breakpoints, boundary merges, infinite tails) that seeded random streams
// reach rarely.
func FuzzTreeMatchesTimeline(f *testing.F) {
	f.Add([]byte{1, 0, 5, 2, 0, 10, 3, 1})
	f.Add([]byte{2, 3, 3, 1, 1, 3, 3, 1, 0, 0, 1, 1})
	f.Add([]byte{0, 0, 15, 4, 0, 5, 7, 2, 2, 1, 9, 3})
	f.Fuzz(func(t *testing.T, ops []byte) {
		const horizon = 48
		const m = 5
		tr := New(m)
		tl := profile.New(m)
		type iv struct {
			s, d core.Time
			q    int
		}
		var committed []iv
		for len(ops) >= 4 {
			op, a, b, c := ops[0]%3, ops[1], ops[2], ops[3]
			ops = ops[4:]
			start := core.Time(a % horizon)
			dur := core.Time(b%16 + 1)
			q := int(c%m + 1)
			if start+dur > horizon {
				dur = horizon - start
				if dur <= 0 {
					continue
				}
			}
			switch op {
			case 0: // commit on both
				errT := tr.Commit(start, dur, q)
				errA := tl.Commit(start, dur, q)
				if (errT == nil) != (errA == nil) {
					t.Fatalf("commit(%v,%v,%d): tree %v, array %v", start, dur, q, errT, errA)
				}
				if errT == nil {
					committed = append(committed, iv{start, dur, q})
				}
			case 1: // release the oldest commitment on both
				if len(committed) == 0 {
					continue
				}
				cmt := committed[0]
				committed = committed[1:]
				if err := tr.Release(cmt.s, cmt.d, cmt.q); err != nil {
					t.Fatalf("tree release of prior commit failed: %v", err)
				}
				if err := tl.Release(cmt.s, cmt.d, cmt.q); err != nil {
					t.Fatalf("array release of prior commit failed: %v", err)
				}
			case 2: // probe
				if got, want := tr.CapacityAt(start), tl.AvailableAt(start); got != want {
					t.Fatalf("CapacityAt(%v) = %d, array %d", start, got, want)
				}
				gotT, gotOK := tr.EarliestFit(q, dur, start)
				refT, refOK := tl.FindSlot(start, q, dur)
				if gotOK != refOK || (gotOK && gotT != refT) {
					t.Fatalf("EarliestFit(q=%d,dur=%v,from=%v) = %v,%v; array %v,%v",
						q, dur, start, gotT, gotOK, refT, refOK)
				}
				if got, want := tr.MinIn(start, start+dur), tl.MinAvailable(start, start+dur); got != want {
					t.Fatalf("MinIn(%v,%v) = %d, array %d", start, start+dur, got, want)
				}
			}
			if tr.String() != tl.String() {
				t.Fatalf("canonical forms diverge:\ntree:  %v\narray: %v", tr, tl)
			}
		}
		checkInvariants(t, tr)
	})
}
