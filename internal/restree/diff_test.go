package restree

import (
	"testing"

	"repro/internal/core"
	"repro/internal/profile"
	"repro/internal/rng"
)

// compareAll asserts that every observation the CapacityIndex interface
// offers agrees between the tree and the array timeline. Because both
// backends maintain the same canonical segment form, this includes the
// structural views (breakpoints, segment counts, String), not just the
// capacity function.
func compareAll(t *testing.T, tr *Tree, tl *profile.Timeline, horizon core.Time) {
	t.Helper()
	if tr.String() != tl.String() {
		t.Fatalf("segment forms diverge:\ntree:  %v\narray: %v", tr, tl)
	}
	if tr.NumSegments() != tl.NumSegments() {
		t.Fatalf("NumSegments %d vs %d", tr.NumSegments(), tl.NumSegments())
	}
	for at := core.Time(0); at < horizon; at++ {
		if g, w := tr.CapacityAt(at), tl.AvailableAt(at); g != w {
			t.Fatalf("CapacityAt(%v) = %d, array %d", at, g, w)
		}
		gbp, gok := tr.NextBreakpoint(at)
		wbp, wok := tl.NextBreakpoint(at)
		if gok != wok || (gok && gbp != wbp) {
			t.Fatalf("NextBreakpoint(%v) = %v,%v vs %v,%v", at, gbp, gok, wbp, wok)
		}
	}
	if g, w := tr.FreeArea(0, horizon), tl.FreeArea(0, horizon); g != w {
		t.Fatalf("FreeArea(0,%v) = %d, array %d", horizon, g, w)
	}
}

// TestDifferentialRandomOps drives the tree and the array timeline through
// identical random op streams — commits, releases of live commitments, and
// probe batches — and requires exact agreement after every step.
func TestDifferentialRandomOps(t *testing.T) {
	const (
		m       = 13
		horizon = 200
		rounds  = 400
	)
	for seed := uint64(1); seed <= 8; seed++ {
		r := rng.New(seed)
		tr := New(m)
		tl := profile.New(m)
		type iv struct {
			s, d core.Time
			q    int
		}
		var live []iv
		for i := 0; i < rounds; i++ {
			switch op := r.Intn(10); {
			case op < 5: // commit a random window
				w := iv{
					s: core.Time(r.Intn(horizon)),
					d: core.Time(r.Intn(40) + 1),
					q: r.Intn(m) + 1,
				}
				if r.Intn(20) == 0 {
					w.d = core.Infinity // occasional infinite reservation
				}
				errT := tr.Commit(w.s, w.d, w.q)
				errA := tl.Commit(w.s, w.d, w.q)
				if (errT == nil) != (errA == nil) {
					t.Fatalf("seed %d: Commit(%v,%v,%d): tree err %v, array err %v",
						seed, w.s, w.d, w.q, errT, errA)
				}
				if errT == nil {
					live = append(live, w)
				}
			case op < 8: // release a random live commitment
				if len(live) == 0 {
					continue
				}
				k := r.Intn(len(live))
				w := live[k]
				live = append(live[:k], live[k+1:]...)
				errT := tr.Release(w.s, w.d, w.q)
				errA := tl.Release(w.s, w.d, w.q)
				if errT != nil || errA != nil {
					t.Fatalf("seed %d: Release(%v,%v,%d): tree %v, array %v",
						seed, w.s, w.d, w.q, errT, errA)
				}
			default: // probe EarliestFit and MinIn
				ready := core.Time(r.Intn(horizon))
				q := r.Intn(m) + 1
				dur := core.Time(r.Intn(30) + 1)
				gs, gok := tr.EarliestFit(q, dur, ready)
				ws, wok := tl.FindSlot(ready, q, dur)
				if gok != wok || (gok && gs != ws) {
					t.Fatalf("seed %d: EarliestFit(q=%d,dur=%v,from=%v) = %v,%v; array %v,%v\ntree:  %v\narray: %v",
						seed, q, dur, ready, gs, gok, ws, wok, tr, tl)
				}
				if g, w := tr.MinIn(ready, ready+dur), tl.MinAvailable(ready, ready+dur); g != w {
					t.Fatalf("seed %d: MinIn(%v,%v) = %d, array %d", seed, ready, ready+dur, g, w)
				}
			}
			checkInvariants(t, tr)
			compareAll(t, tr, tl, horizon+64)
		}
	}
}

// TestDifferentialFromReservations checks the constructor path on random
// reservation sets, including oversubscribed ones.
func TestDifferentialFromReservations(t *testing.T) {
	for seed := uint64(1); seed <= 20; seed++ {
		r := rng.New(seed)
		m := r.Intn(32) + 1
		var res []core.Reservation
		for i := 0; i < r.Intn(30); i++ {
			res = append(res, core.Reservation{
				ID:    i,
				Procs: r.Intn(m) + 1,
				Start: core.Time(r.Intn(500)),
				Len:   core.Time(r.Intn(100) + 1),
			})
		}
		tr, errT := FromReservations(m, res)
		tl, errA := profile.FromReservations(m, res)
		if (errT == nil) != (errA == nil) {
			t.Fatalf("seed %d: tree err %v, array err %v", seed, errT, errA)
		}
		if errT == nil {
			checkInvariants(t, tr)
			compareAll(t, tr, tl, 700)
		}
	}
}
