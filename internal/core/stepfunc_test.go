package core

import (
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestStepFuncConstant(t *testing.T) {
	f := NewStepFunc(5)
	for _, tm := range []Time{0, 1, 100, 1 << 40} {
		if got := f.At(tm); got != 5 {
			t.Fatalf("At(%v) = %d, want 5", tm, got)
		}
	}
	if f.Max() != 5 {
		t.Fatalf("Max = %d, want 5", f.Max())
	}
	if f.Len() != 1 {
		t.Fatalf("Len = %d, want 1", f.Len())
	}
}

func TestUnavailabilityBasic(t *testing.T) {
	res := []Reservation{
		{ID: 0, Procs: 3, Start: 10, Len: 5},
		{ID: 1, Procs: 2, Start: 12, Len: 10},
	}
	u := UnavailabilityOf(res)
	cases := []struct {
		t    Time
		want int
	}{
		{0, 0}, {9, 0}, {10, 3}, {11, 3}, {12, 5}, {14, 5},
		{15, 2}, {21, 2}, {22, 0}, {100, 0},
	}
	for _, c := range cases {
		if got := u.At(c.t); got != c.want {
			t.Errorf("U(%v) = %d, want %d", c.t, got, c.want)
		}
	}
	if u.Max() != 5 {
		t.Errorf("Max = %d, want 5", u.Max())
	}
}

func TestUnavailabilityEmpty(t *testing.T) {
	u := UnavailabilityOf(nil)
	if u.At(0) != 0 || u.Max() != 0 || u.Len() != 1 {
		t.Fatalf("empty unavailability = %v", u)
	}
}

func TestUnavailabilityAdjacentMerge(t *testing.T) {
	// Two back-to-back reservations with equal width should produce one
	// merged plateau segment, not a spurious breakpoint.
	res := []Reservation{
		{ID: 0, Procs: 4, Start: 0, Len: 10},
		{ID: 1, Procs: 4, Start: 10, Len: 10},
	}
	u := UnavailabilityOf(res)
	if u.At(5) != 4 || u.At(15) != 4 || u.At(20) != 0 {
		t.Fatalf("unexpected values: %v", u)
	}
	if u.Len() != 2 { // [0,20)=4, [20,inf)=0
		t.Fatalf("expected 2 segments after merge, got %d: %v", u.Len(), u)
	}
}

func TestStepFuncMaxOn(t *testing.T) {
	res := []Reservation{
		{ID: 0, Procs: 3, Start: 10, Len: 5},
		{ID: 1, Procs: 7, Start: 20, Len: 5},
	}
	u := UnavailabilityOf(res)
	cases := []struct {
		t0, t1 Time
		want   int
	}{
		{0, 10, 0},
		{0, 11, 3},
		{10, 15, 3},
		{15, 20, 0},
		{0, 100, 7},
		{19, 21, 7},
		{25, 30, 0},
		{12, 13, 3},
	}
	for _, c := range cases {
		if got := u.MaxOn(c.t0, c.t1); got != c.want {
			t.Errorf("MaxOn(%v,%v) = %d, want %d", c.t0, c.t1, got, c.want)
		}
	}
}

func TestStepFuncMaxOnPanicsOnEmptyInterval(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MaxOn with t0>=t1 did not panic")
		}
	}()
	NewStepFunc(1).MaxOn(5, 5)
}

func TestStepFuncIntegral(t *testing.T) {
	res := []Reservation{{ID: 0, Procs: 2, Start: 5, Len: 10}}
	u := UnavailabilityOf(res)
	cases := []struct {
		t    Time
		want int64
	}{
		{0, 0}, {5, 0}, {6, 2}, {15, 20}, {20, 20}, {100, 20},
	}
	for _, c := range cases {
		if got := u.IntegralTo(c.t); got != c.want {
			t.Errorf("IntegralTo(%v) = %d, want %d", c.t, got, c.want)
		}
	}
}

func TestStepFuncNonIncreasing(t *testing.T) {
	dec := UnavailabilityOf([]Reservation{
		{ID: 0, Procs: 5, Start: 0, Len: 10},
		{ID: 1, Procs: 3, Start: 0, Len: 20},
	})
	if !dec.NonIncreasing() {
		t.Errorf("staircase release should be non-increasing: %v", dec)
	}
	inc := UnavailabilityOf([]Reservation{{ID: 0, Procs: 5, Start: 10, Len: 10}})
	if inc.NonIncreasing() {
		t.Errorf("future reservation should not be non-increasing: %v", inc)
	}
}

func TestStepFuncSegments(t *testing.T) {
	u := UnavailabilityOf([]Reservation{{ID: 0, Procs: 2, Start: 3, Len: 4}})
	if u.Len() != 3 {
		t.Fatalf("want 3 segments, got %d: %v", u.Len(), u)
	}
	s0, e0, v0 := u.Segment(0)
	if s0 != 0 || e0 != 3 || v0 != 0 {
		t.Errorf("segment 0 = (%v,%v,%d)", s0, e0, v0)
	}
	s2, e2, v2 := u.Segment(2)
	if s2 != 7 || e2 != Infinity || v2 != 0 {
		t.Errorf("segment 2 = (%v,%v,%d)", s2, e2, v2)
	}
	if u.FinalValue() != 0 {
		t.Errorf("FinalValue = %d", u.FinalValue())
	}
}

func TestStepFuncInfiniteReservation(t *testing.T) {
	u := UnavailabilityOf([]Reservation{{ID: 0, Procs: 3, Start: 5, Len: Infinity}})
	if u.At(4) != 0 || u.At(5) != 3 || u.At(1<<50) != 3 {
		t.Fatalf("infinite reservation mishandled: %v", u)
	}
	if u.FinalValue() != 3 {
		t.Fatalf("FinalValue = %d, want 3", u.FinalValue())
	}
}

// randomReservations builds a reproducible random reservation set.
func randomReservations(r *rng.PCG, n, maxProcs int, horizon Time) []Reservation {
	res := make([]Reservation, n)
	for i := range res {
		res[i] = Reservation{
			ID:    i,
			Procs: r.IntRange(1, maxProcs),
			Start: Time(r.Int63n(int64(horizon))),
			Len:   Time(r.Int63Range(1, int64(horizon)/4+1)),
		}
	}
	return res
}

func TestUnavailabilityMatchesBruteForce(t *testing.T) {
	r := rng.New(77)
	for trial := 0; trial < 200; trial++ {
		res := randomReservations(r, r.IntRange(0, 8), 5, 40)
		u := UnavailabilityOf(res)
		for tm := Time(0); tm < 60; tm++ {
			want := 0
			for _, rr := range res {
				if rr.Start <= tm && tm < rr.End() {
					want += rr.Procs
				}
			}
			if got := u.At(tm); got != want {
				t.Fatalf("trial %d: U(%v) = %d, want %d (res=%v)", trial, tm, got, want, res)
			}
		}
	}
}

func TestIntegralMatchesBruteForce(t *testing.T) {
	r := rng.New(78)
	for trial := 0; trial < 100; trial++ {
		res := randomReservations(r, r.IntRange(1, 6), 4, 30)
		u := UnavailabilityOf(res)
		var acc int64
		for tm := Time(0); tm <= 50; tm++ {
			if got := u.IntegralTo(tm); got != acc {
				t.Fatalf("trial %d: IntegralTo(%v) = %d, want %d", trial, tm, got, acc)
			}
			acc += int64(u.At(tm))
		}
	}
}

func TestStepFuncSegmentsAreCanonical(t *testing.T) {
	// Property: consecutive segments always carry different values and
	// strictly increasing start times.
	r := rng.New(79)
	f := func(seed uint32) bool {
		local := rng.New(uint64(seed) ^ r.Uint64())
		res := randomReservations(local, local.IntRange(0, 10), 6, 50)
		u := UnavailabilityOf(res)
		for i := 1; i < u.Len(); i++ {
			s0, _, v0 := u.Segment(i - 1)
			s1, _, v1 := u.Segment(i)
			if s1 <= s0 || v1 == v0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTimeHelpers(t *testing.T) {
	if MinTime(3, 5) != 3 || MinTime(5, 3) != 3 {
		t.Error("MinTime broken")
	}
	if MaxTime(3, 5) != 5 || MaxTime(5, 3) != 5 {
		t.Error("MaxTime broken")
	}
	if Infinity.String() != "inf" {
		t.Errorf("Infinity.String() = %q", Infinity.String())
	}
	if Time(42).String() != "42" {
		t.Errorf("Time(42).String() = %q", Time(42).String())
	}
}
