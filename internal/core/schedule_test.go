package core

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

func TestScheduleBasics(t *testing.T) {
	in := validInstance()
	s := NewSchedule(in)
	if s.Complete() {
		t.Fatal("fresh schedule should be incomplete")
	}
	if s.Makespan() != 0 {
		t.Fatalf("empty makespan = %v", s.Makespan())
	}
	s.SetStart(0, 0)  // job 0: procs 4 len 10 -> ends 10
	s.SetStart(1, 7)  // job 1: procs 2 len 5 -> ends 12
	s.SetStart(2, 30) // job 2: procs 8 len 1 -> ends 31
	if !s.Complete() {
		t.Fatal("schedule should be complete")
	}
	if got := s.Makespan(); got != 31 {
		t.Fatalf("Makespan = %v, want 31", got)
	}
	if s.StartOf(1) != 7 || s.EndOf(1) != 12 {
		t.Fatalf("StartOf/EndOf wrong: %v %v", s.StartOf(1), s.EndOf(1))
	}
}

func TestEndOfUnscheduled(t *testing.T) {
	s := NewSchedule(validInstance())
	if s.EndOf(0) != Unscheduled {
		t.Fatal("EndOf of unscheduled job should be Unscheduled")
	}
}

func TestScheduleUsage(t *testing.T) {
	in := &Instance{M: 8, Jobs: []Job{
		{ID: 0, Procs: 3, Len: 10},
		{ID: 1, Procs: 2, Len: 5},
	}}
	s := NewSchedule(in)
	s.SetStart(0, 0)
	s.SetStart(1, 5)
	u := s.Usage()
	cases := []struct {
		t    Time
		want int
	}{{0, 3}, {4, 3}, {5, 5}, {9, 5}, {10, 0}, {11, 0}}
	for _, c := range cases {
		if got := u.At(c.t); got != c.want {
			t.Errorf("usage(%v) = %d, want %d", c.t, got, c.want)
		}
	}
}

func TestScheduleTotalUsage(t *testing.T) {
	in := &Instance{
		M:    8,
		Jobs: []Job{{ID: 0, Procs: 3, Len: 10}},
		Res:  []Reservation{{ID: 0, Procs: 4, Start: 2, Len: 3}},
	}
	s := NewSchedule(in)
	s.SetStart(0, 0)
	tu := s.TotalUsage()
	if tu.At(0) != 3 || tu.At(2) != 7 || tu.At(5) != 3 || tu.At(10) != 0 {
		t.Fatalf("TotalUsage wrong: %v", tu)
	}
	if tu.Max() != 7 {
		t.Fatalf("peak = %d, want 7", tu.Max())
	}
}

func TestScheduleCloneIndependent(t *testing.T) {
	s := NewSchedule(validInstance())
	s.SetStart(0, 5)
	cp := s.Clone()
	cp.SetStart(0, 9)
	if s.StartOf(0) != 5 {
		t.Fatal("Clone shares Start slice")
	}
	if cp.Inst != s.Inst {
		t.Fatal("Clone should share the instance")
	}
}

func TestByStartTime(t *testing.T) {
	in := &Instance{M: 8, Jobs: []Job{
		{ID: 0, Procs: 1, Len: 1},
		{ID: 1, Procs: 1, Len: 1},
		{ID: 2, Procs: 1, Len: 1},
	}}
	s := NewSchedule(in)
	s.SetStart(0, 10)
	s.SetStart(2, 5)
	// Job 1 left unscheduled.
	order := s.ByStartTime()
	if len(order) != 2 || order[0] != 2 || order[1] != 0 {
		t.Fatalf("ByStartTime = %v", order)
	}
}

func TestByStartTimeTieBreaksByID(t *testing.T) {
	in := &Instance{M: 8, Jobs: []Job{
		{ID: 5, Procs: 1, Len: 1},
		{ID: 2, Procs: 1, Len: 1},
	}}
	s := NewSchedule(in)
	s.SetStart(0, 0)
	s.SetStart(1, 0)
	order := s.ByStartTime()
	if in.Jobs[order[0]].ID != 2 || in.Jobs[order[1]].ID != 5 {
		t.Fatalf("tie break by ID failed: %v", order)
	}
}

func TestScheduleJSONRoundTrip(t *testing.T) {
	in := validInstance()
	s := NewSchedule(in)
	s.Algorithm = "lsrc"
	s.SetStart(0, 0)
	s.SetStart(1, 4)
	s.SetStart(2, 9)
	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadScheduleJSON(&buf, in)
	if err != nil {
		t.Fatal(err)
	}
	if back.Algorithm != "lsrc" {
		t.Fatalf("algorithm lost: %q", back.Algorithm)
	}
	for i := range s.Start {
		if back.Start[i] != s.Start[i] {
			t.Fatalf("start %d mismatch: %v vs %v", i, back.Start[i], s.Start[i])
		}
	}
}

func TestReadScheduleJSONUnknownJob(t *testing.T) {
	in := validInstance()
	_, err := ReadScheduleJSON(strings.NewReader(`{"starts":{"99":0}}`), in)
	if !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("got %v, want ErrUnknownJob", err)
	}
}

func TestScheduleJSONSkipsUnscheduled(t *testing.T) {
	in := validInstance()
	s := NewSchedule(in)
	s.SetStart(1, 3)
	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadScheduleJSON(bytes.NewReader(buf.Bytes()), in)
	if err != nil {
		t.Fatal(err)
	}
	if back.Start[0] != Unscheduled || back.Start[1] != 3 || back.Start[2] != Unscheduled {
		t.Fatalf("round trip of partial schedule wrong: %v", back.Start)
	}
}
