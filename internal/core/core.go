// Package core defines the domain model of the RESASCHEDULING problem
// studied by Eyraud-Dubois, Mounié and Trystram, "Analysis of Scheduling
// Algorithms with Reservations" (IPDPS 2007): rigid parallel jobs scheduled
// on m identical processors in the presence of advance reservations.
//
// An Instance bundles the processor count m, a set of rigid Jobs (each
// needing a fixed number of processors Procs for a fixed duration Len) and a
// set of Reservations (fixed blocks of processors unavailable over fixed
// time windows). A Schedule assigns a start time to every job; feasibility
// requires that at every instant the processors used by running jobs plus
// the processors held by active reservations never exceed m.
//
// Time is integral (Time, an int64 tick count). Every construction from the
// paper that uses rational times (for example durations of 1/k in the
// Proposition 2 family) is scaled by its denominator before being
// materialised here; makespan ratios are unaffected by scaling.
package core
