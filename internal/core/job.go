package core

import "fmt"

// Job is a rigid parallel task: it must run on exactly Procs processors
// simultaneously for Len ticks, without preemption, on any subset of the
// cluster's processors (the model is non-contiguous, matching §2.1 of the
// paper). The processors used must be identical throughout the execution.
type Job struct {
	// ID identifies the job within its instance. Instance validation
	// requires IDs to be unique and non-negative.
	ID int `json:"id"`
	// Name is an optional human-readable label used in rendered output.
	Name string `json:"name,omitempty"`
	// Procs is q_j, the number of processors the job requires, in [1, m].
	Procs int `json:"procs"`
	// Len is p_j, the processing time of the job, strictly positive.
	Len Time `json:"len"`
}

// Work returns the area p_j * q_j occupied by the job in the Gantt chart.
func (j Job) Work() int64 {
	return int64(j.Len) * int64(j.Procs)
}

// Label returns Name if set, otherwise a synthetic "J<id>" label.
func (j Job) Label() string {
	if j.Name != "" {
		return j.Name
	}
	return fmt.Sprintf("J%d", j.ID)
}

// Reservation is an advance reservation: Procs processors are unavailable
// to the scheduler during [Start, Start+Len). Reservations are fixed data of
// the problem instance — the scheduler must work around them.
type Reservation struct {
	// ID identifies the reservation within its instance.
	ID int `json:"id"`
	// Name is an optional human-readable label.
	Name string `json:"name,omitempty"`
	// Procs is the number of processors the reservation holds, in [1, m].
	Procs int `json:"procs"`
	// Start is the fixed start time r_j of the reservation, >= 0.
	Start Time `json:"start"`
	// Len is the duration p_j of the reservation, strictly positive.
	Len Time `json:"len"`
}

// End returns the first instant after the reservation releases its
// processors, i.e. Start+Len.
func (r Reservation) End() Time {
	if r.Len == Infinity || r.Start == Infinity {
		return Infinity
	}
	return r.Start + r.Len
}

// Work returns the area occupied by the reservation.
func (r Reservation) Work() int64 {
	return int64(r.Len) * int64(r.Procs)
}

// Label returns Name if set, otherwise a synthetic "R<id>" label.
func (r Reservation) Label() string {
	if r.Name != "" {
		return r.Name
	}
	return fmt.Sprintf("R%d", r.ID)
}

// Overlaps reports whether the reservation's window intersects [t0, t1).
func (r Reservation) Overlaps(t0, t1 Time) bool {
	return r.Start < t1 && t0 < r.End()
}
