package core

import (
	"fmt"
	"sort"
	"strings"
)

// StepFunc is a right-continuous piecewise-constant function of time,
// represented by breakpoints and segment values: the function equals
// Values[i] on [Times[i], Times[i+1]) and Values[len-1] on
// [Times[len-1], +inf). Times[0] is always 0.
//
// It models the paper's unavailability function U(t) (number of processors
// held by reservations at time t) and, more generally, resource usage
// curves. The zero StepFunc is not valid; build one with NewStepFunc or
// UnavailabilityOf.
type StepFunc struct {
	times  []Time
	values []int
}

// NewStepFunc returns the constant function with the given value on
// [0, +inf).
func NewStepFunc(value int) *StepFunc {
	return &StepFunc{times: []Time{0}, values: []int{value}}
}

// delta is an amount of change applied at a point in time; used to build a
// StepFunc from interval contributions.
type delta struct {
	at     Time
	amount int
}

// stepFromDeltas accumulates interval deltas into a StepFunc starting from
// base at time 0.
func stepFromDeltas(base int, deltas []delta) *StepFunc {
	sort.Slice(deltas, func(i, j int) bool { return deltas[i].at < deltas[j].at })
	f := &StepFunc{times: []Time{0}, values: []int{base}}
	cur := base
	for i := 0; i < len(deltas); {
		t := deltas[i].at
		sum := 0
		for i < len(deltas) && deltas[i].at == t {
			sum += deltas[i].amount
			i++
		}
		if sum == 0 {
			continue
		}
		cur += sum
		if t == f.times[len(f.times)-1] {
			f.values[len(f.values)-1] = cur
			// Collapse if the previous segment now has the same value.
			if n := len(f.times); n >= 2 && f.values[n-2] == f.values[n-1] {
				f.times = f.times[:n-1]
				f.values = f.values[:n-1]
			}
		} else {
			f.times = append(f.times, t)
			f.values = append(f.values, cur)
		}
	}
	return f
}

// UnavailabilityOf builds the unavailability function U(t) of a reservation
// set: U(t) is the total number of processors held by reservations active at
// time t.
func UnavailabilityOf(res []Reservation) *StepFunc {
	deltas := make([]delta, 0, 2*len(res))
	for _, r := range res {
		deltas = append(deltas, delta{r.Start, r.Procs})
		if r.End() != Infinity {
			deltas = append(deltas, delta{r.End(), -r.Procs})
		}
	}
	return stepFromDeltas(0, deltas)
}

// At returns the value of the function at time t. Times before 0 report the
// value at 0.
func (f *StepFunc) At(t Time) int {
	i := sort.Search(len(f.times), func(i int) bool { return f.times[i] > t })
	if i == 0 {
		return f.values[0]
	}
	return f.values[i-1]
}

// Max returns the maximum value attained by the function.
func (f *StepFunc) Max() int {
	max := f.values[0]
	for _, v := range f.values[1:] {
		if v > max {
			max = v
		}
	}
	return max
}

// MaxOn returns the maximum value attained on [t0, t1). It panics if
// t0 >= t1.
func (f *StepFunc) MaxOn(t0, t1 Time) int {
	if t0 >= t1 {
		panic("core: StepFunc.MaxOn with empty interval")
	}
	i := sort.Search(len(f.times), func(i int) bool { return f.times[i] > t0 })
	if i > 0 {
		i--
	}
	max := f.values[i]
	for i++; i < len(f.times) && f.times[i] < t1; i++ {
		if f.values[i] > max {
			max = f.values[i]
		}
	}
	return max
}

// IntegralTo returns the integral of the function over [0, t).
func (f *StepFunc) IntegralTo(t Time) int64 {
	var total int64
	for i := 0; i < len(f.times); i++ {
		segStart := f.times[i]
		if segStart >= t {
			break
		}
		segEnd := t
		if i+1 < len(f.times) && f.times[i+1] < t {
			segEnd = f.times[i+1]
		}
		total += int64(segEnd-segStart) * int64(f.values[i])
	}
	return total
}

// NonIncreasing reports whether the function never increases over time.
// The paper's Proposition 1 applies exactly to instances whose
// unavailability function is non-increasing.
func (f *StepFunc) NonIncreasing() bool {
	for i := 1; i < len(f.values); i++ {
		if f.values[i] > f.values[i-1] {
			return false
		}
	}
	return true
}

// Breakpoints returns a copy of the breakpoint times (the first is 0).
func (f *StepFunc) Breakpoints() []Time {
	out := make([]Time, len(f.times))
	copy(out, f.times)
	return out
}

// Len returns the number of constant segments.
func (f *StepFunc) Len() int { return len(f.times) }

// Segment returns the i-th segment as (start, end, value), with end equal to
// Infinity for the last segment.
func (f *StepFunc) Segment(i int) (start, end Time, value int) {
	start = f.times[i]
	end = Infinity
	if i+1 < len(f.times) {
		end = f.times[i+1]
	}
	return start, end, f.values[i]
}

// FinalValue returns the value on the last (unbounded) segment.
func (f *StepFunc) FinalValue() int { return f.values[len(f.values)-1] }

// String renders the function as a compact segment list for debugging.
func (f *StepFunc) String() string {
	var b strings.Builder
	for i := range f.times {
		start, end, v := f.Segment(i)
		if i > 0 {
			b.WriteString(" ")
		}
		fmt.Fprintf(&b, "[%v,%v)=%d", start, end, v)
	}
	return b.String()
}
