package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"
)

// Unscheduled marks a job that has not been assigned a start time.
const Unscheduled Time = -1

// Schedule is a solution to an Instance: a start time σ_i for every job,
// indexed by position in Instance.Jobs. A schedule is feasible when, at
// every instant, the processors used by running jobs plus those held by
// active reservations do not exceed m (checked by the verify package; Usage
// below provides the raw curve).
type Schedule struct {
	Inst *Instance
	// Start holds σ_i for Inst.Jobs[i], or Unscheduled.
	Start []Time
	// Algorithm optionally records which scheduler produced the schedule.
	Algorithm string
}

// NewSchedule returns an empty (all-unscheduled) schedule for inst.
func NewSchedule(inst *Instance) *Schedule {
	s := &Schedule{Inst: inst, Start: make([]Time, len(inst.Jobs))}
	for i := range s.Start {
		s.Start[i] = Unscheduled
	}
	return s
}

// SetStart assigns a start time to the job at index idx.
func (s *Schedule) SetStart(idx int, t Time) {
	s.Start[idx] = t
}

// StartOf returns the start time of the job at index idx.
func (s *Schedule) StartOf(idx int) Time { return s.Start[idx] }

// EndOf returns the completion time of the job at index idx, or Unscheduled
// if it has no start time.
func (s *Schedule) EndOf(idx int) Time {
	if s.Start[idx] == Unscheduled {
		return Unscheduled
	}
	return s.Start[idx] + s.Inst.Jobs[idx].Len
}

// Complete reports whether every job has been assigned a start time.
func (s *Schedule) Complete() bool {
	for _, t := range s.Start {
		if t == Unscheduled {
			return false
		}
	}
	return true
}

// Makespan returns Cmax, the largest completion time over scheduled jobs
// (0 for an empty schedule). Unscheduled jobs are ignored; call Complete to
// check for them.
func (s *Schedule) Makespan() Time {
	var cmax Time
	for i, t := range s.Start {
		if t == Unscheduled {
			continue
		}
		if end := t + s.Inst.Jobs[i].Len; end > cmax {
			cmax = end
		}
	}
	return cmax
}

// Usage returns the processor-usage step function of the scheduled jobs
// (reservations not included).
func (s *Schedule) Usage() *StepFunc {
	deltas := make([]delta, 0, 2*len(s.Start))
	for i, t := range s.Start {
		if t == Unscheduled {
			continue
		}
		j := s.Inst.Jobs[i]
		deltas = append(deltas, delta{t, j.Procs}, delta{t + j.Len, -j.Procs})
	}
	return stepFromDeltas(0, deltas)
}

// TotalUsage returns jobs usage plus reservation unavailability: the curve
// that feasibility compares against m.
func (s *Schedule) TotalUsage() *StepFunc {
	deltas := make([]delta, 0, 2*len(s.Start)+2*len(s.Inst.Res))
	for i, t := range s.Start {
		if t == Unscheduled {
			continue
		}
		j := s.Inst.Jobs[i]
		deltas = append(deltas, delta{t, j.Procs}, delta{t + j.Len, -j.Procs})
	}
	for _, r := range s.Inst.Res {
		deltas = append(deltas, delta{r.Start, r.Procs})
		if r.End() != Infinity {
			deltas = append(deltas, delta{r.End(), -r.Procs})
		}
	}
	return stepFromDeltas(0, deltas)
}

// Clone returns a deep copy sharing the same instance.
func (s *Schedule) Clone() *Schedule {
	out := &Schedule{Inst: s.Inst, Algorithm: s.Algorithm}
	out.Start = append([]Time(nil), s.Start...)
	return out
}

// ByStartTime returns job indices ordered by (start, id); unscheduled jobs
// are omitted.
func (s *Schedule) ByStartTime() []int {
	idx := make([]int, 0, len(s.Start))
	for i, t := range s.Start {
		if t != Unscheduled {
			idx = append(idx, i)
		}
	}
	sort.Slice(idx, func(a, b int) bool {
		if s.Start[idx[a]] != s.Start[idx[b]] {
			return s.Start[idx[a]] < s.Start[idx[b]]
		}
		return s.Inst.Jobs[idx[a]].ID < s.Inst.Jobs[idx[b]].ID
	})
	return idx
}

// scheduleJSON is the serialised wire form of a Schedule.
type scheduleJSON struct {
	Algorithm string `json:"algorithm,omitempty"`
	// Starts maps job ID (not index) to start time.
	Starts map[int]Time `json:"starts"`
}

// WriteJSON serialises the schedule (start times keyed by job ID).
func (s *Schedule) WriteJSON(w io.Writer) error {
	out := scheduleJSON{Algorithm: s.Algorithm, Starts: make(map[int]Time, len(s.Start))}
	for i, t := range s.Start {
		if t != Unscheduled {
			out.Starts[s.Inst.Jobs[i].ID] = t
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// ErrUnknownJob is returned when a serialised schedule references a job ID
// that does not exist in the instance.
var ErrUnknownJob = errors.New("core: schedule references unknown job id")

// ReadScheduleJSON parses a schedule for inst from JSON.
func ReadScheduleJSON(r io.Reader, inst *Instance) (*Schedule, error) {
	var raw scheduleJSON
	if err := json.NewDecoder(r).Decode(&raw); err != nil {
		return nil, fmt.Errorf("core: decoding schedule: %w", err)
	}
	byID := make(map[int]int, len(inst.Jobs))
	for i, j := range inst.Jobs {
		byID[j.ID] = i
	}
	s := NewSchedule(inst)
	s.Algorithm = raw.Algorithm
	for id, t := range raw.Starts {
		i, ok := byID[id]
		if !ok {
			return nil, fmt.Errorf("%w: %d", ErrUnknownJob, id)
		}
		s.Start[i] = t
	}
	return s, nil
}
