package core

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

func validInstance() *Instance {
	return &Instance{
		Name: "t",
		M:    8,
		Jobs: []Job{
			{ID: 0, Procs: 4, Len: 10},
			{ID: 1, Procs: 2, Len: 5},
			{ID: 2, Procs: 8, Len: 1},
		},
		Res: []Reservation{
			{ID: 0, Procs: 2, Start: 3, Len: 4},
			{ID: 1, Procs: 4, Start: 20, Len: 10},
		},
	}
}

func TestValidateOK(t *testing.T) {
	if err := validInstance().Validate(); err != nil {
		t.Fatalf("valid instance rejected: %v", err)
	}
}

func TestValidateErrors(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Instance)
		want   error
	}{
		{"no machines", func(in *Instance) { in.M = 0 }, ErrNoMachines},
		{"job too wide", func(in *Instance) { in.Jobs[0].Procs = 9 }, ErrBadJob},
		{"job zero procs", func(in *Instance) { in.Jobs[0].Procs = 0 }, ErrBadJob},
		{"job zero len", func(in *Instance) { in.Jobs[1].Len = 0 }, ErrBadJob},
		{"job negative len", func(in *Instance) { in.Jobs[1].Len = -3 }, ErrBadJob},
		{"job infinite len", func(in *Instance) { in.Jobs[1].Len = Infinity }, ErrBadJob},
		{"dup job id", func(in *Instance) { in.Jobs[1].ID = 0 }, ErrDuplicateID},
		{"negative job id", func(in *Instance) { in.Jobs[1].ID = -1 }, ErrDuplicateID},
		{"res too wide", func(in *Instance) { in.Res[0].Procs = 9 }, ErrBadReservation},
		{"res zero procs", func(in *Instance) { in.Res[0].Procs = 0 }, ErrBadReservation},
		{"res zero len", func(in *Instance) { in.Res[0].Len = 0 }, ErrBadReservation},
		{"res negative start", func(in *Instance) { in.Res[0].Start = -1 }, ErrBadReservation},
		{"dup res id", func(in *Instance) { in.Res[1].ID = 0 }, ErrDuplicateID},
		{"oversubscribed", func(in *Instance) {
			in.Res = append(in.Res, Reservation{ID: 5, Procs: 8, Start: 4, Len: 2})
		}, ErrResOverSubscribe},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			in := validInstance()
			c.mutate(in)
			err := in.Validate()
			if !errors.Is(err, c.want) {
				t.Fatalf("got %v, want %v", err, c.want)
			}
		})
	}
}

func TestTotalWorkAndMaxima(t *testing.T) {
	in := validInstance()
	want := int64(4*10 + 2*5 + 8*1)
	if got := in.TotalWork(); got != want {
		t.Errorf("TotalWork = %d, want %d", got, want)
	}
	if got := in.MaxJobLen(); got != 10 {
		t.Errorf("MaxJobLen = %v, want 10", got)
	}
	if got := in.MaxJobProcs(); got != 8 {
		t.Errorf("MaxJobProcs = %d, want 8", got)
	}
	empty := &Instance{M: 4}
	if empty.TotalWork() != 0 || empty.MaxJobLen() != 0 || empty.MaxJobProcs() != 0 {
		t.Error("empty instance aggregates should be zero")
	}
}

func TestAlpha(t *testing.T) {
	// Reservations peak at 4 of 8 procs -> alpha = 0.5; max job width 8 >
	// 0.5*8 -> not a valid alpha-instance.
	in := validInstance()
	alpha, ok := in.Alpha()
	if ok {
		t.Fatalf("instance with full-width job reported as alpha-feasible (alpha=%v)", alpha)
	}
	// Drop the wide job: remaining widths 4 and 2, 4 <= 0.5*8 -> ok.
	in.Jobs = in.Jobs[:2]
	alpha, ok = in.Alpha()
	if !ok || alpha != 0.5 {
		t.Fatalf("Alpha = %v, %v; want 0.5, true", alpha, ok)
	}
	// No reservations at all: alpha = 1.
	in.Res = nil
	alpha, ok = in.Alpha()
	if !ok || alpha != 1 {
		t.Fatalf("Alpha without reservations = %v, %v; want 1, true", alpha, ok)
	}
	// Reservations holding the whole machine: no feasible alpha.
	in.Res = []Reservation{{ID: 0, Procs: 8, Start: 0, Len: 1}}
	if _, ok := in.Alpha(); ok {
		t.Fatal("full blockade should not be alpha-feasible")
	}
}

func TestCloneIsDeep(t *testing.T) {
	in := validInstance()
	cp := in.Clone()
	cp.Jobs[0].Len = 999
	cp.Res[0].Start = 999
	if in.Jobs[0].Len == 999 || in.Res[0].Start == 999 {
		t.Fatal("Clone shares backing arrays")
	}
}

func TestScale(t *testing.T) {
	in := validInstance()
	sc := in.Scale(6)
	if sc.Jobs[0].Len != 60 || sc.Res[0].Start != 18 || sc.Res[0].Len != 24 {
		t.Fatalf("Scale(6) wrong: %+v", sc)
	}
	// Original untouched.
	if in.Jobs[0].Len != 10 {
		t.Fatal("Scale mutated the receiver")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Scale(0) did not panic")
		}
	}()
	in.Scale(0)
}

func TestJobByID(t *testing.T) {
	in := validInstance()
	j, ok := in.JobByID(1)
	if !ok || j.Procs != 2 {
		t.Fatalf("JobByID(1) = %+v, %v", j, ok)
	}
	if _, ok := in.JobByID(42); ok {
		t.Fatal("JobByID(42) should not exist")
	}
}

func TestInstanceJSONRoundTrip(t *testing.T) {
	in := validInstance()
	var buf bytes.Buffer
	if err := in.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadInstanceJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.M != in.M || len(back.Jobs) != len(in.Jobs) || len(back.Res) != len(in.Res) {
		t.Fatalf("round trip mismatch: %+v", back)
	}
	for i := range in.Jobs {
		if back.Jobs[i] != in.Jobs[i] {
			t.Fatalf("job %d mismatch: %+v vs %+v", i, back.Jobs[i], in.Jobs[i])
		}
	}
	for i := range in.Res {
		if back.Res[i] != in.Res[i] {
			t.Fatalf("res %d mismatch", i)
		}
	}
}

func TestReadInstanceJSONRejectsInvalid(t *testing.T) {
	_, err := ReadInstanceJSON(strings.NewReader(`{"m":0,"jobs":[]}`))
	if !errors.Is(err, ErrNoMachines) {
		t.Fatalf("got %v, want ErrNoMachines", err)
	}
	_, err = ReadInstanceJSON(strings.NewReader(`{not json`))
	if err == nil {
		t.Fatal("malformed JSON accepted")
	}
}

func TestJobHelpers(t *testing.T) {
	j := Job{ID: 3, Procs: 4, Len: 5}
	if j.Work() != 20 {
		t.Errorf("Work = %d", j.Work())
	}
	if j.Label() != "J3" {
		t.Errorf("Label = %q", j.Label())
	}
	j.Name = "conv"
	if j.Label() != "conv" {
		t.Errorf("Label = %q", j.Label())
	}
}

func TestReservationHelpers(t *testing.T) {
	r := Reservation{ID: 2, Procs: 3, Start: 10, Len: 5}
	if r.End() != 15 || r.Work() != 15 {
		t.Errorf("End/Work = %v/%d", r.End(), r.Work())
	}
	if r.Label() != "R2" {
		t.Errorf("Label = %q", r.Label())
	}
	if !r.Overlaps(0, 11) || r.Overlaps(0, 10) || r.Overlaps(15, 20) || !r.Overlaps(14, 16) {
		t.Error("Overlaps boundary conditions wrong")
	}
	inf := Reservation{ID: 0, Procs: 1, Start: 10, Len: Infinity}
	if inf.End() != Infinity {
		t.Errorf("infinite End = %v", inf.End())
	}
}
