package core

import (
	"fmt"
	"math"
)

// Time is a point in (or length of) scheduling time, in integral ticks.
// All model quantities — job durations, reservation windows, start times,
// makespans — are expressed in ticks. The mapping from ticks to seconds is
// up to the caller; the paper's analysis is scale-invariant.
type Time int64

// Infinity is a sentinel representing an unbounded time horizon. It is
// strictly larger than any representable schedule time and arithmetic on it
// is avoided by the packages that use it.
const Infinity Time = math.MaxInt64

// MinTime returns the smaller of a and b.
func MinTime(a, b Time) Time {
	if a < b {
		return a
	}
	return b
}

// MaxTime returns the larger of a and b.
func MaxTime(a, b Time) Time {
	if a > b {
		return a
	}
	return b
}

// String renders the time, printing the Infinity sentinel as "inf".
func (t Time) String() string {
	if t == Infinity {
		return "inf"
	}
	return fmt.Sprintf("%d", int64(t))
}
