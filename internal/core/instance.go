package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
)

// Instance is a complete RESASCHEDULING problem: m identical processors, a
// set of rigid jobs to place, and a set of fixed advance reservations the
// jobs must not intersect. The pure RIGIDSCHEDULING problem of §2 of the
// paper is the special case with no reservations.
type Instance struct {
	// Name is an optional label used in experiment output.
	Name string `json:"name,omitempty"`
	// M is the number of identical processors in the cluster.
	M int `json:"m"`
	// Jobs are the rigid parallel tasks to schedule.
	Jobs []Job `json:"jobs"`
	// Res are the advance reservations (may be empty).
	Res []Reservation `json:"reservations,omitempty"`
}

// Validation errors returned by Instance.Validate.
var (
	ErrNoMachines       = errors.New("core: instance has no machines (m < 1)")
	ErrBadJob           = errors.New("core: job has invalid size or duration")
	ErrBadReservation   = errors.New("core: reservation has invalid size, start or duration")
	ErrDuplicateID      = errors.New("core: duplicate job or reservation id")
	ErrResOverSubscribe = errors.New("core: reservations exceed machine capacity at some time")
)

// Validate checks that the instance is well-formed and feasible in the sense
// of §3.1: every job fits on the machine, every reservation is valid, ids
// are unique, and the reservations alone never oversubscribe the m
// processors (U(t) <= m for all t).
func (in *Instance) Validate() error {
	if in.M < 1 {
		return fmt.Errorf("%w: m=%d", ErrNoMachines, in.M)
	}
	seen := make(map[int]bool, len(in.Jobs))
	for _, j := range in.Jobs {
		if j.Procs < 1 || j.Procs > in.M {
			return fmt.Errorf("%w: job %d needs %d of %d procs", ErrBadJob, j.ID, j.Procs, in.M)
		}
		if j.Len <= 0 || j.Len == Infinity {
			return fmt.Errorf("%w: job %d has duration %v", ErrBadJob, j.ID, j.Len)
		}
		if j.ID < 0 || seen[j.ID] {
			return fmt.Errorf("%w: job id %d", ErrDuplicateID, j.ID)
		}
		seen[j.ID] = true
	}
	seenR := make(map[int]bool, len(in.Res))
	for _, r := range in.Res {
		if r.Procs < 1 || r.Procs > in.M {
			return fmt.Errorf("%w: reservation %d holds %d of %d procs", ErrBadReservation, r.ID, r.Procs, in.M)
		}
		if r.Len <= 0 {
			return fmt.Errorf("%w: reservation %d has duration %v", ErrBadReservation, r.ID, r.Len)
		}
		if r.Start < 0 {
			return fmt.Errorf("%w: reservation %d starts at %v", ErrBadReservation, r.ID, r.Start)
		}
		if r.ID < 0 || seenR[r.ID] {
			return fmt.Errorf("%w: reservation id %d", ErrDuplicateID, r.ID)
		}
		seenR[r.ID] = true
	}
	if u := UnavailabilityOf(in.Res); u.Max() > in.M {
		return fmt.Errorf("%w: peak unavailability %d > m=%d", ErrResOverSubscribe, u.Max(), in.M)
	}
	return nil
}

// Unavailability returns the paper's U(t): the number of processors held by
// reservations at each time.
func (in *Instance) Unavailability() *StepFunc {
	return UnavailabilityOf(in.Res)
}

// TotalWork returns W(I) = sum over jobs of p_j*q_j (reservations excluded).
func (in *Instance) TotalWork() int64 {
	var w int64
	for _, j := range in.Jobs {
		w += j.Work()
	}
	return w
}

// MaxJobLen returns p_max, the longest job duration (0 if there are no jobs).
func (in *Instance) MaxJobLen() Time {
	var max Time
	for _, j := range in.Jobs {
		if j.Len > max {
			max = j.Len
		}
	}
	return max
}

// MaxJobProcs returns the widest job's processor requirement (0 if none).
func (in *Instance) MaxJobProcs() int {
	max := 0
	for _, j := range in.Jobs {
		if j.Procs > max {
			max = j.Procs
		}
	}
	return max
}

// Alpha returns the largest α in (0,1] for which the instance is a valid
// α-RESASCHEDULING instance (Definition of §4.2): every reservation level
// leaves at least α·m processors free and no job requires more than α·m.
// It returns the pair (α, ok); ok is false when no α in (0,1] works, which
// happens exactly when reservations ever hold all m processors while jobs
// exist, or a job is wider than the guaranteed availability.
//
// Concretely α must satisfy: U(t) <= (1-α)m for all t, i.e. α <= 1 -
// Umax/m, and q_i <= αm for all i, i.e. α >= qmax/m. The returned α is the
// largest feasible value, 1 - Umax/m.
func (in *Instance) Alpha() (float64, bool) {
	if in.M == 0 {
		return 0, false
	}
	umax := in.Unavailability().Max()
	alpha := 1 - float64(umax)/float64(in.M)
	if alpha <= 0 {
		return 0, false
	}
	if len(in.Jobs) > 0 {
		qmax := in.MaxJobProcs()
		if float64(qmax) > alpha*float64(in.M)+1e-9 {
			return alpha, false
		}
	}
	return alpha, true
}

// JobByID returns the job with the given id and whether it exists.
func (in *Instance) JobByID(id int) (Job, bool) {
	for _, j := range in.Jobs {
		if j.ID == id {
			return j, true
		}
	}
	return Job{}, false
}

// Clone returns a deep copy of the instance.
func (in *Instance) Clone() *Instance {
	out := &Instance{Name: in.Name, M: in.M}
	out.Jobs = append([]Job(nil), in.Jobs...)
	out.Res = append([]Reservation(nil), in.Res...)
	return out
}

// Scale returns a copy of the instance with every duration and start time
// multiplied by factor. Makespan ratios are invariant under scaling, which
// is how the paper's rational-time constructions are made integral.
func (in *Instance) Scale(factor Time) *Instance {
	if factor <= 0 {
		panic("core: Scale with non-positive factor")
	}
	out := in.Clone()
	for i := range out.Jobs {
		out.Jobs[i].Len *= factor
	}
	for i := range out.Res {
		out.Res[i].Start *= factor
		out.Res[i].Len *= factor
	}
	return out
}

// WriteJSON serialises the instance as indented JSON.
func (in *Instance) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(in)
}

// ReadInstanceJSON parses an instance from JSON and validates it.
func ReadInstanceJSON(r io.Reader) (*Instance, error) {
	var in Instance
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("core: decoding instance: %w", err)
	}
	if err := in.Validate(); err != nil {
		return nil, err
	}
	return &in, nil
}
