package core

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// genInstance is a quick.Generator wrapper producing random valid
// instances; it drives the testing/quick property suites on the core data
// structures.
type genInstance struct {
	Inst *Instance
}

// Generate implements quick.Generator.
func (genInstance) Generate(r *rand.Rand, size int) reflect.Value {
	m := r.Intn(16) + 1
	inst := &Instance{Name: "quick", M: m}
	n := r.Intn(size%12 + 1)
	for i := 0; i < n; i++ {
		inst.Jobs = append(inst.Jobs, Job{
			ID:    i,
			Procs: r.Intn(m) + 1,
			Len:   Time(r.Intn(50) + 1),
		})
	}
	// Reservations by rejection against a tick grid.
	grid := make([]int, 256)
	for k := 0; k < r.Intn(4); k++ {
		q := r.Intn(m) + 1
		start := Time(r.Intn(64))
		l := Time(r.Intn(32) + 1)
		ok := true
		for t := start; t < start+l; t++ {
			if grid[t]+q > m {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		for t := start; t < start+l; t++ {
			grid[t] += q
		}
		inst.Res = append(inst.Res, Reservation{ID: len(inst.Res), Procs: q, Start: start, Len: l})
	}
	return reflect.ValueOf(genInstance{Inst: inst})
}

func TestQuickGeneratedInstancesValidate(t *testing.T) {
	f := func(g genInstance) bool {
		return g.Inst.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickJSONRoundTrip(t *testing.T) {
	f := func(g genInstance) bool {
		var buf bytes.Buffer
		if err := g.Inst.WriteJSON(&buf); err != nil {
			return false
		}
		back, err := ReadInstanceJSON(&buf)
		if err != nil {
			return false
		}
		if back.M != g.Inst.M || len(back.Jobs) != len(g.Inst.Jobs) || len(back.Res) != len(g.Inst.Res) {
			return false
		}
		for i := range g.Inst.Jobs {
			if back.Jobs[i] != g.Inst.Jobs[i] {
				return false
			}
		}
		for i := range g.Inst.Res {
			if back.Res[i] != g.Inst.Res[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickScaleInvariants(t *testing.T) {
	// Scaling multiplies work by the factor and preserves the
	// unavailability shape (value at scaled times).
	f := func(g genInstance, rawFactor uint8) bool {
		factor := Time(rawFactor%7 + 1)
		sc := g.Inst.Scale(factor)
		if sc.TotalWork() != g.Inst.TotalWork()*int64(factor) {
			return false
		}
		u, su := g.Inst.Unavailability(), sc.Unavailability()
		for _, tm := range []Time{0, 3, 17, 40, 100} {
			if u.At(tm) != su.At(tm*factor) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickAlphaConsistency(t *testing.T) {
	// Whenever Alpha reports ok, the defining inequalities of §4.2 hold.
	f := func(g genInstance) bool {
		alpha, ok := g.Inst.Alpha()
		if !ok {
			return true
		}
		if alpha <= 0 || alpha > 1 {
			return false
		}
		am := alpha * float64(g.Inst.M)
		if float64(g.Inst.Unavailability().Max()) > float64(g.Inst.M)-am+1e-9 {
			return false
		}
		for _, j := range g.Inst.Jobs {
			if float64(j.Procs) > am+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickUsagePlusUnavailEqualsTotal(t *testing.T) {
	// For any (not necessarily feasible) start assignment, TotalUsage is
	// the pointwise sum of job usage and reservation unavailability.
	f := func(g genInstance, seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := NewSchedule(g.Inst)
		for i := range g.Inst.Jobs {
			s.SetStart(i, Time(r.Intn(60)))
		}
		total := s.TotalUsage()
		usage := s.Usage()
		unavail := g.Inst.Unavailability()
		for _, tm := range []Time{0, 1, 7, 23, 59, 120} {
			if total.At(tm) != usage.At(tm)+unavail.At(tm) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
