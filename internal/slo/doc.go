// Package slo turns the service's cumulative observability counters
// into windowed service-level objectives with error-budget burn-rate
// alerting — the measurement layer that answers "what fraction of
// tenant X's admissions met their deadline over the last 5 minutes,
// and are we burning budget fast enough to page?"
//
// # Windowed aggregation without touching the hot path
//
// Everything resd publishes is cumulative: lock-free counters and
// exponential-histogram buckets bumped by the shard loops and read by
// scrapes. The engine never asks for more. Every Period it snapshots
// each bound source into a stats.SnapRing; the difference between two
// retained snapshots is the exact event count for the span between
// them, so "the last 5 minutes" is pure arithmetic over copies — the
// same no-event-loop contract as a /metrics scrape, at a few kilobytes
// of ring per objective. The same ring, at histogram-bucket width,
// fixes the process-lifetime-only caveat on the slack and loop-turn
// summaries: TrackHistogram exposes restart-free windowed percentiles
// as the <name>_window summary family.
//
// # Objectives
//
// Every objective reduces to a (good, total) event pair per window,
// with Target the promised good fraction and 1−Target the error
// budget:
//
//   - deadline_attainment — good = deadline-carrying admissions,
//     total = those plus deadline rejections. Admission is the decision
//     being judged: the service promises a start time at Admit, so a
//     deadline rejection is the broken promise, counted the moment it
//     happens. Scopable per tenant.
//   - slack — good = admissions whose start-time slack stayed at or
//     under Bound (evaluated on the exponential bucket geometry, so the
//     effective bound rounds down to 2^k−1); Target is the percentile
//     the bound must hold at. Service-wide only.
//   - error_rate — good = admissions, total = admissions plus every
//     rejection. The coarse "is admission working at all" objective.
//
// # Multi-window multi-burn-rate rules
//
// Burn rate is the error fraction over a window divided by the error
// budget: burning at 1× spends exactly the budget over the budget
// window; at 14.4× a 30-day budget is gone in two days. A rule
//
//	{"severity": "page", "burn": 14.4, "short": "5m", "long": "1h"}
//
// fires only when the burn rate is at or above the threshold over BOTH
// windows — the long window proves the burn is sustained (no paging on
// a blip), the short window proves it is still happening (the alert
// clears quickly once the bleeding stops, instead of paging for the
// rest of the long window). An objective's alert state is the highest
// severity among its firing rules: ok → warn → page, exported as
// resd_slo_alert_state (0/1/2). Objectives that declare no rules get
// DefaultRules, the Google SRE workbook pair (14.4× over 5m∧1h pages,
// 3× over 30m∧6h warns).
//
// A window with no traffic has burned nothing: its error fraction is
// defined as 0, so an idle service never divides by zero and never
// pages — and an alert whose traffic stops clears as its windows
// drain.
//
// Every state transition is journaled into the flight recorder
// (subsys "slo", severity mapped warn→Warn, page→Error, clear→Info),
// raised as a /healthz warning while any objective is non-OK
// (Engine.Warning), and handed to Config.OnAlert — which resdsrv wires
// to a rate-limited flight-recorder bundle capture, so a page leaves a
// diagnostic snapshot behind even when nobody is watching.
//
// # Exposition
//
// With a registry, the engine exports (labels objective, plus tenant
// when scoped):
//
//	resd_slo_attainment                     gauge    good fraction over the budget window
//	resd_slo_error_budget_remaining         gauge    unburned budget fraction (negative = overspent)
//	resd_slo_burn_rate{window}              gauge    burn per distinct rule window
//	resd_slo_alert_state                    gauge    0 ok / 1 warn / 2 page
//	resd_slo_alert_transitions_total        counter  state changes since start
//	<hist>_window{quantile}                 summary  windowed percentiles per tracked histogram
//
// The same evaluated states stream over wire protocol v5 as the
// WatchSLO telemetry family (see internal/reswire), and obscheck -slo
// asserts the families and the alert state from the outside.
package slo
