package slo

import (
	"errors"
	"strings"
	"testing"
	"time"
)

func parse(t *testing.T, src string) (Spec, error) {
	t.Helper()
	return ParseSpec(strings.NewReader(src))
}

func TestParseSpecValid(t *testing.T) {
	s, err := parse(t, `{
		"period": "5s",
		"budget_window": "10m",
		"objectives": [
			{"name": "deadline", "signal": "deadline_attainment", "target": 0.99},
			{"name": "acme-deadline", "signal": "deadline_attainment", "tenant": "acme", "target": 0.95,
			 "rules": [{"severity": "warn", "burn": 2, "short": "30s", "long": "5m"}]},
			{"name": "slack-p99", "signal": "slack", "target": 0.99, "bound": 4096},
			{"name": "success", "signal": "error_rate", "target": 0.999}
		]
	}`)
	if err != nil {
		t.Fatal(err)
	}
	r, err := s.normalize()
	if err != nil {
		t.Fatal(err)
	}
	if r.period != 5*time.Second || r.budgetWindow != 10*time.Minute {
		t.Fatalf("period/budget = %v/%v", r.period, r.budgetWindow)
	}
	if len(r.objectives) != 4 {
		t.Fatalf("objectives: %d", len(r.objectives))
	}
	// The first objective got the default rule pair.
	if len(r.objectives[0].Rules) != 2 || r.objectives[0].Rules[0].Burn != 14.4 {
		t.Fatalf("default rules not applied: %+v", r.objectives[0].Rules)
	}
	if r.objectives[1].Tenant != "acme" || len(r.objectives[1].Rules) != 1 {
		t.Fatalf("tenant objective: %+v", r.objectives[1])
	}
}

func TestParseSpecRejects(t *testing.T) {
	cases := []struct {
		name, src string
	}{
		{"unknown field", `{"objectives": [], "perid": "5s"}`},
		{"no objectives", `{"objectives": []}`},
		{"empty name", `{"objectives": [{"signal": "error_rate", "target": 0.9}]}`},
		{"bad signal", `{"objectives": [{"name": "x", "signal": "latency", "target": 0.9}]}`},
		{"target zero", `{"objectives": [{"name": "x", "signal": "error_rate", "target": 0}]}`},
		{"target one", `{"objectives": [{"name": "x", "signal": "error_rate", "target": 1}]}`},
		{"duplicate name", `{"objectives": [
			{"name": "x", "signal": "error_rate", "target": 0.9},
			{"name": "x", "signal": "error_rate", "target": 0.9}]}`},
		{"slack without bound", `{"objectives": [{"name": "x", "signal": "slack", "target": 0.9}]}`},
		{"slack per tenant", `{"objectives": [{"name": "x", "signal": "slack", "tenant": "t", "target": 0.9, "bound": 10}]}`},
		{"error_rate per tenant", `{"objectives": [{"name": "x", "signal": "error_rate", "tenant": "t", "target": 0.9}]}`},
		{"bound on non-slack", `{"objectives": [{"name": "x", "signal": "error_rate", "target": 0.9, "bound": 10}]}`},
		{"bad severity", `{"objectives": [{"name": "x", "signal": "error_rate", "target": 0.9,
			"rules": [{"severity": "ok", "burn": 2, "short": "1m", "long": "5m"}]}]}`},
		{"burn zero", `{"objectives": [{"name": "x", "signal": "error_rate", "target": 0.9,
			"rules": [{"severity": "warn", "burn": 0, "short": "1m", "long": "5m"}]}]}`},
		{"short >= long", `{"objectives": [{"name": "x", "signal": "error_rate", "target": 0.9,
			"rules": [{"severity": "warn", "burn": 2, "short": "5m", "long": "5m"}]}]}`},
		{"missing short", `{"objectives": [{"name": "x", "signal": "error_rate", "target": 0.9,
			"rules": [{"severity": "warn", "burn": 2, "long": "5m"}]}]}`},
		{"short under period", `{"period": "1m", "objectives": [{"name": "x", "signal": "error_rate", "target": 0.9,
			"rules": [{"severity": "warn", "burn": 2, "short": "30s", "long": "5m"}]}]}`},
		{"budget under period", `{"period": "1m", "budget_window": "30s",
			"objectives": [{"name": "x", "signal": "error_rate", "target": 0.9}]}`},
		{"ring explosion", `{"period": "1ms", "budget_window": "24h",
			"objectives": [{"name": "x", "signal": "error_rate", "target": 0.9,
			"rules": [{"severity": "warn", "burn": 2, "short": "10ms", "long": "24h"}]}]}`},
		{"bad period", `{"period": "fast", "objectives": [{"name": "x", "signal": "error_rate", "target": 0.9}]}`},
		{"negative period", `{"period": "-5s", "objectives": [{"name": "x", "signal": "error_rate", "target": 0.9}]}`},
	}
	for _, c := range cases {
		if _, err := parse(t, c.src); err == nil {
			t.Errorf("%s: accepted", c.name)
		} else if !errors.Is(err, ErrConfig) {
			t.Errorf("%s: error %v is not ErrConfig", c.name, err)
		}
	}
}

func TestParseRoundTripHelpers(t *testing.T) {
	for _, s := range []Signal{DeadlineAttainment, Slack, ErrorRate} {
		got, err := ParseSignal(s.String())
		if err != nil || got != s {
			t.Errorf("signal %v round trip: %v %v", s, got, err)
		}
	}
	for _, s := range []Severity{SevWarn, SevPage} {
		got, err := ParseSeverity(s.String())
		if err != nil || got != s {
			t.Errorf("severity %v round trip: %v %v", s, got, err)
		}
	}
	if _, err := ParseSeverity("ok"); err == nil {
		t.Error(`ParseSeverity("ok") accepted — clearing is not a rule severity`)
	}
}

func TestDefaultRulesAreValid(t *testing.T) {
	s := Spec{Objectives: []ObjectiveSpec{{Name: "x", Signal: "error_rate", Target: 0.999}}}
	r, err := s.normalize()
	if err != nil {
		t.Fatal(err)
	}
	rules := r.objectives[0].Rules
	if len(rules) != 2 || rules[0].Severity != SevPage || rules[1].Severity != SevWarn {
		t.Fatalf("default rules: %+v", rules)
	}
	if rules[0].Short != 5*time.Minute || rules[0].Long != time.Hour {
		t.Fatalf("page rule windows: %+v", rules[0])
	}
}
