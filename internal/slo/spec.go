package slo

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"time"
)

// ErrConfig reports an invalid SLO specification.
var ErrConfig = errors.New("slo: invalid config")

// MaxNameLen bounds objective names: they travel as metric label values
// and over the wire with a one-byte length prefix.
const MaxNameLen = 255

// maxRingSlots bounds how many snapshots one objective's ring retains
// (longest window ÷ period). 1<<16 slots of a two-element vector is
// ~1.5 MiB — far past any sane window/period pair; the cap exists so a
// typo ("period": "1ms" against a 6h window) fails at load, not as a
// surprise allocation.
const maxRingSlots = 1 << 16

// Signal names what an objective measures. Every signal reduces to a
// (good, total) event pair per window; the differences are only where
// the events come from and what "good" means.
type Signal uint8

const (
	// DeadlineAttainment measures the fraction of deadline-carrying
	// admission decisions that admitted (good) versus rejecting on the
	// deadline. Admission is the decision here — the service promises a
	// start time at admission — so attainment is decided at Admit, not
	// at job completion.
	DeadlineAttainment Signal = iota
	// Slack measures the fraction of admissions whose start-time slack
	// (admitted start − ready time) stayed at or under the objective's
	// Bound. Target is the percentile: "slack ≤ Bound at p99" is
	// Target 0.99.
	Slack
	// ErrorRate measures the admission success rate: good = admissions,
	// total = admissions plus every rejection (capacity, deadline,
	// quota). Target 0.999 tolerates one rejection per thousand
	// requests.
	ErrorRate
)

// String renders the signal as the spec file spells it.
func (s Signal) String() string {
	switch s {
	case DeadlineAttainment:
		return "deadline_attainment"
	case Slack:
		return "slack"
	case ErrorRate:
		return "error_rate"
	}
	return fmt.Sprintf("Signal(%d)", uint8(s))
}

// ParseSignal parses a spec-file signal name.
func ParseSignal(s string) (Signal, error) {
	switch s {
	case "deadline_attainment":
		return DeadlineAttainment, nil
	case "slack":
		return Slack, nil
	case "error_rate":
		return ErrorRate, nil
	default:
		return 0, fmt.Errorf("%w: signal %q (want deadline_attainment, slack or error_rate)", ErrConfig, s)
	}
}

// Severity is an alert level. The zero value is OK.
type Severity uint8

const (
	OK Severity = iota
	SevWarn
	SevPage
)

// String renders the severity as the spec file and the
// resd_slo_alert_state gauge label it.
func (s Severity) String() string {
	switch s {
	case OK:
		return "ok"
	case SevWarn:
		return "warn"
	case SevPage:
		return "page"
	}
	return fmt.Sprintf("Severity(%d)", uint8(s))
}

// ParseSeverity parses "warn" or "page" ("ok" is not a rule severity —
// clearing is the absence of firing rules, not a rule).
func ParseSeverity(s string) (Severity, error) {
	switch s {
	case "warn":
		return SevWarn, nil
	case "page":
		return SevPage, nil
	default:
		return 0, fmt.Errorf("%w: severity %q (want warn or page)", ErrConfig, s)
	}
}

// Spec is the declarative SLO configuration — what cmd/resdsrv loads
// from its -slo file.
type Spec struct {
	// Period is the snapshot-and-evaluate cadence ("" = 10s). Every
	// window is answered from snapshots taken at this cadence, so it is
	// also the alerting resolution.
	Period string `json:"period,omitempty"`
	// BudgetWindow is the span the error budget and attainment are
	// reported over ("" = 1h).
	BudgetWindow string `json:"budget_window,omitempty"`
	// Objectives declare what is promised to whom.
	Objectives []ObjectiveSpec `json:"objectives"`
}

// ObjectiveSpec is one declared objective.
type ObjectiveSpec struct {
	// Name identifies the objective in metrics, journal events and
	// telemetry. Required, unique.
	Name string `json:"name"`
	// Signal is "deadline_attainment", "slack" or "error_rate".
	Signal string `json:"signal"`
	// Tenant scopes the objective to one tenant ("" = service-wide).
	// Only deadline_attainment supports tenant scoping; the slack and
	// rejection books per tenant are loop-owned, not published atomics.
	Tenant string `json:"tenant,omitempty"`
	// Target is the good-event fraction promised, in (0,1): attainment
	// ≥ Target, or for slack the percentile at which the bound must
	// hold. 1−Target is the error budget.
	Target float64 `json:"target"`
	// Bound (slack only) is the slack value, in ticks, that counts as
	// good. Evaluated on the exponential-histogram bucket geometry: a
	// sample is good when its whole bucket is ≤ Bound, so the effective
	// bound is Bound rounded down to the nearest 2^k−1.
	Bound int64 `json:"bound,omitempty"`
	// Rules are the burn-rate alert rules; empty selects DefaultRules.
	Rules []RuleSpec `json:"rules,omitempty"`
}

// RuleSpec is one multi-window burn-rate rule: fire at Severity when
// the burn rate is at least Burn over BOTH the Short and the Long
// window. The long window makes the alert meaningful (sustained burn),
// the short window makes it reset fast once the burn stops.
type RuleSpec struct {
	Severity string  `json:"severity"`
	Burn     float64 `json:"burn"`
	Short    string  `json:"short"`
	Long     string  `json:"long"`
}

// DefaultRules is the Google-SRE-workbook pair used when an objective
// declares none: burning a 30-day budget in under ~2 days pages
// (14.4× sustained over 5m and 1h), burning it in under ~10 days warns
// (3× over 30m and 6h).
var DefaultRules = []RuleSpec{
	{Severity: "page", Burn: 14.4, Short: "5m", Long: "1h"},
	{Severity: "warn", Burn: 3, Short: "30m", Long: "6h"},
}

// Objective is a validated, resolved objective.
type Objective struct {
	Name   string
	Signal Signal
	Tenant string
	Target float64
	Bound  int64
	Rules  []Rule
}

// Rule is a validated, resolved burn-rate rule.
type Rule struct {
	Severity Severity
	Burn     float64
	Short    time.Duration
	Long     time.Duration
}

// resolved is the validated runtime form of a Spec.
type resolved struct {
	period       time.Duration
	budgetWindow time.Duration
	objectives   []Objective
}

func parseSpecDuration(what, s string, def time.Duration) (time.Duration, error) {
	if s == "" {
		return def, nil
	}
	d, err := time.ParseDuration(s)
	if err != nil {
		return 0, fmt.Errorf("%w: %s %q: %v", ErrConfig, what, s, err)
	}
	if d <= 0 {
		return 0, fmt.Errorf("%w: %s %v, need > 0", ErrConfig, what, d)
	}
	return d, nil
}

// normalize validates the spec and resolves durations, signals and
// severities.
func (s Spec) normalize() (resolved, error) {
	var r resolved
	var err error
	if r.period, err = parseSpecDuration("period", s.Period, 10*time.Second); err != nil {
		return r, err
	}
	if r.budgetWindow, err = parseSpecDuration("budget_window", s.BudgetWindow, time.Hour); err != nil {
		return r, err
	}
	if r.budgetWindow < r.period {
		return r, fmt.Errorf("%w: budget_window %v shorter than period %v", ErrConfig, r.budgetWindow, r.period)
	}
	if len(s.Objectives) == 0 {
		return r, fmt.Errorf("%w: no objectives declared", ErrConfig)
	}
	seen := map[string]bool{}
	for _, os := range s.Objectives {
		o, err := os.normalize(r.period)
		if err != nil {
			return r, err
		}
		if seen[o.Name] {
			return r, fmt.Errorf("%w: objective %q declared twice", ErrConfig, o.Name)
		}
		seen[o.Name] = true
		r.objectives = append(r.objectives, o)
	}
	if err := r.checkRingBounds(); err != nil {
		return r, err
	}
	return r, nil
}

func (os ObjectiveSpec) normalize(period time.Duration) (Objective, error) {
	var o Objective
	if os.Name == "" {
		return o, fmt.Errorf("%w: objective with empty name", ErrConfig)
	}
	if len(os.Name) > MaxNameLen {
		return o, fmt.Errorf("%w: objective name %q is %d bytes long (max %d)", ErrConfig, os.Name[:16]+"…", len(os.Name), MaxNameLen)
	}
	o.Name = os.Name
	var err error
	if o.Signal, err = ParseSignal(os.Signal); err != nil {
		return o, fmt.Errorf("objective %q: %w", o.Name, err)
	}
	if len(os.Tenant) > MaxNameLen {
		return o, fmt.Errorf("%w: objective %q tenant name %d bytes long (max %d)", ErrConfig, o.Name, len(os.Tenant), MaxNameLen)
	}
	o.Tenant = os.Tenant
	if os.Target <= 0 || os.Target >= 1 || math.IsNaN(os.Target) {
		return o, fmt.Errorf("%w: objective %q target %v outside (0,1)", ErrConfig, o.Name, os.Target)
	}
	o.Target = os.Target
	switch o.Signal {
	case Slack:
		if o.Tenant != "" {
			return o, fmt.Errorf("%w: objective %q: slack objectives are service-wide only (per-tenant slack books are loop-owned)", ErrConfig, o.Name)
		}
		if os.Bound <= 0 {
			return o, fmt.Errorf("%w: objective %q: slack needs bound > 0 (got %d)", ErrConfig, o.Name, os.Bound)
		}
		o.Bound = os.Bound
	default:
		if os.Bound != 0 {
			return o, fmt.Errorf("%w: objective %q: bound is only meaningful for the slack signal", ErrConfig, o.Name)
		}
		if o.Signal == ErrorRate && o.Tenant != "" {
			return o, fmt.Errorf("%w: objective %q: error_rate objectives are service-wide only", ErrConfig, o.Name)
		}
	}
	rules := os.Rules
	if len(rules) == 0 {
		rules = DefaultRules
	}
	for _, rs := range rules {
		rule, err := rs.normalize(o.Name, period)
		if err != nil {
			return o, err
		}
		o.Rules = append(o.Rules, rule)
	}
	return o, nil
}

func (rs RuleSpec) normalize(objective string, period time.Duration) (Rule, error) {
	var rule Rule
	var err error
	if rule.Severity, err = ParseSeverity(rs.Severity); err != nil {
		return rule, fmt.Errorf("objective %q: %w", objective, err)
	}
	if rs.Burn <= 0 || math.IsNaN(rs.Burn) || math.IsInf(rs.Burn, 0) {
		return rule, fmt.Errorf("%w: objective %q rule burn %v, need > 0 and finite", ErrConfig, objective, rs.Burn)
	}
	rule.Burn = rs.Burn
	if rule.Short, err = parseSpecDuration("short window", rs.Short, 0); err != nil || rule.Short == 0 {
		if err == nil {
			err = fmt.Errorf("%w: objective %q rule missing short window", ErrConfig, objective)
		}
		return rule, err
	}
	if rule.Long, err = parseSpecDuration("long window", rs.Long, 0); err != nil || rule.Long == 0 {
		if err == nil {
			err = fmt.Errorf("%w: objective %q rule missing long window", ErrConfig, objective)
		}
		return rule, err
	}
	if rule.Short >= rule.Long {
		return rule, fmt.Errorf("%w: objective %q rule short window %v not shorter than long %v", ErrConfig, objective, rule.Short, rule.Long)
	}
	if rule.Short < period {
		return rule, fmt.Errorf("%w: objective %q rule short window %v shorter than period %v", ErrConfig, objective, rule.Short, period)
	}
	return rule, nil
}

// checkRingBounds rejects window/period combinations whose snapshot
// ring would be absurdly large (see maxRingSlots).
func (r resolved) checkRingBounds() error {
	max := r.budgetWindow
	for _, o := range r.objectives {
		for _, rule := range o.Rules {
			if rule.Long > max {
				max = rule.Long
			}
		}
	}
	if slots := int64(max/r.period) + 2; slots > maxRingSlots {
		return fmt.Errorf("%w: longest window %v at period %v needs %d ring slots (max %d) — raise the period",
			ErrConfig, max, r.period, slots, maxRingSlots)
	}
	return nil
}

// ParseSpec decodes a JSON SLO spec, rejecting unknown fields so a
// typo'd key fails loudly instead of silently disabling an alert.
func ParseSpec(r io.Reader) (Spec, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("%w: %v", ErrConfig, err)
	}
	if _, err := s.normalize(); err != nil {
		return Spec{}, err
	}
	return s, nil
}

// LoadSpec reads an SLO spec file (the -slo flag).
func LoadSpec(path string) (Spec, error) {
	f, err := os.Open(path)
	if err != nil {
		return Spec{}, err
	}
	defer f.Close()
	s, err := ParseSpec(f)
	if err != nil {
		return Spec{}, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}
