package slo

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/flight"
	"repro/internal/obs"
	"repro/internal/stats"
)

// CounterSource reads the cumulative (good, total) event counts for one
// objective. Sources are read at every engine tick and must be cheap
// and lock-free — in resd they sum published shard atomics, exactly
// like a /metrics scrape.
type CounterSource func() (good, total uint64)

// HistSource snapshots a cumulative exponential-histogram bucket vector
// (obs.Histogram.Snapshot shape) and returns the total. Same contract
// as CounterSource: read per tick, must never touch an event loop.
type HistSource func(dst *[stats.ExpBuckets]uint64) (total uint64)

// Config parameterises New.
type Config struct {
	// Spec declares the objectives; it is validated by New.
	Spec Spec
	// Registry, when non-nil, receives the resd_slo_* metric families.
	Registry *obs.Registry
	// Journal, when non-nil, receives alert-state transitions as
	// structured events (subsys "slo").
	Journal *flight.Journal
	// OnAlert, when non-nil, is invoked (outside the engine lock, on
	// the tick goroutine) after every alert-state transition. resdsrv
	// uses it to capture a rate-limited diagnostic bundle on page.
	OnAlert func(objective string, from, to Severity, burn float64)
	// Now is the clock (tests inject a fake one; "" = time.Now). Ticks
	// stamp ring snapshots with Now().UnixNano().
	Now func() time.Time
}

// windowBurn is one evaluated window's burn rate, kept for the
// resd_slo_burn_rate{objective,window} gauge.
type windowBurn struct {
	label  string
	window time.Duration
	burn   float64
}

// objState is one objective's runtime state, guarded by Engine.mu.
type objState struct {
	o    Objective
	src  CounterSource
	ring *stats.SnapRing // width 2: cumulative [good, total]

	sev         Severity
	attainment  float64 // good fraction over the budget window
	budget      float64 // error budget remaining over the budget window
	burnMax     float64
	burns       []windowBurn
	transitions uint64
}

// histState is one tracked histogram: a ring of cumulative bucket
// snapshots answering windowed percentiles (the fix for the
// process-lifetime-only caveat on resd's slack and loop-turn series).
type histState struct {
	name string
	src  HistSource
	ring *stats.SnapRing // width stats.ExpBuckets
}

// Engine evaluates SLO objectives: every Period it snapshots each bound
// source into a stats.SnapRing, derives per-window (good, total) deltas,
// and runs the multi-window multi-burn-rate rules. It owns no
// measurement of its own — everything it knows comes from the cumulative
// counters the service already publishes, so arming an engine adds no
// work to any event loop.
//
// Lifecycle: New validates the spec and registers the metric families;
// the embedding service binds a CounterSource per objective (Bind) and
// any windowed histograms (TrackHistogram), then calls Start. resd.New
// does all three when ObsConfig.SLO is set, and Service.Close stops the
// engine.
type Engine struct {
	res     resolved
	reg     *obs.Registry
	journal *flight.Journal
	onAlert func(objective string, from, to Severity, burn float64)
	now     func() time.Time

	mu      sync.Mutex
	objs    []*objState
	hists   []*histState
	started bool
	stopped bool
	stop    chan struct{}
	done    chan struct{}

	vec2    []uint64
	bucketv [stats.ExpBuckets]uint64
}

// New builds an engine from cfg, validating the spec and registering
// the resd_slo_* families on cfg.Registry. The engine is inert until
// Start.
func New(cfg Config) (*Engine, error) {
	res, err := cfg.Spec.normalize()
	if err != nil {
		return nil, err
	}
	e := &Engine{
		res:     res,
		reg:     cfg.Registry,
		journal: cfg.Journal,
		onAlert: cfg.OnAlert,
		now:     cfg.Now,
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
		vec2:    make([]uint64, 2),
	}
	if e.now == nil {
		e.now = time.Now
	}
	for _, o := range res.objectives {
		slots := int(res.maxWindow()/res.period) + 2
		st := &objState{
			o:          o,
			ring:       stats.NewSnapRing(slots, 2),
			attainment: 1,
			budget:     1,
		}
		for _, w := range o.distinctWindows() {
			st.burns = append(st.burns, windowBurn{label: w.String(), window: w})
		}
		e.objs = append(e.objs, st)
	}
	e.register()
	return e, nil
}

// maxWindow is the longest span any ring must cover.
func (r resolved) maxWindow() time.Duration {
	max := r.budgetWindow
	for _, o := range r.objectives {
		for _, rule := range o.Rules {
			if rule.Long > max {
				max = rule.Long
			}
		}
	}
	return max
}

// distinctWindows lists the objective's rule windows, deduplicated and
// sorted — the windows resd_slo_burn_rate reports.
func (o Objective) distinctWindows() []time.Duration {
	seen := map[time.Duration]bool{}
	var out []time.Duration
	for _, r := range o.Rules {
		for _, w := range []time.Duration{r.Short, r.Long} {
			if !seen[w] {
				seen[w] = true
				out = append(out, w)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Period returns the snapshot-and-evaluate cadence.
func (e *Engine) Period() time.Duration { return e.res.period }

// BudgetWindow returns the span attainment and budget are reported over.
func (e *Engine) BudgetWindow() time.Duration { return e.res.budgetWindow }

// Objectives returns the validated objectives, for the embedding
// service to bind sources against.
func (e *Engine) Objectives() []Objective {
	out := make([]Objective, len(e.objs))
	for i, st := range e.objs {
		out[i] = st.o
	}
	return out
}

// Bind attaches the cumulative (good, total) source for one objective.
// Every objective must be bound before Start.
func (e *Engine) Bind(objective string, src CounterSource) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.started {
		return fmt.Errorf("%w: Bind(%q) after Start", ErrConfig, objective)
	}
	for _, st := range e.objs {
		if st.o.Name != objective {
			continue
		}
		if st.src != nil {
			return fmt.Errorf("%w: objective %q bound twice", ErrConfig, objective)
		}
		st.src = src
		return nil
	}
	return fmt.Errorf("%w: Bind(%q): no such objective", ErrConfig, objective)
}

// TrackHistogram routes a cumulative histogram through the snapshot
// ring, making windowed percentiles of it queryable (WindowQuantile)
// and — with a registry — exposed as the summary family name+"_window"
// with quantile labels 0.5/0.9/0.99 and a _count of the observations
// inside the window. Must be called before Start.
func (e *Engine) TrackHistogram(name string, src HistSource) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.started {
		return fmt.Errorf("%w: TrackHistogram(%q) after Start", ErrConfig, name)
	}
	for _, h := range e.hists {
		if h.name == name {
			return fmt.Errorf("%w: histogram %q tracked twice", ErrConfig, name)
		}
	}
	slots := int(e.res.maxWindow()/e.res.period) + 2
	h := &histState{name: name, src: src, ring: stats.NewSnapRing(slots, stats.ExpBuckets)}
	e.hists = append(e.hists, h)
	e.reg.Collect(obs.KindSummary, name+"_window",
		"Windowed percentiles of "+name+" over the SLO budget window (restart-free, from the snapshot ring).",
		func(em obs.Emitter) {
			e.mu.Lock()
			defer e.mu.Unlock()
			var snap [stats.ExpBuckets]uint64
			span, ok := h.ring.Delta(int64(e.res.budgetWindow), snap[:])
			if !ok || span <= 0 {
				return // no window yet: absent beats zeros pretending to be data
			}
			var total uint64
			for _, n := range snap {
				total += n
			}
			for _, q := range []struct {
				v     float64
				label string
			}{{0.5, "0.5"}, {0.9, "0.9"}, {0.99, "0.99"}} {
				em.Emit(float64(stats.ExpQuantileFromBuckets(&snap, total, q.v)), obs.L("quantile", q.label))
			}
			em.EmitSuffix("_count", float64(total))
		})
	return nil
}

// Start checks every objective is bound and launches the tick loop.
func (e *Engine) Start() error {
	e.mu.Lock()
	if e.started || e.stopped {
		e.mu.Unlock()
		return fmt.Errorf("%w: engine started twice or after Stop", ErrConfig)
	}
	for _, st := range e.objs {
		if st.src == nil {
			e.mu.Unlock()
			return fmt.Errorf("%w: objective %q has no bound source", ErrConfig, st.o.Name)
		}
	}
	e.started = true
	e.mu.Unlock()
	e.journal.Record(flight.Info, "slo", -1, "slo engine armed",
		flight.KV{K: "objectives", V: fmt.Sprint(len(e.objs))},
		flight.KV{K: "period", V: e.res.period.String()})
	e.Tick(e.now()) // anchor the baseline snapshot immediately
	go func() {
		defer close(e.done)
		tick := time.NewTicker(e.res.period)
		defer tick.Stop()
		for {
			select {
			case <-e.stop:
				return
			case <-tick.C:
				e.Tick(e.now())
			}
		}
	}()
	return nil
}

// Stop ends the tick loop and waits for it. Idempotent; a never-started
// engine stops trivially.
func (e *Engine) Stop() {
	e.mu.Lock()
	if e.stopped {
		e.mu.Unlock()
		<-e.done
		return
	}
	e.stopped = true
	started := e.started
	e.mu.Unlock()
	close(e.stop)
	if !started {
		close(e.done)
	}
	<-e.done
}

// transition is one alert-state change gathered under the lock and
// delivered (journal + OnAlert) outside it.
type transition struct {
	objective string
	from, to  Severity
	burn      float64
}

// Tick runs one snapshot-and-evaluate pass at the given instant. Start
// drives it at the spec period; tests drive it directly with a fake
// clock. Safe to call concurrently with scrapes and States readers.
func (e *Engine) Tick(now time.Time) {
	at := now.UnixNano()
	var fired []transition
	e.mu.Lock()
	for _, st := range e.objs {
		if st.src == nil {
			continue
		}
		good, total := st.src()
		e.vec2[0], e.vec2[1] = good, total
		st.ring.Push(at, e.vec2)
	}
	for _, h := range e.hists {
		h.src(&e.bucketv)
		h.ring.Push(at, e.bucketv[:])
	}
	for _, st := range e.objs {
		if st.src == nil {
			continue
		}
		if tr, changed := e.evaluate(st); changed {
			fired = append(fired, tr)
		}
	}
	e.mu.Unlock()
	for _, tr := range fired {
		sev := flight.Info
		switch tr.to {
		case SevWarn:
			sev = flight.Warn
		case SevPage:
			sev = flight.Error
		}
		e.journal.Record(sev, "slo", -1, "slo alert state changed",
			flight.KV{K: "objective", V: tr.objective},
			flight.KV{K: "from", V: tr.from.String()},
			flight.KV{K: "to", V: tr.to.String()},
			flight.KV{K: "burn", V: fmt.Sprintf("%.2f", tr.burn)})
		if e.onAlert != nil {
			e.onAlert(tr.objective, tr.from, tr.to, tr.burn)
		}
	}
}

// errFrac answers the bad-event fraction over one trailing window, or
// 0 when the ring cannot answer it or the window saw no traffic — an
// empty window burns no budget and can never page.
func (st *objState) errFrac(window time.Duration) float64 {
	var d [2]uint64
	if _, ok := st.ring.Delta(int64(window), d[:]); !ok {
		return 0
	}
	good, total := d[0], d[1]
	if total == 0 {
		return 0
	}
	if good > total {
		good = total
	}
	return 1 - float64(good)/float64(total)
}

// evaluate recomputes one objective's windows and alert state. Caller
// holds e.mu.
func (e *Engine) evaluate(st *objState) (transition, bool) {
	budgetDenom := 1 - st.o.Target
	frac := st.errFrac(e.res.budgetWindow)
	st.attainment = 1 - frac
	st.budget = 1 - frac/budgetDenom
	st.burnMax = 0
	for i := range st.burns {
		st.burns[i].burn = st.errFrac(st.burns[i].window) / budgetDenom
		if st.burns[i].burn > st.burnMax {
			st.burnMax = st.burns[i].burn
		}
	}
	burnAt := func(w time.Duration) float64 {
		for _, wb := range st.burns {
			if wb.window == w {
				return wb.burn
			}
		}
		return 0
	}
	newSev := OK
	for _, rule := range st.o.Rules {
		if burnAt(rule.Short) >= rule.Burn && burnAt(rule.Long) >= rule.Burn && rule.Severity > newSev {
			newSev = rule.Severity
		}
	}
	if newSev == st.sev {
		return transition{}, false
	}
	tr := transition{objective: st.o.Name, from: st.sev, to: newSev, burn: st.burnMax}
	st.sev = newSev
	st.transitions++
	return tr, true
}

// State is one objective's evaluated condition — what the Watch
// telemetry's SLO family and obscheck -slo consume.
type State struct {
	Name   string
	Tenant string
	Signal Signal
	Target float64
	// Attainment is the good-event fraction over the budget window
	// (1 when the window saw no traffic).
	Attainment float64
	// BudgetRemaining is the unburned fraction of the error budget over
	// the budget window; negative means the budget is overspent.
	BudgetRemaining float64
	// BurnMax is the highest burn rate across the objective's rule
	// windows.
	BurnMax float64
	// Severity is the current alert state.
	Severity Severity
}

// States snapshots every objective's evaluated condition.
func (e *Engine) States() []State {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]State, len(e.objs))
	for i, st := range e.objs {
		out[i] = State{
			Name:            st.o.Name,
			Tenant:          st.o.Tenant,
			Signal:          st.o.Signal,
			Target:          st.o.Target,
			Attainment:      st.attainment,
			BudgetRemaining: st.budget,
			BurnMax:         st.burnMax,
			Severity:        st.sev,
		}
	}
	return out
}

// Warning summarises the non-OK objectives for /healthz, or "" when
// every objective is healthy.
func (e *Engine) Warning() string {
	e.mu.Lock()
	defer e.mu.Unlock()
	var parts []string
	for _, st := range e.objs {
		if st.sev != OK {
			parts = append(parts, fmt.Sprintf("slo %s %s (burn %.1fx)", st.o.Name, st.sev, st.burnMax))
		}
	}
	return strings.Join(parts, "; ")
}

// WindowQuantile answers quantile q of a tracked histogram over the
// budget window: the windowed percentile the process-lifetime summary
// cannot give. ok is false until the ring holds a window.
func (e *Engine) WindowQuantile(name string, q float64) (v int64, n uint64, ok bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, h := range e.hists {
		if h.name != name {
			continue
		}
		var snap [stats.ExpBuckets]uint64
		if _, ok := h.ring.Delta(int64(e.res.budgetWindow), snap[:]); !ok {
			return 0, 0, false
		}
		var total uint64
		for _, c := range snap {
			total += c
		}
		return stats.ExpQuantileFromBuckets(&snap, total, q), total, true
	}
	return 0, 0, false
}

// GoodUnderBound counts the samples in an exponential-histogram bucket
// snapshot that are certainly ≤ bound: the buckets whose upper bound
// fits under it. This is how a slack objective's CounterSource turns
// obs.Histogram.Snapshot into a cumulative good count — conservative on
// the bucket geometry (the effective bound is bound rounded down to
// 2^k−1), which errs toward counting borderline samples as bad, never
// as good.
func GoodUnderBound(snap *[stats.ExpBuckets]uint64, bound int64) uint64 {
	var good uint64
	for b := 0; b < stats.ExpBuckets; b++ {
		if stats.ExpBucketUpper(b) > bound {
			break
		}
		good += snap[b]
	}
	return good
}

// register publishes the resd_slo_* families. Every collector reads
// engine state under e.mu — scrape-safe by the same argument as every
// other obs collector: the lock is shared with the tick goroutine, and
// neither side ever touches a shard event loop.
func (e *Engine) register() {
	if e.reg == nil {
		return
	}
	labels := func(st *objState) []obs.Label {
		ls := []obs.Label{obs.L("objective", st.o.Name)}
		if st.o.Tenant != "" {
			ls = append(ls, obs.L("tenant", st.o.Tenant))
		}
		return ls
	}
	e.reg.Collect(obs.KindGauge, "resd_slo_attainment",
		"Good-event fraction per objective over the SLO budget window (1 = every event met the objective).",
		func(em obs.Emitter) {
			e.mu.Lock()
			defer e.mu.Unlock()
			for _, st := range e.objs {
				em.Emit(st.attainment, labels(st)...)
			}
		})
	e.reg.Collect(obs.KindGauge, "resd_slo_error_budget_remaining",
		"Unburned fraction of each objective's error budget over the budget window (negative = overspent).",
		func(em obs.Emitter) {
			e.mu.Lock()
			defer e.mu.Unlock()
			for _, st := range e.objs {
				em.Emit(st.budget, labels(st)...)
			}
		})
	e.reg.Collect(obs.KindGauge, "resd_slo_burn_rate",
		"Error-budget burn rate per objective and trailing window (1 = burning exactly the budgeted rate).",
		func(em obs.Emitter) {
			e.mu.Lock()
			defer e.mu.Unlock()
			for _, st := range e.objs {
				for _, wb := range st.burns {
					em.Emit(wb.burn, append(labels(st), obs.L("window", wb.label))...)
				}
			}
		})
	e.reg.Collect(obs.KindGauge, "resd_slo_alert_state",
		"Per-objective alert state: 0 ok, 1 warn, 2 page.",
		func(em obs.Emitter) {
			e.mu.Lock()
			defer e.mu.Unlock()
			for _, st := range e.objs {
				em.Emit(float64(st.sev), labels(st)...)
			}
		})
	e.reg.Collect(obs.KindCounter, "resd_slo_alert_transitions_total",
		"Alert-state transitions per objective since start.",
		func(em obs.Emitter) {
			e.mu.Lock()
			defer e.mu.Unlock()
			for _, st := range e.objs {
				em.Emit(float64(st.transitions), labels(st)...)
			}
		})
}
