package slo

import (
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/flight"
	"repro/internal/obs"
	"repro/internal/stats"
)

// fakeCounters is a hand-cranked cumulative (good, total) source.
type fakeCounters struct {
	good, total atomic.Uint64
}

func (f *fakeCounters) src() (uint64, uint64) { return f.good.Load(), f.total.Load() }

func (f *fakeCounters) add(good, bad uint64) {
	f.good.Add(good)
	f.total.Add(good + bad)
}

// drillSpec is the shape the CI drill uses: second-scale windows so a
// test (or smoke job) can drive transitions in real time — here driven
// entirely by a fake clock.
func drillSpec() Spec {
	return Spec{
		Period:       "1s",
		BudgetWindow: "30s",
		Objectives: []ObjectiveSpec{{
			Name:   "deadline",
			Signal: "deadline_attainment",
			Target: 0.9,
			Rules: []RuleSpec{
				{Severity: "page", Burn: 5, Short: "2s", Long: "6s"},
				{Severity: "warn", Burn: 2, Short: "4s", Long: "10s"},
			},
		}},
	}
}

// newTestEngine builds an engine over drillSpec with a fake clock and
// returns the crank: advance(good, bad) adds events and ticks one
// period.
func newTestEngine(t *testing.T, cfg Config) (*Engine, *fakeCounters, func(good, bad uint64) time.Time) {
	t.Helper()
	if cfg.Spec.Objectives == nil {
		cfg.Spec = drillSpec()
	}
	now := time.Unix(1000, 0)
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	f := &fakeCounters{}
	if err := e.Bind("deadline", f.src); err != nil {
		t.Fatal(err)
	}
	e.Tick(now) // baseline
	advance := func(good, bad uint64) time.Time {
		f.add(good, bad)
		now = now.Add(e.Period())
		e.Tick(now)
		return now
	}
	return e, f, advance
}

func sev(t *testing.T, e *Engine, name string) Severity {
	t.Helper()
	for _, st := range e.States() {
		if st.Name == name {
			return st.Severity
		}
	}
	t.Fatalf("objective %q not in States()", name)
	return OK
}

func TestEngineFiresAndClears(t *testing.T) {
	e, _, advance := newTestEngine(t, Config{})
	// Healthy traffic: 100 good/s, no transitions.
	for i := 0; i < 12; i++ {
		advance(100, 0)
		if got := sev(t, e, "deadline"); got != OK {
			t.Fatalf("healthy traffic drove severity to %v", got)
		}
	}
	// All-bad traffic: errFrac 1.0, burn 10× (budget 0.1) — past the
	// page rule once both 2s and 6s windows are saturated.
	for i := 0; i < 7; i++ {
		advance(0, 100)
	}
	if got := sev(t, e, "deadline"); got != SevPage {
		t.Fatalf("sustained bad traffic: severity %v, want page", got)
	}
	if w := e.Warning(); !strings.Contains(w, "deadline") || !strings.Contains(w, "page") {
		t.Fatalf("Warning() = %q, want it to name the paging objective", w)
	}
	var paged State
	for _, st := range e.States() {
		if st.Name == "deadline" {
			paged = st
		}
	}
	if paged.BurnMax < 5 {
		t.Fatalf("BurnMax %v while paging at burn threshold 5", paged.BurnMax)
	}
	if paged.Attainment > 0.9 {
		t.Fatalf("Attainment %v after sustained bad traffic", paged.Attainment)
	}
	// Recovery: good traffic drains the short window first (multi-window
	// reset), and eventually the warn windows too.
	for i := 0; i < 30; i++ {
		advance(100, 0)
	}
	if got := sev(t, e, "deadline"); got != OK {
		t.Fatalf("after recovery: severity %v, want ok", got)
	}
	if w := e.Warning(); w != "" {
		t.Fatalf("Warning() = %q after recovery, want empty", w)
	}
}

func TestEngineShortWindowResetsBeforeLong(t *testing.T) {
	e, _, advance := newTestEngine(t, Config{})
	for i := 0; i < 7; i++ {
		advance(0, 100)
	}
	if got := sev(t, e, "deadline"); got != SevPage {
		t.Fatalf("severity %v, want page", got)
	}
	// A couple of good periods drain the 2s short window below the page
	// threshold while the 6s long window still carries the burn: the
	// page must clear (down to warn — the warn rule's 4s short window
	// is still hot) long before the long window drains.
	advance(100, 0)
	advance(100, 0)
	advance(100, 0)
	if got := sev(t, e, "deadline"); got == SevPage {
		t.Fatal("page still firing after the short window drained — multi-window reset broken")
	}
}

func TestEngineZeroTrafficNeverPages(t *testing.T) {
	e, _, advance := newTestEngine(t, Config{})
	for i := 0; i < 20; i++ {
		advance(0, 0)
	}
	states := e.States()
	if states[0].Severity != OK || states[0].Attainment != 1 || states[0].BudgetRemaining != 1 {
		t.Fatalf("zero traffic: %+v, want ok/1/1", states[0])
	}
	if states[0].BurnMax != 0 {
		t.Fatalf("zero traffic BurnMax = %v, want 0", states[0].BurnMax)
	}
}

func TestEngineTransitionsJournaledAndCallback(t *testing.T) {
	j := flight.NewJournal(64, nil)
	var calls []string
	cfg := Config{
		Journal: j,
		OnAlert: func(objective string, from, to Severity, burn float64) {
			calls = append(calls, objective+":"+from.String()+"->"+to.String())
		},
	}
	e, _, advance := newTestEngine(t, cfg)
	for i := 0; i < 7; i++ {
		advance(0, 100)
	}
	if got := sev(t, e, "deadline"); got != SevPage {
		t.Fatalf("severity %v, want page", got)
	}
	for i := 0; i < 30; i++ {
		advance(100, 0)
	}
	if len(calls) < 2 {
		t.Fatalf("OnAlert calls %v, want at least fire+clear", calls)
	}
	if calls[len(calls)-1] != "deadline:warn->ok" && calls[len(calls)-1] != "deadline:page->ok" {
		t.Fatalf("last transition %q, want a clear to ok", calls[len(calls)-1])
	}
	if j.SubsysCount("slo", flight.Error) == 0 {
		t.Fatal("page transition not journaled at error severity")
	}
	var found bool
	for _, ev := range j.Tail(0) {
		if ev.Subsys != "slo" || ev.Msg != "slo alert state changed" {
			continue
		}
		for _, kv := range ev.KV {
			if kv.K == "to" && kv.V == "page" {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("no journal event records the transition to page")
	}
}

func TestEngineMetricsFamilies(t *testing.T) {
	reg := obs.NewRegistry()
	e, _, advance := newTestEngine(t, Config{Registry: reg})
	for i := 0; i < 7; i++ {
		advance(0, 100)
	}
	want := map[string]bool{
		"resd_slo_attainment":              false,
		"resd_slo_error_budget_remaining":  false,
		"resd_slo_burn_rate":               false,
		"resd_slo_alert_state":             false,
		"resd_slo_alert_transitions_total": false,
	}
	var alertState float64
	for _, s := range reg.Gather() {
		if _, ok := want[s.Name]; ok {
			want[s.Name] = true
		}
		if s.Name == "resd_slo_alert_state" {
			alertState = s.Value
		}
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("family %s not exposed", name)
		}
	}
	if alertState != 2 {
		t.Errorf("resd_slo_alert_state = %v while paging, want 2", alertState)
	}
	if got := sev(t, e, "deadline"); got != SevPage {
		t.Fatalf("severity %v, want page", got)
	}
}

func TestEngineTrackHistogramWindowedQuantiles(t *testing.T) {
	reg := obs.NewRegistry()
	spec := drillSpec()
	e, err := New(Config{Spec: spec, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	f := &fakeCounters{}
	if err := e.Bind("deadline", f.src); err != nil {
		t.Fatal(err)
	}
	var hist obs.Histogram
	if err := e.TrackHistogram("resd_slack_ticks", hist.Snapshot); err != nil {
		t.Fatal(err)
	}
	if err := e.TrackHistogram("resd_slack_ticks", hist.Snapshot); err == nil {
		t.Fatal("double TrackHistogram accepted")
	}
	now := time.Unix(2000, 0)
	e.Tick(now)
	// Early era: large slacks. Then a long quiet era, then small slacks.
	// The windowed p99 must forget the early era once it ages out of the
	// 30s budget window — the thing the process-lifetime summary cannot do.
	for i := 0; i < 100; i++ {
		hist.Observe(1 << 20)
	}
	now = now.Add(time.Second)
	e.Tick(now)
	if v, n, ok := e.WindowQuantile("resd_slack_ticks", 0.99); !ok || n != 100 || v < 1<<20 {
		t.Fatalf("early era: v=%d n=%d ok=%v, want p99 >= 2^20 over 100 samples", v, n, ok)
	}
	for i := 0; i < 40; i++ {
		now = now.Add(time.Second)
		e.Tick(now)
	}
	for i := 0; i < 100; i++ {
		hist.Observe(3)
	}
	now = now.Add(time.Second)
	e.Tick(now)
	v, n, ok := e.WindowQuantile("resd_slack_ticks", 0.99)
	if !ok || n != 100 || v >= 1<<20 {
		t.Fatalf("late era: v=%d n=%d ok=%v, want the early era aged out", v, n, ok)
	}
	var sawWindowFamily bool
	for _, s := range reg.Gather() {
		if s.Name == "resd_slack_ticks_window" || s.Name == "resd_slack_ticks_window_count" {
			sawWindowFamily = true
		}
	}
	if !sawWindowFamily {
		t.Fatal("resd_slack_ticks_window family not exposed")
	}
}

func TestEngineStartStopLifecycle(t *testing.T) {
	spec := drillSpec()
	spec.Period = "10ms"
	spec.BudgetWindow = "1s"
	spec.Objectives[0].Rules = []RuleSpec{{Severity: "page", Burn: 2, Short: "50ms", Long: "200ms"}}
	e, err := New(Config{Spec: spec})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Start(); err == nil {
		t.Fatal("Start accepted an unbound objective")
	}
	f := &fakeCounters{}
	if err := e.Bind("deadline", f.src); err != nil {
		t.Fatal(err)
	}
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	if err := e.Start(); err == nil {
		t.Fatal("double Start accepted")
	}
	f.add(0, 1000)
	deadline := time.Now().Add(5 * time.Second)
	for sevNow := OK; sevNow != SevPage; {
		if time.Now().After(deadline) {
			t.Fatal("background ticker never drove the alert to page")
		}
		time.Sleep(20 * time.Millisecond)
		sevNow = sev(t, e, "deadline")
	}
	e.Stop()
	e.Stop() // idempotent
}

func TestEngineBindErrors(t *testing.T) {
	e, err := New(Config{Spec: drillSpec()})
	if err != nil {
		t.Fatal(err)
	}
	f := &fakeCounters{}
	if err := e.Bind("nope", f.src); err == nil {
		t.Fatal("Bind of unknown objective accepted")
	}
	if err := e.Bind("deadline", f.src); err != nil {
		t.Fatal(err)
	}
	if err := e.Bind("deadline", f.src); err == nil {
		t.Fatal("double Bind accepted")
	}
}

func TestSlackGoodBucketSemantics(t *testing.T) {
	// The slack objective counts a sample good when its whole bucket is
	// ≤ bound; GoodBuckets is the helper resd uses to turn a bound into
	// a cumulative good count.
	var h obs.Histogram
	h.Observe(3)    // bucket upper 3
	h.Observe(100)  // bucket upper 127
	h.Observe(5000) // bucket upper 8191
	var snap [stats.ExpBuckets]uint64
	total := h.Snapshot(&snap)
	if total != 3 {
		t.Fatalf("total %d, want 3", total)
	}
	if g := GoodUnderBound(&snap, 127); g != 2 {
		t.Fatalf("GoodUnderBound(127) = %d, want 2", g)
	}
	if g := GoodUnderBound(&snap, 126); g != 1 {
		t.Fatalf("GoodUnderBound(126) = %d, want 1 (bucket 127 not wholly under)", g)
	}
	if g := GoodUnderBound(&snap, 1<<62); g != 3 {
		t.Fatalf("GoodUnderBound(huge) = %d, want 3", g)
	}
}
