package reswire

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"io"
	"reflect"
	"testing"
	"time"

	"repro/internal/resd"
	"repro/internal/slo"
)

// FuzzWireCodec drives the frame decoder with arbitrary bytes and checks
// it against a sequential oracle: frames are decoded one after another
// from the stream exactly as a connection's read loop would, and every
// successfully decoded message must re-encode into a frame that decodes
// to the identical value (the canonical round trip). The decoder must
// never panic, never allocate past the declared frame bounds, and must
// stop at the first malformed frame. The first input byte selects the
// direction (request vs response decoding); the rest is the raw stream.
func FuzzWireCodec(f *testing.F) {
	// Well-formed single frames of every op, both directions — including
	// v2 tenancy (tenant-tailed Reserve, the quota ops) and down-level v1
	// frames, which must keep decoding forever.
	for _, req := range []Request{
		{ID: 1, Op: OpReserve, Ready: 10, Procs: 4, Dur: 20, Deadline: int64Max},
		{ID: 2, Op: OpCancel, Resv: 7},
		{ID: 3, Op: OpQuery, Ready: 99},
		{ID: 4, Op: OpSnapshot, Shard: 1},
		{ID: 5, Op: OpPing},
		{ID: 6, Op: OpStats},
		{ID: 7, Op: OpReserve, Ready: 10, Procs: 4, Dur: 20, Deadline: int64Max, Tenant: "acme"},
		{ID: 8, Op: OpReserve, Version: VersionV1, Ready: 10, Procs: 4, Dur: 20, Deadline: int64Max},
		{ID: 9, Op: OpQuotaGet, Tenant: "acme"},
		{ID: 10, Op: OpQuotaSet, Tenant: "acme", Share: 0.25},
		{ID: 11, Op: OpReserve, Version: VersionV2, Ready: 10, Procs: 4, Dur: 20, Deadline: int64Max, Tenant: "acme"},
		{ID: 12, Op: OpTrace, Limit: 16},
		{ID: 13, Op: OpTrace, Limit: -1},
		{ID: 14, Op: OpWatch, Interval: time.Second, Mask: WatchAll},
		{ID: 15, Op: OpWatch, Interval: 0, Mask: WatchShards | WatchTraces},
		{ID: 16, Op: OpReserve, Ready: 10, Procs: 4, Dur: 20, Deadline: int64Max, Tenant: "acme",
			Stamp: 1_700_000_000_000_000_000, Traced: true},
		{ID: 17, Op: OpReserve, Version: VersionV4, Ready: 10, Procs: 4, Dur: 20, Deadline: int64Max, Tenant: "acme"},
	} {
		frame, err := AppendRequest(nil, req)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(append([]byte{0}, frame...))
	}
	for _, resp := range []Response{
		{ID: 1, Op: OpReserve, Code: CodeOK, Resv: resd.Reservation{ID: 9, Shard: 1, Start: 5, Dur: 6, Procs: 7}},
		{ID: 2, Op: OpReserve, Code: CodeRejectedDeadline, Detail: "too late"},
		{ID: 3, Op: OpQuery, Code: CodeOK, Free: []int{1, 2, 3}},
		{ID: 4, Op: OpSnapshot, Code: CodeOK, M: 4, Segs: []Segment{{0, 4}, {5, 1}, {9, 4}}},
		{ID: 5, Op: OpStats, Code: CodeOK, Stats: []resd.ShardStats{{Active: 1, Admitted: 2, MigratedIn: 3, MigratedOut: 1, SlackP99: 63}}},
		{ID: 6, Op: OpStats, Version: VersionV1, Code: CodeOK, Stats: []resd.ShardStats{{Active: 1, Admitted: 2}}},
		{ID: 11, Op: OpStats, Version: VersionV2, Code: CodeOK, Stats: []resd.ShardStats{{Active: 1, Admitted: 2, RejectedQuota: 3}}},
		{ID: 7, Op: OpReserve, Code: CodeRejectedQuota, Detail: "tenant acme over budget"},
		{ID: 8, Op: OpQuotaGet, Code: CodeOK, Quota: QuotaInfo{
			Tenant: "acme", Group: "prod", Mode: 1, Share: 0.5,
			Capacity: 1 << 20, Budget: 1 << 19, Used: 77, Inflight: 3, Admitted: 9, Cancelled: 6, Rejected: 2}},
		{ID: 9, Op: OpQuotaSet, Code: CodeOK},
		{ID: 12, Op: OpTrace, Code: CodeOK, Traces: []resd.TraceRecord{{
			Seq: 3, Tenant: "acme", Shard: 1, Outcome: resd.TraceAdmitted, Start: 50,
			Arrival: time.Unix(0, 1_700_000_000_000_000_000),
			Route:   100, Enqueue: 250, BatchStart: 900, Decision: 1500,
		}, {
			Seq: 4, Shard: -1, Outcome: resd.TraceRejectedDeadline,
			Arrival:  time.Unix(0, 1_700_000_000_000_001_000),
			Decision: 800,
		}}},
		{ID: 13, Op: OpTrace, Code: CodeOK},
		{ID: 14, Op: OpTrace, Code: CodeOK, Traces: []resd.TraceRecord{{
			Seq: 5, Tenant: "acme", Shard: 0, Outcome: resd.TraceAdmitted, Start: 50,
			Arrival: time.Unix(0, 1_700_000_000_000_000_000), ClientSend: 125_000,
			Route: 100, Enqueue: 250, BatchStart: 900, Decision: 1500,
		}}},
		{ID: 15, Op: OpWatch, Code: CodeOK, Telemetry: &Telemetry{
			Seq: 3, Dropped: 1, Mask: WatchAll, M: 64, Floor: 16,
			Queue:         []int{2, 0},
			Shards:        []resd.ShardStats{{Active: 1, Admitted: 2, SlackP99: 63}, {Admitted: 4}},
			Tenants:       []TenantTelemetry{{Tenant: "acme", Budget: 100, Used: 40, Inflight: 2}},
			WAL:           []WALTelemetry{{Shard: 1, Gen: 2, Bytes: 4096, Records: 7, Fsyncs: 3, Snapshots: 1, FsyncP99: 90_000}},
			TracesSampled: 9, TracesSlow: 2,
		}},
		{ID: 16, Op: OpWatch, Code: CodeOK, Telemetry: &Telemetry{
			Mask: WatchShards, M: 8, Queue: []int{0}, Shards: []resd.ShardStats{{}},
		}},
		{ID: 17, Op: OpWatch, Code: CodeOK, Telemetry: &Telemetry{
			Mask: WatchSLO, M: 8,
			SLO: []SLOTelemetry{
				{Name: "deadline", Signal: slo.DeadlineAttainment, Target: 0.99,
					Attainment: 0.95, BudgetRemaining: -4, BurnMax: 14.5, State: slo.SevPage},
				{Name: "acme-deadline", Tenant: "acme", Signal: slo.DeadlineAttainment,
					Target: 0.9, Attainment: 1, BudgetRemaining: 1, BurnMax: 0, State: slo.OK},
			},
		}},
	} {
		frame, err := AppendResponse(nil, resp)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(append([]byte{1}, frame...))
	}
	// Hostile shapes: truncation, bad magic, bad versions, huge length,
	// v2-only ops smuggled into v1 frames, NaN share bits.
	f.Add([]byte{0, 0, 0, 0})                                             // truncated length prefix
	f.Add([]byte{0, 0, 0, 0, 16, 'X', 'X', 1, 1})                         // bad magic
	f.Add([]byte{1, 0, 0, 0, 16, 'R', 'W', 9, 1})                         // bad version
	f.Add([]byte{0, 0, 0, 0, 16, 'R', 'W', 0, 1})                         // version 0 on the wire
	f.Add([]byte{0, 0, 0, 0, 16, 'R', 'W', 6, 1})                         // version one past current
	f.Add([]byte{0, 0, 0, 0, 16, 'R', 'W', 3, 1})                         // v3 frame with a truncated body
	f.Add([]byte{0, 0, 0, 0, 16, 'R', 'W', 4, 9})                         // v4 Trace with a truncated body
	f.Add([]byte{0, 0, 0, 0, 16, 'R', 'W', 5, 1})                         // v5 Reserve with a truncated stamp tail
	f.Add([]byte{0, 0, 0, 0, 16, 'R', 'W', 4, 10})                        // Watch inside a v4 frame
	f.Add([]byte{0, 0, 0, 0, 24, 'R', 'W', 5, 10, 0, 0, 0, 0, 0, 0, 0, 1, // Watch with an empty mask
		0, 0, 0, 0, 0, 0, 0, 1, 0, 0, 0, 0})
	f.Add([]byte{0, 0, 0, 0, 24, 'R', 'W', 5, 10, 0, 0, 0, 0, 0, 0, 0, 1, // Watch with unknown mask bits
		0, 0, 0, 0, 0, 0, 0, 1, 0xFF, 0xFF, 0xFF, 0xFF})
	f.Add([]byte{0, 0, 0, 0, 24, 'R', 'W', 5, 10, 0, 0, 0, 0, 0, 0, 0, 1, // Watch with a negative interval
		0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 1})
	f.Add([]byte{1, 0, 0, 0, 33, 'R', 'W', 5, 10, 0, 0, 0, 0, 0, 0, 0, 1, 0, // Telemetry claiming 2^24 shards
		0, 0, 0, 0, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1, 0, 0, 0, 16, 0, 0, 0, 2,
		1, 0, 0, 0})
	f.Add([]byte{0, 0, 0, 0, 13, 'R', 'W', 3, 9, 0, 0, 0, 0, 0, 0, 0, 1, 0}) // Trace inside a v3 frame
	f.Add([]byte{1, 0, 0, 0, 17, 'R', 'W', 4, 9, 0, 0, 0, 0, 0, 0, 0, 1, 0,  // Trace response claiming 2^24 records
		1, 0, 0, 0})
	f.Add([]byte{0, 0xFF, 0xFF, 0xFF, 0xFF})                                 // length prefix far past MaxFrame
	f.Add(append([]byte{1, 0, 0, 0, 12}, make([]byte, 12)...))               // zeroed header
	f.Add([]byte{0, 0, 0, 0, 13, 'R', 'W', 1, 7, 0, 0, 0, 0, 0, 0, 0, 1, 0}) // QuotaGet inside a v1 frame
	f.Add([]byte{0, 0, 0, 0, 21, 'R', 'W', 2, 8, 0, 0, 0, 0, 0, 0, 0, 1, 0,  // QuotaSet with NaN share
		0x7F, 0xF8, 0, 0, 0, 0, 0, 1})
	f.Add([]byte{0, 0, 0, 0, 14, 'R', 'W', 2, 7, 0, 0, 0, 0, 0, 0, 0, 1, 5, 'a'}) // tenant length past body

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		asResponse := data[0]&1 == 1
		br := bufio.NewReader(bytes.NewReader(data[1:]))
		for frames := 0; frames < 64; frames++ {
			if asResponse {
				resp, err := ReadResponse(br)
				if err != nil {
					return // malformed or stream exhausted: the loop must stop here
				}
				reencoded, err := AppendResponse(nil, resp)
				if err != nil {
					t.Fatalf("decoded response %+v does not re-encode: %v", resp, err)
				}
				again, err := ReadResponse(bufio.NewReader(bytes.NewReader(reencoded)))
				if err != nil {
					t.Fatalf("re-encoded response does not decode: %v", err)
				}
				if !reflect.DeepEqual(normalise(resp), normalise(again)) {
					t.Fatalf("canonical round trip diverged:\n first %+v\nsecond %+v", resp, again)
				}
			} else {
				req, err := ReadRequest(br)
				if err != nil {
					return
				}
				reencoded, err := AppendRequest(nil, req)
				if err != nil {
					t.Fatalf("decoded request %+v does not re-encode: %v", req, err)
				}
				again, err := ReadRequest(bufio.NewReader(bytes.NewReader(reencoded)))
				if err != nil {
					t.Fatalf("re-encoded request does not decode: %v", err)
				}
				if req != again {
					t.Fatalf("canonical round trip diverged:\n first %+v\nsecond %+v", req, again)
				}
			}
		}
	})
}

const int64Max = 1<<63 - 1

// normalise maps empty slices to nil: the wire cannot distinguish them.
func normalise(r Response) Response {
	if len(r.Free) == 0 {
		r.Free = nil
	}
	if len(r.Segs) == 0 {
		r.Segs = nil
	}
	if len(r.Stats) == 0 {
		r.Stats = nil
	}
	if len(r.Traces) == 0 {
		r.Traces = nil
	}
	if r.Telemetry != nil {
		t := *r.Telemetry
		if len(t.Queue) == 0 {
			t.Queue = nil
		}
		if len(t.Shards) == 0 {
			t.Shards = nil
		}
		if len(t.Tenants) == 0 {
			t.Tenants = nil
		}
		if len(t.WAL) == 0 {
			t.WAL = nil
		}
		if len(t.SLO) == 0 {
			t.SLO = nil
		}
		r.Telemetry = &t
	}
	return r
}

// TestReadFrameStopsAtJunk complements FuzzWireCodec at the framing
// layer: a valid frame prefixed by arbitrary junk must never decode (the
// stream is not self-synchronising, by design).
func TestReadFrameStopsAtJunk(t *testing.T) {
	frame, err := AppendRequest(nil, Request{ID: 1, Op: OpPing})
	if err != nil {
		t.Fatal(err)
	}
	junk := append([]byte{0xDE, 0xAD}, frame...)
	br := bufio.NewReader(bytes.NewReader(junk))
	if _, err := ReadRequest(br); err == nil {
		t.Fatal("junk-prefixed stream decoded")
	}
}

// TestReadFrameLengthBounds checks the two framing guards directly.
func TestReadFrameLengthBounds(t *testing.T) {
	over := binary.BigEndian.AppendUint32(nil, MaxFrame+1)
	if _, err := ReadFrame(bufio.NewReader(bytes.NewReader(over))); err == nil {
		t.Error("oversized length accepted")
	}
	under := binary.BigEndian.AppendUint32(nil, headerLen-1)
	if _, err := ReadFrame(bufio.NewReader(bytes.NewReader(under))); err == nil {
		t.Error("sub-header length accepted")
	}
	short := binary.BigEndian.AppendUint32(nil, 100)
	short = append(short, 1, 2, 3)
	if _, err := ReadFrame(bufio.NewReader(bytes.NewReader(short))); err == io.EOF || err == nil {
		t.Errorf("truncated payload: err = %v, want wrapped unexpected-EOF", err)
	}
}
