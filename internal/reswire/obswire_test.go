package reswire

import (
	"bufio"
	"bytes"
	"errors"
	"net"
	"testing"

	"repro/internal/obs"
	"repro/internal/resd"
)

// TestV3ClientAgainstV4Server is the negotiation test for the v4 bump: a
// hand-rolled v3 client must get v3-revision answers (the Stats layout is
// unchanged, so only the version byte moves), and the Trace op must be
// unreachable from v3 — refused at encode and refused on the wire.
func TestV3ClientAgainstV4Server(t *testing.T) {
	addr, _ := startServer(t, resd.Config{Shards: 2, M: 8})
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	br := bufio.NewReader(nc)
	roundTrip := func(req Request) Response {
		t.Helper()
		req.Version = VersionV3
		frame, err := AppendRequest(nil, req)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := nc.Write(frame); err != nil {
			t.Fatal(err)
		}
		payload, err := ReadFrame(br)
		if err != nil {
			t.Fatal(err)
		}
		if payload[2] != VersionV3 {
			t.Fatalf("server answered a v3 request at revision %d", payload[2])
		}
		resp, err := DecodeResponse(payload)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	resv := roundTrip(Request{ID: 1, Op: OpReserve, Tenant: "acme", Procs: 4, Dur: 10, Deadline: resd.NoDeadline})
	if resv.Code != CodeOK {
		t.Fatalf("v3 Reserve = %+v", resv)
	}
	stats := roundTrip(Request{ID: 2, Op: OpStats})
	if stats.Code != CodeOK || len(stats.Stats) != 2 {
		t.Fatalf("v3 Stats = %+v", stats)
	}
	// The v3 Stats layout carries the rebalancing fields; only Trace is new
	// at v4, so a v3 Stats answer must still show SlackP99 after a live
	// admission (slack 0 is fine — the field exists, decode proves it).
	if stats.Stats[0].Ops+stats.Stats[1].Ops == 0 {
		t.Fatalf("v3 Stats lost the op counters: %+v", stats.Stats)
	}

	// Trace cannot be encoded at v3.
	if _, err := AppendRequest(nil, Request{Op: OpTrace, Version: VersionV3}); !errors.Is(err, ErrFrame) {
		t.Fatalf("Trace encoded at v3: err = %v, want ErrFrame", err)
	}
	// A hostile v3 frame naming the v4-only op must fail the frame.
	var b []byte
	b = append(b, 0, 0, 0, 0)
	b = appendHeader(b, VersionV3, OpTrace, 9)
	b = appendI32(b, 0)
	frame, err := finishFrame(b, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ReadRequest(bufio.NewReader(bytes.NewReader(frame))); !errors.Is(err, ErrFrame) {
		t.Fatalf("v3 Trace frame err = %v, want ErrFrame", err)
	}
}

// TestTraceOverWire drives the v4 Trace op end to end: sampled admission
// traces cross the wire with stages, outcome and tenant intact, and Limit
// trims to the newest records.
func TestTraceOverWire(t *testing.T) {
	addr, _ := startServer(t, resd.Config{
		M:   8,
		Obs: &resd.ObsConfig{TraceSample: 1, TraceBuf: 8},
	})
	c := dial(t, addr, Options{Conns: 1, Pipeline: true})

	r, err := c.ReserveFor("acme", 5, 4, 10, resd.NoDeadline)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.ReserveBy(0, 8, 10, 0); !errors.Is(err, resd.ErrDeadline) {
		t.Fatalf("full-width deadline-0 request err = %v, want ErrDeadline", err)
	}

	traces, err := c.Traces(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(traces) != 2 {
		t.Fatalf("Traces = %d records, want 2", len(traces))
	}
	adm, rej := traces[0], traces[1]
	if adm.Outcome != resd.TraceAdmitted || adm.Tenant != "acme" || adm.Shard != 0 || adm.Start != r.Start {
		t.Errorf("admitted trace = %+v", adm)
	}
	if rej.Outcome != resd.TraceRejectedDeadline || rej.Seq != adm.Seq+1 {
		t.Errorf("rejected trace = %+v", rej)
	}
	for _, tr := range traces {
		if !(tr.Route >= 0 && tr.Enqueue >= tr.Route && tr.BatchStart >= tr.Enqueue && tr.Decision >= tr.BatchStart) {
			t.Errorf("stages not monotone after the wire: %+v", tr)
		}
		if tr.Arrival.IsZero() || tr.Arrival.UnixNano() <= 0 {
			t.Errorf("arrival lost on the wire: %+v", tr)
		}
	}
	newest, err := c.Traces(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(newest) != 1 || newest[0].Seq != rej.Seq {
		t.Errorf("Traces(1) = %+v, want just the newest", newest)
	}

	// A server without tracing answers with an empty ring, not an error.
	addr2, _ := startServer(t, resd.Config{M: 8})
	c2 := dial(t, addr2, Options{})
	if got, err := c2.Traces(0); err != nil || len(got) != 0 {
		t.Errorf("Traces on untraced server = %v, %v", got, err)
	}
}

// TestWireMetrics scrapes both sides' instrumentation after live traffic:
// op latency summaries, byte counters in both directions, response-code
// counters, the in-flight gauge back at zero, and a server-side frame
// error from a junk connection.
func TestWireMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	svc, err := resd.New(resd.Config{M: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(svc)
	srv.SetMetrics(NewMetrics(reg, "server"))
	done := make(chan struct{})
	go func() {
		defer close(done)
		if err := srv.Serve(ln); !errors.Is(err, ErrServerClosed) {
			t.Errorf("Serve: %v", err)
		}
	}()

	c, err := Dial(ln.Addr().String(), Options{Pipeline: true, Metrics: NewMetrics(reg, "client")})
	if err != nil {
		t.Fatal(err)
	}
	resv, err := c.Reserve(0, 4, 10)
	if err != nil {
		t.Fatal(err)
	}
	// 4 of 8 procs held over [0,10): a full-width request with deadline 0
	// must miss it.
	if _, err := c.ReserveBy(0, 8, 10, 0); !errors.Is(err, resd.ErrDeadline) {
		t.Fatalf("want a deadline rejection on the books, got %v", err)
	}
	if err := c.Cancel(resv.ID); err != nil {
		t.Fatal(err)
	}
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}

	// A junk frame must close the connection and count one frame error on
	// the server side.
	junk, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := junk.Write([]byte{0, 0, 0, 16, 'X', 'X', 1, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0}); err != nil {
		t.Fatal(err)
	}
	var one [1]byte
	if _, err := junk.Read(one[:]); err == nil {
		t.Fatal("junk connection survived a malformed frame")
	}
	junk.Close()

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	exp, err := obs.ParseExposition(buf.Bytes())
	if err != nil {
		t.Fatalf("wire metrics scrape does not parse: %v\n%s", err, buf.String())
	}
	for _, side := range []string{"server", "client"} {
		if v, ok := exp.Value("reswire_responses_total", map[string]string{"side": side, "code": "OK"}); !ok || v < 3 {
			t.Errorf("%s responses{OK} = %v, %v (want >= 3)", side, v, ok)
		}
		if v, ok := exp.Value("reswire_responses_total", map[string]string{"side": side, "code": "REJECTED_DEADLINE"}); !ok || v != 1 {
			t.Errorf("%s responses{REJECTED_DEADLINE} = %v, %v", side, v, ok)
		}
		for _, dir := range []string{"rx", "tx"} {
			if v, ok := exp.Value("reswire_bytes_total", map[string]string{"side": side, "dir": dir}); !ok || v <= 0 {
				t.Errorf("%s bytes{%s} = %v, %v", side, dir, v, ok)
			}
		}
		if v, ok := exp.Value("reswire_inflight", map[string]string{"side": side}); !ok || v != 0 {
			t.Errorf("%s inflight = %v, %v (want 0 at rest)", side, v, ok)
		}
		if _, ok := exp.Value("reswire_op_ns", map[string]string{"side": side, "op": "Reserve", "quantile": "0.99"}); !ok {
			t.Errorf("no %s Reserve latency summary", side)
		}
	}
	if v, ok := exp.Value("reswire_frame_errors_total", map[string]string{"side": "server"}); !ok || v != 1 {
		t.Errorf("server frame errors = %v, %v (want 1)", v, ok)
	}

	c.Close()
	srv.Close()
	<-done
}
