package reswire

import (
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/resd"
	"repro/internal/rng"
)

// startServer builds a service + server on a loopback listener and
// registers teardown with the test. Returns the dial address.
func startServer(t *testing.T, cfg resd.Config) (string, *resd.Service) {
	t.Helper()
	svc, err := resd.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svc.Close)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(svc)
	done := make(chan struct{})
	go func() {
		defer close(done)
		if err := srv.Serve(ln); !errors.Is(err, ErrServerClosed) {
			t.Errorf("Serve: %v", err)
		}
	}()
	t.Cleanup(func() { srv.Close(); <-done })
	return ln.Addr().String(), svc
}

func dial(t *testing.T, addr string, opts Options) *Client {
	t.Helper()
	c, err := Dial(addr, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestLoopbackOps(t *testing.T) {
	for _, pipeline := range []bool{false, true} {
		name := "pipeline=off"
		if pipeline {
			name = "pipeline=on"
		}
		t.Run(name, func(t *testing.T) {
			addr, _ := startServer(t, resd.Config{Shards: 2, M: 8, Alpha: 0.5})
			c := dial(t, addr, Options{Conns: 2, Pipeline: pipeline})

			if err := c.Ping(); err != nil {
				t.Fatalf("Ping: %v", err)
			}
			r, err := c.Reserve(0, 4, 10)
			if err != nil {
				t.Fatalf("Reserve: %v", err)
			}
			if r.Procs != 4 || r.Dur != 10 || r.Start < 0 {
				t.Fatalf("torn reservation %+v", r)
			}
			free, err := c.Query(5)
			if err != nil || len(free) != 2 {
				t.Fatalf("Query = %v, %v", free, err)
			}
			if free[r.Shard] != 4 {
				t.Errorf("free on shard %d = %d, want 4", r.Shard, free[r.Shard])
			}
			// Typed errors survive the wire.
			if _, err := c.Reserve(0, 5, 10); !errors.Is(err, resd.ErrNeverFits) {
				t.Errorf("α-violating Reserve err = %v, want resd.ErrNeverFits", err)
			}
			if _, err := c.Reserve(-1, 1, 1); !errors.Is(err, resd.ErrBadRequest) {
				t.Errorf("bad Reserve err = %v, want resd.ErrBadRequest", err)
			}
			if err := c.Cancel(resd.ID(1 << 30)); !errors.Is(err, resd.ErrUnknownID) {
				t.Errorf("bogus Cancel err = %v, want resd.ErrUnknownID", err)
			}
			if err := c.Cancel(r.ID); err != nil {
				t.Fatalf("Cancel: %v", err)
			}
			st, err := c.Stats()
			if err != nil || len(st) != 2 {
				t.Fatalf("Stats = %v, %v", st, err)
			}
			var admitted uint64
			for _, s := range st {
				admitted += s.Admitted
			}
			if admitted != 1 {
				t.Errorf("admitted = %d, want 1", admitted)
			}
		})
	}
}

func TestLoopbackDeadline(t *testing.T) {
	addr, _ := startServer(t, resd.Config{M: 8})
	c := dial(t, addr, Options{Pipeline: true})
	if _, err := c.Reserve(0, 8, 100); err != nil {
		t.Fatal(err)
	}
	// Earliest feasible start is 100; deadline 99 must reject with the
	// typed deadline error, REJECTED_DEADLINE on the wire.
	_, err := c.ReserveBy(0, 4, 10, 99)
	if !errors.Is(err, resd.ErrDeadline) {
		t.Fatalf("err = %v, want resd.ErrDeadline", err)
	}
	r, err := c.ReserveBy(0, 4, 10, 100)
	if err != nil || r.Start != 100 {
		t.Fatalf("deadline=100: %+v, %v; want start 100", r, err)
	}
}

func TestLoopbackSnapshotMatchesDirect(t *testing.T) {
	cfg := resd.Config{M: 16, Backend: "tree"}
	addr, svc := startServer(t, cfg)
	c := dial(t, addr, Options{Pipeline: true})
	r := rng.New(77)
	for i := 0; i < 50; i++ {
		ready := core.Time(r.Int63n(1000))
		if _, err := c.Reserve(ready, r.IntRange(1, 16), core.Time(r.Int63Range(1, 50))); err != nil {
			t.Fatal(err)
		}
	}
	remote, err := c.Snapshot(0)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := svc.Snapshot(0)
	if err != nil {
		t.Fatal(err)
	}
	// The rebuilt index must agree with the in-process snapshot at every
	// breakpoint of either profile.
	bps := append(direct.Breakpoints(), remote.Breakpoints()...)
	for _, bp := range bps {
		if g, w := remote.AvailableAt(bp), direct.AvailableAt(bp); g != w {
			t.Fatalf("AvailableAt(%v) = %d remote vs %d direct", bp, g, w)
		}
	}
	if g, w := remote.NumSegments(), direct.NumSegments(); g != w {
		t.Errorf("NumSegments = %d remote vs %d direct", g, w)
	}
}

func TestLoopbackSnapshotBadShard(t *testing.T) {
	addr, _ := startServer(t, resd.Config{M: 8})
	c := dial(t, addr, Options{})
	if _, err := c.Snapshot(5); !errors.Is(err, resd.ErrBadRequest) {
		t.Errorf("Snapshot(5) err = %v, want resd.ErrBadRequest", err)
	}
}

// TestLoopbackStress hammers one server from many pipelined client
// goroutines with a mixed op stream. Under -race this exercises the whole
// stack: client multiplexing and write coalescing, server dispatch, shard
// event loops. Conservation is asserted at the end: everything admitted
// minus everything cancelled must still be standing in the shard stats.
func TestLoopbackStress(t *testing.T) {
	const (
		goroutines = 16
		opsPerG    = 300
		m          = 64
		horizon    = 1 << 16
	)
	addr, _ := startServer(t, resd.Config{Shards: 4, M: m, Alpha: 0.25, Backend: "tree", Batch: 16})
	c := dial(t, addr, Options{Conns: 3, Pipeline: true, Window: 64})

	var admitted, cancelled, rejected atomic.Uint64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r := rng.NewStream(1234, uint64(g))
			var held []resd.Reservation
			for i := 0; i < opsPerG; i++ {
				switch {
				case r.Bool(0.25) && len(held) > 0:
					k := r.Intn(len(held))
					if err := c.Cancel(held[k].ID); err != nil {
						t.Errorf("cancel: %v", err)
						return
					}
					cancelled.Add(1)
					held = append(held[:k], held[k+1:]...)
				case r.Bool(0.1):
					if _, err := c.Query(core.Time(r.Int63n(horizon))); err != nil {
						t.Errorf("query: %v", err)
						return
					}
				case r.Bool(0.05):
					if err := c.Ping(); err != nil {
						t.Errorf("ping: %v", err)
						return
					}
				default:
					ready := core.Time(r.Int63n(horizon))
					q := r.IntRange(1, m/2)
					dur := core.Time(r.Int63Range(1, 100))
					deadline := resd.NoDeadline
					if r.Bool(0.3) {
						deadline = ready + core.Time(r.Int63n(2000))
					}
					resv, err := c.ReserveBy(ready, q, dur, deadline)
					switch {
					case err == nil:
						admitted.Add(1)
						held = append(held, resv)
					case errors.Is(err, resd.ErrDeadline):
						rejected.Add(1)
					default:
						t.Errorf("reserve: %v", err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()

	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	var sAdmitted, sCancelled, sRejectedDL, sActive uint64
	for _, s := range st {
		sAdmitted += s.Admitted
		sCancelled += s.Cancelled
		sRejectedDL += s.RejectedDeadline
		sActive += uint64(s.Active)
	}
	if sAdmitted != admitted.Load() || sCancelled != cancelled.Load() {
		t.Errorf("server books admitted=%d cancelled=%d, clients saw %d/%d",
			sAdmitted, sCancelled, admitted.Load(), cancelled.Load())
	}
	if sActive != admitted.Load()-cancelled.Load() {
		t.Errorf("active = %d, want admitted-cancelled = %d", sActive, admitted.Load()-cancelled.Load())
	}
	// Client-side deadline rejections ≤ server-side counts: a rejection
	// may be recorded on several shards before the service gives up.
	if sRejectedDL < rejected.Load() {
		t.Errorf("server deadline rejections %d < client-observed %d", sRejectedDL, rejected.Load())
	}
}

// TestServerCloseFailsInFlight closes the server under live traffic and
// asserts every outstanding and subsequent call fails fast with a client
// error instead of hanging.
func TestServerCloseFailsInFlight(t *testing.T) {
	svc, err := resd.New(resd.Config{M: 32})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(svc)
	serveDone := make(chan struct{})
	go func() { defer close(serveDone); srv.Serve(ln) }()

	c, err := Dial(ln.Addr().String(), Options{Conns: 2, Pipeline: true})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r := rng.NewStream(5, uint64(g))
			for i := 0; i < 200; i++ {
				if _, err := c.Reserve(core.Time(r.Int63n(1<<20)), 1, 1); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	time.Sleep(time.Millisecond)
	srv.Close()
	<-serveDone

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("calls still blocked 30s after server Close")
	}
	close(errs)
	for err := range errs {
		if !errors.Is(err, ErrClientClosed) {
			t.Errorf("in-flight call failed with %v, want ErrClientClosed", err)
		}
	}
	if err := c.Ping(); !errors.Is(err, ErrClientClosed) {
		t.Errorf("Ping after server close = %v, want ErrClientClosed", err)
	}
}
