package reswire

import (
	"bufio"
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"net"
	"reflect"
	"testing"
	"time"

	"repro/internal/resd"
	"repro/internal/slo"
	"repro/internal/tenant"
)

func TestWatchRequestCodec(t *testing.T) {
	req := Request{ID: 3, Op: OpWatch, Interval: 250 * time.Millisecond, Mask: WatchShards | WatchWAL}
	frame, err := AppendRequest(nil, req)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ReadRequest(bufio.NewReader(bytes.NewReader(frame)))
	if err != nil {
		t.Fatal(err)
	}
	if got != req {
		t.Fatalf("round trip:\n got %+v\nwant %+v", got, req)
	}

	// Encoder-side refusals: negative interval, empty mask, unknown mask
	// bits, and the op itself before v5.
	hostile := []Request{
		{Op: OpWatch, Interval: -time.Second, Mask: WatchAll},
		{Op: OpWatch, Interval: time.Second, Mask: 0},
		{Op: OpWatch, Interval: time.Second, Mask: WatchAll | 1<<10},
		{Op: OpWatch, Version: VersionV4, Interval: time.Second, Mask: WatchAll},
	}
	for _, req := range hostile {
		if _, err := AppendRequest(nil, req); !errors.Is(err, ErrFrame) {
			t.Errorf("AppendRequest(%+v) err = %v, want ErrFrame", req, err)
		}
	}

	// Decoder-side refusals for hostile frames the encoder would never
	// emit: the same invalid bodies, hand-built.
	build := func(interval int64, mask uint32) []byte {
		var b []byte
		b = append(b, 0, 0, 0, 0)
		b = appendHeader(b, Version, OpWatch, 1)
		b = appendI64(b, interval)
		b = binary.BigEndian.AppendUint32(b, mask)
		frame, err := finishFrame(b, 0)
		if err != nil {
			t.Fatal(err)
		}
		return frame
	}
	for _, frame := range [][]byte{
		build(-1, uint32(WatchAll)),        // negative interval
		build(1e6, 0),                      // empty mask
		build(1e6, uint32(WatchAll)|1<<20), // unknown family bit
	} {
		if _, err := ReadRequest(bufio.NewReader(bytes.NewReader(frame))); !errors.Is(err, ErrFrame) {
			t.Errorf("hostile watch frame err = %v, want ErrFrame", err)
		}
	}
}

func TestWatchTelemetryCodec(t *testing.T) {
	tel := &Telemetry{
		Seq: 7, Dropped: 2, Mask: WatchAll, M: 64, Floor: 16,
		Queue: []int{3, 0},
		Shards: []resd.ShardStats{
			{Active: 5, CommittedArea: 1234, Admitted: 10, Cancelled: 2, Rejected: 1,
				RejectedDeadline: 3, RejectedQuota: 4, MigratedIn: 5, MigratedOut: 6,
				SlackP99: 99, Batches: 7, Ops: 20},
			{Admitted: 1},
		},
		Tenants: []TenantTelemetry{
			{Tenant: "acme", Budget: 100, Used: 40, Inflight: 2},
			{Tenant: "", Budget: 50},
		},
		WAL: []WALTelemetry{
			{Shard: 0, Gen: 3, Bytes: 4096, Records: 17, Fsyncs: 9, Snapshots: 2, FsyncP99: 120000, Failed: 0},
		},
		TracesSampled: 11, TracesSlow: 1,
		SLO: []SLOTelemetry{
			{Name: "deadline", Signal: slo.DeadlineAttainment, Target: 0.99,
				Attainment: 0.97, BudgetRemaining: -2, BurnMax: 14.5, State: slo.SevPage},
			{Name: "acme-slack", Tenant: "acme", Signal: slo.Slack, Target: 0.9,
				Attainment: 1, BudgetRemaining: 1, BurnMax: 0, State: slo.OK},
		},
	}
	frame, err := AppendResponse(nil, Response{ID: 9, Op: OpWatch, Code: CodeOK, Telemetry: tel})
	if err != nil {
		t.Fatal(err)
	}
	got, err := ReadResponse(bufio.NewReader(bytes.NewReader(frame)))
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != 9 || got.Op != OpWatch || got.Code != CodeOK {
		t.Fatalf("header round trip: %+v", got)
	}
	if !reflect.DeepEqual(got.Telemetry, tel) {
		t.Fatalf("telemetry round trip:\n got %+v\nwant %+v", got.Telemetry, tel)
	}

	// A masked-out family must not appear on the wire, and must come back
	// empty even when the struct carried data for it.
	partial := *tel
	partial.Mask = WatchShards
	pframe, err := AppendResponse(nil, Response{ID: 1, Op: OpWatch, Telemetry: &partial})
	if err != nil {
		t.Fatal(err)
	}
	if len(pframe) >= len(frame) {
		t.Fatalf("shards-only frame (%dB) not smaller than all-families frame (%dB)", len(pframe), len(frame))
	}
	pgot, err := ReadResponse(bufio.NewReader(bytes.NewReader(pframe)))
	if err != nil {
		t.Fatal(err)
	}
	pt := pgot.Telemetry
	if len(pt.Shards) != 2 || len(pt.Tenants) != 0 || len(pt.WAL) != 0 || pt.TracesSampled != 0 {
		t.Fatalf("shards-only decode carried other families: %+v", pt)
	}

	// Encoder-side refusals.
	for _, resp := range []Response{
		{Op: OpWatch}, // no telemetry at all
		{Op: OpWatch, Telemetry: &Telemetry{Mask: 0}},                     // empty mask
		{Op: OpWatch, Telemetry: &Telemetry{Mask: WatchShards, M: -1}},    // negative capacity
		{Op: OpWatch, Version: VersionV4, Telemetry: &Telemetry{Mask: 1}}, // op predates v4
	} {
		if _, err := AppendResponse(nil, resp); !errors.Is(err, ErrFrame) {
			t.Errorf("AppendResponse(%+v) err = %v, want ErrFrame", resp, err)
		}
	}

	// A hostile shard count cannot force a large allocation: the count is
	// validated against the remaining payload before make.
	countOff := 4 + headerLen + 1 + 8 + 8 + 4 + 4 + 4 // len + header + code + seq + dropped + mask + M + floor
	bomb := bytes.Clone(pframe)
	binary.BigEndian.PutUint32(bomb[countOff:], 1<<15)
	if _, err := ReadResponse(bufio.NewReader(bytes.NewReader(bomb))); !errors.Is(err, ErrFrame) {
		t.Errorf("shard-count bomb err = %v, want ErrFrame", err)
	}
	// A hostile negative capacity fails the frame rather than decoding.
	negM := bytes.Clone(pframe)
	binary.BigEndian.PutUint32(negM[countOff-8:], 0xFFFFFFFF)
	if _, err := ReadResponse(bufio.NewReader(bytes.NewReader(negM))); !errors.Is(err, ErrFrame) {
		t.Errorf("negative-M frame err = %v, want ErrFrame", err)
	}
}

// TestTraceLayoutPerVersion pins the v5 Trace extension: entries gain the
// ClientSend span (8 bytes after Arrival); a v4 answer keeps the layout a
// v4 reader knows and the field comes back zero.
func TestTraceLayoutPerVersion(t *testing.T) {
	resp := Response{ID: 1, Op: OpTrace, Code: CodeOK, Traces: []resd.TraceRecord{{
		Seq: 3, Arrival: time.Unix(0, 12345), ClientSend: 500 * time.Microsecond,
		Route: 10, Enqueue: 20, BatchStart: 30, Decision: 40,
		Start: 7, Shard: 1, Outcome: resd.TraceAdmitted, Tenant: "acme",
	}}}
	v5frame, err := AppendResponse(nil, resp)
	if err != nil {
		t.Fatal(err)
	}
	v4 := resp
	v4.Version = VersionV4
	v4frame, err := AppendResponse(nil, v4)
	if err != nil {
		t.Fatal(err)
	}
	if len(v5frame)-len(v4frame) != traceV5Extra {
		t.Fatalf("v5 trace entry is %d bytes longer than v4, want %d", len(v5frame)-len(v4frame), traceV5Extra)
	}
	got5, err := ReadResponse(bufio.NewReader(bytes.NewReader(v5frame)))
	if err != nil {
		t.Fatal(err)
	}
	if tr := got5.Traces[0]; tr.ClientSend != 500*time.Microsecond || tr.Tenant != "acme" {
		t.Fatalf("v5 trace decode = %+v", tr)
	}
	got4, err := ReadResponse(bufio.NewReader(bytes.NewReader(v4frame)))
	if err != nil {
		t.Fatal(err)
	}
	if tr := got4.Traces[0]; tr.ClientSend != 0 || tr.Route != 10 || tr.Tenant != "acme" {
		t.Fatalf("v4 trace decode = %+v, want zero ClientSend with the rest intact", tr)
	}
}

// TestV4ClientAgainstV5Server is the negotiation test for the v5 bump: a
// hand-rolled v4 client must get v4-revision answers — Reserve without
// the stamp tail, traces without the ClientSend span — and the v5-only
// Watch op must fail its frame instead of decoding.
func TestV4ClientAgainstV5Server(t *testing.T) {
	addr, svc := startServer(t, resd.Config{
		Shards: 2, M: 8,
		Obs: &resd.ObsConfig{TraceSample: 1},
	})
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	br := bufio.NewReader(nc)
	roundTrip := func(req Request) Response {
		t.Helper()
		req.Version = VersionV4
		frame, err := AppendRequest(nil, req)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := nc.Write(frame); err != nil {
			t.Fatal(err)
		}
		payload, err := ReadFrame(br)
		if err != nil {
			t.Fatal(err)
		}
		if payload[2] != VersionV4 {
			t.Fatalf("server answered a v4 request at revision %d", payload[2])
		}
		resp, err := DecodeResponse(payload)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	// A v4 Reserve body carries no stamp tail: 9 bytes (stamp + flag)
	// shorter than the v5 encoding of the same request.
	req := Request{ID: 1, Op: OpReserve, Tenant: "acme", Ready: 0, Procs: 2, Dur: 10, Deadline: resd.NoDeadline}
	v4frame, err := AppendRequest(nil, Request{ID: 1, Op: OpReserve, Version: VersionV4, Tenant: "acme", Ready: 0, Procs: 2, Dur: 10, Deadline: resd.NoDeadline})
	if err != nil {
		t.Fatal(err)
	}
	v5frame, err := AppendRequest(nil, req)
	if err != nil {
		t.Fatal(err)
	}
	if len(v5frame)-len(v4frame) != 9 {
		t.Fatalf("v5 Reserve is %d bytes longer than v4, want 9 (stamp + trace flag)", len(v5frame)-len(v4frame))
	}
	resv := roundTrip(req)
	if resv.Code != CodeOK || resv.Resv.Procs != 2 {
		t.Fatalf("v4 Reserve = %+v", resv)
	}
	// The admission landed and was sampled (TraceSample 1): the v4 Trace
	// answer decodes with the v4 layout — no ClientSend, which a stampless
	// v4 admission could not have anyway.
	traces := roundTrip(Request{ID: 2, Op: OpTrace, Limit: 0})
	if traces.Code != CodeOK || len(traces.Traces) == 0 {
		t.Fatalf("v4 Trace = %+v", traces)
	}
	for _, tr := range traces.Traces {
		if tr.ClientSend != 0 {
			t.Fatalf("v4 trace answer leaked a ClientSend span: %+v", tr)
		}
	}
	if svc.Stats()[resv.Resv.Shard].Admitted != 1 {
		t.Fatalf("v4 admission not booked: %+v", svc.Stats())
	}

	// A v4 frame naming the v5-only Watch op must fail the frame: the
	// server hangs up rather than subscribing a client that cannot decode
	// telemetry frames.
	var b []byte
	b = append(b, 0, 0, 0, 0)
	b = appendHeader(b, VersionV4, OpWatch, 3)
	b = appendI64(b, int64(time.Second))
	b = binary.BigEndian.AppendUint32(b, WatchAll)
	hostile, err := finishFrame(b, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ReadRequest(bufio.NewReader(bytes.NewReader(hostile))); !errors.Is(err, ErrFrame) {
		t.Fatalf("v4 Watch frame err = %v, want ErrFrame", err)
	}
	if _, err := nc.Write(hostile); err != nil {
		t.Fatal(err)
	}
	nc.SetReadDeadline(time.Now().Add(10 * time.Second))
	if _, err := ReadFrame(br); err == nil {
		t.Fatal("server answered a v4 Watch frame instead of hanging up")
	}
}

// TestWatchEndToEnd subscribes a client to a live server and asserts the
// pushed frames carry the admission, tenant, and trace counters that
// in-process polling would have shown — without the client issuing any
// Stats calls.
func TestWatchEndToEnd(t *testing.T) {
	reg := mustRegistry(t, 1<<20, tenant.Spec{})
	addr, _ := startServer(t, resd.Config{
		Shards: 2, M: 8, Quotas: reg,
		Obs: &resd.ObsConfig{TraceSample: 1 << 20}, // force-sample only
	})
	c := dial(t, addr, Options{Conns: 1, Pipeline: true})

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ch, err := c.Watch(ctx, WatchOptions{Interval: MinWatchInterval})
	if err != nil {
		t.Fatal(err)
	}

	const admissions = 5
	var held []resd.Reservation
	for i := 0; i < admissions-1; i++ {
		r, err := c.ReserveFor("acme", 0, 1, 10, resd.NoDeadline)
		if err != nil {
			t.Fatal(err)
		}
		held = append(held, r)
	}
	// The trace flag forces a sample despite the absurd sampling rate,
	// and the stamped frame gives the record a cross-wire span.
	if _, err := c.AdmitTraced(resd.Request{Tenant: "acme", Q: 1, Dur: 10, Deadline: resd.NoDeadline}); err != nil {
		t.Fatal(err)
	}
	if err := c.Cancel(held[0].ID); err != nil {
		t.Fatal(err)
	}

	deadline := time.After(10 * time.Second)
	var lastSeq uint64
	for {
		var tel Telemetry
		select {
		case tel = <-ch:
		case <-deadline:
			t.Fatal("watch frames never converged on the expected counters")
		}
		if tel.Seq <= lastSeq {
			t.Fatalf("frame seq went %d -> %d, want strictly increasing", lastSeq, tel.Seq)
		}
		lastSeq = tel.Seq
		if tel.M != 8 || len(tel.Shards) != 2 || len(tel.Queue) != 2 {
			t.Fatalf("frame shape: %+v", tel)
		}
		if len(tel.WAL) != 0 {
			t.Fatalf("in-memory server pushed WAL telemetry: %+v", tel.WAL)
		}
		var admitted, cancelled uint64
		for _, st := range tel.Shards {
			admitted += st.Admitted
			cancelled += st.Cancelled
		}
		var acme *TenantTelemetry
		for i := range tel.Tenants {
			if tel.Tenants[i].Tenant == "acme" {
				acme = &tel.Tenants[i]
			}
		}
		if admitted == admissions && cancelled == 1 &&
			acme != nil && acme.Used == (admissions-1)*10 &&
			tel.TracesSampled >= 1 {
			break // every family converged
		}
	}

	// Sampled records carry the cross-wire span from the client's stamp —
	// the end-to-end half of the trace-propagation tentpole. The 1-in-N
	// sampler always takes the first request, so the forced AdmitTraced
	// shows up as a second record the absurd rate could never produce.
	traces, err := c.Traces(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(traces) != 2 {
		t.Fatalf("recorded %d traces, want 2 (first-request sample + forced sample)", len(traces))
	}
	for _, tr := range traces {
		if tr.ClientSend <= 0 {
			t.Fatalf("wire-admitted trace has no client-send span: %+v", tr)
		}
	}

	cancel()
	select {
	case _, ok := <-ch:
		for ok {
			_, ok = <-ch
		}
	case <-time.After(10 * time.Second):
		t.Fatal("watch channel not closed after cancel")
	}
}

// TestWatchLoopDropsWhenWriterFull pins the slow-consumer contract at the
// subscription loop: a full writer queue drops the frame (the send never
// blocks) and the gap is reported in the next delivered frame's Dropped
// count.
func TestWatchLoopDropsWhenWriterFull(t *testing.T) {
	svc, err := resd.New(resd.Config{M: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	s := NewServer(svc)
	out := make(chan Response, 1) // tiny writer queue: every second push drops
	done := make(chan struct{})
	loopDone := make(chan struct{})
	go func() {
		defer close(loopDone)
		s.watchLoop(Request{ID: 1, Op: OpWatch, Interval: MinWatchInterval, Mask: WatchShards}, out, done)
	}()

	first := <-out
	if first.Telemetry == nil || first.Telemetry.Seq != 1 || first.Telemetry.Dropped != 0 {
		t.Fatalf("first frame = %+v", first.Telemetry)
	}
	// Stall: the buffer holds one frame (seq 2), then pushes drop.
	time.Sleep(20 * MinWatchInterval)
	second := <-out
	if second.Telemetry.Seq != 2 {
		t.Fatalf("second frame seq = %d, want 2", second.Telemetry.Seq)
	}
	// The next delivered frame accounts for the stall.
	third := <-out
	if third.Telemetry.Seq != 3 || third.Telemetry.Dropped == 0 {
		t.Fatalf("post-stall frame = %+v, want seq 3 with Dropped > 0", third.Telemetry)
	}
	close(done)
	select {
	case <-loopDone:
	case <-time.After(10 * time.Second):
		t.Fatal("watchLoop did not exit on done")
	}
}

// TestWatchStalledSubscriberDoesNotBlockOthers subscribes a watcher that
// never reads its socket, then drives admissions through a separate
// client: the stalled subscription must cost the rest of the server
// nothing — telemetry reads published atomics and drops on backpressure,
// so no shard loop or sibling connection ever waits on it.
func TestWatchStalledSubscriberDoesNotBlockOthers(t *testing.T) {
	addr, svc := startServer(t, resd.Config{Shards: 2, M: 64})

	stalled, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer stalled.Close()
	frame, err := AppendRequest(nil, Request{ID: 1, Op: OpWatch, Interval: MinWatchInterval, Mask: WatchAll})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := stalled.Write(frame); err != nil {
		t.Fatal(err)
	}
	// Never read from stalled again: its frames pile into the TCP buffers
	// and then drop server-side.

	c := dial(t, addr, Options{Conns: 1, Pipeline: true})
	const n = 1000
	for i := 0; i < n; i++ {
		if _, err := c.Reserve(0, 1, 1); err != nil {
			t.Fatalf("reserve %d alongside a stalled watcher: %v", i, err)
		}
	}
	var admitted uint64
	for _, st := range svc.Stats() {
		admitted += st.Admitted
	}
	if admitted != n {
		t.Fatalf("admitted = %d, want %d", admitted, n)
	}
}

// TestWatchConnCap pins the per-connection subscription bound: the 17th
// Watch on one connection is refused with BAD_REQUEST while the first 16
// stream on.
func TestWatchConnCap(t *testing.T) {
	addr, _ := startServer(t, resd.Config{M: 8})
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	var buf []byte
	for id := uint64(1); id <= maxConnWatches+1; id++ {
		// A one-minute interval keeps the live subscriptions quiet after
		// their immediate first frame.
		buf, err = AppendRequest(buf, Request{ID: id, Op: OpWatch, Interval: time.Minute, Mask: WatchShards})
		if err != nil {
			t.Fatal(err)
		}
	}
	if _, err := nc.Write(buf); err != nil {
		t.Fatal(err)
	}
	nc.SetReadDeadline(time.Now().Add(30 * time.Second))
	br := bufio.NewReader(nc)
	okFrames := 0
	for {
		resp, err := ReadResponse(br)
		if err != nil {
			t.Fatalf("after %d frames: %v", okFrames, err)
		}
		if resp.ID == maxConnWatches+1 {
			if resp.Code != CodeBadRequest {
				t.Fatalf("subscription %d answered %v, want CodeBadRequest", maxConnWatches+1, resp.Code)
			}
			return
		}
		if resp.Code != CodeOK || resp.Telemetry == nil {
			t.Fatalf("subscription %d pushed %+v", resp.ID, resp)
		}
		okFrames++
	}
}

// TestWatchResubscribesAfterReconnect kills the watcher's server and
// brings a new one up on the same address: the stream must redial,
// resubscribe, and keep delivering — with the frame Seq restarting, as
// documented.
func TestWatchResubscribesAfterReconnect(t *testing.T) {
	svc, err := resd.New(resd.Config{M: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	srv1 := NewServer(svc)
	go srv1.Serve(ln)

	c, err := Dial(addr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ch, err := c.Watch(ctx, WatchOptions{Interval: MinWatchInterval, Mask: WatchShards})
	if err != nil {
		t.Fatal(err)
	}
	if tel := <-ch; tel.Seq != 1 {
		t.Fatalf("first frame seq = %d, want 1", tel.Seq)
	}

	srv1.Close()
	var ln2 net.Listener
	for i := 0; ; i++ {
		if ln2, err = net.Listen("tcp", addr); err == nil {
			break
		}
		if i > 200 {
			t.Fatalf("rebind %s: %v", addr, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	srv2 := NewServer(svc)
	go srv2.Serve(ln2)
	defer srv2.Close()

	// Frames buffered from the first subscription may still drain; the
	// resubscription announces itself by the Seq counter restarting.
	deadline := time.After(30 * time.Second)
	last := uint64(1)
	for {
		select {
		case tel, ok := <-ch:
			if !ok {
				t.Fatal("watch channel closed instead of resubscribing")
			}
			if tel.Seq <= last {
				return // seq restarted: the stream resubscribed
			}
			last = tel.Seq
		case <-deadline:
			t.Fatal("no frames after server restart")
		}
	}
}

func TestWatchClientValidation(t *testing.T) {
	addr, _ := startServer(t, resd.Config{M: 8})
	c := dial(t, addr, Options{})
	if _, err := c.Watch(context.Background(), WatchOptions{Interval: -time.Second}); err == nil {
		t.Error("negative interval accepted")
	}
	if _, err := c.Watch(context.Background(), WatchOptions{Mask: 1 << 30}); err == nil {
		t.Error("unknown mask accepted")
	}
	// An unreachable server fails Watch synchronously, not as a silent
	// redial-forever stream.
	dead, err := Dial(addr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	dead.Close()
	if _, err := dead.Watch(context.Background(), WatchOptions{}); !errors.Is(err, ErrClientClosed) {
		t.Errorf("Watch on closed client err = %v, want ErrClientClosed", err)
	}
	unreachable := &Client{addr: "127.0.0.1:1", done: make(chan struct{})}
	if _, err := unreachable.Watch(context.Background(), WatchOptions{}); err == nil {
		t.Error("Watch against an unreachable address returned a stream")
	}
}

// TestWatchSLOOverLoopback runs a real engine behind a real server:
// a WatchSLO subscription must deliver the evaluated objective states,
// and a server without an engine must answer the same mask with an
// empty family instead of failing.
func TestWatchSLOOverLoopback(t *testing.T) {
	eng, err := slo.New(slo.Config{Spec: slo.Spec{
		Objectives: []slo.ObjectiveSpec{
			{Name: "success", Signal: "error_rate", Target: 0.99},
		},
	}})
	if err != nil {
		t.Fatal(err)
	}
	addr, svc := startServer(t, resd.Config{M: 8, Obs: &resd.ObsConfig{SLO: eng}})
	if _, err := svc.Admit(resd.Request{Q: 1, Dur: 1, Deadline: resd.NoDeadline}); err != nil {
		t.Fatal(err)
	}
	c := dial(t, addr, Options{})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ch, err := c.Watch(ctx, WatchOptions{Interval: MinWatchInterval, Mask: WatchSLO})
	if err != nil {
		t.Fatal(err)
	}
	tel := <-ch
	if len(tel.SLO) != 1 {
		t.Fatalf("SLO entries = %d, want 1", len(tel.SLO))
	}
	o := tel.SLO[0]
	if o.Name != "success" || o.Signal != slo.ErrorRate || o.Target != 0.99 || o.State != slo.OK {
		t.Fatalf("SLO telemetry: %+v", o)
	}

	// Default mask (0 → WatchAll) includes the family too.
	ch2, err := c.Watch(ctx, WatchOptions{Interval: MinWatchInterval})
	if err != nil {
		t.Fatal(err)
	}
	if tel := <-ch2; tel.Mask&WatchSLO == 0 || len(tel.SLO) != 1 {
		t.Fatalf("WatchAll frame mask %#x with %d SLO entries", tel.Mask, len(tel.SLO))
	}

	// No engine: the family is empty, not an error.
	bareAddr, _ := startServer(t, resd.Config{M: 8})
	bc := dial(t, bareAddr, Options{})
	bch, err := bc.Watch(ctx, WatchOptions{Interval: MinWatchInterval, Mask: WatchSLO})
	if err != nil {
		t.Fatal(err)
	}
	if tel := <-bch; len(tel.SLO) != 0 {
		t.Fatalf("engine-less server pushed %d SLO entries", len(tel.SLO))
	}
}

// drain is a leak guard helper: consume a watch channel until closed.
func drainWatch(tb testing.TB, ch <-chan Telemetry) {
	tb.Helper()
	deadline := time.After(30 * time.Second)
	for {
		select {
		case _, ok := <-ch:
			if !ok {
				return
			}
		case <-deadline:
			tb.Fatal("watch channel never closed")
		}
	}
}

// TestWatchEndsOnClientClose pins the teardown path: Close ends the
// stream (channel closes) even mid-subscription.
func TestWatchEndsOnClientClose(t *testing.T) {
	addr, _ := startServer(t, resd.Config{M: 8})
	c, err := Dial(addr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ch, err := c.Watch(context.Background(), WatchOptions{Interval: MinWatchInterval, Mask: WatchShards})
	if err != nil {
		t.Fatal(err)
	}
	<-ch // stream live
	c.Close()
	drainWatch(t, ch)
}
