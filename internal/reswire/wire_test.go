package reswire

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"reflect"
	"testing"

	"repro/internal/resd"
)

// sampleRequests covers every op and the interesting field values
// (deadline sentinel, zero, large).
func sampleRequests() []Request {
	return []Request{
		{ID: 1, Op: OpReserve, Ready: 0, Procs: 1, Dur: 1, Deadline: resd.NoDeadline},
		{ID: 2, Op: OpReserve, Ready: 1 << 40, Procs: 1 << 20, Dur: 7, Deadline: 99},
		{ID: 3, Op: OpCancel, Resv: 0xFFFF_0000_0000_0001},
		{ID: 4, Op: OpQuery, Ready: 12345},
		{ID: 5, Op: OpSnapshot, Shard: 3},
		{ID: 6, Op: OpPing},
		{ID: 7, Op: OpStats},
	}
}

func sampleResponses() []Response {
	return []Response{
		{ID: 1, Op: OpReserve, Code: CodeOK,
			Resv: resd.Reservation{ID: 42, Shard: 2, Start: 100, Dur: 10, Procs: 8}},
		{ID: 2, Op: OpReserve, Code: CodeRejectedDeadline, Detail: "earliest 120 > deadline 99"},
		{ID: 3, Op: OpCancel, Code: CodeOK},
		{ID: 4, Op: OpQuery, Code: CodeOK, Free: []int{64, 0, 17}},
		{ID: 5, Op: OpSnapshot, Code: CodeOK, M: 8,
			Segs: []Segment{{Start: 0, Free: 8}, {Start: 10, Free: 3}, {Start: 20, Free: 8}}},
		{ID: 6, Op: OpPing, Code: CodeOK},
		{ID: 7, Op: OpStats, Code: CodeOK, Stats: []resd.ShardStats{
			{Active: 3, CommittedArea: 1000, Admitted: 10, Cancelled: 7, Rejected: 2,
				RejectedDeadline: 1, Batches: 5, Ops: 20},
		}},
		{ID: 8, Op: OpCancel, Code: CodeUnknownID, Detail: "0xdead on shard 0"},
		{ID: 9, Op: OpQuery, Code: CodeOK, Free: []int{}},
	}
}

func TestRequestRoundTrip(t *testing.T) {
	for _, req := range sampleRequests() {
		frame, err := AppendRequest(nil, req)
		if err != nil {
			t.Fatalf("encode %+v: %v", req, err)
		}
		got, err := ReadRequest(bufio.NewReader(bytes.NewReader(frame)))
		if err != nil {
			t.Fatalf("decode %+v: %v", req, err)
		}
		if got != req {
			t.Errorf("round trip:\n got %+v\nwant %+v", got, req)
		}
	}
}

func TestResponseRoundTrip(t *testing.T) {
	for _, resp := range sampleResponses() {
		frame, err := AppendResponse(nil, resp)
		if err != nil {
			t.Fatalf("encode %+v: %v", resp, err)
		}
		got, err := ReadResponse(bufio.NewReader(bytes.NewReader(frame)))
		if err != nil {
			t.Fatalf("decode %+v: %v", resp, err)
		}
		// Empty vs nil slices are indistinguishable on the wire; normalise.
		if len(got.Free) == 0 {
			got.Free = resp.Free
		}
		if len(got.Segs) == 0 {
			got.Segs = resp.Segs
		}
		if len(got.Stats) == 0 {
			got.Stats = resp.Stats
		}
		if !reflect.DeepEqual(got, resp) {
			t.Errorf("round trip:\n got %+v\nwant %+v", got, resp)
		}
	}
}

func TestManyFramesPerStream(t *testing.T) {
	var stream []byte
	reqs := sampleRequests()
	for _, req := range reqs {
		var err error
		stream, err = AppendRequest(stream, req)
		if err != nil {
			t.Fatal(err)
		}
	}
	br := bufio.NewReader(bytes.NewReader(stream))
	for i, want := range reqs {
		got, err := ReadRequest(br)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if got != want {
			t.Errorf("frame %d: got %+v want %+v", i, got, want)
		}
	}
	if _, err := ReadRequest(br); err != io.EOF {
		t.Errorf("after last frame: err = %v, want io.EOF", err)
	}
}

func TestDecodeRejectsHostileFrames(t *testing.T) {
	valid, err := AppendRequest(nil, Request{ID: 9, Op: OpReserve, Ready: 5, Procs: 2, Dur: 3, Deadline: resd.NoDeadline})
	if err != nil {
		t.Fatal(err)
	}
	mutate := func(mut func(b []byte)) []byte {
		b := bytes.Clone(valid)
		mut(b)
		return b
	}
	cases := []struct {
		name string
		in   []byte
		want error
	}{
		{"empty", nil, io.EOF},
		{"truncated length prefix", valid[:2], io.ErrUnexpectedEOF},
		{"truncated payload", valid[:len(valid)-3], ErrFrame},
		{"bad magic", mutate(func(b []byte) { b[4] = 'X' }), ErrFrame},
		{"bad version", mutate(func(b []byte) { b[6] = 99 }), ErrVersion},
		{"unknown op", mutate(func(b []byte) { b[7] = 200 }), ErrFrame},
		{"oversized length", mutate(func(b []byte) {
			binary.BigEndian.PutUint32(b, MaxFrame+1)
		}), ErrFrame},
		{"length shorter than header", mutate(func(b []byte) {
			binary.BigEndian.PutUint32(b, headerLen-1)
		}), ErrFrame},
		{"trailing bytes", func() []byte {
			b := bytes.Clone(valid)
			b = append(b, 0xAA)
			binary.BigEndian.PutUint32(b, uint32(len(b)-4))
			return b
		}(), ErrFrame},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := ReadRequest(bufio.NewReader(bytes.NewReader(c.in)))
			if !errors.Is(err, c.want) {
				t.Errorf("err = %v, want %v", err, c.want)
			}
		})
	}
}

func TestDecodeResponseBoundsVectors(t *testing.T) {
	// A Query response claiming 2^16 shards with a near-empty body must be
	// rejected before allocation.
	var b []byte
	b = append(b, 0, 0, 0, 0)
	b = appendHeader(b, Version, OpQuery, 1)
	b = append(b, byte(CodeOK))
	b = binary.BigEndian.AppendUint32(b, 1<<16)
	binary.BigEndian.PutUint32(b, uint32(len(b)-4))
	if _, err := ReadResponse(bufio.NewReader(bytes.NewReader(b))); !errors.Is(err, ErrFrame) {
		t.Errorf("err = %v, want ErrFrame", err)
	}
}

func TestCodeErrorMapping(t *testing.T) {
	cases := []struct {
		err  error
		code Code
	}{
		{nil, CodeOK},
		{resd.ErrBadRequest, CodeBadRequest},
		{resd.ErrNeverFits, CodeNeverFits},
		{resd.ErrUnknownID, CodeUnknownID},
		{resd.ErrClosed, CodeClosed},
		{resd.ErrDeadline, CodeRejectedDeadline},
		{errors.New("disk on fire"), CodeInternal},
	}
	for _, c := range cases {
		if got := CodeOf(c.err); got != c.code {
			t.Errorf("CodeOf(%v) = %v, want %v", c.err, got, c.code)
		}
		if c.code == CodeOK || c.code == CodeInternal {
			continue
		}
		// The round trip error→code→error must preserve errors.Is.
		if back := c.code.Err("detail"); !errors.Is(back, c.err) {
			t.Errorf("Code %v .Err() = %v, lost errors.Is(%v)", c.code, back, c.err)
		}
	}
	if CodeRejectedDeadline.String() != "REJECTED_DEADLINE" {
		t.Errorf("CodeRejectedDeadline.String() = %q", CodeRejectedDeadline.String())
	}
}
