// Package reswire puts the resd reservation-admission service on the
// network: a versioned, length-prefixed binary protocol, a TCP server
// that decodes frames straight into the shard event loops, and a
// pipelining client that multiplexes concurrent callers over a handful of
// connections.
//
// # Protocol
//
// Every message is one frame: a uint32 payload length, then a fixed
// header (magic "RW", version, op, uint64 request id) and an op-specific
// body of fixed-width big-endian fields. The ops are Reserve (optionally
// deadline-bounded), Cancel, Query, Snapshot, Ping, Stats and — since
// revision 2 — QuotaGet and QuotaSet. Responses echo the request id and
// carry a status Code; every non-OK code maps onto one of resd's typed
// errors — REJECTED_DEADLINE arrives as resd.ErrDeadline,
// REJECTED_NEVER_FITS as resd.ErrNeverFits, REJECTED_QUOTA as
// tenant.ErrQuota — so remote callers branch with errors.Is exactly as
// in-process callers do. The decoder validates magic, version, op, frame
// bounds (MaxFrame) and vector lengths before allocating, never panics on
// hostile bytes, and requires each frame to be consumed exactly;
// FuzzWireCodec enforces all of that plus canonical round-tripping.
//
// # Versioning and multi-tenancy
//
// Revision 2 added tenancy: a Reserve request body ends with a
// length-prefixed tenant name the admission is accounted to, Stats
// entries carry RejectedQuota, and QuotaGet/QuotaSet read and re-budget
// one tenant's share of the server's quota registry at runtime. The bump
// is backward compatible in both directions of the negotiation that
// matters: a v2 server still decodes v1 frames — a v1 Reserve lands on
// the default tenant, exactly as a tenantless in-process call does — and
// answers every request at the revision it arrived with, so a v1 client
// never sees bytes it cannot parse. Frames from any other revision fail
// with ErrVersion instead of being guessed at.
//
// Revision 3 added the rebalancing observability fields to Stats entries:
// MigratedIn and MigratedOut (how many reservations the live rebalancer
// moved onto and off each shard) and SlackP99 (the shard's p99 start-time
// slack, the SLO face of the α rule's push-back). The negotiation rule is
// the same one the v2 bump established — the server answers each request
// at its arrival revision, so v1 and v2 readers get the entry layouts
// they know and simply cannot see the newer fields.
//
// Revision 4 added the Trace op: the client asks for up to Limit of the
// server's newest sampled admission traces (resd.TraceRecord — the
// arrival→route→enqueue→batch-start→decision timing breakdown resd keeps
// in its bounded ring when tracing is enabled), and the server answers
// with a vector of fixed-layout records tailed by length-prefixed tenant
// names. Stats entries are untouched — their layout is frozen at the v3
// shape — so the bump is op-only: down-level frames decode exactly as
// before, and a Trace op smuggled into a pre-v4 frame fails the frame.
//
// Revision 5 added live telemetry and cross-wire tracing. The Watch op
// turns a request into a subscription: the body names a push interval
// (clamped into [MinWatchInterval, MaxWatchInterval]) and a family mask
// (WatchShards | WatchTenants | WatchWAL | WatchTraces | WatchSLO),
// and the server answers with an open-ended stream of Telemetry frames
// — sequence-numbered snapshots of per-shard load and queue depth,
// per-tenant budget usage, write-ahead-log state, trace-ring counters
// and evaluated SLO states (per-objective attainment, error-budget
// remaining, peak burn rate and alert severity, empty on servers
// running without an SLO engine — see internal/slo). Frames
// are assembled from the same published atomics a /metrics scrape
// reads, so a subscriber never touches a shard event loop; a slow
// subscriber (full write queue, stalled socket) has frames dropped and
// marked — Seq stays monotone and the next delivered frame's Dropped
// field counts the gap — rather than ever back-pressuring the server.
// Subscriptions are capped per connection (CodeBadRequest past the
// limit). The same revision gives Reserve bodies an optional tail — the
// client's send stamp and a force-trace flag — and Trace entries the
// matching ClientSend span, so a sampled admission's timing breakdown
// starts at the caller's send instant instead of the server's accept.
// The negotiation rule is unchanged: the server answers at the arrival
// revision, so a v4 Trace reader gets the entry layout it knows and
// simply cannot see the client-send span, and a Watch op smuggled into
// a pre-v5 frame fails the frame.
//
// Client.Watch is the subscription's client face: it runs each
// subscription on its own dedicated connection (pushed frames never
// contend with the request/response window) and, when the transport
// fails, redials and resubscribes transparently until its context is
// cancelled or the client closes. Frame Seq restarts after a
// resubscribe, so a consumer that must distinguish "my stream bounced"
// from "the counters moved" watches for the restart — cmd/obscheck's
// -watch mode treats it as a failed check.
//
// # Instrumentation
//
// Both sides can carry obs instrumentation: NewMetrics builds the
// reswire_* families (per-op latency summaries, in-flight gauge, socket
// byte counters, frame-error and response-code counters) against an
// obs.Registry, attached via Server.SetMetrics and Options.Metrics. The
// two sides share family names and are kept apart by the side label. A
// nil Metrics — the default — leaves the hot path uninstrumented.
//
// # Server
//
// The server runs one reader and one writer per connection. The reader
// decodes frames and dispatches each request into the resd.Service on its
// own goroutine (bounded per connection), so concurrent requests from one
// client land in the shard event loops' group-commit batches exactly like
// in-process traffic — the lock-free admission path is preserved end to
// end. The writer coalesces: each wakeup drains every response already
// queued and flushes once, so under load many responses share a syscall.
//
// # Client
//
// The client spreads callers round-robin over Options.Conns connections.
// With Options.Pipeline, each connection allows a window of in-flight
// requests whose frames are batched into shared flushes (responses are
// matched back by request id, so ordering is free to differ); without it,
// each connection carries one request at a time — the classic
// write-flush-wait RPC shape, kept as the benchmark baseline.
// BenchmarkWireThroughput (repository root, recorded in
// BENCH_reswire.json) measures the gap: pipelining is the difference
// between paying one round trip per admission and amortising the wire
// across a batch.
//
// Client.Admit mirrors resd.Service.Admit field for field: the one
// resd.Request struct is the admission vocabulary on both sides of the
// socket, and callers migrating from the deprecated
// Reserve/ReserveBy/ReserveFor triplet change nothing but the call
// site (each wrapper fills the Request its old signature implied; the
// on-wire frames are unchanged, so mixed-version deployments are
// unaffected).
//
// Options.CallTimeout bounds every call end to end — waiting for a
// window slot, getting the frame onto the socket, and waiting for the
// response — failing with ErrTimeout. A timed-out call releases its
// window slot
// immediately and marks its request id stale; if the response arrives
// late, the reader discards it and keeps the connection, so one slow
// request degrades to one failed call, not a poisoned connection. Zero
// means no timeout. After Close every call fails with ErrClientClosed.
package reswire
