package reswire

import (
	"bufio"
	"errors"
	"net"
	"testing"
	"time"

	"repro/internal/resd"
)

// blackHole accepts connections and reads them forever without ever
// responding — the pathological server a call timeout exists for.
func blackHole(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			nc, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				buf := make([]byte, 4096)
				for {
					if _, err := nc.Read(buf); err != nil {
						return
					}
				}
			}()
		}
	}()
	return ln.Addr().String()
}

func TestCallTimeoutFiresAndFreesTheWindow(t *testing.T) {
	addr := blackHole(t)
	// Pipeline off forces Window=1: if a timed-out call leaked its
	// window slot, the second call would fail on admission, not on the
	// response wait.
	c := dial(t, addr, Options{CallTimeout: 30 * time.Millisecond})
	for i := 0; i < 2; i++ {
		err := c.Ping()
		if !errors.Is(err, ErrTimeout) {
			t.Fatalf("call %d: err = %v, want ErrTimeout", i, err)
		}
	}
}

func TestCallTimeoutZeroMeansNoTimeout(t *testing.T) {
	addr, _ := startServer(t, resd.Config{M: 8})
	c := dial(t, addr, Options{}) // CallTimeout unset
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
}

func TestCallTimeoutRejectsNegative(t *testing.T) {
	if _, err := Dial("127.0.0.1:1", Options{CallTimeout: -time.Second}); err == nil {
		t.Fatal("negative CallTimeout accepted")
	}
}

// TestCallTimeoutLateResponseKeepsConnection covers the stale-id path:
// a response arriving after its caller timed out must be discarded —
// not treated as a protocol violation that kills the connection — and
// later calls on the same connection must still work.
func TestCallTimeoutLateResponseKeepsConnection(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	// A hand-rolled server: the first request's response is delayed past
	// the client's timeout, every later one is answered promptly.
	go func() {
		nc, err := ln.Accept()
		if err != nil {
			return
		}
		defer nc.Close()
		br := bufio.NewReader(nc)
		first := true
		for {
			req, err := ReadRequest(br)
			if err != nil {
				return
			}
			if first {
				first = false
				time.Sleep(150 * time.Millisecond)
			}
			buf, err := AppendResponse(nil, Response{ID: req.ID, Op: req.Op, Code: CodeOK})
			if err != nil {
				return
			}
			if _, err := nc.Write(buf); err != nil {
				return
			}
		}
	}()

	c := dial(t, ln.Addr().String(), Options{Pipeline: true, CallTimeout: 40 * time.Millisecond})
	if err := c.Ping(); !errors.Is(err, ErrTimeout) {
		t.Fatalf("delayed call: err = %v, want ErrTimeout", err)
	}
	// Let the late response land while no call is pending: the reader
	// must swallow it via the stale set.
	time.Sleep(200 * time.Millisecond)
	for i := 0; i < 3; i++ {
		if err := c.Ping(); err != nil {
			t.Fatalf("call %d after a discarded late response: %v", i, err)
		}
	}
}

// TestClientClosedAfterClose pins the post-Close contract: every call
// fails with ErrClientClosed, consistently, no matter how it raced the
// teardown.
func TestClientClosedAfterClose(t *testing.T) {
	addr, _ := startServer(t, resd.Config{M: 8})
	c, err := Dial(addr, Options{Conns: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	c.Close()
	if err := c.Ping(); !errors.Is(err, ErrClientClosed) {
		t.Fatalf("Ping after Close: %v, want ErrClientClosed", err)
	}
	if _, err := c.Admit(resd.Request{Q: 1, Dur: 1, Deadline: resd.NoDeadline}); !errors.Is(err, ErrClientClosed) {
		t.Fatalf("Admit after Close: %v, want ErrClientClosed", err)
	}
}
