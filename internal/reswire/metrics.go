package reswire

import (
	"errors"
	"net"
	"time"

	"repro/internal/obs"
)

// Metrics instruments one side of the wire — pass one built with side
// "server" to Server.SetMetrics and one with side "client" through
// Options.Metrics (they may share a registry; the side label keeps their
// series apart). Families:
//
//	reswire_op_ns{side,op,quantile}     summary  per-op round-trip latency
//	reswire_inflight{side}              gauge    requests currently in flight
//	reswire_bytes_total{side,dir}       counter  dir ∈ rx|tx, raw socket bytes
//	reswire_frame_errors_total{side}    counter  malformed/unsupported frames
//	reswire_responses_total{side,code}  counter  responses by wire code
//
// The latency summaries measure what each side can see: the server times
// decode-to-response (service time, including the shard loop's group
// commit), the client times send-to-receive (service time plus the wire).
// All methods are safe on a nil *Metrics, which disables instrumentation.
type Metrics struct {
	opNS     [OpWatch + 1]*obs.Histogram
	inflight *obs.Gauge
	rx, tx   *obs.Counter
	frame    *obs.Counter
	codes    [CodeRejectedQuota + 1]*obs.Counter
}

// NewMetrics registers the wire families for one side ("server" or
// "client") against reg. A nil registry returns a nil Metrics — the
// no-op, matching how resd treats a nil ObsConfig.
func NewMetrics(reg *obs.Registry, side string) *Metrics {
	if reg == nil {
		return nil
	}
	m := &Metrics{}
	s := obs.L("side", side)
	for op := OpReserve; op <= OpWatch; op++ {
		m.opNS[op] = reg.NewHistogram("reswire_op_ns",
			"Wire op latency in nanoseconds, as observed by this side.",
			s, obs.L("op", op.String()))
	}
	m.inflight = reg.NewGauge("reswire_inflight",
		"Requests currently in flight on this side.", s)
	m.rx = reg.NewCounter("reswire_bytes_total",
		"Raw socket bytes moved, by direction.", s, obs.L("dir", "rx"))
	m.tx = reg.NewCounter("reswire_bytes_total",
		"Raw socket bytes moved, by direction.", s, obs.L("dir", "tx"))
	m.frame = reg.NewCounter("reswire_frame_errors_total",
		"Frames refused as malformed or from an unsupported revision.", s)
	for c := CodeOK; c <= CodeRejectedQuota; c++ {
		m.codes[c] = reg.NewCounter("reswire_responses_total",
			"Responses seen by this side, by wire code.",
			s, obs.L("code", c.String()))
	}
	return m
}

// begin marks one request entering flight and returns its start instant
// (zero when metrics are disabled, so callers never pay time.Now for
// nothing).
func (m *Metrics) begin() time.Time {
	if m == nil {
		return time.Time{}
	}
	m.inflight.Add(1)
	return time.Now()
}

// end marks the request begun at begin leaving flight.
func (m *Metrics) end() {
	if m != nil {
		m.inflight.Add(-1)
	}
}

// observe records one finished op: its latency since start and the
// response code it resolved to.
func (m *Metrics) observe(op Op, start time.Time, code Code) {
	if m == nil {
		return
	}
	if op >= OpReserve && int(op) < len(m.opNS) {
		m.opNS[op].Observe(time.Since(start).Nanoseconds())
	}
	if int(code) < len(m.codes) {
		m.codes[code].Inc()
	}
}

// frameError counts err when it is a protocol refusal (ErrFrame or
// ErrVersion); read failures from a closing socket are not the peer's
// fault and are not counted.
func (m *Metrics) frameError(err error) {
	if m == nil || err == nil {
		return
	}
	if errors.Is(err, ErrFrame) || errors.Is(err, ErrVersion) {
		m.frame.Inc()
	}
}

// wrap interposes the byte counters on a connection; the no-op returns
// the connection untouched.
func (m *Metrics) wrap(nc net.Conn) net.Conn {
	if m == nil {
		return nc
	}
	return &countingConn{Conn: nc, m: m}
}

// countingConn counts raw socket bytes into its Metrics. Only Read and
// Write are interposed; everything else delegates to the embedded Conn.
type countingConn struct {
	net.Conn
	m *Metrics
}

func (c *countingConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	if n > 0 {
		c.m.rx.Add(uint64(n))
	}
	return n, err
}

func (c *countingConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	if n > 0 {
		c.m.tx.Add(uint64(n))
	}
	return n, err
}
