package reswire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"net"
	"testing"

	"repro/internal/flight"
	"repro/internal/resd"
)

// startFlightServer is startServer with a flight journal attached
// before Serve, returning the journal alongside the address.
func startFlightServer(t *testing.T, cfg resd.Config) (string, *flight.Journal) {
	t.Helper()
	svc, err := resd.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svc.Close)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(svc)
	j := flight.NewJournal(64, nil)
	srv.SetFlight(j)
	done := make(chan struct{})
	go func() {
		defer close(done)
		if err := srv.Serve(ln); !errors.Is(err, ErrServerClosed) {
			t.Errorf("Serve: %v", err)
		}
	}()
	t.Cleanup(func() { srv.Close(); <-done })
	return ln.Addr().String(), j
}

// TestFlightJournalDownLevelClient pins the down-level breadcrumb's
// semantics: a current-revision client must journal nothing (the wire
// layer normalises the current revision to 0 in Request.Version, which
// once made every up-to-date client read as "down-level"), while a
// genuinely old client journals exactly one Info event per connection,
// carrying the concrete revision it spoke.
func TestFlightJournalDownLevelClient(t *testing.T) {
	addr, j := startFlightServer(t, resd.Config{M: 8})

	// A current client: admissions flow, nothing journaled.
	client, err := Dial(addr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.Admit(resd.Request{Q: 1, Dur: 1, Deadline: resd.NoDeadline}); err != nil {
		t.Fatal(err)
	}
	client.Close()
	if got := j.SubsysCount("reswire", flight.Info); got != 0 {
		t.Fatalf("current-revision client journaled %d reswire events: %+v", got, j.Tail(0))
	}

	// A v1 client: one down-level event for the connection, not one per
	// request, with the concrete revision in the KVs.
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	br := bufio.NewReader(nc)
	for id := uint64(1); id <= 2; id++ {
		frame, err := AppendRequest(nil, Request{ID: id, Op: OpStats, Version: VersionV1})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := nc.Write(frame); err != nil {
			t.Fatal(err)
		}
		if _, err := ReadFrame(br); err != nil {
			t.Fatal(err)
		}
	}
	if got := j.SubsysCount("reswire", flight.Info); got != 1 {
		t.Fatalf("v1 client journaled %d events, want 1: %+v", got, j.Tail(0))
	}
	var ev flight.Event
	for _, e := range j.Tail(0) {
		if e.Subsys == "reswire" && e.Sev == flight.Info {
			ev = e
		}
	}
	var version string
	for _, kv := range ev.KV {
		if kv.K == "version" {
			version = kv.V
		}
	}
	if version != "1" {
		t.Fatalf("down-level event records version %q, want \"1\": %+v", version, ev)
	}
}

// TestFlightJournalFrameError: hostile bytes that fail the frame decode
// journal a reswire warning before the server hangs up.
func TestFlightJournalFrameError(t *testing.T) {
	addr, j := startFlightServer(t, resd.Config{M: 8})
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	// A well-formed length prefix framing garbage: decodes far enough to
	// fail on the magic, which is ErrFrame, not a closed socket.
	frame := binary.BigEndian.AppendUint32(nil, 4)
	frame = append(frame, 0xde, 0xad, 0xbe, 0xef)
	if _, err := nc.Write(frame); err != nil {
		t.Fatal(err)
	}
	// The server drops the connection; the read observing EOF sequences
	// us after its serveConn loop exited and journaled.
	var buf [1]byte
	nc.Read(buf[:])
	if got := j.SubsysCount("reswire", flight.Warn); got != 1 {
		t.Fatalf("hostile frame journaled %d warnings, want 1: %+v", got, j.Tail(0))
	}
}
