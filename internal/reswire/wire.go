package reswire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/resd"
)

// Wire framing constants. Every message on the wire is one frame:
//
//	uint32  payload length (big endian, excludes these 4 bytes)
//	uint16  magic   0x5257 ("RW")
//	uint8   version (1)
//	uint8   op
//	uint64  request id (echoed verbatim in the response)
//	...     op-specific body
//
// All integers are fixed-width big endian; there is no padding. Requests
// flow client→server, responses server→client, so the direction of a frame
// is implied by the connection side and the two kinds share the header.
const (
	// Magic is the first two payload bytes of every frame ("RW").
	Magic uint16 = 0x5257
	// Version is the protocol revision; a server refuses frames from a
	// different revision rather than guessing at their layout.
	Version uint8 = 1
	// MaxFrame bounds a frame's payload. The decoder rejects larger
	// length prefixes before allocating, so a hostile peer cannot make a
	// reader allocate unbounded memory.
	MaxFrame = 8 << 20
	// maxDetail bounds the human-readable error detail in responses.
	maxDetail = 1 << 10
	// headerLen is magic+version+op+id.
	headerLen = 2 + 1 + 1 + 8
	// maxShards mirrors resd's shard-count ceiling (16 shard bits); used
	// to bound Query/Stats response vectors during decoding.
	maxShards = 1 << 16
)

// Op enumerates the protocol operations.
type Op uint8

const (
	// OpReserve admits a reservation (optionally deadline-bounded).
	OpReserve Op = 1 + iota
	// OpCancel releases an admitted reservation by id.
	OpCancel
	// OpQuery reads the per-shard free capacity at an instant.
	OpQuery
	// OpSnapshot copies one shard's capacity profile as segments.
	OpSnapshot
	// OpPing is a liveness/RTT probe.
	OpPing
	// OpStats reads the per-shard load summaries.
	OpStats
)

func (op Op) valid() bool { return op >= OpReserve && op <= OpStats }

// String names the op for diagnostics.
func (op Op) String() string {
	switch op {
	case OpReserve:
		return "Reserve"
	case OpCancel:
		return "Cancel"
	case OpQuery:
		return "Query"
	case OpSnapshot:
		return "Snapshot"
	case OpPing:
		return "Ping"
	case OpStats:
		return "Stats"
	default:
		return fmt.Sprintf("Op(%d)", uint8(op))
	}
}

// Code is a response status. CodeOK means the op succeeded; every other
// code maps onto one of resd's typed errors so a remote caller can branch
// with errors.Is exactly as an in-process caller would.
type Code uint8

const (
	// CodeOK reports success.
	CodeOK Code = iota
	// CodeBadRequest maps resd.ErrBadRequest.
	CodeBadRequest
	// CodeNeverFits maps resd.ErrNeverFits (static α-rule rejection).
	CodeNeverFits
	// CodeUnknownID maps resd.ErrUnknownID.
	CodeUnknownID
	// CodeClosed maps resd.ErrClosed (service shutting down).
	CodeClosed
	// CodeRejectedDeadline maps resd.ErrDeadline: the request was
	// feasible but its earliest start exceeded the caller's deadline.
	CodeRejectedDeadline
	// CodeInternal reports a server-side failure outside the typed set.
	CodeInternal
)

// String names the code, REJECTED_DEADLINE-style, for logs and examples.
func (c Code) String() string {
	switch c {
	case CodeOK:
		return "OK"
	case CodeBadRequest:
		return "BAD_REQUEST"
	case CodeNeverFits:
		return "REJECTED_NEVER_FITS"
	case CodeUnknownID:
		return "UNKNOWN_ID"
	case CodeClosed:
		return "CLOSED"
	case CodeRejectedDeadline:
		return "REJECTED_DEADLINE"
	case CodeInternal:
		return "INTERNAL"
	default:
		return fmt.Sprintf("Code(%d)", uint8(c))
	}
}

// CodeOf maps a service error onto its wire code.
func CodeOf(err error) Code {
	switch {
	case err == nil:
		return CodeOK
	case errors.Is(err, resd.ErrDeadline):
		return CodeRejectedDeadline
	case errors.Is(err, resd.ErrNeverFits):
		return CodeNeverFits
	case errors.Is(err, resd.ErrUnknownID):
		return CodeUnknownID
	case errors.Is(err, resd.ErrClosed):
		return CodeClosed
	case errors.Is(err, resd.ErrBadRequest):
		return CodeBadRequest
	default:
		return CodeInternal
	}
}

// ErrInternal is the client-side sentinel for CodeInternal responses.
var ErrInternal = errors.New("reswire: internal server error")

// Err reconstructs the typed error a code stands for, so errors.Is works
// identically on both sides of the wire. detail is the server's message.
func (c Code) Err(detail string) error {
	var sentinel error
	switch c {
	case CodeOK:
		return nil
	case CodeBadRequest:
		sentinel = resd.ErrBadRequest
	case CodeNeverFits:
		sentinel = resd.ErrNeverFits
	case CodeUnknownID:
		sentinel = resd.ErrUnknownID
	case CodeClosed:
		sentinel = resd.ErrClosed
	case CodeRejectedDeadline:
		sentinel = resd.ErrDeadline
	default:
		sentinel = ErrInternal
	}
	if detail == "" {
		return fmt.Errorf("reswire: %s: %w", c, sentinel)
	}
	return fmt.Errorf("reswire: %s: %w (%s)", c, sentinel, detail)
}

// Protocol-level decoding errors.
var (
	// ErrFrame reports a malformed frame (bad magic, unknown op,
	// truncated or oversized body, trailing bytes).
	ErrFrame = errors.New("reswire: malformed frame")
	// ErrVersion reports a frame from an unsupported protocol revision.
	ErrVersion = errors.New("reswire: unsupported protocol version")
)

// Request is one decoded client→server message. Fields beyond ID and Op
// are meaningful per op: Reserve uses Ready/Procs/Dur/Deadline, Cancel
// uses Resv, Query uses Ready as the probe instant, Snapshot uses Shard.
type Request struct {
	ID       uint64
	Op       Op
	Ready    core.Time
	Procs    int
	Dur      core.Time
	Deadline core.Time
	Resv     uint64
	Shard    int
}

// Segment is one constant piece of a snapshot's capacity step function:
// Free processors are available from Start until the next segment's Start
// (the last segment extends to infinity).
type Segment struct {
	Start core.Time
	Free  int
}

// Response is one decoded server→client message. Code discriminates
// success; on success the op-specific field is set (Resv for Reserve,
// Free for Query, M+Segs for Snapshot, Stats for Stats).
type Response struct {
	ID     uint64
	Op     Op
	Code   Code
	Detail string
	Resv   resd.Reservation
	Free   []int
	M      int
	Segs   []Segment
	Stats  []resd.ShardStats
}

// appendHeader writes the shared frame header (after the length prefix).
func appendHeader(dst []byte, op Op, id uint64) []byte {
	dst = binary.BigEndian.AppendUint16(dst, Magic)
	dst = append(dst, Version, byte(op))
	return binary.BigEndian.AppendUint64(dst, id)
}

func appendI64(dst []byte, v int64) []byte      { return binary.BigEndian.AppendUint64(dst, uint64(v)) }
func appendI32(dst []byte, v int32) []byte      { return binary.BigEndian.AppendUint32(dst, uint32(v)) }
func appendTime(dst []byte, t core.Time) []byte { return appendI64(dst, int64(t)) }

// finishFrame back-fills the length prefix reserved at base.
func finishFrame(dst []byte, base int) ([]byte, error) {
	n := len(dst) - base - 4
	if n > MaxFrame {
		return nil, fmt.Errorf("%w: %d byte payload exceeds MaxFrame", ErrFrame, n)
	}
	binary.BigEndian.PutUint32(dst[base:], uint32(n))
	return dst, nil
}

// AppendRequest encodes req as one frame appended to dst.
func AppendRequest(dst []byte, req Request) ([]byte, error) {
	if !req.Op.valid() {
		return nil, fmt.Errorf("%w: invalid op %d", ErrFrame, uint8(req.Op))
	}
	if req.Procs < -1<<31 || req.Procs > 1<<31-1 || req.Shard < -1<<31 || req.Shard > 1<<31-1 {
		return nil, fmt.Errorf("%w: field exceeds int32 range", ErrFrame)
	}
	base := len(dst)
	dst = append(dst, 0, 0, 0, 0)
	dst = appendHeader(dst, req.Op, req.ID)
	switch req.Op {
	case OpReserve:
		dst = appendTime(dst, req.Ready)
		dst = appendI32(dst, int32(req.Procs))
		dst = appendTime(dst, req.Dur)
		dst = appendTime(dst, req.Deadline)
	case OpCancel:
		dst = binary.BigEndian.AppendUint64(dst, req.Resv)
	case OpQuery:
		dst = appendTime(dst, req.Ready)
	case OpSnapshot:
		dst = appendI32(dst, int32(req.Shard))
	case OpPing, OpStats:
		// header only
	}
	return finishFrame(dst, base)
}

// AppendResponse encodes resp as one frame appended to dst.
func AppendResponse(dst []byte, resp Response) ([]byte, error) {
	if !resp.Op.valid() {
		return nil, fmt.Errorf("%w: invalid op %d", ErrFrame, uint8(resp.Op))
	}
	base := len(dst)
	dst = append(dst, 0, 0, 0, 0)
	dst = appendHeader(dst, resp.Op, resp.ID)
	dst = append(dst, byte(resp.Code))
	if resp.Code != CodeOK {
		detail := resp.Detail
		if len(detail) > maxDetail {
			detail = detail[:maxDetail]
		}
		dst = binary.BigEndian.AppendUint16(dst, uint16(len(detail)))
		dst = append(dst, detail...)
		return finishFrame(dst, base)
	}
	switch resp.Op {
	case OpReserve:
		dst = binary.BigEndian.AppendUint64(dst, uint64(resp.Resv.ID))
		dst = appendI32(dst, int32(resp.Resv.Shard))
		dst = appendTime(dst, resp.Resv.Start)
		dst = appendTime(dst, resp.Resv.Dur)
		dst = appendI32(dst, int32(resp.Resv.Procs))
	case OpQuery:
		if len(resp.Free) > maxShards {
			return nil, fmt.Errorf("%w: %d shards in Query response", ErrFrame, len(resp.Free))
		}
		dst = binary.BigEndian.AppendUint32(dst, uint32(len(resp.Free)))
		for _, f := range resp.Free {
			dst = appendI32(dst, int32(f))
		}
	case OpSnapshot:
		dst = appendI32(dst, int32(resp.M))
		dst = binary.BigEndian.AppendUint32(dst, uint32(len(resp.Segs)))
		for _, s := range resp.Segs {
			dst = appendTime(dst, s.Start)
			dst = appendI32(dst, int32(s.Free))
		}
	case OpStats:
		if len(resp.Stats) > maxShards {
			return nil, fmt.Errorf("%w: %d shards in Stats response", ErrFrame, len(resp.Stats))
		}
		dst = binary.BigEndian.AppendUint32(dst, uint32(len(resp.Stats)))
		for _, st := range resp.Stats {
			dst = appendI64(dst, int64(st.Active))
			dst = appendI64(dst, st.CommittedArea)
			dst = binary.BigEndian.AppendUint64(dst, st.Admitted)
			dst = binary.BigEndian.AppendUint64(dst, st.Cancelled)
			dst = binary.BigEndian.AppendUint64(dst, st.Rejected)
			dst = binary.BigEndian.AppendUint64(dst, st.RejectedDeadline)
			dst = binary.BigEndian.AppendUint64(dst, st.Batches)
			dst = binary.BigEndian.AppendUint64(dst, st.Ops)
		}
	case OpCancel, OpPing:
		// header + code only
	}
	return finishFrame(dst, base)
}

// reader is a bounds-checked cursor over one frame payload.
type reader struct {
	b   []byte
	off int
	err error
}

func (r *reader) fail() {
	if r.err == nil {
		r.err = fmt.Errorf("%w: truncated body at offset %d", ErrFrame, r.off)
	}
}

func (r *reader) u8() uint8 {
	if r.err != nil || r.off+1 > len(r.b) {
		r.fail()
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

func (r *reader) u16() uint16 {
	if r.err != nil || r.off+2 > len(r.b) {
		r.fail()
		return 0
	}
	v := binary.BigEndian.Uint16(r.b[r.off:])
	r.off += 2
	return v
}

func (r *reader) u32() uint32 {
	if r.err != nil || r.off+4 > len(r.b) {
		r.fail()
		return 0
	}
	v := binary.BigEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v
}

func (r *reader) u64() uint64 {
	if r.err != nil || r.off+8 > len(r.b) {
		r.fail()
		return 0
	}
	v := binary.BigEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v
}

func (r *reader) i32() int32      { return int32(r.u32()) }
func (r *reader) i64() int64      { return int64(r.u64()) }
func (r *reader) time() core.Time { return core.Time(r.i64()) }
func (r *reader) bytes(n int) []byte {
	if r.err != nil || n < 0 || r.off+n > len(r.b) {
		r.fail()
		return nil
	}
	v := r.b[r.off : r.off+n]
	r.off += n
	return v
}

// header consumes and validates the shared frame header, returning op+id.
func (r *reader) header() (Op, uint64) {
	if magic := r.u16(); r.err == nil && magic != Magic {
		r.err = fmt.Errorf("%w: magic %#04x", ErrFrame, magic)
	}
	if v := r.u8(); r.err == nil && v != Version {
		r.err = fmt.Errorf("%w: got %d, support %d", ErrVersion, v, Version)
	}
	op := Op(r.u8())
	if r.err == nil && !op.valid() {
		r.err = fmt.Errorf("%w: unknown op %d", ErrFrame, uint8(op))
	}
	return op, r.u64()
}

// done rejects trailing bytes: a frame must be consumed exactly.
func (r *reader) done() error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.b) {
		return fmt.Errorf("%w: %d trailing bytes", ErrFrame, len(r.b)-r.off)
	}
	return nil
}

// DecodeRequest parses one request payload (a frame minus its length
// prefix). It never panics on hostile input and consumes the payload
// exactly or fails.
func DecodeRequest(payload []byte) (Request, error) {
	r := &reader{b: payload}
	var req Request
	req.Op, req.ID = r.header()
	if r.err != nil {
		return Request{}, r.err
	}
	switch req.Op {
	case OpReserve:
		req.Ready = r.time()
		req.Procs = int(r.i32())
		req.Dur = r.time()
		req.Deadline = r.time()
	case OpCancel:
		req.Resv = r.u64()
	case OpQuery:
		req.Ready = r.time()
	case OpSnapshot:
		req.Shard = int(r.i32())
	case OpPing, OpStats:
	}
	if err := r.done(); err != nil {
		return Request{}, err
	}
	return req, nil
}

// DecodeResponse parses one response payload. Length-prefixed vectors are
// validated against the remaining payload before allocation, so a hostile
// count cannot force a large allocation.
func DecodeResponse(payload []byte) (Response, error) {
	r := &reader{b: payload}
	var resp Response
	resp.Op, resp.ID = r.header()
	if r.err != nil {
		return Response{}, r.err
	}
	resp.Code = Code(r.u8())
	if resp.Code != CodeOK {
		n := int(r.u16())
		if n > maxDetail {
			r.err = fmt.Errorf("%w: %d byte error detail", ErrFrame, n)
		}
		resp.Detail = string(r.bytes(n))
		if err := r.done(); err != nil {
			return Response{}, err
		}
		return resp, nil
	}
	switch resp.Op {
	case OpReserve:
		resp.Resv.ID = resd.ID(r.u64())
		resp.Resv.Shard = int(r.i32())
		resp.Resv.Start = r.time()
		resp.Resv.Dur = r.time()
		resp.Resv.Procs = int(r.i32())
	case OpQuery:
		n := int(r.u32())
		if n > maxShards || (r.err == nil && 4*n > len(r.b)-r.off) {
			r.fail()
			break
		}
		resp.Free = make([]int, n)
		for i := range resp.Free {
			resp.Free[i] = int(r.i32())
		}
	case OpSnapshot:
		resp.M = int(r.i32())
		n := int(r.u32())
		if r.err == nil && 12*n > len(r.b)-r.off {
			r.fail()
			break
		}
		resp.Segs = make([]Segment, n)
		for i := range resp.Segs {
			resp.Segs[i].Start = r.time()
			resp.Segs[i].Free = int(r.i32())
		}
	case OpStats:
		n := int(r.u32())
		if n > maxShards || (r.err == nil && 64*n > len(r.b)-r.off) {
			r.fail()
			break
		}
		resp.Stats = make([]resd.ShardStats, n)
		for i := range resp.Stats {
			resp.Stats[i].Active = int(r.i64())
			resp.Stats[i].CommittedArea = r.i64()
			resp.Stats[i].Admitted = r.u64()
			resp.Stats[i].Cancelled = r.u64()
			resp.Stats[i].Rejected = r.u64()
			resp.Stats[i].RejectedDeadline = r.u64()
			resp.Stats[i].Batches = r.u64()
			resp.Stats[i].Ops = r.u64()
		}
	case OpCancel, OpPing:
	}
	if err := r.done(); err != nil {
		return Response{}, err
	}
	return resp, nil
}

// ReadFrame reads one length-prefixed payload from br. The length prefix
// is validated against MaxFrame before the payload is allocated.
func ReadFrame(br *bufio.Reader) ([]byte, error) {
	var lenbuf [4]byte
	if _, err := io.ReadFull(br, lenbuf[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(lenbuf[:])
	if n > MaxFrame {
		return nil, fmt.Errorf("%w: %d byte payload exceeds MaxFrame %d", ErrFrame, n, MaxFrame)
	}
	if n < headerLen {
		return nil, fmt.Errorf("%w: %d byte payload shorter than header", ErrFrame, n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(br, payload); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, fmt.Errorf("%w: truncated frame: %v", ErrFrame, err)
	}
	return payload, nil
}

// ReadRequest reads and decodes one request frame.
func ReadRequest(br *bufio.Reader) (Request, error) {
	payload, err := ReadFrame(br)
	if err != nil {
		return Request{}, err
	}
	return DecodeRequest(payload)
}

// ReadResponse reads and decodes one response frame.
func ReadResponse(br *bufio.Reader) (Response, error) {
	payload, err := ReadFrame(br)
	if err != nil {
		return Response{}, err
	}
	return DecodeResponse(payload)
}
