package reswire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"time"

	"repro/internal/core"
	"repro/internal/resd"
	"repro/internal/slo"
	"repro/internal/tenant"
)

// Wire framing constants. Every message on the wire is one frame:
//
//	uint32  payload length (big endian, excludes these 4 bytes)
//	uint16  magic   0x5257 ("RW")
//	uint8   version (1, 2, 3 or 4)
//	uint8   op
//	uint64  request id (echoed verbatim in the response)
//	...     op-specific body
//
// All integers are fixed-width big endian; there is no padding. Requests
// flow client→server, responses server→client, so the direction of a frame
// is implied by the connection side and the two kinds share the header.
//
// Version 2 added multi-tenancy: Reserve request bodies end with a
// length-prefixed tenant name, and the QuotaGet/QuotaSet ops exist.
// Version 3 added the rebalancing observability fields to Stats entries
// (MigratedIn, MigratedOut, SlackP99). Version 4 added the Trace op,
// which reads the server's sampled admission-trace ring; Stats entries
// are unchanged (their layout is frozen at the v3 shape). Version 5
// added the Watch op (server-pushed telemetry frames), an optional
// client send stamp + trace flag on the tail of Reserve bodies, and the
// ClientSend span on Trace entries. A v5 server still accepts v1..v4
// frames — a v1 Reserve is accounted to the default tenant, a v2 Stats
// answer carries the v2 layout — and answers each request at the
// version it arrived with, so down-level clients keep working
// unchanged. Frames from any other revision are refused rather than
// guessed at.
const (
	// Magic is the first two payload bytes of every frame ("RW").
	Magic uint16 = 0x5257
	// Version is the current protocol revision, the one the client
	// speaks.
	Version uint8 = 5
	// VersionV4 is the tracing revision (Trace op) without the Watch op
	// and without the Reserve client-stamp tail.
	VersionV4 uint8 = 4
	// VersionV3 is the rebalancing-observability revision (v3 Stats
	// fields) without the Trace op.
	VersionV3 uint8 = 3
	// VersionV2 is the tenancy revision (tenant-tailed Reserve, quota
	// ops) without the v3 Stats fields.
	VersionV2 uint8 = 2
	// VersionV1 is the pre-tenancy revision a server still accepts.
	VersionV1 uint8 = 1
	// MaxFrame bounds a frame's payload. The decoder rejects larger
	// length prefixes before allocating, so a hostile peer cannot make a
	// reader allocate unbounded memory.
	MaxFrame = 8 << 20
	// maxDetail bounds the human-readable error detail in responses.
	maxDetail = 1 << 10
	// headerLen is magic+version+op+id.
	headerLen = 2 + 1 + 1 + 8
	// maxShards mirrors resd's shard-count ceiling (16 shard bits); used
	// to bound Query/Stats response vectors during decoding.
	maxShards = 1 << 16
	// maxTraces bounds a Trace response vector during decoding — far above
	// any sane trace-ring capacity, low enough that a hostile count fails
	// before allocation.
	maxTraces = 1 << 16
	// traceEntryLen is the fixed part of one wire trace record: seq (8),
	// arrival unix-nanos (8), four stage offsets (32), start (8), shard
	// (4), outcome (1) and the tenant-name length byte (1); the name
	// itself is variable. At v5 each entry additionally carries the
	// ClientSend span (8), so the fixed part grows by traceV5Extra.
	traceEntryLen = 8 + 8 + 32 + 8 + 4 + 1 + 1
	traceV5Extra  = 8
	// maxTenants bounds the tenant vector of a Watch telemetry frame
	// during decoding, like maxShards bounds the shard vectors.
	maxTenants = 1 << 16
	// watchShardEntryLen is the fixed size of one per-shard telemetry
	// entry: queue depth (4) plus the frozen v3 Stats entry layout (96).
	watchShardEntryLen = 4 + 96
	// watchTenantEntryLen is the minimum size of one per-tenant telemetry
	// entry: the name length byte (1) plus budget/used/inflight (24).
	watchTenantEntryLen = 1 + 24
	// watchWALEntryLen is the fixed size of one per-shard WAL telemetry
	// entry: shard (4), gen/bytes/records/fsyncs/snapshots (40),
	// fsync-p99 (8) and failures (8).
	watchWALEntryLen = 4 + 40 + 8 + 8
	// maxSLO bounds the SLO vector of a Watch telemetry frame during
	// decoding — far above any sane objective count, low enough that a
	// hostile count fails before allocation.
	maxSLO = 1 << 10
	// watchSLOEntryLen is the minimum size of one per-objective SLO
	// telemetry entry: two name length bytes (2), signal (1), four
	// float64s (32) and the alert state (1).
	watchSLOEntryLen = 2 + 1 + 32 + 1
)

// Watch family mask bits: a Watch subscription names the telemetry
// families it wants pushed. The zero mask is invalid — an explicit
// choice beats a silent default on the wire — and unknown bits fail the
// frame rather than round-tripping into future revisions' semantics.
const (
	// WatchShards selects per-shard load/capacity: queue depth plus the
	// full ShardStats counter set.
	WatchShards uint32 = 1 << iota
	// WatchTenants selects per-tenant budget usage from the quota
	// registry (empty on servers running without quotas).
	WatchTenants
	// WatchWAL selects per-shard write-ahead-log counters (empty on
	// in-memory servers).
	WatchWAL
	// WatchTraces selects the admission-tracing counters.
	WatchTraces
	// WatchSLO selects the evaluated SLO states: per-objective
	// attainment, error-budget remaining, peak burn rate and alert
	// state (empty on servers running without an SLO engine).
	WatchSLO
	// WatchAll selects every family.
	WatchAll = WatchShards | WatchTenants | WatchWAL | WatchTraces | WatchSLO
)

// validWatchMask reports whether mask names at least one known family
// and nothing else.
func validWatchMask(mask uint32) bool {
	return mask != 0 && mask&^WatchAll == 0
}

// Op enumerates the protocol operations.
type Op uint8

const (
	// OpReserve admits a reservation (optionally deadline-bounded; since
	// v2, optionally tenant-attributed).
	OpReserve Op = 1 + iota
	// OpCancel releases an admitted reservation by id.
	OpCancel
	// OpQuery reads the per-shard free capacity at an instant.
	OpQuery
	// OpSnapshot copies one shard's capacity profile as segments.
	OpSnapshot
	// OpPing is a liveness/RTT probe.
	OpPing
	// OpStats reads the per-shard load summaries.
	OpStats
	// OpQuotaGet reads one tenant's quota state (v2).
	OpQuotaGet
	// OpQuotaSet re-budgets one tenant's share at runtime (v2).
	OpQuotaSet
	// OpTrace reads the newest sampled admission traces (v4).
	OpTrace
	// OpWatch subscribes to server-pushed telemetry frames (v5). The
	// request names an interval and a family mask; every subsequent
	// response frame with the request's id carries one Telemetry
	// snapshot. The subscription lives as long as the connection.
	OpWatch
)

// validFor reports whether the op exists at the given protocol revision:
// the quota ops arrived with v2, Trace with v4, Watch with v5,
// everything else predates versioning.
func (op Op) validFor(v uint8) bool {
	switch {
	case op >= OpReserve && op <= OpStats:
		return true
	case op == OpQuotaGet || op == OpQuotaSet:
		return v >= 2
	case op == OpTrace:
		return v >= 4
	case op == OpWatch:
		return v >= 5
	default:
		return false
	}
}

// String names the op for diagnostics.
func (op Op) String() string {
	switch op {
	case OpReserve:
		return "Reserve"
	case OpCancel:
		return "Cancel"
	case OpQuery:
		return "Query"
	case OpSnapshot:
		return "Snapshot"
	case OpPing:
		return "Ping"
	case OpStats:
		return "Stats"
	case OpQuotaGet:
		return "QuotaGet"
	case OpQuotaSet:
		return "QuotaSet"
	case OpTrace:
		return "Trace"
	case OpWatch:
		return "Watch"
	default:
		return fmt.Sprintf("Op(%d)", uint8(op))
	}
}

// Code is a response status. CodeOK means the op succeeded; every other
// code maps onto one of resd's typed errors so a remote caller can branch
// with errors.Is exactly as an in-process caller would.
type Code uint8

const (
	// CodeOK reports success.
	CodeOK Code = iota
	// CodeBadRequest maps resd.ErrBadRequest.
	CodeBadRequest
	// CodeNeverFits maps resd.ErrNeverFits (static α-rule rejection).
	CodeNeverFits
	// CodeUnknownID maps resd.ErrUnknownID.
	CodeUnknownID
	// CodeClosed maps resd.ErrClosed (service shutting down).
	CodeClosed
	// CodeRejectedDeadline maps resd.ErrDeadline: the request was
	// feasible but its earliest start exceeded the caller's deadline.
	CodeRejectedDeadline
	// CodeInternal reports a server-side failure outside the typed set.
	CodeInternal
	// CodeRejectedQuota maps tenant.ErrQuota (v2): the request was
	// feasible but its tenant has exhausted its budgeted share of the
	// reservable prefix. Appended after CodeInternal so every v1 code
	// keeps its number.
	CodeRejectedQuota
)

// String names the code, REJECTED_DEADLINE-style, for logs and examples.
func (c Code) String() string {
	switch c {
	case CodeOK:
		return "OK"
	case CodeBadRequest:
		return "BAD_REQUEST"
	case CodeNeverFits:
		return "REJECTED_NEVER_FITS"
	case CodeUnknownID:
		return "UNKNOWN_ID"
	case CodeClosed:
		return "CLOSED"
	case CodeRejectedDeadline:
		return "REJECTED_DEADLINE"
	case CodeInternal:
		return "INTERNAL"
	case CodeRejectedQuota:
		return "REJECTED_QUOTA"
	default:
		return fmt.Sprintf("Code(%d)", uint8(c))
	}
}

// CodeOf maps a service error onto its wire code. Quota config errors
// (tenant.ErrConfig, from a bad QuotaSet) surface as BAD_REQUEST: the
// caller's parameters were wrong, not the server.
func CodeOf(err error) Code {
	switch {
	case err == nil:
		return CodeOK
	case errors.Is(err, tenant.ErrQuota):
		return CodeRejectedQuota
	case errors.Is(err, resd.ErrDeadline):
		return CodeRejectedDeadline
	case errors.Is(err, resd.ErrNeverFits):
		return CodeNeverFits
	case errors.Is(err, resd.ErrUnknownID):
		return CodeUnknownID
	case errors.Is(err, resd.ErrClosed):
		return CodeClosed
	case errors.Is(err, resd.ErrBadRequest), errors.Is(err, tenant.ErrConfig):
		return CodeBadRequest
	default:
		return CodeInternal
	}
}

// ErrInternal is the client-side sentinel for CodeInternal responses.
var ErrInternal = errors.New("reswire: internal server error")

// Err reconstructs the typed error a code stands for, so errors.Is works
// identically on both sides of the wire. detail is the server's message.
func (c Code) Err(detail string) error {
	var sentinel error
	switch c {
	case CodeOK:
		return nil
	case CodeBadRequest:
		sentinel = resd.ErrBadRequest
	case CodeNeverFits:
		sentinel = resd.ErrNeverFits
	case CodeUnknownID:
		sentinel = resd.ErrUnknownID
	case CodeClosed:
		sentinel = resd.ErrClosed
	case CodeRejectedDeadline:
		sentinel = resd.ErrDeadline
	case CodeRejectedQuota:
		sentinel = tenant.ErrQuota
	default:
		sentinel = ErrInternal
	}
	if detail == "" {
		return fmt.Errorf("reswire: %s: %w", c, sentinel)
	}
	return fmt.Errorf("reswire: %s: %w (%s)", c, sentinel, detail)
}

// Protocol-level decoding errors.
var (
	// ErrFrame reports a malformed frame (bad magic, unknown op,
	// truncated or oversized body, trailing bytes).
	ErrFrame = errors.New("reswire: malformed frame")
	// ErrVersion reports a frame from an unsupported protocol revision.
	ErrVersion = errors.New("reswire: unsupported protocol version")
)

// Request is one decoded client→server message. Fields beyond ID and Op
// are meaningful per op: Reserve uses Ready/Procs/Dur/Deadline/Tenant
// (and, since v5, Stamp/Traced), Cancel uses Resv, Query uses Ready as
// the probe instant, Snapshot uses Shard, QuotaGet uses Tenant, QuotaSet
// uses Tenant and Share, Trace uses Limit (how many of the newest
// records to return; <= 0 means the server's whole ring), Watch uses
// Interval and Mask.
//
// Version records the protocol revision the frame used, with 0 meaning
// the current Version — so the zero Request encodes at the current
// revision, and only down-level frames (a v1 client talking to this
// server) carry an explicit value through decode and back.
type Request struct {
	ID       uint64
	Op       Op
	Version  uint8
	Ready    core.Time
	Procs    int
	Dur      core.Time
	Deadline core.Time
	Resv     uint64
	Shard    int
	Limit    int
	Tenant   string
	Share    float64
	// Stamp is the client's own send instant in unix nanoseconds (v5
	// Reserve tail; 0 = no stamp). A sampled admission whose frame
	// carried a stamp gains the client-send→server-route span in its
	// TraceRecord.
	Stamp int64
	// Traced asks the server to force-sample this admission into the
	// trace ring regardless of its 1-in-N sampling rate (v5 Reserve
	// tail; a no-op on servers running with tracing disabled).
	Traced bool
	// Interval is the requested push period of a Watch subscription
	// (the server clamps unreasonably small values).
	Interval time.Duration
	// Mask selects the telemetry families of a Watch subscription
	// (WatchShards | WatchTenants | WatchWAL | WatchTraces | WatchSLO).
	Mask uint32
}

// Segment is one constant piece of a snapshot's capacity step function:
// Free processors are available from Start until the next segment's Start
// (the last segment extends to infinity).
type Segment struct {
	Start core.Time
	Free  int
}

// QuotaInfo is one tenant's quota state as QuotaGet reports it: the
// tenant's resolved budget and live accounting plus the registry-wide
// mode and capacity the numbers are relative to.
type QuotaInfo struct {
	Tenant, Group                 string
	Mode                          tenant.Mode
	Share                         float64
	Capacity, Budget, Used        int64
	Inflight                      int64
	Admitted, Cancelled, Rejected uint64
}

// TenantTelemetry is one tenant's budget usage inside a Telemetry frame:
// the quota-registry view a remote router needs to weigh placements.
type TenantTelemetry struct {
	Tenant   string
	Budget   int64
	Used     int64
	Inflight int64
}

// WALTelemetry is one shard's live write-ahead-log counters inside a
// Telemetry frame. FsyncP99 is the shard's 99th-percentile group-commit
// fsync latency in nanoseconds; Failed counts WAL write failures (a
// failed log degrades the shard to non-durable).
type WALTelemetry struct {
	Shard     int
	Gen       uint64
	Bytes     uint64
	Records   uint64
	Fsyncs    uint64
	Snapshots uint64
	FsyncP99  int64
	Failed    uint64
}

// SLOTelemetry is one objective's evaluated SLO condition inside a
// Telemetry frame: the slo.State a remote watcher needs to mirror the
// server's burn-rate alerting without scraping /metrics. Tenant is
// empty for service-wide objectives.
type SLOTelemetry struct {
	Name            string
	Tenant          string
	Signal          slo.Signal
	Target          float64
	Attainment      float64
	BudgetRemaining float64
	BurnMax         float64
	State           slo.Severity
}

// validSLOTelemetry guards the float fields crossing the wire, on both
// encode and decode so a decoded frame always re-encodes: targets stay
// strict fractions, fractions stay in range, the open-ended fields stay
// finite, and NaN never round-trips (it cannot even compare equal).
func validSLOTelemetry(o SLOTelemetry) error {
	switch {
	case o.Signal > slo.ErrorRate:
		return fmt.Errorf("%w: unknown slo signal %d", ErrFrame, uint8(o.Signal))
	case o.State > slo.SevPage:
		return fmt.Errorf("%w: unknown slo alert state %d", ErrFrame, uint8(o.State))
	case !(o.Target > 0 && o.Target < 1):
		return fmt.Errorf("%w: slo target %v outside (0,1)", ErrFrame, o.Target)
	case !(o.Attainment >= 0 && o.Attainment <= 1):
		return fmt.Errorf("%w: slo attainment %v outside [0,1]", ErrFrame, o.Attainment)
	case math.IsNaN(o.BudgetRemaining) || math.IsInf(o.BudgetRemaining, 0) || o.BudgetRemaining > 1:
		return fmt.Errorf("%w: slo budget remaining %v invalid", ErrFrame, o.BudgetRemaining)
	case !(o.BurnMax >= 0) || math.IsInf(o.BurnMax, 0):
		return fmt.Errorf("%w: slo burn rate %v invalid", ErrFrame, o.BurnMax)
	}
	return nil
}

// Telemetry is one server-pushed Watch frame: a snapshot of the
// families the subscription's mask selected, assembled from the
// server's published atomics (cumulative counters — consumers diff
// successive frames for rates). Seq numbers the frames this subscriber
// actually received; Dropped counts the frames the server discarded
// because the subscriber's connection could not drain fast enough
// (drop-and-mark: a gap is visible, never blocking).
type Telemetry struct {
	Seq     uint64
	Dropped uint64
	Mask    uint32
	// M and Floor frame the capacity context: every shard holds M
	// processors and keeps Floor of them free of reservations (the α
	// rule), so M−Floor is the reservable width behind the per-shard
	// committed areas below.
	M     int
	Floor int
	// Queue[i] is shard i's instantaneous event-loop queue depth;
	// Shards[i] is its published counter set (WatchShards).
	Queue  []int
	Shards []resd.ShardStats
	// Tenants is the per-tenant budget usage (WatchTenants; empty when
	// the server runs without quotas).
	Tenants []TenantTelemetry
	// WAL is the per-shard log telemetry (WatchWAL; empty on in-memory
	// servers).
	WAL []WALTelemetry
	// TracesSampled and TracesSlow are the admission-tracing counters
	// (WatchTraces).
	TracesSampled uint64
	TracesSlow    uint64
	// SLO is the per-objective evaluated SLO state (WatchSLO; empty on
	// servers running without an SLO engine).
	SLO []SLOTelemetry
}

// Response is one decoded server→client message. Code discriminates
// success; on success the op-specific field is set (Resv for Reserve,
// Free for Query, M+Segs for Snapshot, Stats for Stats, Quota for
// QuotaGet, Traces for Trace, Telemetry for Watch). Version follows the
// same 0-means-current convention as Request.Version; the server
// answers every request at the revision it arrived with.
type Response struct {
	ID        uint64
	Op        Op
	Version   uint8
	Code      Code
	Detail    string
	Resv      resd.Reservation
	Free      []int
	M         int
	Segs      []Segment
	Stats     []resd.ShardStats
	Quota     QuotaInfo
	Traces    []resd.TraceRecord
	Telemetry *Telemetry
}

// resolveVersion maps the 0-means-current convention onto the concrete
// revision and rejects revisions the protocol never had.
func resolveVersion(v uint8) (uint8, error) {
	if v == 0 {
		return Version, nil
	}
	if v < VersionV1 || v > Version {
		return 0, fmt.Errorf("%w: cannot encode revision %d", ErrVersion, v)
	}
	return v, nil
}

// concrete maps a Request/Response Version field (0 = current) onto the
// concrete revision, for feature gating during decode.
func concrete(v uint8) uint8 {
	if v == 0 {
		return Version
	}
	return v
}

// appendHeader writes the shared frame header (after the length prefix).
func appendHeader(dst []byte, v uint8, op Op, id uint64) []byte {
	dst = binary.BigEndian.AppendUint16(dst, Magic)
	dst = append(dst, v, byte(op))
	return binary.BigEndian.AppendUint64(dst, id)
}

func appendI64(dst []byte, v int64) []byte      { return binary.BigEndian.AppendUint64(dst, uint64(v)) }
func appendI32(dst []byte, v int32) []byte      { return binary.BigEndian.AppendUint32(dst, uint32(v)) }
func appendTime(dst []byte, t core.Time) []byte { return appendI64(dst, int64(t)) }

// appendName writes a one-byte-length-prefixed tenant or group name.
func appendName(dst []byte, name string) ([]byte, error) {
	if len(name) > tenant.MaxNameLen {
		return nil, fmt.Errorf("%w: name %d bytes long (max %d)", ErrFrame, len(name), tenant.MaxNameLen)
	}
	dst = append(dst, byte(len(name)))
	return append(dst, name...), nil
}

// validShareBits guards float shares crossing the wire: a share is a
// fraction in (0,1], and hostile bit patterns (NaN, infinities, sign
// games) must fail the frame, not round-trip into arithmetic.
func validShareBits(share float64) bool {
	return !math.IsNaN(share) && share > 0 && share <= 1
}

// finishFrame back-fills the length prefix reserved at base.
func finishFrame(dst []byte, base int) ([]byte, error) {
	n := len(dst) - base - 4
	if n > MaxFrame {
		return nil, fmt.Errorf("%w: %d byte payload exceeds MaxFrame", ErrFrame, n)
	}
	binary.BigEndian.PutUint32(dst[base:], uint32(n))
	return dst, nil
}

// AppendRequest encodes req as one frame appended to dst, at the revision
// req.Version names (0 = current). Encoding a v2-only field or op at v1
// fails rather than silently dropping it.
func AppendRequest(dst []byte, req Request) ([]byte, error) {
	v, err := resolveVersion(req.Version)
	if err != nil {
		return nil, err
	}
	if !req.Op.validFor(v) {
		return nil, fmt.Errorf("%w: invalid op %d at revision %d", ErrFrame, uint8(req.Op), v)
	}
	if req.Procs < -1<<31 || req.Procs > 1<<31-1 || req.Shard < -1<<31 || req.Shard > 1<<31-1 ||
		req.Limit < -1<<31 || req.Limit > 1<<31-1 {
		return nil, fmt.Errorf("%w: field exceeds int32 range", ErrFrame)
	}
	if v < 2 && req.Tenant != "" {
		return nil, fmt.Errorf("%w: tenant %q needs revision 2, encoding at %d", ErrFrame, req.Tenant, v)
	}
	if v < 5 && (req.Stamp != 0 || req.Traced) {
		return nil, fmt.Errorf("%w: client stamp/trace flag needs revision 5, encoding at %d", ErrFrame, v)
	}
	base := len(dst)
	dst = append(dst, 0, 0, 0, 0)
	dst = appendHeader(dst, v, req.Op, req.ID)
	switch req.Op {
	case OpReserve:
		dst = appendTime(dst, req.Ready)
		dst = appendI32(dst, int32(req.Procs))
		dst = appendTime(dst, req.Dur)
		dst = appendTime(dst, req.Deadline)
		if v >= 2 {
			if dst, err = appendName(dst, req.Tenant); err != nil {
				return nil, err
			}
		}
		if v >= 5 {
			dst = appendI64(dst, req.Stamp)
			var flag byte
			if req.Traced {
				flag = 1
			}
			dst = append(dst, flag)
		}
	case OpCancel:
		dst = binary.BigEndian.AppendUint64(dst, req.Resv)
	case OpQuery:
		dst = appendTime(dst, req.Ready)
	case OpSnapshot:
		dst = appendI32(dst, int32(req.Shard))
	case OpQuotaGet:
		if dst, err = appendName(dst, req.Tenant); err != nil {
			return nil, err
		}
	case OpQuotaSet:
		if !validShareBits(req.Share) {
			return nil, fmt.Errorf("%w: share %v outside (0,1]", ErrFrame, req.Share)
		}
		if dst, err = appendName(dst, req.Tenant); err != nil {
			return nil, err
		}
		dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(req.Share))
	case OpTrace:
		dst = appendI32(dst, int32(req.Limit))
	case OpWatch:
		if req.Interval < 0 {
			return nil, fmt.Errorf("%w: watch interval %v negative", ErrFrame, req.Interval)
		}
		if !validWatchMask(req.Mask) {
			return nil, fmt.Errorf("%w: watch mask %#x", ErrFrame, req.Mask)
		}
		dst = appendI64(dst, int64(req.Interval))
		dst = binary.BigEndian.AppendUint32(dst, req.Mask)
	case OpPing, OpStats:
		// header only
	}
	return finishFrame(dst, base)
}

// AppendResponse encodes resp as one frame appended to dst, at the
// revision resp.Version names (0 = current) — the server answers each
// request at the revision it arrived with, which is what keeps v1
// clients decoding v2 servers.
func AppendResponse(dst []byte, resp Response) ([]byte, error) {
	v, err := resolveVersion(resp.Version)
	if err != nil {
		return nil, err
	}
	if !resp.Op.validFor(v) {
		return nil, fmt.Errorf("%w: invalid op %d at revision %d", ErrFrame, uint8(resp.Op), v)
	}
	if resp.Code > CodeRejectedQuota {
		return nil, fmt.Errorf("%w: unknown code %d", ErrFrame, uint8(resp.Code))
	}
	code := resp.Code
	if v < 2 && code == CodeRejectedQuota {
		// The quota code arrived with v2; a v1 reader maps unknown codes
		// to ErrInternal, which would turn expected load shedding into a
		// reported server failure. Downgrade to the v1 code with the same
		// operational meaning — "rejected, cannot admit" — and let the
		// detail string carry the quota specifics.
		code = CodeNeverFits
	}
	base := len(dst)
	dst = append(dst, 0, 0, 0, 0)
	dst = appendHeader(dst, v, resp.Op, resp.ID)
	dst = append(dst, byte(code))
	if resp.Code != CodeOK {
		detail := resp.Detail
		if len(detail) > maxDetail {
			detail = detail[:maxDetail]
		}
		dst = binary.BigEndian.AppendUint16(dst, uint16(len(detail)))
		dst = append(dst, detail...)
		return finishFrame(dst, base)
	}
	switch resp.Op {
	case OpReserve:
		dst = binary.BigEndian.AppendUint64(dst, uint64(resp.Resv.ID))
		dst = appendI32(dst, int32(resp.Resv.Shard))
		dst = appendTime(dst, resp.Resv.Start)
		dst = appendTime(dst, resp.Resv.Dur)
		dst = appendI32(dst, int32(resp.Resv.Procs))
	case OpQuery:
		if len(resp.Free) > maxShards {
			return nil, fmt.Errorf("%w: %d shards in Query response", ErrFrame, len(resp.Free))
		}
		dst = binary.BigEndian.AppendUint32(dst, uint32(len(resp.Free)))
		for _, f := range resp.Free {
			dst = appendI32(dst, int32(f))
		}
	case OpSnapshot:
		dst = appendI32(dst, int32(resp.M))
		dst = binary.BigEndian.AppendUint32(dst, uint32(len(resp.Segs)))
		for _, s := range resp.Segs {
			dst = appendTime(dst, s.Start)
			dst = appendI32(dst, int32(s.Free))
		}
	case OpStats:
		if len(resp.Stats) > maxShards {
			return nil, fmt.Errorf("%w: %d shards in Stats response", ErrFrame, len(resp.Stats))
		}
		dst = binary.BigEndian.AppendUint32(dst, uint32(len(resp.Stats)))
		for _, st := range resp.Stats {
			dst = appendI64(dst, int64(st.Active))
			dst = appendI64(dst, st.CommittedArea)
			dst = binary.BigEndian.AppendUint64(dst, st.Admitted)
			dst = binary.BigEndian.AppendUint64(dst, st.Cancelled)
			dst = binary.BigEndian.AppendUint64(dst, st.Rejected)
			dst = binary.BigEndian.AppendUint64(dst, st.RejectedDeadline)
			if v >= 2 {
				// RejectedQuota arrived with v2; a v1 reader gets the
				// layout it knows and simply cannot see quota rejections.
				dst = binary.BigEndian.AppendUint64(dst, st.RejectedQuota)
			}
			if v >= 3 {
				// The rebalancing fields arrived with v3; down-level
				// readers get their own layout and cannot see migrations.
				dst = binary.BigEndian.AppendUint64(dst, st.MigratedIn)
				dst = binary.BigEndian.AppendUint64(dst, st.MigratedOut)
				dst = appendTime(dst, st.SlackP99)
			}
			dst = binary.BigEndian.AppendUint64(dst, st.Batches)
			dst = binary.BigEndian.AppendUint64(dst, st.Ops)
		}
	case OpQuotaGet:
		q := resp.Quota
		if !validShareBits(q.Share) {
			return nil, fmt.Errorf("%w: quota share %v outside (0,1]", ErrFrame, q.Share)
		}
		if dst, err = appendName(dst, q.Tenant); err != nil {
			return nil, err
		}
		if dst, err = appendName(dst, q.Group); err != nil {
			return nil, err
		}
		dst = append(dst, byte(q.Mode))
		dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(q.Share))
		dst = appendI64(dst, q.Capacity)
		dst = appendI64(dst, q.Budget)
		dst = appendI64(dst, q.Used)
		dst = appendI64(dst, q.Inflight)
		dst = binary.BigEndian.AppendUint64(dst, q.Admitted)
		dst = binary.BigEndian.AppendUint64(dst, q.Cancelled)
		dst = binary.BigEndian.AppendUint64(dst, q.Rejected)
	case OpTrace:
		if len(resp.Traces) > maxTraces {
			return nil, fmt.Errorf("%w: %d records in Trace response", ErrFrame, len(resp.Traces))
		}
		dst = binary.BigEndian.AppendUint32(dst, uint32(len(resp.Traces)))
		for _, tr := range resp.Traces {
			if tr.Shard < -1<<31 || tr.Shard > 1<<31-1 {
				return nil, fmt.Errorf("%w: trace shard exceeds int32 range", ErrFrame)
			}
			if tr.Outcome > resd.TraceError {
				return nil, fmt.Errorf("%w: unknown trace outcome %d", ErrFrame, uint8(tr.Outcome))
			}
			dst = binary.BigEndian.AppendUint64(dst, tr.Seq)
			dst = appendI64(dst, tr.Arrival.UnixNano())
			if v >= 5 {
				// The cross-wire span arrived with v5; a v4 reader gets
				// the layout it knows and cannot see the client stamp.
				dst = appendI64(dst, int64(tr.ClientSend))
			}
			dst = appendI64(dst, int64(tr.Route))
			dst = appendI64(dst, int64(tr.Enqueue))
			dst = appendI64(dst, int64(tr.BatchStart))
			dst = appendI64(dst, int64(tr.Decision))
			dst = appendTime(dst, tr.Start)
			dst = appendI32(dst, int32(tr.Shard))
			dst = append(dst, byte(tr.Outcome))
			if dst, err = appendName(dst, tr.Tenant); err != nil {
				return nil, err
			}
		}
	case OpWatch:
		t := resp.Telemetry
		if t == nil {
			return nil, fmt.Errorf("%w: watch response without telemetry", ErrFrame)
		}
		if !validWatchMask(t.Mask) {
			return nil, fmt.Errorf("%w: telemetry mask %#x", ErrFrame, t.Mask)
		}
		if t.M < 0 || t.M > 1<<31-1 || t.Floor < 0 || t.Floor > 1<<31-1 {
			return nil, fmt.Errorf("%w: telemetry capacity exceeds int32 range", ErrFrame)
		}
		dst = binary.BigEndian.AppendUint64(dst, t.Seq)
		dst = binary.BigEndian.AppendUint64(dst, t.Dropped)
		dst = binary.BigEndian.AppendUint32(dst, t.Mask)
		dst = appendI32(dst, int32(t.M))
		dst = appendI32(dst, int32(t.Floor))
		if t.Mask&WatchShards != 0 {
			if len(t.Shards) > maxShards {
				return nil, fmt.Errorf("%w: %d shards in telemetry", ErrFrame, len(t.Shards))
			}
			dst = binary.BigEndian.AppendUint32(dst, uint32(len(t.Shards)))
			for i, st := range t.Shards {
				var q int
				if i < len(t.Queue) {
					q = t.Queue[i]
				}
				if q < -1<<31 || q > 1<<31-1 {
					return nil, fmt.Errorf("%w: queue depth exceeds int32 range", ErrFrame)
				}
				dst = appendI32(dst, int32(q))
				dst = appendI64(dst, int64(st.Active))
				dst = appendI64(dst, st.CommittedArea)
				dst = binary.BigEndian.AppendUint64(dst, st.Admitted)
				dst = binary.BigEndian.AppendUint64(dst, st.Cancelled)
				dst = binary.BigEndian.AppendUint64(dst, st.Rejected)
				dst = binary.BigEndian.AppendUint64(dst, st.RejectedDeadline)
				dst = binary.BigEndian.AppendUint64(dst, st.RejectedQuota)
				dst = binary.BigEndian.AppendUint64(dst, st.MigratedIn)
				dst = binary.BigEndian.AppendUint64(dst, st.MigratedOut)
				dst = appendTime(dst, st.SlackP99)
				dst = binary.BigEndian.AppendUint64(dst, st.Batches)
				dst = binary.BigEndian.AppendUint64(dst, st.Ops)
			}
		}
		if t.Mask&WatchTenants != 0 {
			if len(t.Tenants) > maxTenants {
				return nil, fmt.Errorf("%w: %d tenants in telemetry", ErrFrame, len(t.Tenants))
			}
			dst = binary.BigEndian.AppendUint32(dst, uint32(len(t.Tenants)))
			for _, tt := range t.Tenants {
				if dst, err = appendName(dst, tt.Tenant); err != nil {
					return nil, err
				}
				dst = appendI64(dst, tt.Budget)
				dst = appendI64(dst, tt.Used)
				dst = appendI64(dst, tt.Inflight)
			}
		}
		if t.Mask&WatchWAL != 0 {
			if len(t.WAL) > maxShards {
				return nil, fmt.Errorf("%w: %d WAL entries in telemetry", ErrFrame, len(t.WAL))
			}
			dst = binary.BigEndian.AppendUint32(dst, uint32(len(t.WAL)))
			for _, w := range t.WAL {
				if w.Shard < -1<<31 || w.Shard > 1<<31-1 {
					return nil, fmt.Errorf("%w: WAL shard exceeds int32 range", ErrFrame)
				}
				dst = appendI32(dst, int32(w.Shard))
				dst = binary.BigEndian.AppendUint64(dst, w.Gen)
				dst = binary.BigEndian.AppendUint64(dst, w.Bytes)
				dst = binary.BigEndian.AppendUint64(dst, w.Records)
				dst = binary.BigEndian.AppendUint64(dst, w.Fsyncs)
				dst = binary.BigEndian.AppendUint64(dst, w.Snapshots)
				dst = appendI64(dst, w.FsyncP99)
				dst = binary.BigEndian.AppendUint64(dst, w.Failed)
			}
		}
		if t.Mask&WatchTraces != 0 {
			dst = binary.BigEndian.AppendUint64(dst, t.TracesSampled)
			dst = binary.BigEndian.AppendUint64(dst, t.TracesSlow)
		}
		if t.Mask&WatchSLO != 0 {
			if len(t.SLO) > maxSLO {
				return nil, fmt.Errorf("%w: %d SLO entries in telemetry", ErrFrame, len(t.SLO))
			}
			dst = binary.BigEndian.AppendUint32(dst, uint32(len(t.SLO)))
			for _, o := range t.SLO {
				if err := validSLOTelemetry(o); err != nil {
					return nil, err
				}
				if dst, err = appendName(dst, o.Name); err != nil {
					return nil, err
				}
				if dst, err = appendName(dst, o.Tenant); err != nil {
					return nil, err
				}
				dst = append(dst, byte(o.Signal))
				dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(o.Target))
				dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(o.Attainment))
				dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(o.BudgetRemaining))
				dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(o.BurnMax))
				dst = append(dst, byte(o.State))
			}
		}
	case OpCancel, OpPing, OpQuotaSet:
		// header + code only
	}
	return finishFrame(dst, base)
}

// reader is a bounds-checked cursor over one frame payload.
type reader struct {
	b   []byte
	off int
	err error
}

func (r *reader) fail() {
	if r.err == nil {
		r.err = fmt.Errorf("%w: truncated body at offset %d", ErrFrame, r.off)
	}
}

func (r *reader) u8() uint8 {
	if r.err != nil || r.off+1 > len(r.b) {
		r.fail()
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

func (r *reader) u16() uint16 {
	if r.err != nil || r.off+2 > len(r.b) {
		r.fail()
		return 0
	}
	v := binary.BigEndian.Uint16(r.b[r.off:])
	r.off += 2
	return v
}

func (r *reader) u32() uint32 {
	if r.err != nil || r.off+4 > len(r.b) {
		r.fail()
		return 0
	}
	v := binary.BigEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v
}

func (r *reader) u64() uint64 {
	if r.err != nil || r.off+8 > len(r.b) {
		r.fail()
		return 0
	}
	v := binary.BigEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v
}

func (r *reader) i32() int32      { return int32(r.u32()) }
func (r *reader) i64() int64      { return int64(r.u64()) }
func (r *reader) time() core.Time { return core.Time(r.i64()) }
func (r *reader) bytes(n int) []byte {
	if r.err != nil || n < 0 || r.off+n > len(r.b) {
		r.fail()
		return nil
	}
	v := r.b[r.off : r.off+n]
	r.off += n
	return v
}

// header consumes and validates the shared frame header, returning
// op, id and the frame's revision (normalised to 0 when current, so a
// decode→encode round trip reproduces the revision it read).
func (r *reader) header() (Op, uint64, uint8) {
	if magic := r.u16(); r.err == nil && magic != Magic {
		r.err = fmt.Errorf("%w: magic %#04x", ErrFrame, magic)
	}
	v := r.u8()
	if r.err == nil && (v < VersionV1 || v > Version) {
		r.err = fmt.Errorf("%w: got %d, support %d..%d", ErrVersion, v, VersionV1, Version)
	}
	op := Op(r.u8())
	if r.err == nil && !op.validFor(v) {
		r.err = fmt.Errorf("%w: unknown op %d at revision %d", ErrFrame, uint8(op), v)
	}
	if v == Version {
		v = 0
	}
	return op, r.u64(), v
}

// name reads a one-byte-length-prefixed tenant or group name.
func (r *reader) name() string {
	n := int(r.u8())
	return string(r.bytes(n))
}

// share reads a float64 share and enforces the (0,1] protocol range.
func (r *reader) share() float64 {
	s := math.Float64frombits(r.u64())
	if r.err == nil && !validShareBits(s) {
		r.err = fmt.Errorf("%w: share %v outside (0,1]", ErrFrame, s)
	}
	return s
}

// done rejects trailing bytes: a frame must be consumed exactly.
func (r *reader) done() error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.b) {
		return fmt.Errorf("%w: %d trailing bytes", ErrFrame, len(r.b)-r.off)
	}
	return nil
}

// DecodeRequest parses one request payload (a frame minus its length
// prefix). It never panics on hostile input and consumes the payload
// exactly or fails. Frames from revision 1 decode with their pre-tenancy
// layout — a v1 Reserve carries no tenant and lands on the default
// tenant, which is the backward-compatibility contract of the v2 bump.
func DecodeRequest(payload []byte) (Request, error) {
	r := &reader{b: payload}
	var req Request
	req.Op, req.ID, req.Version = r.header()
	if r.err != nil {
		return Request{}, r.err
	}
	v := concrete(req.Version) // header normalises the current revision to 0
	switch req.Op {
	case OpReserve:
		req.Ready = r.time()
		req.Procs = int(r.i32())
		req.Dur = r.time()
		req.Deadline = r.time()
		if v >= 2 {
			req.Tenant = r.name()
		}
		if v >= 5 {
			req.Stamp = r.i64()
			flag := r.u8()
			if r.err == nil && flag > 1 {
				r.err = fmt.Errorf("%w: trace flag %d", ErrFrame, flag)
			}
			req.Traced = flag == 1
		}
	case OpCancel:
		req.Resv = r.u64()
	case OpQuery:
		req.Ready = r.time()
	case OpSnapshot:
		req.Shard = int(r.i32())
	case OpQuotaGet:
		req.Tenant = r.name()
	case OpQuotaSet:
		req.Tenant = r.name()
		req.Share = r.share()
	case OpTrace:
		req.Limit = int(r.i32())
	case OpWatch:
		req.Interval = time.Duration(r.i64())
		if r.err == nil && req.Interval < 0 {
			r.err = fmt.Errorf("%w: watch interval %v negative", ErrFrame, req.Interval)
		}
		req.Mask = r.u32()
		if r.err == nil && !validWatchMask(req.Mask) {
			r.err = fmt.Errorf("%w: watch mask %#x", ErrFrame, req.Mask)
		}
	case OpPing, OpStats:
	}
	if err := r.done(); err != nil {
		return Request{}, err
	}
	return req, nil
}

// DecodeResponse parses one response payload. Length-prefixed vectors are
// validated against the remaining payload before allocation, so a hostile
// count cannot force a large allocation.
func DecodeResponse(payload []byte) (Response, error) {
	r := &reader{b: payload}
	var resp Response
	resp.Op, resp.ID, resp.Version = r.header()
	if r.err != nil {
		return Response{}, r.err
	}
	v := concrete(resp.Version)
	resp.Code = Code(r.u8())
	maxCode := CodeInternal // CodeRejectedQuota arrived with v2
	if v >= 2 {
		maxCode = CodeRejectedQuota
	}
	if r.err == nil && resp.Code > maxCode {
		return Response{}, fmt.Errorf("%w: unknown code %d (max %d at this revision)", ErrFrame, uint8(resp.Code), uint8(maxCode))
	}
	if resp.Code != CodeOK {
		n := int(r.u16())
		if n > maxDetail {
			r.err = fmt.Errorf("%w: %d byte error detail", ErrFrame, n)
		}
		resp.Detail = string(r.bytes(n))
		if err := r.done(); err != nil {
			return Response{}, err
		}
		return resp, nil
	}
	switch resp.Op {
	case OpReserve:
		resp.Resv.ID = resd.ID(r.u64())
		resp.Resv.Shard = int(r.i32())
		resp.Resv.Start = r.time()
		resp.Resv.Dur = r.time()
		resp.Resv.Procs = int(r.i32())
	case OpQuery:
		n := int(r.u32())
		if n > maxShards || (r.err == nil && 4*n > len(r.b)-r.off) {
			r.fail()
			break
		}
		resp.Free = make([]int, n)
		for i := range resp.Free {
			resp.Free[i] = int(r.i32())
		}
	case OpSnapshot:
		resp.M = int(r.i32())
		n := int(r.u32())
		if r.err == nil && 12*n > len(r.b)-r.off {
			r.fail()
			break
		}
		resp.Segs = make([]Segment, n)
		for i := range resp.Segs {
			resp.Segs[i].Start = r.time()
			resp.Segs[i].Free = int(r.i32())
		}
	case OpStats:
		n := int(r.u32())
		entry := 64
		if v >= 2 {
			entry = 72 // RejectedQuota joined the layout at v2
		}
		if v >= 3 {
			entry = 96 // MigratedIn, MigratedOut, SlackP99 joined at v3
		}
		if n > maxShards || (r.err == nil && entry*n > len(r.b)-r.off) {
			r.fail()
			break
		}
		resp.Stats = make([]resd.ShardStats, n)
		for i := range resp.Stats {
			resp.Stats[i].Active = int(r.i64())
			resp.Stats[i].CommittedArea = r.i64()
			resp.Stats[i].Admitted = r.u64()
			resp.Stats[i].Cancelled = r.u64()
			resp.Stats[i].Rejected = r.u64()
			resp.Stats[i].RejectedDeadline = r.u64()
			if v >= 2 {
				resp.Stats[i].RejectedQuota = r.u64()
			}
			if v >= 3 {
				resp.Stats[i].MigratedIn = r.u64()
				resp.Stats[i].MigratedOut = r.u64()
				resp.Stats[i].SlackP99 = r.time()
			}
			resp.Stats[i].Batches = r.u64()
			resp.Stats[i].Ops = r.u64()
		}
	case OpQuotaGet:
		resp.Quota.Tenant = r.name()
		resp.Quota.Group = r.name()
		resp.Quota.Mode = tenant.Mode(r.u8())
		if r.err == nil && resp.Quota.Mode > tenant.Soft {
			r.err = fmt.Errorf("%w: unknown quota mode %d", ErrFrame, uint8(resp.Quota.Mode))
		}
		resp.Quota.Share = r.share()
		resp.Quota.Capacity = r.i64()
		resp.Quota.Budget = r.i64()
		resp.Quota.Used = r.i64()
		resp.Quota.Inflight = r.i64()
		resp.Quota.Admitted = r.u64()
		resp.Quota.Cancelled = r.u64()
		resp.Quota.Rejected = r.u64()
	case OpTrace:
		n := int(r.u32())
		entry := traceEntryLen
		if v >= 5 {
			entry += traceV5Extra // ClientSend joined the layout at v5
		}
		if n > maxTraces || (r.err == nil && entry*n > len(r.b)-r.off) {
			r.fail()
			break
		}
		resp.Traces = make([]resd.TraceRecord, n)
		for i := range resp.Traces {
			tr := &resp.Traces[i]
			tr.Seq = r.u64()
			tr.Arrival = time.Unix(0, r.i64())
			if v >= 5 {
				tr.ClientSend = time.Duration(r.i64())
			}
			tr.Route = time.Duration(r.i64())
			tr.Enqueue = time.Duration(r.i64())
			tr.BatchStart = time.Duration(r.i64())
			tr.Decision = time.Duration(r.i64())
			tr.Start = r.time()
			tr.Shard = int(r.i32())
			tr.Outcome = resd.TraceOutcome(r.u8())
			if r.err == nil && tr.Outcome > resd.TraceError {
				r.err = fmt.Errorf("%w: unknown trace outcome %d", ErrFrame, uint8(tr.Outcome))
			}
			tr.Tenant = r.name()
		}
	case OpWatch:
		t := &Telemetry{}
		t.Seq = r.u64()
		t.Dropped = r.u64()
		t.Mask = r.u32()
		if r.err == nil && !validWatchMask(t.Mask) {
			return Response{}, fmt.Errorf("%w: telemetry mask %#x", ErrFrame, t.Mask)
		}
		t.M = int(r.i32())
		t.Floor = int(r.i32())
		if r.err == nil && (t.M < 0 || t.Floor < 0) {
			return Response{}, fmt.Errorf("%w: negative telemetry capacity", ErrFrame)
		}
		if t.Mask&WatchShards != 0 {
			n := int(r.u32())
			if n > maxShards || (r.err == nil && watchShardEntryLen*n > len(r.b)-r.off) {
				r.fail()
				break
			}
			t.Queue = make([]int, n)
			t.Shards = make([]resd.ShardStats, n)
			for i := range t.Shards {
				t.Queue[i] = int(r.i32())
				st := &t.Shards[i]
				st.Active = int(r.i64())
				st.CommittedArea = r.i64()
				st.Admitted = r.u64()
				st.Cancelled = r.u64()
				st.Rejected = r.u64()
				st.RejectedDeadline = r.u64()
				st.RejectedQuota = r.u64()
				st.MigratedIn = r.u64()
				st.MigratedOut = r.u64()
				st.SlackP99 = r.time()
				st.Batches = r.u64()
				st.Ops = r.u64()
			}
		}
		if t.Mask&WatchTenants != 0 {
			n := int(r.u32())
			if n > maxTenants || (r.err == nil && watchTenantEntryLen*n > len(r.b)-r.off) {
				r.fail()
				break
			}
			t.Tenants = make([]TenantTelemetry, n)
			for i := range t.Tenants {
				t.Tenants[i].Tenant = r.name()
				t.Tenants[i].Budget = r.i64()
				t.Tenants[i].Used = r.i64()
				t.Tenants[i].Inflight = r.i64()
			}
		}
		if t.Mask&WatchWAL != 0 {
			n := int(r.u32())
			if n > maxShards || (r.err == nil && watchWALEntryLen*n > len(r.b)-r.off) {
				r.fail()
				break
			}
			t.WAL = make([]WALTelemetry, n)
			for i := range t.WAL {
				w := &t.WAL[i]
				w.Shard = int(r.i32())
				w.Gen = r.u64()
				w.Bytes = r.u64()
				w.Records = r.u64()
				w.Fsyncs = r.u64()
				w.Snapshots = r.u64()
				w.FsyncP99 = r.i64()
				w.Failed = r.u64()
			}
		}
		if t.Mask&WatchTraces != 0 {
			t.TracesSampled = r.u64()
			t.TracesSlow = r.u64()
		}
		if t.Mask&WatchSLO != 0 {
			n := int(r.u32())
			if n > maxSLO || (r.err == nil && watchSLOEntryLen*n > len(r.b)-r.off) {
				r.fail()
				break
			}
			t.SLO = make([]SLOTelemetry, n)
			for i := range t.SLO {
				o := &t.SLO[i]
				o.Name = r.name()
				o.Tenant = r.name()
				o.Signal = slo.Signal(r.u8())
				o.Target = math.Float64frombits(r.u64())
				o.Attainment = math.Float64frombits(r.u64())
				o.BudgetRemaining = math.Float64frombits(r.u64())
				o.BurnMax = math.Float64frombits(r.u64())
				o.State = slo.Severity(r.u8())
				if r.err == nil {
					if err := validSLOTelemetry(*o); err != nil {
						r.err = err
					}
				}
			}
		}
		resp.Telemetry = t
	case OpCancel, OpPing, OpQuotaSet:
	}
	if err := r.done(); err != nil {
		return Response{}, err
	}
	return resp, nil
}

// ReadFrame reads one length-prefixed payload from br. The length prefix
// is validated against MaxFrame before the payload is allocated.
func ReadFrame(br *bufio.Reader) ([]byte, error) {
	var lenbuf [4]byte
	if _, err := io.ReadFull(br, lenbuf[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(lenbuf[:])
	if n > MaxFrame {
		return nil, fmt.Errorf("%w: %d byte payload exceeds MaxFrame %d", ErrFrame, n, MaxFrame)
	}
	if n < headerLen {
		return nil, fmt.Errorf("%w: %d byte payload shorter than header", ErrFrame, n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(br, payload); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, fmt.Errorf("%w: truncated frame: %v", ErrFrame, err)
	}
	return payload, nil
}

// ReadRequest reads and decodes one request frame.
func ReadRequest(br *bufio.Reader) (Request, error) {
	payload, err := ReadFrame(br)
	if err != nil {
		return Request{}, err
	}
	return DecodeRequest(payload)
}

// ReadResponse reads and decodes one response frame.
func ReadResponse(br *bufio.Reader) (Response, error) {
	payload, err := ReadFrame(br)
	if err != nil {
		return Response{}, err
	}
	return DecodeResponse(payload)
}
