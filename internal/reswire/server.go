package reswire

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/flight"
	"repro/internal/resd"
)

// ErrServerClosed is returned by Serve after Close, mirroring net/http.
var ErrServerClosed = errors.New("reswire: server closed")

// maxConnInFlight caps the number of requests one connection may have
// dispatched into the service at once. A pipelining client within the cap
// is never throttled; past it the reader stops pulling frames, which
// back-pressures through TCP instead of growing a goroutine per frame
// without bound.
const maxConnInFlight = 1024

// Watch subscription bounds: the server clamps a subscriber's interval
// into [MinWatchInterval, MaxWatchInterval] rather than refusing it, and
// caps how many live subscriptions one connection may hold.
const (
	MinWatchInterval = 10 * time.Millisecond
	MaxWatchInterval = time.Minute
	maxConnWatches   = 16
)

// Server fronts a resd.Service with the wire protocol: it decodes request
// frames, dispatches each into the service (where the shard event loops
// group-commit them exactly as for in-process callers), and writes the
// responses back with per-connection write coalescing — one flush per
// batch of responses that are ready together, not one per response.
type Server struct {
	svc     *resd.Service
	metrics *Metrics
	journal *flight.Journal

	mu     sync.Mutex
	closed bool
	lns    map[net.Listener]struct{}
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup
}

// NewServer wraps svc. The caller retains ownership of svc: Close shuts
// down the listeners and connections but not the service.
func NewServer(svc *resd.Service) *Server {
	return &Server{
		svc:   svc,
		lns:   make(map[net.Listener]struct{}),
		conns: make(map[net.Conn]struct{}),
	}
}

// SetMetrics attaches wire instrumentation (side "server"). It must be
// called before Serve; connections accepted earlier are not instrumented.
// A nil Metrics leaves instrumentation off.
func (s *Server) SetMetrics(m *Metrics) { s.metrics = m }

// SetFlight routes the server's wire anomalies (protocol refusals,
// down-level clients, watch slow-consumer drops) into a flight-recorder
// journal. Like SetMetrics it must be called before Serve; a nil
// journal (the default) records nothing.
func (s *Server) SetFlight(j *flight.Journal) { s.journal = j }

// Serve accepts connections on ln until Close (then ErrServerClosed) or a
// listener failure. It may be called concurrently on several listeners.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return ErrServerClosed
	}
	s.lns[ln] = struct{}{}
	s.mu.Unlock()

	for {
		c, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			delete(s.lns, ln)
			s.mu.Unlock()
			if closed {
				return ErrServerClosed
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			c.Close()
			return ErrServerClosed
		}
		s.conns[c] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go func(c net.Conn) {
			defer s.wg.Done()
			s.serveConn(c)
			s.mu.Lock()
			delete(s.conns, c)
			s.mu.Unlock()
		}(c)
	}
}

// Close stops the listeners, closes every live connection and waits for
// the connection handlers to drain. The wrapped resd.Service is left
// running.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	for ln := range s.lns {
		ln.Close()
	}
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return nil
}

// serveConn runs one connection: a reader loop decoding frames and
// dispatching handler goroutines, plus a writer goroutine that coalesces
// response flushes. A protocol error (bad magic, oversized frame, …)
// closes the connection — framing is unrecoverable once desynchronised.
func (s *Server) serveConn(nc net.Conn) {
	defer nc.Close()
	wc := s.metrics.wrap(nc) // byte counters; nc stays the handle Close uses
	br := bufio.NewReaderSize(wc, 64<<10)
	out := make(chan Response, 256)
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		s.writeLoop(wc, out)
	}()

	sem := make(chan struct{}, maxConnInFlight)
	var hwg sync.WaitGroup
	connDone := make(chan struct{}) // closed when the reader exits; ends this conn's watchers
	watches := 0
	downLevel := false
	for {
		req, err := ReadRequest(br)
		if err != nil {
			s.metrics.frameError(err)
			if errors.Is(err, ErrFrame) || errors.Is(err, ErrVersion) {
				// A protocol refusal, not a closing socket: the peer sent
				// something this revision cannot parse, and the connection
				// is about to be dropped as unrecoverable.
				s.journal.Record(flight.Warn, "reswire", -1, "frame error, closing connection",
					flight.KV{K: "remote", V: nc.RemoteAddr().String()},
					flight.KV{K: "err", V: err.Error()})
			}
			break
		}
		if v := concrete(req.Version); !downLevel && v < Version {
			// Once per connection: a live client negotiated down — worth a
			// breadcrumb when diagnosing why v5-only telemetry is missing.
			// (req.Version normalises the current revision to 0, so the
			// concrete revision is the one to judge and journal.)
			downLevel = true
			s.journal.Record(flight.Info, "reswire", -1, "down-level client connected",
				flight.KV{K: "remote", V: nc.RemoteAddr().String()},
				flight.KV{K: "version", V: fmt.Sprint(v)})
		}
		if req.Op == OpWatch {
			// A Watch is a subscription, not a round trip: its goroutine
			// pushes telemetry frames into the connection's writer until
			// the connection closes. It reads only published atomics and
			// sends non-blockingly (drop-and-mark), so a stalled
			// subscriber never holds a shard loop, a handler, or the
			// reader hostage.
			start := s.metrics.begin()
			resp := Response{ID: req.ID, Op: OpWatch, Version: req.Version}
			if watches >= maxConnWatches {
				resp.Code = CodeBadRequest
				resp.Detail = fmt.Sprintf("reswire: %d watch subscriptions on one connection (max %d)", watches+1, maxConnWatches)
			}
			s.metrics.observe(req.Op, start, resp.Code)
			s.metrics.end()
			if resp.Code != CodeOK {
				out <- resp
				continue
			}
			watches++
			hwg.Add(1)
			go func(req Request) {
				defer hwg.Done()
				s.watchLoop(req, out, connDone)
			}(req)
			continue
		}
		sem <- struct{}{}
		hwg.Add(1)
		go func(req Request) {
			defer hwg.Done()
			start := s.metrics.begin()
			resp := s.handle(req)
			s.metrics.observe(req.Op, start, resp.Code)
			s.metrics.end()
			out <- resp
			<-sem
		}(req)
	}
	close(connDone)
	hwg.Wait()
	close(out)
	<-writerDone
}

// watchLoop is one Watch subscription: every interval it assembles a
// Telemetry snapshot from the service's published counters and offers
// it to the connection's writer. A full writer queue (slow consumer,
// stuck socket) drops the frame and counts it in the next delivered
// frame's Dropped field — the subscription never blocks, and the shard
// loops never see it at all. The first frame is pushed immediately so a
// subscriber has a baseline before the first interval elapses.
func (s *Server) watchLoop(req Request, out chan<- Response, done <-chan struct{}) {
	interval := req.Interval
	if interval < MinWatchInterval {
		interval = MinWatchInterval
	}
	if interval > MaxWatchInterval {
		interval = MaxWatchInterval
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	var seq, dropped uint64
	push := func() {
		t := s.telemetry(req.Mask)
		t.Seq = seq + 1
		t.Dropped = dropped
		select {
		case out <- Response{ID: req.ID, Op: OpWatch, Version: req.Version, Telemetry: t}:
			seq++
		default:
			if dropped == 0 {
				// First drop only: the subscriber's Dropped field carries
				// the running count; the journal wants the onset.
				s.journal.Record(flight.Warn, "reswire", -1, "watch subscriber slow, dropping frames",
					flight.KV{K: "watch_id", V: fmt.Sprint(req.ID)})
			}
			dropped++
		}
	}
	push()
	for {
		select {
		case <-done:
			return
		case <-tick.C:
			push()
		}
	}
}

// telemetry assembles one Watch frame from the service's published
// atomics and channel lengths — the same no-event-loop contract as a
// /metrics scrape.
func (s *Server) telemetry(mask uint32) *Telemetry {
	t := &Telemetry{Mask: mask, M: s.svc.M(), Floor: s.svc.Floor()}
	if mask&WatchShards != 0 {
		t.Shards = s.svc.Stats()
		t.Queue = s.svc.QueueDepths()
	}
	if mask&WatchTenants != 0 {
		if reg := s.svc.Quotas(); reg != nil {
			for _, u := range reg.Tenants() {
				t.Tenants = append(t.Tenants, TenantTelemetry{
					Tenant:   u.Tenant,
					Budget:   u.Budget,
					Used:     u.Used,
					Inflight: u.Inflight,
				})
			}
		}
	}
	if mask&WatchWAL != 0 {
		for _, w := range s.svc.WALStats() {
			t.WAL = append(t.WAL, WALTelemetry{
				Shard:     w.Shard,
				Gen:       w.Gen,
				Bytes:     w.Bytes,
				Records:   w.Records,
				Fsyncs:    w.Fsyncs,
				Snapshots: w.Snapshots,
				FsyncP99:  w.FsyncP99,
				Failed:    w.Failed,
			})
		}
	}
	if mask&WatchTraces != 0 {
		t.TracesSampled, t.TracesSlow = s.svc.TraceCounts()
	}
	if mask&WatchSLO != 0 {
		if eng := s.svc.SLO(); eng != nil {
			for _, st := range eng.States() {
				t.SLO = append(t.SLO, SLOTelemetry{
					Name:            st.Name,
					Tenant:          st.Tenant,
					Signal:          st.Signal,
					Target:          st.Target,
					Attainment:      st.Attainment,
					BudgetRemaining: st.BudgetRemaining,
					BurnMax:         st.BurnMax,
					State:           st.Severity,
				})
			}
		}
	}
	return t
}

// writeLoop encodes and writes responses, coalescing each wakeup's batch
// into one flush via drainRounds — the server-side half of the pipelining
// bargain: under load, many responses ride one syscall.
func (s *Server) writeLoop(nc io.Writer, out <-chan Response) {
	bw := bufio.NewWriterSize(nc, 64<<10)
	var buf []byte
	var stuck error // first write/flush failure; keep draining so handlers never block
	write := func(resp Response) {
		if stuck != nil {
			return
		}
		var err error
		buf, err = AppendResponse(buf[:0], resp)
		if err == nil {
			_, err = bw.Write(buf)
		}
		if err != nil {
			stuck = err
		}
	}
	for resp := range out {
		write(resp)
		// A false return means out closed mid-drain; flush what we have
		// and let the range loop observe the close on its next receive.
		drainRounds(out, func(more Response) bool {
			write(more)
			return true
		})
		if stuck == nil {
			if err := bw.Flush(); err != nil {
				stuck = err
			}
		}
	}
	if stuck == nil {
		bw.Flush()
	}
}

// handle executes one decoded request against the service and builds the
// response, mapping typed service errors onto wire codes. The response
// carries the request's revision, so a v1 caller gets a v1 answer from a
// v2 server.
func (s *Server) handle(req Request) Response {
	resp := Response{ID: req.ID, Op: req.Op, Version: req.Version}
	fail := func(err error) Response {
		resp.Code = CodeOf(err)
		resp.Detail = err.Error()
		return resp
	}
	switch req.Op {
	case OpReserve:
		resv, err := s.svc.Admit(resd.Request{Tenant: req.Tenant, Ready: req.Ready, Q: req.Procs, Dur: req.Dur, Deadline: req.Deadline,
			ClientSend: req.Stamp, Trace: req.Traced})
		if err != nil {
			return fail(err)
		}
		resp.Resv = resv
	case OpCancel:
		if err := s.svc.Cancel(resd.ID(req.Resv)); err != nil {
			return fail(err)
		}
	case OpQuery:
		free, err := s.svc.Query(req.Ready)
		if err != nil {
			return fail(err)
		}
		resp.Free = free
	case OpSnapshot:
		snap, err := s.svc.Snapshot(req.Shard)
		if err != nil {
			return fail(err)
		}
		resp.M = snap.M()
		bps := snap.Breakpoints()
		resp.Segs = make([]Segment, len(bps))
		for i, bp := range bps {
			resp.Segs[i] = Segment{Start: bp, Free: snap.AvailableAt(bp)}
		}
	case OpPing:
		// liveness only: echo the header
	case OpStats:
		resp.Stats = s.svc.Stats()
	case OpQuotaGet:
		reg := s.svc.Quotas()
		if reg == nil {
			return fail(fmt.Errorf("%w: quotas disabled on this server", resd.ErrBadRequest))
		}
		u := reg.Usage(req.Tenant)
		resp.Quota = QuotaInfo{
			Tenant:    u.Tenant,
			Group:     u.Group,
			Mode:      reg.Mode(),
			Share:     u.Share,
			Capacity:  reg.Capacity(),
			Budget:    u.Budget,
			Used:      u.Used,
			Inflight:  u.Inflight,
			Admitted:  u.Admitted,
			Cancelled: u.Cancelled,
			Rejected:  u.Rejected,
		}
	case OpQuotaSet:
		reg := s.svc.Quotas()
		if reg == nil {
			return fail(fmt.Errorf("%w: quotas disabled on this server", resd.ErrBadRequest))
		}
		if err := reg.SetShare(req.Tenant, req.Share); err != nil {
			return fail(err)
		}
	case OpTrace:
		resp.Traces = s.svc.Traces(req.Limit)
	default:
		return fail(fmt.Errorf("%w: op %d", resd.ErrBadRequest, uint8(req.Op)))
	}
	return resp
}
