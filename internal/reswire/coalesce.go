package reswire

import "runtime"

// drainRounds implements the write-coalescing drain shared by the client
// and server write loops (internal/resd's shard loop uses the same idiom
// with a batch cap).
//
// The channel send that wakes a write loop also schedules it to run
// immediately next (the Go runtime's direct handoff puts the receiver in
// the runnext slot), so a plain non-blocking drain right after the first
// receive almost always finds the queue empty again — and every frame
// ends up flushed alone, one syscall each. Instead, each round yields the
// scheduler once so every runnable producer gets to enqueue, then drains
// whatever is queued, and the rounds repeat until one adds nothing; only
// then should the caller flush. The loop is self-limiting — once all
// producers are blocked awaiting responses, a round drains nothing — and
// with a single producer in flight the yield finds no other work and
// costs nanoseconds.
//
// emit is called for every drained item; returning false aborts. The
// function returns false as soon as ch is closed or emit fails, true
// once a round adds nothing.
func drainRounds[T any](ch <-chan T, emit func(T) bool) bool {
	for drained := true; drained; {
		runtime.Gosched()
		drained = false
	round:
		for {
			select {
			case v, ok := <-ch:
				if !ok {
					return false
				}
				if !emit(v) {
					return false
				}
				drained = true
			default:
				break round
			}
		}
	}
	return true
}
