package reswire

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/profile"
	"repro/internal/resd"
)

// ErrClientClosed reports a call on a closed client (or one whose
// connection died mid-call; the underlying cause is wrapped).
var ErrClientClosed = errors.New("reswire: client closed")

// ErrTimeout reports a call that exceeded Options.CallTimeout. The
// connection stays usable — the abandoned request's late response is
// discarded when it arrives — but the operation may still have executed
// on the server (a timed-out Reserve can still have admitted).
var ErrTimeout = errors.New("reswire: call timeout")

// Options parameterises Dial.
type Options struct {
	// Conns is the number of TCP connections the client multiplexes
	// callers over (default 1). Calls are spread round-robin.
	Conns int
	// Pipeline allows many in-flight requests per connection, with the
	// client coalescing their writes into one flush per batch. Off, each
	// connection carries one request at a time (write, flush, wait) —
	// the classic RPC shape, kept as the benchmark baseline.
	Pipeline bool
	// Window caps in-flight requests per connection when pipelining
	// (default 256; forced to 1 when Pipeline is false).
	Window int
	// CallTimeout bounds each call — window admission, write, and the
	// wait for the response — failing it with ErrTimeout when exceeded.
	// 0 (the default) waits forever.
	CallTimeout time.Duration
	// Metrics attaches wire instrumentation (side "client"): per-op
	// latency, in-flight window, socket bytes, frame errors, response
	// codes. Nil leaves instrumentation off.
	Metrics *Metrics
}

func (o Options) normalize() (Options, error) {
	if o.Conns == 0 {
		o.Conns = 1
	}
	if o.Conns < 1 {
		return o, fmt.Errorf("reswire: Conns=%d, need >= 1", o.Conns)
	}
	if o.Window == 0 {
		o.Window = 256
	}
	if o.Window < 1 {
		return o, fmt.Errorf("reswire: Window=%d, need >= 1", o.Window)
	}
	if o.CallTimeout < 0 {
		return o, fmt.Errorf("reswire: CallTimeout=%v, need >= 0", o.CallTimeout)
	}
	if !o.Pipeline {
		o.Window = 1
	}
	return o, nil
}

// Client is the remote face of a resd.Service: Admit, Cancel, Query,
// Snapshot, Stats and Ping with the same signatures and the same typed
// errors (errors.Is(err, resd.ErrDeadline) works on both sides of the
// wire). All methods are safe for concurrent use; concurrent callers
// are multiplexed over the configured connections and, when pipelining,
// their requests share flushes. After Close every method returns
// ErrClientClosed.
type Client struct {
	addr   string
	conns  []*clientConn
	rr     atomic.Uint64
	closed atomic.Bool
	done   chan struct{} // closed by Close; ends Watch streams
}

// Dial connects to a reswire server.
func Dial(addr string, opts Options) (*Client, error) {
	opts, err := opts.normalize()
	if err != nil {
		return nil, err
	}
	c := &Client{addr: addr, done: make(chan struct{})}
	for i := 0; i < opts.Conns; i++ {
		nc, err := net.Dial("tcp", addr)
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("reswire: dial %s: %w", addr, err)
		}
		c.conns = append(c.conns, newClientConn(nc, opts, opts.Metrics))
	}
	return c, nil
}

// Close tears down every connection and ends every Watch stream.
// In-flight and subsequent calls fail with ErrClientClosed.
func (c *Client) Close() error {
	if c.closed.CompareAndSwap(false, true) {
		close(c.done)
	}
	for _, cc := range c.conns {
		cc.close(ErrClientClosed)
	}
	return nil
}

// pick spreads calls over the connections round-robin.
func (c *Client) pick() *clientConn {
	return c.conns[int(c.rr.Add(1)-1)%len(c.conns)]
}

// call performs one round trip and maps the response code to an error.
func (c *Client) call(req Request) (Response, error) {
	if c.closed.Load() {
		return Response{}, ErrClientClosed
	}
	resp, err := c.pick().call(req)
	if err != nil {
		return Response{}, err
	}
	if resp.Op != req.Op {
		return Response{}, fmt.Errorf("%w: response op %s for %s request", ErrFrame, resp.Op, req.Op)
	}
	if resp.Code != CodeOK {
		return Response{}, resp.Code.Err(resp.Detail)
	}
	return resp, nil
}

// Admit admits a reservation exactly like resd.Service.Admit but over
// the wire: same resd.Request, same typed errors (a REJECTED_DEADLINE
// response surfaces as resd.ErrDeadline, REJECTED_QUOTA as
// tenant.ErrQuota). Remember req.Deadline is literal — set
// resd.NoDeadline to disable the deadline check.
//
// Every frame carries the client's send stamp (v5), so when the server
// samples the admission its TraceRecord shows the true cross-wire span
// (TraceRecord.ClientSend). Set req.Trace to force the sample — see
// AdmitTraced.
func (c *Client) Admit(req resd.Request) (resd.Reservation, error) {
	stamp := req.ClientSend
	if stamp == 0 {
		stamp = time.Now().UnixNano()
	}
	resp, err := c.call(Request{Op: OpReserve, Tenant: req.Tenant, Ready: req.Ready, Procs: req.Q, Dur: req.Dur, Deadline: req.Deadline,
		Stamp: stamp, Traced: req.Trace})
	if err != nil {
		return resd.Reservation{}, err
	}
	return resp.Resv, nil
}

// AdmitTraced is Admit with the trace flag set: the server records the
// admission in its trace ring regardless of the sampling rate (a no-op
// on servers running with tracing disabled), and the record carries
// this call's send stamp as the cross-wire span. Requires protocol v5.
func (c *Client) AdmitTraced(req resd.Request) (resd.Reservation, error) {
	req.Trace = true
	return c.Admit(req)
}

// Reserve admits a reservation at the earliest admissible start,
// accounted to the default tenant with no deadline.
//
// Deprecated: use Admit with a resd.Request.
func (c *Client) Reserve(ready core.Time, q int, dur core.Time) (resd.Reservation, error) {
	return c.Admit(resd.Request{Ready: ready, Q: q, Dur: dur, Deadline: resd.NoDeadline})
}

// ReserveBy is Reserve with an SLA deadline on the start time.
//
// Deprecated: use Admit with a resd.Request.
func (c *Client) ReserveBy(ready core.Time, q int, dur core.Time, deadline core.Time) (resd.Reservation, error) {
	return c.Admit(resd.Request{Ready: ready, Q: q, Dur: dur, Deadline: deadline})
}

// ReserveFor is ReserveBy on behalf of a tenant.
//
// Deprecated: use Admit with a resd.Request.
func (c *Client) ReserveFor(ten string, ready core.Time, q int, dur core.Time, deadline core.Time) (resd.Reservation, error) {
	return c.Admit(resd.Request{Tenant: ten, Ready: ready, Q: q, Dur: dur, Deadline: deadline})
}

// QuotaGet reads one tenant's quota state from the server's registry ("" =
// the default tenant).
func (c *Client) QuotaGet(ten string) (QuotaInfo, error) {
	resp, err := c.call(Request{Op: OpQuotaGet, Tenant: ten})
	if err != nil {
		return QuotaInfo{}, err
	}
	return resp.Quota, nil
}

// QuotaSet re-budgets a tenant at runtime: its share of its group's
// budget becomes share ∈ (0,1]. Unknown tenants are created in the
// default group, mirroring what their first admission would do.
func (c *Client) QuotaSet(ten string, share float64) error {
	_, err := c.call(Request{Op: OpQuotaSet, Tenant: ten, Share: share})
	return err
}

// Cancel releases an admitted reservation.
func (c *Client) Cancel(id resd.ID) error {
	_, err := c.call(Request{Op: OpCancel, Resv: uint64(id)})
	return err
}

// Query returns the per-shard free capacity at time t.
func (c *Client) Query(t core.Time) ([]int, error) {
	resp, err := c.call(Request{Op: OpQuery, Ready: t})
	if err != nil {
		return nil, err
	}
	return resp.Free, nil
}

// Stats returns the per-shard load summaries.
func (c *Client) Stats() ([]resd.ShardStats, error) {
	resp, err := c.call(Request{Op: OpStats})
	if err != nil {
		return nil, err
	}
	return resp.Stats, nil
}

// Ping performs one empty round trip (liveness / RTT probe).
func (c *Client) Ping() error {
	_, err := c.call(Request{Op: OpPing})
	return err
}

// Traces reads the server's newest sampled admission traces, oldest
// first, up to max (max <= 0 asks for the whole ring). Empty when the
// server runs with tracing disabled. Requires protocol v4.
func (c *Client) Traces(max int) ([]resd.TraceRecord, error) {
	resp, err := c.call(Request{Op: OpTrace, Limit: max})
	if err != nil {
		return nil, err
	}
	return resp.Traces, nil
}

// WatchOptions parameterises Client.Watch.
type WatchOptions struct {
	// Interval is the requested push period (default 1s). The server
	// clamps it into [MinWatchInterval, MaxWatchInterval].
	Interval time.Duration
	// Mask selects the telemetry families (0 = WatchAll).
	Mask uint32
	// Buffer is the capacity of the returned channel (default 16). A
	// consumer that stops draining eventually back-pressures through
	// TCP; the server then drops frames and marks the gap in the next
	// delivered frame's Dropped count rather than blocking anything.
	Buffer int
}

// watchRedialDelay paces resubscription attempts after a Watch stream's
// connection dies.
const watchRedialDelay = 100 * time.Millisecond

// Watch subscribes to server-pushed telemetry and returns the stream.
// Each received frame is one Telemetry snapshot of the families
// opts.Mask selected, pushed by the server every opts.Interval without
// the client issuing any polls. The subscription rides its own
// connection; if that connection dies the stream redials and
// resubscribes transparently until ctx is cancelled or the client is
// closed (the channel then closes). After a resubscribe the frame Seq
// and Dropped counters restart — the telemetry counters themselves are
// cumulative on the server, so consumer-side deltas stay monotone
// across reconnects. Requires protocol v5.
func (c *Client) Watch(ctx context.Context, opts WatchOptions) (<-chan Telemetry, error) {
	if c.closed.Load() {
		return nil, ErrClientClosed
	}
	if opts.Interval < 0 {
		return nil, fmt.Errorf("reswire: watch interval %v negative", opts.Interval)
	}
	if opts.Interval == 0 {
		opts.Interval = time.Second
	}
	if opts.Mask == 0 {
		opts.Mask = WatchAll
	}
	if !validWatchMask(opts.Mask) {
		return nil, fmt.Errorf("reswire: watch mask %#x", opts.Mask)
	}
	if opts.Buffer <= 0 {
		opts.Buffer = 16
	}
	if ctx == nil {
		ctx = context.Background()
	}
	// The first subscription happens synchronously so the caller learns
	// about an unreachable server immediately, not as a silent
	// redial-forever stream.
	nc, err := c.watchDial(opts)
	if err != nil {
		return nil, err
	}
	ch := make(chan Telemetry, opts.Buffer)
	go c.watchStream(ctx, nc, opts, ch)
	return ch, nil
}

// watchDial opens a dedicated connection and writes the subscribe frame.
func (c *Client) watchDial(opts WatchOptions) (net.Conn, error) {
	nc, err := net.Dial("tcp", c.addr)
	if err != nil {
		return nil, fmt.Errorf("reswire: watch dial %s: %w", c.addr, err)
	}
	buf, err := AppendRequest(nil, Request{ID: 1, Op: OpWatch, Interval: opts.Interval, Mask: opts.Mask})
	if err != nil {
		nc.Close()
		return nil, err
	}
	if _, err := nc.Write(buf); err != nil {
		nc.Close()
		return nil, fmt.Errorf("reswire: watch subscribe %s: %w", c.addr, err)
	}
	return nc, nil
}

// watchStream pumps one Watch subscription, redialling and resubscribing
// when its connection dies, until ctx is cancelled, the client closes,
// or the server refuses the subscription outright.
func (c *Client) watchStream(ctx context.Context, nc net.Conn, opts WatchOptions, ch chan<- Telemetry) {
	defer close(ch)
	for {
		if !c.watchRead(ctx, nc, ch) {
			return
		}
		for {
			select {
			case <-ctx.Done():
				return
			case <-c.done:
				return
			case <-time.After(watchRedialDelay):
			}
			var err error
			if nc, err = c.watchDial(opts); err == nil {
				break
			}
		}
	}
}

// watchRead forwards one connection's telemetry frames into ch until the
// connection dies. It reports whether the stream should resubscribe:
// true after a transport failure, false on cancellation or a server
// refusal (which a retry cannot fix).
func (c *Client) watchRead(ctx context.Context, nc net.Conn, ch chan<- Telemetry) bool {
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		// Unblock the read below when the stream is cancelled.
		select {
		case <-ctx.Done():
		case <-c.done:
		case <-stop:
		}
		nc.Close()
	}()
	cancelled := func() bool {
		select {
		case <-ctx.Done():
			return true
		case <-c.done:
			return true
		default:
			return false
		}
	}
	br := bufio.NewReaderSize(nc, 64<<10)
	for {
		resp, err := ReadResponse(br)
		if err != nil {
			return !cancelled()
		}
		if resp.Op != OpWatch || resp.Code != CodeOK || resp.Telemetry == nil {
			// The server refused the subscription (or broke protocol);
			// resubscribing would only repeat the answer.
			return false
		}
		select {
		case ch <- *resp.Telemetry:
		case <-ctx.Done():
			return false
		case <-c.done:
			return false
		}
	}
}

// Snapshot fetches one shard's capacity profile and rebuilds it as a
// local index (wrapped in profile.Synchronized like the in-process
// Snapshot), so remote callers can run FindSlot/FreeArea/What-if queries
// without further round trips.
func (c *Client) Snapshot(shard int) (*profile.Synchronized, error) {
	resp, err := c.call(Request{Op: OpSnapshot, Shard: shard})
	if err != nil {
		return nil, err
	}
	if resp.M < 1 {
		return nil, fmt.Errorf("%w: snapshot machine size %d", ErrFrame, resp.M)
	}
	tl := profile.New(resp.M)
	for i, seg := range resp.Segs {
		// Validate every segment — including fully-free ones — before any
		// commit: a malformed sequence must fail loudly, not rebuild a
		// quietly divergent profile.
		if seg.Free < 0 || seg.Free > resp.M {
			return nil, fmt.Errorf("%w: segment %d free %d outside [0,%d]", ErrFrame, i, seg.Free, resp.M)
		}
		if seg.Start < 0 {
			return nil, fmt.Errorf("%w: segment %d starts at %v", ErrFrame, i, seg.Start)
		}
		dur := core.Infinity // last segment extends unbounded
		if i+1 < len(resp.Segs) {
			if resp.Segs[i+1].Start <= seg.Start {
				return nil, fmt.Errorf("%w: segment starts not increasing at %d", ErrFrame, i)
			}
			dur = resp.Segs[i+1].Start - seg.Start
		}
		held := resp.M - seg.Free
		if held == 0 {
			continue
		}
		if err := tl.Commit(seg.Start, dur, held); err != nil {
			return nil, fmt.Errorf("reswire: rebuild snapshot: %w", err)
		}
	}
	return profile.NewSynchronized(tl), nil
}

// clientConn is one multiplexed connection: callers register a pending
// reply slot keyed by request id, push the encoded frame to the writer,
// and block on their slot; the reader routes responses back by id.
type clientConn struct {
	nc      net.Conn
	wc      net.Conn // nc behind the byte counters when instrumented
	m       *Metrics
	timeout time.Duration // 0 = wait forever
	sem     chan struct{} // in-flight window
	writeCh chan []byte

	mu      sync.Mutex
	pending map[uint64]chan Response
	// stale holds ids of timed-out calls whose response has not arrived:
	// the reader discards those instead of treating them as protocol
	// violations.
	stale  map[uint64]struct{}
	nextID uint64

	closeOnce sync.Once
	closed    chan struct{}
	errv      atomic.Value // error: why the connection died
}

func newClientConn(nc net.Conn, opts Options, m *Metrics) *clientConn {
	cc := &clientConn{
		nc:      nc,
		wc:      m.wrap(nc),
		m:       m,
		timeout: opts.CallTimeout,
		sem:     make(chan struct{}, opts.Window),
		writeCh: make(chan []byte, opts.Window),
		pending: make(map[uint64]chan Response),
		stale:   make(map[uint64]struct{}),
		closed:  make(chan struct{}),
	}
	go cc.writeLoop()
	go cc.readLoop()
	return cc
}

// close marks the connection dead with cause, fails every pending call
// and closes the socket. Idempotent; the first cause wins.
func (cc *clientConn) close(cause error) {
	cc.closeOnce.Do(func() {
		cc.errv.Store(cause)
		close(cc.closed)
		cc.nc.Close()
		cc.mu.Lock()
		pend := cc.pending
		cc.pending = nil
		cc.mu.Unlock()
		for _, ch := range pend {
			close(ch)
		}
	})
}

// deadErr reports why the connection died, wrapped for errors.Is on
// ErrClientClosed.
func (cc *clientConn) deadErr() error {
	cause, _ := cc.errv.Load().(error)
	if cause == nil || errors.Is(cause, ErrClientClosed) {
		return ErrClientClosed
	}
	return fmt.Errorf("%w: %v", ErrClientClosed, cause)
}

// call sends one request and blocks for its response, bounded by the
// connection's call timeout when one is configured.
func (cc *clientConn) call(req Request) (Response, error) {
	var timeoutCh <-chan time.Time
	if cc.timeout > 0 {
		timer := time.NewTimer(cc.timeout)
		defer timer.Stop()
		timeoutCh = timer.C
	}
	select {
	case cc.sem <- struct{}{}:
	case <-cc.closed:
		return Response{}, cc.deadErr()
	case <-timeoutCh:
		return Response{}, fmt.Errorf("%w: no window slot within %v", ErrTimeout, cc.timeout)
	}
	defer func() { <-cc.sem }()
	start := cc.m.begin()
	defer cc.m.end()

	ch := make(chan Response, 1)
	cc.mu.Lock()
	if cc.pending == nil {
		cc.mu.Unlock()
		return Response{}, cc.deadErr()
	}
	cc.nextID++
	req.ID = cc.nextID
	cc.pending[req.ID] = ch
	cc.mu.Unlock()

	buf, err := AppendRequest(nil, req)
	if err != nil {
		cc.forget(req.ID)
		return Response{}, err
	}
	select {
	case cc.writeCh <- buf:
	case <-cc.closed:
		cc.forget(req.ID)
		return Response{}, cc.deadErr()
	case <-timeoutCh:
		cc.forget(req.ID)
		return Response{}, fmt.Errorf("%w: %s not written within %v", ErrTimeout, req.Op, cc.timeout)
	}
	select {
	case resp, ok := <-ch:
		if !ok {
			return Response{}, cc.deadErr()
		}
		cc.m.observe(req.Op, start, resp.Code)
		return resp, nil
	case <-timeoutCh:
		if cc.abandon(req.ID) {
			return Response{}, fmt.Errorf("%w: no %s response within %v", ErrTimeout, req.Op, cc.timeout)
		}
		// The response won the race: the reader has already taken the id
		// off pending, so the buffered send (or the close) is imminent.
		resp, ok := <-ch
		if !ok {
			return Response{}, cc.deadErr()
		}
		cc.m.observe(req.Op, start, resp.Code)
		return resp, nil
	}
}

// forget drops a pending slot after a local failure (nothing was sent,
// so no response will ever arrive for the id).
func (cc *clientConn) forget(id uint64) {
	cc.mu.Lock()
	if cc.pending != nil {
		delete(cc.pending, id)
	}
	cc.mu.Unlock()
}

// abandon gives up on an in-flight request at timeout: the id moves to
// the stale set so the reader discards its late response. Reports false
// when the request is no longer pending — its response already arrived
// (buffered on the slot) or the connection died.
func (cc *clientConn) abandon(id uint64) bool {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	if cc.pending == nil {
		return false
	}
	if _, ok := cc.pending[id]; !ok {
		return false
	}
	delete(cc.pending, id)
	cc.stale[id] = struct{}{}
	return true
}

// writeLoop drains queued frames and flushes once per batch (the
// drainRounds yield-then-drain), so with many callers in flight one
// syscall carries many requests — the client-side write coalescing that
// makes pipelining pay.
func (cc *clientConn) writeLoop() {
	bw := bufio.NewWriterSize(cc.wc, 64<<10)
	for {
		var buf []byte
		select {
		case buf = <-cc.writeCh:
		case <-cc.closed:
			return
		}
		if _, err := bw.Write(buf); err != nil {
			cc.close(err)
			return
		}
		// writeCh never closes, so a false return always means a write
		// error; close(err) already ran inside emit.
		if !drainRounds(cc.writeCh, func(more []byte) bool {
			if _, err := bw.Write(more); err != nil {
				cc.close(err)
				return false
			}
			return true
		}) {
			return
		}
		if err := bw.Flush(); err != nil {
			cc.close(err)
			return
		}
	}
}

// readLoop decodes responses and routes them to their pending slot. An
// unknown id is a protocol violation and kills the connection.
func (cc *clientConn) readLoop() {
	br := bufio.NewReaderSize(cc.wc, 64<<10)
	for {
		resp, err := ReadResponse(br)
		if err != nil {
			cc.m.frameError(err)
			cc.close(err)
			return
		}
		cc.mu.Lock()
		ch, ok := cc.pending[resp.ID]
		if ok {
			delete(cc.pending, resp.ID)
		} else if _, timedOut := cc.stale[resp.ID]; timedOut {
			// The caller gave up on this one: drop the late response and
			// keep the connection.
			delete(cc.stale, resp.ID)
			cc.mu.Unlock()
			continue
		}
		cc.mu.Unlock()
		if !ok {
			cc.close(fmt.Errorf("%w: response for unknown request id %d", ErrFrame, resp.ID))
			return
		}
		ch <- resp
	}
}
