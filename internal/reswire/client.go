package reswire

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/profile"
	"repro/internal/resd"
)

// ErrClientClosed reports a call on a closed client (or one whose
// connection died mid-call; the underlying cause is wrapped).
var ErrClientClosed = errors.New("reswire: client closed")

// Options parameterises Dial.
type Options struct {
	// Conns is the number of TCP connections the client multiplexes
	// callers over (default 1). Calls are spread round-robin.
	Conns int
	// Pipeline allows many in-flight requests per connection, with the
	// client coalescing their writes into one flush per batch. Off, each
	// connection carries one request at a time (write, flush, wait) —
	// the classic RPC shape, kept as the benchmark baseline.
	Pipeline bool
	// Window caps in-flight requests per connection when pipelining
	// (default 256; forced to 1 when Pipeline is false).
	Window int
	// Metrics attaches wire instrumentation (side "client"): per-op
	// latency, in-flight window, socket bytes, frame errors, response
	// codes. Nil leaves instrumentation off.
	Metrics *Metrics
}

func (o Options) normalize() (Options, error) {
	if o.Conns == 0 {
		o.Conns = 1
	}
	if o.Conns < 1 {
		return o, fmt.Errorf("reswire: Conns=%d, need >= 1", o.Conns)
	}
	if o.Window == 0 {
		o.Window = 256
	}
	if o.Window < 1 {
		return o, fmt.Errorf("reswire: Window=%d, need >= 1", o.Window)
	}
	if !o.Pipeline {
		o.Window = 1
	}
	return o, nil
}

// Client is the remote face of a resd.Service: Reserve/ReserveBy, Cancel,
// Query, Snapshot, Stats and Ping with the same signatures and the same
// typed errors (errors.Is(err, resd.ErrDeadline) works on both sides of
// the wire). All methods are safe for concurrent use; concurrent callers
// are multiplexed over the configured connections and, when pipelining,
// their requests share flushes.
type Client struct {
	conns []*clientConn
	rr    atomic.Uint64
}

// Dial connects to a reswire server.
func Dial(addr string, opts Options) (*Client, error) {
	opts, err := opts.normalize()
	if err != nil {
		return nil, err
	}
	c := &Client{}
	for i := 0; i < opts.Conns; i++ {
		nc, err := net.Dial("tcp", addr)
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("reswire: dial %s: %w", addr, err)
		}
		c.conns = append(c.conns, newClientConn(nc, opts.Window, opts.Metrics))
	}
	return c, nil
}

// Close tears down every connection. In-flight calls fail with
// ErrClientClosed.
func (c *Client) Close() error {
	for _, cc := range c.conns {
		cc.close(ErrClientClosed)
	}
	return nil
}

// pick spreads calls over the connections round-robin.
func (c *Client) pick() *clientConn {
	return c.conns[int(c.rr.Add(1)-1)%len(c.conns)]
}

// call performs one round trip and maps the response code to an error.
func (c *Client) call(req Request) (Response, error) {
	resp, err := c.pick().call(req)
	if err != nil {
		return Response{}, err
	}
	if resp.Op != req.Op {
		return Response{}, fmt.Errorf("%w: response op %s for %s request", ErrFrame, resp.Op, req.Op)
	}
	if resp.Code != CodeOK {
		return Response{}, resp.Code.Err(resp.Detail)
	}
	return resp, nil
}

// Reserve admits a reservation at the earliest admissible start, exactly
// like resd.Service.Reserve but over the wire.
func (c *Client) Reserve(ready core.Time, q int, dur core.Time) (resd.Reservation, error) {
	return c.ReserveBy(ready, q, dur, resd.NoDeadline)
}

// ReserveBy is Reserve with an SLA deadline on the start time; a
// REJECTED_DEADLINE response surfaces as resd.ErrDeadline.
func (c *Client) ReserveBy(ready core.Time, q int, dur core.Time, deadline core.Time) (resd.Reservation, error) {
	return c.ReserveFor("", ready, q, dur, deadline)
}

// ReserveFor is ReserveBy on behalf of a tenant: the admission is charged
// against the named tenant's quota on the server ("" = the default
// tenant). A REJECTED_QUOTA response surfaces as tenant.ErrQuota (equally
// resd.ErrQuota), exactly as an in-process caller would see it.
func (c *Client) ReserveFor(ten string, ready core.Time, q int, dur core.Time, deadline core.Time) (resd.Reservation, error) {
	resp, err := c.call(Request{Op: OpReserve, Tenant: ten, Ready: ready, Procs: q, Dur: dur, Deadline: deadline})
	if err != nil {
		return resd.Reservation{}, err
	}
	return resp.Resv, nil
}

// QuotaGet reads one tenant's quota state from the server's registry ("" =
// the default tenant).
func (c *Client) QuotaGet(ten string) (QuotaInfo, error) {
	resp, err := c.call(Request{Op: OpQuotaGet, Tenant: ten})
	if err != nil {
		return QuotaInfo{}, err
	}
	return resp.Quota, nil
}

// QuotaSet re-budgets a tenant at runtime: its share of its group's
// budget becomes share ∈ (0,1]. Unknown tenants are created in the
// default group, mirroring what their first admission would do.
func (c *Client) QuotaSet(ten string, share float64) error {
	_, err := c.call(Request{Op: OpQuotaSet, Tenant: ten, Share: share})
	return err
}

// Cancel releases an admitted reservation.
func (c *Client) Cancel(id resd.ID) error {
	_, err := c.call(Request{Op: OpCancel, Resv: uint64(id)})
	return err
}

// Query returns the per-shard free capacity at time t.
func (c *Client) Query(t core.Time) ([]int, error) {
	resp, err := c.call(Request{Op: OpQuery, Ready: t})
	if err != nil {
		return nil, err
	}
	return resp.Free, nil
}

// Stats returns the per-shard load summaries.
func (c *Client) Stats() ([]resd.ShardStats, error) {
	resp, err := c.call(Request{Op: OpStats})
	if err != nil {
		return nil, err
	}
	return resp.Stats, nil
}

// Ping performs one empty round trip (liveness / RTT probe).
func (c *Client) Ping() error {
	_, err := c.call(Request{Op: OpPing})
	return err
}

// Traces reads the server's newest sampled admission traces, oldest
// first, up to max (max <= 0 asks for the whole ring). Empty when the
// server runs with tracing disabled. Requires protocol v4.
func (c *Client) Traces(max int) ([]resd.TraceRecord, error) {
	resp, err := c.call(Request{Op: OpTrace, Limit: max})
	if err != nil {
		return nil, err
	}
	return resp.Traces, nil
}

// Snapshot fetches one shard's capacity profile and rebuilds it as a
// local index (wrapped in profile.Synchronized like the in-process
// Snapshot), so remote callers can run FindSlot/FreeArea/What-if queries
// without further round trips.
func (c *Client) Snapshot(shard int) (*profile.Synchronized, error) {
	resp, err := c.call(Request{Op: OpSnapshot, Shard: shard})
	if err != nil {
		return nil, err
	}
	if resp.M < 1 {
		return nil, fmt.Errorf("%w: snapshot machine size %d", ErrFrame, resp.M)
	}
	tl := profile.New(resp.M)
	for i, seg := range resp.Segs {
		// Validate every segment — including fully-free ones — before any
		// commit: a malformed sequence must fail loudly, not rebuild a
		// quietly divergent profile.
		if seg.Free < 0 || seg.Free > resp.M {
			return nil, fmt.Errorf("%w: segment %d free %d outside [0,%d]", ErrFrame, i, seg.Free, resp.M)
		}
		if seg.Start < 0 {
			return nil, fmt.Errorf("%w: segment %d starts at %v", ErrFrame, i, seg.Start)
		}
		dur := core.Infinity // last segment extends unbounded
		if i+1 < len(resp.Segs) {
			if resp.Segs[i+1].Start <= seg.Start {
				return nil, fmt.Errorf("%w: segment starts not increasing at %d", ErrFrame, i)
			}
			dur = resp.Segs[i+1].Start - seg.Start
		}
		held := resp.M - seg.Free
		if held == 0 {
			continue
		}
		if err := tl.Commit(seg.Start, dur, held); err != nil {
			return nil, fmt.Errorf("reswire: rebuild snapshot: %w", err)
		}
	}
	return profile.NewSynchronized(tl), nil
}

// clientConn is one multiplexed connection: callers register a pending
// reply slot keyed by request id, push the encoded frame to the writer,
// and block on their slot; the reader routes responses back by id.
type clientConn struct {
	nc      net.Conn
	wc      net.Conn // nc behind the byte counters when instrumented
	m       *Metrics
	sem     chan struct{} // in-flight window
	writeCh chan []byte

	mu      sync.Mutex
	pending map[uint64]chan Response
	nextID  uint64

	closeOnce sync.Once
	closed    chan struct{}
	errv      atomic.Value // error: why the connection died
}

func newClientConn(nc net.Conn, window int, m *Metrics) *clientConn {
	cc := &clientConn{
		nc:      nc,
		wc:      m.wrap(nc),
		m:       m,
		sem:     make(chan struct{}, window),
		writeCh: make(chan []byte, window),
		pending: make(map[uint64]chan Response),
		closed:  make(chan struct{}),
	}
	go cc.writeLoop()
	go cc.readLoop()
	return cc
}

// close marks the connection dead with cause, fails every pending call
// and closes the socket. Idempotent; the first cause wins.
func (cc *clientConn) close(cause error) {
	cc.closeOnce.Do(func() {
		cc.errv.Store(cause)
		close(cc.closed)
		cc.nc.Close()
		cc.mu.Lock()
		pend := cc.pending
		cc.pending = nil
		cc.mu.Unlock()
		for _, ch := range pend {
			close(ch)
		}
	})
}

// deadErr reports why the connection died, wrapped for errors.Is on
// ErrClientClosed.
func (cc *clientConn) deadErr() error {
	cause, _ := cc.errv.Load().(error)
	if cause == nil || errors.Is(cause, ErrClientClosed) {
		return ErrClientClosed
	}
	return fmt.Errorf("%w: %v", ErrClientClosed, cause)
}

// call sends one request and blocks for its response.
func (cc *clientConn) call(req Request) (Response, error) {
	select {
	case cc.sem <- struct{}{}:
	case <-cc.closed:
		return Response{}, cc.deadErr()
	}
	defer func() { <-cc.sem }()
	start := cc.m.begin()
	defer cc.m.end()

	ch := make(chan Response, 1)
	cc.mu.Lock()
	if cc.pending == nil {
		cc.mu.Unlock()
		return Response{}, cc.deadErr()
	}
	cc.nextID++
	req.ID = cc.nextID
	cc.pending[req.ID] = ch
	cc.mu.Unlock()

	buf, err := AppendRequest(nil, req)
	if err != nil {
		cc.forget(req.ID)
		return Response{}, err
	}
	select {
	case cc.writeCh <- buf:
	case <-cc.closed:
		cc.forget(req.ID)
		return Response{}, cc.deadErr()
	}
	resp, ok := <-ch
	if !ok {
		return Response{}, cc.deadErr()
	}
	cc.m.observe(req.Op, start, resp.Code)
	return resp, nil
}

// forget drops a pending slot after a local failure.
func (cc *clientConn) forget(id uint64) {
	cc.mu.Lock()
	if cc.pending != nil {
		delete(cc.pending, id)
	}
	cc.mu.Unlock()
}

// writeLoop drains queued frames and flushes once per batch (the
// drainRounds yield-then-drain), so with many callers in flight one
// syscall carries many requests — the client-side write coalescing that
// makes pipelining pay.
func (cc *clientConn) writeLoop() {
	bw := bufio.NewWriterSize(cc.wc, 64<<10)
	for {
		var buf []byte
		select {
		case buf = <-cc.writeCh:
		case <-cc.closed:
			return
		}
		if _, err := bw.Write(buf); err != nil {
			cc.close(err)
			return
		}
		// writeCh never closes, so a false return always means a write
		// error; close(err) already ran inside emit.
		if !drainRounds(cc.writeCh, func(more []byte) bool {
			if _, err := bw.Write(more); err != nil {
				cc.close(err)
				return false
			}
			return true
		}) {
			return
		}
		if err := bw.Flush(); err != nil {
			cc.close(err)
			return
		}
	}
}

// readLoop decodes responses and routes them to their pending slot. An
// unknown id is a protocol violation and kills the connection.
func (cc *clientConn) readLoop() {
	br := bufio.NewReaderSize(cc.wc, 64<<10)
	for {
		resp, err := ReadResponse(br)
		if err != nil {
			cc.m.frameError(err)
			cc.close(err)
			return
		}
		cc.mu.Lock()
		ch, ok := cc.pending[resp.ID]
		if ok {
			delete(cc.pending, resp.ID)
		}
		cc.mu.Unlock()
		if !ok {
			cc.close(fmt.Errorf("%w: response for unknown request id %d", ErrFrame, resp.ID))
			return
		}
		ch <- resp
	}
}
