package reswire

import (
	"bufio"
	"bytes"
	"errors"
	"net"
	"testing"

	"repro/internal/resd"
	"repro/internal/tenant"
)

func mustRegistry(t *testing.T, capacity int64, spec tenant.Spec) *tenant.Registry {
	t.Helper()
	reg, err := tenant.New(capacity, spec)
	if err != nil {
		t.Fatal(err)
	}
	return reg
}

func TestV1RequestDecodesAsDefaultTenant(t *testing.T) {
	frame, err := AppendRequest(nil, Request{
		ID: 7, Op: OpReserve, Version: VersionV1, Ready: 5, Procs: 2, Dur: 3, Deadline: resd.NoDeadline,
	})
	if err != nil {
		t.Fatal(err)
	}
	// A v1 Reserve body is exactly ready+procs+dur+deadline: no tenant tail.
	if want := 4 + headerLen + 8 + 4 + 8 + 8; len(frame) != want {
		t.Fatalf("v1 frame is %d bytes, want %d", len(frame), want)
	}
	got, err := ReadRequest(bufio.NewReader(bytes.NewReader(frame)))
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != VersionV1 || got.Tenant != "" {
		t.Fatalf("decoded v1 request %+v, want Version 1 and empty tenant", got)
	}
	// The round trip preserves the revision: re-encoding emits v1 bytes.
	again, err := AppendRequest(nil, got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(again, frame) {
		t.Fatalf("v1 re-encode diverged:\n got %x\nwant %x", again, frame)
	}
}

func TestV2ReserveCarriesTenant(t *testing.T) {
	req := Request{ID: 9, Op: OpReserve, Ready: 1, Procs: 2, Dur: 3, Deadline: resd.NoDeadline, Tenant: "acme"}
	frame, err := AppendRequest(nil, req)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ReadRequest(bufio.NewReader(bytes.NewReader(frame)))
	if err != nil {
		t.Fatal(err)
	}
	if got != req {
		t.Fatalf("round trip:\n got %+v\nwant %+v", got, req)
	}
}

func TestV1CannotCarryTenancy(t *testing.T) {
	cases := []Request{
		{Op: OpReserve, Version: VersionV1, Procs: 1, Dur: 1, Tenant: "acme"},
		{Op: OpQuotaGet, Version: VersionV1, Tenant: "acme"},
		{Op: OpQuotaSet, Version: VersionV1, Tenant: "acme", Share: 0.5},
	}
	for _, req := range cases {
		if _, err := AppendRequest(nil, req); err == nil {
			t.Errorf("AppendRequest(%+v) succeeded at v1", req)
		}
	}
	// A hostile v1 frame naming a v2-only op must fail the frame, not
	// decode as a mystery op.
	var b []byte
	b = append(b, 0, 0, 0, 0)
	b = appendHeader(b, VersionV1, OpQuotaGet, 1)
	b = append(b, 0) // empty tenant name
	frame, err := finishFrame(b, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ReadRequest(bufio.NewReader(bytes.NewReader(frame))); !errors.Is(err, ErrFrame) {
		t.Fatalf("v1 QuotaGet frame err = %v, want ErrFrame", err)
	}
}

func TestHostileVersionsRejected(t *testing.T) {
	valid, err := AppendRequest(nil, Request{ID: 1, Op: OpPing})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []byte{0, 6, 7, 0x7F, 0xFF} {
		frame := bytes.Clone(valid)
		frame[6] = v // version byte: after length prefix (4) + magic (2)
		if _, err := ReadRequest(bufio.NewReader(bytes.NewReader(frame))); !errors.Is(err, ErrVersion) {
			t.Errorf("version %d err = %v, want ErrVersion", v, err)
		}
	}
	// Encoding at a revision the protocol never had must also fail.
	if _, err := AppendRequest(nil, Request{Op: OpPing, Version: 6}); !errors.Is(err, ErrVersion) {
		t.Errorf("encode at version 6 err = %v, want ErrVersion", err)
	}
}

func TestStatsLayoutPerVersion(t *testing.T) {
	resp := Response{ID: 1, Op: OpStats, Code: CodeOK, Stats: []resd.ShardStats{{
		Active: 2, CommittedArea: 100, Admitted: 5, Cancelled: 3,
		Rejected: 1, RejectedDeadline: 4, RejectedQuota: 9,
		MigratedIn: 11, MigratedOut: 12, SlackP99: 127, Batches: 2, Ops: 5,
	}}}
	v3frame, err := AppendResponse(nil, resp)
	if err != nil {
		t.Fatal(err)
	}
	got3, err := ReadResponse(bufio.NewReader(bytes.NewReader(v3frame)))
	if err != nil {
		t.Fatal(err)
	}
	if st := got3.Stats[0]; st.RejectedQuota != 9 || st.MigratedIn != 11 || st.MigratedOut != 12 || st.SlackP99 != 127 {
		t.Fatalf("v3 stats round trip lost fields: %+v", st)
	}
	// The v2 layout predates the three rebalancing fields: 24 bytes
	// shorter per entry, and they come back zero while RejectedQuota
	// survives.
	v2 := resp
	v2.Version = VersionV2
	v2frame, err := AppendResponse(nil, v2)
	if err != nil {
		t.Fatal(err)
	}
	if len(v3frame)-len(v2frame) != 24 {
		t.Fatalf("v3 entry is %d bytes longer than v2, want 24", len(v3frame)-len(v2frame))
	}
	got2, err := ReadResponse(bufio.NewReader(bytes.NewReader(v2frame)))
	if err != nil {
		t.Fatal(err)
	}
	if st := got2.Stats[0]; st.RejectedQuota != 9 || st.MigratedIn != 0 || st.MigratedOut != 0 || st.SlackP99 != 0 {
		t.Fatalf("v2 stats decode = %+v", st)
	}
	// The v1 layout additionally has no RejectedQuota: 8 bytes shorter
	// again, and the field comes back zero.
	v1 := resp
	v1.Version = VersionV1
	v1frame, err := AppendResponse(nil, v1)
	if err != nil {
		t.Fatal(err)
	}
	if len(v2frame)-len(v1frame) != 8 {
		t.Fatalf("v2 entry is %d bytes longer than v1, want 8", len(v2frame)-len(v1frame))
	}
	got1, err := ReadResponse(bufio.NewReader(bytes.NewReader(v1frame)))
	if err != nil {
		t.Fatal(err)
	}
	if got1.Stats[0].RejectedQuota != 0 || got1.Stats[0].Ops != 5 {
		t.Fatalf("v1 stats decode = %+v", got1.Stats[0])
	}
}

// TestV2ClientAgainstV3Server is the negotiation test for the v3 bump: a
// hand-rolled v2 client must get v2-revision, v2-layout answers — tenancy
// intact, no migration fields — from a server whose in-process stats
// already carry them.
func TestV2ClientAgainstV3Server(t *testing.T) {
	addr, svc := startServer(t, resd.Config{
		Shards: 2, M: 8, Placement: "first-fit",
		RebalanceThreshold: 0.01,
	})
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	br := bufio.NewReader(nc)
	roundTrip := func(req Request) Response {
		t.Helper()
		req.Version = VersionV2
		frame, err := AppendRequest(nil, req)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := nc.Write(frame); err != nil {
			t.Fatal(err)
		}
		payload, err := ReadFrame(br)
		if err != nil {
			t.Fatal(err)
		}
		if payload[2] != VersionV2 {
			t.Fatalf("server answered a v2 request at revision %d", payload[2])
		}
		resp, err := DecodeResponse(payload)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	// Tenant attribution still works at v2.
	resv := roundTrip(Request{ID: 1, Op: OpReserve, Tenant: "acme", Ready: 100, Procs: 2, Dur: 10, Deadline: resd.NoDeadline})
	if resv.Code != CodeOK {
		t.Fatalf("v2 Reserve = %+v", resv)
	}
	if _, err := svc.ReserveFor("acme", 100, 2, 10, resd.NoDeadline); err != nil {
		t.Fatal(err)
	}
	// Migrate the hot spot, then read Stats at v2: the answer must decode
	// with the v2 layout — migrations invisible, everything else intact.
	if _, err := svc.Rebalance(0); err != nil {
		t.Fatal(err)
	}
	if in := svc.Stats()[1].MigratedIn; in == 0 {
		t.Fatal("rebalance moved nothing; the layout test needs live migration counters")
	}
	stats := roundTrip(Request{ID: 2, Op: OpStats})
	if stats.Code != CodeOK || len(stats.Stats) != 2 {
		t.Fatalf("v2 Stats = %+v", stats)
	}
	for i, st := range stats.Stats {
		if st.MigratedIn != 0 || st.MigratedOut != 0 || st.SlackP99 != 0 {
			t.Fatalf("v2 answer leaked v3 fields on shard %d: %+v", i, st)
		}
	}
}

// TestV1ClientAgainstV2Server is the negotiation acceptance test: a
// hand-rolled v1 client — raw frames on a TCP connection, exactly what
// the pre-tenancy client emitted — drives a v2 server and must get
// v1-revision, v1-layout responses with working admissions, accounted to
// the default tenant.
func TestV1ClientAgainstV2Server(t *testing.T) {
	reg := mustRegistry(t, 1<<30, tenant.Spec{})
	addr, _ := startServer(t, resd.Config{Shards: 2, M: 8, Quotas: reg})
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	br := bufio.NewReader(nc)
	roundTrip := func(req Request) Response {
		t.Helper()
		req.Version = VersionV1
		frame, err := AppendRequest(nil, req)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := nc.Write(frame); err != nil {
			t.Fatal(err)
		}
		// Read the raw frame to inspect the version byte the way a v1
		// decoder would: anything but version 1 would make it hang up.
		payload, err := ReadFrame(br)
		if err != nil {
			t.Fatal(err)
		}
		if payload[2] != VersionV1 {
			t.Fatalf("server answered a v1 request at revision %d", payload[2])
		}
		resp, err := DecodeResponse(payload)
		if err != nil {
			t.Fatal(err)
		}
		if resp.ID != req.ID {
			t.Fatalf("response id %d for request %d", resp.ID, req.ID)
		}
		return resp
	}

	resv := roundTrip(Request{ID: 1, Op: OpReserve, Ready: 0, Procs: 4, Dur: 10, Deadline: resd.NoDeadline})
	if resv.Code != CodeOK || resv.Resv.Procs != 4 {
		t.Fatalf("v1 Reserve = %+v", resv)
	}
	// The admission landed on the default tenant's account.
	if u := reg.Usage(""); u.Used != 40 || u.Inflight != 1 {
		t.Fatalf("default tenant usage after v1 Reserve = %+v", u)
	}
	stats := roundTrip(Request{ID: 2, Op: OpStats})
	if stats.Code != CodeOK || len(stats.Stats) != 2 {
		t.Fatalf("v1 Stats = %+v", stats)
	}
	cancel := roundTrip(Request{ID: 3, Op: OpCancel, Resv: uint64(resv.Resv.ID)})
	if cancel.Code != CodeOK {
		t.Fatalf("v1 Cancel = %+v", cancel)
	}
	if u := reg.Usage(""); u.Used != 0 {
		t.Fatalf("default tenant usage after v1 Cancel = %+v", u)
	}
}

// TestV1NeverSeesQuotaCode pins the downgrade rule: a quota rejection
// answered at v1 must arrive as REJECTED_NEVER_FITS (a code a v1 reader
// knows, with load-shedding semantics), never as the v2-only
// REJECTED_QUOTA byte a v1 client would misread as an internal failure.
func TestV1NeverSeesQuotaCode(t *testing.T) {
	// Encoder-level: the downgrade happens wherever the frame is built.
	frame, err := AppendResponse(nil, Response{
		ID: 1, Op: OpReserve, Version: VersionV1, Code: CodeRejectedQuota, Detail: "tenant over budget",
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := ReadResponse(bufio.NewReader(bytes.NewReader(frame)))
	if err != nil {
		t.Fatal(err)
	}
	if got.Code != CodeNeverFits || got.Detail != "tenant over budget" {
		t.Fatalf("v1 quota rejection decoded as %v (%q), want CodeNeverFits", got.Code, got.Detail)
	}
	// A hostile v1 frame carrying the raw v2 code byte must fail the
	// frame instead of decoding into a code v1 never defined.
	hostile := bytes.Clone(frame)
	hostile[16] = byte(CodeRejectedQuota) // code byte: len(4)+header(12)
	if _, err := ReadResponse(bufio.NewReader(bytes.NewReader(hostile))); !errors.Is(err, ErrFrame) {
		t.Fatalf("v1 frame with code 7 err = %v, want ErrFrame", err)
	}

	// End to end: a v1 client whose default tenant is broke gets a
	// NeverFits-coded rejection from a hard-mode v2 server.
	reg := mustRegistry(t, 100, tenant.Spec{Tenants: []tenant.TenantSpec{{Name: tenant.DefaultTenant, Share: 0.01}}})
	addr, _ := startServer(t, resd.Config{M: 8, Quotas: reg})
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	req, err := AppendRequest(nil, Request{ID: 9, Op: OpReserve, Version: VersionV1, Ready: 0, Procs: 8, Dur: 10, Deadline: resd.NoDeadline})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nc.Write(req); err != nil {
		t.Fatal(err)
	}
	resp, err := ReadResponse(bufio.NewReader(nc))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Code != CodeNeverFits {
		t.Fatalf("v1 client saw code %v for a quota rejection, want CodeNeverFits", resp.Code)
	}
	// The v1 sentinel reconstruction stays within v1's error vocabulary.
	if !errors.Is(resp.Code.Err(resp.Detail), resd.ErrNeverFits) {
		t.Fatalf("reconstructed error %v, want resd.ErrNeverFits", resp.Code.Err(resp.Detail))
	}
}

// TestQuotaOpsOverWire drives the v2 quota surface end to end: tenant-
// attributed Reserve, QuotaGet, QuotaSet, and a hard-mode rejection whose
// REJECTED_QUOTA code reconstructs tenant.ErrQuota client-side.
func TestQuotaOpsOverWire(t *testing.T) {
	reg := mustRegistry(t, 800, tenant.Spec{Tenants: []tenant.TenantSpec{{Name: "acme", Share: 0.1}}})
	addr, _ := startServer(t, resd.Config{M: 8, Quotas: reg})
	c := dial(t, addr, Options{Conns: 1, Pipeline: true})

	if _, err := c.ReserveFor("acme", 0, 8, 10, resd.NoDeadline); err != nil {
		t.Fatal(err)
	}
	q, err := c.QuotaGet("acme")
	if err != nil {
		t.Fatal(err)
	}
	if q.Tenant != "acme" || q.Group != tenant.DefaultGroup || q.Used != 80 ||
		q.Budget != 80 || q.Capacity != 800 || q.Mode != tenant.Hard || q.Inflight != 1 {
		t.Fatalf("QuotaGet = %+v", q)
	}
	_, err = c.ReserveFor("acme", 0, 1, 1, resd.NoDeadline)
	if !errors.Is(err, tenant.ErrQuota) || !errors.Is(err, resd.ErrQuota) {
		t.Fatalf("over-budget remote err = %v, want ErrQuota via errors.Is", err)
	}
	// Re-budget over the wire and retry.
	if err := c.QuotaSet("acme", 0.5); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ReserveFor("acme", 0, 1, 100, resd.NoDeadline); err != nil {
		t.Fatalf("post-QuotaSet reserve: %v", err)
	}
	// An out-of-range share never leaves the client: the encoder enforces
	// the protocol's (0,1] share range.
	if err := c.QuotaSet("acme", 1.5); !errors.Is(err, ErrFrame) {
		t.Fatalf("bad share err = %v, want ErrFrame", err)
	}
}

func TestQuotaOpsWithoutRegistry(t *testing.T) {
	addr, _ := startServer(t, resd.Config{M: 8})
	c := dial(t, addr, Options{Conns: 1, Pipeline: false})
	if _, err := c.QuotaGet("acme"); !errors.Is(err, resd.ErrBadRequest) {
		t.Fatalf("QuotaGet on quota-less server err = %v, want resd.ErrBadRequest", err)
	}
	// Tenant-attributed Reserve still works: stats are kept, budgets just
	// never bind.
	if _, err := c.ReserveFor("acme", 0, 4, 10, resd.NoDeadline); err != nil {
		t.Fatal(err)
	}
}
