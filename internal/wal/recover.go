package wal

import (
	"errors"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// ReplayInfo describes what recovery found.
type ReplayInfo struct {
	// Records is how many log records were replayed (after the chosen
	// snapshot).
	Records int
	// Gens is how many log generations were read.
	Gens int
	// HasSnapshot reports whether a valid snapshot anchored the replay;
	// SnapshotGen is its generation.
	HasSnapshot bool
	SnapshotGen uint64
	// BadSnapshots counts snapshot files that failed validation and
	// were skipped in favour of an older generation.
	BadSnapshots int
	// Torn reports a truncated final frame in the newest generation —
	// the normal signature of a crash mid-write. TornBytes is how many
	// trailing bytes were dropped.
	Torn      bool
	TornBytes int64
	// Corrupt reports an invalid frame before the final generation's
	// tail: real damage, not a crash artifact. Replay keeps everything
	// before the bad frame and drops the rest (DroppedBytes, including
	// any later generations).
	Corrupt      bool
	DroppedBytes int64
}

// genFiles records which files exist for one generation.
type genFiles struct {
	gen     uint64
	hasLog  bool
	hasSnap bool
}

// listGens scans dir for one shard's files, sorted by ascending
// generation.
func listGens(dir string, shard int) ([]genFiles, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("wal: %w", err)
	}
	prefix := fmt.Sprintf("shard-%d.", shard)
	byGen := map[uint64]*genFiles{}
	for _, ent := range ents {
		name := ent.Name()
		if !strings.HasPrefix(name, prefix) {
			continue
		}
		rest := name[len(prefix):]
		var isLog bool
		switch {
		case strings.HasSuffix(rest, ".wal"):
			isLog = true
			rest = strings.TrimSuffix(rest, ".wal")
		case strings.HasSuffix(rest, ".snap"):
			rest = strings.TrimSuffix(rest, ".snap")
		default:
			continue
		}
		gen, err := strconv.ParseUint(rest, 10, 64)
		if err != nil {
			continue // not ours (e.g. a temp file)
		}
		g := byGen[gen]
		if g == nil {
			g = &genFiles{gen: gen}
			byGen[gen] = g
		}
		if isLog {
			g.hasLog = true
		} else {
			g.hasSnap = true
		}
	}
	out := make([]genFiles, 0, len(byGen))
	for _, g := range byGen {
		out = append(out, *g)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].gen < out[j].gen })
	return out, nil
}

// Recover reads one shard's durable state from dir: the newest valid
// snapshot (nil when none) and every log record after it, in append
// order. The caller replays the records onto the snapshot's state —
// the semantics live with the caller; this scanner only proves which
// bytes survived. A missing directory is an empty log, not an error.
func Recover(dir string, shard int) (*Snapshot, []Record, ReplayInfo, error) {
	var info ReplayInfo
	gens, err := listGens(dir, shard)
	if err != nil || len(gens) == 0 {
		return nil, nil, info, err
	}

	// Newest decodable snapshot wins; a bad one (crash mid-write before
	// the rename, or disk damage) falls back to the previous generation,
	// whose log files still exist because truncation happens only after
	// a snapshot is durable.
	var snap *Snapshot
	for i := len(gens) - 1; i >= 0 && snap == nil; i-- {
		if !gens[i].hasSnap {
			continue
		}
		raw, err := os.ReadFile(snapName(dir, shard, gens[i].gen))
		if err != nil {
			return nil, nil, info, fmt.Errorf("wal: %w", err)
		}
		s, err := decodeSnapshot(raw)
		if err != nil {
			info.BadSnapshots++
			continue
		}
		if s.Shard != shard || s.Gen != gens[i].gen {
			info.BadSnapshots++
			continue
		}
		snap = s
		info.HasSnapshot = true
		info.SnapshotGen = s.Gen
	}

	var recs []Record
	for i, g := range gens {
		if !g.hasLog || (snap != nil && g.gen < snap.Gen) {
			continue
		}
		raw, err := os.ReadFile(logName(dir, shard, g.gen))
		if err != nil {
			return nil, nil, info, fmt.Errorf("wal: %w", err)
		}
		info.Gens++
		off := 0
		for off < len(raw) {
			rec, n, err := decodeRecord(raw[off:])
			if err == nil {
				recs = append(recs, rec)
				info.Records++
				off += n
				continue
			}
			rest := int64(len(raw) - off)
			last := i == len(gens)-1
			if last && errors.Is(err, errShort) {
				// Crash mid-frame: the valid prefix is the durable truth.
				info.Torn = true
				info.TornBytes = rest
				return snap, recs, info, nil
			}
			// An invalid frame anywhere else is damage. Keep the records
			// proven good, drop the suspect suffix (this file's remainder
			// plus any later generations), and tell the caller.
			info.Corrupt = true
			info.DroppedBytes = rest
			for _, later := range gens[i+1:] {
				if later.hasLog {
					if fi, serr := os.Stat(logName(dir, shard, later.gen)); serr == nil {
						info.DroppedBytes += fi.Size()
					}
				}
			}
			return snap, recs, info, nil
		}
	}
	return snap, recs, info, nil
}
