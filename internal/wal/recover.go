package wal

import (
	"errors"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// ReplayInfo describes what recovery found.
type ReplayInfo struct {
	// Records is how many log records were replayed (after the chosen
	// snapshot).
	Records int
	// Gens is how many log generations were read.
	Gens int
	// HasSnapshot reports whether a valid snapshot anchored the replay;
	// SnapshotGen is its generation.
	HasSnapshot bool
	SnapshotGen uint64
	// BadSnapshots counts snapshot files that failed validation and
	// were skipped in favour of an older generation.
	BadSnapshots int
	// Torn reports a truncated final frame in the newest generation —
	// the normal signature of a crash mid-write (a cut frame, or a
	// zero-filled tail on filesystems that zero-extend on crash).
	// TornBytes is how many trailing bytes were dropped; Recover
	// truncated them off the file so they stay dropped.
	Torn      bool
	TornBytes int64
	// Corrupt reports an invalid frame before the final generation's
	// tail: real damage, not a crash artifact. Replay keeps everything
	// before the bad frame and drops the rest (DroppedBytes, including
	// any later generations, which Recover quarantined on disk).
	Corrupt      bool
	DroppedBytes int64
}

// genFiles records which files exist for one generation.
type genFiles struct {
	gen     uint64
	hasLog  bool
	hasSnap bool
}

// listGens scans dir for one shard's files, sorted by ascending
// generation.
func listGens(dir string, shard int) ([]genFiles, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("wal: %w", err)
	}
	prefix := fmt.Sprintf("shard-%d.", shard)
	byGen := map[uint64]*genFiles{}
	for _, ent := range ents {
		name := ent.Name()
		if !strings.HasPrefix(name, prefix) {
			continue
		}
		rest := name[len(prefix):]
		var isLog bool
		switch {
		case strings.HasSuffix(rest, ".wal"):
			isLog = true
			rest = strings.TrimSuffix(rest, ".wal")
		case strings.HasSuffix(rest, ".snap"):
			rest = strings.TrimSuffix(rest, ".snap")
		default:
			continue
		}
		gen, err := strconv.ParseUint(rest, 10, 64)
		if err != nil {
			continue // not ours (e.g. a temp file)
		}
		g := byGen[gen]
		if g == nil {
			g = &genFiles{gen: gen}
			byGen[gen] = g
		}
		if isLog {
			g.hasLog = true
		} else {
			g.hasSnap = true
		}
	}
	out := make([]genFiles, 0, len(byGen))
	for _, g := range byGen {
		out = append(out, *g)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].gen < out[j].gen })
	return out, nil
}

// Recover reads one shard's durable state from dir: the newest valid
// snapshot (nil when none) and every log record after it, in append
// order. The caller replays the records onto the snapshot's state —
// the semantics live with the caller. A missing directory is an empty
// log, not an error.
//
// Recover also repairs the directory so its verdict is durable: a torn
// tail is truncated off the file, and everything past a corrupt frame
// (the file's suffix, plus whole later generations) is truncated or
// quarantined under a ".corrupt" suffix. Without the repair the verdict
// would silently change on the next restart — a torn tail is a normal
// crash artifact only while its generation is the newest, so once Open
// starts a newer generation and fsync-acknowledges records there, a
// later recovery would reread the same torn tail as mid-log corruption
// and drop those acknowledged records.
func Recover(dir string, shard int) (*Snapshot, []Record, ReplayInfo, error) {
	var info ReplayInfo
	gens, err := listGens(dir, shard)
	if err != nil || len(gens) == 0 {
		return nil, nil, info, err
	}

	// Newest decodable snapshot wins; a bad one (crash mid-write before
	// the rename, or disk damage) falls back to the previous generation,
	// whose log files still exist because truncation happens only after
	// a snapshot is durable.
	var snap *Snapshot
	for i := len(gens) - 1; i >= 0 && snap == nil; i-- {
		if !gens[i].hasSnap {
			continue
		}
		raw, err := os.ReadFile(snapName(dir, shard, gens[i].gen))
		if err != nil {
			return nil, nil, info, fmt.Errorf("wal: %w", err)
		}
		s, err := decodeSnapshot(raw)
		if err != nil {
			info.BadSnapshots++
			continue
		}
		if s.Shard != shard || s.Gen != gens[i].gen {
			info.BadSnapshots++
			continue
		}
		snap = s
		info.HasSnapshot = true
		info.SnapshotGen = s.Gen
	}

	var recs []Record
	for i, g := range gens {
		if !g.hasLog || (snap != nil && g.gen < snap.Gen) {
			continue
		}
		raw, err := os.ReadFile(logName(dir, shard, g.gen))
		if err != nil {
			return nil, nil, info, fmt.Errorf("wal: %w", err)
		}
		info.Gens++
		off := 0
		for off < len(raw) {
			rec, n, err := decodeRecord(raw[off:])
			if err == nil {
				recs = append(recs, rec)
				info.Records++
				off += n
				continue
			}
			rest := int64(len(raw) - off)
			last := i == len(gens)-1
			if last && (errors.Is(err, errShort) || allZero(raw[off:])) {
				// Crash mid-frame (a cut frame, or a zero-filled tail from a
				// filesystem that zero-extends on crash): the valid prefix is
				// the durable truth. Truncate the tail off the file so the
				// verdict sticks — left in place, it would read as mid-log
				// corruption once a newer generation exists.
				info.Torn = true
				info.TornBytes = rest
				if rerr := truncateLog(logName(dir, shard, g.gen), int64(off)); rerr != nil {
					return nil, nil, info, rerr
				}
				return snap, recs, info, nil
			}
			// An invalid frame anywhere else is damage. Keep the records
			// proven good, drop the suspect suffix (this file's remainder
			// plus any later generations) and repair the directory to
			// match: truncate this file at the last good frame, quarantine
			// later generations so no future recovery can replay past the
			// damage into records this one rejected.
			info.Corrupt = true
			info.DroppedBytes = rest
			if rerr := truncateLog(logName(dir, shard, g.gen), int64(off)); rerr != nil {
				return nil, nil, info, rerr
			}
			for _, later := range gens[i+1:] {
				if later.hasLog {
					name := logName(dir, shard, later.gen)
					if fi, serr := os.Stat(name); serr == nil {
						info.DroppedBytes += fi.Size()
					}
					if rerr := quarantine(name); rerr != nil {
						return nil, nil, info, rerr
					}
				}
				// A snapshot this late can't be the chosen anchor (the
				// anchor's generation is at or before the corrupt one, or
				// this file failed validation): quarantine it too.
				if later.hasSnap {
					if rerr := quarantine(snapName(dir, shard, later.gen)); rerr != nil {
						return nil, nil, info, rerr
					}
				}
			}
			if rerr := syncDir(dir); rerr != nil {
				return nil, nil, info, rerr
			}
			return snap, recs, info, nil
		}
	}
	return snap, recs, info, nil
}

// allZero reports whether b is entirely zero bytes — the shape of a
// tail the filesystem zero-extended during a crash.
func allZero(b []byte) bool {
	for _, c := range b {
		if c != 0 {
			return false
		}
	}
	return true
}

// truncateLog durably cuts a log file at off, discarding a torn or
// corrupt suffix so later recoveries see only the proven-good prefix.
func truncateLog(path string, off int64) error {
	f, err := os.OpenFile(path, os.O_WRONLY, 0)
	if err != nil {
		return fmt.Errorf("wal: repair: %w", err)
	}
	defer f.Close()
	if err := f.Truncate(off); err != nil {
		return fmt.Errorf("wal: repair: %w", err)
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("wal: repair: %w", err)
	}
	return nil
}

// quarantine renames a damaged file out of the recovery set (listGens
// and Open ignore the suffix) while keeping its bytes for forensics.
func quarantine(path string) error {
	if err := os.Rename(path, path+".corrupt"); err != nil {
		return fmt.Errorf("wal: quarantine: %w", err)
	}
	return nil
}
