package wal

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
	"time"

	"repro/internal/flight"
	"repro/internal/obs"
)

// SyncMode selects the durability point of Commit.
type SyncMode string

const (
	// SyncBatch (the default) fsyncs once per Commit — one fsync per
	// group-committed batch turn, the durable configuration.
	SyncBatch SyncMode = "batch"
	// SyncNone flushes to the OS but never fsyncs: records survive a
	// process crash but not a machine crash. The cheap configuration,
	// and the one the overhead benchmark's ratio gate is held to
	// (fsync cost is the disk's, not the code's).
	SyncNone SyncMode = "none"
)

// Options parameterises a service's WAL.
type Options struct {
	// Dir is the log directory, created if missing. Required.
	Dir string
	// Sync is the Commit durability mode ("" = SyncBatch).
	Sync SyncMode
	// SnapEvery is how many appended records trigger a snapshot
	// rotation (0 disables snapshots; the log then grows unbounded and
	// recovery replays it in full).
	SnapEvery int
	// Journal, when non-nil, receives the log's lifecycle events
	// (rotations, snapshot completions) as flight-recorder entries.
	// All Journal methods are nil-safe, so the zero value costs a nil
	// check per event. resd sets this from its attached recorder.
	Journal *flight.Journal
}

// Normalize fills defaults and validates.
func (o Options) Normalize() (Options, error) {
	if o.Dir == "" {
		return o, fmt.Errorf("wal: Options.Dir is required")
	}
	if o.Sync == "" {
		o.Sync = SyncBatch
	}
	if o.Sync != SyncBatch && o.Sync != SyncNone {
		return o, fmt.Errorf("wal: unknown sync mode %q (want %q or %q)", o.Sync, SyncBatch, SyncNone)
	}
	if o.SnapEvery < 0 {
		return o, fmt.Errorf("wal: SnapEvery=%d, need >= 0", o.SnapEvery)
	}
	return o, nil
}

func logName(dir string, shard int, gen uint64) string {
	return filepath.Join(dir, fmt.Sprintf("shard-%d.%d.wal", shard, gen))
}

func snapName(dir string, shard int, gen uint64) string {
	return filepath.Join(dir, fmt.Sprintf("shard-%d.%d.snap", shard, gen))
}

// Log is one shard's append side of the WAL. Append, Commit, Rotate
// and Close belong to a single writer (the shard's event loop);
// WriteSnapshot may run on another goroutine (the snapshot writer),
// and the Stats/telemetry accessors are safe from anywhere.
type Log struct {
	dir   string
	shard int
	sync  bool

	f     *os.File
	w     *bufio.Writer
	buf   []byte // frame scratch, reused across Appends
	dirty bool   // records appended since the last Commit
	since int    // records appended since the last snapshot rotation

	gen     atomic.Uint64
	bytes   atomic.Uint64
	records atomic.Uint64
	fsyncs  atomic.Uint64
	snaps   atomic.Uint64
	// lastSnap is when the newest snapshot became durable (Open time
	// until then), unix nanoseconds: the snapshot-age metric's anchor.
	lastSnap atomic.Int64
	fsyncNs  obs.Histogram

	// journal receives lifecycle events (nil-safe; see Options.Journal).
	journal *flight.Journal
}

// Open creates the next log generation for shard in o.Dir (one past
// the newest existing generation, so prior state stays replayable) and
// returns the append handle. The caller recovers prior generations
// with Recover before Open; Open itself never reads them.
func Open(shard int, o Options) (*Log, error) {
	o, err := o.Normalize()
	if err != nil {
		return nil, err
	}
	if err := os.MkdirAll(o.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	gens, err := listGens(o.Dir, shard)
	if err != nil {
		return nil, err
	}
	var gen uint64
	if n := len(gens); n > 0 {
		gen = gens[n-1].gen + 1
	}
	f, err := os.OpenFile(logName(o.Dir, shard, gen), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	if err := syncDir(o.Dir); err != nil {
		f.Close()
		return nil, err
	}
	l := &Log{
		dir:     o.Dir,
		shard:   shard,
		sync:    o.Sync == SyncBatch,
		f:       f,
		w:       bufio.NewWriterSize(f, 64<<10),
		journal: o.Journal,
	}
	l.gen.Store(gen)
	l.lastSnap.Store(time.Now().UnixNano())
	return l, nil
}

// Append buffers one record. It becomes durable at the next Commit.
func (l *Log) Append(r Record) error {
	l.buf = AppendRecord(l.buf[:0], r)
	if _, err := l.w.Write(l.buf); err != nil {
		return fmt.Errorf("wal: append: %w", err)
	}
	l.bytes.Add(uint64(len(l.buf)))
	l.records.Add(1)
	l.since++
	l.dirty = true
	return nil
}

// Commit makes every appended record durable (flush, then fsync under
// SyncBatch): the group-commit point, called once per batch turn. A
// Commit with nothing appended is free.
func (l *Log) Commit() error {
	if !l.dirty {
		return nil
	}
	if err := l.w.Flush(); err != nil {
		return fmt.Errorf("wal: flush: %w", err)
	}
	if l.sync {
		t := time.Now()
		if err := l.f.Sync(); err != nil {
			return fmt.Errorf("wal: fsync: %w", err)
		}
		l.fsyncNs.Observe(time.Since(t).Nanoseconds())
		l.fsyncs.Add(1)
	}
	l.dirty = false
	return nil
}

// SinceSnapshot reports how many records have been appended since the
// last snapshot rotation — the loop's snapshot trigger.
func (l *Log) SinceSnapshot() int { return l.since }

// Rotate commits the current generation and switches appends to a new
// one, returning the new generation number for the snapshot that
// should describe its starting state. Called by the log's writer; the
// snapshot itself is then written off-loop with WriteSnapshot.
func (l *Log) Rotate() (uint64, error) {
	if err := l.Commit(); err != nil {
		return 0, err
	}
	gen := l.gen.Load() + 1
	f, err := os.OpenFile(logName(l.dir, l.shard, gen), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return 0, fmt.Errorf("wal: rotate: %w", err)
	}
	if err := syncDir(l.dir); err != nil {
		f.Close()
		return 0, err
	}
	l.f.Close()
	l.f = f
	l.w.Reset(f)
	l.gen.Store(gen)
	l.since = 0
	l.journal.Record(flight.Info, "wal", l.shard, "log rotated",
		flight.KV{K: "gen", V: fmt.Sprint(gen)})
	return gen, nil
}

// WriteSnapshot durably writes s (for generation s.Gen) and then
// deletes every older generation's files — the log truncation. Safe to
// call off the writer goroutine: it only touches the snapshot file and
// already-rotated-away generations.
func (l *Log) WriteSnapshot(s *Snapshot) error {
	if s.Shard != l.shard {
		return fmt.Errorf("wal: snapshot for shard %d written to shard %d's log", s.Shard, l.shard)
	}
	tmp, err := os.CreateTemp(l.dir, fmt.Sprintf(".shard-%d.snap-*", l.shard))
	if err != nil {
		return fmt.Errorf("wal: snapshot: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after the rename
	enc := encodeSnapshot(s)
	if _, err := tmp.Write(enc); err != nil {
		tmp.Close()
		return fmt.Errorf("wal: snapshot: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("wal: snapshot: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("wal: snapshot: %w", err)
	}
	if err := os.Rename(tmp.Name(), snapName(l.dir, l.shard, s.Gen)); err != nil {
		return fmt.Errorf("wal: snapshot: %w", err)
	}
	if err := syncDir(l.dir); err != nil {
		return err
	}
	// The snapshot is durable: generations before it are dead weight.
	gens, err := listGens(l.dir, l.shard)
	if err != nil {
		return err
	}
	for _, g := range gens {
		if g.gen >= s.Gen {
			continue
		}
		if g.hasLog {
			os.Remove(logName(l.dir, l.shard, g.gen))
		}
		if g.hasSnap {
			os.Remove(snapName(l.dir, l.shard, g.gen))
		}
	}
	l.snaps.Add(1)
	l.lastSnap.Store(time.Now().UnixNano())
	l.journal.Record(flight.Info, "wal", l.shard, "snapshot written",
		flight.KV{K: "gen", V: fmt.Sprint(s.Gen)},
		flight.KV{K: "live", V: fmt.Sprint(len(s.Live))})
	return nil
}

// Close commits and closes the current generation.
func (l *Log) Close() error {
	err := l.Commit()
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// Stats is the log's published telemetry.
type Stats struct {
	// Gen is the generation currently being appended to.
	Gen uint64
	// Bytes and Records count appends since Open.
	Bytes, Records uint64
	// Fsyncs counts Commit-driven fsyncs (0 under SyncNone).
	Fsyncs uint64
	// Snapshots counts completed snapshot writes.
	Snapshots uint64
	// LastSnapshot is when the newest snapshot became durable (Open
	// time if none yet), unix nanoseconds.
	LastSnapshot int64
}

// Stats reads the published telemetry (safe from any goroutine).
func (l *Log) Stats() Stats {
	return Stats{
		Gen:          l.gen.Load(),
		Bytes:        l.bytes.Load(),
		Records:      l.records.Load(),
		Fsyncs:       l.fsyncs.Load(),
		Snapshots:    l.snaps.Load(),
		LastSnapshot: l.lastSnap.Load(),
	}
}

// FsyncQuantile reports the q-quantile of observed fsync latency in
// nanoseconds (0 when no fsync has run).
func (l *Log) FsyncQuantile(q float64) int64 { return l.fsyncNs.Quantile(q) }

// FsyncCount reports how many fsync latencies have been observed.
func (l *Log) FsyncCount() uint64 { return l.fsyncNs.Count() }

// syncDir fsyncs a directory so renames and creates in it are durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("wal: sync %s: %w", dir, err)
	}
	return nil
}
