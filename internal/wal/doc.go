// Package wal is the durability layer under internal/resd: an
// append-only, CRC-framed, per-shard log of admission-affecting
// decisions, group-committed with the shard's batch turn so one fsync
// covers a whole batch, plus periodic snapshots that truncate the log
// and a recovery scanner that rebuilds the pre-crash record stream.
//
// The package is deliberately mechanism, not policy: it knows how to
// frame, sync, rotate, snapshot and re-read records, while the meaning
// of each record — how an admit changes a capacity index, when a
// pending migrate-in commits — lives with the service that owns the
// state (internal/resd). That keeps the format free of resd types and
// testable in isolation.
//
// # File layout
//
// Every shard owns a generation-numbered family of files in the WAL
// directory:
//
//	shard-<shard>.<gen>.wal    log segment (append-only records)
//	shard-<shard>.<gen>.snap   snapshot of the state at gen's start
//
// Generations increase monotonically. A snapshot at generation G
// captures the effect of every record in generations < G, so recovery
// is: load the newest valid snapshot (gen G), then replay every log
// segment with gen >= G in ascending order. Segments older than a
// durable snapshot are deleted by the snapshot writer.
//
// Rotation order makes non-final segments complete by construction:
// the current segment is flushed and fsynced before the next
// generation's file is created. An invalid frame in the final segment
// is therefore a torn tail (crash mid-write — a cut frame or an
// all-zero tail from a zero-extending filesystem, ReplayInfo.Torn) and
// the valid prefix is kept; an invalid frame in an earlier segment is
// real corruption (ReplayInfo.Corrupt) and replay stops there rather
// than guessing at the suffix.
//
// Recovery repairs what it judges: a torn tail is truncated off the
// segment, and past a corrupt frame the segment is truncated at the
// last good record with later segments quarantined under a ".corrupt"
// suffix. The repair is what makes the torn/corrupt distinction stable
// across restarts — a torn tail left on disk would stop being "the
// final segment's tail" as soon as the reopened log appends a newer
// generation, and the next recovery would then misread it as mid-log
// corruption and drop the acknowledged records that followed it.
//
// # Record framing
//
// Each record is one length-prefixed, checksummed frame:
//
//	uint32  payload length (little endian)
//	uint32  CRC-32 (IEEE) of the payload (little endian)
//	payload
//
// The payload starts with a one-byte record type and the reservation
// ID as a uvarint, followed by type-specific fields (varint/uvarint
// encoded, strings length-prefixed):
//
//	admit           (1)  tenant, ready, procs, dur, deadline, start
//	cancel          (2)  —
//	migrate-in      (3)  peer (source shard), start, dur, procs, tenant
//	migrate-out     (4)  peer (target shard)
//	migrate-commit  (5)  —
//	migrate-abort   (6)  —
//	migrate-out-ack (7)  —
//
// The admit payload's tenant/ready/procs/dur/deadline fields are the
// canonical serialization of resd.Request — the unified admission
// argument — followed by the decision (the assigned start time).
//
// # Two-phase moves in the log
//
// A migration writes to both shards' logs: migrate-in (pending copy
// held) on the target, then migrate-out on the source, then
// migrate-commit on the target, and finally migrate-out-ack back on
// the source. The ack closes the source's "open out" — the durable
// marker that distinguishes "the source released this reservation to
// shard T" from "the reservation was cancelled" after snapshots have
// truncated the raw history (snapshots persist the open-out set).
// Recovery resolves a pending migrate-in to commit exactly when the
// source's recovered open-out names the target, and to abort
// otherwise; a crash at any point between the phases therefore lands
// on commit-or-abort, never a duplicate and never a lost reservation.
//
// # Snapshot format
//
// A snapshot file is a single checksummed blob:
//
//	uint32  magic "RSNP" (0x504e5352 little endian)
//	uint8   version (1)
//	uvarint shard, gen, nextSeq
//	uvarint admitted, cancelled, migratedIn, migratedOut (counters)
//	books:    uvarint count, then per book: tenant, active, area,
//	          admitted, cancelled, rejectedQuota, migratedIn, migratedOut
//	live:     uvarint count, then per entry: id, start, dur, procs,
//	          pending, from (peer shard when pending), tenant
//	openOuts: uvarint count, then per entry: id, to
//	uint32  CRC-32 (IEEE) of everything above (little endian)
//
// Snapshots are written to a temporary file, fsynced, renamed into
// place and the directory fsynced, so a crash mid-snapshot leaves
// either the previous snapshot or a complete new one — never a
// half-written file that recovery could mistake for state.
package wal
