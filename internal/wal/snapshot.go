package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sort"
)

// snapMagic opens every snapshot file ("RSNP", little endian).
const snapMagic = 0x504e5352

// snapVersion is the current snapshot encoding version.
const snapVersion = 1

// TenantBook is one tenant's cumulative per-shard ledger, persisted so
// TenantStats survives a restart.
type TenantBook struct {
	Tenant                             string
	Active                             int64
	Area                               int64
	Admitted, Cancelled, RejectedQuota uint64
	MigratedIn, MigratedOut            uint64
}

// Live is one admitted reservation in a snapshot. Pending marks a
// tentative migrated-in copy whose two-phase move had not resolved at
// snapshot time; From names the move's source shard.
type Live struct {
	ID         uint64
	Start, Dur int64
	Procs      int
	Tenant     string
	Pending    bool
	From       uint32
}

// OpenOut is an unacknowledged migrate-out: the shard durably released
// ID to shard To, and has not yet heard that the target committed.
type OpenOut struct {
	ID uint64
	To uint32
}

// Snapshot is one shard's full durable state at a generation boundary:
// replaying it plus every log generation >= Gen reproduces the shard.
type Snapshot struct {
	Shard   int
	Gen     uint64
	NextSeq uint64
	// Shard-lifetime operation counters (the process-local rejection
	// counters are deliberately not persisted; see resd's doc.go).
	Admitted, Cancelled, MigratedIn, MigratedOut uint64
	Books                                        []TenantBook
	Live                                         []Live
	OpenOuts                                     []OpenOut
}

// encodeSnapshot renders s to its on-disk form (sorted, checksummed).
func encodeSnapshot(s *Snapshot) []byte {
	sort.Slice(s.Books, func(i, j int) bool { return s.Books[i].Tenant < s.Books[j].Tenant })
	sort.Slice(s.Live, func(i, j int) bool { return s.Live[i].ID < s.Live[j].ID })
	sort.Slice(s.OpenOuts, func(i, j int) bool { return s.OpenOuts[i].ID < s.OpenOuts[j].ID })

	b := make([]byte, 0, 64+len(s.Live)*24+len(s.Books)*48)
	b = binary.LittleEndian.AppendUint32(b, snapMagic)
	b = append(b, snapVersion)
	b = appendUvarint(b, uint64(s.Shard))
	b = appendUvarint(b, s.Gen)
	b = appendUvarint(b, s.NextSeq)
	b = appendUvarint(b, s.Admitted)
	b = appendUvarint(b, s.Cancelled)
	b = appendUvarint(b, s.MigratedIn)
	b = appendUvarint(b, s.MigratedOut)
	b = appendUvarint(b, uint64(len(s.Books)))
	for _, bk := range s.Books {
		b = appendString(b, bk.Tenant)
		b = appendVarint(b, bk.Active)
		b = appendVarint(b, bk.Area)
		b = appendUvarint(b, bk.Admitted)
		b = appendUvarint(b, bk.Cancelled)
		b = appendUvarint(b, bk.RejectedQuota)
		b = appendUvarint(b, bk.MigratedIn)
		b = appendUvarint(b, bk.MigratedOut)
	}
	b = appendUvarint(b, uint64(len(s.Live)))
	for _, lv := range s.Live {
		b = appendUvarint(b, lv.ID)
		b = appendVarint(b, lv.Start)
		b = appendVarint(b, lv.Dur)
		b = appendUvarint(b, uint64(lv.Procs))
		pending := byte(0)
		if lv.Pending {
			pending = 1
		}
		b = append(b, pending)
		b = appendUvarint(b, uint64(lv.From))
		b = appendString(b, lv.Tenant)
	}
	b = appendUvarint(b, uint64(len(s.OpenOuts)))
	for _, oo := range s.OpenOuts {
		b = appendUvarint(b, oo.ID)
		b = appendUvarint(b, uint64(oo.To))
	}
	return binary.LittleEndian.AppendUint32(b, crc32.ChecksumIEEE(b))
}

// decodeSnapshot parses and verifies one snapshot blob.
func decodeSnapshot(b []byte) (*Snapshot, error) {
	if len(b) < 4+1+4 {
		return nil, fmt.Errorf("%w: snapshot truncated (%d bytes)", ErrCorrupt, len(b))
	}
	body, tail := b[:len(b)-4], b[len(b)-4:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(tail) {
		return nil, fmt.Errorf("%w: snapshot CRC mismatch", ErrCorrupt)
	}
	if binary.LittleEndian.Uint32(body) != snapMagic {
		return nil, fmt.Errorf("%w: snapshot magic %#x", ErrCorrupt, binary.LittleEndian.Uint32(body))
	}
	p := &payloadReader{b: body[4:]}
	if v := p.byte("version"); v != snapVersion && p.err == nil {
		return nil, fmt.Errorf("%w: snapshot version %d (want %d)", ErrCorrupt, v, snapVersion)
	}
	s := &Snapshot{}
	s.Shard = int(p.uvarint("shard"))
	s.Gen = p.uvarint("gen")
	s.NextSeq = p.uvarint("nextSeq")
	s.Admitted = p.uvarint("admitted")
	s.Cancelled = p.uvarint("cancelled")
	s.MigratedIn = p.uvarint("migratedIn")
	s.MigratedOut = p.uvarint("migratedOut")
	nBooks := p.uvarint("books count")
	if p.err == nil && nBooks > uint64(len(p.b)) { // each book is >= 1 byte
		return nil, fmt.Errorf("%w: %d books in %d bytes", ErrCorrupt, nBooks, len(p.b))
	}
	for i := uint64(0); i < nBooks && p.err == nil; i++ {
		var bk TenantBook
		bk.Tenant = p.str("book tenant")
		bk.Active = p.varint("book active")
		bk.Area = p.varint("book area")
		bk.Admitted = p.uvarint("book admitted")
		bk.Cancelled = p.uvarint("book cancelled")
		bk.RejectedQuota = p.uvarint("book rejectedQuota")
		bk.MigratedIn = p.uvarint("book migratedIn")
		bk.MigratedOut = p.uvarint("book migratedOut")
		s.Books = append(s.Books, bk)
	}
	nLive := p.uvarint("live count")
	if p.err == nil && nLive > uint64(len(p.b)) {
		return nil, fmt.Errorf("%w: %d live entries in %d bytes", ErrCorrupt, nLive, len(p.b))
	}
	for i := uint64(0); i < nLive && p.err == nil; i++ {
		var lv Live
		lv.ID = p.uvarint("live id")
		lv.Start = p.varint("live start")
		lv.Dur = p.varint("live dur")
		lv.Procs = int(p.uvarint("live procs"))
		lv.Pending = p.byte("live pending") != 0
		lv.From = uint32(p.uvarint("live from"))
		lv.Tenant = p.str("live tenant")
		s.Live = append(s.Live, lv)
	}
	nOut := p.uvarint("openOuts count")
	if p.err == nil && nOut > uint64(len(p.b)) {
		return nil, fmt.Errorf("%w: %d open outs in %d bytes", ErrCorrupt, nOut, len(p.b))
	}
	for i := uint64(0); i < nOut && p.err == nil; i++ {
		var oo OpenOut
		oo.ID = p.uvarint("openOut id")
		oo.To = uint32(p.uvarint("openOut to"))
		s.OpenOuts = append(s.OpenOuts, oo)
	}
	if err := p.done("snapshot"); err != nil {
		return nil, err
	}
	return s, nil
}
