package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Type discriminates log records. The values are the on-disk encoding
// and must never be renumbered.
type Type uint8

const (
	// TAdmit records one admission: the canonical serialization of the
	// resd.Request that was admitted, plus the assigned ID and start.
	TAdmit Type = 1
	// TCancel records the release of an admitted reservation.
	TCancel Type = 2
	// TMigrateIn records a tentative migrated-in copy (two-phase move,
	// target side): capacity held, invisible until TMigrateCommit.
	TMigrateIn Type = 3
	// TMigrateOut records the source releasing a migrating reservation
	// to the peer shard. It opens the source's "open out" for the ID.
	TMigrateOut Type = 4
	// TMigrateCommit finalises a pending migrate-in on the target.
	TMigrateCommit Type = 5
	// TMigrateAbort rolls a pending migrate-in back on the target.
	TMigrateAbort Type = 6
	// TMigrateOutAck closes the source's open out after the target
	// committed — pure recovery bookkeeping, no capacity effect.
	TMigrateOutAck Type = 7
)

func (t Type) String() string {
	switch t {
	case TAdmit:
		return "admit"
	case TCancel:
		return "cancel"
	case TMigrateIn:
		return "migrate-in"
	case TMigrateOut:
		return "migrate-out"
	case TMigrateCommit:
		return "migrate-commit"
	case TMigrateAbort:
		return "migrate-abort"
	case TMigrateOutAck:
		return "migrate-out-ack"
	default:
		return fmt.Sprintf("wal.Type(%d)", uint8(t))
	}
}

// Record is one logged decision. Which fields are meaningful depends on
// Type (see the package documentation's record table); the rest stay
// zero and are not encoded.
type Record struct {
	Type Type
	// ID is the service-wide reservation identity.
	ID uint64
	// Peer is the other shard of a two-phase move: the source for
	// TMigrateIn, the target for TMigrateOut.
	Peer uint32
	// Start is the admitted (or migrated-to) start time.
	Start int64
	// Ready, Dur, Deadline and Procs echo the admission request
	// (TAdmit; TMigrateIn carries Dur and Procs).
	Ready, Dur, Deadline int64
	Procs                int
	// Tenant is the accounting identity (TAdmit, TMigrateIn).
	Tenant string
}

// Framing and decoding errors.
var (
	// ErrCorrupt reports a frame that is structurally present but
	// invalid: CRC mismatch, impossible length, or a malformed payload.
	ErrCorrupt = errors.New("wal: corrupt record")
	// errShort reports a frame cut off mid-write — the torn-tail signal
	// recovery treats as the crash point, not as corruption. Internal:
	// Recover folds it into ReplayInfo.
	errShort = errors.New("wal: short frame")
)

// maxPayload bounds a single record payload. The largest legal record
// is an admit with a 255-byte tenant name — well under this; anything
// bigger is corruption, not data.
const maxPayload = 1 << 16

// frameHeader is the fixed prefix of every frame: payload length and
// payload CRC, both little-endian uint32.
const frameHeader = 8

// appendUvarint / appendVarint wrap binary's appenders for symmetry.
func appendUvarint(b []byte, v uint64) []byte { return binary.AppendUvarint(b, v) }
func appendVarint(b []byte, v int64) []byte   { return binary.AppendVarint(b, v) }

func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// AppendRecord appends r's framed encoding to buf and returns the
// extended slice.
func AppendRecord(buf []byte, r Record) []byte {
	head := len(buf)
	buf = append(buf, 0, 0, 0, 0, 0, 0, 0, 0) // frame header placeholder
	buf = append(buf, byte(r.Type))
	buf = appendUvarint(buf, r.ID)
	switch r.Type {
	case TAdmit:
		buf = appendString(buf, r.Tenant)
		buf = appendVarint(buf, r.Ready)
		buf = appendUvarint(buf, uint64(r.Procs))
		buf = appendVarint(buf, r.Dur)
		buf = appendVarint(buf, r.Deadline)
		buf = appendVarint(buf, r.Start)
	case TMigrateIn:
		buf = appendUvarint(buf, uint64(r.Peer))
		buf = appendVarint(buf, r.Start)
		buf = appendVarint(buf, r.Dur)
		buf = appendUvarint(buf, uint64(r.Procs))
		buf = appendString(buf, r.Tenant)
	case TMigrateOut:
		buf = appendUvarint(buf, uint64(r.Peer))
	case TCancel, TMigrateCommit, TMigrateAbort, TMigrateOutAck:
		// ID only.
	}
	payload := buf[head+frameHeader:]
	binary.LittleEndian.PutUint32(buf[head:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[head+4:], crc32.ChecksumIEEE(payload))
	return buf
}

// decodeRecord reads one frame from b. It returns the record, the
// number of bytes consumed, and an error: errShort when b ends before
// the frame does (torn tail), ErrCorrupt when the frame is invalid.
func decodeRecord(b []byte) (Record, int, error) {
	if len(b) < frameHeader {
		return Record{}, 0, errShort
	}
	n := binary.LittleEndian.Uint32(b)
	sum := binary.LittleEndian.Uint32(b[4:])
	if n == 0 || n > maxPayload {
		return Record{}, 0, fmt.Errorf("%w: payload length %d", ErrCorrupt, n)
	}
	if len(b) < frameHeader+int(n) {
		return Record{}, 0, errShort
	}
	payload := b[frameHeader : frameHeader+int(n)]
	if crc32.ChecksumIEEE(payload) != sum {
		return Record{}, 0, fmt.Errorf("%w: CRC mismatch", ErrCorrupt)
	}
	r, err := decodePayload(payload)
	if err != nil {
		return Record{}, 0, err
	}
	return r, frameHeader + int(n), nil
}

// payloadReader walks a checksummed payload; any decoding error poisons
// the rest so callers check once at the end.
type payloadReader struct {
	b   []byte
	err error
}

func (p *payloadReader) fail(what string) {
	if p.err == nil {
		p.err = fmt.Errorf("%w: bad %s", ErrCorrupt, what)
	}
}

func (p *payloadReader) byte(what string) byte {
	if p.err != nil {
		return 0
	}
	if len(p.b) == 0 {
		p.fail(what)
		return 0
	}
	v := p.b[0]
	p.b = p.b[1:]
	return v
}

func (p *payloadReader) uvarint(what string) uint64 {
	if p.err != nil {
		return 0
	}
	v, n := binary.Uvarint(p.b)
	if n <= 0 {
		p.fail(what)
		return 0
	}
	p.b = p.b[n:]
	return v
}

func (p *payloadReader) varint(what string) int64 {
	if p.err != nil {
		return 0
	}
	v, n := binary.Varint(p.b)
	if n <= 0 {
		p.fail(what)
		return 0
	}
	p.b = p.b[n:]
	return v
}

func (p *payloadReader) str(what string) string {
	n := p.uvarint(what)
	if p.err != nil {
		return ""
	}
	if n > uint64(len(p.b)) {
		p.fail(what)
		return ""
	}
	v := string(p.b[:n])
	p.b = p.b[n:]
	return v
}

func (p *payloadReader) done(what string) error {
	if p.err != nil {
		return p.err
	}
	if len(p.b) != 0 {
		return fmt.Errorf("%w: %d trailing bytes in %s", ErrCorrupt, len(p.b), what)
	}
	return nil
}

func decodePayload(payload []byte) (Record, error) {
	p := &payloadReader{b: payload}
	var r Record
	r.Type = Type(p.byte("type"))
	r.ID = p.uvarint("id")
	switch r.Type {
	case TAdmit:
		r.Tenant = p.str("tenant")
		r.Ready = p.varint("ready")
		r.Procs = int(p.uvarint("procs"))
		r.Dur = p.varint("dur")
		r.Deadline = p.varint("deadline")
		r.Start = p.varint("start")
	case TMigrateIn:
		r.Peer = uint32(p.uvarint("peer"))
		r.Start = p.varint("start")
		r.Dur = p.varint("dur")
		r.Procs = int(p.uvarint("procs"))
		r.Tenant = p.str("tenant")
	case TMigrateOut:
		r.Peer = uint32(p.uvarint("peer"))
	case TCancel, TMigrateCommit, TMigrateAbort, TMigrateOutAck:
	default:
		return Record{}, fmt.Errorf("%w: unknown record type %d", ErrCorrupt, r.Type)
	}
	return r, p.done(r.Type.String())
}
