package wal

import (
	"errors"
	"os"
	"reflect"
	"testing"
)

// sampleRecords is one of every record type, with every meaningful
// field populated (negative times included: the varint coding's sign
// path is part of the format).
func sampleRecords() []Record {
	return []Record{
		{Type: TAdmit, ID: 0x70001, Tenant: "acme", Ready: -3, Procs: 8, Dur: 40, Deadline: 1 << 40, Start: 150},
		{Type: TAdmit, ID: 0x70002, Tenant: "", Ready: 0, Procs: 1, Dur: 1, Deadline: 0, Start: 0},
		{Type: TCancel, ID: 0x70001},
		{Type: TMigrateIn, ID: 0x30005, Peer: 3, Start: 99, Dur: 12, Procs: 2, Tenant: "zeta"},
		{Type: TMigrateOut, ID: 0x30005, Peer: 1},
		{Type: TMigrateCommit, ID: 0x30005},
		{Type: TMigrateAbort, ID: 0x30006},
		{Type: TMigrateOutAck, ID: 0x30005},
	}
}

func TestRecordRoundtrip(t *testing.T) {
	var buf []byte
	recs := sampleRecords()
	for _, r := range recs {
		buf = AppendRecord(buf, r)
	}
	off := 0
	for i, want := range recs {
		got, n, err := decodeRecord(buf[off:])
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("record %d roundtrip: got %+v, want %+v", i, got, want)
		}
		off += n
	}
	if off != len(buf) {
		t.Fatalf("decoded %d of %d bytes", off, len(buf))
	}
}

func TestRecordDamage(t *testing.T) {
	frame := AppendRecord(nil, sampleRecords()[0])
	// Any single flipped payload byte must fail the CRC.
	for i := frameHeader; i < len(frame); i++ {
		bad := append([]byte(nil), frame...)
		bad[i] ^= 0x40
		if _, _, err := decodeRecord(bad); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("flip at %d: err = %v, want ErrCorrupt", i, err)
		}
	}
	// Any truncation is a short frame — the torn-tail signal, never
	// corruption.
	for n := 0; n < len(frame); n++ {
		if _, _, err := decodeRecord(frame[:n]); !errors.Is(err, errShort) {
			t.Fatalf("truncated to %d: err = %v, want errShort", n, err)
		}
	}
	// A zero or absurd length field is structural corruption.
	zero := append([]byte(nil), frame...)
	zero[0], zero[1], zero[2], zero[3] = 0, 0, 0, 0
	if _, _, err := decodeRecord(zero); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("zero length: err = %v, want ErrCorrupt", err)
	}
}

func TestSnapshotRoundtrip(t *testing.T) {
	s := &Snapshot{
		Shard: 2, Gen: 7, NextSeq: 41,
		Admitted: 100, Cancelled: 40, MigratedIn: 3, MigratedOut: 5,
		Books: []TenantBook{
			{Tenant: "a", Active: 2, Area: 200, Admitted: 10, Cancelled: 8, RejectedQuota: 1, MigratedIn: 2, MigratedOut: 1},
			{Tenant: "b", Active: 1, Area: 50, Admitted: 5, Cancelled: 4},
		},
		Live: []Live{
			{ID: 0x20001, Start: 10, Dur: 20, Procs: 4, Tenant: "a"},
			{ID: 0x20002, Start: 30, Dur: 5, Procs: 1, Tenant: "b", Pending: true, From: 3},
		},
		OpenOuts: []OpenOut{{ID: 0x20009, To: 1}},
	}
	enc := encodeSnapshot(s)
	got, err := decodeSnapshot(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, s) {
		t.Fatalf("roundtrip:\n got %+v\nwant %+v", got, s)
	}
	for i := range enc {
		bad := append([]byte(nil), enc...)
		bad[i] ^= 0x10
		if _, err := decodeSnapshot(bad); err == nil {
			t.Fatalf("flip at %d decoded cleanly", i)
		}
	}
	for n := 0; n < len(enc); n++ {
		if _, err := decodeSnapshot(enc[:n]); err == nil {
			t.Fatalf("truncation to %d decoded cleanly", n)
		}
	}
}

// writeLog appends framed records straight to one generation's file,
// bypassing Log — the tests' way of fabricating crash states.
func writeLog(t *testing.T, dir string, shard int, gen uint64, raw []byte) {
	t.Helper()
	if err := os.WriteFile(logName(dir, shard, gen), raw, 0o644); err != nil {
		t.Fatal(err)
	}
}

func frames(recs ...Record) []byte {
	var buf []byte
	for _, r := range recs {
		buf = AppendRecord(buf, r)
	}
	return buf
}

func TestLogAppendRecover(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(0, Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	recs := sampleRecords()
	for _, r := range recs {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	snap, got, info, err := Recover(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if snap != nil {
		t.Fatalf("unexpected snapshot %+v", snap)
	}
	if !reflect.DeepEqual(got, recs) {
		t.Fatalf("recovered %+v, want %+v", got, recs)
	}
	if info.Torn || info.Corrupt || info.Records != len(recs) {
		t.Fatalf("info = %+v", info)
	}
}

func TestRecoverEmptyAndMissingDir(t *testing.T) {
	snap, recs, info, err := Recover(t.TempDir()+"/nonexistent", 3)
	if err != nil || snap != nil || recs != nil {
		t.Fatalf("missing dir: %v %v %v", snap, recs, err)
	}
	if info != (ReplayInfo{}) {
		t.Fatalf("missing dir info = %+v", info)
	}
}

func TestTornTailKeepsPrefix(t *testing.T) {
	dir := t.TempDir()
	recs := sampleRecords()
	raw := frames(recs...)
	// Cut the final frame in half: the crash signature.
	lastLen := len(frames(recs[len(recs)-1]))
	cut := raw[:len(raw)-lastLen/2]
	writeLog(t, dir, 0, 1, cut)
	snap, got, info, err := Recover(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if snap != nil {
		t.Fatalf("unexpected snapshot")
	}
	if want := recs[:len(recs)-1]; !reflect.DeepEqual(got, want) {
		t.Fatalf("recovered %d records, want the %d-record prefix", len(got), len(want))
	}
	if !info.Torn || info.Corrupt {
		t.Fatalf("info = %+v, want Torn and not Corrupt", info)
	}
	if wantDropped := int64(len(cut) - len(frames(recs[:len(recs)-1]...))); info.TornBytes != wantDropped {
		t.Fatalf("TornBytes = %d, want %d", info.TornBytes, wantDropped)
	}
}

// TestTornTailRepairSurvivesLaterGenerations is the sequence that used
// to lose acknowledged records: a torn tail in generation G is benign on
// the first recovery, but G is no longer the newest generation once the
// restarted process appends to G+1 — so unless recovery truncates the
// torn bytes off the disk, the next recovery rereads them as mid-log
// corruption and drops every later generation, fsynced records included.
func TestTornTailRepairSurvivesLaterGenerations(t *testing.T) {
	dir := t.TempDir()
	recs := sampleRecords()
	raw := frames(recs[:4]...)
	lastLen := len(frames(recs[3]))
	writeLog(t, dir, 0, 0, raw[:len(raw)-lastLen/2])
	_, got, info, err := Recover(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !info.Torn || len(got) != 3 {
		t.Fatalf("first recovery: info = %+v, %d records", info, len(got))
	}
	// The repair must be on disk, not just in the verdict.
	onDisk, err := os.ReadFile(logName(dir, 0, 0))
	if err != nil {
		t.Fatal(err)
	}
	if want := frames(recs[:3]...); !reflect.DeepEqual(onDisk, want) {
		t.Fatalf("torn tail survived on disk: %d bytes, want %d", len(onDisk), len(want))
	}
	// The restarted process acknowledges new records in the next generation.
	l, err := Open(0, Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs[4:] {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// The next recovery must replay every durable record — the 3-record
	// prefix of the torn generation plus everything acknowledged after it.
	_, got, info, err = Recover(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := append(append([]Record(nil), recs[:3]...), recs[4:]...)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("after restart: recovered %d records, want %d (acknowledged records dropped)", len(got), len(want))
	}
	if info.Torn || info.Corrupt {
		t.Fatalf("after repair: info = %+v, want neither torn nor corrupt", info)
	}
}

// A zero-filled tail is how several filesystems leave a file that was
// being extended at the crash: classify it as the crash artifact it is,
// not as real damage.
func TestZeroFilledTailIsTorn(t *testing.T) {
	dir := t.TempDir()
	recs := sampleRecords()
	raw := frames(recs...)
	writeLog(t, dir, 0, 0, append(raw, make([]byte, 64)...))
	snap, got, info, err := Recover(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if snap != nil {
		t.Fatal("unexpected snapshot")
	}
	if !reflect.DeepEqual(got, recs) {
		t.Fatalf("recovered %d records, want all %d", len(got), len(recs))
	}
	if !info.Torn || info.Corrupt || info.TornBytes != 64 {
		t.Fatalf("info = %+v, want Torn (64 bytes) and not Corrupt", info)
	}
	// Zeros followed by junk is not the crash shape: that stays corrupt.
	junk := append(append(frames(recs...), make([]byte, 16)...), 0xAB)
	dir2 := t.TempDir()
	writeLog(t, dir2, 0, 0, junk)
	_, _, info, err = Recover(dir2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !info.Corrupt || info.Torn {
		t.Fatalf("zeros+junk: info = %+v, want Corrupt", info)
	}
}

func TestCorruptMidLogDropsSuffixAndLaterGens(t *testing.T) {
	dir := t.TempDir()
	recs := sampleRecords()
	raw := frames(recs[:4]...)
	// Flip one payload byte of the third frame: records 0-1 survive,
	// everything after (including generation 2) is suspect.
	third := len(frames(recs[:2]...))
	raw[third+frameHeader] ^= 0x01
	writeLog(t, dir, 0, 1, raw)
	gen2 := frames(recs[4:]...)
	writeLog(t, dir, 0, 2, gen2)
	_, got, info, err := Recover(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if want := recs[:2]; !reflect.DeepEqual(got, want) {
		t.Fatalf("recovered %+v, want the 2-record prefix", got)
	}
	if !info.Corrupt || info.Torn {
		t.Fatalf("info = %+v, want Corrupt and not Torn", info)
	}
	if wantDropped := int64(len(raw)-third) + int64(len(gen2)); info.DroppedBytes != wantDropped {
		t.Fatalf("DroppedBytes = %d, want %d", info.DroppedBytes, wantDropped)
	}
	// The verdict is repaired onto disk: the damaged file is truncated at
	// the last good frame and the later generation quarantined, so a
	// second recovery reaches the same answer with no damage left to find.
	if onDisk, err := os.ReadFile(logName(dir, 0, 1)); err != nil || len(onDisk) != third {
		t.Fatalf("corrupt generation not truncated: %d bytes, want %d (%v)", len(onDisk), third, err)
	}
	if _, err := os.Stat(logName(dir, 0, 2)); !os.IsNotExist(err) {
		t.Fatalf("generation 2 not quarantined: %v", err)
	}
	if q, err := os.ReadFile(logName(dir, 0, 2) + ".corrupt"); err != nil || !reflect.DeepEqual(q, gen2) {
		t.Fatalf("quarantined generation 2 bytes lost: %v", err)
	}
	_, got, info, err = Recover(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, recs[:2]) || info.Corrupt || info.Torn {
		t.Fatalf("second recovery: %d records, info = %+v, want the clean 2-record prefix", len(got), info)
	}
}

// A torn tail anywhere but the newest generation is not a crash
// artifact — generation N was complete before N+1 was created — so it
// must read as corruption.
func TestTornOlderGenIsCorruption(t *testing.T) {
	dir := t.TempDir()
	recs := sampleRecords()
	raw := frames(recs[:2]...)
	writeLog(t, dir, 0, 1, raw[:len(raw)-3])
	writeLog(t, dir, 0, 2, frames(recs[2:]...))
	_, got, info, err := Recover(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("recovered %d records, want 1", len(got))
	}
	if !info.Corrupt || info.Torn {
		t.Fatalf("info = %+v, want Corrupt and not Torn", info)
	}
}

func TestSnapshotAnchorsReplay(t *testing.T) {
	dir := t.TempDir()
	recs := sampleRecords()
	writeLog(t, dir, 0, 1, frames(recs[:4]...)) // covered by the snapshot: must not replay
	writeLog(t, dir, 0, 2, frames(recs[4:]...))
	s := &Snapshot{Shard: 0, Gen: 2, NextSeq: 9}
	if err := os.WriteFile(snapName(dir, 0, 2), encodeSnapshot(s), 0o644); err != nil {
		t.Fatal(err)
	}
	snap, got, info, err := Recover(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if snap == nil || snap.Gen != 2 || snap.NextSeq != 9 {
		t.Fatalf("snapshot = %+v", snap)
	}
	if !reflect.DeepEqual(got, recs[4:]) {
		t.Fatalf("replayed %+v, want only generation-2 records", got)
	}
	if !info.HasSnapshot || info.SnapshotGen != 2 {
		t.Fatalf("info = %+v", info)
	}
}

// A snapshot newer than every log generation is legal (crash between
// snapshot rename and the next append): state is the snapshot alone.
func TestSnapshotNewerThanLogs(t *testing.T) {
	dir := t.TempDir()
	writeLog(t, dir, 0, 1, frames(sampleRecords()...))
	s := &Snapshot{Shard: 0, Gen: 5, NextSeq: 17}
	if err := os.WriteFile(snapName(dir, 0, 5), encodeSnapshot(s), 0o644); err != nil {
		t.Fatal(err)
	}
	snap, got, _, err := Recover(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if snap == nil || snap.NextSeq != 17 {
		t.Fatalf("snapshot = %+v", snap)
	}
	if len(got) != 0 {
		t.Fatalf("replayed %d records from generations the snapshot covers", len(got))
	}
}

func TestBadSnapshotFallsBackOlder(t *testing.T) {
	dir := t.TempDir()
	recs := sampleRecords()
	old := &Snapshot{Shard: 0, Gen: 1, NextSeq: 3}
	if err := os.WriteFile(snapName(dir, 0, 1), encodeSnapshot(old), 0o644); err != nil {
		t.Fatal(err)
	}
	writeLog(t, dir, 0, 1, frames(recs[:4]...))
	// Newest snapshot damaged (crash mid-write before rename would
	// normally prevent this; this is disk damage).
	bad := encodeSnapshot(&Snapshot{Shard: 0, Gen: 2, NextSeq: 9})
	bad[len(bad)-1] ^= 0xFF
	if err := os.WriteFile(snapName(dir, 0, 2), bad, 0o644); err != nil {
		t.Fatal(err)
	}
	writeLog(t, dir, 0, 2, frames(recs[4:]...))
	snap, got, info, err := Recover(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if snap == nil || snap.Gen != 1 {
		t.Fatalf("snapshot = %+v, want the generation-1 fallback", snap)
	}
	if info.BadSnapshots != 1 {
		t.Fatalf("BadSnapshots = %d, want 1", info.BadSnapshots)
	}
	// With the older anchor, both generations replay.
	if !reflect.DeepEqual(got, recs) {
		t.Fatalf("replayed %d records, want all %d", len(got), len(recs))
	}
}

// A snapshot claiming the wrong shard or generation is as bad as a
// CRC failure: it must not anchor replay.
func TestMisdirectedSnapshotRejected(t *testing.T) {
	dir := t.TempDir()
	writeLog(t, dir, 0, 1, frames(sampleRecords()...))
	wrong := &Snapshot{Shard: 3, Gen: 1}
	if err := os.WriteFile(snapName(dir, 0, 1), encodeSnapshot(wrong), 0o644); err != nil {
		t.Fatal(err)
	}
	snap, got, info, err := Recover(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if snap != nil {
		t.Fatalf("adopted a shard-3 snapshot as shard 0's")
	}
	if info.BadSnapshots != 1 || len(got) != len(sampleRecords()) {
		t.Fatalf("info = %+v, records = %d", info, len(got))
	}
}

func TestRotateAndSnapshotTruncate(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(0, Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	recs := sampleRecords()
	for _, r := range recs[:4] {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if l.SinceSnapshot() != 4 {
		t.Fatalf("SinceSnapshot = %d, want 4", l.SinceSnapshot())
	}
	gen, err := l.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	if l.SinceSnapshot() != 0 {
		t.Fatalf("SinceSnapshot after rotate = %d", l.SinceSnapshot())
	}
	for _, r := range recs[4:] {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Commit(); err != nil {
		t.Fatal(err)
	}
	// Snapshot generation gen: the rotated-away generation must vanish.
	if err := l.WriteSnapshot(&Snapshot{Shard: 0, Gen: gen, NextSeq: 42}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(logName(dir, 0, gen-1)); !os.IsNotExist(err) {
		t.Fatalf("generation %d survived truncation: %v", gen-1, err)
	}
	snap, got, _, err := Recover(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if snap == nil || snap.NextSeq != 42 {
		t.Fatalf("snapshot = %+v", snap)
	}
	if !reflect.DeepEqual(got, recs[4:]) {
		t.Fatalf("recovered %+v, want the post-rotation records", got)
	}
	if st := l.Stats(); st.Snapshots != 1 || st.Records != uint64(len(recs)) {
		t.Fatalf("stats = %+v", st)
	}
	// A snapshot addressed to another shard's log must be refused.
	if err := l.WriteSnapshot(&Snapshot{Shard: 1, Gen: gen}); err == nil {
		t.Fatal("cross-shard snapshot accepted")
	}
}

func TestOpenSkipsExistingGenerations(t *testing.T) {
	dir := t.TempDir()
	writeLog(t, dir, 0, 3, frames(sampleRecords()[:2]...))
	l, err := Open(0, Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if g := l.Stats().Gen; g != 4 {
		t.Fatalf("Open landed on generation %d, want 4 (one past the newest)", g)
	}
	if err := l.Append(sampleRecords()[2]); err != nil {
		t.Fatal(err)
	}
	if err := l.Commit(); err != nil {
		t.Fatal(err)
	}
	_, got, _, err := Recover(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("recovered %d records across generations, want 3", len(got))
	}
}

func TestOptionsNormalize(t *testing.T) {
	if _, err := (Options{}).Normalize(); err == nil {
		t.Fatal("empty Dir accepted")
	}
	o, err := (Options{Dir: "x"}).Normalize()
	if err != nil || o.Sync != SyncBatch {
		t.Fatalf("defaults: %+v, %v", o, err)
	}
	if _, err := (Options{Dir: "x", Sync: "flush"}).Normalize(); err == nil {
		t.Fatal("unknown sync mode accepted")
	}
	if _, err := (Options{Dir: "x", SnapEvery: -1}).Normalize(); err == nil {
		t.Fatal("negative SnapEvery accepted")
	}
}

// FuzzWALReplay checks the scanner against an in-memory oracle: a
// record script is framed to disk, the file is cut at an arbitrary
// point, and Recover must return exactly the longest whole-frame
// prefix — torn only when the cut split a frame, corrupt never (a cut
// never fabricates a valid-looking frame, it only shortens one).
func FuzzWALReplay(f *testing.F) {
	f.Add([]byte{}, uint32(0))
	f.Add([]byte{1, 9, 4, 'a', 'b', 2, 9}, uint32(11))
	f.Add([]byte{3, 1, 2, 3, 4, 5, 6, 7, 4, 1, 1, 7, 1}, uint32(6))
	f.Fuzz(func(t *testing.T, script []byte, cut uint32) {
		// Decode the script into records: each byte run picks a type and
		// fills fields from subsequent bytes. Deterministic, total.
		var recs []Record
		for i := 0; i < len(script); {
			r := Record{Type: Type(script[i]%7 + 1), ID: uint64(script[i]) << 3}
			i++
			take := func() int64 {
				if i >= len(script) {
					return 0
				}
				v := int64(script[i]) - 128
				i++
				return v
			}
			switch r.Type {
			case TAdmit:
				r.Ready, r.Dur, r.Deadline, r.Start = take(), take(), take(), take()
				r.Procs = int(uint8(take()))
				n := int(uint8(take())) % 8
				if n > len(script)-i {
					n = len(script) - i
				}
				r.Tenant = string(script[i : i+n])
				i += n
			case TMigrateIn:
				r.Peer = uint32(uint8(take()))
				r.Start, r.Dur = take(), take()
				r.Procs = int(uint8(take()))
			case TMigrateOut:
				r.Peer = uint32(uint8(take()))
			}
			recs = append(recs, r)
		}
		raw := frames(recs...)
		// Oracle: which records survive a cut at offset cut%(len+1)?
		off := int(cut) % (len(raw) + 1)
		var keep int
		var consumed int
		for keep < len(recs) {
			n := len(frames(recs[keep]))
			if consumed+n > off {
				break
			}
			consumed += n
			keep++
		}
		dir := t.TempDir()
		writeLog(t, dir, 0, 1, raw[:off])
		snap, got, info, err := Recover(dir, 0)
		if err != nil {
			t.Fatalf("Recover: %v", err)
		}
		if snap != nil {
			t.Fatal("snapshot from nowhere")
		}
		if len(got) != keep {
			t.Fatalf("cut %d: recovered %d records, oracle says %d", off, len(got), keep)
		}
		if keep > 0 && !reflect.DeepEqual(got, recs[:keep]) {
			t.Fatalf("cut %d: recovered records differ from the oracle prefix", off)
		}
		if wantTorn := off > consumed; info.Torn != wantTorn {
			t.Fatalf("cut %d: Torn = %v, oracle says %v (%+v)", off, info.Torn, wantTorn, info)
		}
		if info.Corrupt {
			t.Fatalf("cut %d: a truncation read as corruption (%+v)", off, info)
		}
	})
}
