package resd

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/tenant"
)

// Request is one admission request: the single argument of Admit, and
// the canonical unit the WAL serializes — an admit log record is this
// struct plus the assigned ID and start, nothing else.
type Request struct {
	// Tenant is the accounting identity the admission is charged to
	// ("" = the default tenant).
	Tenant string
	// Ready is the earliest admissible start time.
	Ready core.Time
	// Q is the requested width (processors).
	Q int
	// Dur is the reservation length.
	Dur core.Time
	// Deadline is the latest admissible start. It is literal — the zero
	// value is a deadline of tick 0, which rejects anything that cannot
	// start immediately. Set NoDeadline (the usual choice) to disable
	// the check.
	Deadline core.Time
	// ClientSend, when nonzero, is the caller's own send instant in unix
	// nanoseconds (v5 Reserve frames carry it across the wire). If the
	// admission is sampled, its TraceRecord gains the client-send→
	// server-arrival span. Transient: not part of the WAL record.
	ClientSend int64
	// Trace forces this admission into the trace ring regardless of the
	// sampling rate (a no-op when tracing is disabled). Transient: not
	// part of the WAL record.
	Trace bool
}

// Admit admits a reservation of req.Q processors for req.Dur ticks at
// the earliest admissible start >= req.Ready on a shard chosen by the
// placement policy, subject to the α head-room rule, req.Deadline, and
// req.Tenant's quota (when Config.Quotas is set). It blocks until the
// routed shard's event loop has committed — and, with a WAL, durably
// logged — the batch containing the request.
//
// When every shard's earliest feasible start lies after the deadline
// the request fails with ErrDeadline and no capacity is consumed: a
// deadline rejection is an explicit accept/reject answer, not a silent
// push-back. A hard-mode budget exhaustion fails with ErrQuota and, the
// budgets being global, is returned without trying further shards.
func (s *Service) Admit(req Request) (Reservation, error) {
	if req.Ready < 0 || req.Q < 1 || req.Dur < 1 || req.Deadline < 0 {
		return Reservation{}, fmt.Errorf("%w: Admit(%q, ready=%v, q=%d, dur=%v, deadline=%v)",
			ErrBadRequest, req.Tenant, req.Ready, req.Q, req.Dur, req.Deadline)
	}
	if len(req.Tenant) > tenant.MaxNameLen {
		return Reservation{}, fmt.Errorf("%w: tenant name %d bytes long (max %d)",
			ErrBadRequest, len(req.Tenant), tenant.MaxNameLen)
	}
	ten := req.Tenant
	if ten == "" {
		ten = tenant.DefaultTenant
	}
	rec := s.tracer.maybe(ten, req.ClientSend, req.Trace)
	if req.Q+s.floor > s.cfg.M {
		s.tracer.finish(rec, TraceRejectedCapacity, 0)
		s.sloBook.reject(ten, false)
		return Reservation{}, fmt.Errorf("%w: q=%d with α-floor %d exceeds m=%d", ErrNeverFits, req.Q, s.floor, s.cfg.M)
	}
	// A deadline before the ready time is statically doomed (every start
	// is >= ready), but it still takes the shard path below: the shards
	// are where deadline rejections are counted, and a fast path here
	// would make ShardStats.RejectedDeadline undercount what callers see.
	//
	// A shard that rejects for the deadline or the α rule is not the last
	// word: another partition may be idle enough to start in time, so the
	// placement order is tried to the end. A deadline rejection is
	// remembered in preference to ErrNeverFits — it tells the caller the
	// request was feasible, just not soon enough. A quota rejection, by
	// contrast, ends the walk at once: the budget is service-wide, so no
	// other shard can answer differently.
	var firstErr error
	order := s.place.order(s.shards, ten, req.Q, req.Dur)
	if rec != nil {
		rec.Route = time.Since(rec.Arrival)
	}
	for _, si := range order {
		if rec != nil {
			rec.Shard = si
			rec.Enqueue = time.Since(rec.Arrival)
		}
		resp, err := s.shards[si].do(request{kind: opReserve, tenant: ten, ready: req.Ready, q: req.Q, dur: req.Dur, deadline: req.Deadline, trace: rec})
		if err == nil {
			s.tracer.finish(rec, TraceAdmitted, resp.resv.Start)
			s.sloBook.admit(ten, req.Deadline != NoDeadline)
			return resp.resv, nil
		}
		if errors.Is(err, ErrQuota) {
			s.tracer.finish(rec, TraceRejectedQuota, 0)
			s.sloBook.reject(ten, false)
			return Reservation{}, err
		}
		if !errors.Is(err, ErrNeverFits) && !errors.Is(err, ErrDeadline) {
			s.tracer.finish(rec, TraceError, 0)
			// A shutdown is not an admission decision; anything else
			// (a backend fault) is an error the error-rate SLO counts.
			if !errors.Is(err, ErrClosed) {
				s.sloBook.reject(ten, false)
			}
			return Reservation{}, err
		}
		if firstErr == nil || (errors.Is(err, ErrDeadline) && !errors.Is(firstErr, ErrDeadline)) {
			firstErr = err
		}
	}
	s.tracer.finish(rec, classifyTraceErr(firstErr), 0)
	// The walk's verdict is the request-level decision the SLO book
	// counts: one rejection however many shards said no, a deadline
	// rejection when ErrDeadline won the preference above.
	s.sloBook.reject(ten, errors.Is(firstErr, ErrDeadline))
	return Reservation{}, firstErr
}

// Reserve admits q processors for dur ticks at the earliest admissible
// start >= ready, accounted to the default tenant with no deadline.
//
// Deprecated: use Admit with a Request.
func (s *Service) Reserve(ready core.Time, q int, dur core.Time) (Reservation, error) {
	return s.Admit(Request{Ready: ready, Q: q, Dur: dur, Deadline: NoDeadline})
}

// ReserveBy is Reserve with an SLA deadline on the start time (pass
// NoDeadline to disable the check).
//
// Deprecated: use Admit with a Request.
func (s *Service) ReserveBy(ready core.Time, q int, dur core.Time, deadline core.Time) (Reservation, error) {
	return s.Admit(Request{Ready: ready, Q: q, Dur: dur, Deadline: deadline})
}

// ReserveFor is ReserveBy on behalf of a tenant.
//
// Deprecated: use Admit with a Request.
func (s *Service) ReserveFor(ten string, ready core.Time, q int, dur core.Time, deadline core.Time) (Reservation, error) {
	return s.Admit(Request{Tenant: ten, Ready: ready, Q: q, Dur: dur, Deadline: deadline})
}
