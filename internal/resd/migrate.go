package resd

import (
	"errors"
	"fmt"
	"math"
	"time"

	"repro/internal/core"
	"repro/internal/flight"
	"repro/internal/rebal"
)

// RebalanceReport summarises one rebalancing round.
type RebalanceReport struct {
	// Planned is how many moves the planner proposed.
	Planned int
	// Applied counts moves that committed: the reservation now lives on
	// its target shard, books and Cancel routing transferred.
	Applied int
	// Aborted counts moves rolled back because the reservation was
	// cancelled between planning and execution (the two-phase conflict
	// path — expected under live traffic, never an error).
	Aborted int
	// Skipped counts moves the target shard refused (no α-legal room at
	// the reservation's start by execution time).
	Skipped int
	// Before and After are the imbalance scores (rebal.Imbalance over
	// per-shard committed area) observed before planning and after
	// execution.
	Before, After float64
}

// Rebalance runs one planning-and-migration round at the given logical
// time: it scores the shards' committed-area spread from the lock-free
// load summaries, and — when the spread exceeds Config.RebalanceThreshold
// — plans moves of admitted future reservations (internal/rebal) and
// executes each through a two-phase commit across the shard event loops:
//
//  1. tentative commit on the target (capacity held, copy invisible),
//  2. forward Cancel routing to the target,
//  3. release on the source — or, if the reservation was cancelled in
//     the meantime, roll the tentative copy back,
//  4. finalise on the target (books transferred).
//
// Capacity is conserved at every instant: between steps 1 and 3 the
// reservation's area is briefly held on both shards (the conservative
// overlap of any two-phase move — the promise to the client is never
// uncovered and no shard ever oversubscribes), and tenant quota is
// neither charged nor released — the original admission's charge rides
// along, so the registry ledger is untouched and nothing is ever
// double-counted. Reservations starting before now+Config.RebalanceFreeze
// are never moved.
//
// Rebalance runs a single round, capped at Config.RebalanceMaxMoves, so
// the shard loops are never stalled by one enormous transfer; a heavily
// skewed service may need several rounds to settle. It is what the
// background balancer (Config.RebalanceEvery) drives each tick (to
// completion, via RebalanceAll); it may also be driven manually, and is
// safe to call concurrently with traffic, though rounds themselves should
// not race each other (the background balancer never overlaps its own
// rounds).
func (s *Service) Rebalance(now core.Time) (RebalanceReport, error) {
	return s.rebalanceRound(now, s.cfg.RebalanceThreshold)
}

// RebalanceAll runs Rebalance rounds until the imbalance reaches the
// hysteresis target (half the trigger threshold) or a round stops making
// progress — the "drain the hot shard now" entry point for operators and
// for the background balancer once a tick has triggered. Between rounds
// the shard loops serve ordinary traffic, so a large drain is spread into
// RebalanceMaxMoves-sized slices rather than one long stall. The returned
// report accumulates every round.
func (s *Service) RebalanceAll(now core.Time) (RebalanceReport, error) {
	total, err := s.Rebalance(now)
	if err != nil || total.Applied == 0 {
		return total, err
	}
	target := s.cfg.RebalanceThreshold / 2
	for {
		rep, err := s.rebalanceRound(now, target)
		total.Planned += rep.Planned
		total.Applied += rep.Applied
		total.Aborted += rep.Aborted
		total.Skipped += rep.Skipped
		total.After = rep.After
		if err != nil || rep.Applied == 0 {
			return total, err
		}
	}
}

// rebalanceRound is one gated planning-and-migration round: a no-op
// unless the current imbalance exceeds trigger, and then a plan aiming
// for half the configured threshold (the hysteresis target), capped at
// RebalanceMaxMoves.
func (s *Service) rebalanceRound(now core.Time, trigger float64) (RebalanceReport, error) {
	var rep RebalanceReport
	if now < 0 {
		return rep, fmt.Errorf("%w: Rebalance(now=%v)", ErrBadRequest, now)
	}
	s.balMu.Lock()
	defer s.balMu.Unlock()
	// Publish the round's telemetry for obs scrapes whichever way it
	// exits (no-op, error mid-plan, or a full execute).
	defer func() {
		s.balRounds.Add(1)
		s.balApplied.Add(uint64(rep.Applied))
		s.balAborted.Add(uint64(rep.Aborted))
		s.balSkipped.Add(uint64(rep.Skipped))
		s.balBefore.Store(math.Float64bits(rep.Before))
		s.balAfter.Store(math.Float64bits(rep.After))
		if rep.Planned > 0 {
			s.journal.Record(flight.Info, "rebal", -1, "rebalance round",
				flight.KV{K: "planned", V: fmt.Sprint(rep.Planned)},
				flight.KV{K: "applied", V: fmt.Sprint(rep.Applied)},
				flight.KV{K: "aborted", V: fmt.Sprint(rep.Aborted)},
				flight.KV{K: "skipped", V: fmt.Sprint(rep.Skipped)},
				flight.KV{K: "before", V: fmt.Sprintf("%.3f", rep.Before)},
				flight.KV{K: "after", V: fmt.Sprintf("%.3f", rep.After)})
		}
	}()
	areas := make([]int64, len(s.shards))
	readAreas := func() {
		for i, sh := range s.shards {
			areas[i] = sh.committedArea.Load()
		}
	}
	readAreas()
	rep.Before = rebal.Imbalance(areas)
	rep.After = rep.Before
	if len(s.shards) < 2 || rep.Before <= trigger {
		// The cheap pre-check: a balanced service pays two atomic loads
		// per shard per tick, never an event-loop round trip.
		return rep, nil
	}

	cutoff := now + s.cfg.RebalanceFreeze
	if s.cfg.RebalanceFreeze > core.Infinity-now {
		cutoff = core.Infinity
	}
	loads := make([]rebal.ShardLoad, len(s.shards))
	for i, sh := range s.shards {
		resp, err := sh.do(request{kind: opMigratable, ready: cutoff})
		if err != nil {
			return rep, err
		}
		loads[i] = rebal.ShardLoad{
			Shard:         i,
			CommittedArea: sh.committedArea.Load(),
			Resvs:         resp.cands,
		}
	}
	var pressure map[string]float64
	if s.cfg.Quotas != nil {
		pressure = make(map[string]float64)
		for _, ld := range loads {
			for _, rv := range ld.Resvs {
				if _, ok := pressure[rv.Tenant]; !ok {
					pressure[rv.Tenant] = s.cfg.Quotas.Ratio(rv.Tenant)
				}
			}
		}
	}
	// Hysteresis: a triggered round plans down to half the trigger score,
	// not just under it. Stopping exactly at the threshold would leave the
	// system one transient admission away from re-triggering, and a
	// balancer that oscillates around its own trigger pays the candidate
	// snapshots (and pointless migrations of short-lived work) forever.
	plan := rebal.MakePlan(now, loads, rebal.Config{
		Threshold: s.cfg.RebalanceThreshold / 2,
		Freeze:    s.cfg.RebalanceFreeze,
		MaxMoves:  s.cfg.RebalanceMaxMoves,
		Pressure:  pressure,
	})
	rep.Planned = len(plan.Moves)
	for _, mv := range plan.Moves {
		applied, aborted, err := s.executeMove(mv)
		switch {
		case err != nil:
			return rep, err
		case applied:
			rep.Applied++
		case aborted:
			rep.Aborted++
		default:
			rep.Skipped++
		}
	}
	readAreas()
	rep.After = rebal.Imbalance(areas)
	return rep, nil
}

// executeMove runs one move's two-phase commit. It returns
// (applied, aborted, err): at most one of the booleans is set, and both
// false with a nil error means the target refused (skipped). A non-nil
// error only means the service is closing mid-move.
func (s *Service) executeMove(mv rebal.Move) (applied, aborted bool, err error) {
	id := ID(mv.Resv.ID)
	src, tgt := s.shards[mv.From], s.shards[mv.To]
	in := request{
		kind: opMigrateIn, id: id, tenant: mv.Resv.Tenant,
		ready: mv.Resv.Start, dur: mv.Resv.Dur, q: mv.Resv.Procs,
		peer: mv.From,
	}
	if _, err := tgt.do(in); err != nil {
		if errors.Is(err, ErrClosed) {
			return false, false, err
		}
		return false, false, nil // no α-legal room at the target any more: skip
	}
	// Forward Cancel routing before touching the source: from here on a
	// Cancel either still finds the source copy (and the source release
	// below reports the conflict) or reaches the target, where the pending
	// copy makes it wait out the move. There is no instant at which a
	// legitimate Cancel can miss the reservation.
	s.moved.Store(id, mv.To)
	if _, err := src.do(request{kind: opMigrateOut, id: id, peer: mv.To}); err != nil {
		if !errors.Is(err, ErrUnknownID) {
			return false, false, err // closing; the books stay conservative
		}
		// Cancelled between planning and execution: roll back the
		// tentative copy and restore routing.
		if _, aerr := tgt.do(request{kind: opMigrateAbort, id: id}); aerr != nil {
			return false, false, aerr
		}
		s.moved.Delete(id)
		s.journal.Record(flight.Info, "rebal", mv.From, "migration aborted: reservation cancelled mid-move",
			flight.KV{K: "id", V: fmt.Sprintf("%#x", uint64(id))},
			flight.KV{K: "to", V: fmt.Sprint(mv.To)})
		return false, true, nil
	}
	if _, err := tgt.do(request{kind: opMigrateCommit, id: id}); err != nil {
		return false, false, err
	}
	// The commit is durable on the target: close the source's WAL
	// open-out. The move is applied whatever happens here — a lost ack
	// (service closing) just leaves a stale open-out the next recovery
	// closes itself.
	src.do(request{kind: opMigrateOutAck, id: id})
	s.journal.Record(flight.Info, "rebal", mv.From, "migration committed",
		flight.KV{K: "id", V: fmt.Sprintf("%#x", uint64(id))},
		flight.KV{K: "to", V: fmt.Sprint(mv.To)},
		flight.KV{K: "tenant", V: mv.Resv.Tenant})
	return true, false, nil
}

// balanceLoop is the background rebalancer: one Rebalance round every
// Config.RebalanceEvery, at the logical time Config.RebalanceNow reports
// (a zero clock when unset), until the service closes. Rounds never
// overlap — the next tick fires only after the previous round returns —
// and rounds that achieve nothing back off exponentially: when the score
// is above threshold but no candidate can improve it (everything frozen,
// or the residual spread is all in unmovable reservations), re-planning
// every tick would pay the candidate-snapshot cost inside every shard
// loop for zero benefit, so the loop skips up to 64 ticks before looking
// again. Any applied move resets the backoff.
func (s *Service) balanceLoop() {
	t := time.NewTicker(s.cfg.RebalanceEvery)
	defer t.Stop()
	skip, backoff := 0, 0
	for {
		select {
		case <-s.quit:
			return
		case <-t.C:
			if skip > 0 {
				skip--
				continue
			}
			now := core.Time(0)
			if s.cfg.RebalanceNow != nil {
				// Clamp a misbehaving clock instead of feeding Rebalance a
				// negative instant: the round would error and kill this
				// goroutine for the service's remaining lifetime over a
				// transient glitch the clock may well recover from.
				if now = s.cfg.RebalanceNow(); now < 0 {
					now = 0
				}
			}
			rep, err := s.RebalanceAll(now)
			if err != nil {
				return // only ErrClosed reaches here: the service is going down
			}
			if rep.Before > s.cfg.RebalanceThreshold && rep.Applied == 0 {
				backoff = min(64, backoff*2+1)
				skip = backoff
				s.journal.Record(flight.Warn, "rebal", -1, "balancer backing off: imbalanced but no movable work",
					flight.KV{K: "skip_ticks", V: fmt.Sprint(backoff)},
					flight.KV{K: "imbalance", V: fmt.Sprintf("%.3f", rep.Before)})
			} else {
				if backoff > 0 {
					s.journal.Record(flight.Info, "rebal", -1, "balancer backoff reset")
				}
				backoff = 0
			}
			s.balBackoff.Store(int64(backoff))
		}
	}
}
