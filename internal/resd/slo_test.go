package resd

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/flight"
	"repro/internal/obs"
	"repro/internal/slo"
)

// sloDrillSpec is a second-scale spec for in-process drills: one page
// rule per objective with windows small enough to fire and clear inside
// a test.
func sloDrillSpec() slo.Spec {
	rules := []slo.RuleSpec{{Severity: "page", Burn: 2, Short: "40ms", Long: "120ms"}}
	return slo.Spec{
		Period:       "10ms",
		BudgetWindow: "300ms",
		Objectives: []slo.ObjectiveSpec{
			{Name: "deadline", Signal: "deadline_attainment", Target: 0.9, Rules: rules},
			{Name: "acme-deadline", Signal: "deadline_attainment", Tenant: "acme", Target: 0.9, Rules: rules},
			{Name: "slack", Signal: "slack", Target: 0.5, Bound: 1 << 20, Rules: rules},
			{Name: "success", Signal: "error_rate", Target: 0.9, Rules: rules},
		},
	}
}

func newSLOService(t *testing.T, shards int) (*Service, *slo.Engine, *flight.Recorder) {
	t.Helper()
	reg := obs.NewRegistry()
	rec, err := flight.New(flight.Config{Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := slo.New(slo.Config{Spec: sloDrillSpec(), Registry: reg, Journal: rec.Journal()})
	if err != nil {
		t.Fatal(err)
	}
	svc, err := New(Config{Shards: shards, M: 4, Obs: &ObsConfig{Registry: reg, Flight: rec, SLO: eng}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svc.Close)
	return svc, eng, rec
}

// TestSLOBookCountsDecisionsOnce drives requests whose walk visits every
// shard and asserts the book counted request-level decisions, not
// per-shard attempts.
func TestSLOBookCountsDecisionsOnce(t *testing.T) {
	svc, _, _ := newSLOService(t, 4)
	// Occupy tick 0 fully on every shard so a deadline-0 request is
	// feasible (q=1 fits later) but never in time: every shard says
	// ErrDeadline, and the walk's verdict is one deadline rejection.
	for i := 0; i < 4; i++ {
		if _, err := svc.Admit(Request{Q: 4, Dur: 10, Deadline: NoDeadline}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		if _, err := svc.Admit(Request{Tenant: "acme", Q: 1, Dur: 1, Deadline: 0}); err == nil {
			t.Fatal("deadline-0 request admitted on a full cluster")
		}
	}
	b := svc.sloBook
	if got := b.dlRejected.Load(); got != 3 {
		t.Fatalf("dlRejected = %d, want 3 (one per request, not per shard)", got)
	}
	if got := b.rejected.Load(); got != 3 {
		t.Fatalf("rejected = %d, want 3", got)
	}
	// The admissions above carried NoDeadline: counted for error_rate,
	// not for deadline attainment.
	if got := b.admitted.Load(); got != 4 {
		t.Fatalf("admitted = %d, want 4", got)
	}
	if got := b.dlAdmitted.Load(); got != 0 {
		t.Fatalf("dlAdmitted = %d, want 0", got)
	}
	good, total, ok := b.tenantAttainment("acme")
	if !ok || good != 0 || total != 3 {
		t.Fatalf("acme attainment = (%d, %d, %v), want (0, 3, true)", good, total, ok)
	}
	if _, _, ok := b.tenantAttainment("unnamed"); ok {
		t.Fatal("tenantAttainment answered for a tenant no objective names")
	}
}

// TestSLOEndToEndBurnAndClear is the in-process burn-rate drill: miss
// deadlines hard, watch the page fire (states, /healthz warning,
// journal), recover, watch it clear.
func TestSLOEndToEndBurnAndClear(t *testing.T) {
	svc, eng, rec := newSLOService(t, 1)
	// Saturate far into the future so deadline-carrying requests miss.
	if _, err := svc.Admit(Request{Q: 4, Dur: 1 << 20, Deadline: NoDeadline}); err != nil {
		t.Fatal(err)
	}
	sevOf := func(name string) slo.Severity {
		for _, st := range eng.States() {
			if st.Name == name {
				return st.Severity
			}
		}
		t.Fatalf("objective %q missing from States", name)
		return 0
	}
	deadline := time.Now().Add(5 * time.Second)
	for sevOf("deadline") != slo.SevPage {
		if time.Now().After(deadline) {
			t.Fatal("deadline objective never paged under sustained misses")
		}
		svc.Admit(Request{Tenant: "acme", Q: 1, Dur: 1, Deadline: 0})
		time.Sleep(2 * time.Millisecond)
	}
	if sevOf("acme-deadline") != slo.SevPage {
		t.Error("tenant-scoped objective did not page with the service-wide one")
	}
	if w := eng.Warning(); w == "" {
		t.Error("Warning() empty while paging")
	}
	if n := rec.Journal().SubsysCount("slo", flight.Error); n == 0 {
		t.Error("no slo page transition journaled")
	}
	// Recovery: stop the bad traffic and let the short window drain.
	deadline = time.Now().Add(5 * time.Second)
	for sevOf("deadline") != slo.OK {
		if time.Now().After(deadline) {
			t.Fatal("deadline objective never cleared after traffic stopped")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestSLOWindowedSlack asserts the engine answers windowed slack
// percentiles from the service's merged shard histograms.
func TestSLOWindowedSlack(t *testing.T) {
	svc, eng, _ := newSLOService(t, 1)
	// Fill tick 0 so the next admissions are pushed back: nonzero slack.
	if _, err := svc.Admit(Request{Q: 4, Dur: 100, Deadline: NoDeadline}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if _, err := svc.Admit(Request{Q: 1, Dur: 1, Deadline: NoDeadline}); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		v, n, ok := eng.WindowQuantile("resd_slack_ticks", 0.99)
		if ok && n >= 9 {
			if core.Time(v) < 100 {
				t.Fatalf("windowed slack p99 = %d, want >= 100 (admissions pushed past the blocker)", v)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("windowed slack percentiles never became available")
		}
		time.Sleep(5 * time.Millisecond)
	}
}
