package resd

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/flight"
)

// TraceOutcome classifies how a traced admission attempt ended.
type TraceOutcome uint8

const (
	// TraceAdmitted: a shard committed the reservation.
	TraceAdmitted TraceOutcome = iota
	// TraceRejectedCapacity: every tried shard rejected under the α rule.
	TraceRejectedCapacity
	// TraceRejectedDeadline: feasible, but no shard could start in time.
	TraceRejectedDeadline
	// TraceRejectedQuota: the tenant's budget was exhausted.
	TraceRejectedQuota
	// TraceError: the request failed some other way (bad request, closed).
	TraceError
)

// String renders the outcome for logs and tables.
func (o TraceOutcome) String() string {
	switch o {
	case TraceAdmitted:
		return "admitted"
	case TraceRejectedCapacity:
		return "rejected-capacity"
	case TraceRejectedDeadline:
		return "rejected-deadline"
	case TraceRejectedQuota:
		return "rejected-quota"
	case TraceError:
		return "error"
	}
	return "unknown"
}

// TraceRecord is one sampled admission's timing breakdown: where inside
// the service a request spent its latency. All stage fields are offsets
// from Arrival, each stamped when the request crosses that stage:
//
//	Arrival     ReserveFor entered (wall clock; offsets are monotonic)
//	Route       placement order computed, first shard attempt starting
//	Enqueue     request handed to the (last-tried) shard's queue
//	BatchStart  that shard's event loop began the batch holding it
//	Decision    final answer in hand (after every placement attempt)
//
// Decision − BatchStart is the batch turn; BatchStart − Enqueue is queue
// wait; Enqueue − Route is routing/handoff; a large Decision with small
// earlier stages means the request walked many shards. Shard is the
// shard that produced the final answer (−1 if none was tried), and
// Start is the admitted start time when Outcome is TraceAdmitted.
//
// ClientSend is the cross-wire span: how long before Arrival the caller
// stamped the request on its side of the wire (Request.ClientSend,
// carried by v5 Reserve frames). Zero for in-process callers and
// pre-v5 clients; the two clocks are the caller's and the server's, so
// skew can make the span inexact (even negative) — it is an
// observability figure, not a synchronized timestamp.
type TraceRecord struct {
	Seq                                  uint64
	Tenant                               string
	Shard                                int
	Outcome                              TraceOutcome
	Start                                core.Time
	Arrival                              time.Time
	ClientSend                           time.Duration
	Route, Enqueue, BatchStart, Decision time.Duration
}

// tracer samples admissions into a bounded ring. Sampling is one atomic
// add on the hot path; only sampled requests (1 in sample) allocate a
// record and take the ring mutex, so the cost scales with the sample
// rate, not the request rate.
type tracer struct {
	sample   uint64
	slow     time.Duration
	slowLog  func(TraceRecord)
	slowQ    *flight.Queue // dispatches slowLog off the admission path; nil iff slowLog is
	n        atomic.Uint64
	seq      atomic.Uint64
	sampled  atomic.Uint64
	slowSeen atomic.Uint64

	mu   sync.Mutex
	ring []TraceRecord
	next int
	full bool
}

// DefaultTraceBuf is the ring capacity when ObsConfig.TraceBuf is zero.
const DefaultTraceBuf = 256

// slowLogQueueDepth bounds how many slow records can wait for the
// SlowLog callback before further ones are dropped (counted in
// resd_slow_log_dropped_total).
const slowLogQueueDepth = 256

func newTracer(cfg *ObsConfig) *tracer {
	if cfg == nil || cfg.TraceSample <= 0 {
		return nil
	}
	buf := cfg.TraceBuf
	if buf <= 0 {
		buf = DefaultTraceBuf
	}
	t := &tracer{
		sample:  uint64(cfg.TraceSample),
		slow:    cfg.SlowThreshold,
		slowLog: cfg.SlowLog,
		ring:    make([]TraceRecord, buf),
	}
	if t.slowLog != nil {
		t.slowQ = flight.NewQueue(slowLogQueueDepth)
	}
	return t
}

// close stops the slow-log dispatcher. Queued callbacks may still run
// after close returns; a callback wedged mid-run is abandoned rather
// than waited for (ObsConfig.SlowLog's contract).
func (t *tracer) close() {
	if t != nil {
		t.slowQ.Close()
	}
}

// maybe decides whether this request is sampled; nil means no. force
// bypasses the 1-in-N rate (a caller-requested trace, Request.Trace);
// clientSend, when nonzero, is the caller's send stamp in unix
// nanoseconds and becomes the record's ClientSend span. Safe on a nil
// tracer (tracing disabled — force included).
func (t *tracer) maybe(tenant string, clientSend int64, force bool) *TraceRecord {
	if t == nil {
		return nil
	}
	if c := t.n.Add(1); !force && t.sample > 1 && (c-1)%t.sample != 0 {
		return nil
	}
	t.sampled.Add(1)
	rec := &TraceRecord{
		Seq:     t.seq.Add(1),
		Tenant:  tenant,
		Shard:   -1,
		Arrival: time.Now(),
	}
	if clientSend != 0 {
		rec.ClientSend = rec.Arrival.Sub(time.Unix(0, clientSend))
	}
	return rec
}

// finish stamps the decision, classifies the outcome, publishes the
// record to the ring and feeds the slow-request log.
func (t *tracer) finish(rec *TraceRecord, outcome TraceOutcome, start core.Time) {
	if t == nil || rec == nil {
		return
	}
	rec.Decision = time.Since(rec.Arrival)
	rec.Outcome = outcome
	rec.Start = start
	t.mu.Lock()
	t.ring[t.next] = *rec
	t.next++
	if t.next == len(t.ring) {
		t.next, t.full = 0, true
	}
	t.mu.Unlock()
	if t.slow > 0 && rec.Decision >= t.slow {
		t.slowSeen.Add(1)
		if t.slowLog != nil {
			// Asynchronous by contract: the callback runs on the queue's
			// dispatcher goroutine, never on the admission path, and is
			// dropped (counted) rather than waited for when the queue is
			// full — a wedged callback costs records, not throughput.
			cp := *rec
			t.slowQ.Dispatch(func() { t.slowLog(cp) })
		}
	}
}

// snapshot copies up to max records, oldest first. max <= 0 means all.
func (t *tracer) snapshot(max int) []TraceRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	n := t.next
	if t.full {
		n = len(t.ring)
	}
	out := make([]TraceRecord, 0, n)
	if t.full {
		out = append(out, t.ring[t.next:]...)
	}
	out = append(out, t.ring[:t.next]...)
	if max > 0 && len(out) > max {
		out = out[len(out)-max:]
	}
	return out
}

// Traces returns the most recent sampled admission traces, oldest first,
// up to max (max <= 0 returns the whole ring). Empty when tracing is
// disabled. This is what the wire protocol's Trace op serves.
func (s *Service) Traces(max int) []TraceRecord {
	return s.tracer.snapshot(max)
}

// classifyTraceErr maps a ReserveFor error to a trace outcome.
func classifyTraceErr(err error) TraceOutcome {
	switch {
	case err == nil:
		return TraceAdmitted
	case errors.Is(err, ErrQuota):
		return TraceRejectedQuota
	case errors.Is(err, ErrDeadline):
		return TraceRejectedDeadline
	case errors.Is(err, ErrNeverFits):
		return TraceRejectedCapacity
	}
	return TraceError
}
