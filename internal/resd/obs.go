package resd

import (
	"math"
	"strconv"
	"time"

	"repro/internal/flight"
	"repro/internal/obs"
	"repro/internal/slo"
	"repro/internal/wal"
)

// ObsConfig attaches a Service to the observability layer. Registry
// receives the service's metric families at New; TraceSample enables
// admission tracing. The full exposition-name table is in this package's
// doc.go.
type ObsConfig struct {
	// Registry is the metrics sink. Nil disables metrics (instrumented
	// code still runs against no-op instruments).
	Registry *obs.Registry
	// TraceSample records one in N ReserveFor calls into the trace ring
	// (1 = every request, 0 = tracing disabled).
	TraceSample int
	// TraceBuf is the trace ring capacity (0 = DefaultTraceBuf).
	TraceBuf int
	// SlowThreshold marks a sampled request slow when its arrival-to-
	// decision latency reaches the threshold (0 = no slow accounting).
	SlowThreshold time.Duration
	// SlowLog, when set, receives each slow sampled request — the
	// slow-request log hook.
	//
	// Contract: the callback is invoked asynchronously, on a single
	// dispatcher goroutine, through a bounded non-blocking queue — it
	// may therefore be arbitrarily slow (write to a socket, take a
	// lock) without ever stalling an admission. The cost of that
	// safety is loss under burst: when slow requests arrive faster
	// than the callback drains them, excess records are dropped and
	// counted (resd_slow_log_dropped_total). Callbacks still in the
	// queue when the service closes may run after Close returns, or
	// not at all.
	SlowLog func(TraceRecord)
	// Flight attaches the node's flight recorder: the service journals
	// operational events (replay verdicts, WAL damage, migrations,
	// quota overflow, slow batch turns) through it, every shard loop
	// publishes heartbeats from its batch turn, and New arms the
	// recorder's watchdog with the service's probes (Close disarms
	// it). Nil disables flight recording; see internal/flight.
	Flight *flight.Recorder
	// SLO, when non-nil, arms the error-budget engine against the
	// service: New binds a CounterSource to every objective the spec
	// declares (deadline_attainment service-wide and per named tenant,
	// error_rate, slack under its bound), routes the slack and
	// loop-turn histograms through the engine's snapshot ring for
	// windowed percentiles, and starts the tick loop; Close stops it.
	// The engine should be built over the same Registry and the flight
	// recorder's journal so its families and transition events land
	// beside the service's own. See internal/slo.
	SLO *slo.Engine
}

// registerObs wires every layer's metrics into the registry. Called once
// from New, after the shards exist; every closure reads either published
// atomics or channel lengths, so scrapes never touch an event loop.
func (s *Service) registerObs() {
	reg := s.cfg.Obs.Registry
	if reg == nil {
		return
	}
	for i := range s.shards {
		sh := s.shards[i]
		lbl := obs.L("shard", strconv.Itoa(i))
		reg.GaugeFunc("resd_shard_queue_depth",
			"Requests waiting in the shard event loop's queue.",
			func() float64 { return float64(len(sh.reqs)) }, lbl)
		reg.GaugeFunc("resd_shard_active",
			"Currently admitted reservations on the shard.",
			func() float64 { return float64(sh.activeCount.Load()) }, lbl)
		reg.GaugeFunc("resd_shard_committed_area",
			"Processor-tick area held by the shard's active reservations.",
			func() float64 { return float64(sh.committedArea.Load()) }, lbl)
		reg.CounterFunc("resd_shard_batches_total",
			"Event-loop turns (group commits) served.", sh.batches.Load, lbl)
		reg.CounterFunc("resd_shard_ops_total",
			"Requests served across all batches.", sh.ops.Load, lbl)
		reg.GaugeFunc("resd_shard_ops_per_batch",
			"Realised group-commit factor: ops / batches.",
			func() float64 {
				b := sh.batches.Load()
				if b == 0 {
					return 0
				}
				return float64(sh.ops.Load()) / float64(b)
			}, lbl)
		reg.CounterFunc("resd_admitted_total",
			"Admitted reservations.", sh.admitted.Load, lbl)
		reg.CounterFunc("resd_cancelled_total",
			"Cancelled reservations.", sh.cancelled.Load, lbl)
		reg.CounterFunc("resd_rejected_total",
			"Rejected admission attempts by reason.",
			sh.rejected.Load, lbl, obs.L("reason", "capacity"))
		reg.CounterFunc("resd_rejected_total",
			"Rejected admission attempts by reason.",
			sh.rejectedDL.Load, lbl, obs.L("reason", "deadline"))
		reg.CounterFunc("resd_rejected_total",
			"Rejected admission attempts by reason.",
			sh.rejectedQuota.Load, lbl, obs.L("reason", "quota"))
		reg.CounterFunc("resd_migrated_total",
			"Reservations the rebalancer moved, by direction.",
			sh.migratedIn.Load, lbl, obs.L("dir", "in"))
		reg.CounterFunc("resd_migrated_total",
			"Reservations the rebalancer moved, by direction.",
			sh.migratedOut.Load, lbl, obs.L("dir", "out"))
		if wl := sh.wlog; wl != nil {
			reg.CounterFunc("resd_wal_bytes_total",
				"Bytes appended to the shard's write-ahead log.",
				func() uint64 { return wl.Stats().Bytes }, lbl)
			reg.CounterFunc("resd_wal_records_total",
				"Records appended to the shard's write-ahead log.",
				func() uint64 { return wl.Stats().Records }, lbl)
			reg.CounterFunc("resd_wal_fsyncs_total",
				"Group-commit fsyncs on the shard's log.",
				func() uint64 { return wl.Stats().Fsyncs }, lbl)
			reg.CounterFunc("resd_wal_snapshots_total",
				"Completed snapshot writes (log truncations).",
				func() uint64 { return wl.Stats().Snapshots }, lbl)
			reg.CounterFunc("resd_wal_failures_total",
				"WAL write failures (a failed log degrades the shard to non-durable).",
				sh.walFailed.Load, lbl)
			reg.GaugeFunc("resd_wal_generation",
				"Log generation currently being appended to.",
				func() float64 { return float64(wl.Stats().Gen) }, lbl)
			reg.GaugeFunc("resd_wal_snapshot_age_seconds",
				"Seconds since the shard's newest durable snapshot (since Open when none).",
				func() float64 {
					return time.Since(time.Unix(0, wl.Stats().LastSnapshot)).Seconds()
				}, lbl)
		}
	}
	if s.walInfo.Enabled {
		// Handles captured here: the loop nils sh.wlog if the log fails,
		// and scrapes must not race that write (the frozen telemetry of a
		// degraded shard is still worth exposing).
		wls := make([]*wal.Log, len(s.shards))
		for i := range s.shards {
			wls[i] = s.shards[i].wlog
		}
		reg.Collect(obs.KindSummary, "resd_wal_fsync_ns",
			"Group-commit fsync latency on each shard's log, nanoseconds.",
			func(e obs.Emitter) {
				for i, wl := range wls {
					if wl == nil {
						continue
					}
					lbl := obs.L("shard", strconv.Itoa(i))
					e.Emit(float64(wl.FsyncQuantile(0.5)), lbl, obs.L("quantile", "0.5"))
					e.Emit(float64(wl.FsyncQuantile(0.9)), lbl, obs.L("quantile", "0.9"))
					e.Emit(float64(wl.FsyncQuantile(0.99)), lbl, obs.L("quantile", "0.99"))
					e.EmitSuffix("_count", float64(wl.FsyncCount()), lbl)
				}
			})
		reg.GaugeFunc("resd_wal_replay_seconds",
			"How long WAL recovery took when the service was built.",
			s.walInfo.Replay.Seconds)
		reg.GaugeFunc("resd_wal_replayed_records",
			"Log records replay applied when the service was built.",
			func() float64 { return float64(s.walInfo.Records) })
		// Recovery damage report: what replay found wrong with the logs
		// when the service was built. All constants after New, but exposed
		// as families so a scrape (or an alert) sees a restart that lost
		// data without anyone reading the startup banner.
		reg.GaugeFunc("resd_wal_replayed_snapshots",
			"Snapshots replay loaded when the service was built.",
			func() float64 { return float64(s.walInfo.Snapshots) })
		reg.GaugeFunc("resd_wal_torn_tails",
			"Torn (mid-write crash) record tails replay discarded across shards.",
			func() float64 { return float64(s.walInfo.Torn) })
		reg.GaugeFunc("resd_wal_corrupt_records",
			"Corrupt (checksum-failed) records replay stopped at across shards.",
			func() float64 { return float64(s.walInfo.Corrupt) })
		reg.GaugeFunc("resd_wal_dropped_bytes",
			"Log bytes replay could not apply (torn tails and corrupt suffixes).",
			func() float64 { return float64(s.walInfo.DroppedBytes) })
		reg.GaugeFunc("resd_wal_replayed_moves",
			"Migration intents replay resolved, by outcome.",
			func() float64 { return float64(s.walInfo.MovesCommitted) },
			obs.L("outcome", "committed"))
		reg.GaugeFunc("resd_wal_replayed_moves",
			"Migration intents replay resolved, by outcome.",
			func() float64 { return float64(s.walInfo.MovesAborted) },
			obs.L("outcome", "aborted"))
	}
	// Slack quantiles, published by each shard loop once per batch. A
	// summary family assembled from the published atomics: the _count is
	// the admission count the histogram was built from.
	reg.Collect(obs.KindSummary, "resd_slack_ticks",
		"Start-time slack (admitted start − ready, ticks) of admissions.",
		func(e obs.Emitter) {
			for i := range s.shards {
				sh := s.shards[i]
				lbl := obs.L("shard", strconv.Itoa(i))
				e.Emit(float64(sh.slackP50.Load()), lbl, obs.L("quantile", "0.5"))
				e.Emit(float64(sh.slackP90.Load()), lbl, obs.L("quantile", "0.9"))
				e.Emit(float64(sh.slackP99.Load()), lbl, obs.L("quantile", "0.99"))
				e.EmitSuffix("_count", float64(sh.admitted.Load()), lbl)
			}
		})
	if s.tracer != nil {
		reg.CounterFunc("resd_traces_sampled_total",
			"Admissions sampled into the trace ring.", s.tracer.sampled.Load)
		reg.CounterFunc("resd_slow_requests_total",
			"Sampled admissions at or over the slow threshold.", s.tracer.slowSeen.Load)
		if s.tracer.slowQ != nil {
			reg.CounterFunc("resd_slow_log_dropped_total",
				"Slow-request records dropped because the SlowLog callback queue was full.",
				s.tracer.slowQ.Dropped)
		}
	}
	if s.cfg.RebalanceNow != nil {
		reg.GaugeFunc("resd_logical_clock_ticks",
			"Current value of the service's logical clock (RebalanceNow).",
			func() float64 { return float64(s.cfg.RebalanceNow()) })
	}
	reg.CounterFunc("resd_rebalance_rounds_total",
		"Rebalancing rounds that ran (including no-op rounds).", s.balRounds.Load)
	reg.CounterFunc("resd_rebalance_moves_total",
		"Rebalancer move outcomes.", s.balApplied.Load, obs.L("result", "applied"))
	reg.CounterFunc("resd_rebalance_moves_total",
		"Rebalancer move outcomes.", s.balAborted.Load, obs.L("result", "aborted"))
	reg.CounterFunc("resd_rebalance_moves_total",
		"Rebalancer move outcomes.", s.balSkipped.Load, obs.L("result", "skipped"))
	reg.GaugeFunc("resd_rebalance_imbalance",
		"Imbalance score (1 − min/max committed area) around the last round.",
		func() float64 { return math.Float64frombits(s.balBefore.Load()) },
		obs.L("phase", "before"))
	reg.GaugeFunc("resd_rebalance_imbalance",
		"Imbalance score (1 − min/max committed area) around the last round.",
		func() float64 { return math.Float64frombits(s.balAfter.Load()) },
		obs.L("phase", "after"))
	reg.GaugeFunc("resd_rebalance_backoff_skips",
		"Ticks the background balancer is currently skipping (backoff state).",
		func() float64 { return float64(s.balBackoff.Load()) })
	if q := s.cfg.Quotas; q != nil {
		reg.GaugeFunc("tenant_quota_capacity",
			"Reservable α-prefix area the quota registry budgets against.",
			func() float64 { return float64(q.Capacity()) })
		reg.Collect(obs.KindGauge, "tenant_quota_budget",
			"Per-tenant budgeted share of the reservable prefix.",
			func(e obs.Emitter) {
				for _, u := range q.Tenants() {
					e.Emit(float64(u.Budget), obs.L("tenant", u.Tenant))
				}
			})
		reg.Collect(obs.KindGauge, "tenant_quota_used",
			"Per-tenant committed area currently charged.",
			func(e obs.Emitter) {
				for _, u := range q.Tenants() {
					e.Emit(float64(u.Used), obs.L("tenant", u.Tenant))
				}
			})
		reg.Collect(obs.KindGauge, "tenant_quota_inflight",
			"Per-tenant admissions currently held.",
			func(e obs.Emitter) {
				for _, u := range q.Tenants() {
					e.Emit(float64(u.Inflight), obs.L("tenant", u.Tenant))
				}
			})
		reg.Collect(obs.KindCounter, "tenant_quota_admitted_total",
			"Per-tenant admissions since start.",
			func(e obs.Emitter) {
				for _, u := range q.Tenants() {
					e.Emit(float64(u.Admitted), obs.L("tenant", u.Tenant))
				}
			})
		reg.Collect(obs.KindCounter, "tenant_quota_rejected_total",
			"Per-tenant hard-mode quota rejections since start.",
			func(e obs.Emitter) {
				for _, u := range q.Tenants() {
					e.Emit(float64(u.Rejected), obs.L("tenant", u.Tenant))
				}
			})
	}
}
