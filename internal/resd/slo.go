package resd

import (
	"fmt"
	"sync/atomic"

	"repro/internal/obs"
	"repro/internal/slo"
	"repro/internal/stats"
)

// sloCell is one tenant's deadline-attainment counters: admissions that
// carried a deadline and made it, and requests the deadline rejected.
type sloCell struct {
	dlAdmitted atomic.Uint64
	dlRejected atomic.Uint64
}

// sloBook counts request-level admission outcomes for the SLO engine.
// The per-shard counters cannot serve the deadline objectives: the
// Admit walk may collect a deadline rejection on several shards before
// one of them admits, so summing shard counters over-counts the
// denominator. The book counts each decision once, where it is made —
// in Admit, on the caller's goroutine, with plain atomic adds.
//
// tenants holds a cell per tenant named by a scoped objective. The map
// is built once at attach and never mutated afterwards, so every Admit
// goroutine reads it lock-free; unnamed tenants cost one failed lookup.
// All methods are nil-receiver-safe: a service without an SLO engine
// pays one predicted branch per admission decision.
type sloBook struct {
	admitted   atomic.Uint64
	rejected   atomic.Uint64
	dlAdmitted atomic.Uint64
	dlRejected atomic.Uint64
	tenants    map[string]*sloCell
}

// admit records one successful admission (hasDeadline: the request
// carried a finite deadline, making it a deadline-attainment sample).
func (b *sloBook) admit(ten string, hasDeadline bool) {
	if b == nil {
		return
	}
	b.admitted.Add(1)
	if !hasDeadline {
		return
	}
	b.dlAdmitted.Add(1)
	if c := b.tenants[ten]; c != nil {
		c.dlAdmitted.Add(1)
	}
}

// reject records one request-level rejection (deadline: the walk's
// verdict was ErrDeadline — a feasible request the service could not
// start in time, the broken promise deadline attainment counts).
func (b *sloBook) reject(ten string, deadline bool) {
	if b == nil {
		return
	}
	b.rejected.Add(1)
	if !deadline {
		return
	}
	b.dlRejected.Add(1)
	if c := b.tenants[ten]; c != nil {
		c.dlRejected.Add(1)
	}
}

// tenantAttainment reads one tracked tenant's cumulative deadline
// counters (ok=false when no objective scopes to the tenant).
func (b *sloBook) tenantAttainment(ten string) (good, total uint64, ok bool) {
	if b == nil {
		return 0, 0, false
	}
	c := b.tenants[ten]
	if c == nil {
		return 0, 0, false
	}
	good = c.dlAdmitted.Load()
	return good, good + c.dlRejected.Load(), true
}

// attachSLO arms ObsConfig.SLO against the service: a CounterSource per
// objective, the slack and loop-turn histograms routed through the
// engine's snapshot ring, then Start. Called from New after the shards
// exist; Close stops the engine.
func (s *Service) attachSLO(e *slo.Engine) error {
	book := &sloBook{tenants: make(map[string]*sloCell)}
	for _, o := range e.Objectives() {
		var src slo.CounterSource
		switch o.Signal {
		case slo.DeadlineAttainment:
			if o.Tenant == "" {
				src = func() (uint64, uint64) {
					good := book.dlAdmitted.Load()
					return good, good + book.dlRejected.Load()
				}
			} else {
				cell := book.tenants[o.Tenant]
				if cell == nil {
					cell = new(sloCell)
					book.tenants[o.Tenant] = cell
				}
				src = func() (uint64, uint64) {
					good := cell.dlAdmitted.Load()
					return good, good + cell.dlRejected.Load()
				}
			}
		case slo.ErrorRate:
			src = func() (uint64, uint64) {
				good := book.admitted.Load()
				return good, good + book.rejected.Load()
			}
		case slo.Slack:
			bound := o.Bound
			slackSrc := s.mergedHist(func(sh *shard) *obs.Histogram { return sh.slack })
			src = func() (uint64, uint64) {
				var merged [stats.ExpBuckets]uint64
				total := slackSrc(&merged)
				return slo.GoodUnderBound(&merged, bound), total
			}
		default:
			return fmt.Errorf("%w: objective %q has unsupported signal %q", ErrBadRequest, o.Name, o.Signal)
		}
		if err := e.Bind(o.Name, src); err != nil {
			return err
		}
	}
	// Windowed percentiles for the cumulative summaries: the engine's
	// ring answers "slack over the last budget window", which the
	// process-lifetime families cannot.
	if err := e.TrackHistogram("resd_slack_ticks",
		s.mergedHist(func(sh *shard) *obs.Histogram { return sh.slack })); err != nil {
		return err
	}
	if s.shards[0].turnNs != nil {
		if err := e.TrackHistogram("resd_loop_turn_ns",
			s.mergedHist(func(sh *shard) *obs.Histogram { return sh.turnNs })); err != nil {
			return err
		}
	}
	s.sloBook = book
	s.slo = e
	return e.Start()
}

// mergedHist sums one per-shard histogram's buckets across every shard:
// the service-wide cumulative snapshot the engine's ring deltas. Pure
// atomic loads, same contract as a scrape.
func (s *Service) mergedHist(pick func(*shard) *obs.Histogram) slo.HistSource {
	return func(dst *[stats.ExpBuckets]uint64) uint64 {
		var total uint64
		*dst = [stats.ExpBuckets]uint64{}
		for _, sh := range s.shards {
			var snap [stats.ExpBuckets]uint64
			total += pick(sh).Snapshot(&snap)
			for b := range dst {
				dst[b] += snap[b]
			}
		}
		return total
	}
}

// SLO returns the armed engine, or nil when the service runs without
// one — what resdsrv hands to the wire server and /healthz.
func (s *Service) SLO() *slo.Engine { return s.slo }
