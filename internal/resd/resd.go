package resd

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/flight"
	"repro/internal/profile"
	"repro/internal/slo"
	"repro/internal/tenant"
	"repro/internal/wal"

	// Ensure the "tree" capacity backend is registered so services can be
	// configured with Backend: "tree".
	_ "repro/internal/restree"
)

// Errors returned by the service.
var (
	// ErrClosed reports an operation on a closed service.
	ErrClosed = errors.New("resd: service closed")
	// ErrNeverFits reports that no shard can ever admit the request: the
	// width plus the α head-room exceeds the partition size.
	ErrNeverFits = errors.New("resd: request can never be admitted")
	// ErrUnknownID reports a Cancel for a reservation that is not active
	// (never admitted, or already cancelled).
	ErrUnknownID = errors.New("resd: unknown reservation id")
	// ErrBadRequest reports malformed request parameters.
	ErrBadRequest = errors.New("resd: bad request")
	// ErrDeadline reports a deadline rejection: the request is feasible,
	// but the earliest admissible start on every shard's α-prefix lies
	// after the caller's deadline. The service rejects instead of pushing
	// the reservation arbitrarily far back, so callers get an SLA-style
	// accept/reject answer they can act on (retry elsewhere, relax the
	// deadline, shrink the request).
	ErrDeadline = errors.New("resd: earliest feasible start exceeds deadline")
)

// ErrQuota is tenant.ErrQuota re-exported: a hard-mode quota rejection.
// The request was α-feasible but its tenant (or the tenant's group) has
// exhausted its budgeted share of the reservable prefix; no capacity is
// consumed. errors.Is works against either name, on both sides of the
// wire (reswire's REJECTED_QUOTA code).
var ErrQuota = tenant.ErrQuota

// NoDeadline disables the deadline check in ReserveBy: any admissible
// start, however late, is accepted.
const NoDeadline = core.Infinity

// ID identifies an admitted reservation service-wide. The owning shard is
// encoded in the top bits so Cancel routes without a global table.
type ID uint64

const shardBits = 16

// Shard returns the index of the shard that admitted the reservation.
func (id ID) Shard() int { return int(id >> (64 - shardBits)) }

func makeID(shard int, seq uint64) ID {
	return ID(uint64(shard)<<(64-shardBits) | (seq & (1<<(64-shardBits) - 1)))
}

// Reservation is an admitted reservation: the handle the service returns
// from Reserve and accepts in Cancel.
type Reservation struct {
	// ID is the service-wide identity (encodes the shard).
	ID ID
	// Shard is the cluster partition holding the reservation.
	Shard int
	// Start is the admitted start time (earliest admissible >= the
	// request's ready time).
	Start core.Time
	// Dur is the reservation length.
	Dur core.Time
	// Procs is the reservation width.
	Procs int
}

// End returns Start+Dur.
func (r Reservation) End() core.Time { return r.Start + r.Dur }

// Config parameterises a Service.
type Config struct {
	// Shards is the number of cluster partitions (default 1).
	Shards int
	// M is the processor count of each partition (required, >= 1).
	M int
	// Alpha is the admission rule: every shard keeps at least ⌊Alpha·M⌋
	// processors free of reservations at all times (0 disables the rule,
	// 1 rejects everything — the paper's α ∈ (0,1]). Must lie in [0,1].
	Alpha float64
	// Backend selects the capacity-index implementation per shard
	// ("" = array; "tree" = the restree balanced index).
	Backend string
	// Batch caps how many requests one event-loop turn group-commits
	// (default 64).
	Batch int
	// Placement routes Reserve requests across shards: "first-fit",
	// "least-loaded" or "p2c" (default "least-loaded").
	Placement string
	// Seed feeds the "p2c" policy's shard sampling (default 1).
	Seed uint64
	// Pre is a set of pre-existing reservations (maintenance windows,
	// prior commitments) committed to every shard before the service
	// starts, exempt from the α rule. An oversubscribing Pre fails New.
	Pre []core.Reservation
	// Quotas, when non-nil, partitions the reservable α-prefix between
	// tenants: every ReserveFor is charged against its tenant's budget in
	// the registry (hard mode rejects with ErrQuota; soft mode reorders
	// contending batches by fair share) and credited back on Cancel. Pre
	// reservations are exempt, like they are from the α rule. Nil
	// disables quota enforcement; per-tenant shard stats are kept either
	// way.
	Quotas *tenant.Registry
	// RebalanceEvery enables the background rebalancer: every interval a
	// planning round scores the committed-area spread across shards and
	// migrates admitted future reservations from hot shards to idle ones
	// (see Rebalance). 0 disables background rebalancing; Rebalance may
	// still be called manually.
	RebalanceEvery time.Duration
	// RebalanceThreshold is the imbalance score (rebal.Imbalance:
	// 1 − min/max of committed area) below which a round does nothing.
	// 0 selects DefaultRebalanceThreshold; must lie in [0,1]. An exact
	// act-on-any-imbalance trigger is therefore not expressible — pass a
	// tiny positive epsilon instead (the CLIs reject an explicit 0 for
	// the same reason, rather than silently running at the default).
	RebalanceThreshold float64
	// RebalanceFreeze is the migratable-window policy Δ: a reservation
	// starting before now+Δ is never moved, so work about to begin cannot
	// be yanked between shards at the last instant. Must be >= 0.
	RebalanceFreeze core.Time
	// RebalanceMaxMoves caps migrations per round (0 selects
	// DefaultRebalanceMaxMoves).
	RebalanceMaxMoves int
	// RebalanceNow supplies the logical "now" the background balancer
	// freezes against. Nil means a zero clock: only [0, RebalanceFreeze)
	// is frozen. Embedders whose tick origin advances (e.g. mapping wall
	// time onto ticks) plug their clock in here; resdsrv defaults it to a
	// monotonic wall-clock-per-tick source and obs surfaces the current
	// value as the resd_logical_clock_ticks gauge.
	RebalanceNow func() core.Time
	// Obs attaches the service to the observability layer: metric
	// registration at New and sampled admission tracing (see ObsConfig).
	// Nil disables both — the hot path then pays only dead nil checks.
	Obs *ObsConfig
	// turnHook, when non-nil, is called by every shard loop at the top of
	// each batch turn, after the heartbeat's busy stamp. Unexported: a
	// test seam for wedging a loop deliberately (the watchdog tests), set
	// before New so the loop goroutine reads it without a race.
	turnHook func(shard int)
	// WAL, when non-nil, makes every shard durable: admission decisions
	// are written to a per-shard write-ahead log in WAL.Dir (group-
	// committed with the batch turn, one fsync per batch under the
	// default sync mode) and New replays whatever the directory holds,
	// rebuilding the exact pre-crash state — IDs, placements, books and
	// quota charges included — before serving. See internal/wal and this
	// package's doc.go for the format and the recovery invariants. Nil
	// keeps the service purely in-memory.
	WAL *wal.Options
}

// Rebalancer defaults, applied by Config.normalize when the fields are
// zero.
const (
	DefaultRebalanceThreshold = 0.1
	DefaultRebalanceMaxMoves  = 64
)

// normalize fills defaults and validates.
func (c Config) normalize() (Config, error) {
	if c.Shards == 0 {
		c.Shards = 1
	}
	if c.Shards < 1 || c.Shards > 1<<shardBits {
		return c, fmt.Errorf("%w: Shards=%d outside [1,%d]", ErrBadRequest, c.Shards, 1<<shardBits)
	}
	if c.M < 1 {
		return c, fmt.Errorf("%w: M=%d, need >= 1", ErrBadRequest, c.M)
	}
	if c.Alpha < 0 || c.Alpha > 1 {
		return c, fmt.Errorf("%w: Alpha=%v outside [0,1]", ErrBadRequest, c.Alpha)
	}
	if c.Batch == 0 {
		c.Batch = 64
	}
	if c.Batch < 1 {
		return c, fmt.Errorf("%w: Batch=%d, need >= 1", ErrBadRequest, c.Batch)
	}
	if c.Placement == "" {
		c.Placement = "least-loaded"
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.RebalanceEvery < 0 {
		return c, fmt.Errorf("%w: RebalanceEvery=%v, need >= 0", ErrBadRequest, c.RebalanceEvery)
	}
	if c.RebalanceThreshold < 0 || c.RebalanceThreshold > 1 {
		return c, fmt.Errorf("%w: RebalanceThreshold=%v outside [0,1]", ErrBadRequest, c.RebalanceThreshold)
	}
	if c.RebalanceThreshold == 0 {
		c.RebalanceThreshold = DefaultRebalanceThreshold
	}
	if c.RebalanceFreeze < 0 {
		return c, fmt.Errorf("%w: RebalanceFreeze=%v, need >= 0", ErrBadRequest, c.RebalanceFreeze)
	}
	if c.RebalanceMaxMoves < 0 {
		return c, fmt.Errorf("%w: RebalanceMaxMoves=%d, need >= 0", ErrBadRequest, c.RebalanceMaxMoves)
	}
	if c.RebalanceMaxMoves == 0 {
		c.RebalanceMaxMoves = DefaultRebalanceMaxMoves
	}
	if c.WAL != nil {
		w, err := c.WAL.Normalize()
		if err != nil {
			return c, fmt.Errorf("%w: %v", ErrBadRequest, err)
		}
		c.WAL = &w
	}
	return c, nil
}

// Service is the sharded reservation-admission service. All methods are
// safe for concurrent use; Close must be called exactly once, after which
// every method returns ErrClosed.
type Service struct {
	cfg    Config
	floor  int // ⌊α·M⌋ processors every shard keeps free of reservations
	shards []*shard
	place  placement
	quit   chan struct{}

	// moved forwards Cancel routing for migrated reservations: ID → the
	// shard currently holding it. An ID's own shard bits always name the
	// admitting shard; once the rebalancer moves the reservation, this
	// overlay names its live home. Entries are dropped when the
	// reservation is cancelled.
	moved sync.Map // ID → int

	// balMu serializes rebalancing rounds. Two concurrent rounds could
	// plan from the same snapshot and race each other's two-phase moves —
	// worst case, one round's rollback deletes the forwarding entry the
	// other round just published, stranding a live reservation where
	// Cancel cannot find it. One round at a time makes plan+execute
	// atomic with respect to other rounds (client traffic still flows
	// freely; only rounds exclude each other).
	balMu sync.Mutex

	// tracer samples Admit calls into a bounded ring (nil when
	// Config.Obs leaves tracing off).
	tracer *tracer

	// flight is the attached flight recorder and journal its event
	// journal (both nil when ObsConfig.Flight is unset). New attaches the
	// recorder's watchdog to the shard heartbeats; Close detaches it
	// before the loops exit so the monitor never reads a dead service.
	flight  *flight.Recorder
	journal *flight.Journal

	// slo is the armed SLO engine and sloBook its request-level decision
	// counters (both nil when ObsConfig.SLO is unset). New binds every
	// objective and starts the engine; Close stops it. The book is
	// written by Admit on caller goroutines — see internal/resd/slo.go
	// for why the per-shard counters cannot serve the deadline
	// objectives.
	slo     *slo.Engine
	sloBook *sloBook

	// walInfo records what WAL recovery found and did at New (zero when
	// the service runs without a WAL).
	walInfo WALInfo

	// walLogs holds each shard's log handle as it was at New, for
	// scrape/watch reads: the loop nils sh.wlog when the log fails, and
	// readers outside the loop must not race that write (a degraded
	// shard's frozen counters are still worth exposing). Index i is
	// shard i; nil when the service runs without a WAL.
	walLogs []*wal.Log

	// Rebalancer telemetry, published for obs scrapes: cumulative round
	// and per-outcome move counters, the imbalance scores around the last
	// round (Float64bits), and the background loop's current backoff.
	balRounds  atomic.Uint64
	balApplied atomic.Uint64
	balAborted atomic.Uint64
	balSkipped atomic.Uint64
	balBefore  atomic.Uint64
	balAfter   atomic.Uint64
	balBackoff atomic.Int64
}

// New builds the shards (each pre-loaded with cfg.Pre), starts their event
// loops, and returns the running service. With Config.WAL set, New first
// recovers whatever the log directory holds — replaying every shard's
// snapshot and records, resolving moves the crash left mid-flight, and
// re-charging the quota registry — so the returned service is the
// pre-crash service, continued. Recovery runs to completion before New
// returns; a server should not report ready until it does.
func New(cfg Config) (*Service, error) {
	cfg, err := cfg.normalize()
	if err != nil {
		return nil, err
	}
	s := &Service{
		cfg:    cfg,
		floor:  int(cfg.Alpha * float64(cfg.M)),
		quit:   make(chan struct{}),
		tracer: newTracer(cfg.Obs),
	}
	if cfg.Obs != nil && cfg.Obs.Flight != nil {
		s.flight = cfg.Obs.Flight
		s.journal = s.flight.Journal()
		if cfg.WAL != nil {
			// Route the log layer's own events (rotation, snapshots,
			// damage) into the same journal. normalize already gave the
			// service a private Options copy, so this mutation is local.
			cfg.WAL.Journal = s.journal
		}
	}
	s.place, err = placementByName(cfg.Placement, cfg.Seed)
	if err != nil {
		return nil, err
	}
	seeds, walInfo, err := recoverShards(cfg)
	if err != nil {
		return nil, err
	}
	s.walInfo = walInfo
	for i := 0; i < cfg.Shards; i++ {
		var seed *shardSeed
		if seeds != nil {
			seed = seeds[i]
		}
		sh, err := newShard(i, cfg, s.floor, s.quit, seed)
		if err != nil {
			close(s.quit)
			for _, prev := range s.shards {
				prev.wait() // each loop seals its own log on exit
			}
			if seeds != nil {
				for _, sd := range seeds[i:] { // loops never started: seal here
					if sd.log != nil {
						sd.log.Close()
					}
				}
			}
			return nil, err
		}
		s.shards = append(s.shards, sh)
	}
	// A recovered reservation keeps its original ID, whose shard bits
	// name the admitting shard — rebuild the forwarding overlay for the
	// ones a pre-crash rebalance left living elsewhere.
	if seeds != nil {
		for i, sd := range seeds {
			for id := range sd.live {
				if id.Shard() != i {
					s.moved.Store(id, i)
				}
			}
		}
	}
	if s.walInfo.Enabled {
		s.walLogs = make([]*wal.Log, len(s.shards))
		for i := range s.shards {
			s.walLogs[i] = s.shards[i].wlog
		}
	}
	if cfg.Obs != nil {
		s.registerObs()
	}
	if cfg.RebalanceEvery > 0 && cfg.Shards > 1 {
		go s.balanceLoop()
	}
	if s.flight != nil {
		s.flight.Attach(flight.Sources{
			Shards: s.flightProbes,
			Traces: func() any { return s.Traces(0) },
			WAL: func() any {
				return struct {
					Info  WALInfo         `json:"info"`
					Stats []WALShardStats `json:"stats,omitempty"`
				}{s.WALInfo(), s.WALStats()}
			},
		})
	}
	if cfg.Obs != nil && cfg.Obs.SLO != nil {
		if err := s.attachSLO(cfg.Obs.SLO); err != nil {
			s.Close()
			return nil, err
		}
	}
	return s, nil
}

// flightProbes snapshots every shard's heartbeat for the flight
// watchdog: published atomics and a channel-length read, no event-loop
// round trips — the monitor can probe a wedged loop.
func (s *Service) flightProbes() []flight.ShardProbe {
	out := make([]flight.ShardProbe, len(s.shards))
	for i, sh := range s.shards {
		p := flight.ShardProbe{
			Shard:    i,
			QueueLen: len(sh.reqs),
			QueueCap: cap(sh.reqs),
		}
		if v := sh.lastBeat.Load(); v != 0 {
			p.LastTurn = time.Unix(0, v)
		}
		if v := sh.busySince.Load(); v != 0 {
			p.BusySince = time.Unix(0, v)
		}
		if s.walLogs != nil && s.walLogs[i] != nil {
			p.FsyncP99 = time.Duration(s.walLogs[i].FsyncQuantile(0.99))
		}
		out[i] = p
	}
	return out
}

// Shards returns the number of partitions.
func (s *Service) Shards() int { return len(s.shards) }

// M returns the per-partition processor count.
func (s *Service) M() int { return s.cfg.M }

// Floor returns the α-rule capacity floor ⌊α·M⌋ enforced on every shard.
func (s *Service) Floor() int { return s.floor }

// Placement returns the routing policy's name.
func (s *Service) Placement() string { return s.place.name() }

// Quotas returns the quota registry the service enforces, or nil when
// quotas are disabled.
func (s *Service) Quotas() *tenant.Registry { return s.cfg.Quotas }

// Cancel releases an admitted reservation, returning its capacity to the
// shard currently holding it — which, once the rebalancer has migrated
// the reservation, is no longer the shard encoded in the ID: Cancel
// follows the service's forwarding overlay, and a Cancel racing an
// in-flight migration waits the move out (the two-phase protocol keeps a
// pending copy uncancellable, so the release happens exactly once, on
// exactly one shard). Cancelling an unknown or already-cancelled ID
// returns ErrUnknownID.
func (s *Service) Cancel(id ID) error {
	if id.Shard() >= len(s.shards) {
		return fmt.Errorf("%w: %#x names shard %d of %d", ErrUnknownID, uint64(id), id.Shard(), len(s.shards))
	}
	for {
		si := id.Shard()
		fwd, forwarded := s.moved.Load(id)
		if forwarded {
			si = fwd.(int)
		}
		_, err := s.shards[si].do(request{kind: opCancel, id: id})
		switch {
		case err == nil:
			if forwarded {
				s.moved.Delete(id)
			}
			return nil
		case errors.Is(err, errMigratePending):
			// The reservation is mid-migration onto this shard; the
			// executor resolves the move promptly (or the service closes,
			// turning the retry into ErrClosed).
			runtime.Gosched()
		case errors.Is(err, ErrUnknownID):
			// Not here. If the forwarding overlay has (re)appeared and
			// points somewhere we have not just tried, the reservation
			// migrated underneath us — follow it. Otherwise it is really
			// gone.
			if v, ok := s.moved.Load(id); ok && v.(int) != si {
				continue
			}
			return err
		default:
			return err
		}
	}
}

// Query returns the capacity available at time t on every shard (index i
// is shard i). The per-shard answers are each exact at the instant their
// shard's event loop served them; across shards the slice is a loose
// snapshot, as any cross-partition view under concurrent traffic must be.
func (s *Service) Query(t core.Time) ([]int, error) {
	if t < 0 {
		return nil, fmt.Errorf("%w: Query(%v)", ErrBadRequest, t)
	}
	out := make([]int, len(s.shards))
	for i, sh := range s.shards {
		resp, err := sh.do(request{kind: opQuery, ready: t})
		if err != nil {
			return nil, err
		}
		out[i] = resp.free
	}
	return out, nil
}

// Snapshot returns an independent copy of one shard's capacity index,
// wrapped in profile.Synchronized so the caller may share it across
// goroutines. The copy is consistent (taken inside the event loop, between
// batches) and immediately stale, like any snapshot of a live system.
func (s *Service) Snapshot(shard int) (*profile.Synchronized, error) {
	if shard < 0 || shard >= len(s.shards) {
		return nil, fmt.Errorf("%w: shard %d of %d", ErrBadRequest, shard, len(s.shards))
	}
	resp, err := s.shards[shard].do(request{kind: opSnapshot})
	if err != nil {
		return nil, err
	}
	return profile.NewSynchronized(resp.snap), nil
}

// ShardStats is one shard's load summary.
type ShardStats struct {
	// Active is the number of currently admitted reservations.
	Active int
	// CommittedArea is the processor-tick area held by active
	// reservations (excluding Pre).
	CommittedArea int64
	// Admitted, Cancelled and Rejected count operations since start
	// (Rejected counts α-rule/capacity rejections only).
	Admitted, Cancelled, Rejected uint64
	// RejectedDeadline counts deadline rejections: requests that were
	// feasible on the shard but whose earliest start exceeded the
	// caller's deadline.
	RejectedDeadline uint64
	// RejectedQuota counts hard-mode quota rejections: requests that were
	// feasible on the shard but whose tenant had exhausted its budgeted
	// share of the reservable prefix.
	RejectedQuota uint64
	// MigratedIn and MigratedOut count reservations the rebalancer moved
	// onto and off the shard since start.
	MigratedIn, MigratedOut uint64
	// SlackP99 is the 99th-percentile start-time slack (admitted start −
	// ready time, in ticks) over the shard's admissions: the per-shard SLO
	// view of how far the α rule pushes work back. Estimated from an
	// exponential histogram — the reported value is at least the true p99
	// and less than twice it.
	SlackP99 core.Time
	// Batches and Ops count event-loop turns and requests served; Ops /
	// Batches is the realised group-commit factor.
	Batches, Ops uint64
}

// TenantStats is one shard's load summary for one tenant — the per-tenant
// slice of ShardStats, served consistently from inside the shard's event
// loop.
type TenantStats struct {
	// Active is the number of this tenant's currently held reservations
	// on the shard.
	Active int
	// CommittedArea is the processor-tick area those reservations hold.
	CommittedArea int64
	// Admitted, Cancelled and RejectedQuota count this tenant's
	// operations on the shard since start.
	Admitted, Cancelled, RejectedQuota uint64
	// MigratedIn and MigratedOut count this tenant's reservations the
	// rebalancer moved onto and off the shard.
	MigratedIn, MigratedOut uint64
	// SlackP99 is the tenant's 99th-percentile start-time slack on this
	// shard (see ShardStats.SlackP99): the per-tenant SLO metric.
	SlackP99 core.Time
}

// TenantStats returns one shard's per-tenant load summaries. The copy is
// taken inside the shard's event loop, between batches, so it is
// internally consistent (unlike Stats, which reads loosely-published
// atomics).
func (s *Service) TenantStats(shard int) (map[string]TenantStats, error) {
	if shard < 0 || shard >= len(s.shards) {
		return nil, fmt.Errorf("%w: shard %d of %d", ErrBadRequest, shard, len(s.shards))
	}
	resp, err := s.shards[shard].do(request{kind: opTenantStats})
	if err != nil {
		return nil, err
	}
	return resp.tstats, nil
}

// TenantTotals sums TenantStats across every shard: the service-wide
// per-tenant ledger as the shards see it (the quota registry keeps the
// same numbers lock-free; the two views must agree whenever the service
// is quiescent, which the stress tests assert).
func (s *Service) TenantTotals() (map[string]TenantStats, error) {
	out := make(map[string]TenantStats)
	for i := range s.shards {
		st, err := s.TenantStats(i)
		if err != nil {
			return nil, err
		}
		for name, ts := range st {
			tot := out[name]
			tot.Active += ts.Active
			tot.CommittedArea += ts.CommittedArea
			tot.Admitted += ts.Admitted
			tot.Cancelled += ts.Cancelled
			tot.RejectedQuota += ts.RejectedQuota
			tot.MigratedIn += ts.MigratedIn
			tot.MigratedOut += ts.MigratedOut
			// Percentiles do not sum; the max across shards is a sound
			// upper bound on the service-wide p99.
			if ts.SlackP99 > tot.SlackP99 {
				tot.SlackP99 = ts.SlackP99
			}
			out[name] = tot
		}
	}
	return out, nil
}

// WALInfo reports what WAL recovery found and did when the service was
// built (Enabled false when the service runs without a WAL).
func (s *Service) WALInfo() WALInfo { return s.walInfo }

// QueueDepths returns every shard's instantaneous event-loop queue
// length (index i is shard i) — a channel-length read, no event-loop
// round trip. The live-telemetry view of admission back-pressure.
func (s *Service) QueueDepths() []int {
	out := make([]int, len(s.shards))
	for i, sh := range s.shards {
		out[i] = len(sh.reqs)
	}
	return out
}

// WALShardStats is one shard's live write-ahead-log counters, as
// WALStats reports them for scrapes and Watch subscribers.
type WALShardStats struct {
	// Shard is the partition index.
	Shard int
	// Gen is the log generation currently being appended to.
	Gen uint64
	// Bytes and Records count appends since the log opened.
	Bytes, Records uint64
	// Fsyncs counts group-commit fsyncs; Snapshots counts completed
	// snapshot writes (log truncations).
	Fsyncs, Snapshots uint64
	// FsyncP99 is the 99th-percentile fsync latency in nanoseconds.
	FsyncP99 int64
	// Failed counts WAL write failures (a failed log degrades the shard
	// to non-durable; its other counters freeze at that point).
	Failed uint64
}

// WALStats returns every durable shard's live log counters, read from
// published atomics (nil when the service runs without a WAL). A shard
// that degraded after a log failure keeps reporting its frozen counters
// with Failed > 0.
func (s *Service) WALStats() []WALShardStats {
	if s.walLogs == nil {
		return nil
	}
	out := make([]WALShardStats, 0, len(s.walLogs))
	for i, wl := range s.walLogs {
		if wl == nil {
			continue
		}
		st := wl.Stats()
		out = append(out, WALShardStats{
			Shard:     i,
			Gen:       st.Gen,
			Bytes:     st.Bytes,
			Records:   st.Records,
			Fsyncs:    st.Fsyncs,
			Snapshots: st.Snapshots,
			FsyncP99:  wl.FsyncQuantile(0.99),
			Failed:    s.shards[i].walFailed.Load(),
		})
	}
	return out
}

// TraceCounts returns the admission-tracing counters: how many requests
// were sampled into the trace ring and how many of those met the slow
// threshold. Zero when tracing is disabled.
func (s *Service) TraceCounts() (sampled, slow uint64) {
	if s.tracer == nil {
		return 0, 0
	}
	return s.tracer.sampled.Load(), s.tracer.slowSeen.Load()
}

// Dump returns every committed reservation currently live on one shard,
// sorted by ID. The list is consistent (served from inside the shard's
// event loop between batches); a copy mid-way through a two-phase move
// is excluded until the move commits. It is the recovery oracle's view:
// a service restarted over its WAL must Dump identically to the service
// that wrote it.
func (s *Service) Dump(shard int) ([]Reservation, error) {
	if shard < 0 || shard >= len(s.shards) {
		return nil, fmt.Errorf("%w: shard %d of %d", ErrBadRequest, shard, len(s.shards))
	}
	resp, err := s.shards[shard].do(request{kind: opMigratable, ready: 0})
	if err != nil {
		return nil, err
	}
	out := make([]Reservation, 0, len(resp.cands))
	for _, c := range resp.cands {
		out = append(out, Reservation{ID: ID(c.ID), Shard: shard, Start: c.Start, Dur: c.Dur, Procs: c.Procs})
	}
	return out, nil
}

// Stats returns per-shard load summaries from the atomically published
// counters (no event-loop round trip; the numbers may trail in-flight
// batches by one turn).
func (s *Service) Stats() []ShardStats {
	out := make([]ShardStats, len(s.shards))
	for i, sh := range s.shards {
		out[i] = sh.stats()
	}
	return out
}

// Close stops every shard's event loop and waits for them to exit.
// In-flight and subsequent requests fail with ErrClosed.
func (s *Service) Close() {
	if s.slo != nil {
		// Stop the SLO ticks first: the engine only reads published
		// atomics, but a tick racing shutdown could journal a spurious
		// transition from a half-drained service.
		s.slo.Stop()
	}
	if s.flight != nil {
		// Stop the watchdog before the loops exit, so shutdown is never
		// judged a stall.
		s.flight.Detach()
	}
	close(s.quit)
	for _, sh := range s.shards {
		sh.wait()
	}
	s.tracer.close()
}
