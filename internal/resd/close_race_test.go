package resd

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/rng"
)

// TestCloseRacesInFlightReserve closes a service while many goroutines
// have Reserve calls in flight and asserts the shutdown contract: every
// call returns either a valid reservation or ErrClosed — never a torn
// result, never a hang. Run under -race this also checks that the quit
// broadcast and the shard event loops shut down without unsynchronised
// access to shard state.
func TestCloseRacesInFlightReserve(t *testing.T) {
	const (
		shards     = 4
		m          = 64
		goroutines = 16
		horizon    = 1 << 20
	)
	for _, backend := range []string{"array", "tree"} {
		t.Run(backend, func(t *testing.T) {
			svc, err := New(Config{Shards: shards, M: m, Backend: backend, Batch: 8})
			if err != nil {
				t.Fatal(err)
			}
			// Closers and reservers race freely; stop reserving only once
			// Close has been observed to return.
			closed := make(chan struct{})
			var wg sync.WaitGroup
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					r := rng.NewStream(31, uint64(g))
					for i := 0; ; i++ {
						ready := core.Time(r.Int63n(horizon))
						q := r.IntRange(1, m)
						dur := core.Time(r.Int63Range(1, 100))
						resv, err := svc.Reserve(ready, q, dur)
						switch {
						case err == nil:
							if resv.Start < ready || resv.Procs != q || resv.Dur != dur {
								t.Errorf("torn reservation %+v for (ready=%v q=%d dur=%v)", resv, ready, q, dur)
								return
							}
						case errors.Is(err, ErrClosed):
							return
						default:
							t.Errorf("Reserve returned %v, want success or ErrClosed", err)
							return
						}
						select {
						case <-closed:
							return
						default:
						}
					}
				}(g)
			}
			// Let the reservers build up in-flight traffic, then pull the rug.
			time.Sleep(2 * time.Millisecond)
			svc.Close()
			close(closed)

			// A watchdog distinguishes "a Reserve call hung at shutdown"
			// from ordinary slowness: the whole drain should take
			// microseconds, so seconds means a lost reply.
			done := make(chan struct{})
			go func() { wg.Wait(); close(done) }()
			select {
			case <-done:
			case <-time.After(30 * time.Second):
				t.Fatal("Reserve calls still blocked 30s after Close: shutdown lost a reply")
			}

			if _, err := svc.Reserve(0, 1, 1); !errors.Is(err, ErrClosed) {
				t.Fatalf("Reserve after Close = %v, want ErrClosed", err)
			}
		})
	}
}
