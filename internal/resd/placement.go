package resd

import (
	"fmt"
	"sort"
	"sync/atomic"

	"repro/internal/core"
)

// placement orders the shards a Reserve request should try. The returned
// order is a preference list: the service walks it until a shard admits.
// Implementations read only the shards' atomic load summaries, never the
// event-loop state, so routing is lock-free and may be (harmlessly) stale:
// the routed shard re-validates inside its loop. ten is the requesting
// tenant (already normalised, never empty); tenant-blind policies ignore
// it.
type placement interface {
	name() string
	order(shards []*shard, ten string, q int, dur core.Time) []int
}

// Placements lists the routing policies PlacementByName accepts.
func Placements() []string { return []string{"first-fit", "least-loaded", "p2c", "pressure"} }

// placementByName builds the named policy. seed feeds p2c's sampling.
func placementByName(name string, seed uint64) (placement, error) {
	switch name {
	case "first-fit":
		return firstFit{}, nil
	case "least-loaded":
		return leastLoaded{}, nil
	case "p2c":
		return &powerOfTwo{state: seed}, nil
	case "pressure":
		return pressurePlacement{}, nil
	default:
		return nil, fmt.Errorf("resd: unknown placement %q (available: %v)", name, Placements())
	}
}

// firstFit scans shards in index order: deterministic and deliberately
// naive — all load lands on the lowest-index shard that admits, which for
// earliest-fit admission is almost always shard 0. It is the baseline the
// balancing policies are measured against.
type firstFit struct{}

func (firstFit) name() string { return "first-fit" }

func (firstFit) order(shards []*shard, ten string, q int, dur core.Time) []int {
	out := make([]int, len(shards))
	for i := range out {
		out[i] = i
	}
	return out
}

// leastLoaded routes to the shard with the smallest committed area,
// breaking ties by index; the rest follow in load order as fallbacks.
type leastLoaded struct{}

func (leastLoaded) name() string { return "least-loaded" }

func (leastLoaded) order(shards []*shard, ten string, q int, dur core.Time) []int {
	out := make([]int, len(shards))
	loads := make([]int64, len(shards))
	for i, sh := range shards {
		out[i] = i
		loads[i] = sh.committedArea.Load()
	}
	sort.SliceStable(out, func(a, b int) bool { return loads[out[a]] < loads[out[b]] })
	return out
}

// powerOfTwo is power-of-two-choices on free area: sample two distinct
// shards, prefer the one with the smaller committed area (= larger free
// area over any common horizon). O(1) loads read per request, and by the
// classic balls-into-bins result the max load stays within
// O(log log S) of the mean — almost all the benefit of least-loaded
// without scanning every shard.
type powerOfTwo struct {
	state uint64 // splitmix64 state advanced atomically per request
}

func (*powerOfTwo) name() string { return "p2c" }

// next advances the shared state and returns a splitmix64 output. Atomic
// add keeps the sampler lock-free under concurrent Reserves; the exact
// sequence interleaving is irrelevant, only uniformity matters.
func (p *powerOfTwo) next() uint64 {
	z := atomic.AddUint64(&p.state, 0x9E3779B97F4A7C15)
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	return z ^ (z >> 31)
}

func (p *powerOfTwo) order(shards []*shard, ten string, q int, dur core.Time) []int {
	n := len(shards)
	if n == 1 {
		return []int{0}
	}
	r := p.next()
	a := int(r % uint64(n))
	b := int((r >> 32) % uint64(n-1))
	if b >= a {
		b++
	}
	if shards[b].committedArea.Load() < shards[a].committedArea.Load() {
		a, b = b, a
	}
	out := make([]int, 0, n)
	out = append(out, a, b)
	for i := 0; i < n; i++ {
		if i != a && i != b {
			out = append(out, i)
		}
	}
	return out
}

// pressurePlacement routes by per-tenant shard pressure: the requesting
// tenant's committed area on each shard (read from the shards' lock-free
// per-tenant mirrors), lowest first, with total committed area and then
// index breaking ties. With per-shard budget shares equal — which is how
// the quota registry resolves budgets, globally, with no per-shard skew —
// ordering by the tenant's usage-to-budget ratio on a shard and ordering
// by its raw usage there coincide, so the policy needs no registry
// handle and works with quotas disabled too. The effect is quota-aware
// placement: each tenant's own footprint is spread across partitions, so
// a zipf-heavy tenant saturates no single shard while small tenants are
// routed around the hot spots the heavy hitters made.
type pressurePlacement struct{}

func (pressurePlacement) name() string { return "pressure" }

func (pressurePlacement) order(shards []*shard, ten string, q int, dur core.Time) []int {
	out := make([]int, len(shards))
	mine := make([]int64, len(shards))
	loads := make([]int64, len(shards))
	for i, sh := range shards {
		out[i] = i
		mine[i] = sh.tenantArea(ten)
		loads[i] = sh.committedArea.Load()
	}
	sort.SliceStable(out, func(a, b int) bool {
		if mine[out[a]] != mine[out[b]] {
			return mine[out[a]] < mine[out[b]]
		}
		return loads[out[a]] < loads[out[b]]
	})
	return out
}
