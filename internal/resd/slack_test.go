package resd

import (
	"testing"

	"repro/internal/core"
)

func TestSlackHist(t *testing.T) {
	var h slackHist
	if h.p99() != 0 {
		t.Fatalf("empty hist p99 = %v", h.p99())
	}
	h.add(0)
	if h.p99() != 0 {
		t.Fatalf("all-zero hist p99 = %v", h.p99())
	}
	// One large sample among fifty zeros is ~2% of the stream: the p99
	// rank lands on it.
	for i := 0; i < 49; i++ {
		h.add(0)
	}
	h.add(1000) // bucket 10: [512, 1024)
	if got := h.p99(); got != 1023 {
		t.Fatalf("p99 = %v, want 1023 (bucket upper bound)", got)
	}
	// A much rarer outlier — one in several hundred — stays below the p99
	// rank and must not be reported.
	for i := 0; i < 450; i++ {
		h.add(0)
	}
	if got := h.p99(); got != 0 {
		t.Fatalf("p99 with a sub-1%% outlier = %v, want 0", got)
	}
	// The estimate brackets the truth: at least the true p99, under 2×.
	var g slackHist
	for i := 0; i < 100; i++ {
		g.add(5)
	}
	if got := g.p99(); got < 5 || got > 11 {
		t.Fatalf("p99 of constant 5 = %v, want within [5, 2·5+1]", got)
	}
	if bucketUpper(64) != core.Infinity {
		t.Fatalf("top bucket upper = %v", bucketUpper(64))
	}
}

// TestSlackStatsSurfaces checks the SLO metric end to end in-process: an
// admission pushed back by a full window records its slack, and both the
// shard-level and per-tenant p99 surfaces report it.
func TestSlackStatsSurfaces(t *testing.T) {
	s := mustNew(t, Config{M: 8})
	if _, err := s.ReserveFor("acme", 0, 8, 10, NoDeadline); err != nil { // slack 0
		t.Fatal(err)
	}
	r2, err := s.ReserveFor("acme", 0, 8, 10, NoDeadline) // pushed to start 10: slack 10
	if err != nil {
		t.Fatal(err)
	}
	if r2.Start != 10 {
		t.Fatalf("second admission starts at %v, want 10", r2.Start)
	}
	// Slack 10 lives in bucket 4 ([8,16)), whose upper bound is 15; two
	// samples put the p99 rank on the larger one.
	if got := s.Stats()[0].SlackP99; got != 15 {
		t.Fatalf("ShardStats.SlackP99 = %v, want 15", got)
	}
	ts, err := s.TenantStats(0)
	if err != nil {
		t.Fatal(err)
	}
	if got := ts["acme"].SlackP99; got != 15 {
		t.Fatalf("TenantStats.SlackP99 = %v, want 15", got)
	}
	tot, err := s.TenantTotals()
	if err != nil {
		t.Fatal(err)
	}
	if got := tot["acme"].SlackP99; got != 15 {
		t.Fatalf("TenantTotals SlackP99 = %v, want 15", got)
	}
}
