package resd

import (
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/rng"
	"repro/internal/sched"
	"repro/internal/workload"
)

// mustNew builds a service and registers its shutdown with the test.
func mustNew(t *testing.T, cfg Config) *Service {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New(%+v): %v", cfg, err)
	}
	t.Cleanup(s.Close)
	return s
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{M: 0},
		{M: -3},
		{M: 8, Alpha: -0.1},
		{M: 8, Alpha: 1.5},
		{M: 8, Shards: -1},
		{M: 8, Batch: -2},
		{M: 8, Placement: "no-such-policy"},
		{M: 8, Pre: []core.Reservation{{ID: 0, Procs: 9, Start: 0, Len: 5}}}, // oversubscribed
	}
	for _, cfg := range bad {
		if s, err := New(cfg); err == nil {
			s.Close()
			t.Errorf("New(%+v) succeeded, want error", cfg)
		}
	}
	s := mustNew(t, Config{M: 8})
	if s.Shards() != 1 || s.M() != 8 || s.Floor() != 0 || s.Placement() != "least-loaded" {
		t.Errorf("defaults wrong: shards=%d m=%d floor=%d placement=%q",
			s.Shards(), s.M(), s.Floor(), s.Placement())
	}
}

func TestReserveEnforcesAlphaRule(t *testing.T) {
	// m=8, α=1/2: every shard must keep 4 processors free of reservations.
	s := mustNew(t, Config{M: 8, Alpha: 0.5})
	if s.Floor() != 4 {
		t.Fatalf("floor = %d, want 4", s.Floor())
	}
	if _, err := s.Reserve(0, 5, 10); !errors.Is(err, ErrNeverFits) {
		t.Fatalf("q=5 admitted past the α-floor: %v", err)
	}
	r1, err := s.Reserve(0, 4, 10)
	if err != nil || r1.Start != 0 {
		t.Fatalf("first q=4: %+v, %v", r1, err)
	}
	// A second q=4 in the same window would leave 0 free; the α rule
	// forces it to start after the first ends.
	r2, err := s.Reserve(0, 4, 10)
	if err != nil || r2.Start != 10 {
		t.Fatalf("second q=4: start=%v err=%v, want start=10", r2.Start, err)
	}
	// Narrow reservations still fit alongside r1 (4 committed + 1 <= 4 free
	// is violated, so even q=1 must wait: 8-4-4=0 head-room remains).
	r3, err := s.Reserve(0, 1, 5)
	if err != nil || r3.Start != 20 {
		t.Fatalf("q=1: start=%v err=%v, want start=20 (after both q=4 holds)", r3.Start, err)
	}
}

func TestReserveBadArgs(t *testing.T) {
	s := mustNew(t, Config{M: 8})
	for _, c := range []struct {
		ready core.Time
		q     int
		dur   core.Time
	}{{-1, 1, 1}, {0, 0, 1}, {0, -2, 1}, {0, 1, 0}, {0, 1, -5}} {
		if _, err := s.Reserve(c.ready, c.q, c.dur); !errors.Is(err, ErrBadRequest) {
			t.Errorf("Reserve(%v,%d,%v) err = %v, want ErrBadRequest", c.ready, c.q, c.dur, err)
		}
	}
}

func TestCancelReturnsCapacity(t *testing.T) {
	s := mustNew(t, Config{M: 4})
	r, err := s.Reserve(5, 4, 10)
	if err != nil {
		t.Fatal(err)
	}
	free, err := s.Query(7)
	if err != nil || free[0] != 0 {
		t.Fatalf("Query(7) = %v, %v; want [0]", free, err)
	}
	if err := s.Cancel(r.ID); err != nil {
		t.Fatal(err)
	}
	free, err = s.Query(7)
	if err != nil || free[0] != 4 {
		t.Fatalf("Query(7) after cancel = %v, %v; want [4]", free, err)
	}
	if err := s.Cancel(r.ID); !errors.Is(err, ErrUnknownID) {
		t.Fatalf("double cancel err = %v, want ErrUnknownID", err)
	}
	if err := s.Cancel(makeID(3, 0)); !errors.Is(err, ErrUnknownID) {
		t.Fatalf("cancel on missing shard err = %v, want ErrUnknownID", err)
	}
}

func TestPreReservationsAreExemptFromAlpha(t *testing.T) {
	// Pre holds 6 of 8 on [0,10) — more than α=0.5 would admit — and new
	// requests must work around it.
	s := mustNew(t, Config{M: 8, Alpha: 0.5, Pre: []core.Reservation{
		{ID: 0, Procs: 6, Start: 0, Len: 10},
	}})
	r, err := s.Reserve(0, 4, 5)
	if err != nil || r.Start != 10 {
		t.Fatalf("Reserve around Pre: start=%v err=%v, want 10", r.Start, err)
	}
}

func TestFirstFitPilesOnShardZero(t *testing.T) {
	s := mustNew(t, Config{M: 8, Shards: 4, Placement: "first-fit"})
	for i := 0; i < 12; i++ {
		r, err := s.Reserve(0, 2, 10)
		if err != nil {
			t.Fatal(err)
		}
		if r.Shard != 0 {
			t.Fatalf("first-fit routed to shard %d", r.Shard)
		}
	}
	st := s.Stats()
	if st[0].Active != 12 || st[1].Active != 0 {
		t.Fatalf("load landed off shard 0: %+v", st)
	}
}

func TestLeastLoadedSpreadsEvenly(t *testing.T) {
	s := mustNew(t, Config{M: 8, Shards: 4, Placement: "least-loaded"})
	for i := 0; i < 16; i++ {
		if _, err := s.Reserve(0, 2, 10); err != nil {
			t.Fatal(err)
		}
	}
	for i, st := range s.Stats() {
		if st.Active != 4 {
			t.Fatalf("shard %d holds %d of 16 equal reservations, want 4 (stats %+v)",
				i, st.Active, s.Stats())
		}
	}
}

func TestPowerOfTwoSpreads(t *testing.T) {
	s := mustNew(t, Config{M: 8, Shards: 4, Placement: "p2c", Seed: 42})
	for i := 0; i < 64; i++ {
		if _, err := s.Reserve(0, 2, 10); err != nil {
			t.Fatal(err)
		}
	}
	max := 0
	touched := 0
	for _, st := range s.Stats() {
		if st.Active > max {
			max = st.Active
		}
		if st.Active > 0 {
			touched++
		}
	}
	if touched < 3 {
		t.Fatalf("p2c touched only %d of 4 shards: %+v", touched, s.Stats())
	}
	// Two-choice balancing: no shard should hold the majority.
	if max > 32 {
		t.Fatalf("p2c max load %d of 64: %+v", max, s.Stats())
	}
}

func TestCloseRejectsFurtherRequests(t *testing.T) {
	s, err := New(Config{M: 8, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Reserve(0, 1, 1); err != nil {
		t.Fatal(err)
	}
	s.Close()
	if _, err := s.Reserve(0, 1, 1); !errors.Is(err, ErrClosed) {
		t.Fatalf("Reserve after Close err = %v, want ErrClosed", err)
	}
	if err := s.Cancel(makeID(0, 0)); !errors.Is(err, ErrClosed) {
		t.Fatalf("Cancel after Close err = %v, want ErrClosed", err)
	}
	if _, err := s.Query(0); !errors.Is(err, ErrClosed) {
		t.Fatalf("Query after Close err = %v, want ErrClosed", err)
	}
}

func TestSnapshotIsIndependent(t *testing.T) {
	s := mustNew(t, Config{M: 8})
	if _, err := s.Reserve(0, 3, 10); err != nil {
		t.Fatal(err)
	}
	snap, err := s.Snapshot(0)
	if err != nil {
		t.Fatal(err)
	}
	if got := snap.AvailableAt(5); got != 5 {
		t.Fatalf("snapshot avail(5) = %d, want 5", got)
	}
	// Mutating the live shard must not show through the snapshot.
	if _, err := s.Reserve(0, 5, 10); err != nil {
		t.Fatal(err)
	}
	if got := snap.AvailableAt(5); got != 5 {
		t.Fatalf("snapshot changed under live traffic: avail(5) = %d", got)
	}
	if _, err := s.Snapshot(7); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("Snapshot(7) err = %v, want ErrBadRequest", err)
	}
}

// TestSerialReplayMatchesFCFS is the determinism bridge back to the
// paper's offline world: a single-shard service, α=0, replaying a job
// stream serially with each ready time chained to the previous start must
// place every job exactly where sched.FCFS places it offline — on either
// capacity backend.
func TestSerialReplayMatchesFCFS(t *testing.T) {
	r := rng.New(20260729)
	inst, err := workload.SyntheticInstance(r.Split(), workload.SynthConfig{
		M: 32, N: 200, MinRun: 5, MaxRun: 500, MaxWidthFrac: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	inst.Res = workload.ReservationStream(r.Split(), 32, 0.5, 12, 20000)
	for _, backend := range []string{"array", "tree"} {
		t.Run(backend, func(t *testing.T) {
			want, err := sched.FCFS{Backend: backend}.Schedule(inst)
			if err != nil {
				t.Fatal(err)
			}
			s := mustNew(t, Config{M: inst.M, Backend: backend, Pre: inst.Res})
			ready := core.Time(0)
			for idx, j := range inst.Jobs {
				resv, err := s.Reserve(ready, j.Procs, j.Len)
				if err != nil {
					t.Fatalf("job %d: %v", idx, err)
				}
				if resv.Start != want.Start[idx] {
					t.Fatalf("job %d placed at %v, FCFS places it at %v", idx, resv.Start, want.Start[idx])
				}
				ready = resv.Start
			}
		})
	}
}
