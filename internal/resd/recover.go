package resd

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/flight"
	"repro/internal/tenant"
	"repro/internal/wal"
)

// WALInfo summarises what recovery found and did. Zero-valued (Enabled
// false) when the service runs without a WAL.
type WALInfo struct {
	// Enabled reports whether the service writes a WAL; Dir is where.
	Enabled bool
	Dir     string
	// Records is how many log records replay applied across all shards;
	// Snapshots counts shards whose replay was anchored by a snapshot.
	Records   int
	Snapshots int
	// Torn counts shards whose newest log ended in a truncated frame
	// (the normal crash signature); Corrupt counts shards with an
	// invalid frame before the tail (real damage — the suffix was
	// dropped). DroppedBytes totals both kinds of discarded bytes.
	Torn         int
	Corrupt      int
	DroppedBytes int64
	// MovesCommitted and MovesAborted count two-phase migrations that
	// were mid-flight at the crash and were resolved by recovery.
	MovesCommitted, MovesAborted int
	// Replay is how long recovery took, start of scan to shards seeded.
	Replay time.Duration
}

// seq extracts the shard-local sequence number an ID was minted with.
func (id ID) seq() uint64 { return uint64(id) & (1<<(64-shardBits) - 1) }

// shardSeed is one shard's recovered pre-crash state, handed to
// newShard to rebuild the capacity index, books and counters before
// the event loop starts.
type shardSeed struct {
	log     *wal.Log
	nextSeq uint64

	admitted, cancelled, migratedIn, migratedOut uint64

	books    map[string]TenantStats
	live     map[ID]active
	openOuts map[ID]int
	// fixups are records recovery decided but the crash lost (move
	// commits/aborts, open-out acks): appended to the fresh boot
	// generation so the resolution is durable even without snapshots.
	fixups []wal.Record
}

func newShardSeed() *shardSeed {
	return &shardSeed{
		books:    make(map[string]TenantStats),
		live:     make(map[ID]active),
		openOuts: make(map[ID]int),
	}
}

// statKey mirrors shard.tstatKey against the seed's books: replay must
// land every admission in the same (possibly overflow-bounded) book the
// original run used, and both sides resolve names the same way because
// the book set itself is rebuilt in the original order.
func (sd *shardSeed) statKey(name string) string {
	if _, ok := sd.books[name]; ok {
		return name
	}
	if len(sd.books) >= tenant.MaxAccounts {
		return OverflowTenant
	}
	return name
}

// corruptState reports replay arriving at an impossible transition —
// the log itself was CRC-clean, so the records contradict each other.
func corruptState(shard int, format string, args ...any) error {
	return fmt.Errorf("resd: wal replay shard %d: %w: %s", shard, wal.ErrCorrupt, fmt.Sprintf(format, args...))
}

// replayShard rebuilds one shard's state from its snapshot and the
// records after it. Pure bookkeeping: the capacity index is rebuilt
// later, from the surviving live set.
func replayShard(shard int, snap *wal.Snapshot, recs []wal.Record) (*shardSeed, error) {
	sd := newShardSeed()
	if snap != nil {
		sd.nextSeq = snap.NextSeq
		sd.admitted, sd.cancelled = snap.Admitted, snap.Cancelled
		sd.migratedIn, sd.migratedOut = snap.MigratedIn, snap.MigratedOut
		for _, bk := range snap.Books {
			sd.books[bk.Tenant] = TenantStats{
				Active: int(bk.Active), CommittedArea: bk.Area,
				Admitted: bk.Admitted, Cancelled: bk.Cancelled, RejectedQuota: bk.RejectedQuota,
				MigratedIn: bk.MigratedIn, MigratedOut: bk.MigratedOut,
			}
		}
		for _, lv := range snap.Live {
			sd.live[ID(lv.ID)] = active{
				start: core.Time(lv.Start), dur: core.Time(lv.Dur), q: lv.Procs,
				tenant: lv.Tenant, statKey: sd.statKey(lv.Tenant),
				pending: lv.Pending, from: int(lv.From),
			}
		}
		for _, oo := range snap.OpenOuts {
			sd.openOuts[ID(oo.ID)] = int(oo.To)
		}
	}
	for _, rec := range recs {
		if err := sd.apply(shard, rec); err != nil {
			return nil, err
		}
	}
	return sd, nil
}

// apply replays one record, mirroring the shard event-loop transitions
// exactly (books, counters, live set — everything but the index).
func (sd *shardSeed) apply(shard int, rec wal.Record) error {
	id := ID(rec.ID)
	switch rec.Type {
	case wal.TAdmit:
		if _, dup := sd.live[id]; dup {
			return corruptState(shard, "admit of live id %#x", rec.ID)
		}
		key := sd.statKey(rec.Tenant)
		a := active{
			start: core.Time(rec.Start), dur: core.Time(rec.Dur), q: rec.Procs,
			tenant: rec.Tenant, statKey: key,
		}
		sd.live[id] = a
		area := int64(a.dur) * int64(a.q)
		bk := sd.books[key]
		bk.Active++
		bk.CommittedArea += area
		bk.Admitted++
		sd.books[key] = bk
		sd.admitted++
		if s := id.seq(); s >= sd.nextSeq {
			sd.nextSeq = s + 1
		}
	case wal.TCancel:
		a, ok := sd.live[id]
		if !ok || a.pending {
			return corruptState(shard, "cancel of unknown id %#x", rec.ID)
		}
		delete(sd.live, id)
		area := int64(a.dur) * int64(a.q)
		bk := sd.books[a.statKey]
		bk.Active--
		bk.CommittedArea -= area
		bk.Cancelled++
		sd.books[a.statKey] = bk
		sd.cancelled++
	case wal.TMigrateIn:
		if _, dup := sd.live[id]; dup {
			return corruptState(shard, "migrate-in of live id %#x", rec.ID)
		}
		sd.live[id] = active{
			start: core.Time(rec.Start), dur: core.Time(rec.Dur), q: rec.Procs,
			tenant: rec.Tenant, statKey: sd.statKey(rec.Tenant),
			pending: true, from: int(rec.Peer),
		}
	case wal.TMigrateOut:
		a, ok := sd.live[id]
		if !ok || a.pending {
			return corruptState(shard, "migrate-out of unknown id %#x", rec.ID)
		}
		delete(sd.live, id)
		area := int64(a.dur) * int64(a.q)
		bk := sd.books[a.statKey]
		bk.Active--
		bk.CommittedArea -= area
		bk.MigratedOut++
		sd.books[a.statKey] = bk
		sd.migratedOut++
		sd.openOuts[id] = int(rec.Peer)
	case wal.TMigrateCommit:
		a, ok := sd.live[id]
		if !ok || !a.pending {
			return corruptState(shard, "migrate-commit without pending id %#x", rec.ID)
		}
		sd.commitPending(id, a)
	case wal.TMigrateAbort:
		a, ok := sd.live[id]
		if !ok || !a.pending {
			return corruptState(shard, "migrate-abort without pending id %#x", rec.ID)
		}
		delete(sd.live, id)
	case wal.TMigrateOutAck:
		delete(sd.openOuts, id)
	default:
		return corruptState(shard, "unknown record type %d", rec.Type)
	}
	return nil
}

// commitPending finalises a pending migrated-in copy in the seed,
// mirroring shard.migrateCommit.
func (sd *shardSeed) commitPending(id ID, a active) {
	a.pending = false
	a.from = 0
	sd.live[id] = a
	area := int64(a.dur) * int64(a.q)
	bk := sd.books[a.statKey]
	bk.Active++
	bk.CommittedArea += area
	bk.MigratedIn++
	sd.books[a.statKey] = bk
	sd.migratedIn++
}

// resolvePending settles every two-phase move the crash left mid-
// flight. A pending migrated-in copy on shard t commits exactly when
// its source shard's open-out names t — proof the source durably
// released the reservation toward t — and aborts otherwise (the source
// either still holds the copy or durably cancelled it). The fsync
// ordering of the move protocol (in durable before out is sent, out
// durable before commit is sent) makes the open-out test sound: the
// answer a crash-free executor would have reached is the one recovery
// reaches. Every resolution (and every stale open-out left by a lost
// ack) is queued as a fixup record so the judgment is durable.
func resolvePending(seeds []*shardSeed) (committed, aborted int) {
	for t, sd := range seeds {
		// Deterministic order, so fixup logs are reproducible.
		ids := make([]ID, 0)
		for id, a := range sd.live {
			if a.pending {
				ids = append(ids, id)
			}
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for _, id := range ids {
			a := sd.live[id]
			src := a.from
			if src >= 0 && src < len(seeds) {
				if to, open := seeds[src].openOuts[id]; open && to == t {
					sd.commitPending(id, a)
					sd.fixups = append(sd.fixups, wal.Record{Type: wal.TMigrateCommit, ID: uint64(id)})
					delete(seeds[src].openOuts, id)
					seeds[src].fixups = append(seeds[src].fixups, wal.Record{Type: wal.TMigrateOutAck, ID: uint64(id)})
					committed++
					continue
				}
			}
			delete(sd.live, id)
			sd.fixups = append(sd.fixups, wal.Record{Type: wal.TMigrateAbort, ID: uint64(id)})
			aborted++
		}
	}
	// Any open-out still unconsumed is a move whose target committed
	// durably but whose ack was lost (or whose migrated copy has since
	// been cancelled on the target): close it so no future recovery can
	// misread it as an in-flight move.
	for _, sd := range seeds {
		ids := make([]ID, 0, len(sd.openOuts))
		for id := range sd.openOuts {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for _, id := range ids {
			delete(sd.openOuts, id)
			sd.fixups = append(sd.fixups, wal.Record{Type: wal.TMigrateOutAck, ID: uint64(id)})
		}
	}
	return committed, aborted
}

// recoverShards runs the whole recovery pipeline: scan each shard's
// durable files, replay, resolve cross-shard moves, open the boot
// generation (appending the resolution fixups), and re-charge the
// quota registry. Returns nil seeds when cfg.WAL is nil.
func recoverShards(cfg Config) ([]*shardSeed, WALInfo, error) {
	var info WALInfo
	if cfg.WAL == nil {
		return nil, info, nil
	}
	begin := time.Now()
	info.Enabled = true
	info.Dir = cfg.WAL.Dir
	journal := cfg.WAL.Journal
	seeds := make([]*shardSeed, cfg.Shards)
	for i := range seeds {
		snap, recs, ri, err := wal.Recover(cfg.WAL.Dir, i)
		if err != nil {
			return nil, info, fmt.Errorf("resd: shard %d: %w", i, err)
		}
		info.Records += ri.Records
		if ri.HasSnapshot {
			info.Snapshots++
		}
		if ri.Torn {
			info.Torn++
			info.DroppedBytes += ri.TornBytes
			// The normal crash signature: an fsync interrupted mid-frame.
			journal.Record(flight.Warn, "resd", i, "wal replay: torn tail dropped",
				flight.KV{K: "bytes", V: fmt.Sprint(ri.TornBytes)})
		}
		if ri.Corrupt {
			info.Corrupt++
			info.DroppedBytes += ri.DroppedBytes
			journal.Record(flight.Error, "resd", i, "wal replay: corrupt frame, suffix dropped",
				flight.KV{K: "bytes", V: fmt.Sprint(ri.DroppedBytes)})
		}
		seeds[i], err = replayShard(i, snap, recs)
		if err != nil {
			return nil, info, err
		}
	}
	info.MovesCommitted, info.MovesAborted = resolvePending(seeds)
	journal.Record(flight.Info, "resd", -1, "wal replay complete",
		flight.KV{K: "records", V: fmt.Sprint(info.Records)},
		flight.KV{K: "snapshots", V: fmt.Sprint(info.Snapshots)},
		flight.KV{K: "torn", V: fmt.Sprint(info.Torn)},
		flight.KV{K: "corrupt", V: fmt.Sprint(info.Corrupt)},
		flight.KV{K: "moves_committed", V: fmt.Sprint(info.MovesCommitted)},
		flight.KV{K: "moves_aborted", V: fmt.Sprint(info.MovesAborted)})
	closeAll := func() {
		for _, sd := range seeds {
			if sd.log != nil {
				sd.log.Close()
			}
		}
	}
	for i, sd := range seeds {
		l, err := wal.Open(i, *cfg.WAL)
		if err != nil {
			closeAll()
			return nil, info, fmt.Errorf("resd: shard %d: %w", i, err)
		}
		sd.log = l
		for _, rec := range sd.fixups {
			if err := l.Append(rec); err != nil {
				closeAll()
				return nil, info, fmt.Errorf("resd: shard %d: %w", i, err)
			}
		}
		if err := l.Commit(); err != nil {
			closeAll()
			return nil, info, fmt.Errorf("resd: shard %d: %w", i, err)
		}
	}
	// Re-charge the quota registry: every surviving reservation holds
	// exactly the budget its original admission acquired. The pre-crash
	// state was legal, so a failure here means the spec shrank under the
	// recovered load — surfaced, not silently dropped.
	if cfg.Quotas != nil {
		for i, sd := range seeds {
			ids := make([]ID, 0, len(sd.live))
			for id := range sd.live {
				ids = append(ids, id)
			}
			sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
			for _, id := range ids {
				a := sd.live[id]
				area := int64(a.dur) * int64(a.q)
				if err := cfg.Quotas.Acquire(a.tenant, area); err != nil {
					closeAll()
					return nil, info, fmt.Errorf("resd: shard %d: recovered reservation %#x no longer fits tenant %q's quota: %w",
						i, uint64(id), a.tenant, err)
				}
				cfg.Quotas.Admit(a.tenant)
			}
		}
	}
	info.Replay = time.Since(begin)
	return seeds, info, nil
}

// bootSnapshot captures a seed's state as the snapshot anchoring the
// freshly opened boot generation.
func (sd *shardSeed) bootSnapshot(shard int, gen uint64) *wal.Snapshot {
	return buildSnapshot(shard, gen, sd.nextSeq,
		sd.admitted, sd.cancelled, sd.migratedIn, sd.migratedOut,
		sd.books, sd.live, sd.openOuts)
}

// buildSnapshot assembles a wal.Snapshot from shard-shaped state (used
// both for the boot snapshot and the loop's periodic captures).
func buildSnapshot(shard int, gen, nextSeq uint64,
	admitted, cancelled, migratedIn, migratedOut uint64,
	books map[string]TenantStats, live map[ID]active, openOuts map[ID]int) *wal.Snapshot {
	s := &wal.Snapshot{
		Shard: shard, Gen: gen, NextSeq: nextSeq,
		Admitted: admitted, Cancelled: cancelled,
		MigratedIn: migratedIn, MigratedOut: migratedOut,
	}
	for name, ts := range books {
		s.Books = append(s.Books, wal.TenantBook{
			Tenant: name, Active: int64(ts.Active), Area: ts.CommittedArea,
			Admitted: ts.Admitted, Cancelled: ts.Cancelled, RejectedQuota: ts.RejectedQuota,
			MigratedIn: ts.MigratedIn, MigratedOut: ts.MigratedOut,
		})
	}
	for id, a := range live {
		s.Live = append(s.Live, wal.Live{
			ID: uint64(id), Start: int64(a.start), Dur: int64(a.dur), Procs: a.q,
			Tenant: a.tenant, Pending: a.pending, From: uint32(a.from),
		})
	}
	for id, to := range openOuts {
		s.OpenOuts = append(s.OpenOuts, wal.OpenOut{ID: uint64(id), To: uint32(to)})
	}
	return s
}
