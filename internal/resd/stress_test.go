package resd

import (
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/rng"
)

// TestStressConservation hammers a sharded service from many goroutines
// with a mixed Reserve/Cancel/Query stream and asserts conservation of
// committed capacity: every admission the clients still hold at the end is
// accounted for in the shards' books, and once the clients cancel
// everything, every shard's index returns to the pristine constant-m
// profile. Run under -race this also exercises the confinement claims of
// the shard loops, the atomic load summaries and the p2c sampler.
func TestStressConservation(t *testing.T) {
	const (
		shards     = 4
		m          = 64
		goroutines = 8
		opsPerG    = 400
		horizon    = 100000
	)
	for _, backend := range []string{"array", "tree"} {
		for _, placement := range []string{"first-fit", "least-loaded", "p2c"} {
			t.Run(backend+"/"+placement, func(t *testing.T) {
				s := mustNew(t, Config{
					Shards: shards, M: m, Alpha: 0.25, Backend: backend,
					Placement: placement, Seed: 99, Batch: 16,
				})
				held := make([][]Reservation, goroutines)
				var wg sync.WaitGroup
				for g := 0; g < goroutines; g++ {
					wg.Add(1)
					go func(g int) {
						defer wg.Done()
						r := rng.NewStream(7, uint64(g))
						for i := 0; i < opsPerG; i++ {
							switch {
							case r.Bool(0.2) && len(held[g]) > 0:
								k := r.Intn(len(held[g]))
								resv := held[g][k]
								held[g] = append(held[g][:k], held[g][k+1:]...)
								if err := s.Cancel(resv.ID); err != nil {
									t.Errorf("cancel %#x: %v", uint64(resv.ID), err)
									return
								}
							case r.Bool(0.15):
								if _, err := s.Query(core.Time(r.Int63n(horizon))); err != nil {
									t.Errorf("query: %v", err)
									return
								}
							default:
								ready := core.Time(r.Int63n(horizon))
								q := r.IntRange(1, m/2)
								dur := core.Time(r.Int63Range(1, 200))
								resv, err := s.Reserve(ready, q, dur)
								if err != nil {
									t.Errorf("reserve(q=%d): %v", q, err)
									return
								}
								if resv.Start < ready || resv.Procs != q || resv.Dur != dur {
									t.Errorf("bad admission %+v for ready=%v q=%d dur=%v", resv, ready, q, dur)
									return
								}
								held[g] = append(held[g], resv)
							}
						}
					}(g)
				}
				wg.Wait()
				if t.Failed() {
					return
				}

				// Mid-state conservation: the books must account for
				// exactly the reservations the clients still hold.
				var wantActive int
				var wantArea int64
				for g := range held {
					wantActive += len(held[g])
					for _, resv := range held[g] {
						wantArea += int64(resv.Dur) * int64(resv.Procs)
					}
				}
				var gotActive int
				var gotArea int64
				for _, st := range s.Stats() {
					gotActive += st.Active
					gotArea += st.CommittedArea
				}
				if gotActive != wantActive || gotArea != wantArea {
					t.Fatalf("books disagree with clients: active %d vs %d, area %d vs %d",
						gotActive, wantActive, gotArea, wantArea)
				}

				// Drain and verify every shard returns to constant m.
				for g := range held {
					for _, resv := range held[g] {
						if err := s.Cancel(resv.ID); err != nil {
							t.Fatalf("drain cancel: %v", err)
						}
					}
				}
				for i := 0; i < shards; i++ {
					snap, err := s.Snapshot(i)
					if err != nil {
						t.Fatal(err)
					}
					if snap.NumSegments() != 1 || snap.AvailableAt(0) != m {
						t.Fatalf("shard %d not pristine after full drain: %v", i, snap)
					}
				}
				for i, st := range s.Stats() {
					if st.Active != 0 || st.CommittedArea != 0 || st.Admitted != st.Cancelled {
						t.Fatalf("shard %d books not balanced: %+v", i, st)
					}
				}
			})
		}
	}
}

// TestStressConcurrentSnapshots interleaves snapshots and queries with
// writes so -race sees readers racing the event loops through every public
// path, including the Synchronized wrapper.
func TestStressConcurrentSnapshots(t *testing.T) {
	s := mustNew(t, Config{Shards: 2, M: 16, Backend: "tree", Placement: "p2c"})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r := rng.NewStream(11, uint64(g))
			for i := 0; i < 150; i++ {
				if g%2 == 0 {
					resv, err := s.Reserve(core.Time(r.Int63n(5000)), r.IntRange(1, 8), core.Time(r.Int63Range(1, 50)))
					if err != nil {
						t.Errorf("reserve: %v", err)
						return
					}
					if r.Bool(0.5) {
						if err := s.Cancel(resv.ID); err != nil {
							t.Errorf("cancel: %v", err)
							return
						}
					}
				} else {
					snap, err := s.Snapshot(g % 2)
					if err != nil {
						t.Errorf("snapshot: %v", err)
						return
					}
					if snap.M() != 16 || snap.FreeArea(0, 5000) < 0 {
						t.Errorf("snapshot inconsistent: %v", snap)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
}
