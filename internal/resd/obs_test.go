package resd

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/tenant"
)

// TestObsMetricsEndToEnd drives an instrumented service and checks the
// acceptance surface of a scrape: per-shard queue depth, ops/batch,
// admission outcomes, migration counters, per-tenant quota gauges and
// slack quantiles — all present, all strictly parseable.
func TestObsMetricsEndToEnd(t *testing.T) {
	reg := obs.NewRegistry()
	quotas, err := tenant.New(tenant.PrefixCapacity(2, 8, 0, 1<<20), tenant.Spec{
		Tenants: []tenant.TenantSpec{{Name: "acme", Share: 0.5}, {Name: "zeta", Share: 0.5}},
	})
	if err != nil {
		t.Fatal(err)
	}
	clock := func() core.Time { return 7 }
	s := mustNew(t, Config{
		Shards:       2,
		M:            8,
		Quotas:       quotas,
		RebalanceNow: clock,
		Obs:          &ObsConfig{Registry: reg, TraceSample: 1},
	})

	if _, err := s.ReserveFor("acme", 0, 4, 10, NoDeadline); err != nil {
		t.Fatal(err)
	}
	r2, err := s.ReserveFor("zeta", 0, 4, 10, NoDeadline)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.ReserveFor("acme", 0, 8, 1<<19, 0); err == nil {
		t.Fatal("deadline rejection expected")
	}
	if err := s.Cancel(r2.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Rebalance(0); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	exp, err := obs.ParseExposition(buf.Bytes())
	if err != nil {
		t.Fatalf("scrape does not parse strictly: %v\n%s", err, buf.String())
	}

	admitted := 0.0
	for _, sh := range []string{"0", "1"} {
		if _, ok := exp.Value("resd_shard_queue_depth", map[string]string{"shard": sh}); !ok {
			t.Errorf("no queue depth for shard %s", sh)
		}
		if _, ok := exp.Value("resd_shard_ops_per_batch", map[string]string{"shard": sh}); !ok {
			t.Errorf("no ops/batch for shard %s", sh)
		}
		for _, reason := range []string{"capacity", "deadline", "quota"} {
			if _, ok := exp.Value("resd_rejected_total", map[string]string{"shard": sh, "reason": reason}); !ok {
				t.Errorf("no rejected{%s,%s}", sh, reason)
			}
		}
		for _, dir := range []string{"in", "out"} {
			if _, ok := exp.Value("resd_migrated_total", map[string]string{"shard": sh, "dir": dir}); !ok {
				t.Errorf("no migrated{%s,%s}", sh, dir)
			}
		}
		for _, q := range []string{"0.5", "0.9", "0.99"} {
			if _, ok := exp.Value("resd_slack_ticks", map[string]string{"shard": sh, "quantile": q}); !ok {
				t.Errorf("no slack quantile %s for shard %s", q, sh)
			}
		}
		if v, ok := exp.Value("resd_admitted_total", map[string]string{"shard": sh}); ok {
			admitted += v
		} else {
			t.Errorf("no admitted_total for shard %s", sh)
		}
	}
	if admitted != 2 {
		t.Errorf("admitted_total sums to %v, want 2", admitted)
	}
	dl := 0.0
	for _, sh := range []string{"0", "1"} {
		v, _ := exp.Value("resd_rejected_total", map[string]string{"shard": sh, "reason": "deadline"})
		dl += v
	}
	if dl == 0 {
		t.Error("deadline rejection not counted on any shard")
	}
	for _, ten := range []string{"acme", "zeta"} {
		for _, fam := range []string{"tenant_quota_budget", "tenant_quota_used", "tenant_quota_admitted_total"} {
			if _, ok := exp.Value(fam, map[string]string{"tenant": ten}); !ok {
				t.Errorf("no %s for tenant %s", fam, ten)
			}
		}
	}
	if v, ok := exp.Value("resd_logical_clock_ticks", nil); !ok || v != 7 {
		t.Errorf("logical clock gauge = %v, %v (want 7)", v, ok)
	}
	if v, ok := exp.Value("resd_rebalance_rounds_total", nil); !ok || v < 1 {
		t.Errorf("rebalance rounds = %v, %v", v, ok)
	}
	if v, ok := exp.Value("resd_traces_sampled_total", nil); !ok || v != 3 {
		t.Errorf("traces sampled = %v, %v (want 3: every ReserveFor call)", v, ok)
	}
	if _, ok := exp.Value("resd_loop_turn_ns", map[string]string{"shard": "0", "quantile": "0.99"}); !ok {
		t.Error("no loop-turn latency summary")
	}
}

// TestAdmissionTraces checks the sampled trace pipeline: stage
// monotonicity, outcome classification, the slow-request log hook, and
// the wire-facing Traces accessor.
func TestAdmissionTraces(t *testing.T) {
	var mu sync.Mutex
	var slow []TraceRecord
	s := mustNew(t, Config{M: 8, Obs: &ObsConfig{
		TraceSample:   1,
		TraceBuf:      8,
		SlowThreshold: time.Nanosecond, // everything is "slow": the hook must fire
		SlowLog: func(r TraceRecord) {
			mu.Lock()
			slow = append(slow, r)
			mu.Unlock()
		},
	}})
	r, err := s.ReserveFor("acme", 5, 4, 10, NoDeadline)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.ReserveFor("acme", 0, 8, 10, 0); err == nil {
		// First admission holds [5,15) across half the machine; a full-width
		// request with deadline 0 must miss it.
		t.Fatal("deadline rejection expected")
	}

	traces := s.Traces(0)
	if len(traces) != 2 {
		t.Fatalf("Traces = %d records, want 2", len(traces))
	}
	adm, rej := traces[0], traces[1]
	if adm.Seq >= rej.Seq {
		t.Errorf("trace seqs out of order: %d then %d", adm.Seq, rej.Seq)
	}
	if adm.Outcome != TraceAdmitted || adm.Start != r.Start || adm.Shard != 0 || adm.Tenant != "acme" {
		t.Errorf("admitted trace = %+v", adm)
	}
	if rej.Outcome != TraceRejectedDeadline {
		t.Errorf("rejected trace outcome = %v", rej.Outcome)
	}
	for _, tr := range traces {
		if !(tr.Route >= 0 && tr.Enqueue >= tr.Route && tr.BatchStart >= tr.Enqueue && tr.Decision >= tr.BatchStart) {
			t.Errorf("stages not monotone: %+v", tr)
		}
		if tr.Arrival.IsZero() {
			t.Errorf("zero arrival: %+v", tr)
		}
	}
	// SlowLog is asynchronous by contract (a bounded dispatch queue), so
	// wait for the two records rather than asserting instantly.
	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		nslow := len(slow)
		mu.Unlock()
		if nslow == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Errorf("slow log saw %d records, want 2", nslow)
			break
		}
		time.Sleep(time.Millisecond)
	}
	if got := s.Traces(1); len(got) != 1 || got[0].Seq != rej.Seq {
		t.Errorf("Traces(1) = %+v, want just the newest", got)
	}
}

// TestTraceRingBounds: the ring keeps only the newest TraceBuf records
// and sampling 1-in-N records roughly 1/N of traffic.
func TestTraceRingBounds(t *testing.T) {
	s := mustNew(t, Config{M: 8, Obs: &ObsConfig{TraceSample: 1, TraceBuf: 4}})
	ids := make([]ID, 0, 10)
	for i := 0; i < 10; i++ {
		r, err := s.Reserve(0, 1, 1)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, r.ID)
	}
	traces := s.Traces(0)
	if len(traces) != 4 {
		t.Fatalf("ring holds %d, want 4", len(traces))
	}
	for i := 1; i < len(traces); i++ {
		if traces[i].Seq != traces[i-1].Seq+1 {
			t.Fatalf("ring not chronological: %+v", traces)
		}
	}
	if traces[len(traces)-1].Seq != 10 {
		t.Errorf("newest seq = %d, want 10", traces[len(traces)-1].Seq)
	}
	for _, id := range ids {
		if err := s.Cancel(id); err != nil {
			t.Fatal(err)
		}
	}

	// 1-in-4 sampling: 8 requests → 2 samples.
	s4 := mustNew(t, Config{M: 8, Obs: &ObsConfig{TraceSample: 4}})
	for i := 0; i < 8; i++ {
		if _, err := s4.Reserve(0, 1, 1); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(s4.Traces(0)); got != 2 {
		t.Errorf("1-in-4 sampling of 8 requests left %d traces, want 2", got)
	}

	// Tracing disabled: no records, no cost.
	s0 := mustNew(t, Config{M: 8})
	if _, err := s0.Reserve(0, 1, 1); err != nil {
		t.Fatal(err)
	}
	if got := s0.Traces(0); got != nil {
		t.Errorf("disabled tracing returned %+v", got)
	}
}
