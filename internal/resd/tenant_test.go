package resd

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/rng"
	"repro/internal/sched"
	"repro/internal/tenant"
	"repro/internal/workload"
)

func mustRegistry(t *testing.T, capacity int64, spec tenant.Spec) *tenant.Registry {
	t.Helper()
	r, err := tenant.New(capacity, spec)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestReserveForChargesAndReleasesQuota(t *testing.T) {
	// m=8, α=0: the whole machine is reservable. Tenant "t" owns 10% of a
	// 8×100 capacity = 80 processor·ticks.
	reg := mustRegistry(t, 800, tenant.Spec{Tenants: []tenant.TenantSpec{{Name: "t", Share: 0.1}}})
	s := mustNew(t, Config{M: 8, Quotas: reg})
	r1, err := s.ReserveFor("t", 0, 8, 10, NoDeadline) // area 80: exactly the budget
	if err != nil {
		t.Fatal(err)
	}
	if u := reg.Usage("t"); u.Used != 80 || u.Inflight != 1 {
		t.Fatalf("usage after admit = %+v", u)
	}
	if _, err := s.ReserveFor("t", 0, 1, 1, NoDeadline); !errors.Is(err, ErrQuota) {
		t.Fatalf("over-budget err = %v, want ErrQuota", err)
	}
	// ErrQuota and tenant.ErrQuota are the same sentinel.
	if _, err := s.ReserveFor("t", 0, 1, 1, NoDeadline); !errors.Is(err, tenant.ErrQuota) {
		t.Fatalf("errors.Is(err, tenant.ErrQuota) failed: %v", err)
	}
	st := s.Stats()[0]
	if st.RejectedQuota != 2 || st.Rejected != 0 || st.RejectedDeadline != 0 {
		t.Fatalf("stats after quota rejections: %+v", st)
	}
	// Cancel returns the budget.
	if err := s.Cancel(r1.ID); err != nil {
		t.Fatal(err)
	}
	if u := reg.Usage("t"); u.Used != 0 || u.Inflight != 0 {
		t.Fatalf("usage after cancel = %+v", u)
	}
	if _, err := s.ReserveFor("t", 0, 8, 10, NoDeadline); err != nil {
		t.Fatalf("re-reserve after cancel: %v", err)
	}
	// Another tenant is unaffected throughout.
	if _, err := s.ReserveFor("other", 0, 8, 10, NoDeadline); err != nil {
		t.Fatalf("other tenant: %v", err)
	}
}

func TestQuotaRejectionShortCircuitsShardWalk(t *testing.T) {
	// 4 idle shards, first-fit: a quota rejection is global, so exactly
	// one shard must be tried (one RejectedQuota in total), unlike α and
	// deadline rejections which walk on.
	reg := mustRegistry(t, 1000, tenant.Spec{Tenants: []tenant.TenantSpec{{Name: "t", Share: 0.001}}})
	s := mustNew(t, Config{Shards: 4, M: 8, Placement: "first-fit", Quotas: reg})
	if _, err := s.ReserveFor("t", 0, 4, 10, NoDeadline); !errors.Is(err, ErrQuota) {
		t.Fatalf("err = %v, want ErrQuota", err)
	}
	var total uint64
	for _, st := range s.Stats() {
		total += st.RejectedQuota
	}
	if total != 1 {
		t.Fatalf("RejectedQuota across shards = %d, want 1 (short-circuit)", total)
	}
	if u := reg.Usage("t"); u.Rejected != 1 || u.Used != 0 {
		t.Fatalf("registry after rejection: %+v", u)
	}
}

func TestQuotaCheckRunsAfterAlphaAndDeadline(t *testing.T) {
	// A request that α-rejects or deadline-rejects must not burn budget
	// and must not count as a quota rejection.
	reg := mustRegistry(t, 1<<20, tenant.Spec{Tenants: []tenant.TenantSpec{{Name: "t", Share: 0.5}}})
	s := mustNew(t, Config{M: 8, Alpha: 0.5, Quotas: reg})
	if _, err := s.ReserveFor("t", 0, 5, 10, NoDeadline); !errors.Is(err, ErrNeverFits) {
		t.Fatalf("α rejection err = %v", err)
	}
	if _, err := s.Reserve(0, 4, 100); err != nil { // default tenant holds [0,100)
		t.Fatal(err)
	}
	if _, err := s.ReserveFor("t", 0, 4, 10, 50); !errors.Is(err, ErrDeadline) {
		t.Fatalf("deadline rejection err = %v", err)
	}
	if u := reg.Usage("t"); u.Used != 0 || u.Rejected != 0 {
		t.Fatalf("budget burnt by non-quota rejections: %+v", u)
	}
}

func TestSoftModeAdmitsOverBudget(t *testing.T) {
	reg := mustRegistry(t, 100, tenant.Spec{Mode: "soft", Tenants: []tenant.TenantSpec{{Name: "t", Share: 0.01}}})
	s := mustNew(t, Config{M: 8, Quotas: reg})
	// Area 800 against a budget of 1: soft mode admits and only the
	// ratio moves.
	if _, err := s.ReserveFor("t", 0, 8, 100, NoDeadline); err != nil {
		t.Fatalf("soft-mode admission rejected: %v", err)
	}
	if u := reg.Usage("t"); u.Used != 800 {
		t.Fatalf("usage = %+v", u)
	}
	if reg.Ratio("t") <= 1 {
		t.Fatalf("ratio = %v, want > 1", reg.Ratio("t"))
	}
}

// TestFairOrderPermutesByPressure drives the shard's soft-mode batch
// reordering directly (the loop's batching is timing-dependent; the
// permutation logic is not): Reserves in one batch must come out ordered
// by usage-to-budget ratio, stable within a tenant, with non-Reserve ops
// pinned to their positions.
func TestFairOrderPermutesByPressure(t *testing.T) {
	reg := mustRegistry(t, 1000, tenant.Spec{
		Mode: "soft",
		Tenants: []tenant.TenantSpec{
			{Name: "hog", Share: 0.5},
			{Name: "newbie", Share: 0.5},
		},
	})
	// hog at ratio 0.8, newbie at 0 (group ratio 0.4 dominates neither).
	if err := reg.Acquire("hog", 400); err != nil {
		t.Fatal(err)
	}
	s := mustNew(t, Config{M: 8, Quotas: reg})
	sh := s.shards[0]
	pending := []request{
		{kind: opReserve, tenant: "hog", ready: 1},
		{kind: opQuery, ready: 42},
		{kind: opReserve, tenant: "newbie", ready: 2},
		{kind: opReserve, tenant: "hog", ready: 3},
	}
	sh.fairOrder(pending)
	if pending[1].kind != opQuery {
		t.Fatalf("non-Reserve op moved: %+v", pending)
	}
	gotTenants := []string{pending[0].tenant, pending[2].tenant, pending[3].tenant}
	gotReady := []core.Time{pending[0].ready, pending[2].ready, pending[3].ready}
	want := []string{"newbie", "hog", "hog"}
	for i := range want {
		if gotTenants[i] != want[i] {
			t.Fatalf("order = %v (ready %v), want %v", gotTenants, gotReady, want)
		}
	}
	// Stable within the hog: arrival order preserved.
	if gotReady[1] != 1 || gotReady[2] != 3 {
		t.Fatalf("same-tenant order not stable: ready %v", gotReady)
	}
	// Hard mode must not reorder.
	reg.SetMode(tenant.Hard)
	hard := []request{
		{kind: opReserve, tenant: "hog", ready: 1},
		{kind: opReserve, tenant: "newbie", ready: 2},
	}
	sh.fairOrder(hard)
	if hard[0].tenant != "hog" {
		t.Fatalf("hard mode reordered: %+v", hard)
	}
}

func TestTenantStatsPerShard(t *testing.T) {
	reg := mustRegistry(t, 1<<20, tenant.Spec{})
	s := mustNew(t, Config{Shards: 2, M: 8, Placement: "first-fit", Quotas: reg})
	var held []Reservation
	for i := 0; i < 3; i++ {
		r, err := s.ReserveFor("a", 0, 2, 10, NoDeadline)
		if err != nil {
			t.Fatal(err)
		}
		held = append(held, r)
	}
	if _, err := s.ReserveFor("b", 0, 2, 10, NoDeadline); err != nil {
		t.Fatal(err)
	}
	if err := s.Cancel(held[0].ID); err != nil {
		t.Fatal(err)
	}
	st0, err := s.TenantStats(0)
	if err != nil {
		t.Fatal(err)
	}
	if a := st0["a"]; a.Active != 2 || a.Admitted != 3 || a.Cancelled != 1 || a.CommittedArea != 40 {
		t.Fatalf("shard 0 tenant a stats = %+v", a)
	}
	if b := st0["b"]; b.Active != 1 || b.Admitted != 1 {
		t.Fatalf("shard 0 tenant b stats = %+v", b)
	}
	if _, err := s.TenantStats(9); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("TenantStats(9) err = %v", err)
	}
	tot, err := s.TenantTotals()
	if err != nil {
		t.Fatal(err)
	}
	if tot["a"].Active != 2 || tot["b"].Active != 1 {
		t.Fatalf("totals = %+v", tot)
	}
}

// TestTenantQuotaStressConservation is the acceptance-criteria stress:
// many goroutines hammer a sharded hard-mode service as competing
// tenants while a monitor concurrently asserts that no tenant's admitted
// area ever exceeds its budgeted share of the α-prefix. Afterwards the
// three ledgers — the clients' held reservations, the registry's
// lock-free accounts, and the shards' loop-owned per-tenant books — must
// agree exactly, and a full drain must return every one of them to zero
// and every shard index to the pristine constant-m profile. Run under
// -race this also covers the cross-goroutine quota CAS path from inside
// the shard loops.
func TestTenantQuotaStressConservation(t *testing.T) {
	const (
		shards     = 4
		m          = 64
		alpha      = 0.25
		horizon    = 100000
		goroutines = 8
		opsPerG    = 300
	)
	capacity := tenant.PrefixCapacity(shards, m, alpha, horizon)
	tenants := []string{"etl", "web", "adhoc", "lab"}
	reg := mustRegistry(t, capacity, tenant.Spec{
		Groups: []tenant.GroupSpec{{Name: "prod", Share: 0.5}},
		Tenants: []tenant.TenantSpec{
			{Name: "etl", Group: "prod", Share: 0.4},
			{Name: "web", Group: "prod", Share: 0.4},
			// Deliberately tiny: this tenant must hit ErrQuota under load.
			{Name: "adhoc", Share: 0.00001},
			{Name: "lab", Share: 0.25},
		},
	})
	s := mustNew(t, Config{
		Shards: shards, M: m, Alpha: alpha, Backend: "tree",
		Placement: "p2c", Seed: 5, Batch: 16, Quotas: reg,
	})

	stop := make(chan struct{})
	var monitor sync.WaitGroup
	monitor.Add(1)
	go func() {
		defer monitor.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, name := range tenants {
				if u := reg.Usage(name); u.Used > u.Budget {
					t.Errorf("tenant %s admitted area %d > budget %d", name, u.Used, u.Budget)
					return
				}
			}
			// Yield between sweeps: a busy-spinning monitor would starve
			// the shard loops' own yield-then-drain batching.
			runtime.Gosched()
		}
	}()

	held := make([][]Reservation, goroutines)
	quotaRejects := make([]int, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			name := tenants[g%len(tenants)]
			r := rng.NewStream(13, uint64(g))
			for i := 0; i < opsPerG; i++ {
				if r.Bool(0.25) && len(held[g]) > 0 {
					k := r.Intn(len(held[g]))
					resv := held[g][k]
					held[g] = append(held[g][:k], held[g][k+1:]...)
					if err := s.Cancel(resv.ID); err != nil {
						t.Errorf("cancel: %v", err)
						return
					}
					continue
				}
				ready := core.Time(r.Int63n(horizon))
				q := r.IntRange(1, m/4)
				dur := core.Time(r.Int63Range(1, 200))
				resv, err := s.ReserveFor(name, ready, q, dur, NoDeadline)
				switch {
				case err == nil:
					held[g] = append(held[g], resv)
				case errors.Is(err, ErrQuota):
					quotaRejects[g]++
				default:
					t.Errorf("reserve(%s): %v", name, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	monitor.Wait()
	if t.Failed() {
		return
	}

	// The tiny tenant must actually have been squeezed, or the stress
	// proved nothing.
	var totalQuotaRejects int
	for _, n := range quotaRejects {
		totalQuotaRejects += n
	}
	if totalQuotaRejects == 0 {
		t.Fatal("no quota rejections under stress — budgets never bound, tune the test")
	}

	// Ledger agreement: clients vs registry vs shard books.
	wantArea := map[string]int64{}
	wantActive := map[string]int{}
	for g := range held {
		name := tenants[g%len(tenants)]
		for _, resv := range held[g] {
			wantArea[name] += int64(resv.Dur) * int64(resv.Procs)
			wantActive[name]++
		}
	}
	totals, err := s.TenantTotals()
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range tenants {
		if u := reg.Usage(name); u.Used != wantArea[name] || int(u.Inflight) != wantActive[name] {
			t.Errorf("registry vs clients for %s: used %d inflight %d, want %d/%d",
				name, u.Used, u.Inflight, wantArea[name], wantActive[name])
		}
		ts := totals[name]
		if ts.CommittedArea != wantArea[name] || ts.Active != wantActive[name] {
			t.Errorf("shard books vs clients for %s: area %d active %d, want %d/%d",
				name, ts.CommittedArea, ts.Active, wantArea[name], wantActive[name])
		}
	}

	// Drain and require pristine state everywhere.
	for g := range held {
		for _, resv := range held[g] {
			if err := s.Cancel(resv.ID); err != nil {
				t.Fatalf("drain cancel: %v", err)
			}
		}
	}
	for _, name := range tenants {
		if u := reg.Usage(name); u.Used != 0 || u.Inflight != 0 {
			t.Errorf("tenant %s not drained: %+v", name, u)
		}
	}
	for i := 0; i < shards; i++ {
		snap, err := s.Snapshot(i)
		if err != nil {
			t.Fatal(err)
		}
		if snap.NumSegments() != 1 || snap.AvailableAt(0) != m {
			t.Fatalf("shard %d not pristine after drain: %v", i, snap)
		}
	}
}

// TestPrefixCapacityMatchesServiceFloor is the drift guard for the
// capacity formula every quota caller shares: tenant.PrefixCapacity must
// compute the reservable width with exactly the α-floor rounding the
// service enforces, for any α and m. If resd ever changes its floor,
// this fails before the budgets silently diverge from the prefix.
func TestPrefixCapacityMatchesServiceFloor(t *testing.T) {
	for _, m := range []int{1, 7, 8, 64, 255, 1000} {
		for _, alpha := range []float64{0, 0.1, 0.25, 1.0 / 3, 0.5, 0.75, 0.99, 1} {
			s := mustNew(t, Config{M: m, Alpha: alpha})
			want := int64(m-s.Floor()) * 10 // shards=1, horizon=10
			if got := tenant.PrefixCapacity(1, m, alpha, 10); got != want {
				t.Errorf("PrefixCapacity(1, %d, %v, 10) = %d, service floor %d implies %d",
					m, alpha, got, s.Floor(), want)
			}
		}
	}
}

// TestShardTenantBooksBounded pins the per-shard stats cap: names beyond
// tenant.MaxAccounts land in the OverflowTenant book instead of growing
// the loop-owned map without limit, and cancels balance the same book.
func TestShardTenantBooksBounded(t *testing.T) {
	s := mustNew(t, Config{M: 8})
	sh := s.shards[0]
	// Pre-fill the shard book to the cap from the loop's perspective by
	// seeding tstats directly is not possible from outside the loop, so
	// simulate the resolver: a known name stays itself, a fresh name past
	// the cap overflows.
	for i := 0; i < tenant.MaxAccounts; i++ {
		sh.tstats[fmt.Sprintf("seed%d", i)] = TenantStats{}
	}
	if got := sh.tstatKey("seed5"); got != "seed5" {
		t.Fatalf("existing name resolved to %q", got)
	}
	if got := sh.tstatKey("fresh"); got != OverflowTenant {
		t.Fatalf("fresh name past cap resolved to %q, want %q", got, OverflowTenant)
	}
}

// TestSerialReplayMatchesFCFSWithQuotas pins the no-regression guarantee
// of the acceptance criteria: a single tenant with a full budget replayed
// serially must land exactly on sched.FCFS's offline placements — the
// quota layer may not perturb placement, only gate it.
func TestSerialReplayMatchesFCFSWithQuotas(t *testing.T) {
	r := rng.New(20260729)
	inst, err := workload.SyntheticInstance(r.Split(), workload.SynthConfig{
		M: 32, N: 150, MinRun: 5, MaxRun: 500, MaxWidthFrac: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	inst.Res = workload.ReservationStream(r.Split(), 32, 0.5, 12, 20000)
	for _, mode := range []string{"hard", "soft"} {
		t.Run(mode, func(t *testing.T) {
			want, err := sched.FCFS{Backend: "tree"}.Schedule(inst)
			if err != nil {
				t.Fatal(err)
			}
			reg := mustRegistry(t, 1<<40, tenant.Spec{
				Mode:    mode,
				Tenants: []tenant.TenantSpec{{Name: "solo", Share: 1}},
			})
			s := mustNew(t, Config{M: inst.M, Backend: "tree", Pre: inst.Res, Quotas: reg})
			ready := core.Time(0)
			for idx, j := range inst.Jobs {
				resv, err := s.ReserveFor("solo", ready, j.Procs, j.Len, NoDeadline)
				if err != nil {
					t.Fatalf("job %d: %v", idx, err)
				}
				if resv.Start != want.Start[idx] {
					t.Fatalf("job %d placed at %v, FCFS places it at %v", idx, resv.Start, want.Start[idx])
				}
				ready = resv.Start
			}
		})
	}
}
