package resd

import (
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/profile"
)

// FuzzResdAdmission decodes the fuzz input into a Reserve/Cancel/Query op
// stream and replays it serially through a single-shard service on the
// tree backend, cross-checking every answer against a sequential oracle:
// a plain array Timeline driven by straight-line admission logic with the
// same α-floor. Any divergence — a different admitted start, a different
// error, a different capacity probe — means the event loop, the batching
// path or a backend broke admission semantics.
func FuzzResdAdmission(f *testing.F) {
	f.Add([]byte{0, 0, 2, 10, 0, 0, 2, 10, 2, 5, 0, 0})
	f.Add([]byte{0, 0, 1, 4, 1, 0, 0, 0, 0, 3, 2, 7})
	f.Add([]byte{0, 1, 6, 3, 0, 2, 6, 3, 1, 1, 0, 0, 2, 2, 0, 0})
	f.Fuzz(func(t *testing.T, ops []byte) {
		const (
			m     = 8
			alpha = 0.25
		)
		floor := int(alpha * m) // 2
		s, err := New(Config{M: m, Alpha: alpha, Backend: "tree", Batch: 4})
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		oracle := profile.New(m)
		type admitted struct {
			id    ID
			start core.Time
			dur   core.Time
			q     int
		}
		var live []admitted
		for len(ops) >= 4 {
			op, a, b, c := ops[0]%3, ops[1], ops[2], ops[3]
			ops = ops[4:]
			switch op {
			case 0: // reserve
				ready := core.Time(a)
				q := int(b%m) + 1
				dur := core.Time(c%32) + 1
				resv, err := s.Reserve(ready, q, dur)
				if q+floor > m {
					if !errors.Is(err, ErrNeverFits) {
						t.Fatalf("Reserve(q=%d) err = %v, want ErrNeverFits", q, err)
					}
					continue
				}
				wantStart, ok := oracle.FindSlot(ready, q+floor, dur)
				if !ok {
					t.Fatalf("oracle found no slot for q=%d+%d (finite load, tail is m)", q, floor)
				}
				if err != nil {
					t.Fatalf("Reserve(%v,%d,%v): %v (oracle admits at %v)", ready, q, dur, err, wantStart)
				}
				if resv.Start != wantStart {
					t.Fatalf("Reserve(%v,%d,%v) admitted at %v, oracle at %v", ready, q, dur, resv.Start, wantStart)
				}
				if err := oracle.Commit(wantStart, dur, q); err != nil {
					t.Fatalf("oracle commit: %v", err)
				}
				live = append(live, admitted{id: resv.ID, start: wantStart, dur: dur, q: q})
			case 1: // cancel (index a into live, or a bogus id when empty)
				if len(live) == 0 {
					if err := s.Cancel(makeID(0, uint64(a)+1<<20)); !errors.Is(err, ErrUnknownID) {
						t.Fatalf("cancel of bogus id err = %v, want ErrUnknownID", err)
					}
					continue
				}
				k := int(a) % len(live)
				ad := live[k]
				live = append(live[:k], live[k+1:]...)
				if err := s.Cancel(ad.id); err != nil {
					t.Fatalf("cancel %#x: %v", uint64(ad.id), err)
				}
				if err := oracle.Release(ad.start, ad.dur, ad.q); err != nil {
					t.Fatalf("oracle release: %v", err)
				}
			case 2: // query
				at := core.Time(a) + core.Time(b)
				free, err := s.Query(at)
				if err != nil {
					t.Fatalf("query(%v): %v", at, err)
				}
				if want := oracle.AvailableAt(at); free[0] != want {
					t.Fatalf("query(%v) = %d, oracle %d", at, free[0], want)
				}
			}
		}
		// Final conservation: cancel everything and require pristine state.
		for _, ad := range live {
			if err := s.Cancel(ad.id); err != nil {
				t.Fatalf("drain cancel: %v", err)
			}
		}
		snap, err := s.Snapshot(0)
		if err != nil {
			t.Fatal(err)
		}
		if snap.NumSegments() != 1 || snap.AvailableAt(0) != m {
			t.Fatalf("not pristine after drain: %v", snap)
		}
	})
}
