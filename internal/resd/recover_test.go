package resd

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/rng"
	"repro/internal/wal"
)

// walConfig is the recovery tests' base configuration: small machine,
// multiple shards, deterministic placement so a reference service and a
// WAL-backed one fed the same stream assign identical IDs and starts.
func walConfig(backend, dir string, snapEvery int) Config {
	return Config{
		Shards: 4, M: 32, Backend: backend, Placement: "least-loaded",
		WAL: &wal.Options{Dir: dir, Sync: wal.SyncNone, SnapEvery: snapEvery},
	}
}

// driveBoth applies n deterministic admit/cancel operations to both
// services in lockstep, asserting each decision (ID, shard, start) is
// identical — the two histories must be the same history.
func driveBoth(t *testing.T, ref, svc *Service, r *rng.PCG, n int, held *[]Reservation) {
	t.Helper()
	tenants := []string{"", "acme", "zeta"}
	for i := 0; i < n; i++ {
		if len(*held) > 0 && r.Bool(0.3) {
			k := r.Intn(len(*held))
			id := (*held)[k].ID
			if err := ref.Cancel(id); err != nil {
				t.Fatalf("op %d: reference Cancel: %v", i, err)
			}
			if err := svc.Cancel(id); err != nil {
				t.Fatalf("op %d: wal Cancel: %v", i, err)
			}
			(*held)[k] = (*held)[len(*held)-1]
			*held = (*held)[:len(*held)-1]
			continue
		}
		req := Request{
			Tenant:   tenants[r.Intn(len(tenants))],
			Ready:    core.Time(r.Int63n(10000)),
			Q:        r.IntRange(1, 8),
			Dur:      core.Time(r.Int63Range(1, 50)),
			Deadline: NoDeadline,
		}
		a, err := ref.Admit(req)
		if err != nil {
			t.Fatalf("op %d: reference Admit: %v", i, err)
		}
		b, err := svc.Admit(req)
		if err != nil {
			t.Fatalf("op %d: wal Admit: %v", i, err)
		}
		if a != b {
			t.Fatalf("op %d: decisions diverged: reference %+v, wal %+v", i, a, b)
		}
		*held = append(*held, b)
	}
}

// assertSameState compares the full recoverable surface of two services:
// per-shard committed reservations (the Dump oracle), per-shard durable
// counters, and per-tenant books (minus the process-lifetime slack
// percentile, which recovery documents as reset).
func assertSameState(t *testing.T, ref, svc *Service) {
	t.Helper()
	for i := 0; i < ref.Shards(); i++ {
		want, err := ref.Dump(i)
		if err != nil {
			t.Fatal(err)
		}
		got, err := svc.Dump(i)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("shard %d: dump differs:\n got %+v\nwant %+v", i, got, want)
		}
		wb, err := ref.TenantStats(i)
		if err != nil {
			t.Fatal(err)
		}
		gb, err := svc.TenantStats(i)
		if err != nil {
			t.Fatal(err)
		}
		for name := range wb {
			w, g := wb[name], gb[name]
			w.SlackP99, g.SlackP99 = 0, 0
			if g != w {
				t.Fatalf("shard %d tenant %q: books differ: got %+v, want %+v", i, name, g, w)
			}
		}
		if len(gb) != len(wb) {
			t.Fatalf("shard %d: %d tenant books, want %d", i, len(gb), len(wb))
		}
	}
	ws, gs := ref.Stats(), svc.Stats()
	for i := range ws {
		w, g := ws[i], gs[i]
		if g.Active != w.Active || g.CommittedArea != w.CommittedArea ||
			g.Admitted != w.Admitted || g.Cancelled != w.Cancelled ||
			g.MigratedIn != w.MigratedIn || g.MigratedOut != w.MigratedOut {
			t.Fatalf("shard %d: stats differ: got %+v, want %+v", i, g, w)
		}
	}
}

// TestRecoveryOracle is the tentpole acceptance test: a WAL-backed
// service killed (Close is a clean shutdown, but replay only believes
// the log) and reopened over the same directory must hold exactly the
// state of an uninterrupted reference service fed the identical stream
// — same IDs, same placements, same books — and must keep agreeing as
// both continue admitting. Runs on both capacity backends, with and
// without snapshots anchoring the replay.
func TestRecoveryOracle(t *testing.T) {
	for _, backend := range []string{"array", "tree"} {
		for _, snapEvery := range []int{0, 64} {
			t.Run(fmt.Sprintf("%s/snapevery=%d", backend, snapEvery), func(t *testing.T) {
				dir := t.TempDir()
				ref, err := New(Config{Shards: 4, M: 32, Backend: backend, Placement: "least-loaded"})
				if err != nil {
					t.Fatal(err)
				}
				defer ref.Close()
				svc, err := New(walConfig(backend, dir, snapEvery))
				if err != nil {
					t.Fatal(err)
				}
				r := rng.New(0xFEED)
				var held []Reservation
				driveBoth(t, ref, svc, r, 400, &held)
				assertSameState(t, ref, svc)
				svc.Close()

				svc, err = New(walConfig(backend, dir, snapEvery))
				if err != nil {
					t.Fatalf("reopen: %v", err)
				}
				defer svc.Close()
				wi := svc.WALInfo()
				if !wi.Enabled {
					t.Fatal("WALInfo.Enabled false on a WAL service")
				}
				if snapEvery > 0 && wi.Snapshots == 0 {
					t.Errorf("400 ops with SnapEvery=64 produced no snapshot anchor: %+v", wi)
				}
				if wi.Corrupt != 0 {
					t.Errorf("clean shutdown read as corrupt: %+v", wi)
				}
				assertSameState(t, ref, svc)

				// Both continue: recovered nextSeq must not re-mint old IDs.
				driveBoth(t, ref, svc, r, 200, &held)
				assertSameState(t, ref, svc)
			})
		}
	}
}

// TestRecoveryTornTail crashes mid-frame: a half-written record at the
// log tail is the normal crash signature and must roll back to the last
// whole record, not poison the shard.
func TestRecoveryTornTail(t *testing.T) {
	dir := t.TempDir()
	svc, err := New(walConfig("array", dir, 0))
	if err != nil {
		t.Fatal(err)
	}
	var ids []ID
	for i := 0; i < 40; i++ {
		resv, err := svc.Admit(Request{Ready: core.Time(i), Q: 2, Dur: 10, Deadline: NoDeadline})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, resv.ID)
	}
	before := make(map[int][]Reservation)
	for i := 0; i < svc.Shards(); i++ {
		before[i], _ = svc.Dump(i)
	}
	svc.Close()
	// Tear every shard's newest log: append half of a valid frame.
	frame := wal.AppendRecord(nil, wal.Record{Type: wal.TCancel, ID: uint64(ids[0])})
	for i := 0; i < 4; i++ {
		name, raw := newestLog(t, dir, i)
		if err := os.WriteFile(name, append(raw, frame[:len(frame)/2]...), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	svc, err = New(walConfig("array", dir, 0))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	wi := svc.WALInfo()
	if wi.Torn != 4 || wi.Corrupt != 0 {
		t.Fatalf("WALInfo = %+v, want 4 torn shards and no corruption", wi)
	}
	for i := 0; i < svc.Shards(); i++ {
		got, err := svc.Dump(i)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, before[i]) {
			t.Fatalf("shard %d: torn tail changed state", i)
		}
	}
	// The torn cancel never happened: cancelling for real must succeed.
	if err := svc.Cancel(ids[0]); err != nil {
		t.Fatalf("cancel after torn-tail recovery: %v", err)
	}
}

// TestRecoveryTornTailThenRestart is the double-restart sequence that
// used to drop acknowledged records: a torn generation is benign on the
// first recovery, but unless that recovery truncates the torn bytes off
// disk, the second recovery — by which point newer generations hold
// acknowledged admissions — rereads the same tail as mid-log corruption
// and silently discards everything after it.
func TestRecoveryTornTailThenRestart(t *testing.T) {
	dir := t.TempDir()
	svc, err := New(walConfig("array", dir, 0))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		if _, err := svc.Admit(Request{Ready: core.Time(i), Q: 2, Dur: 10, Deadline: NoDeadline}); err != nil {
			t.Fatal(err)
		}
	}
	svc.Close()
	// Crash signature: every shard's newest log ends mid-frame.
	frame := wal.AppendRecord(nil, wal.Record{Type: wal.TCancel, ID: 1})
	for i := 0; i < 4; i++ {
		name, raw := newestLog(t, dir, i)
		if err := os.WriteFile(name, append(raw, frame[:len(frame)/2]...), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	// First restart: recovery rolls the torn frames back, then the
	// service acknowledges a fresh batch into the next generations.
	svc, err = New(walConfig("array", dir, 0))
	if err != nil {
		t.Fatal(err)
	}
	if wi := svc.WALInfo(); wi.Torn != 4 || wi.Corrupt != 0 {
		t.Fatalf("first restart: WALInfo = %+v, want 4 torn shards", wi)
	}
	for i := 0; i < 40; i++ {
		if _, err := svc.Admit(Request{Ready: core.Time(100 + i), Q: 2, Dur: 10, Deadline: NoDeadline}); err != nil {
			t.Fatal(err)
		}
	}
	before := make(map[int][]Reservation)
	for i := 0; i < svc.Shards(); i++ {
		before[i], _ = svc.Dump(i)
	}
	svc.Close()
	// Second restart: every acknowledged admission — including the whole
	// post-repair batch — must still be there, and the once-torn
	// generation must not reread as corruption.
	svc, err = New(walConfig("array", dir, 0))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	if wi := svc.WALInfo(); wi.Corrupt != 0 {
		t.Fatalf("second restart: repaired tail read as corruption: %+v", wi)
	}
	for i := 0; i < svc.Shards(); i++ {
		got, err := svc.Dump(i)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, before[i]) {
			t.Fatalf("shard %d: acknowledged records lost across the second restart: got %d reservations, want %d",
				i, len(got), len(before[i]))
		}
	}
}

// newestLog returns the path and contents of a shard's highest-
// generation log file.
func newestLog(t *testing.T, dir string, shard int) (string, []byte) {
	t.Helper()
	var best string
	var bestGen uint64
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, ent := range ents {
		var s int
		var gen uint64
		if n, _ := fmt.Sscanf(ent.Name(), "shard-%d.%d.wal", &s, &gen); n == 2 && s == shard && gen >= bestGen {
			best, bestGen = filepath.Join(dir, ent.Name()), gen
		}
	}
	if best == "" {
		t.Fatalf("no log for shard %d in %s", shard, dir)
	}
	raw, err := os.ReadFile(best)
	if err != nil {
		t.Fatal(err)
	}
	return best, raw
}

// writeShardLog fabricates a crash state: raw framed records as one
// shard's generation-1 log.
func writeShardLog(t *testing.T, dir string, shard int, recs ...wal.Record) {
	t.Helper()
	var buf []byte
	for _, r := range recs {
		buf = wal.AppendRecord(buf, r)
	}
	name := filepath.Join(dir, fmt.Sprintf("shard-%d.1.wal", shard))
	if err := os.WriteFile(name, buf, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestRecoveryResolvesMoves covers the two-phase migration crash
// points. The protocol's durability order is: migrate-in durable on the
// target before the source sends its record, migrate-out durable on the
// source before the commit is sent. A pending in therefore commits iff
// the source's open-out names the target, and aborts otherwise.
func TestRecoveryResolvesMoves(t *testing.T) {
	id := makeID(0, 0)
	admit := wal.Record{Type: wal.TAdmit, ID: uint64(id), Ready: 0, Procs: 2, Dur: 10, Deadline: int64(NoDeadline), Start: 0}
	in := wal.Record{Type: wal.TMigrateIn, ID: uint64(id), Peer: 0, Start: 0, Dur: 10, Procs: 2}

	t.Run("commit", func(t *testing.T) {
		// Crash after the source's out was durable: the move completes.
		dir := t.TempDir()
		writeShardLog(t, dir, 0, admit, wal.Record{Type: wal.TMigrateOut, ID: uint64(id), Peer: 1})
		writeShardLog(t, dir, 1, in)
		svc, err := New(walConfig("array", dir, 0))
		if err != nil {
			t.Fatal(err)
		}
		defer svc.Close()
		if wi := svc.WALInfo(); wi.MovesCommitted != 1 || wi.MovesAborted != 0 {
			t.Fatalf("WALInfo = %+v, want 1 committed move", wi)
		}
		assertHolder(t, svc, id, 1)
		if err := svc.Cancel(id); err != nil {
			t.Fatalf("cancel %#x after recovery: %v", uint64(id), err)
		}
	})

	t.Run("abort", func(t *testing.T) {
		// Crash before the source's out was durable: the source still
		// holds the reservation, so the target's tentative copy dies.
		dir := t.TempDir()
		writeShardLog(t, dir, 0, admit)
		writeShardLog(t, dir, 1, in)
		svc, err := New(walConfig("array", dir, 0))
		if err != nil {
			t.Fatal(err)
		}
		defer svc.Close()
		if wi := svc.WALInfo(); wi.MovesCommitted != 0 || wi.MovesAborted != 1 {
			t.Fatalf("WALInfo = %+v, want 1 aborted move", wi)
		}
		assertHolder(t, svc, id, 0)
		if err := svc.Cancel(id); err != nil {
			t.Fatalf("cancel %#x after recovery: %v", uint64(id), err)
		}
	})

	t.Run("stale-open-out", func(t *testing.T) {
		// Crash after the target committed but before the source's ack:
		// the open-out is stale. Recovery must close it durably — and a
		// second crash-recovery cycle must not resurrect the move.
		dir := t.TempDir()
		writeShardLog(t, dir, 0, admit, wal.Record{Type: wal.TMigrateOut, ID: uint64(id), Peer: 1})
		writeShardLog(t, dir, 1, in, wal.Record{Type: wal.TMigrateCommit, ID: uint64(id)})
		for round := 0; round < 2; round++ {
			svc, err := New(walConfig("array", dir, 0))
			if err != nil {
				t.Fatalf("round %d: %v", round, err)
			}
			if wi := svc.WALInfo(); wi.MovesCommitted != 0 || wi.MovesAborted != 0 {
				t.Fatalf("round %d: WALInfo = %+v, want no mid-flight moves", round, wi)
			}
			assertHolder(t, svc, id, 1)
			svc.Close()
		}
		// Routing still works: a final reopen cancels through the
		// rebuilt moved overlay.
		svc, err := New(walConfig("array", dir, 0))
		if err != nil {
			t.Fatal(err)
		}
		defer svc.Close()
		if err := svc.Cancel(id); err != nil {
			t.Fatalf("cancel %#x after recovery: %v", uint64(id), err)
		}
	})
}

// assertHolder checks exactly one shard — holder — has id. It does not
// mutate the service: callers needing a routing check cancel afterwards.
func assertHolder(t *testing.T, svc *Service, id ID, holder int) {
	t.Helper()
	for i := 0; i < svc.Shards(); i++ {
		dump, err := svc.Dump(i)
		if err != nil {
			t.Fatal(err)
		}
		var has bool
		for _, r := range dump {
			if r.ID == id {
				has = true
			}
		}
		if has != (i == holder) {
			t.Fatalf("shard %d: holds %#x = %v, want holder %d", i, uint64(id), has, holder)
		}
	}
}

// TestRecoveryAfterRebalance round-trips a migrated state: the WAL of a
// service whose rebalancer moved reservations across shards must replay
// to the post-migration placement, moved-ID forwarding included.
func TestRecoveryAfterRebalance(t *testing.T) {
	dir := t.TempDir()
	cfg := walConfig("array", dir, 0)
	cfg.Placement = "first-fit" // park everything on shard 0
	cfg.RebalanceThreshold = 0.01
	cfg.RebalanceMaxMoves = 64
	svc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(7)
	var ids []ID
	for i := 0; i < 64; i++ {
		resv, err := svc.Admit(Request{Ready: core.Time(1000 + r.Int63n(5000)), Q: 2, Dur: 20, Deadline: NoDeadline})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, resv.ID)
	}
	moved, err := svc.RebalanceAll(0)
	if err != nil {
		t.Fatal(err)
	}
	if moved.Applied == 0 {
		t.Fatal("rebalancer moved nothing; the test needs cross-shard state")
	}
	before := make(map[int][]Reservation)
	for i := 0; i < svc.Shards(); i++ {
		before[i], _ = svc.Dump(i)
	}
	svc.Close()

	svc, err = New(walConfig("array", dir, 0))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	for i := 0; i < svc.Shards(); i++ {
		got, err := svc.Dump(i)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, before[i]) {
			t.Fatalf("shard %d: post-rebalance state did not survive recovery:\n got %+v\nwant %+v", i, got, before[i])
		}
	}
	// Every ID cancels, including ones living away from their minting
	// shard (the rebuilt moved overlay must forward them).
	for _, id := range ids {
		if err := svc.Cancel(id); err != nil {
			t.Fatalf("cancel %#x: %v", uint64(id), err)
		}
	}
}

// TestRecoveryCorruptMidLog injects damage before the tail: replay must
// keep the proven prefix, count the corruption, and come up serving.
func TestRecoveryCorruptMidLog(t *testing.T) {
	dir := t.TempDir()
	cfg := walConfig("array", dir, 0)
	cfg.Shards = 1
	svc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := svc.Admit(Request{Ready: core.Time(i * 100), Q: 1, Dur: 10, Deadline: NoDeadline}); err != nil {
			t.Fatal(err)
		}
	}
	svc.Close()
	// Flip a payload byte of the 6th frame: a CRC failure before the
	// tail, which must read as damage rather than a crash artifact. The
	// frame walk uses the on-disk layout (u32 length, u32 CRC, payload).
	name, raw := newestLog(t, dir, 0)
	off := 0
	for i := 0; i < 5; i++ {
		off += 8 + int(binary.LittleEndian.Uint32(raw[off:]))
	}
	raw[off+8] ^= 0x20
	if err := os.WriteFile(name, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	svc, err = New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	wi := svc.WALInfo()
	if wi.Corrupt != 1 || wi.DroppedBytes == 0 {
		t.Fatalf("WALInfo = %+v, want one corrupt shard with dropped bytes", wi)
	}
	dump, err := svc.Dump(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(dump) == 0 || len(dump) >= 10 {
		t.Fatalf("recovered %d of 10 reservations, want a proper non-empty prefix", len(dump))
	}
	// The service keeps admitting, and new IDs never collide with
	// recovered ones.
	seen := map[ID]bool{}
	for _, r := range dump {
		seen[r.ID] = true
	}
	for i := 0; i < 5; i++ {
		resv, err := svc.Admit(Request{Ready: 0, Q: 1, Dur: 5, Deadline: NoDeadline})
		if err != nil {
			t.Fatal(err)
		}
		if seen[resv.ID] {
			t.Fatalf("recovered service re-minted live ID %#x", uint64(resv.ID))
		}
	}
}

// TestRecoveryReplayIsCorruptionNotPanic: records that are CRC-clean
// but semantically impossible (cancel of an unknown ID) must surface as
// ErrCorrupt from New, never as a panic or silent misstate.
func TestRecoveryRejectsContradictoryLog(t *testing.T) {
	dir := t.TempDir()
	writeShardLog(t, dir, 0, wal.Record{Type: wal.TCancel, ID: uint64(makeID(0, 5))})
	cfg := walConfig("array", dir, 0)
	if _, err := New(cfg); !errors.Is(err, wal.ErrCorrupt) {
		t.Fatalf("New over a contradictory log: err = %v, want wal.ErrCorrupt", err)
	}
}
