package resd

import (
	"math/bits"

	"repro/internal/core"
)

// slackHist is a fixed-size exponential histogram of start-time slack
// (start − ready, in ticks): bucket b collects slacks whose bit length is
// b, so bucket 0 is exactly slack 0 and bucket b covers [2^(b−1), 2^b).
// It gives an O(1)-update, O(1)-memory p99 whose answer is the bucket's
// upper bound — at least the true p99 and less than twice it — which is
// the right fidelity for an SLO surface read out of a hot event loop:
// the operator question is "what order of push-back are this tenant's
// admissions seeing", not its exact tick count.
type slackHist struct {
	total   uint64
	buckets [65]uint64
}

// add records one slack sample (non-negative by construction: an
// admission never starts before its ready time).
func (h *slackHist) add(slack core.Time) {
	h.buckets[bits.Len64(uint64(slack))]++
	h.total++
}

// p99 returns the upper bound of the bucket holding the 99th-percentile
// sample, or 0 when nothing was recorded.
func (h *slackHist) p99() core.Time {
	if h.total == 0 {
		return 0
	}
	rank := (h.total*99 + 99) / 100 // ceil(total·0.99): 1-based sample rank
	var cum uint64
	for b, n := range h.buckets {
		cum += n
		if cum >= rank {
			return bucketUpper(b)
		}
	}
	return bucketUpper(len(h.buckets) - 1)
}

// bucketUpper is the largest slack a bucket admits.
func bucketUpper(b int) core.Time {
	switch {
	case b == 0:
		return 0
	case b >= 63:
		return core.Infinity
	default:
		return core.Time(1)<<b - 1
	}
}
