package resd

import (
	"repro/internal/core"
	"repro/internal/stats"
)

// slackHist records start-time slack (start − ready, in ticks) in a
// stats.ExpHist: bucket b collects slacks whose bit length is b, so
// bucket 0 is exactly slack 0 and bucket b covers [2^(b−1), 2^b). It
// gives an O(1)-update, O(1)-memory quantile whose answer is the
// bucket's upper bound — at least the true quantile and less than twice
// it — which is the right fidelity for an SLO surface read out of a hot
// event loop: the operator question is "what order of push-back are this
// tenant's admissions seeing", not its exact tick count. The same bucket
// geometry backs the obs package's multi-writer Histogram, so loop-owned
// and scrape-side quantiles agree.
type slackHist struct {
	h stats.ExpHist
}

// add records one slack sample (non-negative by construction: an
// admission never starts before its ready time).
func (h *slackHist) add(slack core.Time) { h.h.Add(int64(slack)) }

// p99 returns the upper bound of the bucket holding the 99th-percentile
// sample, or 0 when nothing was recorded.
func (h *slackHist) p99() core.Time { return h.quantile(0.99) }

// quantile generalises p99 to any q in (0,1]; stats.ExpHist saturates
// its top buckets at MaxInt64, which is exactly core.Infinity.
func (h *slackHist) quantile(q float64) core.Time {
	return core.Time(h.h.Quantile(q))
}

// bucketUpper is the largest slack a bucket admits.
func bucketUpper(b int) core.Time {
	return core.Time(stats.ExpBucketUpper(b))
}
