package resd

import (
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/rebal"
	"repro/internal/rng"
	"repro/internal/sched"
	"repro/internal/tenant"
	"repro/internal/workload"
)

// TestRebalanceMovesLoad is the happy path: a first-fit hot spot on shard
// 0 is drained to shard 1, books and counters transfer, capacity is
// conserved, and the original reservation handles keep working — Cancel
// follows the migration.
func TestRebalanceMovesLoad(t *testing.T) {
	reg := mustRegistry(t, 1<<20, tenant.Spec{})
	s := mustNew(t, Config{
		Shards: 2, M: 8, Placement: "first-fit",
		RebalanceThreshold: 0.01, Quotas: reg,
	})
	var held []Reservation
	for i := 0; i < 4; i++ {
		r, err := s.ReserveFor("acme", 100, 2, 10, NoDeadline)
		if err != nil {
			t.Fatal(err)
		}
		if r.Shard != 0 {
			t.Fatalf("first-fit landed on shard %d", r.Shard)
		}
		held = append(held, r)
	}
	usedBefore := reg.Usage("acme").Used

	rep, err := s.Rebalance(0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Planned != 2 || rep.Applied != 2 || rep.Aborted != 0 || rep.Skipped != 0 {
		t.Fatalf("report = %+v, want 2 planned and applied", rep)
	}
	if rep.Before != 1 || rep.After != 0 {
		t.Fatalf("imbalance %v → %v, want 1 → 0", rep.Before, rep.After)
	}
	st := s.Stats()
	if st[0].MigratedOut != 2 || st[1].MigratedIn != 2 || st[0].MigratedIn != 0 {
		t.Fatalf("migration counters: %+v", st)
	}
	if st[0].Active != 2 || st[1].Active != 2 || st[0].CommittedArea != 40 || st[1].CommittedArea != 40 {
		t.Fatalf("post-migration books: %+v", st)
	}
	// Capacity is really held on both shards at the reservations' window.
	free, err := s.Query(105)
	if err != nil {
		t.Fatal(err)
	}
	if free[0] != 4 || free[1] != 4 {
		t.Fatalf("Query(105) = %v, want [4 4]", free)
	}
	// Quota was transferred, not double-counted: the registry never moved.
	if used := reg.Usage("acme").Used; used != usedBefore {
		t.Fatalf("registry usage changed across migration: %d → %d", usedBefore, used)
	}
	ts1, err := s.TenantStats(1)
	if err != nil {
		t.Fatal(err)
	}
	if ts1["acme"].MigratedIn != 2 || ts1["acme"].Active != 2 {
		t.Fatalf("target tenant books: %+v", ts1["acme"])
	}

	// Every original handle still cancels — including the migrated ones,
	// whose ID still names shard 0.
	for _, r := range held {
		if err := s.Cancel(r.ID); err != nil {
			t.Fatalf("cancel %#x after migration: %v", uint64(r.ID), err)
		}
	}
	if used := reg.Usage("acme").Used; used != 0 {
		t.Fatalf("registry not drained after cancels: %d", used)
	}
	for i := 0; i < 2; i++ {
		snap, err := s.Snapshot(i)
		if err != nil {
			t.Fatal(err)
		}
		if snap.NumSegments() != 1 || snap.AvailableAt(0) != 8 {
			t.Fatalf("shard %d not pristine after drain: %v", i, snap)
		}
	}
}

// TestRebalanceFrozenWindow pins the migratable-window policy: a
// reservation starting inside [now, now+Δ) is never moved, however
// lopsided the shards.
func TestRebalanceFrozenWindow(t *testing.T) {
	s := mustNew(t, Config{
		Shards: 2, M: 8, Placement: "first-fit",
		RebalanceThreshold: 0.01, RebalanceFreeze: 50,
	})
	rSoon, err := s.Reserve(5, 4, 10) // starts at 5: frozen
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Reserve(500, 4, 10); err != nil { // movable
		t.Fatal(err)
	}
	rep, err := s.Rebalance(0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Applied != 1 {
		t.Fatalf("report = %+v, want exactly the movable reservation applied", rep)
	}
	// The frozen reservation stayed put on shard 0.
	free, err := s.Query(7)
	if err != nil {
		t.Fatal(err)
	}
	if free[0] != 4 || free[1] != 8 {
		t.Fatalf("Query(7) = %v: the frozen reservation moved", free)
	}
	if err := s.Cancel(rSoon.ID); err != nil {
		t.Fatal(err)
	}
	// With now pushed past both starts, nothing is movable at all.
	if _, err := s.Reserve(600, 4, 10); err != nil {
		t.Fatal(err)
	}
	rep, err = s.Rebalance(580)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Applied != 0 || rep.Planned != 0 {
		t.Fatalf("frozen-window round still moved: %+v", rep)
	}
	if _, err := s.Rebalance(-1); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("Rebalance(-1) err = %v, want ErrBadRequest", err)
	}
}

// TestExecuteMoveSkipsFullTarget drives the executor against a target
// whose window is occupied: the tentative commit is refused, nothing
// moves, and the source copy stays fully owned by its shard.
func TestExecuteMoveSkipsFullTarget(t *testing.T) {
	s := mustNew(t, Config{Shards: 2, M: 8, Placement: "first-fit"})
	x, err := s.Reserve(100, 4, 10)
	if err != nil {
		t.Fatal(err)
	}
	// Fill shard 1's [100,110) window past the point where q=4 fits, going
	// through the shard directly (placement would route it to shard 0).
	if _, err := s.shards[1].do(request{kind: opReserve, tenant: tenant.DefaultTenant, ready: 100, q: 5, dur: 10, deadline: NoDeadline}); err != nil {
		t.Fatal(err)
	}
	applied, aborted, err := s.executeMove(rebal.Move{
		Resv: rebal.Resv{ID: uint64(x.ID), Start: x.Start, Dur: x.Dur, Procs: x.Procs, Tenant: tenant.DefaultTenant},
		From: 0, To: 1,
	})
	if err != nil || applied || aborted {
		t.Fatalf("executeMove = (%v, %v, %v), want skipped", applied, aborted, err)
	}
	if st := s.Stats(); st[0].MigratedOut != 0 || st[1].MigratedIn != 0 || st[0].Active != 1 {
		t.Fatalf("skipped move mutated state: %+v", st)
	}
	if err := s.Cancel(x.ID); err != nil {
		t.Fatalf("cancel after skipped move: %v", err)
	}
}

// TestExecuteMoveAbortsOnConcurrentCancel drives the rollback path: the
// reservation vanishes between planning and execution, so the tentative
// target copy must be rolled back without releasing quota twice and
// without leaving forwarding state behind.
func TestExecuteMoveAbortsOnConcurrentCancel(t *testing.T) {
	reg := mustRegistry(t, 1<<20, tenant.Spec{})
	s := mustNew(t, Config{Shards: 2, M: 8, Placement: "first-fit", Quotas: reg})
	x, err := s.ReserveFor("acme", 100, 4, 10, NoDeadline)
	if err != nil {
		t.Fatal(err)
	}
	mv := rebal.Move{
		Resv: rebal.Resv{ID: uint64(x.ID), Start: x.Start, Dur: x.Dur, Procs: x.Procs, Tenant: "acme"},
		From: 0, To: 1,
	}
	if err := s.Cancel(x.ID); err != nil { // the race, made deterministic
		t.Fatal(err)
	}
	applied, aborted, err := s.executeMove(mv)
	if err != nil || applied || !aborted {
		t.Fatalf("executeMove = (%v, %v, %v), want aborted", applied, aborted, err)
	}
	if used := reg.Usage("acme").Used; used != 0 {
		t.Fatalf("aborted move left quota charged: %d", used)
	}
	snap, err := s.Snapshot(1)
	if err != nil {
		t.Fatal(err)
	}
	if snap.NumSegments() != 1 || snap.AvailableAt(0) != 8 {
		t.Fatalf("aborted move left capacity on the target: %v", snap)
	}
	if err := s.Cancel(x.ID); !errors.Is(err, ErrUnknownID) {
		t.Fatalf("double cancel after aborted move err = %v, want ErrUnknownID", err)
	}
	if st := s.Stats(); st[1].MigratedIn != 0 || st[0].MigratedOut != 0 {
		t.Fatalf("aborted move counted as a migration: %+v", st)
	}
}

// TestBackgroundRebalancer checks the Config.RebalanceEvery wiring: the
// ticker goroutine drains a hot spot without any manual Rebalance call.
func TestBackgroundRebalancer(t *testing.T) {
	s := mustNew(t, Config{
		Shards: 2, M: 8, Placement: "first-fit",
		RebalanceEvery: time.Millisecond, RebalanceThreshold: 0.01,
	})
	for i := 0; i < 4; i++ {
		if _, err := s.Reserve(100, 2, 10); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := s.Stats()
		if st[1].MigratedIn >= 2 && st[0].Active == 2 && st[1].Active == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("background rebalancer never drained the hot spot: %+v", st)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestSerialReplayMatchesFCFSWithRebalancerConfigured extends the
// determinism bridge: with every rebalance knob set but the background
// balancer disabled, serial replay must still land bit-for-bit on
// sched.FCFS's offline placements — configuring rebalancing must not
// perturb admission, only migration (which never runs here).
func TestSerialReplayMatchesFCFSWithRebalancerConfigured(t *testing.T) {
	r := rng.New(20260729)
	inst, err := workload.SyntheticInstance(r.Split(), workload.SynthConfig{
		M: 32, N: 150, MinRun: 5, MaxRun: 500, MaxWidthFrac: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	inst.Res = workload.ReservationStream(r.Split(), 32, 0.5, 12, 20000)
	want, err := sched.FCFS{Backend: "tree"}.Schedule(inst)
	if err != nil {
		t.Fatal(err)
	}
	s := mustNew(t, Config{
		M: inst.M, Backend: "tree", Pre: inst.Res,
		RebalanceEvery: 0, RebalanceThreshold: 0.05, RebalanceFreeze: 100, RebalanceMaxMoves: 8,
	})
	ready := core.Time(0)
	for idx, j := range inst.Jobs {
		resv, err := s.Reserve(ready, j.Procs, j.Len)
		if err != nil {
			t.Fatalf("job %d: %v", idx, err)
		}
		if resv.Start != want.Start[idx] {
			t.Fatalf("job %d placed at %v, FCFS places it at %v", idx, resv.Start, want.Start[idx])
		}
		ready = resv.Start
	}
}

// TestRebalanceStressConservation is the -race acceptance stress: many
// client goroutines hammer a first-fit (deliberately skew-piling) service
// while a concurrent rebalancer migrates reservations between shards the
// whole time. At quiescence the shard books must account for exactly what
// the clients hold, migrations must actually have happened, every held
// handle must still cancel (through the forwarding overlay), and a full
// drain must return every shard to the pristine constant-m profile with
// globally balanced admit/cancel/migrate ledgers.
func TestRebalanceStressConservation(t *testing.T) {
	const (
		shards     = 8
		m          = 64
		goroutines = 8
		opsPerG    = 300
		horizon    = 100000
	)
	for _, backend := range []string{"array", "tree"} {
		t.Run(backend, func(t *testing.T) {
			s := mustNew(t, Config{
				Shards: shards, M: m, Alpha: 0.25, Backend: backend,
				Placement: "first-fit", Batch: 16,
				RebalanceThreshold: 0.05, RebalanceMaxMoves: 64,
			})
			stop := make(chan struct{})
			var reb sync.WaitGroup
			reb.Add(1)
			go func() {
				defer reb.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					if _, err := s.Rebalance(0); err != nil {
						t.Errorf("rebalance: %v", err)
						return
					}
					runtime.Gosched()
				}
			}()

			held := make([][]Reservation, goroutines)
			var wg sync.WaitGroup
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					r := rng.NewStream(31, uint64(g))
					for i := 0; i < opsPerG; i++ {
						if r.Bool(0.3) && len(held[g]) > 0 {
							k := r.Intn(len(held[g]))
							resv := held[g][k]
							held[g] = append(held[g][:k], held[g][k+1:]...)
							if err := s.Cancel(resv.ID); err != nil {
								t.Errorf("cancel %#x: %v", uint64(resv.ID), err)
								return
							}
							continue
						}
						ready := core.Time(r.Int63n(horizon))
						q := r.IntRange(1, m/4)
						dur := core.Time(r.Int63Range(1, 200))
						resv, err := s.Reserve(ready, q, dur)
						if err != nil {
							t.Errorf("reserve: %v", err)
							return
						}
						held[g] = append(held[g], resv)
					}
				}(g)
			}
			wg.Wait()
			close(stop)
			reb.Wait()
			if t.Failed() {
				return
			}

			var wantActive int
			var wantArea int64
			for g := range held {
				wantActive += len(held[g])
				for _, resv := range held[g] {
					wantArea += int64(resv.Dur) * int64(resv.Procs)
				}
			}
			var gotActive int
			var gotArea int64
			var migIn, migOut uint64
			for _, st := range s.Stats() {
				gotActive += st.Active
				gotArea += st.CommittedArea
				migIn += st.MigratedIn
				migOut += st.MigratedOut
			}
			if gotActive != wantActive || gotArea != wantArea {
				t.Fatalf("books disagree with clients: active %d vs %d, area %d vs %d",
					gotActive, wantActive, gotArea, wantArea)
			}
			if migIn != migOut {
				t.Fatalf("migration ledger unbalanced: in %d, out %d", migIn, migOut)
			}
			if migOut == 0 {
				t.Fatal("no migrations under a first-fit hot spot — the stress proved nothing")
			}

			for g := range held {
				for _, resv := range held[g] {
					if err := s.Cancel(resv.ID); err != nil {
						t.Fatalf("drain cancel %#x: %v", uint64(resv.ID), err)
					}
				}
			}
			var admitted, cancelled uint64
			for i, st := range s.Stats() {
				admitted += st.Admitted
				cancelled += st.Cancelled
				if st.Active != 0 || st.CommittedArea != 0 {
					t.Fatalf("shard %d books not drained: %+v", i, st)
				}
				snap, err := s.Snapshot(i)
				if err != nil {
					t.Fatal(err)
				}
				if snap.NumSegments() != 1 || snap.AvailableAt(0) != m {
					t.Fatalf("shard %d not pristine after drain: %v", i, snap)
				}
			}
			// Migration moves cancels to other shards, so the ledger only
			// balances globally — which it must, exactly.
			if admitted != cancelled {
				t.Fatalf("global ledger: admitted %d != cancelled %d", admitted, cancelled)
			}
		})
	}
}

// TestTenantQuotaStressMigration extends the three-way ledger agreement
// to cover migrations: competing tenants hammer a hard-mode service while
// the rebalancer migrates their reservations between shards, with a
// concurrent monitor asserting no tenant ever exceeds its budget. At the
// end the clients' held reservations, the registry's lock-free accounts
// and the shards' loop-owned books must agree exactly — migration moves
// per-shard books but may never create, lose or double-count a
// processor·tick of quota.
func TestTenantQuotaStressMigration(t *testing.T) {
	const (
		shards     = 4
		m          = 64
		alpha      = 0.25
		horizon    = 100000
		goroutines = 8
		opsPerG    = 250
	)
	capacity := tenant.PrefixCapacity(shards, m, alpha, horizon)
	tenants := []string{"etl", "web", "adhoc", "lab"}
	reg := mustRegistry(t, capacity, tenant.Spec{
		Tenants: []tenant.TenantSpec{
			{Name: "etl", Share: 0.3},
			{Name: "web", Share: 0.3},
			{Name: "adhoc", Share: 0.00001}, // must hit ErrQuota under load
			{Name: "lab", Share: 0.2},
		},
	})
	s := mustNew(t, Config{
		Shards: shards, M: m, Alpha: alpha, Backend: "tree",
		Placement: "first-fit", Batch: 16, Quotas: reg,
		RebalanceThreshold: 0.05, RebalanceMaxMoves: 64,
	})

	stop := make(chan struct{})
	var aux sync.WaitGroup
	aux.Add(2)
	go func() { // rebalancer
		defer aux.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := s.Rebalance(0); err != nil {
				t.Errorf("rebalance: %v", err)
				return
			}
			runtime.Gosched()
		}
	}()
	go func() { // budget monitor
		defer aux.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, name := range tenants {
				if u := reg.Usage(name); u.Used > u.Budget {
					t.Errorf("tenant %s admitted area %d > budget %d", name, u.Used, u.Budget)
					return
				}
			}
			runtime.Gosched()
		}
	}()

	held := make([][]Reservation, goroutines)
	quotaRejects := make([]int, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			name := tenants[g%len(tenants)]
			r := rng.NewStream(17, uint64(g))
			for i := 0; i < opsPerG; i++ {
				if r.Bool(0.25) && len(held[g]) > 0 {
					k := r.Intn(len(held[g]))
					resv := held[g][k]
					held[g] = append(held[g][:k], held[g][k+1:]...)
					if err := s.Cancel(resv.ID); err != nil {
						t.Errorf("cancel: %v", err)
						return
					}
					continue
				}
				ready := core.Time(r.Int63n(horizon))
				q := r.IntRange(1, m/4)
				dur := core.Time(r.Int63Range(1, 200))
				resv, err := s.ReserveFor(name, ready, q, dur, NoDeadline)
				switch {
				case err == nil:
					held[g] = append(held[g], resv)
				case errors.Is(err, ErrQuota):
					quotaRejects[g]++
				default:
					t.Errorf("reserve(%s): %v", name, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	aux.Wait()
	if t.Failed() {
		return
	}

	var totalQuotaRejects int
	for _, n := range quotaRejects {
		totalQuotaRejects += n
	}
	if totalQuotaRejects == 0 {
		t.Fatal("no quota rejections under stress — budgets never bound, tune the test")
	}
	var migrations uint64
	for _, st := range s.Stats() {
		migrations += st.MigratedOut
	}
	if migrations == 0 {
		t.Fatal("no migrations under stress — the ledger test proved nothing")
	}

	wantArea := map[string]int64{}
	wantActive := map[string]int{}
	for g := range held {
		name := tenants[g%len(tenants)]
		for _, resv := range held[g] {
			wantArea[name] += int64(resv.Dur) * int64(resv.Procs)
			wantActive[name]++
		}
	}
	totals, err := s.TenantTotals()
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range tenants {
		if u := reg.Usage(name); u.Used != wantArea[name] || int(u.Inflight) != wantActive[name] {
			t.Errorf("registry vs clients for %s: used %d inflight %d, want %d/%d",
				name, u.Used, u.Inflight, wantArea[name], wantActive[name])
		}
		ts := totals[name]
		if ts.CommittedArea != wantArea[name] || ts.Active != wantActive[name] {
			t.Errorf("shard books vs clients for %s: area %d active %d, want %d/%d",
				name, ts.CommittedArea, ts.Active, wantArea[name], wantActive[name])
		}
		if ts.MigratedIn != ts.MigratedOut {
			t.Errorf("tenant %s migration ledger unbalanced: in %d, out %d",
				name, ts.MigratedIn, ts.MigratedOut)
		}
	}

	for g := range held {
		for _, resv := range held[g] {
			if err := s.Cancel(resv.ID); err != nil {
				t.Fatalf("drain cancel: %v", err)
			}
		}
	}
	for _, name := range tenants {
		if u := reg.Usage(name); u.Used != 0 || u.Inflight != 0 {
			t.Errorf("tenant %s not drained: %+v", name, u)
		}
	}
	for i := 0; i < shards; i++ {
		snap, err := s.Snapshot(i)
		if err != nil {
			t.Fatal(err)
		}
		if snap.NumSegments() != 1 || snap.AvailableAt(0) != m {
			t.Fatalf("shard %d not pristine after drain: %v", i, snap)
		}
	}
}

// TestPressurePlacementSpreadsTenants pins the quota-aware placement
// policy: each tenant's own footprint is what routes it, so one tenant's
// pile-up never captures another tenant's placement.
func TestPressurePlacementSpreadsTenants(t *testing.T) {
	s := mustNew(t, Config{Shards: 2, M: 8, Placement: "pressure"})
	if s.Placement() != "pressure" {
		t.Fatalf("placement = %q", s.Placement())
	}
	// Tenant a alternates shards: its own area is the primary key.
	r1, err := s.ReserveFor("a", 0, 2, 10, NoDeadline)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := s.ReserveFor("a", 0, 2, 10, NoDeadline)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Shard == r2.Shard {
		t.Fatalf("tenant a's reservations piled on shard %d", r1.Shard)
	}
	r3, err := s.ReserveFor("a", 0, 2, 30, NoDeadline)
	if err != nil {
		t.Fatal(err)
	}
	// a now holds area 20+60 on one side, 20 on the other; shard loads are
	// unequal. A fresh tenant b has no footprint anywhere, so the tie
	// breaks to the less-loaded shard — not wherever a went last.
	lighter := r1.Shard
	if r3.Shard == r1.Shard {
		lighter = r2.Shard
	}
	rb, err := s.ReserveFor("b", 0, 2, 10, NoDeadline)
	if err != nil {
		t.Fatal(err)
	}
	if rb.Shard != lighter {
		t.Fatalf("tenant b routed to shard %d, want the lighter shard %d", rb.Shard, lighter)
	}
}
