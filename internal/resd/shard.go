package resd

import (
	"errors"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/flight"
	"repro/internal/obs"
	"repro/internal/profile"
	"repro/internal/rebal"
	"repro/internal/tenant"
	"repro/internal/wal"
)

// opKind discriminates shard requests.
type opKind uint8

const (
	opReserve opKind = iota
	opCancel
	opQuery
	opSnapshot
	opTenantStats

	// Migration ops, used only by the rebalancer (Service.Rebalance).
	// opMigratable lists the shard's movable reservations; the other four
	// are the two-phase move: a tentative In on the target (index
	// committed, books untouched, invisible to Cancel), then Out on the
	// source (index released, books transferred out), then Commit on the
	// target (books transferred in) — or Abort on the target when the
	// source copy turned out to be cancelled in the meantime.
	opMigratable
	opMigrateIn
	opMigrateOut
	opMigrateCommit
	opMigrateAbort
	// opMigrateOutAck closes the source's WAL open-out after the target
	// committed: pure durability bookkeeping, a no-op without a WAL.
	opMigrateOutAck
)

// errMigratePending is the internal answer to a Cancel that reaches a
// tentative migrated-in copy: the two-phase move is mid-flight, and the
// service-level Cancel retries until the move commits or aborts. It never
// escapes the package.
var errMigratePending = errors.New("resd: reservation migration in flight")

// request is one operation submitted to a shard's event loop.
type request struct {
	kind     opKind
	tenant   string       // Reserve: accounting identity (never empty; "" is normalised upstream)
	ready    core.Time    // Reserve: earliest start; Query: probe instant
	q        int          // Reserve width
	dur      core.Time    // Reserve length
	deadline core.Time    // Reserve: latest admissible start (NoDeadline = unbounded)
	id       ID           // Cancel target
	peer     int          // two-phase move: the other shard (in: source, out: target)
	trace    *TraceRecord // sampled admission trace, nil for the unsampled majority
	reply    chan response
}

// response carries the result back to the caller. Exactly one of the
// fields is meaningful per kind; err reports failure.
type response struct {
	resv   Reservation
	free   int
	snap   profile.CapacityIndex
	tstats map[string]TenantStats
	cands  []rebal.Resv
	err    error
}

// active is a shard-local record of an admitted reservation. tenant is
// the accounting identity quota release uses; statKey is the (possibly
// overflow-bounded) per-shard book the admission was recorded under.
// pending marks a tentative migrated-in copy: its capacity is committed
// on the index but it is not yet in the shard's books and a Cancel
// reaching it is told to retry (errMigratePending) until the move
// resolves.
type active struct {
	start, dur core.Time
	q          int
	tenant     string
	statKey    string
	pending    bool
	from       int // pending only: the move's source shard (WAL recovery)
}

// OverflowTenant is the per-shard book that absorbs tenant names beyond
// the tenant.MaxAccounts bound: the loop-owned stats maps must not grow
// without limit just because a wire client cycles fresh names. Admission
// and quota accounting are unaffected — only per-name attribution in
// TenantStats degrades past the cap.
const OverflowTenant = "!overflow"

// tstatKey resolves which per-tenant book a name lands in, bounding the
// map like the registry bounds its accounts. The first time a shard
// falls back to the overflow book it journals the degradation: from
// that point per-name attribution is lossy, which an operator reading
// TenantStats should know without diffing map sizes.
func (sh *shard) tstatKey(name string) string {
	if _, ok := sh.tstats[name]; ok {
		return name
	}
	if len(sh.tstats) >= tenant.MaxAccounts {
		if !sh.overflowed {
			sh.overflowed = true
			sh.journal.RecordEvent(flight.Event{
				Sev: flight.Warn, Subsys: "resd", Shard: sh.id, Tenant: name,
				Msg: "tenant book overflow activated: per-name attribution degraded",
				KV:  []flight.KV{{K: "max_accounts", V: strconv.Itoa(tenant.MaxAccounts)}},
			})
		}
		return OverflowTenant
	}
	return name
}

// shard is one cluster partition: a capacity index plus the admission
// bookkeeping, owned exclusively by the loop goroutine. The only state
// other goroutines touch is the request channel and the atomic counters.
type shard struct {
	id     int
	m      int
	floor  int // α-rule head-room every admission must leave free
	batch  int
	quotas *tenant.Registry // nil = quota enforcement disabled

	idx    profile.CapacityIndex
	live   map[ID]active
	tstats map[string]TenantStats // per-tenant books, loop-owned
	// slack records the start-time slack of every admission. An atomic
	// obs.Histogram rather than a loop-owned slackHist so the SLO
	// engine's snapshot ring can read cumulative buckets without an
	// event-loop round trip; only the loop writes it.
	slack   *obs.Histogram
	tslack  map[string]*slackHist // per-tenant slack, keyed like tstats
	nextSeq uint64
	area    int64 // running processor-tick area of live reservations

	// tenAreas mirrors the per-tenant committed area as atomics (one cell
	// per tstats book), written only by the loop: the lock-free per-shard
	// per-tenant load summary the "pressure" placement policy routes by.
	tenAreas sync.Map // string → *atomic.Int64

	reqs chan request
	quit <-chan struct{}
	done chan struct{}

	// fairOrder scratch, reused across batches so the soft-mode reorder
	// allocates nothing per event-loop turn (like pending/results).
	fairPos      []int
	fairReserves []request
	fairRatios   []float64
	fairOrderIdx []int

	// Load summary published once per batch (group commit): placement
	// policies and Stats read these without touching the loop.
	activeCount   atomic.Int64
	committedArea atomic.Int64
	admitted      atomic.Uint64
	cancelled     atomic.Uint64
	rejected      atomic.Uint64
	rejectedDL    atomic.Uint64
	rejectedQuota atomic.Uint64
	migratedIn    atomic.Uint64
	migratedOut   atomic.Uint64
	slackP99      atomic.Int64
	batches       atomic.Uint64
	ops           atomic.Uint64

	// Observability extras: slackP50/slackP90 widen the published slack
	// summary to the scrape-side quantile set, and turnNs records each
	// event-loop turn's apply+publish latency. Written only when obsOn —
	// the unobserved configuration pays one predicted branch per batch.
	obsOn    bool
	slackP50 atomic.Int64
	slackP90 atomic.Int64
	turnNs   *obs.Histogram

	// Flight recorder surface. journal is nil-safe (a shard without a
	// recorder records into nothing); when flightOn the loop publishes
	// its heartbeat — busySince on entering a turn, lastBeat on
	// completing one, both unix nanoseconds — for the watchdog's
	// lock-free stall probes, and journals turns slower than
	// slowTurnThreshold. overflowed latches the tenant-book overflow
	// event (loop-owned). turnHook, set only by tests via the
	// unexported Config field, runs at the top of every turn.
	journal    *flight.Journal
	flightOn   bool
	lastBeat   atomic.Int64
	busySince  atomic.Int64
	overflowed bool
	turnHook   func(shard int)

	// Durability. wlog is the shard's write-ahead log (nil = in-memory
	// service); every state-changing op appends its record during apply
	// and the loop group-commits once per batch, before the replies are
	// released. openOuts tracks migrate-outs the peer has not durably
	// committed yet (loop-owned, persisted in snapshots). A WAL write
	// failure degrades the shard to non-durable (walFailed counts it)
	// rather than taking admissions down with the disk.
	wlog      *wal.Log
	snapEvery int
	openOuts  map[ID]int
	snapBusy  atomic.Bool
	snapWG    sync.WaitGroup
	walFailed atomic.Uint64
}

// tenAreaCell returns the shard's atomic area mirror for one tenant book,
// creating it on first use. Written only by the loop; read lock-free by
// the pressure placement policy.
func (sh *shard) tenAreaCell(statKey string) *atomic.Int64 {
	if v, ok := sh.tenAreas.Load(statKey); ok {
		return v.(*atomic.Int64)
	}
	v, _ := sh.tenAreas.LoadOrStore(statKey, new(atomic.Int64))
	return v.(*atomic.Int64)
}

// tenantArea reads one tenant's committed area on this shard (0 when the
// tenant has never touched the shard).
func (sh *shard) tenantArea(name string) int64 {
	if v, ok := sh.tenAreas.Load(name); ok {
		return v.(*atomic.Int64).Load()
	}
	return 0
}

// newShard builds the partition's index (with the Pre reservations
// committed) and starts its event loop. floor is the service-computed
// α head-room, passed in so the Reserve pre-check in Service and the
// enforcement here can never disagree. seed, when non-nil, is the
// shard's recovered pre-crash state (WAL replay): it is re-committed
// to the fresh index — placements land on the exact pre-crash profile
// — before the loop starts, and a boot snapshot anchors the new log
// generation so the replayed generations can be truncated.
func newShard(id int, cfg Config, floor int, quit <-chan struct{}, seed *shardSeed) (*shard, error) {
	idx, err := profile.IndexFromReservations(cfg.Backend, cfg.M, cfg.Pre)
	if err != nil {
		return nil, fmt.Errorf("resd: shard %d: %w", id, err)
	}
	sh := &shard{
		id:     id,
		m:      cfg.M,
		floor:  floor,
		batch:  cfg.Batch,
		quotas: cfg.Quotas,
		idx:    idx,
		live:   make(map[ID]active),
		tstats: make(map[string]TenantStats),
		slack:  &obs.Histogram{},
		tslack: make(map[string]*slackHist),
		reqs:   make(chan request, cfg.Batch),
		quit:   quit,
		done:   make(chan struct{}),
	}
	if cfg.Obs != nil && cfg.Obs.Registry != nil {
		sh.obsOn = true
		sh.turnNs = cfg.Obs.Registry.NewHistogram("resd_loop_turn_ns",
			"Event-loop turn latency (apply+publish of one batch), nanoseconds.",
			obs.L("shard", strconv.Itoa(id)))
	}
	if cfg.Obs != nil && cfg.Obs.Flight != nil {
		sh.flightOn = true
		sh.journal = cfg.Obs.Flight.Journal()
		// A fresh loop "beat" at creation: the watchdog's queued-but-no-
		// turn rule measures from here, so an idle-since-boot shard that
		// suddenly wedges is judged from boot, not from a zero time.
		sh.lastBeat.Store(time.Now().UnixNano())
	}
	sh.turnHook = cfg.turnHook
	if seed != nil {
		if err := sh.adoptSeed(cfg, seed); err != nil {
			return nil, err
		}
	}
	go sh.loop()
	return sh, nil
}

// adoptSeed installs recovered state before the loop starts: log handle,
// sequence counter, books, counters, and every surviving reservation
// committed back onto the index. The pre-crash state was legal against
// the same Pre and M, so a commit failure here means the configuration
// shrank under the recovered load — an error, not a panic.
func (sh *shard) adoptSeed(cfg Config, seed *shardSeed) error {
	sh.wlog = seed.log
	sh.snapEvery = cfg.WAL.SnapEvery
	sh.openOuts = seed.openOuts
	sh.nextSeq = seed.nextSeq
	sh.admitted.Store(seed.admitted)
	sh.cancelled.Store(seed.cancelled)
	sh.migratedIn.Store(seed.migratedIn)
	sh.migratedOut.Store(seed.migratedOut)
	sh.tstats = seed.books
	ids := make([]ID, 0, len(seed.live))
	for id := range seed.live {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		a := seed.live[id]
		if err := sh.idx.Commit(a.start, a.dur, a.q); err != nil {
			return fmt.Errorf("resd: shard %d: recovered reservation %#x (start=%v dur=%v q=%d) no longer fits: %w",
				sh.id, uint64(id), a.start, a.dur, a.q, err)
		}
		sh.live[id] = a
		sh.area += int64(a.dur) * int64(a.q)
	}
	for name, ts := range sh.tstats {
		if ts.CommittedArea != 0 {
			sh.tenAreaCell(name).Store(ts.CommittedArea)
		}
	}
	sh.activeCount.Store(int64(len(sh.live)))
	sh.committedArea.Store(sh.area)
	// Anchor a snapshot of the recovered state so the generations replay
	// just consumed can be deleted. The boot generation may already hold
	// recovery's fixup records, whose effects this state includes, so the
	// snapshot anchors the generation after them (rotate first). Written
	// synchronously: by the time New returns, recovery is complete and
	// the old logs are gone. Skipped for a state-free boot (nothing to
	// anchor) and when snapshots are disabled.
	if sh.snapEvery > 0 && (len(sh.live) > 0 || len(sh.tstats) > 0 || seed.admitted > 0) {
		gen, err := sh.wlog.Rotate()
		if err != nil {
			return fmt.Errorf("resd: shard %d: boot snapshot: %w", sh.id, err)
		}
		if err := sh.wlog.WriteSnapshot(seed.bootSnapshot(sh.id, gen)); err != nil {
			return fmt.Errorf("resd: shard %d: boot snapshot: %w", sh.id, err)
		}
	}
	return nil
}

// do submits one request and blocks for its response. It never blocks past
// service shutdown: enqueue and reply are both raced against quit.
func (sh *shard) do(req request) (response, error) {
	req.reply = make(chan response, 1)
	select {
	case sh.reqs <- req:
	case <-sh.quit:
		return response{}, ErrClosed
	}
	select {
	case resp := <-req.reply:
		return resp, resp.err
	case <-sh.quit:
		// The loop may still answer (reply is buffered); prefer the real
		// answer if it already arrived, otherwise report the shutdown.
		select {
		case resp := <-req.reply:
			return resp, resp.err
		default:
			return response{}, ErrClosed
		}
	}
}

// wait blocks until the event loop has exited (after quit is closed).
func (sh *shard) wait() { <-sh.done }

// loop is the shard's single writer. Each turn blocks for one request,
// drains up to batch-1 more that are already pending, applies the whole
// group against the index, publishes the load summary once, and only then
// releases the replies — the group-commit that amortises synchronisation
// under load while keeping single-request latency at one handoff.
func (sh *shard) loop() {
	defer close(sh.done)
	// Runs before done closes (LIFO): wait out any in-flight snapshot
	// write, then seal the log so the final generation is complete.
	defer func() {
		sh.snapWG.Wait()
		if sh.wlog != nil {
			if err := sh.wlog.Close(); err != nil {
				sh.report(flight.Error, "wal", fmt.Sprintf("wal close: %v", err))
			}
		}
	}()
	pending := make([]request, 0, sh.batch)
	results := make([]response, 0, sh.batch)
	for {
		var first request
		select {
		case <-sh.quit:
			sh.drainClosed()
			return
		case first = <-sh.reqs:
		}
		if sh.flightOn {
			sh.busySince.Store(time.Now().UnixNano())
		}
		if sh.turnHook != nil {
			sh.turnHook(sh.id)
		}
		pending = append(pending[:0], first)
		// The send that delivered first also scheduled this goroutine to
		// run immediately next (the runtime's direct handoff), so the
		// queue is usually still empty here even with many callers in
		// flight. Yield once per round so every runnable caller gets to
		// enqueue, and keep draining until a round adds nothing — that
		// turns nominal batches of 1 into real group commits under load,
		// while a lone caller pays only a no-op yield.
		for drained := true; drained && len(pending) < sh.batch; {
			runtime.Gosched()
			drained = false
		drain:
			for len(pending) < sh.batch {
				select {
				case r := <-sh.reqs:
					pending = append(pending, r)
					drained = true
				default:
					break drain
				}
			}
		}
		sh.fairOrder(pending)
		var turnStart time.Time
		if sh.obsOn {
			turnStart = time.Now()
		}
		results = results[:0]
		for _, r := range pending {
			if r.trace != nil {
				r.trace.BatchStart = time.Since(r.trace.Arrival)
			}
			results = append(results, sh.apply(r))
		}
		// The group-commit durability point: every record the batch
		// appended is flushed (and fsynced, under SyncBatch) in one call
		// before any reply is released — callers never observe a success
		// the log could forget.
		if sh.wlog != nil {
			if err := sh.wlog.Commit(); err != nil {
				sh.walFail("commit", err)
			}
		}
		sh.publish(len(pending))
		if sh.obsOn {
			sh.turnNs.Observe(time.Since(turnStart).Nanoseconds())
		}
		for i, r := range pending {
			r.reply <- results[i]
		}
		if sh.flightOn {
			sh.beat(len(pending))
		}
		sh.maybeSnapshot()
	}
}

// slowTurnThreshold is the batch-turn anomaly budget: a turn that took
// longer than this is journaled (the whole loop was unavailable for
// the duration — every queued caller waited it out).
const slowTurnThreshold = 100 * time.Millisecond

// beat completes the loop's heartbeat for one turn: journal the turn
// as an anomaly if it ran long, then publish "turn done, loop idle"
// for the watchdog's stall probes.
func (sh *shard) beat(ops int) {
	now := time.Now()
	if busy := sh.busySince.Load(); busy != 0 {
		if d := now.Sub(time.Unix(0, busy)); d >= slowTurnThreshold {
			sh.journal.Record(flight.Warn, "resd", sh.id, "slow batch turn",
				flight.KV{K: "turn", V: d.String()}, flight.KV{K: "ops", V: strconv.Itoa(ops)})
		}
	}
	sh.lastBeat.Store(now.UnixNano())
	sh.busySince.Store(0)
}

// report journals an event, or falls back to stderr when the shard has
// no recorder — the pre-flight behaviour for a bare service.
func (sh *shard) report(sev flight.Severity, subsys, msg string, kv ...flight.KV) {
	if sh.journal != nil {
		sh.journal.Record(sev, subsys, sh.id, msg, kv...)
		return
	}
	fmt.Fprintf(os.Stderr, "resd: shard %d: %s\n", sh.id, msg)
}

// fairOrder is soft-mode weighted fair share at the group-commit point:
// when the batch carries competing Reserve requests, they are permuted —
// among the Reserve positions only, every other op keeps its place — so
// the tenant with the lowest usage-to-budget ratio commits first and takes
// the earlier (cheaper) start times, DRF-style. The sort is stable, so
// same-tenant and equal-pressure requests keep their arrival order; with a
// single serial caller every batch holds one request and the ordering is a
// no-op, which is what preserves the serial-replay-equals-FCFS guarantee.
// Ratios are read once per batch from the registry's atomics: reads racing
// concurrent commits are as harmlessly stale as the placement policies'
// load summaries.
func (sh *shard) fairOrder(pending []request) {
	if sh.quotas == nil || sh.quotas.Mode() != tenant.Soft || len(pending) < 2 {
		return
	}
	pos := sh.fairPos[:0]
	for i, r := range pending {
		if r.kind == opReserve {
			pos = append(pos, i)
		}
	}
	sh.fairPos = pos
	if len(pos) < 2 {
		return
	}
	reserves := sh.fairReserves[:0]
	ratios := sh.fairRatios[:0]
	order := sh.fairOrderIdx[:0]
	for k, i := range pos {
		reserves = append(reserves, pending[i])
		ratios = append(ratios, sh.quotas.Ratio(pending[i].tenant))
		order = append(order, k)
	}
	sh.fairReserves, sh.fairRatios, sh.fairOrderIdx = reserves, ratios, order
	sort.SliceStable(order, func(a, b int) bool { return ratios[order[a]] < ratios[order[b]] })
	for k, i := range pos {
		pending[i] = reserves[order[k]]
	}
}

// drainClosed answers every request still queued at shutdown.
func (sh *shard) drainClosed() {
	for {
		select {
		case r := <-sh.reqs:
			r.reply <- response{err: ErrClosed}
		default:
			return
		}
	}
}

// apply executes one request against the shard-local state. Runs only on
// the loop goroutine.
func (sh *shard) apply(r request) response {
	switch r.kind {
	case opReserve:
		return sh.reserve(r)
	case opCancel:
		return sh.cancel(r)
	case opQuery:
		return response{free: sh.idx.AvailableAt(r.ready)}
	case opSnapshot:
		return response{snap: sh.idx.CloneIndex()}
	case opTenantStats:
		out := make(map[string]TenantStats, len(sh.tstats))
		for name, ts := range sh.tstats {
			if h := sh.tslack[name]; h != nil {
				ts.SlackP99 = h.p99()
			}
			out[name] = ts
		}
		return response{tstats: out}
	case opMigratable:
		return sh.migratable(r)
	case opMigrateIn:
		return sh.migrateIn(r)
	case opMigrateOut:
		return sh.migrateOut(r)
	case opMigrateCommit:
		return sh.migrateCommit(r)
	case opMigrateAbort:
		return sh.migrateAbort(r)
	case opMigrateOutAck:
		return sh.migrateOutAck(r)
	default:
		return response{err: fmt.Errorf("%w: unknown op %d", ErrBadRequest, r.kind)}
	}
}

// reserve admits at the earliest start >= ready that leaves the α-rule
// head-room free across the whole window: one FindSlot for q+floor
// processors, then a Commit of q. A request with a deadline is rejected —
// not pushed back — when that earliest start lands after the deadline,
// and a feasible-and-timely request is charged to its tenant's quota
// before the commit (the quota check runs last, so a doomed request never
// burns budget, however briefly).
func (sh *shard) reserve(r request) response {
	start, ok := sh.idx.FindSlot(r.ready, r.q+sh.floor, r.dur)
	if !ok {
		sh.rejected.Add(1)
		return response{err: fmt.Errorf("%w: q=%d dur=%v with α-floor %d on shard %d",
			ErrNeverFits, r.q, r.dur, sh.floor, sh.id)}
	}
	if start > r.deadline {
		sh.rejectedDL.Add(1)
		return response{err: fmt.Errorf("%w: earliest feasible start %v > deadline %v (q=%d dur=%v, shard %d)",
			ErrDeadline, start, r.deadline, r.q, r.dur, sh.id)}
	}
	area := int64(r.dur) * int64(r.q)
	statKey := sh.tstatKey(r.tenant)
	if sh.quotas != nil {
		if err := sh.quotas.Acquire(r.tenant, area); err != nil {
			sh.rejectedQuota.Add(1)
			ts := sh.tstats[statKey]
			ts.RejectedQuota++
			sh.tstats[statKey] = ts
			return response{err: fmt.Errorf("shard %d: %w", sh.id, err)}
		}
	}
	if err := sh.idx.Commit(start, r.dur, r.q); err != nil {
		// Unreachable: FindSlot guarantees capacity and the loop is the
		// only writer. Surface rather than panic so a backend bug turns
		// into a failed request, not a dead shard.
		if sh.quotas != nil {
			sh.quotas.Rollback(r.tenant, area)
		}
		sh.rejected.Add(1)
		return response{err: fmt.Errorf("resd: shard %d commit after FindSlot: %w", sh.id, err)}
	}
	if sh.quotas != nil {
		sh.quotas.Admit(r.tenant)
	}
	id := makeID(sh.id, sh.nextSeq)
	sh.nextSeq++
	sh.walAppend(wal.Record{
		Type: wal.TAdmit, ID: uint64(id), Tenant: r.tenant,
		Ready: int64(r.ready), Procs: r.q, Dur: int64(r.dur),
		Deadline: int64(r.deadline), Start: int64(start),
	})
	sh.live[id] = active{start: start, dur: r.dur, q: r.q, tenant: r.tenant, statKey: statKey}
	sh.area += area
	ts := sh.tstats[statKey]
	ts.Active++
	ts.CommittedArea += area
	ts.Admitted++
	sh.tstats[statKey] = ts
	sh.tenAreaCell(statKey).Add(area)
	// Start-time slack — how far past its ready time the admission had to
	// be pushed — is the per-admission SLO sample surfaced as p99 in
	// ShardStats and per tenant in TenantStats.
	sh.slack.Observe(int64(start - r.ready))
	th := sh.tslack[statKey]
	if th == nil {
		th = new(slackHist)
		sh.tslack[statKey] = th
	}
	th.add(start - r.ready)
	sh.admitted.Add(1)
	return response{resv: Reservation{ID: id, Shard: sh.id, Start: start, Dur: r.dur, Procs: r.q}}
}

// cancel releases an admitted reservation and credits the area back to
// its tenant's quota. A tentative migrated-in copy is not cancellable —
// the service retries until the in-flight move commits or aborts, so a
// Cancel can never release a reservation the two-phase protocol still
// owns.
func (sh *shard) cancel(r request) response {
	a, ok := sh.live[r.id]
	if !ok {
		return response{err: fmt.Errorf("%w: %#x on shard %d", ErrUnknownID, uint64(r.id), sh.id)}
	}
	if a.pending {
		return response{err: fmt.Errorf("%w: %#x on shard %d", errMigratePending, uint64(r.id), sh.id)}
	}
	if err := sh.idx.Release(a.start, a.dur, a.q); err != nil {
		return response{err: fmt.Errorf("resd: shard %d release: %w", sh.id, err)}
	}
	sh.walAppend(wal.Record{Type: wal.TCancel, ID: uint64(r.id)})
	delete(sh.live, r.id)
	area := int64(a.dur) * int64(a.q)
	sh.area -= area
	if sh.quotas != nil {
		sh.quotas.Release(a.tenant, area)
	}
	ts := sh.tstats[a.statKey]
	ts.Active--
	ts.CommittedArea -= area
	ts.Cancelled++
	sh.tstats[a.statKey] = ts
	sh.tenAreaCell(a.statKey).Add(-area)
	sh.cancelled.Add(1)
	return response{}
}

// migratable lists the shard's movable reservations: live, not pending,
// and starting at or after the cutoff carried in r.ready (now + the
// frozen window Δ). The list is consistent (served inside the loop) and
// sorted by ID so planning over it is deterministic.
func (sh *shard) migratable(r request) response {
	var out []rebal.Resv
	for id, a := range sh.live {
		if a.pending || a.start < r.ready {
			continue
		}
		out = append(out, rebal.Resv{
			ID: uint64(id), Start: a.start, Dur: a.dur, Procs: a.q, Tenant: a.tenant,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return response{cands: out}
}

// migrateIn tentatively hosts a reservation migrating from another shard:
// the capacity is committed — under the same α head-room rule as a fresh
// admission — but the copy stays pending: out of the books, invisible to
// Cancel, uncounted. Quota is not touched: the tenant's global charge
// rides along with the reservation, paid once at original admission.
func (sh *shard) migrateIn(r request) response {
	if _, dup := sh.live[r.id]; dup {
		return response{err: fmt.Errorf("%w: migrate-in of resident id %#x on shard %d", ErrBadRequest, uint64(r.id), sh.id)}
	}
	if !sh.idx.CanPlace(r.ready, r.dur, r.q+sh.floor) {
		return response{err: fmt.Errorf("%w: shard %d cannot host q=%d at %v under α-floor %d",
			ErrNeverFits, sh.id, r.q, r.ready, sh.floor)}
	}
	if err := sh.idx.Commit(r.ready, r.dur, r.q); err != nil {
		return response{err: fmt.Errorf("resd: shard %d migrate-in commit: %w", sh.id, err)}
	}
	sh.walAppend(wal.Record{
		Type: wal.TMigrateIn, ID: uint64(r.id), Peer: uint32(r.peer),
		Start: int64(r.ready), Dur: int64(r.dur), Procs: r.q, Tenant: r.tenant,
	})
	sh.live[r.id] = active{
		start: r.ready, dur: r.dur, q: r.q,
		tenant: r.tenant, statKey: sh.tstatKey(r.tenant), pending: true, from: r.peer,
	}
	return response{}
}

// migrateOut releases the source copy of a migrating reservation and
// transfers its book entries out. ErrUnknownID means the reservation was
// cancelled between planning and execution — the executor's rollback
// signal. No quota is released: the charge moved with the reservation.
func (sh *shard) migrateOut(r request) response {
	a, ok := sh.live[r.id]
	if !ok || a.pending {
		return response{err: fmt.Errorf("%w: %#x not resident on shard %d", ErrUnknownID, uint64(r.id), sh.id)}
	}
	if err := sh.idx.Release(a.start, a.dur, a.q); err != nil {
		return response{err: fmt.Errorf("resd: shard %d migrate-out release: %w", sh.id, err)}
	}
	if sh.wlog != nil {
		sh.walAppend(wal.Record{Type: wal.TMigrateOut, ID: uint64(r.id), Peer: uint32(r.peer)})
		sh.openOuts[r.id] = r.peer
	}
	delete(sh.live, r.id)
	area := int64(a.dur) * int64(a.q)
	sh.area -= area
	ts := sh.tstats[a.statKey]
	ts.Active--
	ts.CommittedArea -= area
	ts.MigratedOut++
	sh.tstats[a.statKey] = ts
	sh.tenAreaCell(a.statKey).Add(-area)
	sh.migratedOut.Add(1)
	return response{}
}

// migrateCommit finalises a tentative migrated-in copy: it becomes an
// ordinary live reservation, entering the books it was kept out of while
// pending.
func (sh *shard) migrateCommit(r request) response {
	a, ok := sh.live[r.id]
	if !ok || !a.pending {
		return response{err: fmt.Errorf("%w: no pending migrate-in for %#x on shard %d", ErrBadRequest, uint64(r.id), sh.id)}
	}
	sh.walAppend(wal.Record{Type: wal.TMigrateCommit, ID: uint64(r.id)})
	a.pending = false
	a.from = 0
	sh.live[r.id] = a
	area := int64(a.dur) * int64(a.q)
	sh.area += area
	ts := sh.tstats[a.statKey]
	ts.Active++
	ts.CommittedArea += area
	ts.MigratedIn++
	sh.tstats[a.statKey] = ts
	sh.tenAreaCell(a.statKey).Add(area)
	sh.migratedIn.Add(1)
	return response{}
}

// migrateAbort rolls back a tentative migrated-in copy after the source
// reported the reservation gone (cancelled mid-migration): the capacity
// is released and the copy vanishes without ever having been visible.
func (sh *shard) migrateAbort(r request) response {
	a, ok := sh.live[r.id]
	if !ok || !a.pending {
		return response{err: fmt.Errorf("%w: no pending migrate-in for %#x on shard %d", ErrBadRequest, uint64(r.id), sh.id)}
	}
	if err := sh.idx.Release(a.start, a.dur, a.q); err != nil {
		return response{err: fmt.Errorf("resd: shard %d migrate-abort release: %w", sh.id, err)}
	}
	sh.walAppend(wal.Record{Type: wal.TMigrateAbort, ID: uint64(r.id)})
	delete(sh.live, r.id)
	return response{}
}

// migrateOutAck closes the shard's open-out for a move the target has
// durably committed. Idempotent, and a no-op without a WAL: the open-out
// set exists only for crash recovery.
func (sh *shard) migrateOutAck(r request) response {
	if sh.wlog != nil {
		if _, open := sh.openOuts[r.id]; open {
			sh.walAppend(wal.Record{Type: wal.TMigrateOutAck, ID: uint64(r.id)})
			delete(sh.openOuts, r.id)
		}
	}
	return response{}
}

// publish stores the load summary for lock-free readers (placement
// policies, Stats). Called once per batch — the group-commit point.
func (sh *shard) publish(n int) {
	sh.activeCount.Store(int64(len(sh.live)))
	sh.committedArea.Store(sh.area)
	sh.slackP99.Store(sh.slack.Quantile(0.99))
	if sh.obsOn {
		sh.slackP50.Store(sh.slack.Quantile(0.5))
		sh.slackP90.Store(sh.slack.Quantile(0.9))
	}
	sh.batches.Add(1)
	sh.ops.Add(uint64(n))
}

// stats assembles the published summary.
func (sh *shard) stats() ShardStats {
	return ShardStats{
		Active:           int(sh.activeCount.Load()),
		CommittedArea:    sh.committedArea.Load(),
		Admitted:         sh.admitted.Load(),
		Cancelled:        sh.cancelled.Load(),
		Rejected:         sh.rejected.Load(),
		RejectedDeadline: sh.rejectedDL.Load(),
		RejectedQuota:    sh.rejectedQuota.Load(),
		MigratedIn:       sh.migratedIn.Load(),
		MigratedOut:      sh.migratedOut.Load(),
		SlackP99:         core.Time(sh.slackP99.Load()),
		Batches:          sh.batches.Load(),
		Ops:              sh.ops.Load(),
	}
}
