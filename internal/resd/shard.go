package resd

import (
	"fmt"
	"runtime"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/profile"
)

// opKind discriminates shard requests.
type opKind uint8

const (
	opReserve opKind = iota
	opCancel
	opQuery
	opSnapshot
)

// request is one operation submitted to a shard's event loop.
type request struct {
	kind     opKind
	ready    core.Time // Reserve: earliest start; Query: probe instant
	q        int       // Reserve width
	dur      core.Time // Reserve length
	deadline core.Time // Reserve: latest admissible start (NoDeadline = unbounded)
	id       ID        // Cancel target
	reply    chan response
}

// response carries the result back to the caller. Exactly one of the
// fields is meaningful per kind; err reports failure.
type response struct {
	resv Reservation
	free int
	snap profile.CapacityIndex
	err  error
}

// active is a shard-local record of an admitted reservation.
type active struct {
	start, dur core.Time
	q          int
}

// shard is one cluster partition: a capacity index plus the admission
// bookkeeping, owned exclusively by the loop goroutine. The only state
// other goroutines touch is the request channel and the atomic counters.
type shard struct {
	id    int
	m     int
	floor int // α-rule head-room every admission must leave free
	batch int

	idx     profile.CapacityIndex
	live    map[ID]active
	nextSeq uint64
	area    int64 // running processor-tick area of live reservations

	reqs chan request
	quit <-chan struct{}
	done chan struct{}

	// Load summary published once per batch (group commit): placement
	// policies and Stats read these without touching the loop.
	activeCount   atomic.Int64
	committedArea atomic.Int64
	admitted      atomic.Uint64
	cancelled     atomic.Uint64
	rejected      atomic.Uint64
	rejectedDL    atomic.Uint64
	batches       atomic.Uint64
	ops           atomic.Uint64
}

// newShard builds the partition's index (with the Pre reservations
// committed) and starts its event loop. floor is the service-computed
// α head-room, passed in so the Reserve pre-check in Service and the
// enforcement here can never disagree.
func newShard(id int, cfg Config, floor int, quit <-chan struct{}) (*shard, error) {
	idx, err := profile.IndexFromReservations(cfg.Backend, cfg.M, cfg.Pre)
	if err != nil {
		return nil, fmt.Errorf("resd: shard %d: %w", id, err)
	}
	sh := &shard{
		id:    id,
		m:     cfg.M,
		floor: floor,
		batch: cfg.Batch,
		idx:   idx,
		live:  make(map[ID]active),
		reqs:  make(chan request, cfg.Batch),
		quit:  quit,
		done:  make(chan struct{}),
	}
	go sh.loop()
	return sh, nil
}

// do submits one request and blocks for its response. It never blocks past
// service shutdown: enqueue and reply are both raced against quit.
func (sh *shard) do(req request) (response, error) {
	req.reply = make(chan response, 1)
	select {
	case sh.reqs <- req:
	case <-sh.quit:
		return response{}, ErrClosed
	}
	select {
	case resp := <-req.reply:
		return resp, resp.err
	case <-sh.quit:
		// The loop may still answer (reply is buffered); prefer the real
		// answer if it already arrived, otherwise report the shutdown.
		select {
		case resp := <-req.reply:
			return resp, resp.err
		default:
			return response{}, ErrClosed
		}
	}
}

// wait blocks until the event loop has exited (after quit is closed).
func (sh *shard) wait() { <-sh.done }

// loop is the shard's single writer. Each turn blocks for one request,
// drains up to batch-1 more that are already pending, applies the whole
// group against the index, publishes the load summary once, and only then
// releases the replies — the group-commit that amortises synchronisation
// under load while keeping single-request latency at one handoff.
func (sh *shard) loop() {
	defer close(sh.done)
	pending := make([]request, 0, sh.batch)
	results := make([]response, 0, sh.batch)
	for {
		var first request
		select {
		case <-sh.quit:
			sh.drainClosed()
			return
		case first = <-sh.reqs:
		}
		pending = append(pending[:0], first)
		// The send that delivered first also scheduled this goroutine to
		// run immediately next (the runtime's direct handoff), so the
		// queue is usually still empty here even with many callers in
		// flight. Yield once per round so every runnable caller gets to
		// enqueue, and keep draining until a round adds nothing — that
		// turns nominal batches of 1 into real group commits under load,
		// while a lone caller pays only a no-op yield.
		for drained := true; drained && len(pending) < sh.batch; {
			runtime.Gosched()
			drained = false
		drain:
			for len(pending) < sh.batch {
				select {
				case r := <-sh.reqs:
					pending = append(pending, r)
					drained = true
				default:
					break drain
				}
			}
		}
		results = results[:0]
		for _, r := range pending {
			results = append(results, sh.apply(r))
		}
		sh.publish(len(pending))
		for i, r := range pending {
			r.reply <- results[i]
		}
	}
}

// drainClosed answers every request still queued at shutdown.
func (sh *shard) drainClosed() {
	for {
		select {
		case r := <-sh.reqs:
			r.reply <- response{err: ErrClosed}
		default:
			return
		}
	}
}

// apply executes one request against the shard-local state. Runs only on
// the loop goroutine.
func (sh *shard) apply(r request) response {
	switch r.kind {
	case opReserve:
		return sh.reserve(r)
	case opCancel:
		return sh.cancel(r)
	case opQuery:
		return response{free: sh.idx.AvailableAt(r.ready)}
	case opSnapshot:
		return response{snap: sh.idx.CloneIndex()}
	default:
		return response{err: fmt.Errorf("%w: unknown op %d", ErrBadRequest, r.kind)}
	}
}

// reserve admits at the earliest start >= ready that leaves the α-rule
// head-room free across the whole window: one FindSlot for q+floor
// processors, then a Commit of q. A request with a deadline is rejected —
// not pushed back — when that earliest start lands after the deadline.
func (sh *shard) reserve(r request) response {
	start, ok := sh.idx.FindSlot(r.ready, r.q+sh.floor, r.dur)
	if !ok {
		sh.rejected.Add(1)
		return response{err: fmt.Errorf("%w: q=%d dur=%v with α-floor %d on shard %d",
			ErrNeverFits, r.q, r.dur, sh.floor, sh.id)}
	}
	if start > r.deadline {
		sh.rejectedDL.Add(1)
		return response{err: fmt.Errorf("%w: earliest feasible start %v > deadline %v (q=%d dur=%v, shard %d)",
			ErrDeadline, start, r.deadline, r.q, r.dur, sh.id)}
	}
	if err := sh.idx.Commit(start, r.dur, r.q); err != nil {
		// Unreachable: FindSlot guarantees capacity and the loop is the
		// only writer. Surface rather than panic so a backend bug turns
		// into a failed request, not a dead shard.
		sh.rejected.Add(1)
		return response{err: fmt.Errorf("resd: shard %d commit after FindSlot: %w", sh.id, err)}
	}
	id := makeID(sh.id, sh.nextSeq)
	sh.nextSeq++
	sh.live[id] = active{start: start, dur: r.dur, q: r.q}
	sh.area += int64(r.dur) * int64(r.q)
	sh.admitted.Add(1)
	return response{resv: Reservation{ID: id, Shard: sh.id, Start: start, Dur: r.dur, Procs: r.q}}
}

// cancel releases an admitted reservation.
func (sh *shard) cancel(r request) response {
	a, ok := sh.live[r.id]
	if !ok {
		return response{err: fmt.Errorf("%w: %#x on shard %d", ErrUnknownID, uint64(r.id), sh.id)}
	}
	if err := sh.idx.Release(a.start, a.dur, a.q); err != nil {
		return response{err: fmt.Errorf("resd: shard %d release: %w", sh.id, err)}
	}
	delete(sh.live, r.id)
	sh.area -= int64(a.dur) * int64(a.q)
	sh.cancelled.Add(1)
	return response{}
}

// publish stores the load summary for lock-free readers (placement
// policies, Stats). Called once per batch — the group-commit point.
func (sh *shard) publish(n int) {
	sh.activeCount.Store(int64(len(sh.live)))
	sh.committedArea.Store(sh.area)
	sh.batches.Add(1)
	sh.ops.Add(uint64(n))
}

// stats assembles the published summary.
func (sh *shard) stats() ShardStats {
	return ShardStats{
		Active:           int(sh.activeCount.Load()),
		CommittedArea:    sh.committedArea.Load(),
		Admitted:         sh.admitted.Load(),
		Cancelled:        sh.cancelled.Load(),
		Rejected:         sh.rejected.Load(),
		RejectedDeadline: sh.rejectedDL.Load(),
		Batches:          sh.batches.Load(),
		Ops:              sh.ops.Load(),
	}
}
