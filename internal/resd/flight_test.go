package resd

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/flight"
	"repro/internal/obs"
)

// fastBudgets are watchdog thresholds tight enough for a test to drive
// transitions in milliseconds, with every rule but the stall detector
// disabled so nothing else can fire.
var fastBudgets = flight.Budgets{
	CheckEvery:      2 * time.Millisecond,
	StallAfter:      25 * time.Millisecond,
	QueueFullFor:    -1,
	FsyncP99:        -1,
	FrameErrorBurst: -1,
}

func waitHealth(t *testing.T, rec *flight.Recorder, want flight.Health) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for rec.State() != want {
		if time.Now().After(deadline) {
			t.Fatalf("health = %v, want %v (warning %q)", rec.State(), want, rec.Warning())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestWatchdogWedgedLoop wedges a real shard event loop (via the test
// turn hook) and checks the whole detection surface: the watchdog
// judges the node stalled, /healthz serves the warning, the
// resd_health_state gauge reads 2, a diagnostic bundle lands in the
// flight directory — and unwedging recovers everything.
func TestWatchdogWedgedLoop(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	rec, err := flight.New(flight.Config{Registry: reg, Dir: dir, Budgets: fastBudgets})
	if err != nil {
		t.Fatal(err)
	}
	block := make(chan struct{})
	var wedge atomic.Bool
	s := mustNew(t, Config{
		M:   8,
		Obs: &ObsConfig{Registry: reg, Flight: rec},
		turnHook: func(int) {
			if wedge.Load() {
				<-block
			}
		},
	})

	// Healthy first: the loop is beating.
	if _, err := s.Reserve(0, 1, 1); err != nil {
		t.Fatal(err)
	}
	waitHealth(t, rec, flight.Healthy)

	// Wedge the loop inside one batch turn.
	wedge.Store(true)
	admitErr := make(chan error, 1)
	go func() {
		_, err := s.Reserve(0, 1, 1)
		admitErr <- err
	}()
	waitHealth(t, rec, flight.Stalled)
	if w := rec.Warning(); !strings.Contains(w, "shard 0") {
		t.Errorf("warning %q does not name the wedged shard", w)
	}

	// The operator-facing surfaces agree: /healthz warns, the gauge is 2.
	warn := func() string {
		if rec.State() != flight.Healthy {
			return rec.State().String() + ": " + rec.Warning()
		}
		return ""
	}
	hsrv := httptest.NewServer(obs.HandlerWithWarn(reg, nil, warn))
	defer hsrv.Close()
	resp, err := http.Get(hsrv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || !strings.Contains(string(body), "warning: stalled") {
		t.Errorf("/healthz = %d %q, want 200 with a stalled warning", resp.StatusCode, body)
	}
	resp, err = http.Get(hsrv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	exp, err := obs.ParseExposition(body)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := exp.Value("resd_health_state", nil); !ok || v != 2 {
		t.Errorf("resd_health_state = %v, %v, want 2", v, ok)
	}

	// The stall captured a bundle.
	if got := rec.Bundles(); len(got) != 1 {
		t.Errorf("stall captured %d bundles, want 1", len(got))
	}

	// Unwedge: the queued admission completes and health recovers.
	wedge.Store(false)
	close(block)
	select {
	case err := <-admitErr:
		if err != nil {
			t.Fatalf("admission after unwedge: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("admission never completed after unwedge")
	}
	waitHealth(t, rec, flight.Healthy)

	// The journal holds the whole story.
	var sawStall, sawRecover bool
	for _, ev := range rec.Journal().Tail(0) {
		if ev.Subsys != "flight" {
			continue
		}
		for _, kv := range ev.KV {
			if kv.K == "to" && kv.V == "stalled" {
				sawStall = true
			}
			if kv.K == "to" && kv.V == "healthy" && sawStall {
				sawRecover = true
			}
		}
	}
	if !sawStall || !sawRecover {
		t.Errorf("journal: stall=%v recover=%v, want both", sawStall, sawRecover)
	}
}

// TestWatchdogFlapBounded: a loop that wedges and recovers repeatedly
// cannot write unbounded bundles — the rate limit holds captures to one
// per BundleMinInterval however often the state flaps.
func TestWatchdogFlapBounded(t *testing.T) {
	dir := t.TempDir()
	rec, err := flight.New(flight.Config{
		Dir:               dir,
		Budgets:           fastBudgets,
		BundleMinInterval: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	block := make(chan struct{})
	var wedge atomic.Bool
	s := mustNew(t, Config{
		M:   8,
		Obs: &ObsConfig{Flight: rec},
		turnHook: func(int) {
			if wedge.Load() {
				<-block
			}
		},
	})
	for i := 0; i < 3; i++ {
		wedge.Store(true)
		admitErr := make(chan error, 1)
		go func() {
			_, err := s.Reserve(0, 1, 1)
			admitErr <- err
		}()
		waitHealth(t, rec, flight.Stalled)
		wedge.Store(false)
		block <- struct{}{}
		if err := <-admitErr; err != nil {
			t.Fatal(err)
		}
		waitHealth(t, rec, flight.Healthy)
	}
	if got := rec.Bundles(); len(got) != 1 {
		t.Errorf("3 flaps wrote %d bundles, want 1 (rate limit)", len(got))
	}
}

// TestSlowLogBlockingCallback: a SlowLog callback that never returns
// cannot stall admissions or shutdown — the queue drops (and counts)
// excess records and Close returns without waiting for the callback.
func TestSlowLogBlockingCallback(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	var fired atomic.Uint64
	s, err := New(Config{M: 8, Obs: &ObsConfig{
		TraceSample:   1,
		SlowThreshold: time.Nanosecond, // every admission is "slow"
		SlowLog: func(TraceRecord) {
			fired.Add(1)
			<-block // a hostile callback: wedges the dispatcher forever
		},
	}})
	if err != nil {
		t.Fatal(err)
	}

	// Far more slow records than the queue holds: admissions must all
	// complete promptly even though the consumer is wedged on record 1.
	const n = slowLogQueueDepth * 2
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < n; i++ {
			if _, err := s.Reserve(0, 1, 1); err != nil {
				t.Errorf("Reserve %d: %v", i, err)
				return
			}
		}
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("admissions stalled behind a blocking SlowLog callback")
	}
	if got := s.tracer.slowQ.Dropped(); got == 0 {
		t.Error("no dropped slow-log records despite a wedged consumer")
	}
	if got := fired.Load(); got != 1 {
		t.Errorf("callback fired %d times while wedged, want 1", got)
	}

	// Close must not wait for the wedged callback.
	closed := make(chan struct{})
	go func() { s.Close(); close(closed) }()
	select {
	case <-closed:
	case <-time.After(10 * time.Second):
		t.Fatal("Close blocked on a wedged SlowLog callback")
	}
}
