package resd

import (
	"fmt"

	"repro/internal/flight"
	"repro/internal/wal"
)

// walAppend buffers one record on the shard's log (durable at the
// batch's Commit). A no-op when the shard runs without a WAL or has
// degraded after a log failure.
func (sh *shard) walAppend(rec wal.Record) {
	if sh.wlog == nil {
		return
	}
	if err := sh.wlog.Append(rec); err != nil {
		sh.walFail("append", err)
	}
}

// walFail degrades the shard to non-durable after a log write failure:
// admissions keep flowing (availability over durability — the in-memory
// state is still correct), the log is sealed, and the failure is
// counted (resd_wal_failures_total) and reported once. Runs only on the
// loop goroutine, like every other wlog access.
func (sh *shard) walFail(op string, err error) {
	sh.walFailed.Add(1)
	sh.report(flight.Error, "wal",
		fmt.Sprintf("wal %s failed, shard now non-durable: %v", op, err),
		flight.KV{K: "op", V: op})
	sh.snapWG.Wait()
	sh.wlog.Close()
	sh.wlog = nil
}

// maybeSnapshot rotates the log and kicks off a background snapshot
// write once enough records have accumulated since the last one. The
// state capture and the rotation run in-loop (cheap copies); only the
// file write leaves the loop, and at most one write is in flight.
func (sh *shard) maybeSnapshot() {
	if sh.wlog == nil || sh.snapEvery <= 0 ||
		sh.wlog.SinceSnapshot() < sh.snapEvery || sh.snapBusy.Load() {
		return
	}
	gen, err := sh.wlog.Rotate()
	if err != nil {
		sh.walFail("rotate", err)
		return
	}
	snap := buildSnapshot(sh.id, gen, sh.nextSeq,
		sh.admitted.Load(), sh.cancelled.Load(), sh.migratedIn.Load(), sh.migratedOut.Load(),
		sh.tstats, sh.live, sh.openOuts)
	wl := sh.wlog
	sh.snapBusy.Store(true)
	sh.snapWG.Add(1)
	go func() {
		defer sh.snapWG.Done()
		defer sh.snapBusy.Store(false)
		if err := wl.WriteSnapshot(snap); err != nil {
			// Not fatal and not degrading: the rotated logs still hold
			// every record, so recovery just replays more. The next
			// trigger retries.
			sh.walFailed.Add(1)
			sh.report(flight.Error, "wal", fmt.Sprintf("wal snapshot failed: %v", err),
				flight.KV{K: "gen", V: fmt.Sprint(snap.Gen)})
		}
	}()
}
