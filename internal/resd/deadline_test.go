package resd

import (
	"errors"
	"testing"
)

func TestReserveByAdmitsWithinDeadline(t *testing.T) {
	s := mustNew(t, Config{M: 8})
	// Block all 8 processors on [0,100); the earliest start for anything
	// else is 100.
	if _, err := s.Reserve(0, 8, 100); err != nil {
		t.Fatal(err)
	}
	r, err := s.ReserveBy(0, 4, 10, 100)
	if err != nil || r.Start != 100 {
		t.Fatalf("deadline=100: start=%v err=%v, want start=100 admitted", r.Start, err)
	}
}

func TestReserveByRejectsPastDeadline(t *testing.T) {
	s := mustNew(t, Config{M: 8})
	if _, err := s.Reserve(0, 8, 100); err != nil {
		t.Fatal(err)
	}
	if _, err := s.ReserveBy(0, 4, 10, 99); !errors.Is(err, ErrDeadline) {
		t.Fatalf("deadline=99 with earliest start 100: err = %v, want ErrDeadline", err)
	}
	// A deadline rejection must not consume capacity: the same request
	// with a loose deadline still starts at 100.
	r, err := s.ReserveBy(0, 4, 10, NoDeadline)
	if err != nil || r.Start != 100 {
		t.Fatalf("after rejection: start=%v err=%v, want start=100", r.Start, err)
	}
	st := s.Stats()[0]
	if st.RejectedDeadline != 1 {
		t.Errorf("RejectedDeadline = %d, want 1", st.RejectedDeadline)
	}
	if st.Rejected != 0 {
		t.Errorf("Rejected = %d, want 0 (deadline rejections are counted separately)", st.Rejected)
	}
}

func TestReserveByDeadlineBeforeReady(t *testing.T) {
	s := mustNew(t, Config{M: 8})
	if _, err := s.ReserveBy(50, 1, 10, 49); !errors.Is(err, ErrDeadline) {
		t.Fatalf("deadline before ready: want ErrDeadline, got %v", err)
	}
	// Even the statically doomed case must be counted in the shard stats:
	// ShardStats.RejectedDeadline tracks every deadline rejection callers
	// observe.
	if st := s.Stats()[0]; st.RejectedDeadline != 1 {
		t.Errorf("RejectedDeadline = %d, want 1", st.RejectedDeadline)
	}
	if _, err := s.ReserveBy(50, 1, 10, -1); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("negative deadline: want ErrBadRequest, got %v", err)
	}
}

func TestReserveByTriesOtherShards(t *testing.T) {
	// first-fit routing with shard 0 fully held on [0,1000): a tight
	// deadline fails on shard 0 but shard 1 is idle, so the request must
	// not stop at the first deadline rejection.
	s := mustNew(t, Config{Shards: 2, M: 8, Placement: "first-fit"})
	if _, err := s.Reserve(0, 8, 1000); err != nil {
		t.Fatal(err)
	}
	r, err := s.ReserveBy(0, 8, 10, 0)
	if err != nil {
		t.Fatalf("ReserveBy across shards: %v", err)
	}
	if r.Shard != 1 || r.Start != 0 {
		t.Fatalf("got shard %d start %v, want shard 1 start 0", r.Shard, r.Start)
	}
}

func TestReserveByPrefersDeadlineErrorOverNeverFits(t *testing.T) {
	// α=0.5 on m=8 admits at most q=4. Hold shard capacity so a q=4
	// request with deadline 0 is feasible-but-late: the error must be
	// ErrDeadline (the request could run, just not in time).
	s := mustNew(t, Config{M: 8, Alpha: 0.5})
	if _, err := s.Reserve(0, 4, 50); err != nil {
		t.Fatal(err)
	}
	if _, err := s.ReserveBy(0, 4, 10, 10); !errors.Is(err, ErrDeadline) {
		t.Fatalf("want ErrDeadline, got %v", err)
	}
}

func TestReserveDelegatesToNoDeadline(t *testing.T) {
	// Plain Reserve must behave as deadline-free: an arbitrarily late
	// earliest start is still admitted.
	s := mustNew(t, Config{M: 4})
	if _, err := s.Reserve(0, 4, 1_000_000); err != nil {
		t.Fatal(err)
	}
	r, err := s.Reserve(0, 4, 10)
	if err != nil || r.Start != 1_000_000 {
		t.Fatalf("start=%v err=%v, want start=1000000", r.Start, err)
	}
}
