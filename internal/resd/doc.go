// Package resd is the reservation-admission service: the paper's offline
// model turned into a concurrent subsystem that admits a live stream of
// advance-reservation requests against a sharded cluster.
//
// # Shard model
//
// A Service owns S shards, each modelling one cluster partition of M
// processors. A shard's entire mutable state — its profile.CapacityIndex
// (array or tree backend), the table of admitted reservations, load
// counters — is confined to a single event-loop goroutine, so shard-local
// admission takes no locks: correctness comes from confinement, not
// mutual exclusion. Requests (Reserve, Cancel, Query, Snapshot) arrive on
// the shard's channel and are group-committed in batches: each event-loop
// turn drains up to Config.Batch pending requests, applies them all
// against the index, publishes the shard's load summary once, and only
// then releases the replies. Batching amortises the cross-goroutine
// synchronisation over many admissions, which is what lets throughput
// track the index cost rather than the channel cost under heavy traffic.
//
// # Placement
//
// Reserve requests are routed across shards by a pluggable placement
// policy, selected by Config.Placement (the names Placements lists):
//
//   - "first-fit" — scan shards in index order and admit on the first that
//     accepts. Simple, deterministic, and deliberately naive: it piles
//     load onto low-index shards.
//   - "least-loaded" — route to the shard with the smallest committed
//     area (the exact global minimum at the instant of routing).
//   - "p2c" — power-of-two-choices on free area: sample two distinct
//     shards and route to the one with more uncommitted area. The classic
//     load-balancing result applies: two random choices remove almost all
//     of the imbalance of one while touching O(1) shards per request.
//
// Policies read only the atomically published per-shard load summaries, so
// routing itself is lock-free; the routed shard re-validates inside its
// event loop, which makes stale routing information harmless (a shard
// never over-admits, a request at worst lands on a busier shard).
//
// # Admission rule
//
// Each shard enforces the paper's α-restriction (§4.2): a reservation is
// admitted only if, over its whole window, the capacity remaining after
// the admission stays at least ⌊α·M⌋ — the same floor
// workload.ReservationStream uses when drawing α-restricted streams. The
// earliest admissible start is found with a single FindSlot for
// q + ⌊α·M⌋ processors, so the α head-room falls out of the ordinary
// earliest-fit machinery.
//
// # Deadline rejection
//
// ReserveBy extends the α rule with an SLA answer: the caller names the
// latest start it can tolerate, and a shard whose earliest feasible start
// on the α-prefix lands after that deadline rejects with ErrDeadline
// instead of pushing the reservation arbitrarily far back. The two
// rejection modes are complementary faces of the paper's parameter:
// ErrNeverFits is the static face of α (the width q plus the ⌊α·M⌋
// head-room can never fit inside M, at any time), while ErrDeadline is its
// dynamic face — α shrinks the prefix reservations may occupy, which
// pushes earliest starts later, and the deadline turns that lateness into
// an explicit reject the caller can act on. Smaller α (a wider admissible
// prefix) trades job-stream guarantees for fewer deadline rejections;
// larger α does the reverse. The service tries every shard in placement
// order before rejecting, prefers reporting ErrDeadline over ErrNeverFits
// (it tells the caller the request was feasible, just not soon enough),
// and counts deadline rejections separately in ShardStats.RejectedDeadline.
// A rejected request consumes no capacity.
//
// The package is exercised three ways: a determinism test replays a
// request stream serially through one shard and checks the placements are
// bit-for-bit the schedules sched.FCFS computes offline; a stress test
// hammers a service from many goroutines under -race and asserts
// conservation of committed capacity; and FuzzResdAdmission drives random
// op streams against a sequential oracle. cmd/resload replays synthetic
// or SWF-derived streams at a target rate and reports throughput and
// latency percentiles; BenchmarkResdThroughput (repository root) records
// the shard-scaling curve in BENCH_resd.json.
package resd
