// Package resd is the reservation-admission service: the paper's offline
// model turned into a concurrent subsystem that admits a live stream of
// advance-reservation requests against a sharded cluster.
//
// # Shard model
//
// A Service owns S shards, each modelling one cluster partition of M
// processors. A shard's entire mutable state — its profile.CapacityIndex
// (array or tree backend), the table of admitted reservations, load
// counters — is confined to a single event-loop goroutine, so shard-local
// admission takes no locks: correctness comes from confinement, not
// mutual exclusion. Requests (Reserve, Cancel, Query, Snapshot) arrive on
// the shard's channel and are group-committed in batches: each event-loop
// turn drains up to Config.Batch pending requests, applies them all
// against the index, publishes the shard's load summary once, and only
// then releases the replies. Batching amortises the cross-goroutine
// synchronisation over many admissions, which is what lets throughput
// track the index cost rather than the channel cost under heavy traffic.
//
// # Placement
//
// Reserve requests are routed across shards by a pluggable placement
// policy, selected by Config.Placement (the names Placements lists):
//
//   - "first-fit" — scan shards in index order and admit on the first that
//     accepts. Simple, deterministic, and deliberately naive: it piles
//     load onto low-index shards.
//   - "least-loaded" — route to the shard with the smallest committed
//     area (the exact global minimum at the instant of routing).
//   - "p2c" — power-of-two-choices on free area: sample two distinct
//     shards and route to the one with more uncommitted area. The classic
//     load-balancing result applies: two random choices remove almost all
//     of the imbalance of one while touching O(1) shards per request.
//   - "pressure" — quota-aware placement: route by the requesting
//     tenant's own committed area per shard (its usage-to-budget pressure
//     there, the two orderings coinciding under the registry's equal
//     per-shard budget resolution), lowest first, total load breaking
//     ties. Each tenant's footprint is spread across partitions, so a
//     zipf-heavy tenant saturates no single shard and small tenants are
//     routed around the heavy hitters' hot spots.
//
// Policies read only the atomically published per-shard load summaries
// (including the per-tenant area mirrors "pressure" uses), so routing
// itself is lock-free; the routed shard re-validates inside its event
// loop, which makes stale routing information harmless (a shard never
// over-admits, a request at worst lands on a busier shard).
//
// # Admission rule
//
// Each shard enforces the paper's α-restriction (§4.2): a reservation is
// admitted only if, over its whole window, the capacity remaining after
// the admission stays at least ⌊α·M⌋ — the same floor
// workload.ReservationStream uses when drawing α-restricted streams. The
// earliest admissible start is found with a single FindSlot for
// q + ⌊α·M⌋ processors, so the α head-room falls out of the ordinary
// earliest-fit machinery.
//
// # The Request API
//
// Admit is the single admission entry point: one Request names the
// tenant the area is charged to, the ready time, the width, the
// duration, and the latest tolerable start (NoDeadline for "however
// late"). The same struct crosses the wire unchanged through
// reswire.Client.Admit, so in-process and remote callers share one
// admission vocabulary. The historical Reserve/ReserveBy/ReserveFor
// triplet survives as deprecated wrappers over Admit — each fills the
// Request fields its signature used to imply.
//
// # Deadline rejection
//
// A finite Request.Deadline extends the α rule with an SLA answer: the
// caller names the latest start it can tolerate, and a shard whose
// earliest feasible start on the α-prefix lands after that deadline
// rejects with ErrDeadline instead of pushing the reservation
// arbitrarily far back. The two
// rejection modes are complementary faces of the paper's parameter:
// ErrNeverFits is the static face of α (the width q plus the ⌊α·M⌋
// head-room can never fit inside M, at any time), while ErrDeadline is its
// dynamic face — α shrinks the prefix reservations may occupy, which
// pushes earliest starts later, and the deadline turns that lateness into
// an explicit reject the caller can act on. Smaller α (a wider admissible
// prefix) trades job-stream guarantees for fewer deadline rejections;
// larger α does the reverse. The service tries every shard in placement
// order before rejecting, prefers reporting ErrDeadline over ErrNeverFits
// (it tells the caller the request was feasible, just not soon enough),
// and counts deadline rejections separately in ShardStats.RejectedDeadline.
// A rejected request consumes no capacity.
//
// # Multi-tenant quotas
//
// Config.Quotas plugs a tenant.Registry in front of admission: every
// Admit (an empty Request.Tenant names the default tenant) is
// charged against its tenant's budgeted share of the reservable α-prefix
// area, hierarchically (tenant → group → global capacity). The check runs
// inside the shard loop after the α and deadline checks — a doomed
// request never burns budget — and the charge is a CAS against the
// registry's atomics, so the lock-free admission path stays lock-free. In
// hard mode an exhausted budget rejects with ErrQuota (wire:
// REJECTED_QUOTA), consuming no capacity, and the service stops its shard
// walk at once since budgets are global; in soft mode nothing is
// rejected, but each group-commit batch permutes its Reserve requests so
// the tenant with the lowest usage-to-budget ratio commits first,
// DRF-style weighted fair share at exactly the point where requests
// contend. Cancel credits the area back. Per-tenant books are kept twice,
// deliberately: the registry's lock-free accounts (global, what quota
// decisions read) and per-shard TenantStats inside each loop (consistent,
// what operators read); the stress tests assert the two agree. The quota
// layer may gate placement but never perturb it — a single tenant with a
// full budget replays to bit-identical sched.FCFS placements.
//
// # Live rebalancing and reservation migration
//
// Placement alone cannot undo history: a skewed arrival stream (or the
// deliberately naive first-fit policy) leaves some shards saturated while
// others idle, stranding reservable α-prefix area the admission rule says
// may be spent. The rebalancer (Config.RebalanceEvery, or Rebalance /
// RebalanceAll driven manually) is the first subsystem that mutates
// reservations after admission: it scores the committed-area spread
// across shards from the lock-free load summaries (rebal.Imbalance — a
// cheap atomic pre-check per tick when balanced), and past
// Config.RebalanceThreshold it plans migrations (internal/rebal, a pure
// deterministic planner) and executes each as a two-phase commit through
// the ordinary shard event loops: tentatively commit on the target
// (capacity held, the copy pending and invisible), forward the Cancel
// routing, release on the source, finalise on the target — or roll the
// tentative copy back when the reservation was cancelled mid-move.
// Capacity is conserved at every instant (the brief double-hold is the
// conservative overlap of any two-phase move), tenant quota is neither
// charged nor released (the original admission's charge rides along, so
// the registry ledger is untouched and nothing is double-counted), and
// per-shard tenant books transfer with the reservation. Reservations
// starting within Config.RebalanceFreeze ticks of the rebalancer's
// logical now are pinned — work about to start is never yanked between
// partitions. Migrated reservations keep their IDs: Cancel follows a
// forwarding overlay, waiting out any in-flight move, so handles never
// break. Rounds are serialized, cap their moves (RebalanceMaxMoves) so
// loops are never stalled by one huge transfer, plan with hysteresis
// (down to half the trigger threshold) so the balancer cannot oscillate
// around its own trigger, and back off exponentially when nothing is
// movable. BenchmarkRebalance (BENCH_rebal.json) records the payoff:
// under a first-fit-skewed stream, admission throughput recovers toward
// the balanced curve once the backlog migrates.
//
// # Start-time slack: the SLO metric
//
// Every admission records its start-time slack (admitted start − ready
// time): how far the α rule pushed the work back. Shards keep O(1)
// exponential histograms — an atomic shard-wide one readable off-loop
// and loop-owned per-tenant ones — and surface the 99th percentile as
// ShardStats.SlackP99 and TenantStats.SlackP99 (and over the wire at
// protocol v3), so operators see per-tenant SLO degradation directly
// rather than inferring it from rejection counts. The histograms are
// cumulative over the process lifetime; an attached SLO engine
// (ObsConfig.SLO) additionally answers windowed percentiles over its
// budget window — resd_slack_ticks_window — so a burst an hour ago
// stops dominating today's p99.
//
// # Durability and recovery
//
// Config.WAL gives every shard a write-ahead log (internal/wal): each
// group-commit batch appends its decisions to the shard's log buffer
// while it applies them, and the whole batch is flushed — and, under
// wal.SyncBatch, fsynced — once before any of its replies are released.
// Durability rides the turn the event loop already takes; it never adds
// a per-admission syscall. The record types mirror the shard
// transitions one to one:
//
//	admit (TAdmit)                    admission committed: the canonical Request plus assigned ID and start
//	cancel (TCancel)                  release of an admitted reservation
//	migrate-in (TMigrateIn)           two-phase move, target side: tentative copy durable, invisible until commit
//	migrate-out (TMigrateOut)         source released the reservation toward Peer; opens the source's "open out"
//	migrate-commit (TMigrateCommit)   target finalised the pending copy
//	migrate-abort (TMigrateAbort)     target rolled the pending copy back
//	migrate-out-ack (TMigrateOutAck)  source observed the outcome; pure recovery bookkeeping
//
// Every Options.SnapEvery records the shard snapshots its full state
// (reservation book, tenant accounts, open migration legs), rotates to
// a fresh log generation and deletes the generations the snapshot made
// redundant, bounding both disk and replay time.
//
// New replays before serving: newest decodable snapshot, then the
// surviving log suffix, re-committing each record through the same
// index operations live admission uses. The invariants the recovery
// tests pin:
//
//   - Exactness: the recovered service is bit-identical to the
//     pre-crash one — same IDs, same placements, same tenant books — on
//     either backend, with or without a snapshot anchor, and new
//     admissions never re-mint a recovered ID.
//   - Torn tails are silent: a crash mid-write (a cut frame or a
//     zero-filled tail) truncates the partial final record off the
//     disk, not just out of the replay (WALInfo.Torn counts it) — so
//     the verdict is stable across restarts and the tail can never be
//     reread as mid-log corruption after newer generations hold
//     acknowledged records. Any damage earlier than the tail — a CRC
//     mismatch, a torn frame in a pre-rotation generation — keeps the
//     longest intact prefix, repairs the directory to match (suffix
//     truncated, later generations quarantined), and surfaces in
//     WALInfo.Corrupt/DroppedBytes instead of failing the boot; a log
//     that contradicts itself (a cancel for an ID never admitted) does
//     fail New, because it means the writer, not the disk, was wrong.
//   - Mid-flight moves commit or abort, never duplicate. The executor
//     orders writes so the log decides: the tentative copy is durable
//     on the target before the source is asked to release, and the
//     source's migrate-out is durable before the commit is sent back.
//     At replay, a pending copy on T from S commits iff S's log shows
//     an open out naming T; every other combination aborts the copy
//     (the reservation stays where the source log says it is).
//     Resolutions are appended to the boot generation and synced, so a
//     second crash cannot resurrect a resolved move.
//   - Quota is recharged, not re-checked: recovery re-charges each
//     tenant's registry account for the reservations that survived
//     replay (they were admitted once; rejecting them now would lose
//     committed state).
//
// Replay rebuilds durable state only. Process-lifetime series —
// rejection counters, slack and loop-turn histograms, sampled traces —
// restart at zero, exactly as obs counters do across any restart.
// Service.WALInfo reports what replay found (records, snapshots, torn/
// corrupt damage, move resolutions, duration); resdsrv prints it as the
// boot banner and holds /healthz at 503 until replay finishes.
// BenchmarkWALOverhead (BENCH_wal.json) prices the buffered machinery
// against the WAL-off baseline, with the batch-fsync figure recorded as
// the physical durable floor.
//
// # Observability
//
// Config.Obs attaches the service to the internal/obs registry. Every
// closure the service registers reads published atomics or channel
// lengths, never an event loop, so scrapes cost the hot path nothing;
// per-request admission tracing is sampled (ObsConfig.TraceSample) into
// a bounded ring served by Service.Traces and the wire protocol's Trace
// op, with a threshold-configurable slow-request hook. The families the
// service exposes:
//
//	resd_shard_queue_depth{shard}          gauge    requests waiting in the loop's queue
//	resd_shard_active{shard}               gauge    admitted reservations
//	resd_shard_committed_area{shard}       gauge    processor-tick area held
//	resd_shard_batches_total{shard}        counter  event-loop turns
//	resd_shard_ops_total{shard}            counter  requests served
//	resd_shard_ops_per_batch{shard}        gauge    realised group-commit factor
//	resd_admitted_total{shard}             counter  admissions
//	resd_cancelled_total{shard}            counter  cancellations
//	resd_rejected_total{shard,reason}      counter  reason ∈ capacity|deadline|quota
//	resd_migrated_total{shard,dir}         counter  dir ∈ in|out
//	resd_slack_ticks{shard,quantile}       summary  start-time slack p50/p90/p99
//	resd_loop_turn_ns{shard,quantile}      summary  batch apply+publish latency
//	resd_traces_sampled_total              counter  admissions sampled into the ring
//	resd_slow_requests_total               counter  sampled traces over the slow threshold
//	resd_logical_clock_ticks               gauge    Config.RebalanceNow's current value
//	resd_rebalance_rounds_total            counter  rebalancing rounds run
//	resd_rebalance_moves_total{result}     counter  result ∈ applied|aborted|skipped
//	resd_rebalance_imbalance{phase}        gauge    score around the last round (before|after)
//	resd_rebalance_backoff_skips           gauge    background balancer backoff state
//	tenant_quota_capacity                  gauge    registry capacity
//	tenant_quota_budget{tenant}            gauge    budgeted share
//	tenant_quota_used{tenant}              gauge    area currently charged
//	tenant_quota_inflight{tenant}          gauge    admissions currently held
//	tenant_quota_admitted_total{tenant}    counter  admissions
//	tenant_quota_rejected_total{tenant}    counter  hard-mode quota rejections
//
// A durable service (Config.WAL) adds the write-ahead-log families: the
// per-shard log counters, the fsync-latency summary, and the replay
// report — the gauges are WALInfo frozen at New, so a scrape or an
// alert sees a restart that found damage without anyone reading the
// boot banner:
//
//	resd_wal_bytes_total{shard}            counter  log bytes appended
//	resd_wal_records_total{shard}          counter  log records appended
//	resd_wal_fsyncs_total{shard}           counter  group-commit fsyncs
//	resd_wal_snapshots_total{shard}        counter  snapshot writes (log truncations)
//	resd_wal_failures_total{shard}         counter  write failures (shard degraded to non-durable)
//	resd_wal_generation{shard}             gauge    log generation being appended to
//	resd_wal_snapshot_age_seconds{shard}   gauge    age of the newest durable snapshot
//	resd_wal_fsync_ns{shard,quantile}      summary  group-commit fsync latency p50/p90/p99
//	resd_wal_replay_seconds                gauge    how long boot replay took
//	resd_wal_replayed_records              gauge    records replay applied
//	resd_wal_replayed_snapshots            gauge    snapshots replay loaded
//	resd_wal_torn_tails                    gauge    torn mid-write tails discarded
//	resd_wal_corrupt_records               gauge    checksum-failed records replay stopped at
//	resd_wal_dropped_bytes                 gauge    bytes replay could not apply
//	resd_wal_replayed_moves{outcome}       gauge    outcome ∈ committed|aborted
//
// An ObsConfig carrying an SLO engine (ObsConfig.SLO; see internal/slo
// for objective and burn-rate-rule semantics) adds the alerting
// families. The service counts each admission decision once — at the
// Request level, on the caller's goroutine, because a single request's
// placement walk can collect deadline rejections on several shards
// before one admits it, so summing per-shard counters would over-count
// — and binds those books plus the merged slack and loop-turn
// histograms to the engine; the engine snapshots them on its own
// ticker, never touching an event loop. Tenant-scoped objectives carry
// a tenant label:
//
//	resd_slo_attainment{objective}               gauge    good fraction over the budget window
//	resd_slo_error_budget_remaining{objective}   gauge    1 − errors/budget; negative = overspent
//	resd_slo_burn_rate{objective,window}         gauge    budget-burn multiple per rule window
//	resd_slo_alert_state{objective}              gauge    0 ok, 1 warn, 2 page
//	resd_slo_alert_transitions_total{objective}  counter  alert state changes
//	resd_slack_ticks_window{quantile}            summary  service-wide slack over the budget window
//	resd_loop_turn_ns_window{quantile}           summary  loop-turn latency over the budget window
//
// The reswire server and client add their own families (reswire_*; see
// internal/reswire), and resdsrv serves the whole set plus net/http/pprof
// on its -obs listener. The same published atomics the scrape families
// read also feed the wire protocol's Watch op (protocol v5): a
// subscriber gets server-pushed per-shard/tenant/WAL/trace/SLO
// telemetry frames at its chosen interval without polling Stats — see
// internal/reswire's package doc for the subscription semantics.
//
// # Heartbeats and node health
//
// ObsConfig.Flight arms the black-box flight recorder (internal/flight)
// around the service. Each shard loop stamps two atomics per
// group-commit turn — busy-since when a turn begins, last-beat when its
// replies are released — and New hands the recorder a probe function
// that snapshots those stamps, the loop queue depth, and the WAL fsync
// p99 for every shard, all from published atomics; the watchdog's
// monitor goroutine polls the probes on its own schedule and never
// touches an event loop. A turn wedged past the stall budget (or a
// backed-up queue no turn is draining) drives the node health
// healthy → degraded → stalled, each transition journaled, surfaced on
// /healthz as a warning and as the resd_health_state gauge, and — on
// worsening — captured as an on-disk diagnostic bundle (goroutine dump,
// heap profile, metrics snapshot, journal tail, WAL report, effective
// config). A turn slower than 100ms journals a slow-turn warning with
// its duration and batch size even when it never trips the watchdog.
//
// The same journal replaces the service's ad-hoc stderr prints: WAL
// write failures and replay verdicts, migration commits and aborts,
// rebalancer rounds and backoff, quota overflow-tenant activation all
// become structured events (flight_events_total{severity}) an operator
// reads from /debug/flight — see internal/flight's package doc for the
// journal format and the watchdog's exact rules. An ObsConfig carrying
// a SlowLog also gains resd_slow_log_dropped_total: the callback runs
// on a bounded dispatch queue (see the SlowLog field's contract), and
// the counter prices what a wedged or slow consumer missed.
//
// The package is exercised three ways: a determinism test replays a
// request stream serially through one shard and checks the placements are
// bit-for-bit the schedules sched.FCFS computes offline (with and without
// a quota registry); a stress test hammers a service from many goroutines
// under -race and asserts conservation of committed capacity, with a
// second stress pinning the quota invariant admitted-area ≤ budget at all
// times; and FuzzResdAdmission drives random op streams against a
// sequential oracle. cmd/resload replays synthetic or SWF-derived streams
// at a target rate — optionally as a zipf-skewed multi-tenant mix — and
// reports throughput and latency percentiles per tenant;
// BenchmarkResdThroughput and BenchmarkTenantThroughput (repository root)
// record the shard-scaling and quota-overhead curves in BENCH_resd.json
// and BENCH_tenant.json.
package resd
