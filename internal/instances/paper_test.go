package instances

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/rng"
	"repro/internal/sched"
	"repro/internal/threepart"
	"repro/internal/verify"
)

func TestFromThreePartitionShape(t *testing.T) {
	tp := &threepart.Instance{Items: []int64{7, 7, 6, 8, 5, 7}, B: 20}
	inst, err := FromThreePartition(tp, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.Validate(); err != nil {
		t.Fatal(err)
	}
	if inst.M != 1 || len(inst.Jobs) != 6 || len(inst.Res) != 2 {
		t.Fatalf("shape: m=%d jobs=%d res=%d", inst.M, len(inst.Jobs), len(inst.Res))
	}
	// First reservation at B=20, unit length; last at 2(B+1)-1=41 with
	// length rho*k*(B+1)+1 = 2*2*21+1 = 85, ending at 126 = (rho+1)k(B+1).
	if inst.Res[0].Start != 20 || inst.Res[0].Len != 1 {
		t.Fatalf("res0 = %+v", inst.Res[0])
	}
	if inst.Res[1].Start != 41 || inst.Res[1].Len != 85 {
		t.Fatalf("res1 = %+v", inst.Res[1])
	}
	if got, want := inst.Res[1].End(), Theorem1Wall(tp, 2); got != want {
		t.Fatalf("wall = %v, want %v", got, want)
	}
	if got := Theorem1Optimum(tp); got != 41 {
		t.Fatalf("optimum = %v, want 41", got)
	}
}

func TestFromThreePartitionRejects(t *testing.T) {
	tp := &threepart.Instance{Items: []int64{1, 2}, B: 3}
	if _, err := FromThreePartition(tp, 1); err == nil {
		t.Fatal("invalid 3-PARTITION accepted")
	}
	ok := &threepart.Instance{Items: []int64{7, 7, 6}, B: 20}
	if _, err := FromThreePartition(ok, 0); err == nil {
		t.Fatal("rho=0 accepted")
	}
}

func TestScheduleFromPartitionIsOptimal(t *testing.T) {
	r := rng.New(11)
	for trial := 0; trial < 10; trial++ {
		tp := threepart.GenerateYes(r, r.IntRange(2, 4), int64(r.IntRange(20, 60)))
		groups, ok := tp.Solve()
		if !ok {
			t.Fatal("YES instance unsolvable")
		}
		inst, err := FromThreePartition(tp, 3)
		if err != nil {
			t.Fatal(err)
		}
		s, err := ScheduleFromPartition(inst, tp, groups)
		if err != nil {
			t.Fatal(err)
		}
		if err := verify.Verify(s); err != nil {
			t.Fatalf("witness schedule infeasible: %v", err)
		}
		if got, want := s.Makespan(), Theorem1Optimum(tp); got != want {
			t.Fatalf("witness makespan %v, want %v", got, want)
		}
	}
}

func TestTheorem1ExactOptimumMatches(t *testing.T) {
	// Cross-check the claimed optimum with the m=1 DP for a small k.
	r := rng.New(21)
	tp := threepart.GenerateYes(r, 2, 24)
	inst, err := FromThreePartition(tp, 2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := exact.SolveM1(inst)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cmax != Theorem1Optimum(tp) {
		t.Fatalf("exact optimum %v, want %v", res.Cmax, Theorem1Optimum(tp))
	}
}

func TestTheorem1BadOrderJumpsTheWall(t *testing.T) {
	// A deliberately bad list order (largest first) on a YES instance with
	// heterogeneous items will typically fail to pack some window and pay
	// the wall. We only assert the dichotomy the proof uses: every LSRC
	// run either achieves the optimum or lands past the wall.
	r := rng.New(31)
	for trial := 0; trial < 20; trial++ {
		tp := threepart.GenerateYes(r, 3, 40)
		rho := 2
		inst, err := FromThreePartition(tp, rho)
		if err != nil {
			t.Fatal(err)
		}
		for _, o := range []sched.Order{sched.FIFO, sched.LPT, sched.SPT, sched.RandomOrder(uint64(trial))} {
			s, err := sched.NewLSRC(o).Schedule(inst)
			if err != nil {
				t.Fatal(err)
			}
			if err := verify.Verify(s); err != nil {
				t.Fatal(err)
			}
			cmax := s.Makespan()
			opt := Theorem1Optimum(tp)
			wall := Theorem1Wall(tp, rho)
			if cmax != opt && cmax < wall {
				t.Fatalf("trial %d order %s: makespan %v strictly between optimum %v and wall %v",
					trial, o.Name, cmax, opt, wall)
			}
		}
	}
}

func TestProp2InstanceShape(t *testing.T) {
	inst, err := Prop2Instance(6)
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.Validate(); err != nil {
		t.Fatal(err)
	}
	// Figure 3: k=6 -> m=180.
	if inst.M != 180 {
		t.Fatalf("m = %d, want 180", inst.M)
	}
	if len(inst.Jobs) != 11 { // 6 small + 5 big
		t.Fatalf("jobs = %d, want 11", len(inst.Jobs))
	}
	if inst.Res[0].Procs != 120 { // (1-α)m = (2/3)·180
		t.Fatalf("reservation procs = %d, want 120", inst.Res[0].Procs)
	}
	alpha, ok := inst.Alpha()
	if !ok || math.Abs(alpha-Prop2Alpha(6)) > 1e-9 {
		t.Fatalf("alpha = %v %v, want %v", alpha, ok, Prop2Alpha(6))
	}
}

func TestProp2Figure3Numbers(t *testing.T) {
	// The paper's Figure 3 caption: C*max = 6 and Cmax = 5·6+1 = 31.
	k := 6
	inst, err := Prop2Instance(k)
	if err != nil {
		t.Fatal(err)
	}
	s, err := sched.NewLSRC(sched.FIFO).Schedule(inst)
	if err != nil {
		t.Fatal(err)
	}
	if err := verify.Verify(s); err != nil {
		t.Fatal(err)
	}
	if got, want := s.Makespan(), Prop2LSRCMakespan(k); got != want || want != 31 {
		t.Fatalf("LSRC makespan = %v, want %v (=31)", got, want)
	}
	if Prop2Optimum(k) != 6 {
		t.Fatalf("optimum = %v, want 6", Prop2Optimum(k))
	}
}

func TestProp2FamilyLSRCMakespan(t *testing.T) {
	for k := 2; k <= 10; k++ {
		inst, err := Prop2Instance(k)
		if err != nil {
			t.Fatal(err)
		}
		s, err := sched.NewLSRC(sched.FIFO).Schedule(inst)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if got, want := s.Makespan(), Prop2LSRCMakespan(k); got != want {
			t.Fatalf("k=%d: LSRC makespan %v, want %v", k, got, want)
		}
	}
}

func TestProp2OptimumWitness(t *testing.T) {
	// Construct the optimal schedule by hand for each k: big tasks and the
	// small-task chain all start within [0, k).
	for k := 2; k <= 8; k++ {
		inst, err := Prop2Instance(k)
		if err != nil {
			t.Fatal(err)
		}
		s := core.NewSchedule(inst)
		for i := 0; i < k; i++ { // small tasks chain: start at i (length 1)
			s.SetStart(i, core.Time(i))
		}
		for i := 0; i < k-1; i++ { // big tasks all at 0 (length k)
			s.SetStart(k+i, 0)
		}
		if err := verify.Verify(s); err != nil {
			t.Fatalf("k=%d: witness infeasible: %v", k, err)
		}
		if got, want := s.Makespan(), Prop2Optimum(k); got != want {
			t.Fatalf("k=%d: witness makespan %v, want %v", k, got, want)
		}
	}
}

func TestProp2ExactOptimumSmallK(t *testing.T) {
	for k := 2; k <= 3; k++ {
		inst, err := Prop2Instance(k)
		if err != nil {
			t.Fatal(err)
		}
		res, err := exact.Solve(inst)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Optimal || res.Cmax != Prop2Optimum(k) {
			t.Fatalf("k=%d: exact %v (optimal=%v), want %v", k, res.Cmax, res.Optimal, Prop2Optimum(k))
		}
	}
}

func TestProp2Rejects(t *testing.T) {
	if _, err := Prop2Instance(1); err == nil {
		t.Fatal("k=1 accepted")
	}
}

func TestGrahamAdversarial(t *testing.T) {
	for m := 1; m <= 8; m++ {
		inst, err := GrahamAdversarial(m)
		if err != nil {
			t.Fatal(err)
		}
		if err := inst.Validate(); err != nil {
			t.Fatal(err)
		}
		s, err := sched.NewLSRC(sched.FIFO).Schedule(inst)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := s.Makespan(), GrahamLSRCMakespan(m); got != want {
			t.Fatalf("m=%d: LSRC %v, want %v", m, got, want)
		}
		// Witness for the optimum: long job on processor m-1 from 0, units
		// packed m-1 per tick... verify via exact for small m.
		if m <= 3 {
			res, err := exact.Solve(inst)
			if err != nil {
				t.Fatal(err)
			}
			if res.Cmax != GrahamOptimum(m) {
				t.Fatalf("m=%d: exact %v, want %v", m, res.Cmax, GrahamOptimum(m))
			}
		}
	}
}

func TestFCFSPathological(t *testing.T) {
	for _, m := range []int{1, 2, 4, 6} {
		d := core.Time(50)
		inst, err := FCFSPathological(m, d)
		if err != nil {
			t.Fatal(err)
		}
		if err := inst.Validate(); err != nil {
			t.Fatal(err)
		}
		s, err := (sched.FCFS{}).Schedule(inst)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := s.Makespan(), FCFSPathologicalMakespan(m, d); got != want {
			t.Fatalf("m=%d: FCFS %v, want %v", m, got, want)
		}
		// LSRC achieves the optimum on this family.
		l, err := sched.NewLSRC(sched.FIFO).Schedule(inst)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := l.Makespan(), FCFSPathologicalOptimum(m, d); got != want {
			t.Fatalf("m=%d: LSRC %v, want optimum %v", m, got, want)
		}
	}
}

func TestFCFSPathologicalRatioApproachesM(t *testing.T) {
	m := 5
	prev := 0.0
	for _, d := range []core.Time{10, 100, 1000, 10000} {
		ratio := float64(FCFSPathologicalMakespan(m, d)) / float64(FCFSPathologicalOptimum(m, d))
		if ratio <= prev {
			t.Fatalf("ratio not increasing with D: %v after %v", ratio, prev)
		}
		prev = ratio
	}
	if prev < 4.99 {
		t.Fatalf("ratio at D=10000 is %v; should approach m=5", prev)
	}
}

func TestFCFSPathologicalRejects(t *testing.T) {
	if _, err := FCFSPathological(0, 5); err == nil {
		t.Fatal("m=0 accepted")
	}
	if _, err := FCFSPathological(3, 0); err == nil {
		t.Fatal("D=0 accepted")
	}
}
