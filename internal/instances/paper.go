// Package instances builds the problem instances used throughout the
// paper's analysis — the Theorem 1 reduction from 3-PARTITION, the
// Proposition 2 adversarial family, the Figure 2 reservation-to-task
// transformation, FCFS's pathological family — together with random
// generators for the empirical sweeps.
//
// Every construction with rational times in the paper is returned pre-scaled
// to integer ticks; the scaling factor is documented per constructor
// (ratios are scale-invariant).
package instances

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/threepart"
)

// FromThreePartition builds the Theorem 1 reduction instance (Figure 1 of
// the paper) from a 3-PARTITION instance and a hypothetical approximation
// ratio rho:
//
//	m = 1;
//	one unit-width job of length x_i per item;
//	k reservations: reservation i (1-based) starts at i(B+1)-1; the first
//	k-1 have length 1, the last has length rho·k(B+1)+1, ending at
//	(rho+1)·k(B+1).
//
// If the 3-PARTITION instance is a YES instance, the optimum is exactly
// k(B+1)-1 (fill each window with one group); any schedule that misses a
// window must jump past the long final reservation, giving makespan at
// least (rho+1)·k(B+1) and hence ratio > rho. This is how the paper shows
// no finite performance ratio is achievable.
func FromThreePartition(tp *threepart.Instance, rho int) (*core.Instance, error) {
	if err := tp.Validate(); err != nil {
		return nil, err
	}
	if rho < 1 {
		return nil, fmt.Errorf("instances: rho must be >= 1, got %d", rho)
	}
	k := tp.K()
	b := core.Time(tp.B)
	inst := &core.Instance{
		Name: fmt.Sprintf("theorem1-k%d-B%d-rho%d", k, tp.B, rho),
		M:    1,
	}
	for i, x := range tp.Items {
		inst.Jobs = append(inst.Jobs, core.Job{ID: i, Procs: 1, Len: core.Time(x)})
	}
	for i := 1; i <= k; i++ {
		r := core.Reservation{
			ID:    i - 1,
			Procs: 1,
			Start: core.Time(i)*(b+1) - 1,
			Len:   1,
		}
		if i == k {
			r.Len = core.Time(rho)*core.Time(k)*(b+1) + 1
		}
		inst.Res = append(inst.Res, r)
	}
	return inst, nil
}

// Theorem1Optimum returns the optimal makespan of the Theorem 1 reduction
// of a YES instance: k(B+1) - 1.
func Theorem1Optimum(tp *threepart.Instance) core.Time {
	return core.Time(tp.K())*core.Time(tp.B+1) - 1
}

// Theorem1Wall returns the completion time of the reduction's final
// reservation, (rho+1)·k(B+1): any schedule that fails to pack the windows
// finishes at or beyond this wall.
func Theorem1Wall(tp *threepart.Instance, rho int) core.Time {
	return core.Time(rho+1) * core.Time(tp.K()) * core.Time(tp.B+1)
}

// ScheduleFromPartition builds the optimal schedule of the reduction
// instance corresponding to a 3-PARTITION solution: group l's three jobs
// run back-to-back inside window l.
func ScheduleFromPartition(inst *core.Instance, tp *threepart.Instance, groups [][3]int) (*core.Schedule, error) {
	if err := tp.VerifyPartition(groups); err != nil {
		return nil, err
	}
	s := core.NewSchedule(inst)
	s.Algorithm = "theorem1-witness"
	for l, g := range groups {
		t := core.Time(l) * core.Time(tp.B+1) // window l starts at l(B+1)
		for _, itemIdx := range g {
			s.SetStart(itemIdx, t)
			t += core.Time(tp.Items[itemIdx])
		}
	}
	return s, nil
}

// Prop2Instance builds the Proposition 2 adversarial family for α = 2/k
// (k >= 2), scaled by k so all times are integral:
//
//	m = k²(k-1)
//	k small tasks:  q = (k-1)², p = 1  (unscaled 1/k)
//	k-1 big tasks:  q = k(k-1)+1, p = k (unscaled 1)
//	one reservation (absent for k=2, where it would hold 0 processors):
//	  q = k(k-1)(k-2) = (1-α)m, start = k, length = 2k² (unscaled 2k)
//
// The optimum is k (unscaled 1): big tasks and one small task run from 0,
// the small tasks chaining on the same processors. LSRC with the FIFO list
// starts all small tasks first and then serialises the big tasks through
// the reservation window, reaching 1 + k(k-1) (unscaled 1/k + k - 1), i.e.
// ratio 2/α - 1 + α/2. Figure 3 is the k=6 member: m=180, C*=6, LSRC=31.
func Prop2Instance(k int) (*core.Instance, error) {
	if k < 2 {
		return nil, fmt.Errorf("instances: Prop2Instance needs k >= 2, got %d", k)
	}
	m := k * k * (k - 1)
	inst := &core.Instance{
		Name: fmt.Sprintf("prop2-k%d", k),
		M:    m,
	}
	id := 0
	for i := 0; i < k; i++ {
		inst.Jobs = append(inst.Jobs, core.Job{ID: id, Procs: (k - 1) * (k - 1), Len: 1})
		id++
	}
	for i := 0; i < k-1; i++ {
		inst.Jobs = append(inst.Jobs, core.Job{ID: id, Procs: k*(k-1) + 1, Len: core.Time(k)})
		id++
	}
	if q := k * (k - 1) * (k - 2); q > 0 {
		inst.Res = append(inst.Res, core.Reservation{
			ID: 0, Procs: q, Start: core.Time(k), Len: core.Time(2 * k * k),
		})
	}
	return inst, nil
}

// Prop2Alpha returns the α of the k-th family member: 2/k.
func Prop2Alpha(k int) float64 { return 2 / float64(k) }

// Prop2Optimum returns the scaled optimal makespan of Prop2Instance(k): k.
func Prop2Optimum(k int) core.Time { return core.Time(k) }

// Prop2LSRCMakespan returns the scaled makespan LSRC reaches on
// Prop2Instance(k) with the FIFO list: 1 + k(k-1) (ratio 2/α - 1 + α/2).
func Prop2LSRCMakespan(k int) core.Time { return core.Time(1 + k*(k-1)) }

// GrahamAdversarial builds the classic family driving list scheduling to
// its 2 - 1/m guarantee without reservations: m(m-1) unit jobs followed by
// a single job of length m (all unit width). FIFO LSRC fills the machine
// with the unit jobs first (makespan 2m-1); the optimum dedicates one
// processor to the long job (makespan m).
func GrahamAdversarial(m int) (*core.Instance, error) {
	if m < 1 {
		return nil, fmt.Errorf("instances: GrahamAdversarial needs m >= 1, got %d", m)
	}
	inst := &core.Instance{Name: fmt.Sprintf("graham-m%d", m), M: m}
	id := 0
	for i := 0; i < m*(m-1); i++ {
		inst.Jobs = append(inst.Jobs, core.Job{ID: id, Procs: 1, Len: 1})
		id++
	}
	inst.Jobs = append(inst.Jobs, core.Job{ID: id, Procs: 1, Len: core.Time(m)})
	return inst, nil
}

// GrahamOptimum returns the optimal makespan of GrahamAdversarial(m): m.
func GrahamOptimum(m int) core.Time { return core.Time(m) }

// GrahamLSRCMakespan returns FIFO LSRC's makespan on GrahamAdversarial(m):
// 2m - 1.
func GrahamLSRCMakespan(m int) core.Time { return core.Time(2*m - 1) }

// FCFSPathological builds the §2.2 family on which FCFS (with or without
// conservative back-filling) has ratio approaching m while LSRC stays
// optimal: m thin jobs T_i (1 processor, length D+i-1) interleaved with m
// full-width unit jobs W_i. FCFS serialises every pair; the optimum runs
// all thin jobs in parallel and then the wide jobs.
//
// The optimal makespan is D + 2m - 1 (longest thin job D+m-1, then m wide
// ticks, which can never overlap any thin job). The FCFS makespan is
// m(D+1) + m(m-1)/2, so the ratio tends to m as D grows.
func FCFSPathological(m int, d core.Time) (*core.Instance, error) {
	if m < 1 || d < 1 {
		return nil, fmt.Errorf("instances: FCFSPathological needs m >= 1, D >= 1")
	}
	inst := &core.Instance{Name: fmt.Sprintf("fcfs-path-m%d-D%d", m, d), M: m}
	id := 0
	for i := 0; i < m; i++ {
		inst.Jobs = append(inst.Jobs, core.Job{ID: id, Procs: 1, Len: d + core.Time(i)})
		id++
		inst.Jobs = append(inst.Jobs, core.Job{ID: id, Procs: m, Len: 1})
		id++
	}
	return inst, nil
}

// FCFSPathologicalOptimum returns the optimal makespan D + 2m - 1.
func FCFSPathologicalOptimum(m int, d core.Time) core.Time {
	return d + core.Time(2*m-1)
}

// FCFSPathologicalMakespan returns the FCFS makespan m(D+1) + m(m-1)/2.
func FCFSPathologicalMakespan(m int, d core.Time) core.Time {
	return core.Time(m)*(d+1) + core.Time(m*(m-1)/2)
}
