package instances

import (
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/rng"
	"repro/internal/sched"
	"repro/internal/verify"
)

func staircaseFixture() *core.Instance {
	// U: 5 on [0,4), 2 on [4,10), 0 after — non-increasing.
	return &core.Instance{
		M: 8,
		Jobs: []core.Job{
			{ID: 0, Procs: 3, Len: 6},
			{ID: 1, Procs: 2, Len: 4},
			{ID: 2, Procs: 8, Len: 2},
		},
		Res: []core.Reservation{
			{ID: 0, Procs: 3, Start: 0, Len: 4},
			{ID: 1, Procs: 2, Start: 0, Len: 10},
		},
	}
}

func TestReservationsToTasksShape(t *testing.T) {
	inst := staircaseFixture()
	out, err := ReservationsToTasks(inst)
	if err != nil {
		t.Fatal(err)
	}
	if err := out.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(out.Res) != 0 {
		t.Fatal("transformed instance still has reservations")
	}
	// Two staircase tasks: (q=3, p=4) and (q=2, p=10).
	if len(out.Jobs) != 5 {
		t.Fatalf("jobs = %d, want 5", len(out.Jobs))
	}
	if out.Jobs[0].Procs != 3 || out.Jobs[0].Len != 4 {
		t.Fatalf("staircase 0 = %+v", out.Jobs[0])
	}
	if out.Jobs[1].Procs != 2 || out.Jobs[1].Len != 10 {
		t.Fatalf("staircase 1 = %+v", out.Jobs[1])
	}
	if got := StaircaseCount(inst); got != 2 {
		t.Fatalf("StaircaseCount = %d", got)
	}
}

func TestReservationsToTasksPreservesLSRC(t *testing.T) {
	// The whole point of the transformation: LSRC produces the same
	// schedule (same makespan, same start for every original job) when the
	// staircase tasks head the list.
	r := rng.New(404)
	for trial := 0; trial < 100; trial++ {
		inst := RandomStaircase(r, StaircaseConfig{
			M: r.IntRange(2, 10), N: r.IntRange(1, 10),
			MaxLen: 12, Steps: r.IntRange(0, 3), MaxStepLen: 15,
		})
		if err := inst.Validate(); err != nil {
			t.Fatal(err)
		}
		orig, err := sched.NewLSRC(sched.FIFO).Schedule(inst)
		if err != nil {
			t.Fatal(err)
		}
		trans, err := ReservationsToTasks(inst)
		if err != nil {
			t.Fatal(err)
		}
		ts, err := sched.NewLSRC(sched.FIFO).Schedule(trans)
		if err != nil {
			t.Fatal(err)
		}
		if err := verify.Verify(ts); err != nil {
			t.Fatal(err)
		}
		// Staircase tasks occupy the first StaircaseCount positions and
		// must all start at 0.
		sc := StaircaseCount(inst)
		for i := 0; i < sc; i++ {
			if ts.StartOf(i) != 0 {
				t.Fatalf("trial %d: staircase task %d starts at %v", trial, i, ts.StartOf(i))
			}
		}
		for i := range inst.Jobs {
			if orig.StartOf(i) != ts.StartOf(sc+i) {
				t.Fatalf("trial %d: job %d starts at %v with reservations but %v transformed\ninstance: %+v",
					trial, i, orig.StartOf(i), ts.StartOf(sc+i), inst)
			}
		}
	}
}

func TestReservationsToTasksRejectsIncreasing(t *testing.T) {
	inst := &core.Instance{
		M:    4,
		Jobs: []core.Job{{ID: 0, Procs: 1, Len: 1}},
		Res:  []core.Reservation{{ID: 0, Procs: 2, Start: 5, Len: 5}},
	}
	if _, err := ReservationsToTasks(inst); !errors.Is(err, ErrNotNonIncreasing) {
		t.Fatalf("got %v", err)
	}
}

func TestReservationsToTasksRejectsUnbounded(t *testing.T) {
	inst := &core.Instance{
		M:    4,
		Jobs: []core.Job{{ID: 0, Procs: 1, Len: 1}},
		Res:  []core.Reservation{{ID: 0, Procs: 2, Start: 0, Len: core.Infinity}},
	}
	if _, err := ReservationsToTasks(inst); !errors.Is(err, ErrUnboundedReservation) {
		t.Fatalf("got %v", err)
	}
}

func TestReservationsToTasksNoReservations(t *testing.T) {
	inst := &core.Instance{M: 4, Jobs: []core.Job{{ID: 3, Procs: 1, Len: 2}}}
	out, err := ReservationsToTasks(inst)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Jobs) != 1 || out.Jobs[0].ID != 3 {
		t.Fatalf("no-op transform wrong: %+v", out.Jobs)
	}
}

func TestMachinesAtTime(t *testing.T) {
	inst := staircaseFixture()
	cases := []struct {
		t    core.Time
		want int
	}{{0, 3}, {3, 3}, {4, 6}, {9, 6}, {10, 8}}
	for _, c := range cases {
		if got := MachinesAtTime(inst, c.t); got != c.want {
			t.Errorf("m(%v) = %d, want %d", c.t, got, c.want)
		}
	}
}

func TestRandomGeneratorsProduceValidInstances(t *testing.T) {
	r := rng.New(515)
	for trial := 0; trial < 50; trial++ {
		rigid := RandomRigid(r, RigidConfig{M: r.IntRange(1, 32), N: r.IntRange(0, 20), MaxLen: 50})
		if err := rigid.Validate(); err != nil {
			t.Fatalf("rigid: %v", err)
		}
		p2 := RandomRigid(r, RigidConfig{M: 16, N: 10, MaxLen: 10, PowerOfTwo: true})
		if err := p2.Validate(); err != nil {
			t.Fatalf("pow2: %v", err)
		}
		alpha := RandomAlpha(r, AlphaConfig{
			M: r.IntRange(2, 32), N: r.IntRange(1, 15), Alpha: 0.5,
			MaxLen: 20, NRes: 5, Horizon: 60,
		})
		if err := alpha.Validate(); err != nil {
			t.Fatalf("alpha: %v", err)
		}
		stair := RandomStaircase(r, StaircaseConfig{
			M: r.IntRange(2, 16), N: r.IntRange(1, 10), MaxLen: 20,
			Steps: r.IntRange(0, 4), MaxStepLen: 20,
		})
		if err := stair.Validate(); err != nil {
			t.Fatalf("stair: %v", err)
		}
		if !stair.Unavailability().NonIncreasing() {
			t.Fatal("staircase not non-increasing")
		}
	}
}

func TestRandomAlphaRespectsAlpha(t *testing.T) {
	r := rng.New(616)
	for trial := 0; trial < 40; trial++ {
		m := r.IntRange(4, 40)
		a := []float64{0.25, 0.5, 0.75, 1.0}[r.Intn(4)]
		inst := RandomAlpha(r, AlphaConfig{
			M: m, N: 10, Alpha: a, MaxLen: 20, NRes: 8, Horizon: 80,
		})
		maxQ := int(a * float64(m))
		if maxQ < 1 {
			maxQ = 1
		}
		for _, j := range inst.Jobs {
			if j.Procs > maxQ {
				t.Fatalf("job width %d exceeds αm=%d", j.Procs, maxQ)
			}
		}
		if u := inst.Unavailability().Max(); u > m-maxQ {
			t.Fatalf("unavailability %d exceeds (1-α)m=%d", u, m-maxQ)
		}
	}
}

func TestPowerOfTwoWidthsWithinRange(t *testing.T) {
	r := rng.New(717)
	inst := RandomRigid(r, RigidConfig{M: 64, N: 500, MaxLen: 10, MaxProcs: 32, PowerOfTwo: true})
	for _, j := range inst.Jobs {
		if j.Procs < 1 || j.Procs > 32 {
			t.Fatalf("width %d out of [1,32]", j.Procs)
		}
	}
}
