package instances

import (
	"errors"
	"fmt"

	"repro/internal/core"
)

// Transformation errors.
var (
	// ErrNotNonIncreasing reports that the instance's unavailability
	// function increases somewhere, so the Figure 2 transformation does
	// not apply.
	ErrNotNonIncreasing = errors.New("instances: unavailability is not non-increasing")
	// ErrUnboundedReservation reports reservations that never release.
	ErrUnboundedReservation = errors.New("instances: reservations never fully release")
)

// ReservationsToTasks performs the transformation in the proof of
// Proposition 1 (Figure 2 of the paper): an instance whose unavailability
// function U is non-increasing, taking values U_1 > U_2 > ... > U_k = 0
// with U(t) = U_j on [t_j, t_{j+1}), is rewritten as a RIGIDSCHEDULING
// instance (no reservations) by prepending k-1 staircase tasks
//
//	T'_j: q = U_j - U_{j+1},  p = t_{j+1}   (j = 1..k-1)
//
// placed at the head of the job list. When LSRC processes the transformed
// list it starts every staircase task at time 0 (they stack to exactly U_1
// <= m processors), recreating the original availability for the real jobs
// — so LSRC yields the same schedule on both instances, which is what lets
// the paper inherit Theorem 2's bound.
//
// Staircase tasks receive IDs above the original jobs'; original jobs keep
// their IDs and appear after the staircase in the returned instance.
func ReservationsToTasks(inst *core.Instance) (*core.Instance, error) {
	u := inst.Unavailability()
	if !u.NonIncreasing() {
		return nil, fmt.Errorf("%w: %v", ErrNotNonIncreasing, u)
	}
	if u.FinalValue() != 0 {
		return nil, fmt.Errorf("%w: final unavailability %d", ErrUnboundedReservation, u.FinalValue())
	}
	out := &core.Instance{Name: inst.Name + "+staircase", M: inst.M}
	maxID := -1
	for _, j := range inst.Jobs {
		if j.ID > maxID {
			maxID = j.ID
		}
	}
	// Build staircase tasks from the step function's segments.
	for i := 0; i+1 < u.Len(); i++ {
		_, end, v := u.Segment(i)
		_, _, next := u.Segment(i + 1)
		drop := v - next
		if drop <= 0 {
			// NonIncreasing with canonical segments means strict drops
			// everywhere; guard anyway.
			return nil, fmt.Errorf("%w: non-canonical step at segment %d", ErrNotNonIncreasing, i)
		}
		maxID++
		out.Jobs = append(out.Jobs, core.Job{
			ID:    maxID,
			Name:  fmt.Sprintf("staircase-%d", i),
			Procs: drop,
			Len:   end,
		})
	}
	out.Jobs = append(out.Jobs, inst.Jobs...)
	return out, nil
}

// TruncateTail performs the first step of Proposition 1's proof (I → I'):
// given an instance with non-increasing unavailability U and a reference
// time T (the proof uses T = C*max), it returns the instance on
// m' = m - U(T) machines whose unavailability is U(t) - U(T) before T and 0
// afterwards. The proof's observations hold by construction: both instances
// have the same optimal makespan when T = C*max, and any feasible schedule
// of I' is feasible for I.
//
// Combined with ReservationsToTasks (I' → I”), this makes the whole proof
// chain of Proposition 1 executable; the fig2 experiment checks it on
// random staircases.
func TruncateTail(inst *core.Instance, t core.Time) (*core.Instance, error) {
	u := inst.Unavailability()
	if !u.NonIncreasing() {
		return nil, fmt.Errorf("%w: %v", ErrNotNonIncreasing, u)
	}
	floor := u.At(t)
	if inst.M-floor < 1 {
		return nil, fmt.Errorf("instances: truncation at %v leaves no machines (U=%d of m=%d)",
			t, floor, inst.M)
	}
	out := &core.Instance{Name: inst.Name + "+truncated", M: inst.M - floor}
	out.Jobs = append([]core.Job(nil), inst.Jobs...)
	// Rebuild the reduced unavailability as one reservation per remaining
	// staircase level: level v = U(t') - floor on [0, end).
	for i := 0; i+1 < u.Len(); i++ {
		_, end, v := u.Segment(i)
		_, _, next := u.Segment(i + 1)
		if end > t {
			// Levels at or beyond T are absorbed into the floor.
			break
		}
		drop := v - next
		if v-floor < drop {
			drop = v - floor
		}
		if drop <= 0 {
			continue
		}
		out.Res = append(out.Res, core.Reservation{
			ID: len(out.Res), Procs: drop, Start: 0, Len: end,
		})
	}
	return out, nil
}

// StaircaseCount returns how many staircase tasks ReservationsToTasks
// prepends for the given instance (k-1 in the paper's notation).
func StaircaseCount(inst *core.Instance) int {
	u := inst.Unavailability()
	n := u.Len() - 1
	if n < 0 {
		return 0
	}
	return n
}

// MachinesAtTime returns m(t) = m - U(t), the paper's notation for the
// availability at time t.
func MachinesAtTime(inst *core.Instance, t core.Time) int {
	return inst.M - inst.Unavailability().At(t)
}
