package instances

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/rng"
)

// RigidConfig parameterises RandomRigid.
type RigidConfig struct {
	// M is the machine size.
	M int
	// N is the number of jobs.
	N int
	// MaxLen bounds job durations (uniform in [1, MaxLen]).
	MaxLen core.Time
	// MaxProcs bounds job widths (uniform in [1, min(MaxProcs, M)]);
	// 0 means M.
	MaxProcs int
	// PowerOfTwo biases widths to powers of two (the empirical shape of
	// cluster workloads) instead of uniform.
	PowerOfTwo bool
}

// RandomRigid generates a random RIGIDSCHEDULING instance (no
// reservations).
func RandomRigid(r *rng.PCG, cfg RigidConfig) *core.Instance {
	if cfg.M < 1 || cfg.N < 0 || cfg.MaxLen < 1 {
		panic("instances: invalid RigidConfig")
	}
	maxQ := cfg.MaxProcs
	if maxQ <= 0 || maxQ > cfg.M {
		maxQ = cfg.M
	}
	inst := &core.Instance{Name: fmt.Sprintf("rigid-m%d-n%d", cfg.M, cfg.N), M: cfg.M}
	for i := 0; i < cfg.N; i++ {
		q := 0
		if cfg.PowerOfTwo {
			// Choose an exponent uniformly among powers <= maxQ, then jiggle
			// within +/-25% to avoid a pure lattice.
			maxExp := 0
			for 1<<(maxExp+1) <= maxQ {
				maxExp++
			}
			q = 1 << r.IntRange(0, maxExp)
			if q > 1 && r.Bool(0.3) {
				q += r.IntRange(-q/4, q/4)
			}
			if q < 1 {
				q = 1
			}
			if q > maxQ {
				q = maxQ
			}
		} else {
			q = r.IntRange(1, maxQ)
		}
		inst.Jobs = append(inst.Jobs, core.Job{
			ID:    i,
			Procs: q,
			Len:   core.Time(r.Int63Range(1, int64(cfg.MaxLen))),
		})
	}
	return inst
}

// AlphaConfig parameterises RandomAlpha.
type AlphaConfig struct {
	// M is the machine size.
	M int
	// N is the number of jobs.
	N int
	// Alpha is the restriction parameter of §4.2: reservations never hold
	// more than (1-Alpha)·M processors and jobs never need more than
	// Alpha·M.
	Alpha float64
	// MaxLen bounds job durations.
	MaxLen core.Time
	// NRes is the number of reservation attempts.
	NRes int
	// Horizon bounds reservation start times.
	Horizon core.Time
	// MaxResLen bounds reservation lengths; 0 means Horizon/4+1.
	MaxResLen core.Time
}

// RandomAlpha generates a random α-RESASCHEDULING instance: job widths are
// capped at floor(α·m) (at least 1) and the reservation set is built by
// rejection so its unavailability never exceeds floor((1-α)·m).
func RandomAlpha(r *rng.PCG, cfg AlphaConfig) *core.Instance {
	if cfg.M < 1 || cfg.Alpha <= 0 || cfg.Alpha > 1 || cfg.MaxLen < 1 || cfg.Horizon < 1 {
		panic("instances: invalid AlphaConfig")
	}
	maxQ := int(cfg.Alpha * float64(cfg.M))
	if maxQ < 1 {
		maxQ = 1
	}
	maxU := cfg.M - maxQ // floor((1-α)m) when αm integral; conservative otherwise
	if maxU < 0 {
		maxU = 0
	}
	inst := &core.Instance{
		Name: fmt.Sprintf("alpha-m%d-n%d-a%.3f", cfg.M, cfg.N, cfg.Alpha),
		M:    cfg.M,
	}
	for i := 0; i < cfg.N; i++ {
		inst.Jobs = append(inst.Jobs, core.Job{
			ID:    i,
			Procs: r.IntRange(1, maxQ),
			Len:   core.Time(r.Int63Range(1, int64(cfg.MaxLen))),
		})
	}
	if maxU == 0 || cfg.NRes == 0 {
		return inst
	}
	maxResLen := cfg.MaxResLen
	if maxResLen <= 0 {
		maxResLen = cfg.Horizon/4 + 1
	}
	// Track unavailability on a tick grid for rejection.
	usage := make([]int, int(cfg.Horizon+maxResLen)+1)
	for k := 0; k < cfg.NRes; k++ {
		q := r.IntRange(1, maxU)
		start := core.Time(r.Int63n(int64(cfg.Horizon)))
		l := core.Time(r.Int63Range(1, int64(maxResLen)))
		ok := true
		for t := start; t < start+l; t++ {
			if usage[t]+q > maxU {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		for t := start; t < start+l; t++ {
			usage[t] += q
		}
		inst.Res = append(inst.Res, core.Reservation{
			ID: len(inst.Res), Procs: q, Start: start, Len: l,
		})
	}
	return inst
}

// StaircaseConfig parameterises RandomStaircase.
type StaircaseConfig struct {
	// M is the machine size.
	M int
	// N is the number of jobs.
	N int
	// MaxLen bounds job durations.
	MaxLen core.Time
	// Steps is the number of staircase levels (reservations all starting
	// at 0 with decreasing coverage).
	Steps int
	// MaxStepLen bounds each reservation's length.
	MaxStepLen core.Time
	// FreeProcs keeps at least this many processors always available
	// (defaults to 1 so LSRC can always make progress early).
	FreeProcs int
}

// RandomStaircase generates an instance with non-increasing reservations —
// the Proposition 1 regime. All reservations start at time 0; releases at
// random times produce a non-increasing unavailability staircase.
func RandomStaircase(r *rng.PCG, cfg StaircaseConfig) *core.Instance {
	if cfg.M < 1 || cfg.MaxLen < 1 || cfg.Steps < 0 || cfg.MaxStepLen < 1 {
		panic("instances: invalid StaircaseConfig")
	}
	free := cfg.FreeProcs
	if free <= 0 {
		free = 1
	}
	if free > cfg.M {
		free = cfg.M
	}
	inst := &core.Instance{
		Name: fmt.Sprintf("staircase-m%d-n%d", cfg.M, cfg.N),
		M:    cfg.M,
	}
	budget := cfg.M - free
	for k := 0; k < cfg.Steps && budget > 0; k++ {
		q := r.IntRange(1, budget)
		budget -= q
		inst.Res = append(inst.Res, core.Reservation{
			ID:    len(inst.Res),
			Procs: q,
			Start: 0,
			Len:   core.Time(r.Int63Range(1, int64(cfg.MaxStepLen))),
		})
	}
	for i := 0; i < cfg.N; i++ {
		inst.Jobs = append(inst.Jobs, core.Job{
			ID:    i,
			Procs: r.IntRange(1, cfg.M),
			Len:   core.Time(r.Int63Range(1, int64(cfg.MaxLen))),
		})
	}
	return inst
}
