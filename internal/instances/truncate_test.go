package instances

import (
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/rng"
	"repro/internal/sched"
)

func TestTruncateTailBasic(t *testing.T) {
	// U: 5 on [0,4), 2 on [4,10), 0 after. Truncate at T=6 (floor = 2):
	// m' = 6, U' = 3 on [0,4), 0 after.
	inst := staircaseFixture()
	out, err := TruncateTail(inst, 6)
	if err != nil {
		t.Fatal(err)
	}
	if out.M != 6 {
		t.Fatalf("m' = %d, want 6", out.M)
	}
	u := out.Unavailability()
	if u.At(0) != 3 || u.At(3) != 3 || u.At(4) != 0 || u.At(100) != 0 {
		t.Fatalf("U' wrong: %v", u)
	}
	// Jobs may now be wider than m' (the 8-wide job): Validate fails, which
	// is fine — the proof only uses T = C*max where this cannot happen.
	if err := out.Validate(); err == nil {
		t.Log("instance validates (8-wide job must have been narrower than m')")
	}
}

func TestTruncateTailAtZeroLevels(t *testing.T) {
	// Truncating beyond all reservations (floor 0) keeps U intact.
	inst := staircaseFixture()
	out, err := TruncateTail(inst, 100)
	if err != nil {
		t.Fatal(err)
	}
	if out.M != inst.M {
		t.Fatalf("m changed: %d", out.M)
	}
	a, b := inst.Unavailability(), out.Unavailability()
	for _, tm := range []core.Time{0, 3, 4, 9, 10, 50} {
		if a.At(tm) != b.At(tm) {
			t.Fatalf("U differs at %v: %d vs %d", tm, a.At(tm), b.At(tm))
		}
	}
}

func TestTruncateTailRejects(t *testing.T) {
	increasing := &core.Instance{
		M:    4,
		Jobs: []core.Job{{ID: 0, Procs: 1, Len: 1}},
		Res:  []core.Reservation{{ID: 0, Procs: 2, Start: 5, Len: 5}},
	}
	if _, err := TruncateTail(increasing, 3); !errors.Is(err, ErrNotNonIncreasing) {
		t.Fatalf("got %v", err)
	}
	blockade := &core.Instance{
		M:   2,
		Res: []core.Reservation{{ID: 0, Procs: 2, Start: 0, Len: 10}},
	}
	if _, err := TruncateTail(blockade, 5); err == nil {
		t.Fatal("full blockade truncation accepted")
	}
}

// TestProposition1ProofChain executes the proof of Proposition 1 end to
// end on random staircases: I --TruncateTail(C*)--> I' --Reservations
// ToTasks--> I” and checks each claim the proof makes:
//
//  1. C*(I') = C*(I) (truncation beyond the optimum is irrelevant);
//  2. LSRC(I) <= LSRC(I') (less capacity late can only help the original);
//  3. LSRC job placements coincide between I' and I” (staircase tasks
//     recreate the availability);
//  4. the final Graham bound: LSRC(I) <= (2 - 1/m')·C*(I).
func TestProposition1ProofChain(t *testing.T) {
	r := rng.New(161616)
	for trial := 0; trial < 120; trial++ {
		inst := RandomStaircase(r, StaircaseConfig{
			M: r.IntRange(2, 6), N: r.IntRange(2, 6),
			MaxLen: 6, Steps: r.IntRange(1, 3), MaxStepLen: 10,
		})
		res, err := exact.Solve(inst)
		if err != nil || !res.Optimal {
			t.Fatalf("trial %d: %v", trial, err)
		}
		opt := res.Cmax
		if opt == 0 {
			continue
		}
		iPrime, err := TruncateTail(inst, opt)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := iPrime.Validate(); err != nil {
			t.Fatalf("trial %d: I' invalid (should be impossible at T=C*): %v", trial, err)
		}
		// Claim 1: same optimum.
		resPrime, err := exact.Solve(iPrime)
		if err != nil || !resPrime.Optimal {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if resPrime.Cmax != opt {
			t.Fatalf("trial %d: C*(I') = %v != C*(I) = %v", trial, resPrime.Cmax, opt)
		}
		// Claim 2: LSRC(I) <= LSRC(I').
		sI, err := sched.NewLSRC(sched.FIFO).Schedule(inst)
		if err != nil {
			t.Fatal(err)
		}
		sP, err := sched.NewLSRC(sched.FIFO).Schedule(iPrime)
		if err != nil {
			t.Fatal(err)
		}
		if sI.Makespan() > sP.Makespan() {
			t.Fatalf("trial %d: LSRC(I)=%v > LSRC(I')=%v\nI: %+v",
				trial, sI.Makespan(), sP.Makespan(), inst)
		}
		// Claim 3: I' and I'' give identical placements.
		iDouble, err := ReservationsToTasks(iPrime)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		sD, err := sched.NewLSRC(sched.FIFO).Schedule(iDouble)
		if err != nil {
			t.Fatal(err)
		}
		sc := StaircaseCount(iPrime)
		for ji := range iPrime.Jobs {
			if sD.StartOf(sc+ji) != sP.StartOf(ji) {
				t.Fatalf("trial %d: job %d: I'' start %v vs I' start %v",
					trial, ji, sD.StartOf(sc+ji), sP.StartOf(ji))
			}
		}
		// Claim 4: the bound itself.
		mPrime := iPrime.M
		bound := (2 - 1/float64(mPrime)) * float64(opt)
		if float64(sI.Makespan()) > bound+1e-9 {
			t.Fatalf("trial %d: LSRC(I)=%v exceeds (2-1/%d)·%v = %v",
				trial, sI.Makespan(), mPrime, opt, bound)
		}
	}
}
