// Package online implements the batch-doubling technique referenced in
// §2.1 of the paper (Shmoys, Wein & Williamson): any offline scheduling
// algorithm can be run online — jobs arriving over time — by scheduling in
// successive batches, where all jobs arriving during the execution of the
// current batch wait and form the next batch. The makespan is at most twice
// what the offline algorithm would achieve with full knowledge (per batch,
// every job in it arrived before the batch started, so the offline run over
// the same jobs starting at the batch boundary is within the offline
// guarantee; batching at most doubles the horizon).
//
// The offline scheduler carries its own capacity backend (the
// profile.CapacityIndex seam): hand BatchSchedule a scheduler constructed
// with sched.ByNameOn(name, "tree") and every per-batch run uses the
// balanced-tree index, which pays off when batches accumulate thousands of
// jobs and reservations.
package online

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/workload"
)

// Result is the outcome of a batch-doubling run.
type Result struct {
	// Starts[i] is the start time assigned to arrivals[i].
	Starts []core.Time
	// Makespan is the overall completion time.
	Makespan core.Time
	// Batches records the [start, end) execution window of each batch.
	Batches []Batch
}

// Batch records one batch's window and members.
type Batch struct {
	// ReleasedAt is when the batch's jobs were handed to the offline
	// algorithm (the completion time of the previous batch).
	ReleasedAt core.Time
	// CompletedAt is the batch's makespan.
	CompletedAt core.Time
	// JobIdxs are arrival indices in the batch.
	JobIdxs []int
}

// shiftReservations restricts the reservation set to [from, inf) and
// shifts it so 'from' becomes 0 — the offline scheduler then naturally
// schedules "no earlier than from".
func shiftReservations(res []core.Reservation, from core.Time) []core.Reservation {
	var out []core.Reservation
	for _, r := range res {
		end := r.End()
		if end != core.Infinity && end <= from {
			continue
		}
		start := r.Start
		if start < from {
			start = from
		}
		nr := core.Reservation{ID: len(out), Name: r.Name, Procs: r.Procs, Start: start - from}
		if end == core.Infinity {
			nr.Len = core.Infinity
		} else {
			nr.Len = end - start
		}
		out = append(out, nr)
	}
	return out
}

// BatchSchedule runs the offline algorithm in batches over the arrival
// stream on an m-machine cluster with reservations.
func BatchSchedule(m int, res []core.Reservation, arrivals []workload.Arrival, offline sched.Scheduler) (*Result, error) {
	starts := make([]core.Time, len(arrivals))
	for i := range starts {
		starts[i] = core.Unscheduled
	}
	result := &Result{Starts: starts}

	pending := make([]int, len(arrivals))
	for i := range pending {
		pending[i] = i
	}
	now := core.Time(0)
	for len(pending) > 0 {
		// Batch = pending jobs that have arrived by now. If none have,
		// jump to the next arrival.
		var batch, rest []int
		var nextArrival core.Time = core.Infinity
		for _, i := range pending {
			if arrivals[i].At <= now {
				batch = append(batch, i)
			} else {
				rest = append(rest, i)
				if arrivals[i].At < nextArrival {
					nextArrival = arrivals[i].At
				}
			}
		}
		if len(batch) == 0 {
			now = nextArrival
			continue
		}
		inst := &core.Instance{
			Name: fmt.Sprintf("batch@%v", now),
			M:    m,
			Res:  shiftReservations(res, now),
		}
		for bi, i := range batch {
			j := arrivals[i].Job
			j.ID = bi // dense IDs within the batch instance
			inst.Jobs = append(inst.Jobs, j)
		}
		s, err := offline.Schedule(inst)
		if err != nil {
			return nil, fmt.Errorf("online: batch at %v: %w", now, err)
		}
		b := Batch{ReleasedAt: now, JobIdxs: batch}
		for bi, i := range batch {
			starts[i] = now + s.StartOf(bi)
		}
		b.CompletedAt = now + s.Makespan()
		if b.CompletedAt > result.Makespan {
			result.Makespan = b.CompletedAt
		}
		result.Batches = append(result.Batches, b)
		pending = rest
		if len(pending) > 0 {
			// Next batch opens when this one completes — the doubling
			// discipline — or at the next arrival if that is later.
			now = b.CompletedAt
			if nextArrival != core.Infinity && nextArrival > now {
				now = nextArrival
			}
		}
	}
	return result, nil
}

// OfflineReference schedules all jobs as if they were available at time 0
// (the clairvoyant baseline the doubling argument compares against).
func OfflineReference(m int, res []core.Reservation, arrivals []workload.Arrival, offline sched.Scheduler) (core.Time, error) {
	inst := &core.Instance{Name: "offline-ref", M: m, Res: append([]core.Reservation(nil), res...)}
	for i, a := range arrivals {
		j := a.Job
		j.ID = i
		inst.Jobs = append(inst.Jobs, j)
	}
	s, err := offline.Schedule(inst)
	if err != nil {
		return 0, err
	}
	return s.Makespan(), nil
}
