package online

import (
	"testing"

	"repro/internal/core"
	"repro/internal/rng"
	"repro/internal/sched"
	"repro/internal/verify"
	"repro/internal/workload"
)

func TestBatchScheduleSingleBatch(t *testing.T) {
	arr := []workload.Arrival{
		{Job: core.Job{ID: 0, Procs: 2, Len: 10}, At: 0},
		{Job: core.Job{ID: 1, Procs: 2, Len: 10}, At: 0},
	}
	res, err := BatchSchedule(4, nil, arr, sched.NewLSRC(sched.FIFO))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Batches) != 1 {
		t.Fatalf("batches = %d", len(res.Batches))
	}
	if res.Makespan != 10 {
		t.Fatalf("makespan = %v", res.Makespan)
	}
}

func TestBatchScheduleTwoBatches(t *testing.T) {
	// Second job arrives while the first batch runs: it must wait for the
	// batch boundary (the doubling discipline).
	arr := []workload.Arrival{
		{Job: core.Job{ID: 0, Procs: 4, Len: 10}, At: 0},
		{Job: core.Job{ID: 1, Procs: 1, Len: 2}, At: 3},
	}
	res, err := BatchSchedule(4, nil, arr, sched.NewLSRC(sched.FIFO))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Batches) != 2 {
		t.Fatalf("batches = %d", len(res.Batches))
	}
	if res.Starts[1] != 10 {
		t.Fatalf("second batch start = %v, want 10", res.Starts[1])
	}
	if res.Makespan != 12 {
		t.Fatalf("makespan = %v", res.Makespan)
	}
}

func TestBatchScheduleIdleJump(t *testing.T) {
	// Nothing arrives until t=100: the scheduler jumps, no busy waiting.
	arr := []workload.Arrival{{Job: core.Job{ID: 0, Procs: 1, Len: 5}, At: 100}}
	res, err := BatchSchedule(4, nil, arr, sched.NewLSRC(sched.FIFO))
	if err != nil {
		t.Fatal(err)
	}
	if res.Starts[0] != 100 || res.Makespan != 105 {
		t.Fatalf("starts=%v makespan=%v", res.Starts, res.Makespan)
	}
}

func TestBatchRespectsReservations(t *testing.T) {
	arr := []workload.Arrival{
		{Job: core.Job{ID: 0, Procs: 4, Len: 4}, At: 0},
		// Arrives during batch 1; batch 2 opens at 4 but the reservation
		// blocks [5,10) for a wide job.
		{Job: core.Job{ID: 1, Procs: 3, Len: 4}, At: 1},
	}
	rsv := []core.Reservation{{ID: 0, Procs: 2, Start: 5, Len: 5}}
	res, err := BatchSchedule(4, rsv, arr, sched.NewLSRC(sched.FIFO))
	if err != nil {
		t.Fatal(err)
	}
	// Batch 1: job 0 at 0 (fits before the reservation? window [0,4) free).
	if res.Starts[0] != 0 {
		t.Fatalf("job 0 start = %v", res.Starts[0])
	}
	// Batch 2 opens at 4: job 1 needs 3 procs for 4 ticks; [4,8) overlaps
	// the reservation (only 2 free): must wait until 10.
	if res.Starts[1] != 10 {
		t.Fatalf("job 1 start = %v, want 10", res.Starts[1])
	}
}

func TestShiftReservations(t *testing.T) {
	rsv := []core.Reservation{
		{ID: 0, Procs: 1, Start: 0, Len: 5},             // entirely before: dropped
		{ID: 1, Procs: 2, Start: 3, Len: 10},            // trimmed to [7,13) -> [0,6) shifted
		{ID: 2, Procs: 3, Start: 20, Len: 5},            // shifted to [13,18)
		{ID: 3, Procs: 1, Start: 2, Len: core.Infinity}, // trimmed, infinite
	}
	out := shiftReservations(rsv, 7)
	if len(out) != 3 {
		t.Fatalf("len = %d: %+v", len(out), out)
	}
	if out[0].Start != 0 || out[0].Len != 6 || out[0].Procs != 2 {
		t.Fatalf("out[0] = %+v", out[0])
	}
	if out[1].Start != 13 || out[1].Len != 5 {
		t.Fatalf("out[1] = %+v", out[1])
	}
	if out[2].Start != 0 || out[2].Len != core.Infinity {
		t.Fatalf("out[2] = %+v", out[2])
	}
}

// TestBatchFeasibleAndWithinDoubling checks, on random streams, that the
// combined schedule is feasible, respects arrivals and batch boundaries,
// and that its makespan stays within 2x the clairvoyant offline LSRC
// reference plus the last arrival time (the doubling argument's bound
// shape).
func TestBatchFeasibleAndWithinDoubling(t *testing.T) {
	r := rng.New(97531)
	for trial := 0; trial < 40; trial++ {
		m := r.IntRange(2, 12)
		arr, err := workload.Synthetic(r.Split(), workload.SynthConfig{
			M: m, N: r.IntRange(1, 20), MinRun: 1, MaxRun: 40, MeanInterArrival: 15,
		})
		if err != nil {
			t.Fatal(err)
		}
		rsv := workload.ReservationStream(r.Split(), m, 0.5, r.IntRange(0, 2), 300)
		res, err := BatchSchedule(m, rsv, arr, sched.NewLSRC(sched.FIFO))
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// Feasibility of the combined schedule.
		inst := &core.Instance{M: m, Res: rsv}
		for i, a := range arr {
			j := a.Job
			j.ID = i
			inst.Jobs = append(inst.Jobs, j)
		}
		s := core.NewSchedule(inst)
		copy(s.Start, res.Starts)
		if err := verify.Verify(s); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for i := range arr {
			if res.Starts[i] < arr[i].At {
				t.Fatalf("trial %d: job %d before arrival", trial, i)
			}
		}
		// Batches do not overlap: batch b+1 released at >= batch b's
		// completion.
		for b := 1; b < len(res.Batches); b++ {
			if res.Batches[b].ReleasedAt < res.Batches[b-1].CompletedAt {
				t.Fatalf("trial %d: batch %d released early", trial, b)
			}
		}
		// Doubling-shaped bound: makespan <= lastArrival + 2*offlineRef.
		offline, err := OfflineReference(m, rsv, arr, sched.NewLSRC(sched.FIFO))
		if err != nil {
			t.Fatal(err)
		}
		var lastArr core.Time
		for _, a := range arr {
			if a.At > lastArr {
				lastArr = a.At
			}
		}
		if res.Makespan > lastArr+2*offline {
			t.Fatalf("trial %d: makespan %v exceeds %v + 2*%v", trial, res.Makespan, lastArr, offline)
		}
	}
}
