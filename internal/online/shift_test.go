package online

import (
	"testing"

	"repro/internal/core"
	"repro/internal/rng"
	"repro/internal/sched"
	"repro/internal/workload"
)

// TestShiftReservationsStraddling pins the edge cases of the batch-window
// rebasing: a reservation straddling the shift point must be clipped to
// start at the new origin with only its remaining length.
func TestShiftReservationsStraddling(t *testing.T) {
	res := []core.Reservation{
		{ID: 0, Name: "past", Procs: 2, Start: 0, Len: 10},      // ends before the shift
		{ID: 1, Name: "straddle", Procs: 3, Start: 5, Len: 20},  // covers the shift point
		{ID: 2, Name: "boundary", Procs: 1, Start: 10, Len: 5},  // ends exactly at the shift
		{ID: 3, Name: "future", Procs: 4, Start: 40, Len: 7},    // entirely after
		{ID: 4, Name: "at-shift", Procs: 2, Start: 15, Len: 10}, // starts exactly at the shift
	}
	out := shiftReservations(res, 15)
	want := []struct {
		name  string
		procs int
		start core.Time
		len   core.Time
	}{
		{"straddle", 3, 0, 10}, // [5,25) → [0,10) after rebasing
		{"future", 4, 25, 7},
		{"at-shift", 2, 0, 10},
	}
	if len(out) != len(want) {
		t.Fatalf("kept %d reservations, want %d: %v", len(out), len(want), out)
	}
	for i, w := range want {
		r := out[i]
		if r.Name != w.name || r.Procs != w.procs || r.Start != w.start || r.Len != w.len {
			t.Errorf("out[%d] = %+v, want %+v", i, r, w)
		}
		if r.ID != i {
			t.Errorf("out[%d] has stale ID %d; shifted sets must be densely re-IDed", i, r.ID)
		}
	}
}

// TestShiftReservationsInfiniteEnd covers core.Infinity reservations: an
// infinite hold active at the shift point stays infinite and is clipped to
// the new origin.
func TestShiftReservationsInfiniteEnd(t *testing.T) {
	res := []core.Reservation{
		{ID: 0, Procs: 2, Start: 3, Len: core.Infinity},
		{ID: 1, Procs: 1, Start: 50, Len: core.Infinity},
	}
	out := shiftReservations(res, 20)
	if len(out) != 2 {
		t.Fatalf("kept %d reservations, want 2", len(out))
	}
	if out[0].Start != 0 || out[0].Len != core.Infinity {
		t.Errorf("active infinite hold = %+v, want start 0, infinite length", out[0])
	}
	if out[1].Start != 30 || out[1].Len != core.Infinity {
		t.Errorf("future infinite hold = %+v, want start 30, infinite length", out[1])
	}
}

func TestShiftReservationsNoShift(t *testing.T) {
	res := []core.Reservation{{ID: 0, Procs: 2, Start: 7, Len: 5}}
	out := shiftReservations(res, 0)
	if len(out) != 1 || out[0].Start != 7 || out[0].Len != 5 {
		t.Fatalf("shift by 0 must be the identity, got %v", out)
	}
}

// TestBatchScheduleBackendEquivalence threads the tree backend through the
// batch-doubling wrapper: per-batch offline runs on the balanced index
// must reproduce the array result start-for-start.
func TestBatchScheduleBackendEquivalence(t *testing.T) {
	r := rng.New(11)
	arrivals, err := workload.Synthetic(r.Split(), workload.SynthConfig{M: 16, N: 40})
	if err != nil {
		t.Fatal(err)
	}
	res := workload.ReservationStream(r.Split(), 16, 0.5, 5, 3000)
	array, err := sched.ByNameOn("lsrc-lpt", "array")
	if err != nil {
		t.Fatal(err)
	}
	tree, err := sched.ByNameOn("lsrc-lpt", "tree")
	if err != nil {
		t.Fatal(err)
	}
	ra, err := BatchSchedule(16, res, arrivals, array)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := BatchSchedule(16, res, arrivals, tree)
	if err != nil {
		t.Fatal(err)
	}
	if ra.Makespan != rt.Makespan || len(ra.Batches) != len(rt.Batches) {
		t.Fatalf("array makespan %v/%d batches, tree %v/%d",
			ra.Makespan, len(ra.Batches), rt.Makespan, len(rt.Batches))
	}
	for i := range ra.Starts {
		if ra.Starts[i] != rt.Starts[i] {
			t.Fatalf("arrival %d starts at %v (array) vs %v (tree)", i, ra.Starts[i], rt.Starts[i])
		}
	}
}
