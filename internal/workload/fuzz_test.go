package workload

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzParseSWF checks the SWF parser never panics and that every accepted
// trace round-trips through WriteSWF back to the same retained fields.
func FuzzParseSWF(f *testing.F) {
	f.Add(sampleSWF)
	f.Add("; MaxProcs: 4\n1 0 0 10 2 -1 -1 2 10 -1 1 -1 -1 -1 -1 -1 -1 -1\n")
	f.Add("garbage\n")
	f.Add("1 2 3\n")
	f.Add("; only comments\n;; more\n")
	f.Add("9223372036854775807 0 0 1 1 -1 -1 1 1 -1 1 x x x x x x x\n")
	f.Fuzz(func(t *testing.T, input string) {
		tr, err := ParseSWF(strings.NewReader(input))
		if err != nil {
			return // rejection is fine; panics are not
		}
		var buf bytes.Buffer
		if err := WriteSWF(&buf, tr); err != nil {
			t.Fatalf("write of accepted trace failed: %v", err)
		}
		back, err := ParseSWF(&buf)
		if err != nil {
			t.Fatalf("re-parse of own output failed: %v\noutput:\n%s", err, buf.String())
		}
		if len(back.Jobs) != len(tr.Jobs) {
			t.Fatalf("round trip lost jobs: %d -> %d", len(tr.Jobs), len(back.Jobs))
		}
		for i := range tr.Jobs {
			a, b := tr.Jobs[i], back.Jobs[i]
			if a.ID != b.ID || a.Submit != b.Submit || a.Run != b.Run || a.Procs != b.Procs {
				t.Fatalf("job %d changed: %+v -> %+v", i, a, b)
			}
		}
	})
}
