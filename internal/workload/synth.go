package workload

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/rng"
)

// SynthConfig parameterises the synthetic workload generator. The defaults
// (zero values replaced by Normalize) follow the empirical regularities of
// Parallel Workloads Archive traces: widths biased to powers of two,
// runtimes log-uniform over three decades, Poisson arrivals.
type SynthConfig struct {
	// M is the machine size.
	M int
	// N is the number of jobs to draw.
	N int
	// MinRun and MaxRun bound runtimes (log-uniform). Defaults 10 and
	// 10000.
	MinRun, MaxRun core.Time
	// PowerOfTwoFrac is the fraction of jobs with power-of-two widths.
	// Default 0.75.
	PowerOfTwoFrac float64
	// SerialFrac is the fraction of single-processor jobs. Default 0.25.
	SerialFrac float64
	// MeanInterArrival is the mean of the exponential inter-arrival time.
	// Default MaxRun/max(N,1) · 4 (light load); set explicitly for heavy
	// load studies.
	MeanInterArrival float64
	// MaxWidthFrac caps job width as a fraction of M. Default 1.0.
	MaxWidthFrac float64
	// DailyCycle, when positive, modulates the arrival intensity with a
	// sinusoidal day/night pattern of the given period (in ticks):
	// arrivals are produced by thinning a Poisson stream so the rate at
	// phase φ is proportional to 1 + DailyAmplitude·sin(2πφ). Production
	// traces show exactly this diurnal shape.
	DailyCycle core.Time
	// DailyAmplitude in [0,1] scales the modulation; default 0.8 when
	// DailyCycle is set.
	DailyAmplitude float64
}

// Normalize fills defaulted fields and validates; it returns the effective
// config.
func (c SynthConfig) Normalize() (SynthConfig, error) {
	if c.M < 1 || c.N < 0 {
		return c, fmt.Errorf("workload: invalid SynthConfig: M=%d N=%d", c.M, c.N)
	}
	if c.MinRun <= 0 {
		c.MinRun = 10
	}
	if c.MaxRun <= 0 {
		c.MaxRun = 10000
	}
	if c.MaxRun < c.MinRun {
		return c, fmt.Errorf("workload: MaxRun %v < MinRun %v", c.MaxRun, c.MinRun)
	}
	if c.PowerOfTwoFrac == 0 {
		c.PowerOfTwoFrac = 0.75
	}
	if c.SerialFrac == 0 {
		c.SerialFrac = 0.25
	}
	if c.MaxWidthFrac <= 0 || c.MaxWidthFrac > 1 {
		c.MaxWidthFrac = 1
	}
	if c.MeanInterArrival <= 0 {
		c.MeanInterArrival = float64(c.MaxRun) / float64(max(c.N, 1)) * 4
	}
	if c.DailyCycle > 0 {
		if c.DailyAmplitude == 0 {
			c.DailyAmplitude = 0.8
		}
		if c.DailyAmplitude < 0 || c.DailyAmplitude > 1 {
			return c, fmt.Errorf("workload: DailyAmplitude %v outside [0,1]", c.DailyAmplitude)
		}
	}
	return c, nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Synthetic draws a workload of arrivals. The generator is deterministic
// given (r state, cfg).
func Synthetic(r *rng.PCG, cfg SynthConfig) ([]Arrival, error) {
	cfg, err := cfg.Normalize()
	if err != nil {
		return nil, err
	}
	maxQ := int(cfg.MaxWidthFrac * float64(cfg.M))
	if maxQ < 1 {
		maxQ = 1
	}
	var out []Arrival
	var clock float64
	for i := 0; i < cfg.N; i++ {
		clock += r.Expo(cfg.MeanInterArrival)
		if cfg.DailyCycle > 0 {
			// Thinning: draw candidate instants at the peak rate and keep
			// each with probability rate(t)/peak; rejected candidates just
			// advance the clock.
			for {
				phase := math.Mod(clock, float64(cfg.DailyCycle)) / float64(cfg.DailyCycle)
				rate := 1 + cfg.DailyAmplitude*math.Sin(2*math.Pi*phase)
				peak := 1 + cfg.DailyAmplitude
				if r.Float64() < rate/peak {
					break
				}
				clock += r.Expo(cfg.MeanInterArrival)
			}
		}
		q := 1
		switch {
		case r.Bool(cfg.SerialFrac):
			q = 1
		case r.Bool(cfg.PowerOfTwoFrac):
			maxExp := 0
			for 1<<(maxExp+1) <= maxQ {
				maxExp++
			}
			q = 1 << r.IntRange(0, maxExp)
		default:
			q = r.IntRange(1, maxQ)
		}
		run := core.Time(r.LogUniform(float64(cfg.MinRun), float64(cfg.MaxRun)))
		if run < cfg.MinRun {
			run = cfg.MinRun
		}
		if run > cfg.MaxRun {
			run = cfg.MaxRun
		}
		out = append(out, Arrival{
			Job: core.Job{ID: i, Procs: q, Len: run},
			At:  core.Time(clock),
		})
	}
	return out, nil
}

// SyntheticInstance draws a synthetic workload and flattens it to an
// offline instance (arrival times dropped).
func SyntheticInstance(r *rng.PCG, cfg SynthConfig) (*core.Instance, error) {
	arr, err := Synthetic(r, cfg)
	if err != nil {
		return nil, err
	}
	inst := &core.Instance{Name: fmt.Sprintf("synth-m%d-n%d", cfg.M, cfg.N), M: cfg.M}
	for _, a := range arr {
		inst.Jobs = append(inst.Jobs, a.Job)
	}
	return inst, nil
}

// ReservationStream draws nRes reservations respecting the α restriction
// (peak unavailability at most floor((1-alpha)·m)), spread over the given
// horizon — the shape of an advance-reservation feature in a production
// batch system with the §4.2 admission rule.
func ReservationStream(r *rng.PCG, m int, alpha float64, nRes int, horizon core.Time) []core.Reservation {
	if m < 1 || alpha <= 0 || alpha > 1 || horizon < 1 {
		panic("workload: invalid ReservationStream parameters")
	}
	maxU := m - int(alpha*float64(m))
	if int(alpha*float64(m)) < 1 {
		maxU = m - 1
	}
	if maxU <= 0 {
		return nil
	}
	usage := make([]int, int(horizon)*2)
	var out []core.Reservation
	for k := 0; k < nRes; k++ {
		q := r.IntRange(1, maxU)
		start := core.Time(r.Int63n(int64(horizon)))
		l := core.Time(r.Int63Range(1, int64(horizon)/4+1))
		ok := true
		for t := start; t < start+l && int(t) < len(usage); t++ {
			if usage[t]+q > maxU {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		for t := start; t < start+l && int(t) < len(usage); t++ {
			usage[t] += q
		}
		out = append(out, core.Reservation{ID: len(out), Procs: q, Start: start, Len: l})
	}
	return out
}
