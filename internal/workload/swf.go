// Package workload provides realistic cluster workloads: a reader/writer
// for the Standard Workload Format (SWF) used by the Parallel Workloads
// Archive, and a synthetic generator with the empirical shape of production
// traces (power-of-two-biased widths, log-uniform runtimes, Poisson
// arrivals). The paper itself evaluates analytically, but a downstream user
// of the library schedules real traces; the generator stands in for the
// archive's data, which is not bundled.
package workload

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"repro/internal/core"
)

// SWFJob is one record of a Standard Workload Format trace. Only the
// fields the schedulers consume are retained; unknown or missing values
// follow the SWF convention of -1.
type SWFJob struct {
	// ID is the job number (SWF field 1).
	ID int
	// Submit is the submit time in seconds (field 2).
	Submit int64
	// Wait is the wait time in seconds (field 3), -1 if unknown.
	Wait int64
	// Run is the actual runtime in seconds (field 4).
	Run int64
	// Procs is the number of allocated processors (field 5).
	Procs int
	// ReqProcs is the requested processor count (field 8), -1 if unknown.
	ReqProcs int
	// ReqTime is the requested (estimated) runtime (field 9), -1 if
	// unknown.
	ReqTime int64
	// Status is the completion status (field 11), -1 if unknown.
	Status int
}

// Trace is a parsed SWF workload.
type Trace struct {
	// Jobs in file order (usually by submit time).
	Jobs []SWFJob
	// MaxProcs is the machine size from the "; MaxProcs:" header comment,
	// or 0 when absent.
	MaxProcs int
	// Comments preserves header comment lines (without the leading ';').
	Comments []string
}

// ErrSWF wraps all SWF parse errors.
var ErrSWF = errors.New("workload: invalid SWF")

// ParseSWF reads a Standard Workload Format trace: whitespace-separated
// records of 18 numeric fields, with ';' comment lines. Records with fewer
// than 11 fields are rejected; fields beyond the ones retained are ignored.
func ParseSWF(r io.Reader) (*Trace, error) {
	tr := &Trace{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, ";") {
			c := strings.TrimSpace(strings.TrimPrefix(line, ";"))
			tr.Comments = append(tr.Comments, c)
			if rest, ok := strings.CutPrefix(c, "MaxProcs:"); ok {
				if v, err := strconv.Atoi(strings.TrimSpace(rest)); err == nil {
					tr.MaxProcs = v
				}
			}
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 11 {
			return nil, fmt.Errorf("%w: line %d has %d fields, want >= 11", ErrSWF, lineNo, len(fields))
		}
		get := func(i int) (int64, error) {
			v, err := strconv.ParseInt(fields[i], 10, 64)
			if err != nil {
				return 0, fmt.Errorf("%w: line %d field %d: %v", ErrSWF, lineNo, i+1, err)
			}
			return v, nil
		}
		var j SWFJob
		var v int64
		var err error
		if v, err = get(0); err != nil {
			return nil, err
		}
		j.ID = int(v)
		if j.Submit, err = get(1); err != nil {
			return nil, err
		}
		if j.Wait, err = get(2); err != nil {
			return nil, err
		}
		if j.Run, err = get(3); err != nil {
			return nil, err
		}
		if v, err = get(4); err != nil {
			return nil, err
		}
		j.Procs = int(v)
		if v, err = get(7); err != nil {
			return nil, err
		}
		j.ReqProcs = int(v)
		if j.ReqTime, err = get(8); err != nil {
			return nil, err
		}
		if v, err = get(10); err != nil {
			return nil, err
		}
		j.Status = int(v)
		tr.Jobs = append(tr.Jobs, j)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrSWF, err)
	}
	return tr, nil
}

// WriteSWF emits the trace in Standard Workload Format (18 fields, the
// unparsed ones written as -1).
func WriteSWF(w io.Writer, tr *Trace) error {
	bw := bufio.NewWriter(w)
	for _, c := range tr.Comments {
		if _, err := fmt.Fprintf(bw, "; %s\n", c); err != nil {
			return err
		}
	}
	if tr.MaxProcs > 0 {
		has := false
		for _, c := range tr.Comments {
			if strings.HasPrefix(c, "MaxProcs:") {
				has = true
				break
			}
		}
		if !has {
			if _, err := fmt.Fprintf(bw, "; MaxProcs: %d\n", tr.MaxProcs); err != nil {
				return err
			}
		}
	}
	for _, j := range tr.Jobs {
		if _, err := fmt.Fprintf(bw, "%d %d %d %d %d -1 -1 %d %d -1 %d -1 -1 -1 -1 -1 -1 -1\n",
			j.ID, j.Submit, j.Wait, j.Run, j.Procs, j.ReqProcs, j.ReqTime, j.Status); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Job converts an SWF record to a rigid job with the given index as core
// ID. Requested processors are preferred over allocated when present.
func (j SWFJob) Job(id int) (core.Job, bool) {
	procs := j.Procs
	if j.ReqProcs > 0 {
		procs = j.ReqProcs
	}
	if procs < 1 || j.Run < 1 {
		return core.Job{}, false
	}
	return core.Job{
		ID:    id,
		Name:  fmt.Sprintf("swf-%d", j.ID),
		Procs: procs,
		Len:   core.Time(j.Run),
	}, true
}

// Instance converts the trace into an offline RESASCHEDULING instance:
// submit times are dropped (the offline model of the paper assumes all jobs
// available at 0), jobs with unusable records (non-positive size or
// runtime) are skipped, and widths are clamped to m.
func (tr *Trace) Instance(m int) (*core.Instance, error) {
	if m <= 0 {
		m = tr.MaxProcs
	}
	if m <= 0 {
		return nil, fmt.Errorf("%w: machine size unknown (no MaxProcs header; pass m)", ErrSWF)
	}
	inst := &core.Instance{Name: "swf", M: m}
	for _, j := range tr.Jobs {
		cj, ok := j.Job(len(inst.Jobs))
		if !ok {
			continue
		}
		if cj.Procs > m {
			cj.Procs = m
		}
		inst.Jobs = append(inst.Jobs, cj)
	}
	return inst, nil
}

// Arrivals returns the trace's jobs with their submit times, ordered by
// submit time, for online simulation. Unusable records are skipped.
type Arrival struct {
	// Job is the rigid job.
	Job core.Job
	// At is the submit time.
	At core.Time
}

// Arrivals converts the trace for online use.
func (tr *Trace) Arrivals(m int) ([]Arrival, error) {
	if m <= 0 {
		m = tr.MaxProcs
	}
	if m <= 0 {
		return nil, fmt.Errorf("%w: machine size unknown", ErrSWF)
	}
	var out []Arrival
	for _, j := range tr.Jobs {
		cj, ok := j.Job(len(out))
		if !ok {
			continue
		}
		if cj.Procs > m {
			cj.Procs = m
		}
		at := j.Submit
		if at < 0 {
			at = 0
		}
		out = append(out, Arrival{Job: cj, At: core.Time(at)})
	}
	sort.SliceStable(out, func(a, b int) bool { return out[a].At < out[b].At })
	return out, nil
}
