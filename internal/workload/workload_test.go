package workload

import (
	"bytes"
	"errors"
	"math"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/rng"
)

const sampleSWF = `; Version: 2.2
; MaxProcs: 128
; MaxNodes: 64
1 0 5 100 4 -1 -1 4 120 -1 1 1 1 -1 -1 -1 -1 -1
2 10 0 50 8 -1 -1 -1 60 -1 1 1 1 -1 -1 -1 -1 -1
3 20 2 0 4 -1 -1 4 10 -1 0 1 1 -1 -1 -1 -1 -1
4 15 1 30 200 -1 -1 200 40 -1 1 1 1 -1 -1 -1 -1 -1
`

func TestParseSWF(t *testing.T) {
	tr, err := ParseSWF(strings.NewReader(sampleSWF))
	if err != nil {
		t.Fatal(err)
	}
	if tr.MaxProcs != 128 {
		t.Fatalf("MaxProcs = %d", tr.MaxProcs)
	}
	if len(tr.Jobs) != 4 {
		t.Fatalf("jobs = %d", len(tr.Jobs))
	}
	j := tr.Jobs[0]
	if j.ID != 1 || j.Submit != 0 || j.Wait != 5 || j.Run != 100 || j.Procs != 4 ||
		j.ReqProcs != 4 || j.ReqTime != 120 || j.Status != 1 {
		t.Fatalf("job 0 = %+v", j)
	}
	if len(tr.Comments) != 3 {
		t.Fatalf("comments = %v", tr.Comments)
	}
}

func TestParseSWFErrors(t *testing.T) {
	if _, err := ParseSWF(strings.NewReader("1 2 3\n")); !errors.Is(err, ErrSWF) {
		t.Fatalf("short line: %v", err)
	}
	if _, err := ParseSWF(strings.NewReader("a b c d e f g h i j k\n")); !errors.Is(err, ErrSWF) {
		t.Fatalf("non-numeric: %v", err)
	}
}

func TestSWFRoundTrip(t *testing.T) {
	tr, err := ParseSWF(strings.NewReader(sampleSWF))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteSWF(&buf, tr); err != nil {
		t.Fatal(err)
	}
	back, err := ParseSWF(&buf)
	if err != nil {
		t.Fatalf("re-parse: %v\n%s", err, buf.String())
	}
	if back.MaxProcs != tr.MaxProcs || len(back.Jobs) != len(tr.Jobs) {
		t.Fatalf("round trip shape: %+v", back)
	}
	for i := range tr.Jobs {
		a, b := tr.Jobs[i], back.Jobs[i]
		if a.ID != b.ID || a.Submit != b.Submit || a.Run != b.Run ||
			a.Procs != b.Procs || a.ReqProcs != b.ReqProcs || a.Status != b.Status {
			t.Fatalf("job %d: %+v vs %+v", i, a, b)
		}
	}
}

func TestTraceInstance(t *testing.T) {
	tr, err := ParseSWF(strings.NewReader(sampleSWF))
	if err != nil {
		t.Fatal(err)
	}
	inst, err := tr.Instance(0) // use MaxProcs header
	if err != nil {
		t.Fatal(err)
	}
	if inst.M != 128 {
		t.Fatalf("m = %d", inst.M)
	}
	// Job 3 has Run=0 -> skipped; job 4 clamped to 128.
	if len(inst.Jobs) != 3 {
		t.Fatalf("jobs = %d, want 3", len(inst.Jobs))
	}
	if inst.Jobs[2].Procs != 128 {
		t.Fatalf("clamp failed: %+v", inst.Jobs[2])
	}
	if err := inst.Validate(); err != nil {
		t.Fatal(err)
	}
	// Job 2 has ReqProcs=-1: falls back to allocated Procs=8.
	if inst.Jobs[1].Procs != 8 {
		t.Fatalf("fallback failed: %+v", inst.Jobs[1])
	}
}

func TestTraceInstanceNoMachineSize(t *testing.T) {
	tr := &Trace{Jobs: []SWFJob{{ID: 1, Run: 5, Procs: 2}}}
	if _, err := tr.Instance(0); !errors.Is(err, ErrSWF) {
		t.Fatalf("got %v", err)
	}
	inst, err := tr.Instance(16)
	if err != nil || inst.M != 16 {
		t.Fatalf("explicit m: %v %v", inst, err)
	}
}

func TestTraceArrivalsSorted(t *testing.T) {
	tr, err := ParseSWF(strings.NewReader(sampleSWF))
	if err != nil {
		t.Fatal(err)
	}
	arr, err := tr.Arrivals(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(arr) != 3 {
		t.Fatalf("arrivals = %d", len(arr))
	}
	for i := 1; i < len(arr); i++ {
		if arr[i].At < arr[i-1].At {
			t.Fatal("arrivals not sorted")
		}
	}
	// Job with submit 10 precedes job with submit 15.
	if arr[1].At != 10 || arr[2].At != 15 {
		t.Fatalf("order: %+v", arr)
	}
}

func TestSyntheticShape(t *testing.T) {
	r := rng.New(7)
	arr, err := Synthetic(r, SynthConfig{M: 64, N: 2000})
	if err != nil {
		t.Fatal(err)
	}
	if len(arr) != 2000 {
		t.Fatalf("n = %d", len(arr))
	}
	pow2 := 0
	serial := 0
	for i, a := range arr {
		if a.Job.Procs < 1 || a.Job.Procs > 64 {
			t.Fatalf("width %d out of range", a.Job.Procs)
		}
		if a.Job.Len < 10 || a.Job.Len > 10000 {
			t.Fatalf("runtime %v out of range", a.Job.Len)
		}
		if i > 0 && a.At < arr[i-1].At {
			t.Fatal("arrivals not monotone")
		}
		if a.Job.Procs&(a.Job.Procs-1) == 0 {
			pow2++
		}
		if a.Job.Procs == 1 {
			serial++
		}
	}
	// Most jobs should be powers of two (serial jobs included), and a
	// noticeable fraction serial.
	if float64(pow2)/2000 < 0.6 {
		t.Fatalf("power-of-two fraction %v too low", float64(pow2)/2000)
	}
	if serial < 200 {
		t.Fatalf("serial count %d too low", serial)
	}
}

func TestSyntheticRuntimeLogUniform(t *testing.T) {
	r := rng.New(8)
	arr, err := Synthetic(r, SynthConfig{M: 16, N: 5000, MinRun: 10, MaxRun: 10000})
	if err != nil {
		t.Fatal(err)
	}
	// Log-uniform: the median should sit near sqrt(10*10000) ~ 316, far
	// below the arithmetic midpoint 5005.
	var logs []float64
	for _, a := range arr {
		logs = append(logs, math.Log(float64(a.Job.Len)))
	}
	mean := 0.0
	for _, v := range logs {
		mean += v
	}
	mean /= float64(len(logs))
	want := (math.Log(10) + math.Log(10000)) / 2
	if math.Abs(mean-want) > 0.15 {
		t.Fatalf("log-mean %v, want about %v", mean, want)
	}
}

func TestDailyCycleModulatesArrivals(t *testing.T) {
	r := rng.New(33)
	const cycle = 1000
	arr, err := Synthetic(r, SynthConfig{
		M: 8, N: 20000, MinRun: 1, MaxRun: 10,
		MeanInterArrival: 1, DailyCycle: cycle, DailyAmplitude: 0.9,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Bucket arrivals by cycle phase halves: the sin-positive half
	// [0, cycle/2) must receive clearly more arrivals than the other.
	var up, down int
	for _, a := range arr {
		if int64(a.At)%cycle < cycle/2 {
			up++
		} else {
			down++
		}
	}
	if up < down*2 {
		t.Fatalf("daily cycle too weak: %d vs %d arrivals per half-cycle", up, down)
	}
	// Still sorted.
	for i := 1; i < len(arr); i++ {
		if arr[i].At < arr[i-1].At {
			t.Fatal("arrivals not monotone")
		}
	}
}

func TestDailyAmplitudeValidation(t *testing.T) {
	_, err := Synthetic(rng.New(1), SynthConfig{
		M: 4, N: 5, DailyCycle: 100, DailyAmplitude: 1.5,
	})
	if err == nil {
		t.Fatal("amplitude > 1 accepted")
	}
}

func TestSyntheticInstanceValid(t *testing.T) {
	r := rng.New(9)
	inst, err := SyntheticInstance(r, SynthConfig{M: 32, N: 100})
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(inst.Jobs) != 100 {
		t.Fatalf("jobs = %d", len(inst.Jobs))
	}
}

func TestSynthConfigValidation(t *testing.T) {
	if _, err := Synthetic(rng.New(1), SynthConfig{M: 0, N: 5}); err == nil {
		t.Fatal("M=0 accepted")
	}
	if _, err := Synthetic(rng.New(1), SynthConfig{M: 4, N: 5, MinRun: 100, MaxRun: 10}); err == nil {
		t.Fatal("MaxRun < MinRun accepted")
	}
}

func TestReservationStreamRespectsAlpha(t *testing.T) {
	r := rng.New(10)
	for _, alpha := range []float64{0.25, 0.5, 0.75} {
		res := ReservationStream(r, 32, alpha, 20, 1000)
		u := core.UnavailabilityOf(res)
		maxU := 32 - int(alpha*32)
		if u.Max() > maxU {
			t.Fatalf("alpha=%v: peak unavailability %d > %d", alpha, u.Max(), maxU)
		}
	}
}

func TestReservationStreamAlphaOne(t *testing.T) {
	if res := ReservationStream(rng.New(2), 8, 1.0, 5, 100); len(res) != 0 {
		t.Fatalf("alpha=1 should admit no reservations, got %d", len(res))
	}
}
