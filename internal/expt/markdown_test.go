package expt

import (
	"strings"
	"testing"

	"repro/internal/stats"
)

func sampleReport() *Report {
	r := &Report{ID: "fig9", Title: "sample", Paper: "imaginary"}
	r.Notes = append(r.Notes, "a note")
	t := stats.NewTable("k", "ratio")
	t.AddRow(3, 2.5)
	r.Tables = append(r.Tables, NamedTable{Caption: "caption", Table: t})
	r.check("passes", true, "detail %d", 7)
	r.check("fails", false, "boom")
	return r
}

func TestMarkdownStructure(t *testing.T) {
	md := sampleReport().Markdown()
	for _, want := range []string{
		"## fig9 — sample",
		"*Paper artifact:* imaginary",
		"> a note",
		"**caption**",
		"| k | ratio |",
		"| --- | --- |",
		"| 3 | 2.5 |",
		"- [x] passes — detail 7",
		"- [ ] fails — boom",
	} {
		if !strings.Contains(md, want) {
			t.Fatalf("missing %q in:\n%s", want, md)
		}
	}
}

func TestMarkdownAllCountsChecks(t *testing.T) {
	doc := MarkdownAll([]*Report{sampleReport()}, Config{Seed: 5})
	if !strings.Contains(doc, "1/2 checks passed") {
		t.Fatalf("check counter wrong:\n%s", doc)
	}
	if !strings.Contains(doc, "seed 5") {
		t.Fatal("seed missing")
	}
}

func TestMarkdownFromRealExperiment(t *testing.T) {
	e, _ := Get("fig3")
	rep, err := e.Run(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	md := rep.Markdown()
	if !strings.Contains(md, "## fig3") || !strings.Contains(md, "| k |") {
		t.Fatalf("real markdown malformed:\n%s", md)
	}
	if strings.Contains(md, "- [ ]") {
		t.Fatal("fig3 should have no failing checks")
	}
}
