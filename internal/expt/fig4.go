package expt

import (
	"repro/internal/bounds"
	"repro/internal/instances"
	"repro/internal/plot"
	"repro/internal/sched"
	"repro/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "fig4",
		Title: "Figure 4: bound curves vs alpha",
		Paper: "Figure 4 — upper bound 2/α and lower bounds B1, B2 as functions of α",
		Run:   runFig4,
	})
}

func runFig4(cfg Config) (*Report, error) {
	r := &Report{
		ID:    "fig4",
		Title: "Figure 4: bound curves vs alpha",
		Paper: "Figure 4",
	}
	r.Notes = append(r.Notes,
		"y-axis clipped at 10, matching the paper's figure",
		"measured points: LSRC ratio on the Proposition 2 family at α = 2/k")

	n := 100
	if cfg.Quick {
		n = 25
	}
	rows := bounds.Figure4(n)
	t := stats.NewTable("alpha", "upper 2/a", "B1", "B2")
	var xs, upper, b1s, b2s []float64
	step := 1
	if n > 25 {
		step = n / 25 // keep the printed table readable; chart uses all points
	}
	for i, row := range rows {
		if i%step == 0 || i == len(rows)-1 {
			t.AddRow(row.Alpha, row.Upper, row.B1, row.B2)
		}
		xs = append(xs, row.Alpha)
		upper = append(upper, row.Upper)
		b1s = append(b1s, row.B1)
		b2s = append(b2s, row.B2)
	}
	r.Tables = append(r.Tables, NamedTable{Caption: "Figure 4 series (sampled rows)", Table: t})

	// Measured LSRC worst-case points on the Prop 2 family.
	var mx, my []float64
	ks := []int{2, 3, 4, 5, 6, 8, 10}
	if cfg.Quick {
		ks = []int{2, 3, 4}
	}
	for _, k := range ks {
		inst, err := instances.Prop2Instance(k)
		if err != nil {
			return nil, err
		}
		s, err := sched.NewLSRC(sched.FIFO).Schedule(inst)
		if err != nil {
			return nil, err
		}
		mx = append(mx, instances.Prop2Alpha(k))
		my = append(my, float64(s.Makespan())/float64(instances.Prop2Optimum(k)))
	}
	r.Charts = append(r.Charts, &plot.Chart{
		Title:  "Figure 4: performance guarantees for LSRC on α-RESASCHEDULING",
		XLabel: "alpha",
		YLabel: "performance guarantee",
		YMax:   10,
		Series: []plot.Series{
			{Name: "Upper bound 2/α", X: xs, Y: upper},
			{Name: "B1", X: xs, Y: b1s},
			{Name: "B2", X: xs, Y: b2s},
			{Name: "measured LSRC (Prop 2 family)", X: mx, Y: my},
		},
	})

	// Structural checks on the curves.
	ordered, sandwich := true, true
	for i, row := range rows {
		if row.Upper < row.B1-1e-9 || row.B1 < row.B2-1e-9 {
			ordered = false
		}
		_ = i
	}
	for i := range mx {
		lo := bounds.B1(mx[i])
		hi := bounds.AlphaUpper(mx[i])
		if my[i] < lo-1e-9 || my[i] > hi+1e-9 {
			sandwich = false
		}
	}
	r.check("curves ordered: 2/α >= B1 >= B2 on the whole grid", ordered, "%d grid points", len(rows))
	r.check("measured LSRC points lie between B1 and 2/α", sandwich, "α = 2/k for k in %v", ks)
	r.check("upper and lower bounds arbitrarily close at α=2/k", bounds.Gap(2.0/64) < 1.02,
		"gap at k=64 is %.4f", bounds.Gap(2.0/64))
	return r, nil
}
