package expt

import (
	"repro/internal/bounds"
	"repro/internal/exact"
	"repro/internal/instances"
	"repro/internal/rng"
	"repro/internal/sched"
	"repro/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "graham",
		Title: "Theorem 2: Graham bound without reservations",
		Paper: "Theorem 2 (appendix) — LSRC <= (2 - 1/m)·C*max on RIGIDSCHEDULING",
		Run:   runGraham,
	})
}

func runGraham(cfg Config) (*Report, error) {
	r := &Report{
		ID:    "graham",
		Title: "Theorem 2: Graham bound without reservations",
		Paper: "Theorem 2 (appendix)",
	}
	r.Notes = append(r.Notes,
		"adversarial family: m(m-1) unit jobs + one length-m job, FIFO list",
		"random sweep reference: exact branch-and-bound optimum")

	// Part 1: the adversarial family attains the bound exactly.
	ms := []int{2, 3, 4, 6, 8, 12}
	if cfg.Quick {
		ms = []int{2, 4}
	}
	t := stats.NewTable("m", "C*", "LSRC", "ratio", "2-1/m", "tight")
	tight := true
	for _, m := range ms {
		inst, err := instances.GrahamAdversarial(m)
		if err != nil {
			return nil, err
		}
		s, err := sched.NewLSRC(sched.FIFO).Schedule(inst)
		if err != nil {
			return nil, err
		}
		opt := instances.GrahamOptimum(m)
		ratio := float64(s.Makespan()) / float64(opt)
		want := bounds.Graham(m)
		ok := s.Makespan() == instances.GrahamLSRCMakespan(m)
		if !ok {
			tight = false
		}
		t.AddRow(m, int64(opt), int64(s.Makespan()), ratio, want, ok)
	}
	r.Tables = append(r.Tables, NamedTable{Caption: "adversarial family: ratio = 2 - 1/m exactly", Table: t})
	r.check("adversarial family attains 2 - 1/m exactly", tight, "m grid %v", ms)

	// Part 2: random rigid instances never exceed the bound (vs exact).
	nTrials := 300
	if cfg.Quick {
		nTrials = 30
	}
	type out struct {
		ratio float64
		bound float64
		err   error
	}
	outs := parMap(cfg, nTrials, func(i int) out {
		rr := rng.NewStream(cfg.Seed^0x62a4, uint64(i)+1)
		m := rr.IntRange(2, 6)
		inst := instances.RandomRigid(rr, instances.RigidConfig{
			M: m, N: rr.IntRange(2, 7), MaxLen: 9,
		})
		res, err := exact.Solve(inst)
		if err != nil || !res.Optimal {
			return out{err: err}
		}
		worst := 0.0
		for _, o := range []sched.Order{sched.FIFO, sched.LPT, sched.SPT, sched.WidestFirst} {
			s, err := sched.NewLSRC(o).Schedule(inst)
			if err != nil {
				return out{err: err}
			}
			if ratio := float64(s.Makespan()) / float64(res.Cmax); ratio > worst {
				worst = ratio
			}
		}
		return out{ratio: worst, bound: bounds.Graham(m)}
	})
	var ratios []float64
	allBelow := true
	for _, o := range outs {
		if o.err != nil {
			return nil, o.err
		}
		ratios = append(ratios, o.ratio)
		if o.ratio > o.bound+1e-9 {
			allBelow = false
		}
	}
	sum := stats.Summarize(ratios)
	t2 := stats.NewTable("trials", "mean ratio", "p95", "max", "global bound")
	t2.AddRow(len(ratios), sum.Mean, sum.P95, sum.Max, 2.0)
	r.Tables = append(r.Tables, NamedTable{Caption: "random rigid instances, worst ratio over 4 list orders vs exact", Table: t2})
	r.check("no random instance exceeds 2 - 1/m", allBelow, "max observed %.4f", sum.Max)
	return r, nil
}
