package expt

import (
	"repro/internal/core"
	"repro/internal/lower"
	"repro/internal/rng"
	"repro/internal/sched"
	"repro/internal/stats"
	"repro/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "ablation",
		Title: "Conclusion: priority rules and shelf packing",
		Paper: "Conclusion — variants of list scheduling (sorting priorities) and shelf-based packing",
		Run:   runAblation,
	})
}

// ablationSchedulers is the policy matrix of the ablation.
func ablationSchedulers() []sched.Scheduler {
	return []sched.Scheduler{
		sched.NewLSRC(sched.FIFO),
		sched.NewLSRC(sched.LPT),
		sched.NewLSRC(sched.SPT),
		sched.NewLSRC(sched.WidestFirst),
		sched.NewLSRC(sched.NarrowestFirst),
		sched.NewLSRC(sched.MaxWorkFirst),
		sched.FCFS{},
		sched.Conservative{},
		sched.EASY{},
		&sched.Shelf{Fit: sched.NextFit},
		&sched.Shelf{Fit: sched.FirstFit},
	}
}

func runAblation(cfg Config) (*Report, error) {
	r := &Report{
		ID:    "ablation",
		Title: "Conclusion: priority rules and shelf packing",
		Paper: "Conclusion (perspectives)",
	}
	r.Notes = append(r.Notes,
		"workload: synthetic cluster traces (power-of-two widths, log-uniform runtimes) + α=1/2 reservation streams",
		"metric: makespan normalised by the availability-aware lower bound (exact is infeasible at this size)")

	nTrials := 60
	jobsPer := 60
	if cfg.Quick {
		nTrials = 8
		jobsPer = 20
	}
	scheds := ablationSchedulers()
	type out struct {
		norm []float64 // normalised makespan per scheduler
		err  error
	}
	outs := parMap(cfg, nTrials, func(i int) out {
		rr := rng.NewStream(cfg.Seed^0xAB1A, uint64(i)+1)
		m := []int{16, 32, 64}[rr.Intn(3)]
		inst, err := workload.SyntheticInstance(rr.Split(), workload.SynthConfig{
			M: m, N: jobsPer, MinRun: 5, MaxRun: 500, MaxWidthFrac: 0.5,
		})
		if err != nil {
			return out{err: err}
		}
		inst.Res = workload.ReservationStream(rr.Split(), m, 0.5, 6, 2000)
		lb := lower.Best(inst)
		if lb == 0 || lb == core.Infinity {
			lb = 1
		}
		o := out{norm: make([]float64, len(scheds))}
		for si, sc := range scheds {
			s, err := sc.Schedule(inst)
			if err != nil {
				return out{err: err}
			}
			o.norm[si] = float64(s.Makespan()) / float64(lb)
		}
		return o
	})

	perSched := make([][]float64, len(scheds))
	for _, o := range outs {
		if o.err != nil {
			return nil, o.err
		}
		for si, v := range o.norm {
			perSched[si] = append(perSched[si], v)
		}
	}
	t := stats.NewTable("algorithm", "mean Cmax/LB", "p95", "max", "wins")
	wins := make([]int, len(scheds))
	for tr := 0; tr < len(outs); tr++ {
		best := 0
		for si := range scheds {
			if perSched[si][tr] < perSched[best][tr] {
				best = si
			}
		}
		wins[best]++
	}
	var lsrcVariantsMean, fcfsMean float64
	for si, sc := range scheds {
		sum := stats.Summarize(perSched[si])
		t.AddRow(sc.Name(), sum.Mean, sum.P95, sum.Max, wins[si])
		switch sc.Name() {
		case "lsrc-lpt":
			lsrcVariantsMean = sum.Mean
		case "fcfs":
			fcfsMean = sum.Mean
		}
	}
	r.Tables = append(r.Tables, NamedTable{
		Caption: "ablation over priority rules, back-filling variants and shelves",
		Table:   t,
	})
	r.check("sorted-priority LSRC (LPT) beats FCFS on realistic workloads",
		lsrcVariantsMean < fcfsMean,
		"mean normalised makespan: lsrc-lpt %.3f vs fcfs %.3f", lsrcVariantsMean, fcfsMean)

	// Guarantee check: every LSRC variant stays within 2/α of the lower
	// bound (α=1/2 ⇒ factor 4) — a loose but sound consequence of Prop 3.
	// (FCFS is deliberately excluded: §2.2 shows it has no such guarantee.)
	worst := 0.0
	for si, sc := range scheds {
		if len(sc.Name()) < 4 || sc.Name()[:4] != "lsrc" {
			continue
		}
		if m := stats.MaxFloat(perSched[si]); m > worst {
			worst = m
		}
	}
	r.check("all LSRC variants within the α=1/2 guarantee of 4×LB", worst <= 4+1e-9,
		"worst normalised makespan %.3f", worst)
	return r, nil
}
