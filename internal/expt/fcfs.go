package expt

import (
	"repro/internal/core"
	"repro/internal/instances"
	"repro/internal/sched"
	"repro/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "fcfs",
		Title: "§2.2 remark: FCFS has no constant guarantee",
		Paper: "§2.2 — FCFS ratio approaches m; LSRC stays at the optimum on the same family",
		Run:   runFCFS,
	})
}

func runFCFS(cfg Config) (*Report, error) {
	r := &Report{
		ID:    "fcfs",
		Title: "§2.2 remark: FCFS has no constant guarantee",
		Paper: "§2.2 (discussion of classical algorithms)",
	}
	r.Notes = append(r.Notes,
		"family: m thin jobs (length D+i) interleaved with m full-width unit jobs",
		"optimum D+2m-1 by the disjointness argument (wide jobs never overlap thin ones)")

	ms := []int{2, 4, 6, 8}
	ds := []core.Time{10, 100, 1000}
	if cfg.Quick {
		ms = []int{2, 4}
		ds = []core.Time{10, 100}
	}
	t := stats.NewTable("m", "D", "C*", "FCFS", "EASY", "LSRC", "FCFS ratio", "LSRC ratio")
	formula := true
	lsrcOptimal := true
	ratioGrows := true
	for _, m := range ms {
		prev := 0.0
		for _, d := range ds {
			inst, err := instances.FCFSPathological(m, d)
			if err != nil {
				return nil, err
			}
			opt := instances.FCFSPathologicalOptimum(m, d)
			fs, err := (sched.FCFS{}).Schedule(inst)
			if err != nil {
				return nil, err
			}
			es, err := (sched.EASY{}).Schedule(inst)
			if err != nil {
				return nil, err
			}
			ls, err := sched.NewLSRC(sched.FIFO).Schedule(inst)
			if err != nil {
				return nil, err
			}
			if fs.Makespan() != instances.FCFSPathologicalMakespan(m, d) {
				formula = false
			}
			if ls.Makespan() != opt {
				lsrcOptimal = false
			}
			fr := float64(fs.Makespan()) / float64(opt)
			lr := float64(ls.Makespan()) / float64(opt)
			if fr <= prev {
				ratioGrows = false
			}
			prev = fr
			t.AddRow(m, int64(d), int64(opt), int64(fs.Makespan()), int64(es.Makespan()),
				int64(ls.Makespan()), fr, lr)
		}
	}
	r.Tables = append(r.Tables, NamedTable{Caption: "FCFS pathological family", Table: t})
	r.check("FCFS makespan matches the closed form m(D+1)+m(m-1)/2", formula, "all (m,D) cells")
	r.check("LSRC schedules the family optimally", lsrcOptimal, "ratio exactly 1 in every cell")
	r.check("FCFS ratio grows toward m as D grows", ratioGrows, "monotone in D for every m")
	return r, nil
}
