package expt

import (
	"fmt"

	"repro/internal/bounds"
	"repro/internal/exact"
	"repro/internal/instances"
	"repro/internal/rng"
	"repro/internal/sched"
	"repro/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "alpha",
		Title: "Proposition 3: empirical ratio vs 2/alpha",
		Paper: "Proposition 3 — LSRC <= (2/α)·C*max on α-RESASCHEDULING",
		Run:   runAlpha,
	})
}

func runAlpha(cfg Config) (*Report, error) {
	r := &Report{
		ID:    "alpha",
		Title: "Proposition 3: empirical ratio vs 2/alpha",
		Paper: "Proposition 3",
	}
	r.Notes = append(r.Notes,
		"instances: random α-restricted jobs + rejected-sampling reservation streams",
		"reference: exact branch-and-bound optimum (all instances solved to optimality)")

	alphas := []float64{0.25, 0.4, 0.5, 0.65, 0.8, 1.0}
	trialsPer := 120
	if cfg.Quick {
		alphas = []float64{0.5, 1.0}
		trialsPer = 15
	}
	type cell struct {
		alpha  float64
		ratios []float64
		err    error
	}
	cells := parMap(cfg, len(alphas), func(ai int) cell {
		alpha := alphas[ai]
		c := cell{alpha: alpha}
		for tr := 0; tr < trialsPer; tr++ {
			rr := rng.NewStream(cfg.Seed^0xA1FA, uint64(ai*10000+tr)+1)
			m := rr.IntRange(4, 8)
			inst := instances.RandomAlpha(rr, instances.AlphaConfig{
				M: m, N: rr.IntRange(2, 6), Alpha: alpha,
				MaxLen: 8, NRes: rr.IntRange(1, 4), Horizon: 30,
			})
			res, err := exact.Solve(inst)
			if err != nil {
				c.err = fmt.Errorf("alpha %.2f trial %d: %w", alpha, tr, err)
				return c
			}
			if !res.Optimal {
				c.err = fmt.Errorf("alpha %.2f trial %d: not optimal", alpha, tr)
				return c
			}
			if res.Cmax == 0 {
				continue
			}
			s, err := sched.NewLSRC(sched.FIFO).Schedule(inst)
			if err != nil {
				c.err = err
				return c
			}
			c.ratios = append(c.ratios, float64(s.Makespan())/float64(res.Cmax))
		}
		return c
	})

	t := stats.NewTable("alpha", "trials", "mean ratio", "max ratio", "B2(alpha)", "upper 2/alpha", "within")
	allBelow := true
	for _, c := range cells {
		if c.err != nil {
			return nil, c.err
		}
		sum := stats.Summarize(c.ratios)
		upper := bounds.AlphaUpper(c.alpha)
		within := sum.Max <= upper+1e-9
		if !within {
			allBelow = false
		}
		t.AddRow(c.alpha, sum.N, sum.Mean, sum.Max, bounds.B2(c.alpha), upper, within)
	}
	r.Tables = append(r.Tables, NamedTable{
		Caption: "LSRC ratio vs exact optimum across the α grid",
		Table:   t,
	})
	r.check("no instance exceeds the 2/α guarantee", allBelow, "α grid %v, %d trials each", alphas, trialsPer)
	r.check("guarantee at α=1/2 is 4 (§4.2)", bounds.AlphaUpper(0.5) == 4, "2/0.5 = %v", bounds.AlphaUpper(0.5))
	return r, nil
}
