// Package expt is the experiment harness that regenerates every evaluation
// artifact of the paper — Figures 1-4, the appendix's Theorem 2, the §2.2
// FCFS remark — plus the ablations suggested in its conclusion. Each
// experiment is registered under the ID used in DESIGN.md's per-experiment
// index (fig1, fig2, fig3, fig4, graham, fcfs, alpha, ablation, online) and
// produces a Report: tables, optional charts, and pass/fail Checks that
// compare measured behaviour against the paper's claims. EXPERIMENTS.md is
// generated from these reports.
package expt

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"

	"repro/internal/plot"
	"repro/internal/stats"
)

// Config controls experiment execution.
type Config struct {
	// Seed makes every experiment deterministic; reports quote it.
	Seed uint64
	// Quick shrinks grids/trial counts for fast test runs.
	Quick bool
	// Workers bounds sweep parallelism; 0 means GOMAXPROCS.
	Workers int
}

// effectiveWorkers resolves the worker count.
func (c Config) effectiveWorkers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Check is one paper-vs-measured assertion.
type Check struct {
	// Name states the claim being checked.
	Name string
	// Pass reports whether the measurement agrees with the paper.
	Pass bool
	// Detail quantifies the comparison.
	Detail string
}

// NamedTable pairs a table with a caption.
type NamedTable struct {
	Caption string
	Table   *stats.Table
}

// Report is an experiment's output.
type Report struct {
	// ID is the registry key (e.g. "fig3").
	ID string
	// Title is a human-readable name.
	Title string
	// Paper describes the artifact being reproduced.
	Paper string
	// Tables hold the regenerated rows/series.
	Tables []NamedTable
	// Charts hold regenerated figures.
	Charts []*plot.Chart
	// Checks are the paper-vs-measured assertions.
	Checks []Check
	// Notes carry free-form commentary (reference used, substitutions).
	Notes []string
}

// AllPassed reports whether every check passed.
func (r *Report) AllPassed() bool {
	for _, c := range r.Checks {
		if !c.Pass {
			return false
		}
	}
	return true
}

// check appends an assertion.
func (r *Report) check(name string, pass bool, detailFmt string, args ...any) {
	r.Checks = append(r.Checks, Check{Name: name, Pass: pass, Detail: fmt.Sprintf(detailFmt, args...)})
}

// Render prints the report as text.
func (r *Report) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	fmt.Fprintf(&b, "Paper artifact: %s\n", r.Paper)
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	for _, t := range r.Tables {
		fmt.Fprintf(&b, "\n-- %s --\n%s", t.Caption, t.Table.String())
	}
	for _, c := range r.Charts {
		fmt.Fprintf(&b, "\n%s", c.ASCII(72, 24))
	}
	b.WriteString("\nChecks:\n")
	for _, c := range r.Checks {
		mark := "PASS"
		if !c.Pass {
			mark = "FAIL"
		}
		fmt.Fprintf(&b, "  [%s] %s — %s\n", mark, c.Name, c.Detail)
	}
	return b.String()
}

// Experiment is a runnable, registered experiment.
type Experiment struct {
	// ID is the registry key.
	ID string
	// Title is a short human-readable name.
	Title string
	// Paper names the artifact reproduced.
	Paper string
	// Run executes the experiment.
	Run func(cfg Config) (*Report, error)
}

// registry holds all experiments keyed by ID.
var registry = map[string]Experiment{}

// register adds an experiment at init time.
func register(e Experiment) {
	if _, dup := registry[e.ID]; dup {
		panic("expt: duplicate experiment " + e.ID)
	}
	registry[e.ID] = e
}

// Get returns the experiment with the given ID.
func Get(id string) (Experiment, bool) {
	e, ok := registry[id]
	return e, ok
}

// List returns all experiments sorted by ID.
func List() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	return out
}

// RunAll executes every experiment and returns reports sorted by ID.
func RunAll(cfg Config) ([]*Report, error) {
	var out []*Report
	for _, e := range List() {
		r, err := e.Run(cfg)
		if err != nil {
			return out, fmt.Errorf("expt: %s: %w", e.ID, err)
		}
		out = append(out, r)
	}
	return out, nil
}

// parMap runs fn over 0..n-1 on the configured number of workers and
// collects results in index order. fn must be safe for concurrent calls;
// per-item determinism is the caller's job (derive RNG streams from the
// item index, not from shared state).
func parMap[R any](cfg Config, n int, fn func(i int) R) []R {
	out := make([]R, n)
	workers := cfg.effectiveWorkers()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			out[i] = fn(i)
		}
		return out
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				out[i] = fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	return out
}
