package expt

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/instances"
	"repro/internal/rng"
	"repro/internal/sched"
	"repro/internal/stats"
	"repro/internal/threepart"
)

func init() {
	register(Experiment{
		ID:    "fig1",
		Title: "Theorem 1: inapproximability via 3-PARTITION",
		Paper: "Theorem 1 / Figure 1 — no polynomial algorithm has a finite performance ratio",
		Run:   runFig1,
	})
}

// fig1HardInstance is a fixed 3-PARTITION YES instance on which LSRC with
// the LPT list provably wastes window space: packing {12,10,10,10,9,9}
// (B=30) largest-first puts 12+10 in the first window (8 ticks wasted), so
// one item must jump the final reservation wall.
func fig1HardInstance() *threepart.Instance {
	return &threepart.Instance{Items: []int64{12, 10, 10, 10, 9, 9}, B: 30}
}

func runFig1(cfg Config) (*Report, error) {
	r := &Report{
		ID:    "fig1",
		Title: "Theorem 1: inapproximability via 3-PARTITION",
		Paper: "Theorem 1 / Figure 1",
	}
	r.Notes = append(r.Notes,
		"reduction: m=1, one unit job per item, k unit reservations spaced B apart, last reservation of length rho*k(B+1)+1",
		"reference optimum: exact m=1 subset DP (internal/exact.SolveM1)")

	// Part 1: on a fixed YES instance, the ratio of LSRC-LPT grows without
	// bound as the hypothetical guarantee rho grows — the mechanism of the
	// impossibility proof.
	tp := fig1HardInstance()
	rhos := []int{1, 2, 4, 8}
	if cfg.Quick {
		rhos = []int{1, 2}
	}
	t1 := stats.NewTable("rho", "opt(C*)", "wall", "LSRC-LPT Cmax", "ratio", "ratio>rho")
	growing := true
	prevRatio := 0.0
	exceedsRho := true
	for _, rho := range rhos {
		inst, err := instances.FromThreePartition(tp, rho)
		if err != nil {
			return nil, err
		}
		res, err := exact.SolveM1(inst)
		if err != nil {
			return nil, err
		}
		opt := res.Cmax
		if want := instances.Theorem1Optimum(tp); opt != want {
			return nil, fmt.Errorf("fig1: exact optimum %v, expected %v", opt, want)
		}
		s, err := sched.NewLSRC(sched.LPT).Schedule(inst)
		if err != nil {
			return nil, err
		}
		ratio := float64(s.Makespan()) / float64(opt)
		wall := instances.Theorem1Wall(tp, rho)
		t1.AddRow(rho, opt, wall, s.Makespan(), ratio, ratio > float64(rho))
		if ratio <= prevRatio {
			growing = false
		}
		if ratio <= float64(rho) {
			exceedsRho = false
		}
		prevRatio = ratio
	}
	r.Tables = append(r.Tables, NamedTable{
		Caption: "LSRC-LPT on the fixed hard instance (items {12,10,10,10,9,9}, B=30, k=2)",
		Table:   t1,
	})
	r.check("ratio grows without bound in rho", growing, "ratios strictly increase across rho grid, last=%.2f", prevRatio)
	r.check("each run violates its hypothetical guarantee rho", exceedsRho,
		"every rho in %v gives ratio > rho", rhos)

	// Part 2: the dichotomy the proof uses — every LSRC run on a YES
	// instance either achieves the optimum exactly or lands past the wall
	// (the k windows have zero slack).
	nTrials := 30
	if cfg.Quick {
		nTrials = 6
	}
	type outcome struct {
		opt, wall, cmax core.Time
		optHit          bool
		err             error
	}
	outs := parMap(cfg, nTrials, func(i int) outcome {
		rr := rng.NewStream(cfg.Seed, uint64(i)+1)
		tpi := threepart.GenerateYes(rr, 2+i%2, int64(24+4*(i%5)))
		const rho = 2
		inst, err := instances.FromThreePartition(tpi, rho)
		if err != nil {
			return outcome{err: err}
		}
		opt := instances.Theorem1Optimum(tpi)
		wall := instances.Theorem1Wall(tpi, rho)
		orders := []sched.Order{sched.FIFO, sched.LPT, sched.SPT, sched.RandomOrder(uint64(i))}
		var worst core.Time
		hit := false
		for _, o := range orders {
			s, err := sched.NewLSRC(o).Schedule(inst)
			if err != nil {
				return outcome{err: err}
			}
			c := s.Makespan()
			if c == opt {
				hit = true
			}
			if c > worst {
				worst = c
			}
		}
		return outcome{opt: opt, wall: wall, cmax: worst, optHit: hit}
	})
	dichotomy := true
	for _, o := range outs {
		if o.err != nil {
			return nil, o.err
		}
		if o.cmax != o.opt && o.cmax < o.wall {
			dichotomy = false
		}
	}
	r.check("dichotomy: every list order is optimal or past the wall", dichotomy,
		"%d random YES instances × 4 orders", nTrials)

	// Part 3: LSRC with the witness order (jobs listed group by group)
	// recovers the optimum — scheduling *can* decide 3-PARTITION.
	groups, ok := tp.Solve()
	if !ok {
		return nil, fmt.Errorf("fig1: hard instance unexpectedly unsolvable")
	}
	inst, err := instances.FromThreePartition(tp, 2)
	if err != nil {
		return nil, err
	}
	witnessOrder := sched.Order{Name: "witness", Indices: func(*core.Instance) []int {
		var idx []int
		for _, g := range groups {
			idx = append(idx, g[0], g[1], g[2])
		}
		return idx
	}}
	ws, err := sched.NewLSRC(witnessOrder).Schedule(inst)
	if err != nil {
		return nil, err
	}
	r.check("witness list order achieves the optimum", ws.Makespan() == instances.Theorem1Optimum(tp),
		"LSRC(witness)=%v, C*=%v", ws.Makespan(), instances.Theorem1Optimum(tp))
	return r, nil
}
