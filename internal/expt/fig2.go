package expt

import (
	"fmt"

	"repro/internal/bounds"
	"repro/internal/exact"
	"repro/internal/instances"
	"repro/internal/rng"
	"repro/internal/sched"
	"repro/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "fig2",
		Title: "Proposition 1: non-increasing reservations",
		Paper: "Proposition 1 / Figure 2 — LSRC <= (2 - 1/m(C*max))·C*max when U(t) is non-increasing",
		Run:   runFig2,
	})
}

func runFig2(cfg Config) (*Report, error) {
	r := &Report{
		ID:    "fig2",
		Title: "Proposition 1: non-increasing reservations",
		Paper: "Proposition 1 / Figure 2",
	}
	r.Notes = append(r.Notes,
		"instances: random staircases (all reservations release at random times, none arrive)",
		"reference: exact branch-and-bound optimum",
		"m(C*max) is the availability at the optimal makespan")

	nTrials := 400
	if cfg.Quick {
		nTrials = 40
	}
	type row struct {
		m, n        int
		opt, lsrc   int64
		ratio       float64
		bound       float64
		mAtOpt      int
		transformOK bool
		chainOK     bool
		err         error
	}
	rows := parMap(cfg, nTrials, func(i int) row {
		rr := rng.NewStream(cfg.Seed^0xF162, uint64(i)+1)
		inst := instances.RandomStaircase(rr, instances.StaircaseConfig{
			M:          rr.IntRange(2, 8),
			N:          rr.IntRange(2, 7),
			MaxLen:     8,
			Steps:      rr.IntRange(1, 3),
			MaxStepLen: 12,
		})
		res, err := exact.Solve(inst)
		if err != nil {
			return row{err: err}
		}
		if !res.Optimal {
			return row{err: fmt.Errorf("fig2: trial %d not solved to optimality", i)}
		}
		s, err := sched.NewLSRC(sched.FIFO).Schedule(inst)
		if err != nil {
			return row{err: err}
		}
		mAtOpt := instances.MachinesAtTime(inst, res.Cmax)
		// Transformation check (Figure 2): LSRC places every real job at
		// the same start time on the reservation-free rewrite (the
		// staircase tasks themselves may outlast the jobs, so makespans
		// are compared on the original jobs only).
		trans, err := instances.ReservationsToTasks(inst)
		if err != nil {
			return row{err: err}
		}
		ts, err := sched.NewLSRC(sched.FIFO).Schedule(trans)
		if err != nil {
			return row{err: err}
		}
		sc := instances.StaircaseCount(inst)
		transformOK := true
		for ji := range inst.Jobs {
			if ts.StartOf(sc+ji) != s.StartOf(ji) {
				transformOK = false
			}
		}
		// The proof's first step (I -> I', truncation at C*max): the
		// optimum is unchanged and LSRC on I is no worse than on I'.
		chainOK := true
		if res.Cmax > 0 {
			iPrime, err := instances.TruncateTail(inst, res.Cmax)
			if err != nil {
				return row{err: err}
			}
			resPrime, err := exact.Solve(iPrime)
			if err != nil || !resPrime.Optimal {
				return row{err: fmt.Errorf("fig2: truncated solve: %v", err)}
			}
			sPrime, err := sched.NewLSRC(sched.FIFO).Schedule(iPrime)
			if err != nil {
				return row{err: err}
			}
			chainOK = resPrime.Cmax == res.Cmax && s.Makespan() <= sPrime.Makespan()
		}
		return row{
			m: inst.M, n: len(inst.Jobs),
			opt: int64(res.Cmax), lsrc: int64(s.Makespan()),
			ratio:       float64(s.Makespan()) / float64(res.Cmax),
			bound:       bounds.NonIncreasing(mAtOpt),
			mAtOpt:      mAtOpt,
			transformOK: transformOK,
			chainOK:     chainOK,
		}
	})

	var ratios []float64
	worst := row{}
	allBelow, allTransform, allChain := true, true, true
	for _, o := range rows {
		if o.err != nil {
			return nil, o.err
		}
		ratios = append(ratios, o.ratio)
		if o.ratio > worst.ratio {
			worst = o
		}
		if o.ratio > o.bound+1e-9 {
			allBelow = false
		}
		if !o.transformOK {
			allTransform = false
		}
		if !o.chainOK {
			allChain = false
		}
	}
	sum := stats.Summarize(ratios)
	t := stats.NewTable("trials", "mean ratio", "p95 ratio", "max ratio", "worst bound 2-1/m(C*)")
	t.AddRow(len(rows), sum.Mean, sum.P95, sum.Max, worst.bound)
	r.Tables = append(r.Tables, NamedTable{Caption: "LSRC vs exact optimum on non-increasing instances", Table: t})

	wt := stats.NewTable("m", "n", "C*", "LSRC", "ratio", "bound")
	wt.AddRow(worst.m, worst.n, worst.opt, worst.lsrc, worst.ratio, worst.bound)
	r.Tables = append(r.Tables, NamedTable{Caption: "worst observed instance", Table: wt})

	r.check("LSRC <= (2 - 1/m(C*max))·C*max on every instance", allBelow,
		"max ratio %.4f vs per-instance bounds", sum.Max)
	nOK := 0
	for _, o := range rows {
		if o.transformOK {
			nOK++
		}
	}
	r.check("Figure 2 transformation preserves every LSRC job placement", allTransform,
		"%d/%d instances identical", nOK, len(rows))
	r.check("proof chain I -> I' (truncation at C*max) preserves the optimum and dominates LSRC", allChain,
		"C*(I')=C*(I) and LSRC(I) <= LSRC(I') on every instance")
	return r, nil
}
