package expt

import (
	"math"

	"repro/internal/bounds"
	"repro/internal/instances"
	"repro/internal/sched"
	"repro/internal/stats"
	"repro/internal/verify"
)

func init() {
	register(Experiment{
		ID:    "fig3",
		Title: "Proposition 2: LSRC lower-bound family",
		Paper: "Proposition 2 / Figure 3 — instances where LSRC/C* = 2/α - 1 + α/2 (α=1/3: C*=6, LSRC=31, m=180)",
		Run:   runFig3,
	})
}

func runFig3(cfg Config) (*Report, error) {
	r := &Report{
		ID:    "fig3",
		Title: "Proposition 2: LSRC lower-bound family",
		Paper: "Proposition 2 / Figure 3",
	}
	r.Notes = append(r.Notes,
		"family scaled by k so all durations are integral (ratios unchanged)",
		"optimum verified by an explicit witness schedule (big tasks at 0, small tasks chained)",
		"LSRC runs with the FIFO list — the order the proof prescribes")

	ks := []int{2, 3, 4, 5, 6, 8, 10, 12}
	if cfg.Quick {
		ks = []int{2, 3, 6}
	}
	t := stats.NewTable("k", "alpha", "m", "C*", "LSRC", "ratio", "2/a-1+a/2", "exact match")
	allMatch := true
	fig3Row := false
	for _, k := range ks {
		inst, err := instances.Prop2Instance(k)
		if err != nil {
			return nil, err
		}
		// Witness optimum.
		ws := instances.Prop2Optimum(k)
		s, err := sched.NewLSRC(sched.FIFO).Schedule(inst)
		if err != nil {
			return nil, err
		}
		if err := verify.Verify(s); err != nil {
			return nil, err
		}
		alpha := instances.Prop2Alpha(k)
		ratio := float64(s.Makespan()) / float64(ws)
		want := bounds.Prop2(alpha)
		match := s.Makespan() == instances.Prop2LSRCMakespan(k) && math.Abs(ratio-want) < 1e-9
		if !match {
			allMatch = false
		}
		if k == 6 {
			fig3Row = inst.M == 180 && ws == 6 && s.Makespan() == 31
		}
		t.AddRow(k, alpha, inst.M, int64(ws), int64(s.Makespan()), ratio, want, match)
	}
	r.Tables = append(r.Tables, NamedTable{
		Caption: "Proposition 2 family: measured LSRC ratio vs the closed-form lower bound",
		Table:   t,
	})
	r.check("measured ratio equals 2/α - 1 + α/2 for every k", allMatch, "k grid %v", ks)
	if !cfg.Quick || containsInt(ks, 6) {
		r.check("Figure 3 numbers reproduced (k=6: m=180, C*=6, LSRC=31)", fig3Row,
			"see k=6 row")
	}

	// The conclusion's suggested variant: LPT ordering defuses this family.
	lptOptimal := true
	for _, k := range ks {
		inst, err := instances.Prop2Instance(k)
		if err != nil {
			return nil, err
		}
		s, err := sched.NewLSRC(sched.LPT).Schedule(inst)
		if err != nil {
			return nil, err
		}
		if s.Makespan() != instances.Prop2Optimum(k) {
			lptOptimal = false
		}
	}
	r.check("LPT priority schedules the family optimally (conclusion's suggestion)", lptOptimal,
		"LSRC-LPT = C* for every k in %v", ks)
	return r, nil
}

func containsInt(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}
