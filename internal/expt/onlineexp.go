package expt

import (
	"repro/internal/core"
	"repro/internal/online"
	"repro/internal/rng"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "online",
		Title: "§2.1 remark: batch doubling makes offline algorithms online",
		Paper: "§2.1 — any offline algorithm runs online in batches with a doubling factor",
		Run:   runOnline,
	})
}

func runOnline(cfg Config) (*Report, error) {
	r := &Report{
		ID:    "online",
		Title: "§2.1 remark: batch doubling makes offline algorithms online",
		Paper: "§2.1 (off-line vs on-line discussion)",
	}
	r.Notes = append(r.Notes,
		"streams: Poisson arrivals over synthetic workloads with α=1/2 reservations",
		"bound shape checked: batch makespan <= last arrival + 2× clairvoyant offline LSRC")

	nTrials := 60
	if cfg.Quick {
		nTrials = 10
	}
	type out struct {
		batchRatio float64 // batch / offline reference
		withinBnd  bool
		immRatio   float64 // immediate greedy policy / offline reference
		err        error
	}
	outs := parMap(cfg, nTrials, func(i int) out {
		rr := rng.NewStream(cfg.Seed^0x0411E, uint64(i)+1)
		m := rr.IntRange(8, 32)
		arr, err := workload.Synthetic(rr.Split(), workload.SynthConfig{
			M: m, N: rr.IntRange(10, 40), MinRun: 5, MaxRun: 200,
			MeanInterArrival: 20, MaxWidthFrac: 0.5,
		})
		if err != nil {
			return out{err: err}
		}
		rsv := workload.ReservationStream(rr.Split(), m, 0.5, 3, 2000)
		batch, err := online.BatchSchedule(m, rsv, arr, sched.NewLSRC(sched.FIFO))
		if err != nil {
			return out{err: err}
		}
		ref, err := online.OfflineReference(m, rsv, arr, sched.NewLSRC(sched.FIFO))
		if err != nil {
			return out{err: err}
		}
		var lastArr core.Time
		for _, a := range arr {
			if a.At > lastArr {
				lastArr = a.At
			}
		}
		imm, err := sim.Run(m, rsv, arr, sim.GreedyPolicy{})
		if err != nil {
			return out{err: err}
		}
		return out{
			batchRatio: float64(batch.Makespan) / float64(ref),
			withinBnd:  batch.Makespan <= lastArr+2*ref,
			immRatio:   float64(imm.Metrics.Makespan) / float64(ref),
		}
	})

	var batchRatios, immRatios []float64
	allWithin := true
	for _, o := range outs {
		if o.err != nil {
			return nil, o.err
		}
		batchRatios = append(batchRatios, o.batchRatio)
		immRatios = append(immRatios, o.immRatio)
		if !o.withinBnd {
			allWithin = false
		}
	}
	bs := stats.Summarize(batchRatios)
	is := stats.Summarize(immRatios)
	t := stats.NewTable("policy", "mean Cmax/offline", "p95", "max")
	t.AddRow("batch-doubling LSRC", bs.Mean, bs.P95, bs.Max)
	t.AddRow("immediate greedy LSRC", is.Mean, is.P95, is.Max)
	r.Tables = append(r.Tables, NamedTable{
		Caption: "online policies vs the clairvoyant offline LSRC reference",
		Table:   t,
	})
	r.check("batch makespan within lastArrival + 2×offline on every stream", allWithin,
		"%d streams", len(outs))
	r.check("average batching overhead stays near the 2× doubling factor", bs.Mean <= 3,
		"mean ratio %.3f (per-stream bound additionally includes the arrival horizon)", bs.Mean)
	return r, nil
}
