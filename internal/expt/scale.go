package expt

import (
	"time"

	"repro/internal/core"
	"repro/internal/lower"
	"repro/internal/rng"
	"repro/internal/sched"
	"repro/internal/stats"
	"repro/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "scale",
		Title: "scalability: LSRC quality and throughput vs cluster size",
		Paper: "extension — engineering evaluation of the reference implementation",
		Run:   runScale,
	})
}

func runScale(cfg Config) (*Report, error) {
	r := &Report{
		ID:    "scale",
		Title: "scalability: LSRC quality and throughput vs cluster size",
		Paper: "extension (implementation evaluation)",
	}
	r.Notes = append(r.Notes,
		"workloads: synthetic traces with α=1/2 reservation streams; quality = makespan / availability-aware lower bound",
		"wall-clock times are indicative (single run per cell)")

	type cell struct {
		m, n int
	}
	grid := []cell{{64, 500}, {128, 1000}, {256, 2000}, {512, 4000}}
	if cfg.Quick {
		grid = []cell{{32, 200}, {64, 400}}
	}
	type out struct {
		m, n     int
		quality  float64
		elapsed  time.Duration
		segments int
		err      error
	}
	outs := parMap(cfg, len(grid), func(i int) out {
		c := grid[i]
		rr := rng.NewStream(cfg.Seed^0x5CA1E, uint64(i)+1)
		inst, err := workload.SyntheticInstance(rr.Split(), workload.SynthConfig{
			M: c.m, N: c.n, MinRun: 10, MaxRun: 5000, MaxWidthFrac: 0.5,
		})
		if err != nil {
			return out{err: err}
		}
		inst.Res = workload.ReservationStream(rr.Split(), c.m, 0.5, c.n/50+1, 200000)
		lb := lower.Best(inst)
		if lb <= 0 || lb == core.Infinity {
			lb = 1
		}
		start := time.Now()
		s, err := sched.NewLSRC(sched.LPT).Schedule(inst)
		if err != nil {
			return out{err: err}
		}
		elapsed := time.Since(start)
		return out{
			m: c.m, n: c.n,
			quality: float64(s.Makespan()) / float64(lb),
			elapsed: elapsed,
		}
	})

	t := stats.NewTable("m", "jobs", "Cmax/LB", "wall-clock")
	qualityOK := true
	var worst float64
	for _, o := range outs {
		if o.err != nil {
			return nil, o.err
		}
		if o.quality > worst {
			worst = o.quality
		}
		if o.quality > 1.6 {
			qualityOK = false
		}
		t.AddRow(o.m, o.n, o.quality, o.elapsed.Round(time.Millisecond).String())
	}
	r.Tables = append(r.Tables, NamedTable{
		Caption: "LSRC-LPT at production scale",
		Table:   t,
	})
	r.check("schedule quality stays near the lower bound at every scale", qualityOK,
		"worst Cmax/LB = %.3f (guarantee at α=1/2 allows 4.0)", worst)
	return r, nil
}
